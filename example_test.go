package capybara_test

import (
	"fmt"
	"math/rand"

	"capybara"
)

// Example builds and runs a minimal two-mode application: a sensing
// loop that pre-charges a burst bank, and an alert that spends it.
func Example() {
	small := capybara.MustBank("small",
		capybara.GroupFor(capybara.CeramicX5R, 400*capybara.MicroFarad),
		capybara.GroupFor(capybara.Tantalum, 330*capybara.MicroFarad))
	big := capybara.MustBank("big", capybara.GroupOf(capybara.EDLC, 6))

	alerts := 0
	prog := capybara.MustProgram("sense",
		&capybara.Task{
			Name:          "sense",
			PreburstBurst: "big",
			PreburstExec:  "small",
			Run: func(c *capybara.Ctx) capybara.Next {
				c.Compute(10_000)
				if c.WordOr("rounds", 0) >= 2 {
					return "alert"
				}
				c.SetWord("rounds", c.WordOr("rounds", 0)+1)
				return "sense"
			},
		},
		&capybara.Task{
			Name:  "alert",
			Burst: "big",
			Run: func(c *capybara.Ctx) capybara.Next {
				c.Transmit(capybara.CC2650(), 25)
				alerts++
				return capybara.Halt
			},
		},
	)

	inst, err := capybara.New(capybara.Config{
		Variant:    capybara.CapyP,
		Source:     capybara.RegulatedSupply{Max: 2 * capybara.MilliWatt, V: 3},
		MCU:        capybara.MSP430FR5969(),
		Base:       small,
		Switched:   []*capybara.Bank{big},
		SwitchKind: capybara.NormallyOpen,
		Modes: []capybara.Mode{
			{Name: "small", Mask: 0b001},
			{Name: "big", Mask: 0b010},
		},
	}, prog)
	if err != nil {
		panic(err)
	}
	if err := inst.Run(10 * capybara.Minute); err != nil {
		panic(err)
	}
	fmt.Println("alerts:", alerts)
	// Output: alerts: 1
}

// ExampleProvision sizes a bank for a radio packet the way the paper's
// §3 methodology does: grow trial capacity until the task completes.
func ExampleProvision() {
	sys := capybara.NewPowerSystem(capybara.RegulatedSupply{Max: 10 * capybara.MilliWatt, V: 3})
	radio := capybara.CC2650()
	mcu := capybara.MSP430FR5969()
	g, err := capybara.Provision(sys, capybara.Tantalum,
		radio.TxPower+mcu.ActivePower,
		radio.StartupTime+radio.PacketTime(25),
		capybara.DefaultVTop)
	if err != nil {
		panic(err)
	}
	fmt.Println("tantalum units:", g.Count)
	// Output: tantalum units: 4
}

// ExamplePoisson draws the deterministic event schedule the evaluation
// uses.
func ExamplePoisson() {
	sched := capybara.Poisson(rand.New(rand.NewSource(42)), 3, 30, 1)
	for _, ev := range sched.Events {
		fmt.Printf("event %d at %.0f s\n", ev.Index, float64(ev.At))
	}
	// Output:
	// event 0 at 4 s
	// event 1 at 7 s
	// event 2 at 12 s
}

// ExamplePlanModes runs the paper's §8 future work through the public
// API: derive a bank array and mode table from task demands.
func ExamplePlanModes() {
	sys := capybara.NewPowerSystem(capybara.RegulatedSupply{Max: 2 * capybara.MilliWatt, V: 3})
	plan, err := capybara.PlanModes(sys, capybara.EDLC, []capybara.TaskDemand{
		{Name: "sample", Load: 2.1 * capybara.MilliWatt, Duration: 0.01, MaxRecharge: 60},
		{Name: "alarm", Load: 29 * capybara.MilliWatt, Duration: 0.14, Reactive: true},
	}, capybara.DefaultVTop)
	if err != nil {
		panic(err)
	}
	fmt.Println("banks:", len(plan.Banks))
	for _, m := range plan.Modes {
		fmt.Printf("mode %s mask %#b\n", m.Name, m.Mask)
	}
	// Output:
	// banks: 2
	// mode sample mask 0b1
	// mode alarm mask 0b11
}
