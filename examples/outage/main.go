// Outage demonstrates the §5.2 switch-default trade-off on the public
// API: when input power dies for longer than the latch capacitor's
// retention (~3 minutes), a normally-open array forgets its big-bank
// configuration and falls back to the small default, while a
// normally-closed array falls back to maximum capacity.
//
// Run it with:
//
//	go run ./examples/outage
package main

import (
	"fmt"
	"log"

	"capybara"
)

func main() {
	fmt.Println("input power: on for 60 s, dead for 10 min, then on again")
	fmt.Println()
	for _, kind := range []capybara.SwitchKind{capybara.NormallyOpen, capybara.NormallyClosed} {
		if err := run(kind); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("NO recovers fast but forgets the big configuration (a big task")
	fmt.Println("must reconfigure and recharge again); NC wakes up slowly but with")
	fmt.Println("maximum capacity already connected.")
}

func run(kind capybara.SwitchKind) error {
	src := capybara.SolarPanel{
		PeakPower:          5 * capybara.MilliWatt,
		OpenCircuitVoltage: 3.0,
		Light: capybara.BlackoutTrace(capybara.ConstantTrace(1),
			[2]capybara.Seconds{60, 600}),
	}

	small := capybara.MustBank("small",
		capybara.GroupFor(capybara.CeramicX5R, 400*capybara.MicroFarad),
		capybara.GroupFor(capybara.Tantalum, 330*capybara.MicroFarad))
	big := capybara.MustBank("big", capybara.GroupOf(capybara.EDLC, 6))

	var configured, afterOutage capybara.Seconds
	prog := capybara.MustProgram("work",
		&capybara.Task{
			Name:   "work",
			Config: "big",
			Run: func(c *capybara.Ctx) capybara.Next {
				if configured == 0 {
					configured = c.Now()
				}
				c.Compute(100_000)
				if c.Now() > 660 && afterOutage == 0 {
					afterOutage = c.Now()
					return capybara.Halt
				}
				return "work"
			},
		},
	)

	inst, err := capybara.New(capybara.Config{
		Variant:    capybara.CapyP,
		Source:     src,
		MCU:        capybara.MSP430FR5969(),
		Base:       small,
		Switched:   []*capybara.Bank{big},
		SwitchKind: kind,
		Modes: []capybara.Mode{
			{Name: "small", Mask: 0b001},
			{Name: "big", Mask: 0b010},
		},
	}, prog)
	if err != nil {
		return err
	}
	if err := inst.Run(1200); err != nil {
		return err
	}

	name := "normally-open"
	if kind == capybara.NormallyClosed {
		name = "normally-closed"
	}
	fmt.Printf("%s switches:\n", name)
	fmt.Printf("  big mode first configured at %v\n", configured)
	fmt.Printf("  latch reverts during outage:  %d\n", inst.Dev.Array.Reverts)
	fmt.Printf("  reconfigurations overall:     %d\n", inst.Runtime.Reconfigs)
	fmt.Printf("  work resumed after outage at  %v\n", afterOutage)
	fmt.Println()
	return nil
}
