// Provision walks the paper's §3 provisioning methodology with the
// public API: measure each task's energy, grow trial banks until the
// task completes, derate for aging, and compare capacitor technologies
// by board volume (the Fig. 4 trade-off).
//
// Run it with:
//
//	go run ./examples/provision
package main

import (
	"fmt"
	"log"

	"capybara"
	"capybara/internal/power"
)

func main() {
	sys := power.NewSystem(capybara.RegulatedSupply{Max: 10 * capybara.MilliWatt, V: 3.0})
	mcu := capybara.MSP430FR5969()

	// The application's atomic tasks and their loads.
	apds := capybara.APDS9960()
	radio := capybara.CC2650()
	tasks := []struct {
		name string
		load capybara.Power
		dur  capybara.Seconds
	}{
		{"temperature sample", capybara.TMP36().ActivePower + mcu.ActivePower, capybara.TMP36().OpTime},
		{"gesture window", apds.ActivePower + mcu.ActivePower, apds.Warmup + apds.OpTime},
		{"25-byte BLE packet", radio.TxPower + mcu.ActivePower, radio.StartupTime + radio.PacketTime(25)},
	}

	fmt.Println("provisioning each task against each capacitor technology")
	fmt.Println("(grow-until-complete, then +20% derating for aging)")
	fmt.Println()
	fmt.Printf("%-20s %-20s %8s %10s %12s\n", "task", "technology", "units", "capacity", "volume")
	for _, t := range tasks {
		for _, tech := range []capybara.Technology{capybara.CeramicX5R, capybara.Tantalum, capybara.EDLC} {
			g, err := capybara.Provision(sys, tech, t.load, t.dur, capybara.DefaultVTop)
			if err != nil {
				fmt.Printf("%-20s %-20s %s\n", t.name, tech.Name, err)
				continue
			}
			g = capybara.Derate(g, 0.2)
			fmt.Printf("%-20s %-20s %8d %10v %12v\n",
				t.name, tech.Name, g.Count, g.Capacitance(), g.Volume())
		}
	}

	// The CPH3225A shows the Fig. 4 lesson: density is useless if ESR
	// strands the energy.
	fmt.Println()
	g, err := capybara.Provision(sys,
		capybara.SupercapCPH3225A, radio.TxPower+mcu.ActivePower,
		radio.StartupTime+radio.PacketTime(25), 3.3)
	if err != nil {
		log.Fatal(err)
	}
	one := capybara.MustBank("one", capybara.GroupOf(capybara.SupercapCPH3225A, 1))
	one.SetVoltage(3.3)
	fmt.Printf("CPH3225A supercap: one 11 mF unit stores %v but a packet needs %v of\n",
		one.Energy(), capybara.Energy(float64(sys.StoreDraw(radio.TxPower+mcu.ActivePower))*
			float64(radio.StartupTime+radio.PacketTime(25))))
	fmt.Printf("extractable energy — its 160 Ω ESR strands the rest, so provisioning\n")
	fmt.Printf("needs %d units in parallel (%v) before the packet completes.\n",
		g.Count, g.Capacitance())
}
