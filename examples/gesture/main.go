// Gesture rebuilds the paper's gesture-activated remote control (GRC,
// §6.1.1) from the public API and compares all four power systems on
// the same pendulum-driven event schedule: continuous power, a fixed
// bank, Capy-R (no bursts), and Capy-P.
//
// Run it with:
//
//	go run ./examples/gesture
package main

import (
	"fmt"
	"log"
	"math/rand"

	"capybara"
)

// rig is the servo-pendulum environment (Fig. 7): the object is over
// the board during each event window; a gesture decodes correctly only
// if sensing starts in the first 40 % of the swing.
type rig struct{ sched capybara.Schedule }

func (r rig) present(t capybara.Seconds) bool {
	_, ok := r.sched.ActiveAt(t)
	return ok
}

// outcome classifies a 250 ms gesture observation starting at t.
func (r rig) outcome(t, op capybara.Seconds) (string, capybara.Event) {
	ev, ok := r.sched.ActiveAt(t)
	switch {
	case !ok:
		return "missed", ev
	case t+op > ev.End():
		return "proximity-only", ev
	case t > ev.At+capybara.Seconds(0.4*float64(ev.Window)):
		return "misclassified", ev
	default:
		return "correct", ev
	}
}

func build(variant capybara.Variant, sched capybara.Schedule, counts map[string]int) (*capybara.Instance, error) {
	photo := capybara.Phototransistor()
	apds := capybara.APDS9960()
	radio := capybara.CC2650()
	r := rig{sched: sched}

	prog := capybara.MustProgram("sense",
		&capybara.Task{
			Name:          "sense",
			PreburstBurst: "big",
			PreburstExec:  "small",
			Run: func(c *capybara.Ctx) capybara.Next {
				at := c.Sample(photo)
				c.Compute(8000)
				if r.present(at) {
					return "gesture"
				}
				return "sense"
			},
		},
		&capybara.Task{
			Name:  "gesture",
			Burst: "big",
			Run: func(c *capybara.Ctx) capybara.Next {
				start := c.Sample(apds)
				out, ev := r.outcome(start, apds.OpTime)
				if out == "correct" || out == "misclassified" {
					c.Transmit(radio, 8)
				}
				// Deduplicate by event index across retries.
				key := fmt.Sprintf("seen.%d", ev.Index)
				if out != "missed" {
					if _, dup := c.Word(key); !dup {
						c.SetWord(key, 1)
						counts[out]++
					}
				}
				return "sense"
			},
		},
	)

	small := capybara.MustBank("small",
		capybara.GroupFor(capybara.CeramicX5R, 400*capybara.MicroFarad),
		capybara.GroupFor(capybara.Tantalum, 330*capybara.MicroFarad))
	big := capybara.MustBank("big", capybara.GroupOf(capybara.EDLC, 9))
	cfg := capybara.Config{
		Variant:    variant,
		Source:     capybara.RegulatedSupply{Max: 2.5 * capybara.MilliWatt, V: 3.0},
		MCU:        capybara.MSP430FR5969(),
		SwitchKind: capybara.NormallyOpen,
	}
	if variant == capybara.Continuous || variant == capybara.Fixed {
		cfg.Base = capybara.MustBank("fixed",
			capybara.GroupFor(capybara.CeramicX5R, 400*capybara.MicroFarad),
			capybara.GroupFor(capybara.Tantalum, 330*capybara.MicroFarad),
			capybara.GroupOf(capybara.EDLC, 9))
		cfg.Modes = []capybara.Mode{{Name: "small"}, {Name: "big"}}
	} else {
		cfg.Base = small
		cfg.Switched = []*capybara.Bank{big}
		cfg.Modes = []capybara.Mode{
			{Name: "small", Mask: 0b001},
			{Name: "big", Mask: 0b010},
		}
	}
	return capybara.New(cfg, prog)
}

func main() {
	sched := capybara.Poisson(rand.New(rand.NewSource(42)), 40, 31.5, 1)
	horizon := sched.Horizon() + 30

	fmt.Printf("gesture remote control: %d pendulum swings over %v\n\n", len(sched.Events), sched.Horizon())
	fmt.Printf("%-8s %-9s %-14s %-15s %s\n", "system", "correct", "misclassified", "proximity-only", "missed")
	for _, v := range []capybara.Variant{capybara.Continuous, capybara.Fixed, capybara.CapyR, capybara.CapyP} {
		counts := map[string]int{}
		inst, err := build(v, sched, counts)
		if err != nil {
			log.Fatal(err)
		}
		if err := inst.Run(horizon); err != nil {
			log.Fatal(err)
		}
		missed := len(sched.Events) - counts["correct"] - counts["misclassified"] - counts["proximity-only"]
		fmt.Printf("%-8s %-9d %-14d %-15d %d\n",
			v, counts["correct"], counts["misclassified"], counts["proximity-only"], missed)
	}
	fmt.Println("\nCapy-P detects gestures the fixed bank sleeps through; Capy-R misses")
	fmt.Println("every swing because it recharges between proximity and gesture sensing.")
}
