// Tempalarm rebuilds the paper's temperature monitor (TA, §6.1.2) on
// the public API and demonstrates the latency difference between
// Capy-R (which recharges the alarm bank on the critical path) and
// Capy-P (which pre-charges it ahead of the event).
//
// Run it with:
//
//	go run ./examples/tempalarm
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"capybara"
)

// plant is the heater/cooler rig: temperature wobbles inside 20–30 °C
// and is pushed out of range during each scheduled event.
type plant struct{ sched capybara.Schedule }

func (p plant) temperature(t capybara.Seconds) float64 {
	if ev, ok := p.sched.ActiveAt(t); ok {
		if ev.Value >= 0 {
			return 32 + ev.Value
		}
		return 18 + ev.Value
	}
	return 25 + 4*math.Sin(2*math.Pi*float64(t)/60)
}

func (p plant) outOfRange(reading float64) bool { return reading < 20 || reading > 30 }

func main() {
	sched := capybara.Poisson(rand.New(rand.NewSource(42)), 20, 144, 60)
	horizon := sched.Horizon() + 60

	fmt.Printf("temperature alarm: %d excursions over %v\n\n", len(sched.Events), sched.Horizon())
	for _, v := range []capybara.Variant{capybara.CapyR, capybara.CapyP} {
		latencies, err := run(v, sched, horizon)
		if err != nil {
			log.Fatal(err)
		}
		var sum capybara.Seconds
		for _, l := range latencies {
			sum += l
		}
		mean := capybara.Seconds(0)
		if len(latencies) > 0 {
			mean = sum / capybara.Seconds(len(latencies))
		}
		fmt.Printf("%-7s reported %2d/%d alarms, mean latency %v\n",
			v, len(latencies), len(sched.Events), mean)
	}
	fmt.Println("\nBoth systems detect the excursions, but Capy-R pays the alarm bank's")
	fmt.Println("recharge between detection and transmission; Capy-P pre-charged it.")
}

func run(variant capybara.Variant, sched capybara.Schedule, horizon capybara.Seconds) ([]capybara.Seconds, error) {
	tmp := capybara.TMP36()
	radio := capybara.CC2650()
	p := plant{sched: sched}
	var latencies []capybara.Seconds

	prog := capybara.MustProgram("sample",
		&capybara.Task{
			Name:          "sample",
			PreburstBurst: "big",
			PreburstExec:  "small",
			Run: func(c *capybara.Ctx) capybara.Next {
				at := c.Sample(tmp)
				reading := p.temperature(at)
				series := append(c.FloatSeries("series"), reading)
				if len(series) > 15 {
					series = series[len(series)-15:]
				}
				c.SetFloats("series", series)
				if p.outOfRange(reading) {
					if ev, ok := sched.ActiveAt(at); ok && c.WordOr("last", 0) != uint64(ev.Index)+1 {
						c.SetWord("pending", uint64(ev.Index)+1)
						c.SetFloat("pendingAt", float64(ev.At))
						return "alarm"
					}
				}
				c.Sleep(0.08)
				return "sample"
			},
		},
		&capybara.Task{
			Name:  "alarm",
			Burst: "big",
			Run: func(c *capybara.Ctx) capybara.Next {
				idx := c.WordOr("pending", 0)
				if idx == 0 {
					return "sample"
				}
				for ch := 0; ch < 3; ch++ {
					c.Transmit(radio, 25)
				}
				latencies = append(latencies, c.Now()-capybara.Seconds(c.FloatOr("pendingAt", 0)))
				c.SetWord("last", idx)
				c.SetWord("pending", 0)
				return "sample"
			},
		},
	)

	small := capybara.MustBank("small",
		capybara.GroupFor(capybara.CeramicX5R, 300*capybara.MicroFarad),
		capybara.GroupFor(capybara.Tantalum, 100*capybara.MicroFarad))
	big := capybara.MustBank("big",
		capybara.GroupFor(capybara.Tantalum, 1000*capybara.MicroFarad),
		capybara.GroupOf(capybara.EDLC, 1))
	inst, err := capybara.New(capybara.Config{
		Variant: variant,
		Source: capybara.SolarPanel{
			PeakPower:          0.19 * capybara.MilliWatt,
			OpenCircuitVoltage: 2.5,
			Series:             2,
			Light:              capybara.ConstantTrace(0.42),
		},
		MCU:        capybara.MSP430FR5969(),
		Base:       small,
		Switched:   []*capybara.Bank{big},
		SwitchKind: capybara.NormallyOpen,
		Modes: []capybara.Mode{
			{Name: "small", Mask: 0b001},
			{Name: "big", Mask: 0b010},
		},
	}, prog)
	if err != nil {
		return nil, err
	}
	if err := inst.Run(horizon); err != nil {
		return nil, err
	}
	return latencies, nil
}
