// Quickstart builds the smallest useful Capybara application with the
// public API: a sensing loop on a small, fast-recharging bank and a
// reactive alert burst on a pre-charged large bank.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"capybara"
)

func main() {
	// Provision two banks the way a hardware designer would (§3): a
	// small bank for the sensing mode and a large EDLC bank able to
	// hold a radio burst.
	small := capybara.MustBank("small",
		capybara.GroupFor(capybara.CeramicX5R, 400*capybara.MicroFarad),
		capybara.GroupFor(capybara.Tantalum, 330*capybara.MicroFarad))
	big := capybara.MustBank("big", capybara.GroupOf(capybara.EDLC, 6))

	tmp := capybara.TMP36()
	radio := capybara.CC2650()

	var alerts int
	// The program: sample() loops in the small mode and pre-charges
	// the burst bank; alert() spends the burst the moment a reading
	// crosses the threshold.
	prog := capybara.MustProgram("sample",
		&capybara.Task{
			Name:          "sample",
			PreburstBurst: "big",
			PreburstExec:  "small",
			Run: func(c *capybara.Ctx) capybara.Next {
				at := c.Sample(tmp)
				reading := 20 + float64(int(at)%40) // a toy environment
				c.AppendFloat("series", reading)
				if reading > 55 {
					return "alert"
				}
				c.Sleep(0.1)
				return "sample"
			},
		},
		&capybara.Task{
			Name:  "alert",
			Burst: "big",
			Run: func(c *capybara.Ctx) capybara.Next {
				c.Transmit(radio, 25)
				alerts++
				c.Delete("series")
				return "sample"
			},
		},
	)

	inst, err := capybara.New(capybara.Config{
		Variant:    capybara.CapyP,
		Source:     capybara.RegulatedSupply{Max: 2 * capybara.MilliWatt, V: 3.0},
		MCU:        capybara.MSP430FR5969(),
		Base:       small,
		Switched:   []*capybara.Bank{big},
		SwitchKind: capybara.NormallyOpen,
		Modes: []capybara.Mode{
			{Name: "small", Mask: 0b001},
			{Name: "big", Mask: 0b010},
		},
	}, prog)
	if err != nil {
		log.Fatal(err)
	}

	const horizon = 5 * capybara.Minute
	if err := inst.Run(horizon); err != nil {
		log.Fatal(err)
	}

	st := inst.Dev.Stats
	fmt.Printf("ran %v of harvested-energy operation\n", horizon)
	fmt.Printf("  alerts transmitted:   %d\n", alerts)
	fmt.Printf("  boots:                %d\n", st.Boots)
	fmt.Printf("  time on / charging:   %v / %v\n", st.TimeOn, st.TimeCharging)
	fmt.Printf("  reconfigurations:     %d\n", inst.Runtime.Reconfigs)
	fmt.Printf("  bursts pre-charged:   %d\n", inst.Runtime.Precharges)
}
