GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The whole suite must be race-clean: the experiment sweeps fan out
# across goroutines and the determinism golden tests run them at
# several worker counts.
race:
	$(GO) test -race ./...

# One benchmark per paper figure/table, plus the parallel sweep-engine
# speedup (BenchmarkMatrixParallel).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# The full verify path: what CI runs.
verify: build vet test race
