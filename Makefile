GO ?= go
# bash for pipefail in the bench targets.
SHELL := /bin/bash

.PHONY: build test vet race bench bench-short bench-compare chaos fuzz-smoke fleet-shard-smoke fleet-resume-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The whole suite must be race-clean: the experiment sweeps fan out
# across goroutines and the determinism golden tests run them at
# several worker counts.
race:
	$(GO) test -race ./...

# One benchmark per paper figure/table, plus the parallel sweep-engine
# speedup (BenchmarkMatrixParallel). The run is piped through benchjson,
# which echoes the output and records the trajectory (ns/op, B/op,
# allocs/op, custom metrics) in BENCH_sim.json so perf regressions show
# up as a diff. set -o pipefail keeps a bench failure fatal.
bench:
	set -o pipefail; $(GO) test -bench=. -benchmem -run='^$$' . | $(GO) run ./cmd/benchjson -out BENCH_sim.json

# The quick CI variant: one iteration per benchmark, just enough to
# keep BENCH_sim.json parseable and the trajectory fresh.
bench-short:
	set -o pipefail; $(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' . | $(GO) run ./cmd/benchjson -out BENCH_sim.json

# Perf-regression gate: stash the committed trajectory, regenerate it
# with the short benchmarks, then diff ns/op per benchmark. Exits 1 if
# anything regressed past BENCH_THRESHOLD (a fraction; 1x-iteration
# short runs are noisy, so the default gate is deliberately loose —
# it catches cliffs, not percent drift). Benchmarks under BENCH_MIN
# old-ns/op are reported but never fail: at one iteration a
# microsecond-scale benchmark measures scheduler noise, not the code.
# Added and removed benchmarks are likewise informational only.
BENCH_THRESHOLD ?= 1.0
BENCH_MIN ?= 1000000
bench-compare:
	cp BENCH_sim.json BENCH_sim.base.json
	$(MAKE) bench-short
	status=0; $(GO) run ./cmd/benchjson -compare -threshold $(BENCH_THRESHOLD) -min $(BENCH_MIN) \
		-metric devices/sec:+ -metric memo-hit-rate:+ -metric vector-rate:+ -metric fused-rate:+ \
		-metric cohort-spin-rate:+ -metric pwm-fused-rate:+ \
		BENCH_sim.base.json BENCH_sim.json || status=$$?; \
	rm -f BENCH_sim.base.json; exit $$status

# Fault-injection sweep: seeded trials with harvester outages injected
# at adversarial instants and the physics-invariant registry checked
# after every simulator event (internal/chaos). Any violation is a
# non-zero exit and is replayable from the printed seed + trial index.
CHAOS_TRIALS ?= 500
CHAOS_SEED ?= 1
chaos:
	$(GO) run ./cmd/capybench -chaos $(CHAOS_TRIALS) -seed $(CHAOS_SEED)

# Short native-fuzzing smoke runs over the charge-sharing and
# task-commit targets; the checked-in corpus always runs under plain
# `go test`, this adds a few seconds of fresh exploration.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzConnect -fuzztime=5s ./internal/storage
	$(GO) test -run='^$$' -fuzz=FuzzCommitAtomicity -fuzztime=5s ./internal/task
	$(GO) test -run='^$$' -fuzz=FuzzPartialDecode -fuzztime=5s ./internal/fleetsvc
	$(GO) test -run='^$$' -fuzz=FuzzBatchSplit -fuzztime=5s ./internal/fleet
	$(GO) test -run='^$$' -fuzz=FuzzPhaseKey -fuzztime=5s ./internal/harvest

# Distributed-path smoke: launch a loopback coordinator plus two
# worker processes (real capyfleet binaries, not in-process goroutines)
# and diff the sharded report against the single-process report. The
# reports must be byte-identical — the in-repo determinism contract
# extends across process boundaries.
fleet-shard-smoke:
	bash scripts/shard_smoke.sh

# Daemon crash/resume smoke: boot the capyfleet daemon, submit a job,
# kill -9 it once checkpoints appear, restart it over the same store,
# and diff the resumed job's report against the single-process
# reference — byte-identical, with checkpointed chunks reloaded rather
# than recomputed.
fleet-resume-smoke:
	bash scripts/resume_smoke.sh

# The full verify path: what CI runs.
verify: build vet test race
