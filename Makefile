GO ?= go
# bash for pipefail in the bench targets.
SHELL := /bin/bash

.PHONY: build test vet race bench bench-short verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The whole suite must be race-clean: the experiment sweeps fan out
# across goroutines and the determinism golden tests run them at
# several worker counts.
race:
	$(GO) test -race ./...

# One benchmark per paper figure/table, plus the parallel sweep-engine
# speedup (BenchmarkMatrixParallel). The run is piped through benchjson,
# which echoes the output and records the trajectory (ns/op, B/op,
# allocs/op, custom metrics) in BENCH_sim.json so perf regressions show
# up as a diff. set -o pipefail keeps a bench failure fatal.
bench:
	set -o pipefail; $(GO) test -bench=. -benchmem -run='^$$' . | $(GO) run ./cmd/benchjson -out BENCH_sim.json

# The quick CI variant: one iteration per benchmark, just enough to
# keep BENCH_sim.json parseable and the trajectory fresh.
bench-short:
	set -o pipefail; $(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' . | $(GO) run ./cmd/benchjson -out BENCH_sim.json

# The full verify path: what CI runs.
verify: build vet test race
