package capybara

// Benchmarks regenerating every figure and table of the paper's
// evaluation (one benchmark per artifact; see DESIGN.md's
// per-experiment index). The interesting output is the custom metrics:
// each benchmark reports the headline quantity of its figure so that
// `go test -bench=.` doubles as a reproduction run. The rendered tables
// come from cmd/capybench.

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"

	"capybara/internal/core"
	"capybara/internal/experiments"
	"capybara/internal/fleet"
	"capybara/internal/shard"
	"capybara/internal/task"
)

// BenchmarkFigure2 regenerates the fixed-capacity trade-off traces.
func BenchmarkFigure2(b *testing.B) {
	var packets int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		packets = r.HighPackets
	}
	b.ReportMetric(float64(packets), "high-cap-packets")
}

// BenchmarkFigure3 regenerates the atomicity-vs-capacitance sweep.
func BenchmarkFigure3(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		points := experiments.Figure3()
		last = points[len(points)-1].Mops
	}
	b.ReportMetric(last, "Mops@20mF")
}

// BenchmarkFigure4 regenerates the atomicity-vs-volume sweep.
func BenchmarkFigure4(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(experiments.Figure4())
	}
	b.ReportMetric(float64(n), "sweep-points")
}

func matrix(b *testing.B) *experiments.Matrix {
	b.Helper()
	m, err := experiments.RunMatrix(experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkFigure8 regenerates the event-detection-accuracy grid. The
// reported metrics are the headline comparison: Capy-P vs Fixed
// accuracy averaged over the four applications.
func BenchmarkFigure8(b *testing.B) {
	var capy, fixed float64
	for i := 0; i < b.N; i++ {
		m := matrix(b)
		capy, fixed = 0, 0
		n := 0.0
		for _, byVariant := range m.Runs {
			capy += byVariant[core.CapyP].Accuracy().FractionCorrect()
			fixed += byVariant[core.Fixed].Accuracy().FractionCorrect()
			n++
		}
		capy /= n
		fixed /= n
	}
	b.ReportMetric(capy, "capyP-accuracy")
	b.ReportMetric(fixed, "fixed-accuracy")
	b.ReportMetric(capy/fixed, "improvement-x")
}

// BenchmarkMatrixParallel measures the sweep engine on the full
// Fig. 8/9/11 run matrix at 1, 2, and GOMAXPROCS workers; the
// jobs=1/jobs=N time ratio is the parallel speedup. The tables are
// byte-identical at every worker count (see the determinism golden
// tests), so the worker count is purely a wall-clock knob.
func BenchmarkMatrixParallel(b *testing.B) {
	for _, jobs := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := experiments.RunMatrixParallel(context.Background(),
					experiments.DefaultSeed, 1.0, jobs)
				if err != nil {
					b.Fatal(err)
				}
				if len(m.Runs) == 0 {
					b.Fatal("empty matrix")
				}
			}
		})
	}
}

// BenchmarkFigure9 regenerates the report-latency grid; the metric is
// the TempAlarm critical-path cost of Capy-R vs Capy-P.
func BenchmarkFigure9(b *testing.B) {
	var r, p float64
	for i := 0; i < b.N; i++ {
		m := matrix(b)
		ta := m.Runs["TempAlarm"]
		r = float64(ta[core.CapyR].Latency().Median)
		p = float64(ta[core.CapyP].Latency().Median)
	}
	b.ReportMetric(r, "capyR-median-s")
	b.ReportMetric(p, "capyP-median-s")
}

// BenchmarkFigure10TempAlarm regenerates the TA inter-arrival
// sensitivity sweep.
func BenchmarkFigure10TempAlarm(b *testing.B) {
	var pts int
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure10(experiments.TASensitivity())
		if err != nil {
			b.Fatal(err)
		}
		pts = len(points)
	}
	b.ReportMetric(float64(pts), "points")
}

// BenchmarkFigure10Gesture regenerates the GRC inter-arrival
// sensitivity sweep.
func BenchmarkFigure10Gesture(b *testing.B) {
	var pts int
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure10(experiments.GRCSensitivity())
		if err != nil {
			b.Fatal(err)
		}
		pts = len(points)
	}
	b.ReportMetric(float64(pts), "points")
}

// BenchmarkFigure11 regenerates the inter-sample distribution analysis.
func BenchmarkFigure11(b *testing.B) {
	var fixedGaps int
	for i := 0; i < b.N; i++ {
		m := matrix(b)
		fixedGaps = len(m.Runs["TempAlarm"][core.Fixed].Gaps())
	}
	b.ReportMetric(float64(fixedGaps), "fixed-gaps")
}

// BenchmarkMechanisms regenerates the §5.2 mechanism comparison.
func BenchmarkMechanisms(b *testing.B) {
	var coldStart float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Mechanisms()
		coldStart = float64(rows[0].ColdStart)
	}
	b.ReportMetric(coldStart, "switchedC-coldstart-s")
}

// BenchmarkCharacterization regenerates the §6.5 hardware table.
func BenchmarkCharacterization(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Characterization().Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkCapySat regenerates the §6.6 case study (two orbits).
func BenchmarkCapySat(b *testing.B) {
	var packets int
	for i := 0; i < b.N; i++ {
		s := experiments.CapySat(2)
		packets = s.Mission.Packets
	}
	b.ReportMetric(float64(packets), "packets")
}

// BenchmarkAblationBypass measures the bypass diode's charge-time win.
func BenchmarkAblationBypass(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = experiments.AblateBypass().Speedup
	}
	b.ReportMetric(speedup, "speedup-x")
}

// BenchmarkAblationSwitchDefault measures NO vs NC recovery.
func BenchmarkAblationSwitchDefault(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.AblateSwitchDefault())
	}
	b.ReportMetric(float64(rows), "variants")
}

// BenchmarkAblationESR measures the ESR-stranding sweep.
func BenchmarkAblationESR(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.AblateESR())
	}
	b.ReportMetric(float64(rows), "points")
}

// BenchmarkAblationDeficit measures the pre-charge deficit sweep.
func BenchmarkAblationDeficit(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblateDeficit()
		for _, r := range rows {
			if r.Deficit == 0.3 {
				loss = r.LossVsTop
			}
		}
	}
	b.ReportMetric(loss, "loss@0.3V")
}

// BenchmarkRelatedFederated compares UFoP-style federation against
// reconfigurable banks (§7).
func BenchmarkRelatedFederated(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := experiments.Federated()
		ratio = float64(r.MaxAtomicGanged) / float64(r.MaxAtomicFederated)
	}
	b.ReportMetric(ratio, "ganged-vs-federated-x")
}

// BenchmarkRelatedCheckpointing compares the checkpointing discipline
// against task restart (§7).
func BenchmarkRelatedCheckpointing(b *testing.B) {
	var wasted float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Checkpointing()
		if err != nil {
			b.Fatal(err)
		}
		wasted = r.CoarseTask.ReexecutedOps / 1e6
	}
	b.ReportMetric(wasted, "coarse-waste-Mops")
}

// BenchmarkAblationSleep measures the sleep-between-samples ablation.
func BenchmarkAblationSleep(b *testing.B) {
	var maxGap float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblateSleep()
		maxGap = float64(rows[len(rows)-1].MaxGap)
	}
	b.ReportMetric(maxGap, "max-gap-s")
}

// fleetBenchConfig is the shared workload of the fleet benchmarks: 10k
// devices across the full 48-cohort grid at 5% event scale — large
// enough that per-device construction and retention would dominate a
// naive loop, small enough for bench-short CI.
func fleetBenchConfig() fleet.Config {
	return fleet.Config{N: 10_000, Seed: 1, Scale: 0.05}
}

// BenchmarkFleet measures fleet-engine throughput at -jobs=GOMAXPROCS
// with all three perf layers on (worker-shared memo caches, recycled
// scratch, streaming aggregation). devices/sec is the headline;
// memo-hit-rate is the cache-effectiveness diagnostic. The speedup
// claim is this benchmark against BenchmarkFleetBaseline: the engine
// parallelizes across cohort-independent devices, so on a P-core
// machine the ratio is ~P times the single-worker gain (measured
// serially here: recycling+memo alone give ~1.1x; P>=4 cores puts the
// combined ratio well past 5x).
func BenchmarkFleet(b *testing.B) {
	var res *fleet.Result
	for i := 0; i < b.N; i++ {
		r, err := fleet.Run(context.Background(), fleetBenchConfig())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.DevicesSec, "devices/sec")
	b.ReportMetric(res.Cache.HitRate(), "memo-hit-rate")
}

// BenchmarkFleetBaseline is the pre-fleet single-device loop on the
// identical workload: serial, every device built fresh with its own
// per-instance memo cache (fleet.Config.NoRecycle). The report is
// byte-identical to BenchmarkFleet's (TestFleetRecycleInvariant); only
// throughput differs.
func BenchmarkFleetBaseline(b *testing.B) {
	var res *fleet.Result
	for i := 0; i < b.N; i++ {
		cfg := fleetBenchConfig()
		cfg.Jobs = 1
		cfg.NoRecycle = true
		r, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.DevicesSec, "devices/sec")
}

// BenchmarkFleetBatch measures the keyed batch-lockstep path in
// isolation: the BenchmarkFleet workload at -jobs=1 with unlimited
// replay width and the lockstep cursor disabled (fleet.Config.NoVector),
// so every replay still pays key construction plus the hash-map probe.
// The devices/sec delta against BenchmarkFleetScalar is purely the
// batch engine; against BenchmarkFleetVectorized it is purely the
// cursor. batch-replay-rate is the fraction of device operations
// answered by replaying a batch leader's solve; batch-mean-width is
// how many devices, on average, advanced through one solve. The
// report is byte-identical to the scalar path's
// (TestFleetBatchInvariant).
func BenchmarkFleetBatch(b *testing.B) {
	var res *fleet.Result
	for i := 0; i < b.N; i++ {
		cfg := fleetBenchConfig()
		cfg.Jobs = 1
		cfg.NoVector = true
		r, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.DevicesSec, "devices/sec")
	b.ReportMetric(res.Batch.HitRate(), "batch-replay-rate")
	b.ReportMetric(res.Batch.MeanWidth(), "batch-mean-width")
}

// BenchmarkFleetVectorized is BenchmarkFleetBatch with the lockstep
// cursor on: replays that stay in lockstep follow the cache's memoized
// chain edges and verify the live state directly against the
// predecessor's post-state image, skipping key construction and the
// hash probe entirely. vector-rate is the fraction of replays served
// through the cursor; the devices/sec delta against BenchmarkFleetBatch
// is the cursor's whole win. Fused stepping is off, so this is also the
// pure stage-2 control for BenchmarkFleetFused. Byte-identical to both
// (TestFleetVectorInvariant).
func BenchmarkFleetVectorized(b *testing.B) {
	var res *fleet.Result
	for i := 0; i < b.N; i++ {
		cfg := fleetBenchConfig()
		cfg.Jobs = 1
		cfg.NoFuse = true
		r, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.DevicesSec, "devices/sec")
	b.ReportMetric(res.Batch.HitRate(), "batch-replay-rate")
	b.ReportMetric(res.Batch.VectorRate(), "vector-rate")
}

// BenchmarkFleetFused is the stage-3 engine: fused task-engine stepping
// over the vectorized batch path, with the stage-4 extensions (cohort
// -shared spins, phase-keyed tapes) pinned off so it stays the clean
// per-device-fusion control for BenchmarkFleetCohortSpin. Lockstep
// cohorts replay whole engine steps — power-manager prepare, task body,
// transition commit — from recorded effect tapes, and bit-exact
// fixed-point steps spin for whole verified spans without returning to
// the engine loop. fused-rate is the fraction of eligible engine steps
// served by replay (fleet-wide); capyP-fused-rate scopes it to the
// Capy-P steady cohorts, the lockstep population the paper's
// architecture targets (time-varying-source cohorts are designed out:
// their steps fail the constancy evidence and adaptively bypass). The
// devices/sec delta against BenchmarkFleetVectorized is fusion's whole
// win; the report is byte-identical (TestFleetVectorInvariant).
func BenchmarkFleetFused(b *testing.B) {
	var res *fleet.Result
	for i := 0; i < b.N; i++ {
		cfg := fleetBenchConfig()
		cfg.Jobs = 1
		cfg.NoCohortSpin = true
		cfg.NoPhaseKeys = true
		r, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	var capyP task.FuseStats
	for i, cs := range res.Cohorts {
		if cs.Cohort.Variant == core.CapyP && cs.Cohort.Scenario == fleet.Steady {
			capyP.Add(res.CohortFuse[i])
		}
	}
	b.ReportMetric(res.DevicesSec, "devices/sec")
	b.ReportMetric(res.Fuse.FusedRate(), "fused-rate")
	b.ReportMetric(capyP.FusedRate(), "capyP-fused-rate")
	b.ReportMetric(res.Fuse.HintRate(), "fuse-hint-rate")
}

// BenchmarkFleetCohortSpin is the full stage-4 engine (the default knob
// mix): cohort-shared fixed-point spins and phase-keyed tapes over the
// fused vectorized batch path. Spin plans built by the first cohort
// member through a fixed point are cached on the template and reused by
// every later member — cohort-spin-rate is the fraction of spins that
// reused a plan, spin-fold the resulting per-plan amortization — and
// phase keys let charges under finite constancy horizons record and
// replay, which is what moves the PWM cohorts' fused rate off zero
// (pwm-fused-rate; compare BenchmarkFleetFused, where it is pinned at
// 0). The devices/sec delta against BenchmarkFleetFused is stage 4's
// whole win; the report is byte-identical (TestFleetCohortSpinInvariant).
func BenchmarkFleetCohortSpin(b *testing.B) {
	var res *fleet.Result
	for i := 0; i < b.N; i++ {
		cfg := fleetBenchConfig()
		cfg.Jobs = 1
		r, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	var capyP, pwm task.FuseStats
	for i, cs := range res.Cohorts {
		if cs.Cohort.Variant == core.CapyP && cs.Cohort.Scenario == fleet.Steady {
			capyP.Add(res.CohortFuse[i])
		}
		if cs.Cohort.Scenario == fleet.PWM {
			pwm.Add(res.CohortFuse[i])
		}
	}
	b.ReportMetric(res.DevicesSec, "devices/sec")
	b.ReportMetric(res.Fuse.FusedRate(), "fused-rate")
	b.ReportMetric(capyP.FusedRate(), "capyP-fused-rate")
	b.ReportMetric(pwm.FusedRate(), "pwm-fused-rate")
	b.ReportMetric(res.Fuse.CohortSpinRate(), "cohort-spin-rate")
	b.ReportMetric(res.Fuse.SpinFold(), "spin-fold-x")
	b.ReportMetric(res.Fuse.PhaseHitRate(), "phase-hit-rate")
}

// BenchmarkFleetScalar is BenchmarkFleetBatch's control: identical
// workload and -jobs=1, batch path disabled (fleet.Config.Batch < 0).
func BenchmarkFleetScalar(b *testing.B) {
	var res *fleet.Result
	for i := 0; i < b.N; i++ {
		cfg := fleetBenchConfig()
		cfg.Jobs = 1
		cfg.Batch = -1
		r, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.DevicesSec, "devices/sec")
}

// BenchmarkFleetSharded runs the BenchmarkFleet workload through the
// distributed path: a loopback TCP coordinator leasing chunks to two
// in-process workers (internal/shard). The report is byte-identical to
// BenchmarkFleet's; the delta versus BenchmarkFleet is the protocol's
// whole overhead — framing, gob encode/decode of per-chunk partials,
// and lease bookkeeping — which stays in the low percents because a
// chunk's simulation time dwarfs its ~10 KB partial. On a multi-core
// machine the two workers' chunks genuinely overlap, so devices/sec
// scales with cores exactly as the in-process pool does; across real
// machines it scales past a single host's core count.
func BenchmarkFleetSharded(b *testing.B) {
	var res *fleet.Result
	for i := 0; i < b.N; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addr := ln.Addr().String()
		var wg sync.WaitGroup
		workerErrs := make([]error, 2)
		for w := range workerErrs {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				workerErrs[w] = shard.Work(context.Background(), addr, 0, shard.WorkerOptions{})
			}(w)
		}
		r, err := shard.Serve(context.Background(), ln, fleetBenchConfig(), shard.Options{})
		if err != nil {
			b.Fatal(err)
		}
		wg.Wait()
		for w, err := range workerErrs {
			if err != nil {
				b.Fatalf("worker %d: %v", w, err)
			}
		}
		res = r
	}
	b.ReportMetric(res.DevicesSec, "devices/sec")
	b.ReportMetric(float64(res.Workers), "shard-workers")
}

// BenchmarkMultiSeed aggregates Fig. 8 accuracy across 3 independent
// event sequences.
func BenchmarkMultiSeed(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MultiSeed("TempAlarm",
			[]core.Variant{core.Fixed, core.CapyP}, experiments.DefaultSeeds(3), 1.0)
		if err != nil {
			b.Fatal(err)
		}
		spread = rows[1].Min - rows[0].Max
	}
	b.ReportMetric(spread, "capyP-min-minus-fixed-max")
}
