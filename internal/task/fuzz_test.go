package task

import (
	"fmt"
	"testing"

	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/sim"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// FuzzCommitAtomicity drives the task engine with fuzz-scripted staged
// writes, deletes, read-backs, and brownout-inducing compute bursts,
// and asserts Chain's commit contract whatever the script:
//
//   - a restarted task observes exactly the last committed NV state —
//     staged writes from failed attempts never leak;
//   - reads see the task's own staged writes (Alpaca privatization);
//   - paired channel writes commit together or not at all, so a reader
//     can never observe a torn pair.
//
// The device is sized so long compute bursts genuinely brown out
// mid-task, exercising the discard path, not just the happy path.
func FuzzCommitAtomicity(f *testing.F) {
	f.Add([]byte{0, 1, 5, 3, 200, 0, 2, 1, 0})
	f.Add([]byte{0, 0, 1, 1, 0, 0, 3, 255, 255, 0, 0, 2})
	f.Add([]byte{3, 9, 9})
	f.Add([]byte{2, 3, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		bank := storage.MustBank("fuzz-bank",
			storage.GroupFor(storage.CeramicX5R, 200*units.MicroFarad),
			storage.GroupFor(storage.Tantalum, 330*units.MicroFarad))
		arr := reservoir.NewArray(bank, reservoir.NormallyOpen)
		sys := power.NewSystem(harvest.RegulatedSupply{Max: 2 * units.MilliWatt, V: 3.0})
		dev := sim.NewDevice(sys, arr, device.MSP430FR5969())

		// model is the NV word state the last successful commit left
		// behind for the fuzzed key space.
		model := map[string]uint64{}
		keyOf := func(b byte) string { return fmt.Sprintf("k%d", b%4) }
		var expA, expB uint64
		committed := false
		attempt := 0

		writer := &Task{Name: "writer", Run: func(c *Ctx) Next {
			attempt++
			// Every (re)entry must see exactly the committed state: a
			// failed attempt's staged writes must have vanished.
			for i := 0; i < 4; i++ {
				key := fmt.Sprintf("k%d", i)
				got, ok := dev.NV.Word(key)
				want, wok := model[key]
				if ok != wok || (ok && got != want) {
					t.Fatalf("restart leaked staged state: %s = (%d,%v), committed (%d,%v)",
						key, got, ok, want, wok)
				}
			}
			staged := map[string]uint64{}
			deleted := map[string]bool{}
			for i := 0; i+2 < len(script); i += 3 {
				op, kb, vb := script[i]%4, script[i+1], script[i+2]
				key := keyOf(kb)
				switch op {
				case 0:
					v := uint64(vb)
					c.SetWord(key, v)
					staged[key] = v
					delete(deleted, key)
				case 1:
					c.Delete(key)
					delete(staged, key)
					deleted[key] = true
				case 2:
					got, ok := c.Word(key)
					want, wok := staged[key]
					if !wok && !deleted[key] {
						want, wok = model[key]
					}
					if ok != wok || (ok && got != want) {
						t.Fatalf("staged read-back of %s = (%d,%v), want (%d,%v)",
							key, got, ok, want, wok)
					}
				case 3:
					// Up to ~1 Mop on the first attempt — enough to outrun
					// the buffer and brown out mid-task. The burst halves on
					// every restart so the task is eventually feasible (a
					// constant oversized burst would honestly livelock;
					// Capybara's answer to that is a bigger energy mode, not
					// this fixed bank).
					shift := attempt - 1
					if shift > 20 {
						shift = 20
					}
					c.Compute(float64(vb) * 5000 / float64(uint(1)<<shift))
				}
			}
			n := uint64(len(script)) + 1
			c.ChanOut("reader", "a", n)
			c.ChanOut("reader", "b", 2*n)
			// The body is about to complete: the engine commits next.
			for k, v := range staged {
				model[k] = v
			}
			for k := range deleted {
				delete(model, k)
			}
			expA, expB = n, 2*n
			committed = true
			return "reader"
		}}
		reader := &Task{Name: "reader", Run: func(c *Ctx) Next {
			a, okA := c.ChanIn("a", "writer")
			b, okB := c.ChanIn("b", "writer")
			if okA != okB {
				t.Fatalf("torn channel pair: a=(%d,%v) b=(%d,%v)", a, okA, b, okB)
			}
			if !okA || a != expA || b != expB {
				t.Fatalf("reader saw (%d,%d), writer committed (%d,%d)", a, b, expA, expB)
			}
			return Halt
		}}

		eng := NewEngine(dev, MustProgram("writer", writer, reader), &greedyPM{dev: dev, vtop: 2.4})
		if err := eng.Run(600); err != nil {
			t.Fatalf("engine error: %v", err)
		}
		// The 2 mW supply always recharges within the horizon, so the
		// program must have finished — and the final NV state must match
		// the model exactly.
		if !committed {
			t.Fatalf("writer never committed in 600 s (restarts: %d)", eng.Restarts)
		}
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("k%d", i)
			got, ok := dev.NV.Word(key)
			want, wok := model[key]
			if ok != wok || (ok && got != want) {
				t.Fatalf("final NV %s = (%d,%v), model (%d,%v)", key, got, ok, want, wok)
			}
		}
	})
}
