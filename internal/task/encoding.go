package task

import (
	"encoding/binary"
	"math"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

func appendFloatBytes(b []byte, v float64) []byte {
	out := make([]byte, len(b), len(b)+8)
	copy(out, b)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return append(out, buf[:]...)
}

func decodeFloats(b []byte) []float64 {
	out := make([]float64, 0, len(b)/8)
	for i := 0; i+8 <= len(b); i += 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[i:])))
	}
	return out
}
