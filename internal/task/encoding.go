package task

import (
	"encoding/binary"
	"math"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// appendFloatBytes encodes v onto a fresh copy of b — for staging a
// series whose backing bytes are not owned by the caller (an NV view).
func appendFloatBytes(b []byte, v float64) []byte {
	out := make([]byte, len(b), len(b)+64)
	copy(out, b)
	return appendFloatInPlace(out, v)
}

// appendFloatInPlace encodes v onto b itself (amortized growth); the
// caller must own b.
func appendFloatInPlace(b []byte, v float64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return append(b, buf[:]...)
}

func decodeFloats(b []byte) []float64 {
	out := make([]float64, 0, len(b)/8)
	for i := 0; i+8 <= len(b); i += 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[i:])))
	}
	return out
}
