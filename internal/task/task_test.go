package task

import (
	"reflect"
	"testing"

	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/sim"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// greedyPM is a minimal test power manager: whenever the device is off
// it recharges the active configuration to vtop and boots. It never
// reconfigures — equivalent to a fixed-capacity system.
type greedyPM struct {
	dev  *sim.Device
	vtop units.Voltage
}

func (m *greedyPM) Prepare(_ *Task, alive bool, deadline units.Seconds) bool {
	if alive {
		return true
	}
	for m.dev.Now() < deadline {
		if _, ok := m.dev.ChargeTo(m.vtop, deadline-m.dev.Now()); !ok {
			return false
		}
		if m.dev.Boot() {
			return true
		}
	}
	return false
}

func newTestEngine(t *testing.T, p units.Power, prog *Program) *Engine {
	t.Helper()
	// The bank includes one EDLC unit so that single radio packets are
	// feasible; sustained high-power drains still brown out.
	bank := storage.MustBank("test-bank",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 330*units.MicroFarad),
		storage.GroupOf(storage.EDLC, 1))
	arr := reservoir.NewArray(bank, reservoir.NormallyOpen)
	sys := power.NewSystem(harvest.RegulatedSupply{Max: p, V: 3.0})
	dev := sim.NewDevice(sys, arr, device.MSP430FR5969())
	return NewEngine(dev, prog, &greedyPM{dev: dev, vtop: 2.4})
}

func TestProgramValidation(t *testing.T) {
	body := func(*Ctx) Next { return Halt }
	if _, err := NewProgram("main", &Task{Name: "main", Run: body}); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	if _, err := NewProgram("missing", &Task{Name: "main", Run: body}); err == nil {
		t.Error("missing entry accepted")
	}
	if _, err := NewProgram("a", &Task{Name: "a", Run: body}, &Task{Name: "a", Run: body}); err == nil {
		t.Error("duplicate task accepted")
	}
	if _, err := NewProgram("a", &Task{Name: "a"}); err == nil {
		t.Error("bodyless task accepted")
	}
	if _, err := NewProgram("a", &Task{Name: "", Run: body}); err == nil {
		t.Error("unnamed task accepted")
	}
	if _, err := NewProgram("a", &Task{Name: "a", Run: body, PreburstBurst: "big"}); err == nil {
		t.Error("half preburst annotation accepted")
	}
}

func TestProgramNamesAndLookup(t *testing.T) {
	body := func(*Ctx) Next { return Halt }
	p := MustProgram("b", &Task{Name: "b", Run: body}, &Task{Name: "a", Run: body})
	if got := p.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Names = %v", got)
	}
	if _, ok := p.Task("a"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := p.Task("zzz"); ok {
		t.Fatal("phantom task found")
	}
}

func TestEngineRunsToHalt(t *testing.T) {
	var order []string
	prog := MustProgram("first",
		&Task{Name: "first", Run: func(c *Ctx) Next {
			order = append(order, "first")
			c.Compute(1000)
			c.SetWord("x", 41)
			return "second"
		}},
		&Task{Name: "second", Run: func(c *Ctx) Next {
			order = append(order, "second")
			c.SetWord("x", c.WordOr("x", 0)+1)
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"first", "second"}) {
		t.Fatalf("order = %v", order)
	}
	if got := e.Dev.NV.WordOr("x", 0); got != 42 {
		t.Fatalf("committed x = %d, want 42", got)
	}
	if e.Restarts != 0 {
		t.Fatalf("restarts = %d", e.Restarts)
	}
}

func TestPowerFailureRestartsTask(t *testing.T) {
	attempts := 0
	prog := MustProgram("hungry",
		&Task{Name: "hungry", Run: func(c *Ctx) Next {
			attempts++
			c.AppendFloat("trace", float64(attempts))
			if attempts < 3 {
				// Demand far more than the small bank stores: brownout.
				c.drain(30*units.MilliWatt, 10)
			}
			c.Compute(1000)
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if e.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", e.Restarts)
	}
	// Only the successful attempt's staged writes survive: the series
	// holds exactly one element, from attempt 3.
	if got := e.Dev.NV.FloatSeries("trace"); !reflect.DeepEqual(got, []float64{3}) {
		t.Fatalf("committed series = %v, want [3] (failed attempts must be discarded)", got)
	}
}

func TestImpossibleTaskLoopsUntilHorizon(t *testing.T) {
	prog := MustProgram("impossible",
		&Task{Name: "impossible", Run: func(c *Ctx) Next {
			c.drain(30*units.MilliWatt, 10) // never satisfiable on the small bank
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(30); err != nil {
		t.Fatal(err)
	}
	if e.Dev.Now() < 30 {
		t.Fatalf("engine stopped early at %v", e.Dev.Now())
	}
	if e.Restarts == 0 {
		t.Fatal("expected restarts")
	}
}

func TestCurrentTaskPointerSurvives(t *testing.T) {
	ran := map[string]int{}
	prog := MustProgram("a",
		&Task{Name: "a", Run: func(c *Ctx) Next { ran["a"]++; return "b" }},
		&Task{Name: "b", Run: func(c *Ctx) Next {
			ran["b"]++
			if ran["b"] == 1 {
				c.drain(30*units.MilliWatt, 10) // fail once
			}
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	// Task a must NOT re-run when b fails: the durable pointer was
	// already advanced to b.
	if ran["a"] != 1 || ran["b"] != 2 {
		t.Fatalf("ran = %v, want a:1 b:2", ran)
	}
}

func TestPrivatizationReadsOwnWrites(t *testing.T) {
	prog := MustProgram("t",
		&Task{Name: "t", Run: func(c *Ctx) Next {
			c.SetWord("k", 7)
			if got := c.WordOr("k", 0); got != 7 {
				t.Errorf("staged read = %d", got)
			}
			c.SetFloat("f", 1.5)
			if got := c.FloatOr("f", 0); got != 1.5 {
				t.Errorf("staged float = %g", got)
			}
			c.AppendFloat("s", 1)
			c.AppendFloat("s", 2)
			if got := c.FloatSeries("s"); !reflect.DeepEqual(got, []float64{1, 2}) {
				t.Errorf("staged series = %v", got)
			}
			c.Delete("k")
			if _, ok := c.Word("k"); ok {
				t.Error("deleted key still visible")
			}
			c.SetWord("k", 9) // write after delete resurrects
			if got := c.WordOr("k", 0); got != 9 {
				t.Errorf("resurrected key = %d", got)
			}
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if got := e.Dev.NV.WordOr("k", 0); got != 9 {
		t.Fatalf("committed k = %d", got)
	}
}

func TestDeleteCommits(t *testing.T) {
	prog := MustProgram("w",
		&Task{Name: "w", Run: func(c *Ctx) Next { c.SetWord("gone", 1); return "d" }},
		&Task{Name: "d", Run: func(c *Ctx) Next { c.Delete("gone"); return Halt }},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Dev.NV.Word("gone"); ok {
		t.Fatal("deleted key survived commit")
	}
}

func TestUndefinedTransitionErrors(t *testing.T) {
	prog := MustProgram("t",
		&Task{Name: "t", Run: func(c *Ctx) Next { return "nowhere" }},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err == nil {
		t.Fatal("undefined transition accepted")
	}
}

func TestSampleAndTransmitTiming(t *testing.T) {
	var sampleAt, txDone units.Seconds
	tmp := device.TMP36()
	radio := device.CC2650()
	prog := MustProgram("sense",
		&Task{Name: "sense", Run: func(c *Ctx) Next {
			before := c.Now()
			sampleAt = c.Sample(tmp)
			if sampleAt != before+tmp.Warmup {
				t.Errorf("sample at %v, want warm-up offset %v", sampleAt, before+tmp.Warmup)
			}
			if c.Now() != sampleAt+tmp.OpTime {
				t.Errorf("post-sample clock %v", c.Now())
			}
			txDone = c.Transmit(radio, 25)
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if txDone <= sampleAt {
		t.Fatalf("tx completion %v not after sample %v", txDone, sampleAt)
	}
}

func TestSampleBurst(t *testing.T) {
	prox := device.ProximitySensor()
	var times []units.Seconds
	prog := MustProgram("burst",
		&Task{Name: "burst", Run: func(c *Ctx) Next {
			times = c.SampleBurst(prox, 4)
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if len(times) != 4 {
		t.Fatalf("burst returned %d times", len(times))
	}
	for i := 1; i < len(times); i++ {
		gap := float64(times[i] - times[i-1])
		if diff := gap - float64(prox.OpTime); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("gap %d = %v, want %v", i, times[i]-times[i-1], prox.OpTime)
		}
	}
}

func TestHaltClearsPointer(t *testing.T) {
	prog := MustProgram("t", &Task{Name: "t", Run: func(c *Ctx) Next { return Halt }})
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if got := e.CurrentTask(); got != "t" {
		t.Fatalf("after halt CurrentTask = %q, want entry default", got)
	}
}

func TestPrepareDeadlineStopsEngine(t *testing.T) {
	// A dead source: the power manager can never charge; Run must
	// return cleanly rather than spin.
	prog := MustProgram("t", &Task{Name: "t", Run: func(c *Ctx) Next { return Halt }})
	small := storage.MustBank("small", storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad))
	arr := reservoir.NewArray(small, reservoir.NormallyOpen)
	sys := power.NewSystem(harvest.RegulatedSupply{Max: 0, V: 3.0})
	dev := sim.NewDevice(sys, arr, device.MSP430FR5969())
	e := NewEngine(dev, prog, &greedyPM{dev: dev, vtop: 2.4})
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if dev.Now() < 100 {
		t.Fatalf("deadline not consumed: %v", dev.Now())
	}
}

func TestCtxSleepAndActivate(t *testing.T) {
	led := device.LED()
	var before, afterSleep, activateStart units.Seconds
	prog := MustProgram("t",
		&Task{Name: "t", Run: func(c *Ctx) Next {
			before = c.Now()
			c.Sleep(0.5)
			afterSleep = c.Now()
			activateStart = c.Activate(led, 0.25)
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if afterSleep-before != 0.5 {
		t.Fatalf("sleep advanced %v, want 0.5", afterSleep-before)
	}
	if activateStart != afterSleep+led.Warmup {
		t.Fatalf("activate start = %v", activateStart)
	}
	if got := e.Dev.Now() - activateStart; got != 0.25 {
		t.Fatalf("activate held %v, want 0.25", got)
	}
}

func TestEngineProfileAccumulates(t *testing.T) {
	prog := MustProgram("t",
		&Task{Name: "t", Run: func(c *Ctx) Next {
			c.Compute(80_000)
			if c.WordOr("n", 0) >= 1 {
				return Halt
			}
			c.SetWord("n", 1)
			return "t"
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	p := e.Profile["t"]
	if p == nil || p.Runs != 2 {
		t.Fatalf("profile = %+v", p)
	}
	if p.MeanTime() <= 0 || p.MeanEnergy() <= 0 || p.MeanPower() <= 0 {
		t.Fatalf("profile means not positive: %+v", p)
	}
}
