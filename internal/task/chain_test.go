package task

import (
	"testing"

	"capybara/internal/units"
)

func TestChanOutInAcrossTasks(t *testing.T) {
	var got uint64
	prog := MustProgram("producer",
		&Task{Name: "producer", Run: func(c *Ctx) Next {
			c.ChanOut("consumer", "reading", 41)
			return "consumer"
		}},
		&Task{Name: "consumer", Run: func(c *Ctx) Next {
			got = c.ChanInOr(0, "reading", "producer")
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if got != 41 {
		t.Fatalf("consumer read %d, want 41", got)
	}
}

func TestChanInLatestWriterWins(t *testing.T) {
	// Chain's multi-input resolution: the most recently committed write
	// among the named source channels wins.
	var got uint64
	prog := MustProgram("a",
		&Task{Name: "a", Run: func(c *Ctx) Next {
			c.ChanOut("sink", "v", 1)
			return "b"
		}},
		&Task{Name: "b", Run: func(c *Ctx) Next {
			c.ChanOut("sink", "v", 2)
			return "sink"
		}},
		&Task{Name: "sink", Run: func(c *Ctx) Next {
			got = c.ChanInOr(0, "v", "a", "b")
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("latest-writer resolution failed: got %d, want 2", got)
	}
	// Source order in the read must not matter.
	var got2 uint64
	prog2 := MustProgram("a",
		&Task{Name: "a", Run: func(c *Ctx) Next { c.ChanOut("sink", "v", 1); return "b" }},
		&Task{Name: "b", Run: func(c *Ctx) Next { c.ChanOut("sink", "v", 2); return "sink" }},
		&Task{Name: "sink", Run: func(c *Ctx) Next {
			got2 = c.ChanInOr(0, "v", "b", "a")
			return Halt
		}},
	)
	e2 := newTestEngine(t, 10*units.MilliWatt, prog2)
	if err := e2.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if got2 != 2 {
		t.Fatalf("order-dependent resolution: got %d", got2)
	}
}

func TestChanInDoesNotSeeOwnStagedWrites(t *testing.T) {
	// Chain semantics: a task's reads are stable across restarts — it
	// never observes its own uncommitted ChanOut.
	prog := MustProgram("t",
		&Task{Name: "t", Run: func(c *Ctx) Next {
			c.ChanOut("t", "x", 99)
			if v, ok := c.ChanIn("x", "t"); ok {
				t.Errorf("own staged write visible: %d", v)
			}
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
}

func TestSelfChannelCarriesLoopState(t *testing.T) {
	var iterations []uint64
	prog := MustProgram("loop",
		&Task{Name: "loop", Run: func(c *Ctx) Next {
			n, _ := c.Self("n")
			iterations = append(iterations, n)
			if n >= 3 {
				return Halt
			}
			c.SelfOut("n", n+1)
			return "loop"
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 2, 3}
	if len(iterations) != len(want) {
		t.Fatalf("iterations = %v", iterations)
	}
	for i := range want {
		if iterations[i] != want[i] {
			t.Fatalf("iterations = %v, want %v", iterations, want)
		}
	}
}

func TestChanWritesDiscardedOnPowerFailure(t *testing.T) {
	attempt := 0
	var got uint64
	prog := MustProgram("flaky",
		&Task{Name: "flaky", Run: func(c *Ctx) Next {
			attempt++
			c.ChanOut("sink", "v", uint64(attempt))
			if attempt < 3 {
				c.drain(30*units.MilliWatt, 10) // brownout
			}
			return "sink"
		}},
		&Task{Name: "sink", Run: func(c *Ctx) Next {
			got = c.ChanInOr(0, "v", "flaky")
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	// Only the successful third attempt's write committed.
	if got != 3 {
		t.Fatalf("sink read %d, want 3 (failed attempts must discard)", got)
	}
}

func TestChanFloatHelpers(t *testing.T) {
	var got float64
	prog := MustProgram("p",
		&Task{Name: "p", Run: func(c *Ctx) Next {
			c.ChanOutFloat("q", "temp", 21.5)
			return "q"
		}},
		&Task{Name: "q", Run: func(c *Ctx) Next {
			got = c.ChanInFloat(0, "temp", "p")
			if miss := c.ChanInFloat(-1, "nothing", "p"); miss != -1 {
				t.Errorf("default not returned: %g", miss)
			}
			return Halt
		}},
	)
	e := newTestEngine(t, 10*units.MilliWatt, prog)
	if err := e.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if got != 21.5 {
		t.Fatalf("float channel read %g", got)
	}
}
