package task

import (
	"math/rand"
	"testing"

	"capybara/internal/device"
	"capybara/internal/env"
	"capybara/internal/harvest"
	"capybara/internal/metrics"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/sim"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// fusePM is greedyPM plus the counter surface fused replay needs: the
// minimal power manager that makes an engine fusible.
type fusePM struct {
	greedyPM
	reconfigs  int
	precharges int
}

func (m *fusePM) FuseCounters() (reconfigs, precharges *int) {
	return &m.reconfigs, &m.precharges
}

// newFusedEngine builds an engine on deterministic hardware with a
// seeded RNG stream, optionally wired to a shared StepFuser the way the
// fleet's application builders wire one.
func newFusedEngine(t *testing.T, p units.Power, prog *Program, rngSeed int64, fuser *StepFuser) *Engine {
	t.Helper()
	bank := storage.MustBank("fuse-bank",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 330*units.MicroFarad),
		storage.GroupOf(storage.EDLC, 1))
	arr := reservoir.NewArray(bank, reservoir.NormallyOpen)
	sys := power.NewSystem(harvest.RegulatedSupply{Max: p, V: 3.0})
	dev := sim.NewDevice(sys, arr, device.MSP430FR5969())
	pm := &fusePM{greedyPM: greedyPM{dev: dev, vtop: 2.4}}
	e := NewEngine(dev, prog, pm)
	e.RNG = rand.New(rand.NewSource(rngSeed))
	if fuser != nil {
		e.Fuse = fuser
		e.FuseSched = env.Schedule{}
		e.Rec = &metrics.Recorder{}
	}
	return e
}

// rngProgram is a three-task cycle whose bodies draw 1, 2, and 3 RNG
// values per step and feed them into the compute cost, so a replayed
// step both skips draws (the fast-forward under test) and carries
// draw-dependent effects on the clock and energy accumulators.
func rngProgram() *Program {
	mk := func(name string, draws int, next Next) *Task {
		return &Task{
			Name: name,
			Run: func(c *Ctx) Next {
				for i := 0; i < draws; i++ {
					c.Compute(2_000 + 3_000*c.Rand())
				}
				return next
			},
		}
	}
	return MustProgram("a",
		mk("a", 1, "b"),
		mk("b", 2, "c"),
		mk("c", 3, "a"))
}

// TestFuseRNGFastForward is the RNG replay-soundness property test: for
// randomized supply power, horizon, and RNG seed, a follower device
// running entirely through fused replays must leave its RNG stream —
// and every report-visible accumulator — exactly where a scalar run of
// the same device leaves them. The stream check draws past the horizon:
// if a replay fast-forwarded one draw too few or too many, the very
// next value diverges.
func TestFuseRNGFastForward(t *testing.T) {
	trials := 500
	if testing.Short() {
		trials = 50
	}
	rng := rand.New(rand.NewSource(0xf00d))
	var replays, records uint64
	for trial := 0; trial < trials; trial++ {
		prog := rngProgram()
		p := units.Power(1.5+6.5*rng.Float64()) * units.MilliWatt
		horizon := units.Seconds(5 + 20*rng.Float64())
		rngSeed := rng.Int63()

		fuser := NewStepFuser()
		leader := newFusedEngine(t, p, prog, rngSeed, fuser)
		fuser.BeginDevice()
		if err := leader.Run(horizon); err != nil {
			t.Fatalf("trial %d: leader: %v", trial, err)
		}
		follower := newFusedEngine(t, p, prog, rngSeed, fuser)
		fuser.BeginDevice()
		if err := follower.Run(horizon); err != nil {
			t.Fatalf("trial %d: follower: %v", trial, err)
		}
		control := newFusedEngine(t, p, prog, rngSeed, nil)
		if err := control.Run(horizon); err != nil {
			t.Fatalf("trial %d: control: %v", trial, err)
		}

		if got, want := follower.Dev.Now(), control.Dev.Now(); got != want {
			t.Fatalf("trial %d: follower clock %v, control %v", trial, got, want)
		}
		if got, want := follower.Dev.Stats, control.Dev.Stats; got != want {
			t.Fatalf("trial %d: follower stats %+v, control %+v", trial, got, want)
		}
		if got, want := follower.Restarts, control.Restarts; got != want {
			t.Fatalf("trial %d: follower restarts %d, control %d", trial, got, want)
		}
		for i := 0; i < 16; i++ {
			if got, want := follower.RNG.Float64(), control.RNG.Float64(); got != want {
				t.Fatalf("trial %d: RNG stream diverged %d draws past the horizon: follower %v, control %v",
					trial, i, got, want)
			}
		}
		st := fuser.Stats()
		replays += st.Replays
		records += st.Records
	}
	// The property is only meaningful if fusion actually engaged.
	if records == 0 || replays == 0 {
		t.Fatalf("fusion never engaged across %d trials (records=%d replays=%d) — property is vacuous",
			trials, records, replays)
	}
}
