package task

import (
	"fmt"
	"sort"

	"capybara/internal/device"
)

// This file implements Chain's channel abstraction (Colin & Lucia,
// OOPSLA 2016) on top of the engine's commit machinery. A channel
// CH(src, dst) carries named fields from one task to another; a
// multi-input read resolves to the most recently committed write among
// the named source channels.
//
// Chain semantics differ from the Ctx's flat Word/Float operations
// (which are Alpaca-style: reads see the task's own staged writes):
// a ChanIn never observes the current execution's own ChanOut — it sees
// only committed values, so a restarted task always reads the same
// inputs it read on its first attempt. Both styles are restart-safe;
// the channel style additionally makes data flow between tasks explicit
// and supports Chain's latest-writer-wins multi-input resolution.

// chanKey builds the NV key for a channel field; chanVerKey its commit
// version.
func chanKey(src, dst, field string) string {
	return fmt.Sprintf("__chan.%s.%s.%s", src, dst, field)
}

func chanVerKey(src, dst, field string) string {
	return fmt.Sprintf("__chanver.%s.%s.%s", src, dst, field)
}

// nvCommitVersion is the global commit counter key.
const nvCommitVersion = "__task.commitver"

// ChanOut stages a write of field with value v on the channel from the
// current task to dst. The write commits atomically with the task
// transition; a power failure discards it.
func (c *Ctx) ChanOut(dst, field string, v uint64) {
	for i := range c.stagedChans {
		if c.stagedChans[i].dst == dst && c.stagedChans[i].field == field {
			c.stagedChans[i].v = v
			return
		}
	}
	c.stagedChans = append(c.stagedChans, kvChan{dst, field, v})
}

// ChanOutFloat is ChanOut for float64 values.
func (c *Ctx) ChanOutFloat(dst, field string, v float64) {
	c.ChanOut(dst, field, floatBits(v))
}

// ChanIn reads field from the channels (src → current task) for every
// src, returning the most recently committed write (Chain's
// multi-input resolution). The second result reports whether any
// source has ever written the field. Unlike Word, ChanIn never sees
// the current execution's own staged writes.
func (c *Ctx) ChanIn(field string, srcs ...string) (uint64, bool) {
	if c.probe {
		return c.probeWord, c.probeWord != 0
	}
	v, found := chanLookup(c.eng.Dev.NV, srcs, c.taskName, field)
	if r := c.eng.fuseRec; r != nil {
		// Fused replay recomputes the same resolution on the follower's
		// store and compares (value, found); the version counters may
		// legitimately differ between lockstep devices.
		r.noteChan(field, srcs, v, found)
	}
	return v, found
}

// chanLookup resolves Chain's latest-writer-wins multi-input read
// against committed state — shared by ChanIn and the fused-step
// replayer's read-set verification.
func chanLookup(nv *device.NVStore, srcs []string, dst, field string) (uint64, bool) {
	var best uint64
	var bestVer uint64
	found := false
	for _, src := range srcs {
		v, ok := nv.Word(chanKey(src, dst, field))
		if !ok {
			continue
		}
		ver, _ := nv.Word(chanVerKey(src, dst, field))
		if !found || ver > bestVer {
			best, bestVer, found = v, ver, true
		}
	}
	return best, found
}

// ChanInOr reads like ChanIn with a default.
func (c *Ctx) ChanInOr(def uint64, field string, srcs ...string) uint64 {
	if v, ok := c.ChanIn(field, srcs...); ok {
		return v
	}
	return def
}

// ChanInFloat is ChanIn for float64 values.
func (c *Ctx) ChanInFloat(def float64, field string, srcs ...string) float64 {
	if v, ok := c.ChanIn(field, srcs...); ok {
		return floatFromBits(v)
	}
	return def
}

// Self reads the current task's self-channel: the value this task
// committed on a *previous* execution (Chain's loop-carried state).
func (c *Ctx) Self(field string) (uint64, bool) {
	return c.ChanIn(field, c.taskName)
}

// SelfOut writes the current task's self-channel.
func (c *Ctx) SelfOut(field string, v uint64) {
	c.ChanOut(c.taskName, field, v)
}

// commitChans applies staged channel writes with a fresh commit
// version. Called from commit().
func (c *Ctx) commitChans() {
	if len(c.stagedChans) == 0 {
		return
	}
	nv := c.eng.Dev.NV
	ver := nv.WordOr(nvCommitVersion, 0) + 1
	nv.SetWord(nvCommitVersion, ver)

	s := c.stagedChans
	sort.Slice(s, func(i, j int) bool {
		if s[i].dst != s[j].dst {
			return s[i].dst < s[j].dst
		}
		return s[i].field < s[j].field
	})
	for i := range s {
		nv.SetWord(chanKey(c.taskName, s[i].dst, s[i].field), s[i].v)
		nv.SetWord(chanVerKey(c.taskName, s[i].dst, s[i].field), ver)
	}
}
