package task

import (
	"reflect"
	"strings"
	"testing"

	"capybara/internal/device"
)

func TestAnalyzeReachability(t *testing.T) {
	prog := MustProgram("a",
		&Task{Name: "a", Run: func(c *Ctx) Next { return "b" }},
		&Task{Name: "b", Run: func(c *Ctx) Next { return Halt }},
		&Task{Name: "orphan", Run: func(c *Ctx) Next { return "a" }},
	)
	a := prog.Analyze()
	if !reflect.DeepEqual(a.Reachable, []string{"a", "b"}) {
		t.Fatalf("reachable = %v", a.Reachable)
	}
	if !reflect.DeepEqual(a.Unreachable, []string{"orphan"}) {
		t.Fatalf("unreachable = %v", a.Unreachable)
	}
	warnings := a.Warnings()
	if len(warnings) != 1 || !strings.Contains(warnings[0], "orphan") {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestAnalyzeBranchesOnChannels(t *testing.T) {
	// The probe tries several channel states, exposing both branches.
	prog := MustProgram("check",
		&Task{Name: "check", Run: func(c *Ctx) Next {
			if c.WordOr("flag", 0) != 0 {
				return "fire"
			}
			return "check"
		}},
		&Task{Name: "fire", Run: func(c *Ctx) Next { return "check" }},
	)
	a := prog.Analyze()
	if !reflect.DeepEqual(a.Reachable, []string{"check", "fire"}) {
		t.Fatalf("branch not discovered: %v", a.Reachable)
	}
	if len(a.Unreachable) != 0 {
		t.Fatalf("unreachable = %v", a.Unreachable)
	}
}

func TestAnalyzeUnprechargedBurst(t *testing.T) {
	prog := MustProgram("sense",
		&Task{Name: "sense", Config: "small", Run: func(c *Ctx) Next { return "tx" }},
		&Task{Name: "tx", Burst: "big", Run: func(c *Ctx) Next { return "sense" }},
	)
	a := prog.Analyze()
	if !reflect.DeepEqual(a.UnprechargedBursts, []string{"tx"}) {
		t.Fatalf("unprecharged bursts = %v", a.UnprechargedBursts)
	}
	if got := a.Warnings(); len(got) != 1 || !strings.Contains(got[0], "critical path") {
		t.Fatalf("warnings = %v", got)
	}
	// Adding the preburst annotation silences the warning.
	prog2 := MustProgram("sense",
		&Task{Name: "sense", PreburstBurst: "big", PreburstExec: "small",
			Run: func(c *Ctx) Next { return "tx" }},
		&Task{Name: "tx", Burst: "big", Run: func(c *Ctx) Next { return "sense" }},
	)
	if a2 := prog2.Analyze(); len(a2.UnprechargedBursts) != 0 {
		t.Fatalf("false positive: %v", a2.UnprechargedBursts)
	}
}

func TestAnalyzeCollectsModes(t *testing.T) {
	prog := MustProgram("a",
		&Task{Name: "a", PreburstBurst: "big", PreburstExec: "small",
			Run: func(c *Ctx) Next { return "b" }},
		&Task{Name: "b", Burst: "big", Run: func(c *Ctx) Next { return Halt }},
	)
	a := prog.Analyze()
	if !reflect.DeepEqual(a.Modes, []EnergyMode{"big", "small"}) {
		t.Fatalf("modes = %v", a.Modes)
	}
}

func TestAnalyzeSurvivesSideEffectfulBodies(t *testing.T) {
	// Bodies that sample, transmit, and sleep must be probe-safe: the
	// operations no-op under analysis.
	tmp := device.TMP36()
	radio := device.CC2650()
	prog := MustProgram("io",
		&Task{Name: "io", Run: func(c *Ctx) Next {
			c.Sample(tmp)
			c.SampleBurst(device.ProximitySensor(), 4)
			c.Activate(device.LED(), 0.25)
			c.Transmit(radio, 25)
			c.Sleep(1)
			c.Compute(1e6)
			c.AppendFloat("s", 1)
			if len(c.FloatSeries("s")) > 0 {
				return Halt
			}
			return "io"
		}},
	)
	a := prog.Analyze()
	if len(a.Reachable) != 1 {
		t.Fatalf("reachable = %v", a.Reachable)
	}
}

func TestAnalyzeSurvivesPanickingBody(t *testing.T) {
	prog := MustProgram("boom",
		&Task{Name: "boom", Run: func(c *Ctx) Next {
			panic("application bug")
		}},
	)
	a := prog.Analyze() // must not crash
	if len(a.Reachable) != 1 || a.Reachable[0] != "boom" {
		t.Fatalf("reachable = %v", a.Reachable)
	}
}
