package task

import (
	"fmt"
	"sort"
)

// Analysis reports static properties of a Program that the runtime
// cannot check (transitions are dynamic Go values), gathered by
// executing every task body against a probing context that records the
// transitions it *returns* without consuming energy. The probe drives
// each task once per reachable control path it can distinguish, so the
// result is an under-approximation of reachability and an
// over-approximation of the warning set — both safe directions for a
// lint.
type Analysis struct {
	// Reachable lists tasks reachable from the entry via the observed
	// transitions.
	Reachable []string
	// Unreachable lists defined tasks never observed as targets.
	Unreachable []string
	// Burst lists burst-annotated tasks with no preburst task naming
	// their mode — bursts that will always find an uncharged bank.
	UnprechargedBursts []string
	// Modes lists every energy mode the program references.
	Modes []EnergyMode
}

// Analyze probes the program. Task bodies are executed with a nil-ops
// context (no time passes, no energy drains, channels read as absent),
// so bodies must tolerate zero-value channel reads — which
// restart-safety already requires.
func (p *Program) Analyze() Analysis {
	targets := make(map[string]bool, len(p.tasks))
	// Observe each task's transition under the probing context.
	edges := make(map[string][]string, len(p.tasks))
	for name, t := range p.tasks {
		for _, next := range probeTransitions(t) {
			if next == string(Halt) {
				continue
			}
			edges[name] = append(edges[name], next)
			targets[next] = true
		}
	}

	// Reachability from the entry.
	reachable := map[string]bool{p.Entry: true}
	frontier := []string{p.Entry}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, next := range edges[cur] {
			if !reachable[next] {
				reachable[next] = true
				frontier = append(frontier, next)
			}
		}
	}

	var a Analysis
	modeSet := make(map[EnergyMode]bool)
	precharged := make(map[EnergyMode]bool)
	for _, t := range p.tasks {
		for _, m := range []EnergyMode{t.Config, t.Burst, t.PreburstBurst, t.PreburstExec} {
			if m != ModeNone {
				modeSet[m] = true
			}
		}
		if t.PreburstBurst != ModeNone {
			precharged[t.PreburstBurst] = true
		}
	}
	for name, t := range p.tasks {
		if reachable[name] {
			a.Reachable = append(a.Reachable, name)
		} else {
			a.Unreachable = append(a.Unreachable, name)
		}
		if t.Burst != ModeNone && !precharged[t.Burst] {
			a.UnprechargedBursts = append(a.UnprechargedBursts, name)
		}
	}
	for m := range modeSet {
		a.Modes = append(a.Modes, m)
	}
	sort.Strings(a.Reachable)
	sort.Strings(a.Unreachable)
	sort.Strings(a.UnprechargedBursts)
	sort.Slice(a.Modes, func(i, j int) bool { return a.Modes[i] < a.Modes[j] })
	return a
}

// Warnings renders the analysis as human-readable lint messages.
func (a Analysis) Warnings() []string {
	var out []string
	for _, name := range a.Unreachable {
		out = append(out, fmt.Sprintf("task %s is unreachable from the entry", name))
	}
	for _, name := range a.UnprechargedBursts {
		out = append(out, fmt.Sprintf(
			"burst task %s has no preburst task charging its mode — every burst will pay its charge on the critical path", name))
	}
	return out
}

// probeTransitions runs a task body against probing contexts and
// collects the distinct transitions it returns. The body may branch on
// channel values; the probe tries the all-absent state and a small set
// of constant channel states to expose common branches. Bodies that
// panic under probing contribute no edges (they are still counted as
// defined tasks).
func probeTransitions(t *Task) []string {
	seen := make(map[string]bool)
	for _, words := range []uint64{0, 1, 1 << 20} {
		func() {
			defer func() { recover() }() // probing must never crash Analyze
			ctx := &Ctx{probe: true, probeWord: words}
			next := t.Run(ctx)
			seen[string(next)] = true
		}()
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
