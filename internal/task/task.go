// Package task implements Capybara's software interface (paper §4): a
// Chain-style task-based intermittent programming model with
// non-volatile channels, extended with the declarative energy-mode
// annotations config, burst, and preburst.
//
// A program is a set of named tasks; control flows from task to task at
// nexttask statements (the Next return value). A task executes
// atomically with respect to power: if the energy buffer empties
// mid-task, the device powers off, recharges, reboots, and restarts the
// task from the beginning. Writes to non-volatile channels are staged
// during execution and committed atomically at the task transition, so
// restarts are safe (Chain/Alpaca semantics).
//
// The package deliberately separates the programming model from power
// policy: an Engine executes a Program on a sim.Device, delegating all
// charging and reconfiguration decisions to a PowerManager. The
// Capybara runtime, the fixed-capacity baseline, and the
// continuous-power baseline are PowerManagers in internal/core.
package task

import (
	"fmt"
	"math/rand"
	"sort"

	"capybara/internal/device"
	"capybara/internal/sim"
	"capybara/internal/units"
)

// EnergyMode names an energy mode — an identifier that the hardware
// designer maps to a reservoir configuration (paper §3: "an identifier
// that corresponds to the specific amount of capacitance required to
// execute the task").
type EnergyMode string

// ModeNone marks an absent annotation.
const ModeNone EnergyMode = ""

// Next is the name of the task control transfers to; Halt ends the
// program.
type Next string

// Halt stops the program.
const Halt Next = ""

// Fn is a task body. It must be restart-safe: all durable effects go
// through the Ctx channel operations, which commit only when the task
// completes.
type Fn func(ctx *Ctx) Next

// Task is one function-like task with its energy-mode annotations.
// At most one of the annotation groups should be set: Config for
// ordinary capacity/temporal constraints, Burst for pre-charged
// reactive tasks, and the Preburst pair for tasks that charge a future
// burst ahead of time.
type Task struct {
	Name string

	// Config corresponds to the `configure mode` annotation: execute
	// this task on the reservoir configuration for the mode.
	Config EnergyMode
	// Burst corresponds to `burst mode`: re-activate the pre-charged
	// banks of the mode and execute immediately, without a charge pause.
	Burst EnergyMode
	// PreburstBurst and PreburstExec correspond to
	// `preburst burst=bmode exec=emode`: charge bmode's banks ahead of
	// time, then execute this task in emode.
	PreburstBurst EnergyMode
	PreburstExec  EnergyMode

	Run Fn
}

// Program is a validated set of tasks with an entry point.
type Program struct {
	Entry string
	tasks map[string]*Task
}

// NewProgram validates and assembles a program.
func NewProgram(entry string, tasks ...*Task) (*Program, error) {
	p := &Program{Entry: entry, tasks: make(map[string]*Task, len(tasks))}
	for _, t := range tasks {
		if t.Name == "" {
			return nil, fmt.Errorf("task: unnamed task")
		}
		if t.Run == nil {
			return nil, fmt.Errorf("task: %s has no body", t.Name)
		}
		if _, dup := p.tasks[t.Name]; dup {
			return nil, fmt.Errorf("task: duplicate task %s", t.Name)
		}
		if (t.PreburstBurst == ModeNone) != (t.PreburstExec == ModeNone) {
			return nil, fmt.Errorf("task: %s has half a preburst annotation", t.Name)
		}
		p.tasks[t.Name] = t
	}
	if _, ok := p.tasks[entry]; !ok {
		return nil, fmt.Errorf("task: entry task %q not defined", entry)
	}
	return p, nil
}

// MustProgram is NewProgram for statically-known programs.
func MustProgram(entry string, tasks ...*Task) *Program {
	p, err := NewProgram(entry, tasks...)
	if err != nil {
		panic(err)
	}
	return p
}

// Task looks a task up by name.
func (p *Program) Task(name string) (*Task, bool) {
	t, ok := p.tasks[name]
	return t, ok
}

// Names lists the program's tasks in sorted order.
func (p *Program) Names() []string {
	names := make([]string, 0, len(p.tasks))
	for n := range p.tasks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PowerManager decides how the device prepares for each task: which
// reservoir configuration to use, when to pause and charge, and how to
// recover after a power failure.
type PowerManager interface {
	// Prepare readies the device to run t. alive reports whether the
	// device is currently on; when false the manager must bring it up
	// (charge + boot). Prepare returns false when the deadline passed
	// before the device became ready — the engine then stops.
	Prepare(t *Task, alive bool, deadline units.Seconds) bool
}

// Engine executes a Program on a Device under a PowerManager.
type Engine struct {
	Dev  *sim.Device
	Prog *Program
	PM   PowerManager
	// Restarts counts task restarts caused by power failures.
	Restarts int
	// Profile accumulates per-task execution measurements — the §3
	// "measure task energy consumption on continuous power" harness.
	Profile map[string]*TaskProfile

	// Fuse, when non-nil, enables fused stepping: lockstep engine steps
	// are recorded once and replayed for every matching device (see
	// fuse.go). The fuser is shared across a cohort's engines the way
	// an OpCache is. FuseSched and Rec supply the quiet-schedule and
	// sample-recorder evidence; fusion stays off while either is nil.
	Fuse      *StepFuser
	FuseSched QuietSchedule
	Rec       SampleRecorder

	// RNG is the device's private randomness stream, drawn by Ctx.Rand.
	// Fused replay fast-forwards it by the recorded draw count so the
	// stream position stays identical to scalar execution.
	RNG *rand.Rand

	// ctx is the reusable execution context (reset per attempt) and
	// curTask the interned current-task name: a long sweep runs millions
	// of task attempts, so per-attempt context and name allocations
	// dominated the profile.
	ctx     Ctx
	curTask string
	// curT memoizes the *Task for curTask: sample loops revisit the
	// same task millions of times, and the name-keyed map lookup was a
	// measurable slice of the scheduler iteration.
	curT *Task
	// curGen/curValid validate curTask against the NV store's write
	// counter: the durable pointer can only move when NV is written, so
	// between writes the blob read (a map lookup per scheduler
	// iteration) is skipped entirely.
	curGen   int
	curValid bool
	// profName/prof memoize the last Profile entry the same way curT
	// memoizes the task lookup.
	profName string
	prof     *TaskProfile
	// rngDraws counts Ctx.Rand calls; fuseRec points at fuseRecStore
	// while a step is being recorded for the fuser.
	rngDraws     uint64
	fuseRec      *stepRecording
	fuseRecStore stepRecording
}

// TaskProfile is one task's accumulated execution cost.
type TaskProfile struct {
	// Runs counts successful completions; Failures counts attempts
	// ended by a power failure.
	Runs, Failures int
	// Time and Energy accumulate over successful runs: active time and
	// energy drawn from storage.
	Time   units.Seconds
	Energy units.Energy
}

// MeanPower returns the task's average draw across successful runs.
func (p *TaskProfile) MeanPower() units.Power {
	if p.Time <= 0 {
		return 0
	}
	return units.Power(float64(p.Energy) / float64(p.Time))
}

// MeanTime returns the average successful run duration.
func (p *TaskProfile) MeanTime() units.Seconds {
	if p.Runs == 0 {
		return 0
	}
	return p.Time / units.Seconds(p.Runs)
}

// MeanEnergy returns the average successful run energy.
func (p *TaskProfile) MeanEnergy() units.Energy {
	if p.Runs == 0 {
		return 0
	}
	return p.Energy / units.Energy(p.Runs)
}

// NewEngine assembles an engine.
func NewEngine(dev *sim.Device, prog *Program, pm PowerManager) *Engine {
	return &Engine{Dev: dev, Prog: prog, PM: pm, Profile: make(map[string]*TaskProfile)}
}

func (e *Engine) profileFor(name string) *TaskProfile {
	if e.prof != nil && e.profName == name {
		return e.prof
	}
	p, ok := e.Profile[name]
	if !ok {
		p = &TaskProfile{}
		e.Profile[name] = p
	}
	e.profName, e.prof = name, p
	return p
}

// The NV key holding the current task name — the runtime's
// power-failure-robust state machine pointer (§4.3).
const nvCurrentTask = "__task.current"

// CurrentTask returns the durable current-task pointer, defaulting to
// the program entry.
func (e *Engine) CurrentTask() string {
	// The pointer lives in NV, so it cannot move unless NV was written;
	// the store's write counter validates the cached copy. Tight sample
	// loops with self-transitions never touch NV between iterations, so
	// the blob read drops out of the scheduler's hot path.
	gen := e.Dev.NV.Writes()
	if e.curValid && gen == e.curGen {
		return e.curTask
	}
	name := e.Prog.Entry
	if b, ok := e.Dev.NV.PeekBlob(nvCurrentTask); ok {
		// Neither the []byte→string comparison nor the map index below
		// allocates; interning the name against the program's task table
		// keeps the re-read alloc-free across transitions.
		switch {
		case e.curTask != "" && e.curTask == string(b):
			name = e.curTask
		default:
			if t, ok := e.Prog.tasks[string(b)]; ok {
				name = t.Name
			} else {
				name = string(b)
			}
		}
	}
	e.curTask, e.curGen, e.curValid = name, gen, true
	return name
}

// Run executes the program until the simulated clock reaches horizon,
// the program halts, or the power manager gives up (e.g. the source
// died for good). It returns an error only for malformed transitions.
func (e *Engine) Run(horizon units.Seconds) error {
	alive := false
	for e.Dev.Now() < horizon {
		name := e.CurrentTask()
		t := e.curT
		if t == nil || t.Name != name {
			var ok bool
			t, ok = e.Prog.Task(name)
			if !ok {
				return fmt.Errorf("task: transition to undefined task %q", name)
			}
			e.curT = t
		}
		if f := e.Fuse; f != nil {
			// Fused stepping: replay a recorded lockstep step if its
			// evidence certifies it at this device's state and clock;
			// otherwise arm recording for the scalar execution below.
			if e.fuseTry(f, t.Name, alive, horizon) {
				alive = true
				continue
			}
		}
		if !e.PM.Prepare(t, alive, horizon) {
			e.fuseAbandon()
			return nil // deadline reached while preparing
		}
		alive = true
		if r := e.fuseRec; r != nil {
			// The task-profile window opens here on the scalar path;
			// replay re-derives it from this boundary index.
			r.prepEnts = int32(len(r.tape.Ents))
		}
		ctx := newCtx(e, t.Name)
		timeBefore := e.Dev.Stats.TimeOn
		energyBefore := e.Dev.Stats.EnergyDrawn
		next, failed := e.exec(t, ctx)
		prof := e.profileFor(t.Name)
		if failed {
			// Power failed mid-task: volatile state (the staged writes)
			// is lost; the task will restart from scratch.
			e.fuseAbandon()
			e.Restarts++
			prof.Failures++
			alive = false
			continue
		}
		prof.Runs++
		prof.Time += e.Dev.Stats.TimeOn - timeBefore
		prof.Energy += e.Dev.Stats.EnergyDrawn - energyBefore
		ctx.commit()
		if next == Halt {
			e.fuseAbandon()
			e.Dev.NV.Delete(nvCurrentTask)
			return nil
		}
		// Self-transitions need no validation (the running task is by
		// construction defined) and leave the durable pointer untouched:
		// the stored name is already correct, and skipping the write
		// keeps tight sample loops free of per-iteration blob
		// allocations.
		nextName := name
		if string(next) != name {
			nt, ok := e.Prog.Task(string(next))
			if !ok {
				e.fuseAbandon()
				return fmt.Errorf("task: %s transitioned to undefined task %q", t.Name, next)
			}
			nextName = nt.Name
			e.Dev.NV.SetBlob(nvCurrentTask, []byte(next))
		}
		if e.fuseRec != nil {
			e.fuseFinalize(t.Name, nextName)
		}
	}
	return nil
}

// powerFailure is the internal control-flow signal for a brownout
// mid-operation. It never escapes the package (Effective Go's
// "internal panic, external error" rule).
type powerFailure struct{}

func (e *Engine) exec(t *Task, ctx *Ctx) (next Next, failed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(powerFailure); ok {
				failed = true
				next = Next(t.Name)
				return
			}
			panic(r)
		}
	}()
	return t.Run(ctx), false
}

// Ctx is the execution context a task body runs against. All operations
// consume simulated time and buffered energy; any of them may terminate
// the task with a power failure, after which the task restarts.
type Ctx struct {
	eng *Engine

	// Staged writes live in small association slices, not maps: a task
	// attempt stages a handful of keys at most, so a linear scan beats
	// hashing, and resetting between attempts is a length truncation
	// instead of four map clears (which dominated the per-attempt cost
	// in fleet profiles). A key appears in at most one of words/blobs
	// versus del (staging a write unstages a delete and vice versa).
	stagedWords []kvWord
	stagedBlobs []kvBlob
	stagedDel   []string
	stagedChans []kvChan

	// taskName is the executing task, used to address its channels.
	taskName string

	// probe marks an analysis context (Program.Analyze): operations
	// consume nothing and channel reads return probeWord, so task
	// bodies can be executed statically to observe their transitions.
	probe     bool
	probeWord uint64
}

// kvWord, kvBlob, and kvChan are the staged-write association entries.
type kvWord struct {
	k string
	v uint64
}

type kvBlob struct {
	k string
	b []byte
}

type kvChan struct {
	dst, field string
	v          uint64
}

// newCtx resets and returns the engine's reusable execution context.
// The staged-write slices are retained across attempts (truncated, not
// reallocated): most task attempts in a long sweep stage only a handful
// of keys, and per-attempt context resets dominated the engine's
// profile.
func newCtx(e *Engine, taskName string) *Ctx {
	c := &e.ctx
	c.eng = e
	c.taskName = taskName
	c.probe = false
	c.probeWord = 0
	c.stagedWords = c.stagedWords[:0]
	c.stagedBlobs = c.stagedBlobs[:0]
	c.stagedDel = c.stagedDel[:0]
	c.stagedChans = c.stagedChans[:0]
	return c
}

// Now returns the simulated time. A task body that observes the
// absolute clock directly is genuinely clock-dependent, so the call
// kills any step recording in progress (see fuse.go); the operation
// helpers below use the private now instead — their returned instants
// are reconstructed boundary-exactly by fused replay.
func (c *Ctx) Now() units.Seconds {
	if r := c.eng.fuseRec; r != nil {
		r.dead = true
	}
	return c.now()
}

func (c *Ctx) now() units.Seconds {
	if c.probe {
		return 0
	}
	return c.eng.Dev.Now()
}

// Rand draws from the device's private randomness stream (Engine.RNG),
// returning 0 when none is configured. Fused replay fast-forwards the
// stream by the recorded draw count, keeping its position identical to
// scalar execution.
func (c *Ctx) Rand() float64 {
	if c.probe {
		return 0
	}
	e := c.eng
	e.rngDraws++
	if e.RNG == nil {
		return 0
	}
	return e.RNG.Float64()
}

// drain consumes active time or dies trying.
func (c *Ctx) drain(load units.Power, dt units.Seconds) {
	if c.probe || dt <= 0 {
		return
	}
	if _, ok := c.eng.Dev.Drain(load, dt); !ok {
		panic(powerFailure{})
	}
}

// Compute executes ops ALU operations.
func (c *Ctx) Compute(ops float64) {
	c.drain(c.eng.Dev.MCU.ActivePower, c.eng.Dev.MCU.ComputeTime(ops))
}

// Sleep idles in a retentive low-power mode for dt. The power system's
// quiescent draw continues.
func (c *Ctx) Sleep(dt units.Seconds) {
	c.drain(c.eng.Dev.MCU.SleepPower, dt)
}

// Sample powers p up (warm-up) and performs one atomic operation. It
// returns the time at which the operation began — the instant the
// sensor observed the world.
func (c *Ctx) Sample(p device.Peripheral) units.Seconds {
	load := p.ActivePower + c.eng.Dev.MCU.ActivePower
	c.drain(load, p.Warmup)
	at := c.now()
	c.drain(load, p.OpTime)
	return at
}

// Activate powers p up (warm-up) and holds it active for dur — e.g.
// keeping the gesture sensor observing for the remainder of a swing.
// It returns the time the active phase began.
func (c *Ctx) Activate(p device.Peripheral, dur units.Seconds) units.Seconds {
	load := p.ActivePower + c.eng.Dev.MCU.ActivePower
	c.drain(load, p.Warmup)
	at := c.now()
	c.drain(load, dur)
	return at
}

// SampleBurst warms p up once and performs n back-to-back operations,
// returning each operation's start time. CSR's 32 distance samples are
// one SampleBurst.
func (c *Ctx) SampleBurst(p device.Peripheral, n int) []units.Seconds {
	load := p.ActivePower + c.eng.Dev.MCU.ActivePower
	c.drain(load, p.Warmup)
	times := make([]units.Seconds, 0, n)
	for i := 0; i < n; i++ {
		times = append(times, c.now())
		c.drain(load, p.OpTime)
	}
	return times
}

// Transmit starts the radio stack and sends one packet with the given
// payload size. It returns the time the packet finished transmitting
// (when a sniffer would receive it).
func (c *Ctx) Transmit(r device.Radio, payloadBytes int) units.Seconds {
	load := r.TxPower + c.eng.Dev.MCU.ActivePower
	c.drain(load, r.StartupTime)
	c.drain(load, r.PacketTime(payloadBytes))
	return c.now()
}

// Non-volatile channel operations. Reads see this task's own staged
// writes first (Alpaca-style privatization), then committed state.
// Writes are staged and commit only when the task completes.

// unstageDel removes key from the staged-delete set (a write
// supersedes a prior staged delete).
func (c *Ctx) unstageDel(key string) {
	for i, k := range c.stagedDel {
		if k == key {
			c.stagedDel[i] = c.stagedDel[len(c.stagedDel)-1]
			c.stagedDel = c.stagedDel[:len(c.stagedDel)-1]
			return
		}
	}
}

func (c *Ctx) stagedDeleted(key string) bool {
	for _, k := range c.stagedDel {
		if k == key {
			return true
		}
	}
	return false
}

// SetWord stages a durable word write.
func (c *Ctx) SetWord(key string, v uint64) {
	for i := range c.stagedWords {
		if c.stagedWords[i].k == key {
			c.stagedWords[i].v = v
			return
		}
	}
	c.stagedWords = append(c.stagedWords, kvWord{key, v})
	c.unstageDel(key)
}

// Word reads a durable word.
func (c *Ctx) Word(key string) (uint64, bool) {
	if c.stagedDeleted(key) {
		return 0, false
	}
	for i := range c.stagedWords {
		if c.stagedWords[i].k == key {
			return c.stagedWords[i].v, true
		}
	}
	if c.probe {
		return c.probeWord, c.probeWord != 0
	}
	v, ok := c.eng.Dev.NV.Word(key)
	if r := c.eng.fuseRec; r != nil {
		// Committed-state read: part of the step's verified read set.
		r.noteWord(key, v, ok)
	}
	return v, ok
}

// WordOr reads a durable word with a default.
func (c *Ctx) WordOr(key string, def uint64) uint64 {
	if v, ok := c.Word(key); ok {
		return v
	}
	return def
}

// SetFloat stages a durable float write.
func (c *Ctx) SetFloat(key string, v float64) { c.SetWord(key, floatBits(v)) }

// FloatOr reads a durable float with a default.
func (c *Ctx) FloatOr(key string, def float64) float64 {
	if v, ok := c.Word(key); ok {
		return floatFromBits(v)
	}
	return def
}

// AppendFloat stages an append to a durable series.
func (c *Ctx) AppendFloat(key string, v float64) {
	// An already-staged blob is owned by this Ctx (staging always copies
	// out of NV first), so repeated appends within one task body grow it
	// in place instead of copying the whole series each time.
	for i := range c.stagedBlobs {
		if c.stagedBlobs[i].k == key {
			c.stagedBlobs[i].b = appendFloatInPlace(c.stagedBlobs[i].b, v)
			return
		}
	}
	cur := c.blobView(key)
	c.setBlob(key, appendFloatBytes(cur, v))
}

// FloatSeries reads a durable series including staged appends.
func (c *Ctx) FloatSeries(key string) []float64 {
	return decodeFloats(c.blobView(key))
}

// SetFloats stages a durable series wholesale — used to keep bounded
// sliding windows (e.g. TA's "most recent time series").
func (c *Ctx) SetFloats(key string, vals []float64) {
	b := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		b = appendFloatInPlace(b, v)
	}
	c.setBlob(key, b)
}

func (c *Ctx) setBlob(key string, b []byte) {
	for i := range c.stagedBlobs {
		if c.stagedBlobs[i].k == key {
			c.stagedBlobs[i].b = b
			return
		}
	}
	c.stagedBlobs = append(c.stagedBlobs, kvBlob{key, b})
	c.unstageDel(key)
}

// Delete stages removal of a durable key.
func (c *Ctx) Delete(key string) {
	for i := range c.stagedWords {
		if c.stagedWords[i].k == key {
			c.stagedWords[i] = c.stagedWords[len(c.stagedWords)-1]
			c.stagedWords = c.stagedWords[:len(c.stagedWords)-1]
			break
		}
	}
	for i := range c.stagedBlobs {
		if c.stagedBlobs[i].k == key {
			c.stagedBlobs[i] = c.stagedBlobs[len(c.stagedBlobs)-1]
			c.stagedBlobs = c.stagedBlobs[:len(c.stagedBlobs)-1]
			break
		}
	}
	if !c.stagedDeleted(key) {
		c.stagedDel = append(c.stagedDel, key)
	}
}

func (c *Ctx) blobView(key string) []byte {
	if c.stagedDeleted(key) {
		return nil
	}
	for i := range c.stagedBlobs {
		if c.stagedBlobs[i].k == key {
			return c.stagedBlobs[i].b
		}
	}
	if c.probe {
		return nil
	}
	// The view is read-only and never outlives the staging step (every
	// consumer either decodes it or copies it before staging), so the
	// aliasing read is safe and saves a copy per access.
	b, ok := c.eng.Dev.NV.PeekBlob(key)
	if r := c.eng.fuseRec; r != nil {
		r.noteBlob(key, b, ok)
	}
	return b
}

// commit applies the staged writes to non-volatile memory in one
// atomic step (Chain commits channel writes at the task transition).
// Each key space commits in sorted key order, so the NV write sequence
// — and with it the write counter and every downstream determinism
// guarantee — is independent of staging order.
func (c *Ctx) commit() {
	if len(c.stagedDel) > 0 {
		sortKeys(c.stagedDel)
		for _, k := range c.stagedDel {
			c.eng.Dev.NV.Delete(k)
		}
	}
	if n := len(c.stagedWords); n > 0 {
		// Insertion sort: commits stage a handful of keys, below the
		// threshold where sort.Slice's indirection pays.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && c.stagedWords[j].k < c.stagedWords[j-1].k; j-- {
				c.stagedWords[j], c.stagedWords[j-1] = c.stagedWords[j-1], c.stagedWords[j]
			}
		}
		for i := range c.stagedWords {
			c.eng.Dev.NV.SetWord(c.stagedWords[i].k, c.stagedWords[i].v)
		}
	}
	if n := len(c.stagedBlobs); n > 0 {
		for i := 1; i < n; i++ {
			for j := i; j > 0 && c.stagedBlobs[j].k < c.stagedBlobs[j-1].k; j-- {
				c.stagedBlobs[j], c.stagedBlobs[j-1] = c.stagedBlobs[j-1], c.stagedBlobs[j]
			}
		}
		for i := range c.stagedBlobs {
			// Ownership of the staged slice moves to NV: the next
			// newCtx truncates the staged entries before anything can
			// touch them again.
			c.eng.Dev.NV.SetBlobOwned(c.stagedBlobs[i].k, c.stagedBlobs[i].b)
		}
	}
	c.commitChans()
}

// sortKeys orders a commit key set; singletons (the common case for
// tight sample loops) skip the sort machinery.
func sortKeys(keys []string) {
	if len(keys) > 1 {
		sort.Strings(keys)
	}
}
