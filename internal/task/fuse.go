package task

import (
	"bytes"
	"encoding/binary"
	"math"

	"capybara/internal/harvest"
	"capybara/internal/sim"
	"capybara/internal/units"
)

// Fused task-engine stepping (batch-lockstep stage 3; DESIGN.md §10).
//
// The OpCache (internal/sim) collapses the *operations* of lockstep
// devices — Drain and ChargeTo calls — but between every pair of ops
// each device still runs its full task-engine iteration: power-manager
// preparation, task dispatch, context bookkeeping, environment queries,
// and the transition commit. The StepFuser hoists that loop: the first
// device through a step executes it scalar while the engine records the
// step's complete effect (a sim.StepTape of clock/stat adds plus every
// input the step read); every later device whose pre-step state is
// bit-identical replays the recorded effect without running the power
// manager or the task body at all.
//
// Replay is sound only when the recorded step's behavior is a pure
// function of inputs the replayer can verify at its own (shifted)
// clock. The evidence discipline mirrors the OpCache's:
//
//   - Fusion-set membership: the template key is (task name, alive bit,
//     reservoir.Array mask + full electrical state bits). A chain
//     cursor (the fused analogue of the OpCache's vectorNext) predicts
//     the next template and verifies it with a live Array.MatchState;
//     any mismatch falls back to the keyed lookup and then to scalar.
//   - Clock translation: the solvers advance state by source-driven
//     integration whose keys contain no clock value (the OpCache
//     precedent), so a step translates from record clock t0 to replay
//     clock t0' when the source evidence matches: identical PowerAt and
//     VoltageAt bits at t0', a constancy horizon covering the step span
//     (Forever when a charge loop ran — chargeFast's cacheability
//     rule), and an identical units.MinAdvance ULP regime across the
//     span (the integrators floor their segment lengths on it).
//   - Deadlines: every deadline the engine or power manager checks
//     derives from the run horizon, so requiring the replayed step to
//     end strictly before the replayer's horizon keeps every check on
//     the recorded branch; recordings whose charges grazed the deadline
//     (zero slack) are discarded because the deadline clipped — or sat
//     on the edge of clipping — the leader's trajectory.
//   - Environment: the step must fall in a quiet range of the device's
//     event schedule — both the leader's at record time and the
//     follower's own at replay — so every schedule query inside the
//     step returns not-found regardless of the absolute clock. Tasks
//     that observe the absolute clock directly (Ctx.Now) are never
//     recorded.
//   - NV reads: every word, blob, and channel read the body performed
//     against committed state is captured and re-verified bit-for-bit
//     against the follower's store. Steps that stage any write are not
//     recorded (the commit machinery's effects stay scalar); the only
//     NV effect a recorded step may have is the engine's own transition
//     pointer write, which replay re-performs.
//   - Samples: report-visible sample instants are matched to tape
//     boundaries at record time and re-synthesized from the follower's
//     own boundary clocks, so the recorder sees exactly the values the
//     follower's scalar execution would have appended.
//   - RNG: the recorded draw count fast-forwards the follower's private
//     stream so its position stays identical to scalar execution.
//     (Fleet task bodies draw nothing; bodies whose control flow
//     depends on drawn values are outside the fusion contract.)
//
// Like the OpCache and the powerAt memo, fusion disables itself — per
// step, not per run — whenever a Trace, EventLog, or Observer is
// attached: those consumers see per-operation detail that replay
// skips.

// Tuning constants. The fuser keeps its own adaptive-bypass thresholds
// (distinct from the OpCache's, which are per-op and knob-controlled):
// a cohort whose steps keep missing — chaotic state, staging tasks,
// time-varying sources — stops paying the recording tax after the
// probation window.
const (
	fuseProbation    = 1 << 13
	fuseMinFusedRate = 0.35

	fuseMaxTemplates = 4096
	fuseMaxEnts      = 1024
	fuseMaxWords     = 8
	fuseMaxBlobs     = 2
	fuseMaxBlobBytes = 512
	fuseMaxChans     = 4
	fuseMaxSamples   = 64
)

// QuietSchedule is the slice of the environment's event schedule the
// fuser needs: proof that a time range contains no observable event.
// env.Schedule implements it.
type QuietSchedule interface {
	QuietRange(t0, t1 units.Seconds) bool
}

// QuietBounder is the optional extension of QuietSchedule the
// fixed-point spin uses: QuietBound(t0) is the exclusive supremum of
// end instants t1 for which QuietRange(t0, t1) holds (+Inf when the
// schedule is quiet forever after t0). env.Schedule implements it; a
// schedule without it simply limits fusion to per-step replay.
type QuietBounder interface {
	QuietBound(t0 units.Seconds) units.Seconds
}

// SampleRecorder is the slice of the metrics recorder the fuser needs:
// appending follower sample instants and verifying that a recorded
// step produced no report. *metrics.Recorder implements it.
type SampleRecorder interface {
	RecordSample(t units.Seconds)
	SampleCount() int
	SampleAt(i int) units.Seconds
	ReportCount() int
}

// CounterSource is implemented by PowerManagers that expose their
// bookkeeping counters for fused replay (core.Runtime does). A manager
// without it is simply not fusible.
type CounterSource interface {
	FuseCounters() (reconfigs, precharges *int)
}

// FuseStats counts fused-stepping outcomes. Counters are cumulative
// and exported for the fleet's execution-stat sidecars.
type FuseStats struct {
	// Steps counts fusion-eligible engine steps (gates passed).
	Steps uint64
	// Replays counts steps applied from a template; Hint the subset
	// resolved by the chain cursor without a keyed lookup.
	Replays uint64
	Hint    uint64
	// Records counts templates recorded; Discards recordings abandoned
	// because the evidence could not certify replay soundness.
	Records  uint64
	Discards uint64
	// Bypassed counts steps skipped after adaptive bypass tripped.
	Bypassed uint64
	// Splits counts fused→scalar streak breaks; Merges the reverse.
	Splits uint64
	Merges uint64
	// Spins counts fixed-point spins entered (>= 1 iteration applied);
	// SpinShared the subset that reused a spin plan an earlier cohort
	// member already built (the cross-device fold); SpinIters the total
	// iterations applied inside spins.
	Spins      uint64
	SpinShared uint64
	SpinIters  uint64
	// PhaseKeyed counts steps that computed a keyable source phase
	// regime on the slow path (keyed lookup or recording; hint-cursor
	// replays never pay the computation). PhaseHits counts replays of
	// templates holding a finite-horizon charge — the replays that
	// exist only because phase keys are on.
	PhaseKeyed uint64
	PhaseHits  uint64
}

// FusedRate returns the fraction of eligible steps served by replay.
func (s FuseStats) FusedRate() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.Replays) / float64(s.Steps)
}

// HintRate returns the fraction of replays resolved by the chain
// cursor alone (no keyed lookup).
func (s FuseStats) HintRate() float64 {
	if s.Replays == 0 {
		return 0
	}
	return float64(s.Hint) / float64(s.Replays)
}

// CohortSpinRate returns the fraction of fixed-point spins that reused
// a spin plan built by an earlier member of the cohort.
func (s FuseStats) CohortSpinRate() float64 {
	if s.Spins == 0 {
		return 0
	}
	return float64(s.SpinShared) / float64(s.Spins)
}

// SpinFold returns the mean number of spins folded onto one shared
// plan: total spins over plans built (spins that could not reuse one).
func (s FuseStats) SpinFold() float64 {
	built := s.Spins - s.SpinShared
	if built == 0 {
		return 0
	}
	return float64(s.Spins) / float64(built)
}

// PhaseHitRate returns the fraction of replays served by templates
// holding a finite-horizon charge (possible only with phase keys on).
func (s FuseStats) PhaseHitRate() float64 {
	if s.Replays == 0 {
		return 0
	}
	return float64(s.PhaseHits) / float64(s.Replays)
}

// Add accumulates o into s.
func (s *FuseStats) Add(o FuseStats) {
	s.Steps += o.Steps
	s.Replays += o.Replays
	s.Hint += o.Hint
	s.Records += o.Records
	s.Discards += o.Discards
	s.Bypassed += o.Bypassed
	s.Splits += o.Splits
	s.Merges += o.Merges
	s.Spins += o.Spins
	s.SpinShared += o.SpinShared
	s.SpinIters += o.SpinIters
	s.PhaseKeyed += o.PhaseKeyed
	s.PhaseHits += o.PhaseHits
}

// wordRead, blobRead, and chanRead are one recorded NV read each: the
// key(s) and the exact result the body observed.
type wordRead struct {
	k  string
	v  uint64
	ok bool
}

type blobRead struct {
	k  string
	b  []byte
	ok bool
}

type chanRead struct {
	field string
	srcs  []string
	v     uint64
	found bool
}

// fuseTemplate is one recorded engine step, keyed by its pre-step
// device state.
type fuseTemplate struct {
	name     string
	nextTask string
	alive    byte

	preMask  uint64
	preVals  []float64
	postMask uint64
	postVals []float64

	// ents is the step's effect tape; prepEnts the boundary index where
	// PowerManager.Prepare finished (the task-profile window starts
	// there, exactly like the scalar engine's snapshot point).
	ents     []sim.TapeEntry
	prepEnts int32

	// succ is the chain cursor's predicted successor template (-1 when
	// unknown).
	succ int32

	// samples holds the tape-boundary index of every sample the step
	// recorded, in order (boundary k is the clock after k entries).
	samples []int32

	words []wordRead
	blobs []blobRead
	chans []chanRead

	draws uint32

	dBoots, dBrown, dReverts int32
	dReconfigs, dPrecharges  int32
	dLeak, dShare            units.Energy

	// Source evidence, valid when sourced: output bits at the step
	// start, whether a charge loop ran under an unbounded horizon
	// (needForever), and the MinAdvance ULP regime spanning the step.
	sourced     bool
	needForever bool
	pBits       uint64
	vBits       uint64
	ulp         float64

	// phase is the source's phase-regime key at the step start
	// (fuseNoPhase when unkeyable or phase keys are off). It joins the
	// template key so, e.g., a PWM on-phase step and an off-phase step
	// at the same electrical state occupy separate slots instead of
	// overwrite-thrashing one. A key, not evidence: replay re-verifies
	// the source bits and horizons regardless.
	phase uint64
	// phased marks a tape holding a finite-horizon charge — a recording
	// that exists only because phase keys are on (sim.StepTape.Phased).
	// Diagnostic only (FuseStats.PhaseHits).
	phased bool

	// regimeEnd/planOK cache the spin plan's ULP-regime bound, computed
	// once per template and shared by every cohort member spinning it:
	// replay evidence pins MinAdvance(t0) == ulp, MinAdvance's level
	// sets are single intervals, and ulp is fixed per template, so the
	// regime's end is the same instant for every member (see
	// fuseSpinBoundShared).
	regimeEnd units.Seconds
	planOK    bool

	// selfFix marks a bit-exact fixed point: an alive self-transition
	// whose post-step electrical state equals its pre-step state and
	// that drew no RNG values. Such a step's successor is itself, so
	// replay can spin it for a whole verified span (see fuseReplay).
	selfFix bool
}

// recBlob is a recording-time blob read; the bytes live in the shared
// blobBuf (offsets, not aliases — appends may reallocate it).
type recBlob struct {
	k      string
	off, n int32
	ok     bool
}

// stepRecording is the engine's reusable recording scratch for the
// step currently executing scalar under an armed fuser.
type stepRecording struct {
	tape sim.StepTape
	dead bool

	name  string
	alive byte
	phase uint64

	preVals []float64
	preMask uint64

	t0       units.Seconds
	prepEnts int32

	samples0 int
	reports0 int
	writes0  int
	draws0   uint64

	boots0, brown0 int
	leak0, share0  units.Energy
	rev0           int
	reconf0        int
	prechg0        int
	rcPtr, pcPtr   *int

	words   []wordRead
	blobs   []recBlob
	blobBuf []byte
	chans   []chanRead
}

func (r *stepRecording) noteWord(k string, v uint64, ok bool) {
	if r.dead {
		return
	}
	for i := range r.words {
		if r.words[i].k == k {
			return // same committed store, same result
		}
	}
	if len(r.words) >= fuseMaxWords {
		r.dead = true
		return
	}
	r.words = append(r.words, wordRead{k, v, ok})
}

func (r *stepRecording) noteBlob(k string, b []byte, ok bool) {
	if r.dead {
		return
	}
	for i := range r.blobs {
		if r.blobs[i].k == k {
			return
		}
	}
	if len(r.blobs) >= fuseMaxBlobs || len(r.blobBuf)+len(b) > fuseMaxBlobBytes {
		r.dead = true
		return
	}
	off := int32(len(r.blobBuf))
	r.blobBuf = append(r.blobBuf, b...)
	r.blobs = append(r.blobs, recBlob{k, off, int32(len(b)), ok})
}

func (r *stepRecording) noteChan(field string, srcs []string, v uint64, found bool) {
	if r.dead {
		return
	}
outer:
	for i := range r.chans {
		c := &r.chans[i]
		if c.field != field || len(c.srcs) != len(srcs) {
			continue
		}
		for j := range srcs {
			if c.srcs[j] != srcs[j] {
				continue outer
			}
		}
		return
	}
	if len(r.chans) >= fuseMaxChans {
		r.dead = true
		return
	}
	r.chans = append(r.chans, chanRead{field, srcs, v, found})
}

// matchSamples maps every sample the step appended onto a tape-boundary
// index. Boundary clocks are recomputed from t0 by the same sequential
// adds the device performed, so a sample the body took at any Now()
// instant matches its boundary bit-for-bit; anything else (a synthetic
// or offset sample time) fails the recording.
func (r *stepRecording) matchSamples(rec SampleRecorder) ([]int32, bool) {
	sc := rec.SampleCount()
	n := sc - r.samples0
	if n == 0 {
		return nil, true
	}
	if n > fuseMaxSamples {
		return nil, false
	}
	out := make([]int32, 0, n)
	b := r.t0
	k := int32(0)
	for si := r.samples0; si < sc; {
		v := rec.SampleAt(si)
		if math.Float64bits(float64(v)) == math.Float64bits(float64(b)) {
			out = append(out, k)
			si++
			continue
		}
		if int(k) >= len(r.tape.Ents) {
			return nil, false
		}
		b += r.tape.Ents[k].Dur
		k++
	}
	return out, true
}

// StepFuser fuses lockstep engine steps across the devices of one
// cohort. It is shared the way an OpCache is — one per cohort per
// worker, wired into each instance's Engine by the app builders — and
// is not safe for concurrent use.
type StepFuser struct {
	tpls  []fuseTemplate
	index map[string]int32

	// last is the chain cursor: the template the previous step resolved
	// to (replayed or recorded). Deliberately not reset at device
	// seams — lockstep devices trace the same template chain, so the
	// next device's first step usually continues it.
	last int32

	// mode tracks the current device's fused/scalar streak for
	// split/merge accounting: 0 unknown, 1 fused, 2 scalar.
	mode byte

	bypass bool
	stats  FuseStats

	// noPhaseKeys disables phase-keyed tapes: finite-horizon charges
	// become unrecordable again (the stage-3 behavior) and template
	// keys carry a zero phase. noCohortSpin disables the cohort-shared
	// spin machinery: spins fall back to the per-device stage-3 bound
	// (Forever sources only, no cached plan, per-entry apply).
	noPhaseKeys  bool
	noCohortSpin bool

	keyBuf   []byte
	stateBuf []float64
}

// fuseNoPhase is the phase slot for steps with no keyable regime.
const fuseNoPhase = ^uint64(0)

// NewStepFuser returns an empty fuser.
func NewStepFuser() *StepFuser {
	return &StepFuser{index: make(map[string]int32), last: -1}
}

// DisablePhaseKeys turns phase-keyed tapes off (see noPhaseKeys). Like
// every fuser knob it only moves steps between the replay and scalar
// paths — reports are byte-identical either way — so it is an execution
// option, excluded from fleet spec hashes.
func (f *StepFuser) DisablePhaseKeys() { f.noPhaseKeys = true }

// DisableCohortSpin turns cohort-shared spins off (see noCohortSpin);
// an execution option with the same byte-identity contract.
func (f *StepFuser) DisableCohortSpin() { f.noCohortSpin = true }

// BeginDevice marks a device seam: the split/merge streak resets, the
// chain cursor survives.
func (f *StepFuser) BeginDevice() { f.mode = 0 }

// Stats returns a snapshot of the fuser's counters.
func (f *StepFuser) Stats() FuseStats { return f.stats }

// bypassed implements adaptive bypass: after the probation window, a
// fused rate below the floor disables the fuser for good (this cohort's
// steps are not converging; stop paying the recording tax).
func (f *StepFuser) bypassed() bool {
	if f.bypass {
		return true
	}
	if f.stats.Steps >= fuseProbation &&
		float64(f.stats.Replays) < fuseMinFusedRate*float64(f.stats.Steps) {
		f.bypass = true
	}
	return f.bypass
}

func floatBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func aliveByte(alive bool) byte {
	if alive {
		return 1
	}
	return 0
}

// key packs a template key: task name, alive bit, phase regime, array
// mask, and the full electrical state bits.
func (f *StepFuser) key(name string, alive byte, phase uint64, vals []float64, mask uint64) []byte {
	k := append(f.keyBuf[:0], name...)
	k = append(k, 0, alive)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], phase)
	k = append(k, b[:]...)
	binary.LittleEndian.PutUint64(b[:], mask)
	k = append(k, b[:]...)
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		k = append(k, b[:]...)
	}
	f.keyBuf = k
	return k
}

// phaseKey computes the source's phase regime key at the device's
// current clock, fuseNoPhase when keys are off or the regime is
// unkeyable. Deliberately called only on the slow path (keyed lookup,
// record arming): the hint cursor carries the template's own phase and
// every replay re-verifies the live evidence, so the common case never
// pays the source walk.
func (f *StepFuser) phaseKey(d *sim.Device) uint64 {
	if f.noPhaseKeys {
		return fuseNoPhase
	}
	if k, ok := harvest.PhaseKey(d.Sys.Source, d.Now()); ok {
		f.stats.PhaseKeyed++
		return k
	}
	return fuseNoPhase
}

// lookup resolves the template for the device's current state: chain
// cursor first (verified live with MatchState — the cursor needs no
// phase check because the phase key is a map discriminator, not
// evidence; a wrong-regime proposal fails the replay's live pBits
// check), keyed map second, with the phase regime folded into the map
// key so distinct regimes of a periodic source occupy distinct slots.
// The third result reports a chain-cursor hit; the last two return the
// phase key when the slow path computed it (pkOK), so the caller can
// arm a recording without recomputing.
func (f *StepFuser) lookup(d *sim.Device, name string, alive byte) (*fuseTemplate, int32, bool, uint64, bool) {
	if f.last >= 0 {
		if n := f.tpls[f.last].succ; n >= 0 {
			tp := &f.tpls[n]
			if tp.name == name && tp.alive == alive &&
				d.Array.MatchState(tp.preVals, tp.preMask) {
				return tp, n, true, fuseNoPhase, false
			}
		}
	}
	pk := f.phaseKey(d)
	var mask uint64
	f.stateBuf, mask = d.Array.AppendState(f.stateBuf[:0])
	key := f.key(name, alive, pk, f.stateBuf, mask)
	if i, ok := f.index[string(key)]; ok {
		return &f.tpls[i], i, false, pk, true
	}
	return nil, -1, false, pk, true
}

// noteFused records a replayed step: streak accounting plus teaching
// the chain cursor the observed successor edge. Self-edges are the
// common case — a steady task looping on a fixed-point electrical
// state resolves to its own template for thousands of consecutive
// steps — so idx == last must be learnable like any other edge.
func (f *StepFuser) noteFused(idx int32) {
	if f.mode == 2 {
		f.stats.Merges++
	}
	f.mode = 1
	if f.last >= 0 && f.tpls[f.last].succ != idx {
		f.tpls[f.last].succ = idx
	}
	f.last = idx
}

// noteScalar records that the step fell back to scalar execution.
func (f *StepFuser) noteScalar() {
	if f.mode == 1 {
		f.stats.Splits++
	}
	f.mode = 2
}

// put stores a finished template, overwriting a stale recording of the
// same key (the evidence regime may have moved, e.g. across a ULP
// boundary), and links it into the chain.
func (f *StepFuser) put(tpl fuseTemplate) {
	key := f.key(tpl.name, tpl.alive, tpl.phase, tpl.preVals, tpl.preMask)
	i, ok := f.index[string(key)]
	switch {
	case ok:
		// Preserve the learned successor edge: it is only a hint, and
		// the re-recorded step usually rejoins the same chain.
		tpl.succ = f.tpls[i].succ
		f.tpls[i] = tpl
	case len(f.tpls) >= fuseMaxTemplates:
		f.stats.Discards++
		return
	default:
		f.tpls = append(f.tpls, tpl)
		i = int32(len(f.tpls) - 1)
		f.index[string(key)] = i
	}
	f.stats.Records++
	if f.last >= 0 && f.tpls[f.last].succ != i {
		f.tpls[f.last].succ = i
	}
	f.last = i
}

// fuseTry is the engine's per-step fusion attempt: replay if a
// template's evidence certifies it, otherwise arm recording for the
// scalar execution that follows. Returns true when the step was
// replayed (the Run loop then continues to the next step).
func (e *Engine) fuseTry(f *StepFuser, name string, alive bool, horizon units.Seconds) bool {
	d := e.Dev
	// The observer gate, re-checked every step exactly like the powerAt
	// memo's: chaos harnesses attach observers after construction.
	if d.Trace != nil || d.Log != nil || d.Obs != nil {
		return false
	}
	if e.FuseSched == nil || e.Rec == nil {
		return false
	}
	pmc, ok := e.PM.(CounterSource)
	if !ok {
		return false
	}
	f.stats.Steps++
	if f.bypassed() {
		f.stats.Bypassed++
		return false
	}
	ab := aliveByte(alive)
	tpl, idx, hint, pk, pkOK := f.lookup(d, name, ab)
	if tpl != nil {
		if e.fuseReplay(f, tpl, pmc, horizon) {
			if hint {
				f.stats.Hint++
			}
			if tpl.phased {
				f.stats.PhaseHits++
			}
			f.noteFused(idx)
			return true
		}
	}
	if !pkOK {
		// The hint cursor proposed a template but its evidence failed
		// (for a periodic source, typically a regime edge): compute the
		// live phase now so the recording lands in the right slot.
		pk = f.phaseKey(d)
	}
	f.noteScalar()
	e.fuseArm(name, ab, pk, pmc)
	return false
}

// fuseReplay verifies a template's evidence at the follower's clock and
// state and, if everything matches, applies the recorded effect.
// Returns false — with the device untouched — on any mismatch.
func (e *Engine) fuseReplay(f *StepFuser, tpl *fuseTemplate, pmc CounterSource, horizon units.Seconds) bool {
	d := e.Dev
	t0 := d.Now()
	// The follower's end clock, computed by the same sequential adds
	// ApplyTapeEntry will perform — bit-exact, so the horizon, ULP,
	// constancy, and quiet checks below bound every instant the
	// replayed step touches.
	fEnd := t0
	for i := range tpl.ents {
		fEnd += tpl.ents[i].Dur
	}
	// Every deadline the engine or power manager compares against
	// derives from the horizon; a step ending strictly before it keeps
	// every comparison on the recorded branch.
	if !(fEnd < horizon) {
		return false
	}
	if tpl.sourced {
		src := d.Sys.Source
		if math.Float64bits(float64(src.PowerAt(t0))) != tpl.pBits {
			return false
		}
		if math.Float64bits(float64(src.VoltageAt(t0))) != tpl.vBits {
			return false
		}
		h := harvest.NextChange(src, t0)
		if tpl.needForever {
			if h != harvest.Forever {
				return false
			}
		} else if h < fEnd-t0 { // Forever (+Inf) passes
			return false
		}
		if float64(units.MinAdvance(t0)) != tpl.ulp || float64(units.MinAdvance(fEnd)) != tpl.ulp {
			return false
		}
	}
	if !e.FuseSched.QuietRange(t0, fEnd) {
		return false
	}
	nv := d.NV
	for i := range tpl.words {
		w := &tpl.words[i]
		if v, ok := nv.Word(w.k); v != w.v || ok != w.ok {
			return false
		}
	}
	for i := range tpl.blobs {
		bl := &tpl.blobs[i]
		b, ok := nv.PeekBlob(bl.k)
		if ok != bl.ok || !bytes.Equal(b, bl.b) {
			return false
		}
	}
	for i := range tpl.chans {
		ch := &tpl.chans[i]
		if v, found := chanLookup(nv, ch.srcs, tpl.name, ch.field); v != ch.v || found != ch.found {
			return false
		}
	}

	// Evidence complete — apply. From here on the step is committed.
	f.stats.Replays++
	prof := e.profileFor(tpl.name)
	rc, pc := pmc.FuseCounters()
	e.fuseApplyStep(tpl, prof, rc, pc)

	// Fixed-point spin: a selfFix template's successor is itself, its
	// state is bit-identical before and after, and nothing a replayed
	// step does can invalidate the evidence verified above — so instead
	// of returning to the Run loop to re-verify the same facts every
	// iteration, compute the span over which every per-step check is
	// guaranteed to pass and apply the step's effect until the span
	// runs out. Byte-identical to per-step replay: each iteration's end
	// clock is predicted by the same sequential adds ApplyTapeEntry
	// performs, and an iteration is applied only when that end stays
	// strictly inside the bound (the per-step horizon, ULP-regime,
	// quiet-range, and source-constancy conditions all reduce to it).
	if tpl.selfFix {
		e.fuseSpin(f, tpl, prof, rc, pc, horizon)
	}

	d.Array.RestoreState(tpl.postVals, tpl.postMask)
	e.rngDraws += uint64(tpl.draws)
	if e.RNG != nil {
		for i := uint32(0); i < tpl.draws; i++ {
			e.RNG.Float64()
		}
	}
	if tpl.nextTask != tpl.name {
		d.NV.SetBlob(nvCurrentTask, []byte(tpl.nextTask))
	}
	return true
}

// fuseApplyStep applies one iteration of a verified template: samples
// at their boundary clocks, the effect tape, the loss/bookkeeping
// deltas, and the task-profile window. State restoration, RNG
// fast-forward, and the transition-pointer write stay in fuseReplay —
// for a selfFix spin they are no-ops per iteration (identical bits, no
// draws, self-transition), so applying them once at the end is
// byte-identical to per-step replay.
func (e *Engine) fuseApplyStep(tpl *fuseTemplate, prof *TaskProfile, rc, pc *int) {
	d := e.Dev
	si := 0
	for si < len(tpl.samples) && tpl.samples[si] == 0 {
		e.Rec.RecordSample(d.Now())
		si++
	}
	timeBefore, energyBefore := d.Stats.TimeOn, d.Stats.EnergyDrawn
	for k := range tpl.ents {
		d.ApplyTapeEntry(tpl.ents[k])
		kk := int32(k + 1)
		for si < len(tpl.samples) && tpl.samples[si] == kk {
			e.Rec.RecordSample(d.Now())
			si++
		}
		if kk == tpl.prepEnts {
			// The scalar engine snapshots its task-profile window right
			// after Prepare; mirror that boundary on the follower's own
			// accumulator values.
			timeBefore, energyBefore = d.Stats.TimeOn, d.Stats.EnergyDrawn
		}
	}
	d.Array.LeakLoss += tpl.dLeak
	d.Array.ShareLoss += tpl.dShare
	d.Array.Reverts += int(tpl.dReverts)
	d.Stats.Boots += int(tpl.dBoots)
	d.Stats.Brownouts += int(tpl.dBrown)
	*rc += int(tpl.dReconfigs)
	*pc += int(tpl.dPrecharges)
	prof.Runs++
	prof.Time += d.Stats.TimeOn - timeBefore
	prof.Energy += d.Stats.EnergyDrawn - energyBefore
}

// fuseSpin runs a selfFix template's fixed-point spin after the first
// replay iteration was applied. With cohort spins enabled the bound
// comes from fuseSpinBoundShared — which caches the template's
// ULP-regime bound so every later cohort member entering the same spin
// reuses the plan instead of re-walking binades — and sample-free
// templates take the fused apply path (sim.ApplyTapeSpan): the end
// clock predicted by the bound test's sequential adds is assigned
// directly, leaving one set of counter adds per iteration. With cohort
// spins disabled, the stage-3 per-device bound and per-entry apply run
// instead. Byte-identical either way: an iteration is applied only when
// its predicted end stays strictly inside the bound, and the predicted
// end is produced by the exact float-add sequence per-entry apply would
// perform.
func (e *Engine) fuseSpin(f *StepFuser, tpl *fuseTemplate, prof *TaskProfile, rc, pc *int, horizon units.Seconds) {
	d := e.Dev
	var bound units.Seconds
	var ok, shared bool
	if f.noCohortSpin {
		bound, ok = e.fuseSpinBound(tpl, horizon)
	} else {
		bound, ok, shared = e.fuseSpinBoundShared(tpl, horizon)
	}
	if !ok {
		return
	}
	fast := !f.noCohortSpin && len(tpl.samples) == 0
	var iters uint64
	for {
		t := d.Now()
		for i := range tpl.ents {
			t += tpl.ents[i].Dur
		}
		if !(t < bound) {
			break
		}
		f.stats.Steps++
		f.stats.Replays++
		f.stats.Hint++
		iters++
		if fast {
			timeBefore, energyBefore := d.ApplyTapeSpan(tpl.ents, tpl.prepEnts, t)
			d.Array.LeakLoss += tpl.dLeak
			d.Array.ShareLoss += tpl.dShare
			d.Array.Reverts += int(tpl.dReverts)
			d.Stats.Boots += int(tpl.dBoots)
			d.Stats.Brownouts += int(tpl.dBrown)
			*rc += int(tpl.dReconfigs)
			*pc += int(tpl.dPrecharges)
			prof.Runs++
			prof.Time += d.Stats.TimeOn - timeBefore
			prof.Energy += d.Stats.EnergyDrawn - energyBefore
		} else {
			e.fuseApplyStep(tpl, prof, rc, pc)
		}
	}
	if iters > 0 {
		f.stats.Spins++
		f.stats.SpinIters += iters
		if shared {
			f.stats.SpinShared++
		}
		if tpl.phased {
			f.stats.PhaseHits += iters
		}
	}
}

// fuseSpinBoundShared is the cohort-spin bound: like fuseSpinBound it
// returns the exclusive clock bound below which every per-step evidence
// check is guaranteed to pass, but it additionally (a) admits sources
// with a finite constancy horizon — the live span, stepped down one ULP
// so float rounding of its end can never admit an instant past the true
// edge, becomes one more min() term — and (b) caches the ULP-regime
// bound on the template. The cache is sound across cohort members:
// replay evidence pinned MinAdvance == tpl.ulp at this clock,
// MinAdvance is non-decreasing so its level sets are single intervals,
// and tpl.ulp is fixed — every member spinning this template sits in
// the same regime interval, whose end is one shared instant. The third
// result reports that a previously built plan was reused.
func (e *Engine) fuseSpinBoundShared(tpl *fuseTemplate, horizon units.Seconds) (units.Seconds, bool, bool) {
	d := e.Dev
	t0 := d.Now()
	bound := horizon
	shared := false
	if tpl.sourced {
		h := harvest.NextChange(d.Sys.Source, t0)
		if tpl.needForever {
			if h != harvest.Forever {
				return 0, false, false
			}
		} else if h != harvest.Forever {
			if h <= 0 {
				return 0, false, false
			}
			if end := units.Seconds(math.Nextafter(float64(t0+h), math.Inf(-1))); end < bound {
				bound = end
			}
		}
		if tpl.planOK {
			shared = true
		} else {
			tpl.regimeEnd = ulpRegimeEnd(t0, units.Seconds(tpl.ulp))
			tpl.planOK = tpl.regimeEnd > 0
			if !tpl.planOK {
				return 0, false, false
			}
		}
		if tpl.regimeEnd < bound {
			bound = tpl.regimeEnd
		}
	}
	qb, ok := e.FuseSched.(QuietBounder)
	if !ok {
		return 0, false, false
	}
	if q := qb.QuietBound(t0); q < bound {
		bound = q
	}
	return bound, true, shared
}

// fuseSpinBound computes the exclusive clock bound below which every
// per-step evidence check is guaranteed to pass for further iterations
// of a selfFix template, starting from the engine's current clock (the
// end of the iteration just applied). Returns ok=false when no sound
// bound exists — a time-varying source, or a schedule that cannot
// answer span queries — in which case the caller falls back to
// per-step replay through the Run loop. This is the stage-3 per-device
// bound, kept verbatim as the NoCohortSpin control path.
func (e *Engine) fuseSpinBound(tpl *fuseTemplate, horizon units.Seconds) (units.Seconds, bool) {
	d := e.Dev
	t0 := d.Now()
	bound := horizon
	if tpl.sourced {
		// Spin only under a source that is constant forever: its output
		// bits then match the template at every iteration start, and
		// every NextChange query stays Forever. (Finite constancy spans
		// would need exact boundary arithmetic; per-step replay handles
		// them.)
		if harvest.NextChange(d.Sys.Source, t0) != harvest.Forever {
			return 0, false
		}
		// Every instant the spin touches must stay in the recorded
		// MinAdvance ULP regime. MinAdvance is constant on binades and
		// non-decreasing in t, so the regime ends at the first binade
		// boundary where it changes.
		if end := ulpRegimeEnd(t0, units.Seconds(tpl.ulp)); end < bound {
			bound = end
		}
	}
	qb, ok := e.FuseSched.(QuietBounder)
	if !ok {
		return 0, false
	}
	if q := qb.QuietBound(t0); q < bound {
		bound = q
	}
	return bound, true
}

// ulpRegimeEnd returns the smallest instant at or after t0 where
// units.MinAdvance differs from ma (MinAdvance(t) == ma for every
// t in [t0, end)). MinAdvance is ULP-of-t with a floor: constant
// within a binade and non-decreasing for positive t, so walking binade
// boundaries upward finds the regime end exactly.
func ulpRegimeEnd(t0, ma units.Seconds) units.Seconds {
	f := float64(t0)
	if f <= 0 || math.IsInf(f, 0) || math.IsNaN(f) {
		return 0
	}
	_, exp := math.Frexp(f) // f ∈ [2^(exp-1), 2^exp)
	b := math.Ldexp(1, exp)
	for units.MinAdvance(units.Seconds(b)) == ma && !math.IsInf(b, 0) {
		b *= 2
	}
	return units.Seconds(b)
}

// fuseArm attaches a fresh recording to the device for the scalar step
// about to execute.
func (e *Engine) fuseArm(name string, alive byte, phase uint64, pmc CounterSource) {
	d := e.Dev
	r := &e.fuseRecStore
	r.dead = false
	r.name = name
	r.alive = alive
	r.phase = phase
	r.preVals, r.preMask = d.Array.AppendState(r.preVals[:0])
	r.t0 = d.Now()
	r.prepEnts = 0
	r.samples0 = e.Rec.SampleCount()
	r.reports0 = e.Rec.ReportCount()
	r.writes0 = d.NV.Writes()
	r.draws0 = e.rngDraws
	r.boots0, r.brown0 = d.Stats.Boots, d.Stats.Brownouts
	r.leak0, r.share0 = d.Array.LeakLoss, d.Array.ShareLoss
	r.rev0 = d.Array.Reverts
	rc, pc := pmc.FuseCounters()
	r.reconf0, r.prechg0 = *rc, *pc
	r.rcPtr, r.pcPtr = rc, pc
	r.words = r.words[:0]
	r.blobs = r.blobs[:0]
	r.blobBuf = r.blobBuf[:0]
	r.chans = r.chans[:0]
	r.tape.Reset()
	r.tape.PhaseKeys = !e.Fuse.noPhaseKeys
	e.fuseRec = r
	d.Tape = &r.tape
}

// fuseAbandon drops an armed recording (failed step, halt, deadline,
// error). A no-op when no recording is armed.
func (e *Engine) fuseAbandon() {
	if r := e.fuseRec; r != nil {
		e.fuseRec = nil
		e.Dev.Tape = nil
		e.Fuse.stats.Discards++
		// The cursor deliberately survives: hints are verified with
		// MatchState at every use, so a stale edge costs a miss, never
		// a wrong replay.
		_ = r
	}
}

// fuseFinalize validates the just-completed scalar step's recording —
// called after the transition commit, with next already validated and
// interned — and stores a template if every soundness condition holds.
func (e *Engine) fuseFinalize(name, next string) {
	f := e.Fuse
	r := e.fuseRec
	e.fuseRec = nil
	d := e.Dev
	d.Tape = nil

	end := d.Now()
	ok := !r.dead && !r.tape.Bad &&
		len(r.tape.Ents) <= fuseMaxEnts &&
		r.tape.MinSlack > 0 &&
		len(e.ctx.stagedWords) == 0 && len(e.ctx.stagedBlobs) == 0 &&
		len(e.ctx.stagedDel) == 0 && len(e.ctx.stagedChans) == 0 &&
		e.Rec.ReportCount() == r.reports0
	if ok {
		// The only NV write a recordable step makes is the engine's own
		// transition-pointer update (safety net against unmodeled
		// writes).
		expect := 0
		if next != name {
			expect = 1
		}
		ok = d.NV.Writes()-r.writes0 == expect
	}
	var (
		pBits, vBits uint64
		needForever  bool
		ulp          float64
	)
	if ok && r.tape.Sourced {
		src := d.Sys.Source
		pBits = math.Float64bits(float64(src.PowerAt(r.t0)))
		vBits = math.Float64bits(float64(src.VoltageAt(r.t0)))
		needForever = r.tape.NeedForever
		h0 := harvest.NextChange(src, r.t0)
		if needForever {
			ok = h0 == harvest.Forever
		} else {
			ok = h0 >= end-r.t0 // Forever (+Inf) passes
		}
		// The step must sit inside one MinAdvance ULP regime, so the
		// integrators' segment floors translate with the clock.
		ma := units.MinAdvance(r.t0)
		ok = ok && ma == units.MinAdvance(end)
		ulp = float64(ma)
	}
	ok = ok && e.FuseSched.QuietRange(r.t0, end)
	var samples []int32
	if ok {
		samples, ok = r.matchSamples(e.Rec)
	}
	if !ok {
		// The cursor survives the discard: the next recordable step is
		// still this chain's successor, and the MatchState verification
		// at every hint keeps a stale edge harmless.
		f.stats.Discards++
		return
	}

	tpl := fuseTemplate{
		name:        name,
		nextTask:    next,
		alive:       r.alive,
		phase:       r.phase,
		phased:      r.tape.Phased,
		preMask:     r.preMask,
		preVals:     append([]float64(nil), r.preVals...),
		ents:        append([]sim.TapeEntry(nil), r.tape.Ents...),
		prepEnts:    r.prepEnts,
		succ:        -1,
		samples:     samples,
		draws:       uint32(e.rngDraws - r.draws0),
		dBoots:      int32(d.Stats.Boots - r.boots0),
		dBrown:      int32(d.Stats.Brownouts - r.brown0),
		dReverts:    int32(d.Array.Reverts - r.rev0),
		dReconfigs:  int32(*r.rcPtr - r.reconf0),
		dPrecharges: int32(*r.pcPtr - r.prechg0),
		dLeak:       d.Array.LeakLoss - r.leak0,
		dShare:      d.Array.ShareLoss - r.share0,
		sourced:     r.tape.Sourced,
		needForever: needForever,
		pBits:       pBits,
		vBits:       vBits,
		ulp:         ulp,
	}
	tpl.postVals, tpl.postMask = d.Array.AppendState(nil)
	// A bit-exact fixed point — an alive self-transition that left the
	// electrical state untouched and drew nothing — is spinnable: its
	// replay effect is identical every iteration (see fuseReplay).
	tpl.selfFix = tpl.nextTask == tpl.name && tpl.alive == 1 &&
		tpl.draws == 0 && tpl.postMask == tpl.preMask &&
		floatBitsEqual(tpl.postVals, tpl.preVals)
	if n := len(r.words); n > 0 {
		tpl.words = append(make([]wordRead, 0, n), r.words...)
	}
	if n := len(r.blobs); n > 0 {
		tpl.blobs = make([]blobRead, 0, n)
		for i := range r.blobs {
			rb := &r.blobs[i]
			tpl.blobs = append(tpl.blobs, blobRead{
				k:  rb.k,
				b:  append([]byte(nil), r.blobBuf[rb.off:rb.off+rb.n]...),
				ok: rb.ok,
			})
		}
	}
	if n := len(r.chans); n > 0 {
		tpl.chans = make([]chanRead, 0, n)
		for i := range r.chans {
			c := &r.chans[i]
			tpl.chans = append(tpl.chans, chanRead{
				field: c.field,
				srcs:  append([]string(nil), c.srcs...),
				v:     c.v,
				found: c.found,
			})
		}
	}
	f.put(tpl)
}
