// Package federated implements a UFoP-style federated energy storage
// baseline (Hester et al., "Tragedy of the Coulombs", SenSys 2015),
// which the paper compares against in §7: separate capacitors dedicated
// to the MCU and each peripheral, charged in a priority cascade.
//
// Federation, like Capybara, avoids charging one worst-case capacitor
// before doing any work. The difference the paper draws — "federation
// rigidly allocates energy buffering to a hardware peripheral, not a
// software task, making it less capable and flexible than Capybara" —
// is what this package exists to demonstrate: a federated store's
// capacity is fixed at design time, so no task can ever atomically
// spend more than its own store holds, while Capybara can gang its
// banks into one large mode.
package federated

import (
	"fmt"
	"strings"

	"capybara/internal/power"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// Store is one federated capacitor dedicated to a single load.
type Store struct {
	// Name identifies the dedicated load ("mcu", "radio", …).
	Name string
	// Bank is the store's capacitor.
	Bank *storage.Bank
	// VTop is the store's charge-complete voltage.
	VTop units.Voltage
}

// fullHysteresis is the comparator hysteresis below VTop within which a
// store still counts as full (leakage between cascade steps must not
// flap the priority ladder).
const fullHysteresis units.Voltage = 1e-3

// Full reports whether the store is charged to its top (within the
// comparator hysteresis).
func (s *Store) Full() bool { return s.Bank.Voltage() >= s.VTop-fullHysteresis }

func (s *Store) String() string {
	return fmt.Sprintf("%s[%v @ %v/%v]", s.Name, s.Bank.Capacitance(), s.Bank.Voltage(), s.VTop)
}

// Array is a federation: stores charged in strict priority order (the
// UFoP charging cascade). All harvested power flows into the first
// non-full store; only when it fills does charge cascade onward.
type Array struct {
	Stores []*Store
}

// NewArray builds a federation with the given priority order.
func NewArray(stores ...*Store) *Array { return &Array{Stores: stores} }

// Store returns the named store.
func (a *Array) Store(name string) (*Store, bool) {
	for _, s := range a.Stores {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// TotalCapacitance sums the federation.
func (a *Array) TotalCapacitance() units.Capacitance {
	var c units.Capacitance
	for _, s := range a.Stores {
		c += s.Bank.Capacitance()
	}
	return c
}

// MaxAtomicEnergy returns the largest energy any single task can spend
// atomically: the biggest store's extractable band for the given load.
// This is the federation's hard ceiling — no reconfiguration can gang
// stores together.
func (a *Array) MaxAtomicEnergy(sys *power.System, load units.Power) units.Energy {
	var max units.Energy
	for _, s := range a.Stores {
		b := storage.MustBank("trial", s.Bank.Groups()...)
		b.SetVoltage(s.VTop)
		if e := sys.ExtractableEnergy(b, load); e > max {
			max = e
		}
	}
	return max
}

// Charge advances the cascade for dt starting at time t0: harvested
// power fills stores strictly in priority order.
func (a *Array) Charge(sys *power.System, t0, dt units.Seconds) {
	const step units.Seconds = 0.25
	for done := units.Seconds(0); done < dt; {
		h := step
		if done+h > dt {
			h = dt - done
		}
		target := a.firstNonFull()
		if target == nil {
			// Everything full: nothing to do but leak.
			a.leak(h)
			done += h
			continue
		}
		p := sys.ChargePower(target.Bank.Voltage(), t0+done)
		if p <= 0 {
			a.leak(h)
			done += h
			continue
		}
		// Advance to the store's top or the step end, whichever first.
		toTop := units.TimeToCharge(target.Bank.Capacitance(), target.Bank.Voltage(), target.VTop, p)
		if toTop < h {
			h = toTop
			if h <= 0 {
				h = 1e-6
			}
		}
		target.Bank.Charge(p, h)
		if target.Bank.Voltage() > target.VTop {
			target.Bank.SetVoltage(target.VTop)
		}
		a.leak(h)
		done += h
	}
}

func (a *Array) firstNonFull() *Store {
	for _, s := range a.Stores {
		if !s.Full() {
			return s
		}
	}
	return nil
}

func (a *Array) leak(dt units.Seconds) {
	for _, s := range a.Stores {
		s.Bank.Leak(dt)
	}
}

// Spend runs a load from the named store for dt. It returns the time
// sustained and whether it completed (false on brownout or unknown
// store). Other stores are untouched — the federation's isolation
// property.
func (a *Array) Spend(sys *power.System, name string, load units.Power, dt units.Seconds) (units.Seconds, bool) {
	s, ok := a.Store(name)
	if !ok {
		return 0, false
	}
	return sys.Discharge(s.Bank, load, dt)
}

func (a *Array) String() string {
	parts := make([]string, 0, len(a.Stores))
	for _, s := range a.Stores {
		parts = append(parts, s.String())
	}
	return "federation[" + strings.Join(parts, " ") + "]"
}
