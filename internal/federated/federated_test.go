package federated

import (
	"testing"

	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/storage"
	"capybara/internal/units"
)

func testSys() *power.System {
	return power.NewSystem(harvest.RegulatedSupply{Max: 5 * units.MilliWatt, V: 3.0})
}

func testArray() *Array {
	mcu := &Store{
		Name: "mcu",
		Bank: storage.MustBank("mcu", storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad)),
		VTop: 2.4,
	}
	radio := &Store{
		Name: "radio",
		Bank: storage.MustBank("radio", storage.GroupOf(storage.EDLC, 2)),
		VTop: 2.4,
	}
	return NewArray(mcu, radio)
}

func TestCascadePriority(t *testing.T) {
	a := testArray()
	sys := testSys()
	// A short charge fills the high-priority MCU store first; the radio
	// store must still be (nearly) empty.
	a.Charge(sys, 0, 2)
	mcu, _ := a.Store("mcu")
	radio, _ := a.Store("radio")
	if !mcu.Full() {
		t.Fatalf("mcu store not full after 2 s: %v", mcu.Bank.Voltage())
	}
	if radio.Full() {
		t.Fatal("radio store filled before the cascade should reach it")
	}
	// A long charge cascades into the radio store.
	a.Charge(sys, 2, 60)
	if !radio.Full() {
		t.Fatalf("radio store not full after a minute: %v", radio.Bank.Voltage())
	}
}

func TestCascadeRefillsPriorityFirst(t *testing.T) {
	a := testArray()
	sys := testSys()
	a.Charge(sys, 0, 120)
	// Spend from the MCU store; the next charge must refill it before
	// the radio store receives anything more.
	if _, ok := a.Spend(sys, "mcu", 2*units.MilliWatt, 0.1); !ok {
		t.Fatal("mcu spend failed")
	}
	radio, _ := a.Store("radio")
	vRadio := radio.Bank.Voltage()
	a.Charge(sys, 120, 0.05) // brief charge: must go to the mcu store
	mcu, _ := a.Store("mcu")
	if mcu.Bank.Voltage() <= 1.0 {
		t.Fatal("mcu store not being refilled")
	}
	if radio.Bank.Voltage() > vRadio {
		t.Fatal("radio store charged while a higher-priority store was empty")
	}
}

func TestSpendIsolation(t *testing.T) {
	a := testArray()
	sys := testSys()
	a.Charge(sys, 0, 120)
	mcu, _ := a.Store("mcu")
	vBefore := mcu.Bank.Voltage()
	// Draining the radio store must not touch the MCU store.
	if _, ok := a.Spend(sys, "radio", 20*units.MilliWatt, 0.1); !ok {
		t.Fatal("radio spend failed")
	}
	if mcu.Bank.Voltage() != vBefore {
		t.Fatal("federation isolation violated")
	}
	if _, ok := a.Spend(sys, "nonexistent", units.MilliWatt, 1); ok {
		t.Fatal("unknown store spend succeeded")
	}
}

func TestMaxAtomicEnergyIsTheRigidCeiling(t *testing.T) {
	a := testArray()
	sys := testSys()
	load := 29 * units.MilliWatt
	ceiling := a.MaxAtomicEnergy(sys, load)
	if ceiling <= 0 {
		t.Fatal("no atomic capacity at all")
	}
	// The same total capacitance ganged into ONE Capybara-style bank
	// supports a strictly larger atomic task.
	ganged := storage.MustBank("ganged",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupOf(storage.EDLC, 2))
	ganged.SetVoltage(2.4)
	combined := sys.ExtractableEnergy(ganged, load)
	if combined <= ceiling {
		t.Fatalf("ganged bank (%v) should exceed the federated ceiling (%v)", combined, ceiling)
	}
}

func TestChargeWithDeadSource(t *testing.T) {
	a := testArray()
	sys := power.NewSystem(harvest.RegulatedSupply{Max: 0, V: 3.0})
	a.Charge(sys, 0, 10)
	mcu, _ := a.Store("mcu")
	if mcu.Bank.Voltage() != 0 {
		t.Fatal("charged from a dead source")
	}
}

func TestStringersAndLookup(t *testing.T) {
	a := testArray()
	if a.String() == "" {
		t.Error("array stringer empty")
	}
	if a.TotalCapacitance() <= 15*units.MilliFarad {
		t.Errorf("total capacitance = %v", a.TotalCapacitance())
	}
	if _, ok := a.Store("mcu"); !ok {
		t.Error("store lookup failed")
	}
	if _, ok := a.Store("gps"); ok {
		t.Error("phantom store found")
	}
	mcu, _ := a.Store("mcu")
	if mcu.String() == "" {
		t.Error("store stringer empty")
	}
}
