// Package prof wires runtime/pprof file output into the CLIs: a
// -cpuprofile/-memprofile pair is all that is needed to feed
// `go tool pprof` when hunting simulator regressions, without pulling
// in net/http/pprof and an HTTP server.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins CPU profiling into path. It returns a stop function
// to defer; with an empty path it is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocation profile to path after forcing a GC so
// the numbers reflect live retention, matching `go test -memprofile`.
// With an empty path it is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	return nil
}
