package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// The canonical report: everything written here is a pure function of
// Config, so the bytes are identical at any worker count and with the
// memo cache on or off. Wall-clock and cache diagnostics deliberately
// live outside it (Result fields, rendered by Diagnostics).

// cohortRow is the JSON shape of one cohort.
type cohortRow struct {
	App           string `json:"app"`
	Variant       string `json:"variant"`
	Scenario      string `json:"scenario"`
	Devices       int    `json:"devices"`
	Events        int    `json:"events"`
	Correct       int    `json:"correct"`
	Misclassified int    `json:"misclassified"`
	Missed        int    `json:"missed"`
	AccuracyMean  string `json:"accuracy_mean"`
	AccuracySD    string `json:"accuracy_sd"`
	Reported      int64  `json:"reported"`
	LatencyMean   string `json:"latency_mean_s"`
	LatencySD     string `json:"latency_sd_s"`
	LatencyMax    string `json:"latency_max_s"`
	LatencyBins   []int  `json:"latency_bins"`
	Boots         int    `json:"boots"`
	Brownouts     int    `json:"brownouts"`
	Reconfigs     int    `json:"reconfigs"`
	Precharges    int    `json:"precharges"`
	TimeOnFrac    string `json:"time_on_frac"`
}

// rowScratch is the report writer's reusable formatting state: one
// number buffer shared by every row instead of a fmt.Sprintf allocation
// per field per cohort (the alloc delta is pinned by
// BenchmarkFleetReportCSV).
type rowScratch struct{ buf []byte }

// appendFloat renders x exactly like the report's historical %.9g —
// enough digits to expose any nondeterminism in the fold while staying
// readable.
func (s *rowScratch) appendFloat(dst []byte, x float64) []byte {
	return strconv.AppendFloat(dst, x, 'g', 9, 64)
}

// float renders x into the shared scratch buffer and returns it as a
// string (one small allocation — the string itself — per call; the
// formatting work is allocation-free).
func (s *rowScratch) float(x float64) string {
	s.buf = s.appendFloat(s.buf[:0], x)
	return string(s.buf)
}

// onFrac computes the duty-cycle fraction of a cohort.
func (c *CohortStats) onFrac() float64 {
	if tot := c.TimeOn + c.TimeOff; tot > 0 {
		return float64(c.TimeOn) / float64(tot)
	}
	return 0
}

func (c *CohortStats) row(s *rowScratch) cohortRow {
	bins := c.LatencyHist.Counts
	if bins == nil {
		bins = make([]int, len(latencyEdges)+1)
	}
	return cohortRow{
		App:           c.Cohort.App,
		Variant:       c.Cohort.Variant.String(),
		Scenario:      c.Cohort.Scenario.String(),
		Devices:       c.Devices,
		Events:        c.Events,
		Correct:       c.Correct,
		Misclassified: c.Misclassified,
		Missed:        c.Missed,
		AccuracyMean:  s.float(c.Accuracy.Mean),
		AccuracySD:    s.float(c.Accuracy.StdDev()),
		Reported:      c.Latency.N,
		LatencyMean:   s.float(c.Latency.Mean),
		LatencySD:     s.float(c.Latency.StdDev()),
		LatencyMax:    s.float(c.Latency.Max()),
		LatencyBins:   bins,
		Boots:         c.Boots,
		Brownouts:     c.Brownouts,
		Reconfigs:     c.Reconfigs,
		Precharges:    c.Precharges,
		TimeOnFrac:    s.float(c.onFrac()),
	}
}

const csvHeader = "app,variant,scenario,devices,events,correct,misclassified,missed," +
	"accuracy_mean,accuracy_sd,reported,latency_mean_s,latency_sd_s,latency_max_s," +
	"boots,brownouts,reconfigs,precharges,time_on_frac\n"

// appendCSVRow formats one cohort straight into the report buffer — no
// intermediate row struct, no per-field strings.
func (s *rowScratch) appendCSVRow(b []byte, label, variant, scenario string, c *CohortStats) []byte {
	b = append(b, label...)
	b = append(b, ',')
	b = append(b, variant...)
	b = append(b, ',')
	b = append(b, scenario...)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(c.Devices), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(c.Events), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(c.Correct), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(c.Misclassified), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(c.Missed), 10)
	b = append(b, ',')
	b = s.appendFloat(b, c.Accuracy.Mean)
	b = append(b, ',')
	b = s.appendFloat(b, c.Accuracy.StdDev())
	b = append(b, ',')
	b = strconv.AppendInt(b, c.Latency.N, 10)
	b = append(b, ',')
	b = s.appendFloat(b, c.Latency.Mean)
	b = append(b, ',')
	b = s.appendFloat(b, c.Latency.StdDev())
	b = append(b, ',')
	b = s.appendFloat(b, c.Latency.Max())
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(c.Boots), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(c.Brownouts), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(c.Reconfigs), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(c.Precharges), 10)
	b = append(b, ',')
	b = s.appendFloat(b, c.onFrac())
	b = append(b, '\n')
	return b
}

// WriteCSV renders the canonical per-cohort table plus a TOTAL row.
func (r *Result) WriteCSV(w io.Writer) error {
	var s rowScratch
	b := make([]byte, 0, 256*(len(r.Cohorts)+2))
	b = append(b, csvHeader...)
	for i := range r.Cohorts {
		c := &r.Cohorts[i]
		if c.Devices == 0 {
			continue
		}
		b = s.appendCSVRow(b, c.Cohort.App, c.Cohort.Variant.String(), c.Cohort.Scenario.String(), c)
	}
	total := r.total()
	b = s.appendCSVRow(b, "TOTAL", "-", "-", &total)
	_, err := w.Write(b)
	return err
}

// WriteJSON renders the canonical report as one JSON document.
func (r *Result) WriteJSON(w io.Writer) error {
	type doc struct {
		N       int         `json:"n"`
		Seed    int64       `json:"seed"`
		Scale   string      `json:"scale"`
		Cohorts []cohortRow `json:"cohorts"`
		Total   cohortRow   `json:"total"`
	}
	var s rowScratch
	scale := r.Config.Scale
	if scale == 0 {
		scale = 1.0
	}
	d := doc{N: r.Config.N, Seed: r.Config.Seed, Scale: s.float(scale)}
	for i := range r.Cohorts {
		c := &r.Cohorts[i]
		if c.Devices == 0 {
			continue
		}
		d.Cohorts = append(d.Cohorts, c.row(&s))
	}
	total := r.total()
	d.Total = total.row(&s)
	d.Total.Variant, d.Total.Scenario = "-", "-"
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// total folds every cohort into one grand aggregate, in cohort order.
func (r *Result) total() CohortStats {
	var t CohortStats
	t.Cohort = Cohort{App: "TOTAL"}
	t.LatencyHist.Edges = latencyEdges
	for i := range r.Cohorts {
		c := &r.Cohorts[i]
		if c.Devices == 0 {
			continue
		}
		// merge cannot fail here: every cohort histogram shares
		// latencyEdges.
		if err := t.merge(c); err != nil {
			panic(err)
		}
	}
	return t
}

// Diagnostics renders the non-canonical run facts: throughput and memo
// cache effectiveness. Separate from the report because both depend on
// scheduling, not on Config.
func (r *Result) Diagnostics() string {
	var b []byte
	b = fmt.Appendf(b, "fleet: %d devices in %v (%.0f devices/sec, %d workers)\n",
		r.Config.N, r.Elapsed.Round(1e6), r.DevicesSec, r.Workers)
	if c := r.Cache; c.Hits+c.Misses > 0 {
		b = fmt.Appendf(b, "memo: %d lookups, %.1f%% hit, %d uncacheable\n",
			c.Hits+c.Misses, 100*c.HitRate(), c.Uncacheable)
	} else if r.Config.NoMemo {
		b = append(b, "memo: disabled\n"...)
	}
	if s := r.Batch; s.Hits+s.Misses > 0 {
		b = fmt.Appendf(b, "batch: %d lookups, %.1f%% replayed (%.1f%% vectored), %d records, mean width %.1f, %d splits, %d merges, %d bypassed, %d uncacheable\n",
			s.Hits+s.Misses, 100*s.HitRate(), 100*s.VectorRate(), s.Records, s.MeanWidth(),
			s.Splits, s.Merges, s.Bypassed, s.Uncacheable)
	} else if r.Config.Batch < 0 {
		b = append(b, "batch: disabled\n"...)
	}
	if f := r.Fuse; f.Steps > 0 {
		b = fmt.Appendf(b, "fuse: %d steps, %.1f%% fused (%.1f%% chained), %d records, %d discards, %d splits, %d merges, %d bypassed\n",
			f.Steps, 100*f.FusedRate(), 100*f.HintRate(), f.Records, f.Discards,
			f.Splits, f.Merges, f.Bypassed)
		if f.Spins > 0 {
			b = fmt.Appendf(b, "spin: %d spins, %.1f%% shared (fold %.1fx), %d iters\n",
				f.Spins, 100*f.CohortSpinRate(), f.SpinFold(), f.SpinIters)
		}
		if f.PhaseHits > 0 {
			b = fmt.Appendf(b, "phase: %d phase-keyed replays (%.1f%% of replays)\n",
				f.PhaseHits, 100*f.PhaseHitRate())
		}
	} else if r.Config.NoFuse {
		b = append(b, "fuse: disabled\n"...)
	}
	b = r.appendCohortDiagnostics(b)
	return string(b)
}

// appendCohortDiagnostics renders one line per cohort breaking the
// memo and batch aggregates down, so divergence-heavy cohorts (low
// replay rate, narrow width, split churn) are visible without a
// profiler. Empty unless the run collected per-cohort stats.
func (r *Result) appendCohortDiagnostics(b []byte) []byte {
	for i := range r.Cohorts {
		c := &r.Cohorts[i]
		var line []byte
		if i < len(r.CohortCache) {
			if m := r.CohortCache[i]; m.Hits+m.Misses > 0 {
				line = fmt.Appendf(line, " memo %5.1f%% hit (%d lookups)",
					100*m.HitRate(), m.Hits+m.Misses)
			}
		}
		if i < len(r.CohortBatch) {
			if s := r.CohortBatch[i]; s.Hits+s.Misses+s.Bypassed > 0 {
				line = fmt.Appendf(line, " | batch %5.1f%% replayed (%.0f%% vectored), width %.1f, %d splits, %d merges",
					100*s.HitRate(), 100*s.VectorRate(), s.MeanWidth(), s.Splits, s.Merges)
				if s.Bypassed > 0 {
					line = fmt.Appendf(line, ", %d bypassed", s.Bypassed)
				}
			}
		}
		if i < len(r.CohortFuse) {
			if f := r.CohortFuse[i]; f.Steps > 0 {
				line = fmt.Appendf(line, " | fuse %5.1f%% fused (%.0f%% chained), %d records, %d discards, %d splits, %d merges",
					100*f.FusedRate(), 100*f.HintRate(), f.Records, f.Discards, f.Splits, f.Merges)
				if f.Bypassed > 0 {
					line = fmt.Appendf(line, ", %d bypassed", f.Bypassed)
				}
				if f.Spins > 0 {
					line = fmt.Appendf(line, " | spin %5.1f%% shared (fold %.1fx)",
						100*f.CohortSpinRate(), f.SpinFold())
				}
				if f.PhaseHits > 0 {
					line = fmt.Appendf(line, " | phase %5.1f%% of replays (%d keyed)",
						100*f.PhaseHitRate(), f.PhaseHits)
				}
			}
		}
		if len(line) == 0 {
			continue
		}
		b = fmt.Appendf(b, "cohort %s/%s/%s:%s\n",
			c.Cohort.App, c.Cohort.Variant, c.Cohort.Scenario, line)
	}
	return b
}
