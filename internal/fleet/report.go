package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The canonical report: everything written here is a pure function of
// Config, so the bytes are identical at any worker count and with the
// memo cache on or off. Wall-clock and cache diagnostics deliberately
// live outside it (Result fields, rendered by Diagnostics).

// cohortRow is the JSON shape of one cohort.
type cohortRow struct {
	App           string `json:"app"`
	Variant       string `json:"variant"`
	Scenario      string `json:"scenario"`
	Devices       int    `json:"devices"`
	Events        int    `json:"events"`
	Correct       int    `json:"correct"`
	Misclassified int    `json:"misclassified"`
	Missed        int    `json:"missed"`
	AccuracyMean  string `json:"accuracy_mean"`
	AccuracySD    string `json:"accuracy_sd"`
	Reported      int64  `json:"reported"`
	LatencyMean   string `json:"latency_mean_s"`
	LatencySD     string `json:"latency_sd_s"`
	LatencyMax    string `json:"latency_max_s"`
	LatencyBins   []int  `json:"latency_bins"`
	Boots         int    `json:"boots"`
	Brownouts     int    `json:"brownouts"`
	Reconfigs     int    `json:"reconfigs"`
	Precharges    int    `json:"precharges"`
	TimeOnFrac    string `json:"time_on_frac"`
}

// f renders a float with enough digits to expose any nondeterminism in
// the fold while staying readable.
func f(x float64) string { return fmt.Sprintf("%.9g", x) }

func (c *CohortStats) row() cohortRow {
	onFrac := 0.0
	if tot := c.TimeOn + c.TimeOff; tot > 0 {
		onFrac = float64(c.TimeOn) / float64(tot)
	}
	bins := c.LatencyHist.Counts
	if bins == nil {
		bins = make([]int, len(latencyEdges)+1)
	}
	return cohortRow{
		App:           c.Cohort.App,
		Variant:       c.Cohort.Variant.String(),
		Scenario:      c.Cohort.Scenario.String(),
		Devices:       c.Devices,
		Events:        c.Events,
		Correct:       c.Correct,
		Misclassified: c.Misclassified,
		Missed:        c.Missed,
		AccuracyMean:  f(c.Accuracy.Mean),
		AccuracySD:    f(c.Accuracy.StdDev()),
		Reported:      c.Latency.N,
		LatencyMean:   f(c.Latency.Mean),
		LatencySD:     f(c.Latency.StdDev()),
		LatencyMax:    f(c.Latency.Max()),
		LatencyBins:   bins,
		Boots:         c.Boots,
		Brownouts:     c.Brownouts,
		Reconfigs:     c.Reconfigs,
		Precharges:    c.Precharges,
		TimeOnFrac:    f(onFrac),
	}
}

// WriteCSV renders the canonical per-cohort table plus a TOTAL row.
func (r *Result) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("app,variant,scenario,devices,events,correct,misclassified,missed," +
		"accuracy_mean,accuracy_sd,reported,latency_mean_s,latency_sd_s,latency_max_s," +
		"boots,brownouts,reconfigs,precharges,time_on_frac\n")
	write := func(label string, row cohortRow) {
		fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%d,%d,%d,%s,%s,%d,%s,%s,%s,%d,%d,%d,%d,%s\n",
			label, row.Variant, row.Scenario, row.Devices, row.Events,
			row.Correct, row.Misclassified, row.Missed,
			row.AccuracyMean, row.AccuracySD, row.Reported,
			row.LatencyMean, row.LatencySD, row.LatencyMax,
			row.Boots, row.Brownouts, row.Reconfigs, row.Precharges, row.TimeOnFrac)
	}
	for i := range r.Cohorts {
		c := &r.Cohorts[i]
		if c.Devices == 0 {
			continue
		}
		write(c.Cohort.App, c.row())
	}
	total := r.total()
	row := total.row()
	row.Variant, row.Scenario = "-", "-"
	write("TOTAL", row)
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the canonical report as one JSON document.
func (r *Result) WriteJSON(w io.Writer) error {
	type doc struct {
		N       int         `json:"n"`
		Seed    int64       `json:"seed"`
		Scale   string      `json:"scale"`
		Cohorts []cohortRow `json:"cohorts"`
		Total   cohortRow   `json:"total"`
	}
	scale := r.Config.Scale
	if scale == 0 {
		scale = 1.0
	}
	d := doc{N: r.Config.N, Seed: r.Config.Seed, Scale: f(scale)}
	for i := range r.Cohorts {
		c := &r.Cohorts[i]
		if c.Devices == 0 {
			continue
		}
		d.Cohorts = append(d.Cohorts, c.row())
	}
	total := r.total()
	d.Total = total.row()
	d.Total.Variant, d.Total.Scenario = "-", "-"
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// total folds every cohort into one grand aggregate, in cohort order.
func (r *Result) total() CohortStats {
	var t CohortStats
	t.Cohort = Cohort{App: "TOTAL"}
	t.LatencyHist.Edges = latencyEdges
	for i := range r.Cohorts {
		c := &r.Cohorts[i]
		if c.Devices == 0 {
			continue
		}
		// merge cannot fail here: every cohort histogram shares
		// latencyEdges.
		if err := t.merge(c); err != nil {
			panic(err)
		}
	}
	return t
}

// Diagnostics renders the non-canonical run facts: throughput and memo
// cache effectiveness. Separate from the report because both depend on
// scheduling, not on Config.
func (r *Result) Diagnostics() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d devices in %v (%.0f devices/sec, %d workers)\n",
		r.Config.N, r.Elapsed.Round(1e6), r.DevicesSec, r.Workers)
	if c := r.Cache; c.Hits+c.Misses > 0 {
		fmt.Fprintf(&b, "memo: %d lookups, %.1f%% hit, %d uncacheable\n",
			c.Hits+c.Misses, 100*c.HitRate(), c.Uncacheable)
	} else if r.Config.NoMemo {
		b.WriteString("memo: disabled\n")
	}
	return b.String()
}
