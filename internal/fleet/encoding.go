package fleet

import (
	"fmt"
	"io"

	"encoding/gob"
)

// Partial serialization: one self-contained gob stream per partial.
//
// This is the single encoding shared by everything that moves a
// ChunkPartial out of process memory — the shard wire protocol embeds
// partials in its frames, and the fleetsvc checkpoint store persists
// them to disk. Gob transmits float64 values as their exact 64-bit
// patterns, so decode(encode(cp)) is bit-identical to cp: a partial
// that round-trips through disk or the network folds to exactly the
// bytes a freshly computed partial would (the property the
// internal/metrics encode→decode→Merge tests pin for the accumulator
// types, and TestPartialRoundTripBitIdentical pins for the whole
// partial).

// EncodePartial writes cp to w as one self-contained gob stream.
func EncodePartial(w io.Writer, cp *ChunkPartial) error {
	if cp == nil {
		return fmt.Errorf("fleet: encoding nil partial")
	}
	return gob.NewEncoder(w).Encode(cp)
}

// DecodePartial reads one partial from r. A fresh decoder per partial
// means a corrupt stream fails at its own boundary — callers decide
// whether that is a protocol failure (shard) or a quarantine-and-
// recompute (fleetsvc store).
func DecodePartial(r io.Reader) (*ChunkPartial, error) {
	var cp ChunkPartial
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("fleet: decoding partial: %w", err)
	}
	return &cp, nil
}
