package fleet

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// testConfig keeps wall time small: 96 devices covers every cohort of
// the 48-cell grid twice at 5% event scale.
func testConfig(jobs int, noMemo bool) Config {
	return Config{N: 96, Seed: 1, Jobs: jobs, Scale: 0.05, NoMemo: noMemo}
}

func render(t *testing.T, cfg Config) (string, string) {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var csv, js bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return csv.String(), js.String()
}

// TestFleetDeterministicAcrossJobs is the engine's core guarantee: the
// canonical report is byte-identical at any worker count.
func TestFleetDeterministicAcrossJobs(t *testing.T) {
	baseCSV, baseJSON := render(t, testConfig(1, false))
	for _, jobs := range []int{3, 8} {
		csv, js := render(t, testConfig(jobs, false))
		if csv != baseCSV {
			t.Fatalf("CSV differs at jobs=%d:\n--- jobs=1 ---\n%s--- jobs=%d ---\n%s",
				jobs, baseCSV, jobs, csv)
		}
		if js != baseJSON {
			t.Fatalf("JSON differs at jobs=%d", jobs)
		}
	}
}

// TestFleetMemoInvariant: disabling the memo cache must not change a
// byte of the report — hits replay the exact float operations of the
// direct solver.
func TestFleetMemoInvariant(t *testing.T) {
	onCSV, onJSON := render(t, testConfig(2, false))
	offCSV, offJSON := render(t, testConfig(2, true))
	if onCSV != offCSV {
		t.Fatalf("memo changed the CSV report:\n--- memo on ---\n%s--- memo off ---\n%s",
			onCSV, offCSV)
	}
	if onJSON != offJSON {
		t.Fatal("memo changed the JSON report")
	}
}

// TestFleetRecycleInvariant: the scratch-recycling layer (pooled
// recorders, worker-shared memo caches) must not change a byte of the
// report versus building every device fresh.
func TestFleetRecycleInvariant(t *testing.T) {
	cfg := testConfig(2, false)
	onCSV, onJSON := render(t, cfg)
	cfg.NoRecycle = true
	offCSV, offJSON := render(t, cfg)
	if onCSV != offCSV {
		t.Fatalf("recycling changed the CSV report:\n--- recycle ---\n%s--- fresh ---\n%s",
			onCSV, offCSV)
	}
	if onJSON != offJSON {
		t.Fatal("recycling changed the JSON report")
	}
}

// TestFleetReportShape sanity-checks the simulated population: every
// cohort got devices, events were scheduled, and the Capybara variants
// actually exercised reconfiguration.
func TestFleetReportShape(t *testing.T) {
	res, err := Run(context.Background(), testConfig(0, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cohorts) != 48 {
		t.Fatalf("grid has %d cohorts, want 48", len(res.Cohorts))
	}
	reconfigs := 0
	for i := range res.Cohorts {
		c := &res.Cohorts[i]
		if c.Devices != 2 {
			t.Fatalf("cohort %v has %d devices, want 2", c.Cohort, c.Devices)
		}
		if c.Events == 0 {
			t.Fatalf("cohort %v scheduled no events", c.Cohort)
		}
		if got := c.Correct + c.Misclassified + c.Missed; got > c.Events {
			t.Fatalf("cohort %v outcomes %d exceed events %d", c.Cohort, got, c.Events)
		}
		reconfigs += c.Reconfigs
	}
	if reconfigs == 0 {
		t.Fatal("no cohort reconfigured — Capybara variants missing from the grid")
	}
	if res.DevicesSec <= 0 {
		t.Fatalf("throughput diagnostic %v", res.DevicesSec)
	}
	if res.Cache.Hits == 0 {
		t.Fatalf("memo never hit across the fleet: %+v", res.Cache)
	}
	if res.Diagnostics() == "" {
		t.Fatal("empty diagnostics")
	}

	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	// Header + 48 cohorts + TOTAL.
	if len(lines) != 50 {
		t.Fatalf("CSV has %d lines, want 50", len(lines))
	}
	if !strings.HasPrefix(lines[len(lines)-1], "TOTAL,") {
		t.Fatalf("last line %q is not the TOTAL row", lines[len(lines)-1])
	}
}

// TestFleetConfigValidation covers the error paths.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Run(context.Background(), Config{N: 1, Scale: 2}); err == nil {
		t.Fatal("scale 2 accepted")
	}
	if _, err := Run(context.Background(), Config{N: 1, Scale: -0.1}); err == nil {
		t.Fatal("negative scale accepted")
	}
}

// TestFleetCancellation: a canceled context aborts the run with the
// context error rather than completing.
func TestFleetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testConfig(2, false)); err == nil {
		t.Fatal("canceled run completed")
	}
}
