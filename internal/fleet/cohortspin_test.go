package fleet

import (
	"context"
	"math/rand"
	"testing"
)

// TestFleetCohortSpinInvariant: neither cohort-shared spins nor
// phase-keyed tapes may change a byte of the report versus the scalar
// path, alone or combined with the fuse/vector/batch knobs. Shared
// spins only reuse a cached bound (membership is re-proved per spin and
// every applied iteration's end clock comes from the scalar float-add
// sequence) and phase keys are cache discriminators whose evidence is
// re-verified live, so the report must be invariant — this is the
// empirical check across the full knob cross, per DESIGN.md §10
// stage 4.
func TestFleetCohortSpinInvariant(t *testing.T) {
	scalar := testConfig(2, false)
	scalar.Batch = -1
	scalar.NoFuse = true
	wantCSV, wantJSON := renderBoth(t, scalar)
	check := func(cfg Config) {
		t.Helper()
		csv, js := renderBoth(t, cfg)
		if csv != wantCSV {
			t.Fatalf("Batch=%d NoVector=%v NoFuse=%v NoCohortSpin=%v NoPhaseKeys=%v changed the CSV report vs scalar:\n--- scalar ---\n%s--- got ---\n%s",
				cfg.Batch, cfg.NoVector, cfg.NoFuse, cfg.NoCohortSpin, cfg.NoPhaseKeys, wantCSV, csv)
		}
		if js != wantJSON {
			t.Fatalf("Batch=%d NoVector=%v NoFuse=%v NoCohortSpin=%v NoPhaseKeys=%v changed the JSON report vs scalar",
				cfg.Batch, cfg.NoVector, cfg.NoFuse, cfg.NoCohortSpin, cfg.NoPhaseKeys)
		}
	}
	// Full four-knob cross at unlimited width; the degenerate width-1
	// cross covers the new knobs with fuse and the cursor engaged (the
	// fuse×vector×width interactions alone are TestFleetVectorInvariant's
	// job).
	for mask := 0; mask < 16; mask++ {
		cfg := testConfig(2, false)
		cfg.Batch = 0
		cfg.NoCohortSpin = mask&1 != 0
		cfg.NoPhaseKeys = mask&2 != 0
		cfg.NoFuse = mask&4 != 0
		cfg.NoVector = mask&8 != 0
		check(cfg)
	}
	for mask := 0; mask < 4; mask++ {
		cfg := testConfig(2, false)
		cfg.Batch = 1
		cfg.NoCohortSpin = mask&1 != 0
		cfg.NoPhaseKeys = mask&2 != 0
		check(cfg)
	}
}

// TestFleetPhaseKeyProperty: randomized specs with the stage-4 knobs
// drawn at random alongside the knobs most likely to interact with them
// (batch width, cursor, parallelism). The cohort grid always contains
// PWM and blackout scenarios, so every trial exercises finite-horizon
// recording; the scalar report is the oracle.
func TestFleetPhaseKeyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		spec := Config{
			N:     1 + rng.Intn(96),
			Seed:  rng.Int63(),
			Scale: 0.01 + 0.05*rng.Float64(),
		}
		scalar := spec
		scalar.Batch = -1
		scalar.Jobs = 1
		scalar.NoFuse = true
		wantCSV, wantJSON := renderBoth(t, scalar)

		cfg := spec
		cfg.Batch = []int{0, 1, 1 + rng.Intn(64)}[rng.Intn(3)]
		cfg.Jobs = 1 + rng.Intn(4)
		cfg.NoVector = rng.Intn(2) == 0
		cfg.NoCohortSpin = rng.Intn(2) == 0
		cfg.NoPhaseKeys = rng.Intn(2) == 0
		csv, js := renderBoth(t, cfg)
		if csv != wantCSV {
			t.Fatalf("trial %d (%+v vs scalar %+v): CSV differs:\n--- scalar ---\n%s--- got ---\n%s",
				trial, cfg, scalar, wantCSV, csv)
		}
		if js != wantJSON {
			t.Fatalf("trial %d (%+v): JSON differs", trial, cfg)
		}
	}
}

// TestFleetPWMCohortsFuse pins the perf claim behind phase keys: PWM
// cohorts — whose charges all run under finite constancy horizons and
// therefore never fused before stage 4 — must see phase-keyed replays,
// and the fleet must share spin plans across cohort members.
func TestFleetPWMCohortsFuse(t *testing.T) {
	cfg := Config{N: 768, Seed: 1, Jobs: 2, Scale: 0.05}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid := job.Cohorts()
	if len(res.CohortFuse) != len(grid) {
		t.Fatalf("CohortFuse has %d entries, want %d", len(res.CohortFuse), len(grid))
	}
	var pwmReplays, pwmPhaseHits uint64
	for i, c := range grid {
		if c.Scenario == PWM {
			pwmReplays += res.CohortFuse[i].Replays
			pwmPhaseHits += res.CohortFuse[i].PhaseHits
		}
	}
	if pwmReplays == 0 {
		t.Fatal("PWM cohorts fused no steps — phase-keyed tapes are not engaging")
	}
	if pwmPhaseHits == 0 {
		t.Fatal("PWM cohorts had no phase-keyed replays")
	}
	if res.Fuse.Spins == 0 || res.Fuse.SpinShared == 0 {
		t.Fatalf("no shared spins across the fleet (spins=%d shared=%d)",
			res.Fuse.Spins, res.Fuse.SpinShared)
	}
}
