// Package fleet runs large populations of independent Capybara device
// lifecycles — heterogeneous application/variant/environment cohorts,
// one seeded schedule per device — and reports fleet-level statistics
// without retaining per-device state.
//
// Three performance layers keep per-device cost at simulation, not
// construction or retention:
//
//   - charge-solve memoization: each worker owns a power.SegmentCache
//     (recycled through a sync.Pool) shared by every device it
//     simulates, so the periodic charge segments a cohort revisits are
//     solved once and replayed bit-identically;
//   - shared immutable artifacts: cohort environment traces are built
//     once and shared by every device in the cohort (harvest.Modulated
//     wraps the built source without copying it), and the storage
//     technology catalog is already interned package-level state;
//   - streaming aggregation: per-device observables fold into
//     constant-size per-cohort accumulators (metrics.Running, mergeable
//     metrics.Histogram, integer totals) per chunk, and chunks fold in
//     index order — memory is O(workers + cohorts), not O(devices).
//
// Execution decomposes into fixed-size device-index chunks behind the
// Job/RunChunk/Fold API. Run drives the chunks through an in-process
// worker pool; internal/shard drives the identical chunks across
// worker processes over TCP. Either way the partials fold in chunk
// order, so the report is a pure function of the Spec.
//
// Determinism: device d derives everything random from runner.RNG(seed,
// d) and chunk boundaries are a fixed size independent of the worker
// count, so the folded report is byte-identical at any Jobs — or at any
// shard topology or failure schedule. Memo caches cannot break this —
// hits are bit-identical to direct solves — but their hit/miss counters
// do depend on how chunks land on workers, so cache stats are reported
// as diagnostics, never in the Report.
package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"capybara/internal/apps"
	"capybara/internal/core"
	"capybara/internal/env"
	"capybara/internal/harvest"
	"capybara/internal/metrics"
	"capybara/internal/power"
	"capybara/internal/runner"
	"capybara/internal/sim"
	"capybara/internal/task"
	"capybara/internal/units"
)

// Scenario selects a cohort's harvesting environment, applied on top of
// the application's paper-default source.
type Scenario int

const (
	// Steady leaves the application's source as built.
	Steady Scenario = iota
	// PWM gates the source by a duty-cycled square wave (dimmed-bulb
	// harvesting, the paper's §6.2 TA setup taken literally).
	PWM
	// Blackout injects harvester outage windows (§5.2's adversarial
	// input timing).
	Blackout

	numScenarios
)

func (s Scenario) String() string {
	switch s {
	case Steady:
		return "steady"
	case PWM:
		return "pwm"
	default:
		return "blackout"
	}
}

// Cohort is one cell of the fleet's population grid: an application,
// a power-system variant, and a harvesting scenario. Device d belongs
// to cohort d mod len(cohorts).
type Cohort struct {
	App      string
	Variant  core.Variant
	Scenario Scenario
	// trace is the cohort's shared environment modulation (nil for
	// Steady): one immutable value reused by every device in the cohort.
	trace harvest.Trace
}

func (c Cohort) String() string {
	return fmt.Sprintf("%s/%s/%s", c.App, c.Variant, c.Scenario)
}

// Config parameterizes a fleet run.
type Config struct {
	// N is the number of devices.
	N int
	// Seed derives every device's schedule and environment.
	Seed int64
	// Jobs is the worker count (<= 0 means GOMAXPROCS, 1 is serial).
	// The report is byte-identical at any value.
	Jobs int
	// Scale scales each application's event count in (0, 1]; 0 means
	// 1.0. Smaller scales shorten every lifecycle proportionally.
	Scale float64
	// NoMemo disables charge-solve memoization (results are identical
	// either way; this is a perf A/B knob).
	NoMemo bool
	// NoRecycle builds every device fresh the pre-fleet way — no scratch
	// recycling, no worker-shared memo cache; each instance gets its own
	// default cache, exactly as a plain spec.Build loop would. Results
	// are identical either way; with Jobs=1 this is the single-device-
	// loop baseline BenchmarkFleet's speedup is measured against.
	NoRecycle bool
	// CacheSize bounds each worker's per-cohort memo caches (0 =
	// default).
	CacheSize int
	// Batch controls the batch execution path — the per-cohort device-op
	// replay cache (sim.OpCache) that advances state-converged devices
	// in lockstep through shared analytic segments:
	//
	//	 <0  disabled: every device runs the scalar path;
	//	  0  enabled with unlimited batch width (the default);
	//	>=1  enabled with the batch width capped at Batch devices per
	//	     recorded solve (1 never replays — behaviorally scalar).
	//
	// Replays are byte-identical to scalar solves for everything the
	// report contains, so the report is the same at any value; this is
	// a perf/debug knob, excluded from the Spec like the other
	// execution knobs. NoRecycle implies the scalar path (it builds
	// every device without worker scratch, which is where the caches
	// live).
	Batch int
	// NoVector disables the batch path's lockstep cursor — the
	// vectorized stepping that certifies a replay against the previous
	// operation's recorded post-state instead of serializing the device
	// state and probing the key index. Replays are byte-identical with
	// the cursor on or off (it only short-circuits the lookup), so this
	// is a perf A/B knob, excluded from the Spec like the others.
	NoVector bool
	// NoFuse disables fused task-engine stepping — the per-cohort
	// task.StepFuser that records a whole engine step (task transition,
	// RNG draw, event bookkeeping, clock advance) once and replays it
	// across lockstep devices. Fused steps are byte-identical to scalar
	// ones for every report-visible quantity, so this too is a perf A/B
	// knob, excluded from the Spec. NoRecycle implies no fusion (the
	// fusers live in worker scratch). Unlike Batch, fusion does not
	// depend on the op-cache path being on.
	NoFuse bool
	// NoCohortSpin disables cohort-shared fixed-point spins — the
	// stage-4 path where a selfFix template's spin bound (ULP regime +
	// live constancy span + quiet bound) is computed once, cached on the
	// template, and reused by every cohort member, with sample-free
	// iterations applied as one span assignment instead of per-entry
	// adds. Spins are byte-identical with sharing on or off (an
	// iteration is applied only when its predicted end — the exact
	// float-add sequence of the scalar path — stays inside the bound),
	// so this is a perf A/B knob, excluded from the Spec.
	NoCohortSpin bool
	// NoPhaseKeys disables phase-keyed tapes and op-cache entries — the
	// stage-4 extension that lets charges under *finite* constancy
	// horizons (steady PWM, blackout, modulated sources) record and
	// replay, discriminated by the source's phase regime
	// (harvest.PhaseKey). Keys are cache discriminators, never evidence:
	// duration coverage is re-proved live on every replay, so the report
	// is byte-identical with keys on or off. Perf A/B knob, excluded
	// from the Spec.
	NoPhaseKeys bool
	// BypassAfter/BypassBelow tune the op-cache probation heuristic:
	// after BypassAfter calls (0 = the built-in 2^15 default), a cohort
	// whose replay rate is below BypassBelow (0 = the built-in 60%)
	// stops paying lookup overhead and runs scalar. Purely an execution
	// heuristic — the report is byte-identical at any setting.
	BypassAfter uint64
	BypassBelow float64
	// ChunkSize is the number of consecutive devices folded per
	// aggregation chunk (0 = 64). It must not vary with Jobs — chunk
	// boundaries define the fold order the determinism guarantee
	// depends on.
	ChunkSize int
}

const defaultChunk = 64

// latencyEdges bins event-to-report latencies for the fleet histogram.
var latencyEdges = []units.Seconds{1, 5, 10, 30, 60, 120}

// CohortAccum is one cohort's device aggregates. All fields fold
// associatively in fixed device order, so the totals are independent of
// the worker count — and every field is exported and value-typed so
// partials serialize for the shard wire protocol.
type CohortAccum struct {
	Devices int
	// Events and outcome totals are integer-exact.
	Events        int
	Correct       int
	Misclassified int
	Missed        int
	// Accuracy accumulates per-device fraction-correct.
	Accuracy metrics.Running
	// Latency accumulates every reported event's latency (seconds);
	// LatencyHist bins the same stream.
	Latency     metrics.Running
	LatencyHist metrics.Histogram
	// Lifecycle counters summed over devices.
	Boots      int
	Brownouts  int
	Reconfigs  int
	Precharges int
	TimeOn     units.Seconds
	TimeOff    units.Seconds
}

// Merge folds o into c. Exported because the fleet service merges
// checkpointed partials into progress snapshots; Fold remains the only
// canonical-report path (fixed chunk-index order).
func (c *CohortAccum) Merge(o *CohortAccum) error {
	c.Devices += o.Devices
	c.Events += o.Events
	c.Correct += o.Correct
	c.Misclassified += o.Misclassified
	c.Missed += o.Missed
	c.Accuracy.Merge(o.Accuracy)
	c.Latency.Merge(o.Latency)
	if err := c.LatencyHist.Merge(&o.LatencyHist); err != nil {
		return err
	}
	c.Boots += o.Boots
	c.Brownouts += o.Brownouts
	c.Reconfigs += o.Reconfigs
	c.Precharges += o.Precharges
	c.TimeOn += o.TimeOn
	c.TimeOff += o.TimeOff
	return nil
}

// CohortStats pairs a cohort's identity with its folded aggregates.
type CohortStats struct {
	Cohort Cohort
	CohortAccum
}

func (c *CohortStats) merge(o *CohortStats) error {
	return c.CohortAccum.Merge(&o.CohortAccum)
}

// Result is a completed fleet run.
type Result struct {
	Config  Config
	Cohorts []CohortStats // in cohort-grid order; the canonical output
	// Diagnostics — excluded from the canonical report because they
	// depend on wall clock and on how chunks land on workers.
	Elapsed    time.Duration
	DevicesSec float64
	Cache      power.CacheStats
	Batch      sim.OpCacheStats
	Fuse       task.FuseStats
	// CohortCache/CohortBatch/CohortFuse break the engine diagnostics
	// down per cohort (grid order), so divergence-heavy cohorts are
	// visible. Nil when the corresponding layer is off.
	CohortCache []power.CacheStats
	CohortBatch []sim.OpCacheStats
	CohortFuse  []task.FuseStats
	Workers     int
}

// cohortGrid builds the population grid: every application × variant ×
// scenario, with the scenario traces derived from the seed so the whole
// grid is a function of Config alone.
func cohortGrid(seed int64) ([]Cohort, error) {
	var grid []Cohort
	idx := 0
	for _, name := range apps.SpecNames() {
		if _, err := apps.SpecByName(name); err != nil {
			return nil, err
		}
		for _, v := range []core.Variant{core.Continuous, core.Fixed, core.CapyR, core.CapyP} {
			for s := Scenario(0); s < numScenarios; s++ {
				c := Cohort{App: name, Variant: v, Scenario: s}
				// Scenario parameters are drawn per cohort, not per
				// device: the trace is a shared immutable artifact, and
				// devices of a cohort revisiting the same source levels is
				// what makes the per-worker memo caches pay.
				rng := runner.RNG(seed^0x5ca1ab1e, idx)
				switch s {
				case PWM:
					duty := 0.3 + 0.4*rng.Float64()
					period := units.Seconds(4 + 8*rng.Float64())
					c.trace = harvest.PWMTrace(duty, period)
				case Blackout:
					var windows [][2]units.Seconds
					t := units.Seconds(0)
					for len(windows) < 8 {
						t += units.Seconds(30 + 120*rng.Float64())
						dur := units.Seconds(5 + 25*rng.Float64())
						windows = append(windows, [2]units.Seconds{t, dur})
						t += dur
					}
					c.trace = harvest.BlackoutTrace(harvest.ConstantTrace(1), windows...)
				}
				grid = append(grid, c)
				idx++
			}
		}
	}
	return grid, nil
}

// Run executes the fleet in-process and folds the report: chunks fan
// out across a runner pool and fold in index order. internal/shard runs
// the identical chunk decomposition across worker processes.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	job, err := NewJob(cfg)
	if err != nil {
		return nil, err
	}
	workers := cfg.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Per-worker scratch — recorder, latency buffer, and memo cache —
	// recycled across chunks through a sync.Pool. Scratch returned dirty
	// is fine: simulate Resets the state containers before each device,
	// and stale memo entries can only produce bit-identical replays,
	// never wrong results.
	scratches := sync.Pool{New: func() any { return job.NewScratch() }}

	start := time.Now()
	folds, err := runner.Map(ctx, cfg.Jobs, job.NumChunks(), func(ctx context.Context, ci int) (*ChunkPartial, error) {
		ws := scratches.Get().(*Scratch)
		defer scratches.Put(ws)
		return job.RunChunk(ctx, ci, ws)
	})
	if err != nil {
		return nil, err
	}

	res, err := job.Fold(folds)
	if err != nil {
		return nil, err
	}
	res.Workers = workers
	res.Elapsed = time.Since(start)
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.DevicesSec = float64(cfg.N) / secs
	}
	return res, nil
}

// simulate runs device d's lifecycle and folds its observables into the
// chunk partial. Nothing of the device survives the call — its state
// containers live in ws and are recycled for the next device.
func (j *Job) simulate(d int, ws *Scratch, cp *ChunkPartial) error {
	ci := d % len(j.grid)
	cohort := j.grid[ci]
	spec, err := apps.SpecByName(cohort.App)
	if err != nil {
		return err
	}
	n := int(float64(spec.Events) * j.scale)
	if n < 1 {
		n = 1
	}
	rng := runner.RNG(j.cfg.Seed, d)
	sched := env.Poisson(rng, n, spec.Mean, spec.Window)
	var scr *apps.Scratch
	if !j.cfg.NoRecycle {
		ws.scr.Reset()
		// Caches are per cohort: within a cohort devices share banks,
		// boosters, and sources, so their solves actually recur; split
		// caches also give the per-cohort diagnostics for free.
		ws.scr.Memo = ws.memoFor(j, ci)
		if ops := ws.opsFor(j, ci); ops != nil {
			ws.scr.Ops = ops
			// A new device's first call is never a split/merge against
			// the previous device's stream.
			ops.BeginDevice()
		} else {
			ws.scr.Ops = nil
		}
		if fuse := ws.fuseFor(j, ci); fuse != nil {
			ws.scr.Fuse = fuse
			fuse.BeginDevice()
		} else {
			ws.scr.Fuse = nil
		}
		scr = &ws.scr
	}
	run, err := spec.Build(cohort.Variant, sched, nil, scr)
	if err != nil {
		return err
	}
	// The cohort scenario modulates the built source. The swap is sound
	// mid-construction — the device has not started running.
	if cohort.trace != nil {
		run.Inst.Dev.Sys.Source = harvest.Modulated{
			Source: run.Inst.Dev.Sys.Source,
			Trace:  cohort.trace,
		}
	}
	if err := run.Execute(); err != nil {
		return err
	}

	agg := &cp.Cohorts[ci]
	if len(agg.LatencyHist.Edges) == 0 {
		agg.LatencyHist.Edges = latencyEdges
	}
	agg.Devices++
	acc := run.Accuracy()
	agg.Events += acc.Total
	agg.Correct += acc.Correct
	agg.Misclassified += acc.Misclassified
	agg.Missed += acc.Missed
	agg.Accuracy.Add(acc.FractionCorrect())
	ws.lat = run.Rec.AppendLatencies(ws.lat[:0])
	for _, lat := range ws.lat {
		agg.Latency.Add(float64(lat))
		agg.LatencyHist.Add(lat)
	}
	st := run.Inst.Dev.Stats
	agg.Boots += st.Boots
	agg.Brownouts += st.Brownouts
	agg.TimeOn += st.TimeOn
	agg.TimeOff += st.TimeOff
	agg.Reconfigs += run.Inst.Runtime.Reconfigs
	agg.Precharges += run.Inst.Runtime.Precharges
	return nil
}
