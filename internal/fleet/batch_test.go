package fleet

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// renderBoth runs cfg and returns the canonical CSV and JSON bytes.
func renderBoth(t testing.TB, cfg Config) (string, string) {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var csv, js bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return csv.String(), js.String()
}

// TestFleetBatchInvariant: the batch execution path must not change a
// byte of the report versus the scalar path, at width 1 (degenerate
// batches), small caps that force constant splitting, and unlimited
// width. This is the engine's soundness contract — replayed operations
// reproduce the exact float trajectory of the solves they skip.
func TestFleetBatchInvariant(t *testing.T) {
	scalar := testConfig(2, false)
	scalar.Batch = -1
	wantCSV, wantJSON := renderBoth(t, scalar)
	for _, width := range []int{1, 2, 7, 0} {
		cfg := testConfig(2, false)
		cfg.Batch = width
		csv, js := renderBoth(t, cfg)
		if csv != wantCSV {
			t.Fatalf("batch width %d changed the CSV report:\n--- scalar ---\n%s--- batch ---\n%s",
				width, wantCSV, csv)
		}
		if js != wantJSON {
			t.Fatalf("batch width %d changed the JSON report", width)
		}
	}
}

// TestFleetVectorInvariant: neither the lockstep cursor (vectorized
// stepping) nor fused task-engine stepping may change a byte of the
// report versus the scalar path, alone or combined, at any batch
// width. The cursor replays cache entries via memoized chain edges and
// the fuser replays whole engine steps from recorded effect tapes, so
// their soundness rests on the evidence arguments in DESIGN.md §10 —
// this test is the empirical check, across degenerate width 1, a small
// cap that forces splits, and unlimited width, at every knob mix.
func TestFleetVectorInvariant(t *testing.T) {
	scalar := testConfig(2, false)
	scalar.Batch = -1
	scalar.NoFuse = true
	wantCSV, wantJSON := renderBoth(t, scalar)
	for _, width := range []int{1, 7, 0} {
		for _, noVector := range []bool{false, true} {
			for _, noFuse := range []bool{false, true} {
				cfg := testConfig(2, false)
				cfg.Batch = width
				cfg.NoVector = noVector
				cfg.NoFuse = noFuse
				csv, js := renderBoth(t, cfg)
				if csv != wantCSV {
					t.Fatalf("width %d NoVector=%v NoFuse=%v changed the CSV report vs scalar:\n--- scalar ---\n%s--- got ---\n%s",
						width, noVector, noFuse, wantCSV, csv)
				}
				if js != wantJSON {
					t.Fatalf("width %d NoVector=%v NoFuse=%v changed the JSON report vs scalar",
						width, noVector, noFuse)
				}
			}
		}
	}
}

// TestFleetBatchProperty: randomized specs, seeds, and widths. For each
// random spec the scalar report is the oracle; the batch path at a
// random width cap (and the knobs most likely to interact with it —
// memo off, multiple workers) must reproduce it byte for byte.
func TestFleetBatchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		spec := Config{
			N:     1 + rng.Intn(96),
			Seed:  rng.Int63(),
			Scale: 0.01 + 0.05*rng.Float64(),
		}
		scalar := spec
		scalar.Batch = -1
		scalar.Jobs = 1
		scalar.NoFuse = true
		wantCSV, wantJSON := renderBoth(t, scalar)

		cfg := spec
		cfg.Batch = []int{0, 1, 1 + rng.Intn(64)}[rng.Intn(3)]
		cfg.Jobs = 1 + rng.Intn(4)
		cfg.NoMemo = rng.Intn(2) == 0
		cfg.NoVector = rng.Intn(2) == 0
		cfg.NoFuse = rng.Intn(2) == 0
		csv, js := renderBoth(t, cfg)
		if csv != wantCSV {
			t.Fatalf("trial %d (%+v vs scalar %+v): CSV differs:\n--- scalar ---\n%s--- batch ---\n%s",
				trial, cfg, scalar, wantCSV, csv)
		}
		if js != wantJSON {
			t.Fatalf("trial %d (%+v): JSON differs", trial, cfg)
		}
	}
}

// FuzzBatchSplit fuzzes the divergence-split machinery: the fuzzer
// picks the population, seed, event scale, and replay width cap, which
// together determine where device trajectories split from and re-merge
// into shared batches (width 1 and tiny caps force splits at every
// adversarial boundary). Any byte of report divergence from the scalar
// oracle is a crash. Scalar references are memoized per spec so the
// fuzzer spends its budget exploring widths, not re-solving oracles.
func FuzzBatchSplit(f *testing.F) {
	f.Add(int64(1), uint8(48), uint8(128), int16(1))
	f.Add(int64(2), uint8(96), uint8(40), int16(2))
	f.Add(int64(3), uint8(17), uint8(255), int16(0))
	f.Add(int64(-5), uint8(64), uint8(0), int16(1000))

	type specKey struct {
		n     int
		seed  int64
		scale float64
	}
	oracle := map[specKey][2]string{}
	f.Fuzz(func(t *testing.T, seed int64, nRaw, scaleRaw uint8, width int16) {
		key := specKey{
			n:    1 + int(nRaw)%96,
			seed: seed,
			// Quantized into [0.01, 0.05] — small enough to keep one
			// exec fast, coarse enough that specs recur and reuse the
			// memoized oracle.
			scale: 0.01 + 0.01*float64(scaleRaw%5),
		}
		want, ok := oracle[key]
		if !ok {
			scalar := Config{N: key.n, Seed: key.seed, Scale: key.scale, Jobs: 1, Batch: -1, NoFuse: true}
			csv, js := renderBoth(t, scalar)
			want = [2]string{csv, js}
			oracle[key] = want
		}
		cfg := Config{N: key.n, Seed: key.seed, Scale: key.scale, Jobs: 1}
		if width < 0 {
			width = -width
		}
		cfg.Batch = int(width) // 0 = unlimited, else the cap
		// The fused-stepping knob rides the existing inputs so the seed
		// corpus keeps exploring both sides of it.
		cfg.NoFuse = scaleRaw&1 == 1
		csv, js := renderBoth(t, cfg)
		if csv != want[0] {
			t.Fatalf("batch width %d diverged from scalar for %+v:\n--- scalar ---\n%s--- batch ---\n%s",
				cfg.Batch, key, want[0], csv)
		}
		if js != want[1] {
			t.Fatalf("batch width %d diverged from scalar (JSON) for %+v", cfg.Batch, key)
		}
	})
}
