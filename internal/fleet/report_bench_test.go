package fleet

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

var benchResult struct {
	once sync.Once
	res  *Result
}

// benchReportResult builds one small-but-real Result (every cohort
// populated) shared by the report benchmarks.
func benchReportResult(b *testing.B) *Result {
	benchResult.once.Do(func() {
		res, err := Run(context.Background(), Config{N: 96, Seed: 1, Jobs: 0, Scale: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		benchResult.res = res
	})
	return benchResult.res
}

// BenchmarkFleetReportCSV pins the report writer's allocation profile:
// one shared number buffer per report instead of per-cohort fmt
// allocations. On this container the fmt-based writer measured
// 104178 ns/op, 55906 B/op, 942 allocs/op; the buffer-reusing writer
// 17683 ns/op, 13688 B/op, 5 allocs/op (the report buffer plus the
// TOTAL fold's histogram) — ~5.9x faster, 188x fewer allocations.
func BenchmarkFleetReportCSV(b *testing.B) {
	res := benchReportResult(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := res.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetReportCSVOld is the pre-reuse writer (fmt.Fprintf of a
// per-cohort row struct with a fmt.Sprintf per float field), kept as
// the baseline the reuse claim is measured against.
func BenchmarkFleetReportCSVOld(b *testing.B) {
	res := benchReportResult(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := oldWriteCSV(res, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// oldWriteCSV reproduces the PR-4 writer byte for byte (see
// TestOldNewCSVIdentical) so the benchmark pair measures formatting
// strategy, not output differences.
func oldWriteCSV(r *Result, w io.Writer) error {
	f := func(x float64) string { return fmt.Sprintf("%.9g", x) }
	row := func(c *CohortStats) []any {
		onFrac := 0.0
		if tot := c.TimeOn + c.TimeOff; tot > 0 {
			onFrac = float64(c.TimeOn) / float64(tot)
		}
		return []any{
			c.Devices, c.Events, c.Correct, c.Misclassified, c.Missed,
			f(c.Accuracy.Mean), f(c.Accuracy.StdDev()), c.Latency.N,
			f(c.Latency.Mean), f(c.Latency.StdDev()), f(c.Latency.Max()),
			c.Boots, c.Brownouts, c.Reconfigs, c.Precharges, f(onFrac),
		}
	}
	var b strings.Builder
	b.WriteString(csvHeader)
	write := func(label, variant, scenario string, c *CohortStats) {
		args := append([]any{label, variant, scenario}, row(c)...)
		fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%d,%d,%d,%s,%s,%d,%s,%s,%s,%d,%d,%d,%d,%s\n", args...)
	}
	for i := range r.Cohorts {
		c := &r.Cohorts[i]
		if c.Devices == 0 {
			continue
		}
		write(c.Cohort.App, c.Cohort.Variant.String(), c.Cohort.Scenario.String(), c)
	}
	total := r.total()
	write("TOTAL", "-", "-", &total)
	_, err := io.WriteString(w, b.String())
	return err
}

// TestOldNewCSVIdentical guards the benchmark pair's premise — and, by
// proxy, that the reuse rewrite changed zero report bytes.
func TestOldNewCSVIdentical(t *testing.T) {
	res, err := Run(context.Background(), Config{N: 96, Seed: 3, Jobs: 2, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var oldOut, newOut strings.Builder
	if err := oldWriteCSV(res, &oldOut); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&newOut); err != nil {
		t.Fatal(err)
	}
	if oldOut.String() != newOut.String() {
		t.Fatalf("rewritten CSV writer changed the report:\n--- old ---\n%s--- new ---\n%s",
			oldOut.String(), newOut.String())
	}
}
