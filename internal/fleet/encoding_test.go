package fleet

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// encodingTestJob is small but covers every cohort at least once.
func encodingTestJob(t *testing.T) *Job {
	t.Helper()
	job, err := NewJob(Config{N: 96, Seed: 11, Scale: 0.05, ChunkSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// TestPartialRoundTripBitIdentical: decode(encode(cp)) folds to the
// exact bytes the in-memory partial folds to — the property the
// checkpoint store and the shard protocol both rest on. Re-encoding the
// decoded partial must also reproduce the original stream, which
// catches any field gob silently drops or perturbs.
func TestPartialRoundTripBitIdentical(t *testing.T) {
	job := encodingTestJob(t)
	n := job.NumChunks()
	direct := make([]*ChunkPartial, n)
	rt := make([]*ChunkPartial, n)
	for ci := 0; ci < n; ci++ {
		cp, err := job.RunChunk(context.Background(), ci, nil)
		if err != nil {
			t.Fatal(err)
		}
		direct[ci] = cp

		var buf bytes.Buffer
		if err := EncodePartial(&buf, cp); err != nil {
			t.Fatal(err)
		}
		enc := append([]byte(nil), buf.Bytes()...)
		dec, err := DecodePartial(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var buf2 bytes.Buffer
		if err := EncodePartial(&buf2, dec); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, buf2.Bytes()) {
			t.Fatalf("chunk %d: re-encoded stream differs from original", ci)
		}
		rt[ci] = dec
	}

	want := renderCSV(t, job, direct)
	got := renderCSV(t, job, rt)
	if want != got {
		t.Fatalf("report from round-tripped partials differs:\n--- direct ---\n%s--- roundtrip ---\n%s", want, got)
	}
}

func renderCSV(t *testing.T, job *Job, partials []*ChunkPartial) string {
	t.Helper()
	res, err := job.Fold(partials)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestDecodePartialGarbage: corrupt streams fail with an error, never a
// panic, and never decode to a partial.
func TestDecodePartialGarbage(t *testing.T) {
	job := encodingTestJob(t)
	cp, err := job.RunChunk(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePartial(&buf, cp); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"garbage":   {0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4},
		"truncated": valid[:len(valid)/2],
	}
	for name, data := range cases {
		if _, err := DecodePartial(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
	}

	if err := EncodePartial(&bytes.Buffer{}, nil); err == nil || !strings.Contains(err.Error(), "nil") {
		t.Fatalf("nil partial accepted: %v", err)
	}
}
