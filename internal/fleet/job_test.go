package fleet

import (
	"bytes"
	"context"
	"encoding/gob"
	"testing"
)

func mustJob(t *testing.T, cfg Config) *Job {
	t.Helper()
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// TestJobSpecHash pins the fingerprint contract: stable across
// rebuilds, sensitive to every canonical field, and blind to the
// execution knobs (which shard workers choose locally).
func TestJobSpecHash(t *testing.T) {
	base := Config{N: 96, Seed: 1, Scale: 0.05, ChunkSize: 8}
	h := mustJob(t, base).SpecHash()
	if h == "" {
		t.Fatal("empty spec hash")
	}
	if got := mustJob(t, base).SpecHash(); got != h {
		t.Fatalf("hash not stable: %s vs %s", h, got)
	}

	canonical := []Config{
		{N: 97, Seed: 1, Scale: 0.05, ChunkSize: 8},
		{N: 96, Seed: 2, Scale: 0.05, ChunkSize: 8},
		{N: 96, Seed: 1, Scale: 0.06, ChunkSize: 8},
		{N: 96, Seed: 1, Scale: 0.05, ChunkSize: 16},
	}
	for _, cfg := range canonical {
		if mustJob(t, cfg).SpecHash() == h {
			t.Fatalf("hash ignored canonical change: %+v", cfg)
		}
	}

	knobs := []Config{
		{N: 96, Seed: 1, Scale: 0.05, ChunkSize: 8, Jobs: 7},
		{N: 96, Seed: 1, Scale: 0.05, ChunkSize: 8, NoMemo: true},
		{N: 96, Seed: 1, Scale: 0.05, ChunkSize: 8, NoRecycle: true},
		{N: 96, Seed: 1, Scale: 0.05, ChunkSize: 8, CacheSize: 9},
	}
	for _, cfg := range knobs {
		if mustJob(t, cfg).SpecHash() != h {
			t.Fatalf("hash depends on an execution knob: %+v", cfg)
		}
	}

	// Spec round trip (what the wire ships) rebuilds the same hash.
	spec := mustJob(t, base).Spec()
	rebuilt := mustJob(t, spec.Exec(ExecOptions{Jobs: 3, NoMemo: true, CacheSize: 5, NoRecycle: true, Batch: -1, NoVector: true}))
	if rebuilt.SpecHash() != h {
		t.Fatal("Spec round trip changed the hash")
	}
}

// TestJobChunks pins the decomposition arithmetic.
func TestJobChunks(t *testing.T) {
	job := mustJob(t, Config{N: 100, Seed: 1, ChunkSize: 8})
	if got := job.NumChunks(); got != 13 {
		t.Fatalf("NumChunks = %d, want 13", got)
	}
	lo, hi := job.ChunkBounds(0)
	if lo != 0 || hi != 8 {
		t.Fatalf("chunk 0 = [%d, %d)", lo, hi)
	}
	lo, hi = job.ChunkBounds(12)
	if lo != 96 || hi != 100 {
		t.Fatalf("last chunk = [%d, %d), want [96, 100)", lo, hi)
	}
	if got := mustJob(t, Config{N: 5, Seed: 1}).NumChunks(); got != 1 {
		t.Fatalf("small fleet has %d chunks, want 1", got)
	}
}

// TestRunChunkFoldMatchesRun: driving the chunk API by hand — with the
// partials gob round-tripped, as the shard protocol does — folds to the
// same report as Run.
func TestRunChunkFoldMatchesRun(t *testing.T) {
	cfg := Config{N: 96, Seed: 1, Jobs: 2, Scale: 0.05, ChunkSize: 16}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	job := mustJob(t, cfg)
	ws := job.NewScratch()
	partials := make([]*ChunkPartial, job.NumChunks())
	for ci := range partials {
		cp, err := job.RunChunk(context.Background(), ci, ws)
		if err != nil {
			t.Fatal(err)
		}
		// Round trip through gob exactly as the wire does.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
			t.Fatal(err)
		}
		var decoded ChunkPartial
		if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
			t.Fatal(err)
		}
		partials[ci] = &decoded
	}
	folded, err := job.Fold(partials)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := folded.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("hand-driven chunk fold differs from Run:\n--- Run ---\n%s--- chunks ---\n%s",
			want.String(), got.String())
	}
}

// TestRunChunkValidation covers the chunk API's error paths.
func TestRunChunkValidation(t *testing.T) {
	job := mustJob(t, Config{N: 16, Seed: 1, Scale: 0.05, ChunkSize: 8})
	if _, err := job.RunChunk(context.Background(), -1, nil); err == nil {
		t.Fatal("negative chunk accepted")
	}
	if _, err := job.RunChunk(context.Background(), 2, nil); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
	if _, err := job.Fold(make([]*ChunkPartial, 1)); err == nil {
		t.Fatal("short partial slice accepted")
	}
	cp, err := job.RunChunk(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Fold([]*ChunkPartial{cp, nil}); err == nil {
		t.Fatal("nil partial accepted")
	}
	if _, err := job.Fold([]*ChunkPartial{cp, cp}); err == nil {
		t.Fatal("mislabeled partial accepted")
	}
}
