package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"capybara/internal/apps"
	"capybara/internal/power"
	"capybara/internal/sim"
	"capybara/internal/task"
	"capybara/internal/units"
)

// A Job is a resolved fleet run: the config with defaults applied, the
// cohort grid, and the fixed chunk decomposition. It is the unit shared
// between the in-process engine (Run) and the distributed shard
// protocol (internal/shard): a coordinator and its workers each build a
// Job from the same Spec, agree on SpecHash before any chunk is leased,
// and then RunChunk/Fold are the only execution primitives either side
// needs. Chunk boundaries depend only on the Spec — never on worker
// count or topology — which is what makes the folded report
// byte-identical however the chunks are distributed.
type Job struct {
	cfg   Config
	scale float64
	chunk int
	grid  []Cohort
	hash  string
}

// Spec is the wire-shippable subset of Config: exactly the fields the
// canonical report is a function of. The execution knobs (Jobs, NoMemo,
// NoRecycle, CacheSize, Batch, NoVector) are deliberately absent — they
// never change a byte of the output, so each process in a sharded run
// picks its own.
type Spec struct {
	N         int
	Seed      int64
	Scale     float64
	ChunkSize int
}

// ExecOptions bundles the execution knobs a process chooses for itself
// when reconstructing a job from a Spec: parallelism, cache layers, and
// the batch/fused stepping paths. None of these change a byte of the
// report — that is exactly why they are not part of Spec.
type ExecOptions struct {
	Jobs         int
	NoMemo       bool
	CacheSize    int
	NoRecycle    bool
	Batch        int
	NoVector     bool
	NoFuse       bool
	NoCohortSpin bool
	NoPhaseKeys  bool
	BypassAfter  uint64
	BypassBelow  float64
}

// Exec builds a Config from a received Spec plus local execution
// options. Shard workers use it to reconstruct the coordinator's job
// with their own parallelism and cache settings.
func (s Spec) Exec(o ExecOptions) Config {
	return Config{
		N:            s.N,
		Seed:         s.Seed,
		Scale:        s.Scale,
		ChunkSize:    s.ChunkSize,
		Jobs:         o.Jobs,
		NoMemo:       o.NoMemo,
		CacheSize:    o.CacheSize,
		NoRecycle:    o.NoRecycle,
		Batch:        o.Batch,
		NoVector:     o.NoVector,
		NoFuse:       o.NoFuse,
		NoCohortSpin: o.NoCohortSpin,
		NoPhaseKeys:  o.NoPhaseKeys,
		BypassAfter:  o.BypassAfter,
		BypassBelow:  o.BypassBelow,
	}
}

// NewJob validates cfg, applies defaults, and builds the cohort grid.
func NewJob(cfg Config) (*Job, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("fleet: N must be positive, got %d", cfg.N)
	}
	scale := cfg.Scale
	if scale == 0 {
		scale = 1.0
	}
	if scale < 0 || scale > 1 {
		return nil, fmt.Errorf("fleet: bad scale %g", scale)
	}
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = defaultChunk
	}
	grid, err := cohortGrid(cfg.Seed)
	if err != nil {
		return nil, err
	}
	j := &Job{cfg: cfg, scale: scale, chunk: chunk, grid: grid}
	j.hash = j.specHash()
	return j, nil
}

// Config returns the job's configuration as given to NewJob.
func (j *Job) Config() Config { return j.cfg }

// Spec returns the canonical subset of the config, with defaults
// resolved, for shipping to shard workers.
func (j *Job) Spec() Spec {
	return Spec{N: j.cfg.N, Seed: j.cfg.Seed, Scale: j.scale, ChunkSize: j.chunk}
}

// NumChunks returns the number of fixed-size device chunks.
func (j *Job) NumChunks() int { return (j.cfg.N + j.chunk - 1) / j.chunk }

// Cohorts returns the job's cohort grid identities, in grid order (the
// order ChunkPartial.Cohorts and Result.Cohorts are indexed by). The
// returned slice is shared; callers must not mutate it.
func (j *Job) Cohorts() []Cohort { return j.grid }

// ChunkBounds returns chunk ci's device index range [lo, hi).
func (j *Job) ChunkBounds(ci int) (lo, hi int) {
	lo, hi = ci*j.chunk, (ci+1)*j.chunk
	if hi > j.cfg.N {
		hi = j.cfg.N
	}
	return lo, hi
}

// SpecHash fingerprints everything the report depends on: the resolved
// Spec plus the cohort grid this binary derives from it (applications,
// variants, scenarios, and samples of each scenario's environment
// trace). Two binaries that would simulate different populations — a
// changed app table, a reworked trace generator, a different grid order
// — produce different hashes, so a shard worker running a mismatched
// build is rejected before it is leased any work.
func (j *Job) SpecHash() string { return j.hash }

func (j *Job) specHash() string {
	h := sha256.New()
	buf := make([]byte, 0, 64)
	num := func(x float64) {
		buf = strconv.AppendFloat(buf[:0], x, 'g', -1, 64)
		buf = append(buf, '\n')
		h.Write(buf)
	}
	str := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{'\n'})
	}
	str("capyfleet-spec-v1")
	num(float64(j.cfg.N))
	num(float64(j.cfg.Seed))
	num(j.scale)
	num(float64(j.chunk))
	for _, e := range latencyEdges {
		num(float64(e))
	}
	num(float64(len(j.grid)))
	for _, c := range j.grid {
		str(c.App)
		str(c.Variant.String())
		str(c.Scenario.String())
		if c.trace != nil {
			// Sampling the trace at fixed instants captures the derived
			// scenario parameters (duty cycles, outage windows) without
			// needing the trace types to be serializable.
			for _, t := range []units.Seconds{0, 0.75, 3.5, 17.25, 61.5, 240.75} {
				num(c.trace.Level(t))
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Scratch is one worker's recycled simulation state: the application
// build scratch (recorder + caches), the latency staging buffer, and
// the per-cohort cache pools. Reusing one Scratch across many RunChunk
// calls is what makes per-device cost simulation-bound; it is sound
// because scratch contents never influence results (state containers
// are Reset per device; cache hits are bit-identical to recomputes).
type Scratch struct {
	scr apps.Scratch
	lat []units.Seconds
	// memo/ops hold one cache per cohort, allocated lazily the first
	// time a device of that cohort runs on this worker. Per-cohort
	// caches are what make the lookups pay (a cohort's devices share
	// hardware and source, so their solves actually recur) and what the
	// per-cohort diagnostics are cut from. A nil slice means that cache
	// layer is disabled for the job.
	memo []*power.SegmentCache
	ops  []*sim.OpCache
	fuse []*task.StepFuser
}

func (ws *Scratch) memoFor(j *Job, ci int) *power.SegmentCache {
	if ws.memo == nil {
		return nil
	}
	if ws.memo[ci] == nil {
		ws.memo[ci] = power.NewSegmentCache(j.cfg.CacheSize)
	}
	return ws.memo[ci]
}

func (ws *Scratch) opsFor(j *Job, ci int) *sim.OpCache {
	if ws.ops == nil {
		return nil
	}
	if ws.ops[ci] == nil {
		ws.ops[ci] = sim.NewOpCache(0, j.cfg.Batch)
		if j.cfg.NoVector {
			ws.ops[ci].DisableVector()
		}
		ws.ops[ci].SetPhaseKeys(!j.cfg.NoPhaseKeys)
		ws.ops[ci].SetProbation(j.cfg.BypassAfter, j.cfg.BypassBelow)
	}
	return ws.ops[ci]
}

func (ws *Scratch) fuseFor(j *Job, ci int) *task.StepFuser {
	if ws.fuse == nil {
		return nil
	}
	if ws.fuse[ci] == nil {
		ws.fuse[ci] = task.NewStepFuser()
		if j.cfg.NoCohortSpin {
			ws.fuse[ci].DisableCohortSpin()
		}
		if j.cfg.NoPhaseKeys {
			ws.fuse[ci].DisablePhaseKeys()
		}
	}
	return ws.fuse[ci]
}

// NewScratch builds a Scratch configured for this job: per-cohort memo
// caches unless the job disables memoization, and per-cohort op caches
// when the batch path is enabled (Batch >= 0).
func (j *Job) NewScratch() *Scratch {
	ws := &Scratch{}
	if j.cfg.NoRecycle {
		return ws
	}
	if !j.cfg.NoMemo {
		ws.memo = make([]*power.SegmentCache, len(j.grid))
	}
	if j.cfg.Batch >= 0 {
		ws.ops = make([]*sim.OpCache, len(j.grid))
	}
	if !j.cfg.NoFuse {
		ws.fuse = make([]*task.StepFuser, len(j.grid))
	}
	return ws
}

// ChunkPartial is one chunk's fold: per-cohort accumulators (indexed by
// cohort-grid position; untouched cohorts stay zero) plus the cache
// deltas observed while running the chunk (diagnostic only). Every
// field is exported and value-typed so partials round-trip through
// gob/JSON for the shard wire protocol.
type ChunkPartial struct {
	Chunk   int
	Cohorts []CohortAccum
	Cache   power.CacheStats
	// Memo/Ops/Fuse are the per-cohort engine-stat deltas for this chunk
	// (grid order); nil when the corresponding layer is off. Like the
	// cache stats they are execution diagnostics, excluded from the
	// canonical report and the spec hash.
	Memo []power.CacheStats
	Ops  []sim.OpCacheStats
	Fuse []task.FuseStats
}

// RunChunk simulates chunk ci's devices and folds them into a fresh
// partial. ws may be nil (a throwaway scratch is built); passing a
// reused Scratch amortizes recorder and memo-cache allocations across
// chunks. The partial is a pure function of (Spec, ci): any process
// running the same chunk of the same job produces bit-identical
// accumulators, which is the whole basis of the shard protocol's
// determinism and of its freedom to re-lease chunks after failures.
func (j *Job) RunChunk(ctx context.Context, ci int, ws *Scratch) (*ChunkPartial, error) {
	if ci < 0 || ci >= j.NumChunks() {
		return nil, fmt.Errorf("fleet: chunk %d out of range [0, %d)", ci, j.NumChunks())
	}
	if ws == nil {
		ws = j.NewScratch()
	}
	cp := &ChunkPartial{Chunk: ci, Cohorts: make([]CohortAccum, len(j.grid))}
	// Snapshot the recycled caches so the chunk reports deltas: caches
	// accumulate across chunks, and only deltas sum meaningfully. The
	// lookup totals are deterministic; the hit/miss split depends on
	// cache warmth, which is why all of this is diagnostic only.
	var memoBefore []power.CacheStats
	if ws.memo != nil {
		memoBefore = make([]power.CacheStats, len(ws.memo))
		for i, c := range ws.memo {
			if c != nil {
				memoBefore[i] = c.Stats()
			}
		}
	}
	var opsBefore []sim.OpCacheStats
	if ws.ops != nil {
		opsBefore = make([]sim.OpCacheStats, len(ws.ops))
		for i, c := range ws.ops {
			if c != nil {
				opsBefore[i] = c.Stats()
			}
		}
	}
	var fuseBefore []task.FuseStats
	if ws.fuse != nil {
		fuseBefore = make([]task.FuseStats, len(ws.fuse))
		for i, f := range ws.fuse {
			if f != nil {
				fuseBefore[i] = f.Stats()
			}
		}
	}
	lo, hi := j.ChunkBounds(ci)
	for d := lo; d < hi; d++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := j.simulate(d, ws, cp); err != nil {
			return nil, fmt.Errorf("fleet: device %d: %w", d, err)
		}
	}
	if ws.memo != nil {
		cp.Memo = make([]power.CacheStats, len(ws.memo))
		for i, c := range ws.memo {
			if c == nil {
				continue
			}
			after, b := c.Stats(), memoBefore[i]
			cp.Memo[i] = power.CacheStats{
				Hits:        after.Hits - b.Hits,
				Misses:      after.Misses - b.Misses,
				Uncacheable: after.Uncacheable - b.Uncacheable,
				Entries:     after.Entries,
			}
			cp.Cache.Add(cp.Memo[i])
		}
		// Worker-level Entries is a sum of per-cohort snapshots, not a
		// delta; Fold zeroes it, matching the pre-cohort behavior.
	}
	if ws.ops != nil {
		cp.Ops = make([]sim.OpCacheStats, len(ws.ops))
		for i, c := range ws.ops {
			if c == nil {
				continue
			}
			after, b := c.Stats(), opsBefore[i]
			d := sim.OpCacheStats{
				Hits:        after.Hits - b.Hits,
				Misses:      after.Misses - b.Misses,
				Uncacheable: after.Uncacheable - b.Uncacheable,
				Records:     after.Records - b.Records,
				Bypassed:    after.Bypassed - b.Bypassed,
				Splits:      after.Splits - b.Splits,
				Merges:      after.Merges - b.Merges,
				Vector:      after.Vector - b.Vector,
				Entries:     after.Entries,
			}
			cp.Ops[i] = d
		}
	}
	if ws.fuse != nil {
		cp.Fuse = make([]task.FuseStats, len(ws.fuse))
		for i, f := range ws.fuse {
			if f == nil {
				continue
			}
			after, b := f.Stats(), fuseBefore[i]
			cp.Fuse[i] = task.FuseStats{
				Steps:      after.Steps - b.Steps,
				Replays:    after.Replays - b.Replays,
				Hint:       after.Hint - b.Hint,
				Records:    after.Records - b.Records,
				Discards:   after.Discards - b.Discards,
				Bypassed:   after.Bypassed - b.Bypassed,
				Splits:     after.Splits - b.Splits,
				Merges:     after.Merges - b.Merges,
				Spins:      after.Spins - b.Spins,
				SpinShared: after.SpinShared - b.SpinShared,
				SpinIters:  after.SpinIters - b.SpinIters,
				PhaseKeyed: after.PhaseKeyed - b.PhaseKeyed,
				PhaseHits:  after.PhaseHits - b.PhaseHits,
			}
		}
	}
	return cp, nil
}

// Fold combines every chunk's partial, in chunk-index order, into the
// final Result. partials must have exactly NumChunks entries with entry
// i holding chunk i — the fixed fold order is what makes the report
// independent of which worker ran which chunk. The caller fills in the
// Result's wall-clock diagnostics (Elapsed, DevicesSec, Workers).
func (j *Job) Fold(partials []*ChunkPartial) (*Result, error) {
	if len(partials) != j.NumChunks() {
		return nil, fmt.Errorf("fleet: folding %d partials, want %d", len(partials), j.NumChunks())
	}
	res := &Result{Config: j.cfg, Cohorts: make([]CohortStats, len(j.grid))}
	for i := range j.grid {
		res.Cohorts[i].Cohort = j.grid[i]
	}
	for ci, cp := range partials {
		if cp == nil {
			return nil, fmt.Errorf("fleet: missing partial for chunk %d", ci)
		}
		if cp.Chunk != ci {
			return nil, fmt.Errorf("fleet: partial %d labeled chunk %d", ci, cp.Chunk)
		}
		if len(cp.Cohorts) != len(j.grid) {
			return nil, fmt.Errorf("fleet: chunk %d has %d cohorts, want %d", ci, len(cp.Cohorts), len(j.grid))
		}
		for i := range cp.Cohorts {
			if cp.Cohorts[i].Devices == 0 {
				continue
			}
			if err := res.Cohorts[i].CohortAccum.Merge(&cp.Cohorts[i]); err != nil {
				return nil, err
			}
		}
		cache := cp.Cache
		cache.Entries = 0 // per-chunk snapshots of recycled caches don't sum
		res.Cache.Add(cache)
		if len(cp.Memo) == len(j.grid) {
			if res.CohortCache == nil {
				res.CohortCache = make([]power.CacheStats, len(j.grid))
			}
			for i, m := range cp.Memo {
				m.Entries = 0
				res.CohortCache[i].Add(m)
			}
		}
		if len(cp.Ops) == len(j.grid) {
			if res.CohortBatch == nil {
				res.CohortBatch = make([]sim.OpCacheStats, len(j.grid))
			}
			for i, o := range cp.Ops {
				o.Entries = 0
				res.CohortBatch[i].Add(o)
				res.Batch.Add(o)
			}
		}
		if len(cp.Fuse) == len(j.grid) {
			if res.CohortFuse == nil {
				res.CohortFuse = make([]task.FuseStats, len(j.grid))
			}
			for i, f := range cp.Fuse {
				res.CohortFuse[i].Add(f)
				res.Fuse.Add(f)
			}
		}
	}
	return res, nil
}
