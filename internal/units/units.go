// Package units defines the physical quantities used throughout the
// Capybara simulation: voltage, current, capacitance, energy, power,
// resistance, and volume.
//
// Each quantity is a distinct float64 type so that the compiler catches
// dimension mistakes (passing a Power where an Energy is expected). SI
// base units are used internally: volts, amperes, farads, joules, watts,
// ohms, cubic millimetres, and seconds (as float64, see Seconds).
package units

import (
	"fmt"
	"math"
	"time"
)

// Voltage is an electric potential in volts.
type Voltage float64

// Current is an electric current in amperes.
type Current float64

// Capacitance is a capacitance in farads.
type Capacitance float64

// Energy is an energy in joules.
type Energy float64

// Power is a power in watts.
type Power float64

// Resistance is a resistance in ohms.
type Resistance float64

// Volume is a physical volume in cubic millimetres. Board-level
// provisioning in the paper (Fig. 4) is argued in mm³.
type Volume float64

// Area is a board area in square millimetres (§6.5 characterization).
type Area float64

// Seconds is a span of simulated time. The simulator uses float64
// seconds rather than time.Duration so that analytically computed spans
// (e.g. charge times) lose no precision and can exceed duration range.
type Seconds float64

// Convenience constructors for common magnitudes.
const (
	MicroFarad Capacitance = 1e-6
	MilliFarad Capacitance = 1e-3

	MilliVolt Voltage = 1e-3

	MicroAmp Current = 1e-6
	MilliAmp Current = 1e-3

	MicroJoule Energy = 1e-6
	MilliJoule Energy = 1e-3

	MicroWatt Power = 1e-6
	MilliWatt Power = 1e-3

	KiloOhm Resistance = 1e3

	Millisecond Seconds = 1e-3
	Minute      Seconds = 60
	Hour        Seconds = 3600
)

// StoredEnergy returns the energy held by capacitance c charged to v:
// E = ½CV².
func StoredEnergy(c Capacitance, v Voltage) Energy {
	return Energy(0.5 * float64(c) * float64(v) * float64(v))
}

// BandEnergy returns the energy extractable from capacitance c when it
// is discharged from vTop down to vBottom: E = ½C(Vtop² − Vbottom²).
// This is the paper's §5.2 storage equation. If vBottom ≥ vTop the band
// holds no energy and zero is returned.
func BandEnergy(c Capacitance, vTop, vBottom Voltage) Energy {
	if vBottom >= vTop {
		return 0
	}
	return StoredEnergy(c, vTop) - StoredEnergy(c, vBottom)
}

// VoltageForEnergy returns the voltage to which capacitance c must be
// charged to store energy e: V = √(2E/C). It returns 0 for non-positive
// capacitance or energy.
func VoltageForEnergy(c Capacitance, e Energy) Voltage {
	if c <= 0 || e <= 0 {
		return 0
	}
	return Voltage(math.Sqrt(2 * float64(e) / float64(c)))
}

// ChargeVoltageAfter returns the voltage on capacitance c after
// charging it from v0 at constant power p for dt seconds:
// V(t) = √(V0² + 2Pt/C). Constant-power charging is what a boost
// converter with maximum-power-point tracking delivers.
func ChargeVoltageAfter(c Capacitance, v0 Voltage, p Power, dt Seconds) Voltage {
	if c <= 0 {
		return v0
	}
	vv := float64(v0)*float64(v0) + 2*float64(p)*float64(dt)/float64(c)
	if vv <= 0 {
		return 0
	}
	return Voltage(math.Sqrt(vv))
}

// TimeToCharge returns the time required to charge capacitance c from
// v0 to v1 at constant power p. It returns 0 when v1 ≤ v0 and +Inf when
// p ≤ 0 (or c ≤ 0) and charging is actually required.
func TimeToCharge(c Capacitance, v0, v1 Voltage, p Power) Seconds {
	if v1 <= v0 {
		return 0
	}
	if p <= 0 || c <= 0 {
		return Seconds(math.Inf(1))
	}
	de := BandEnergy(c, v1, v0)
	return Seconds(float64(de) / float64(p))
}

// DischargeVoltageAfter returns the voltage on capacitance c after a
// load draws constant power p from it for dt seconds, starting at v0.
// The voltage floor is clamped at zero.
func DischargeVoltageAfter(c Capacitance, v0 Voltage, p Power, dt Seconds) Voltage {
	if c <= 0 {
		return 0
	}
	vv := float64(v0)*float64(v0) - 2*float64(p)*float64(dt)/float64(c)
	if vv <= 0 {
		return 0
	}
	return Voltage(math.Sqrt(vv))
}

// TimeToDischarge returns the time for a constant-power load p to drag
// capacitance c from v0 down to v1. It returns 0 when v0 ≤ v1 and +Inf
// for a non-positive load.
func TimeToDischarge(c Capacitance, v0, v1 Voltage, p Power) Seconds {
	if v0 <= v1 {
		return 0
	}
	if p <= 0 || c <= 0 {
		return Seconds(math.Inf(1))
	}
	de := BandEnergy(c, v0, v1)
	return Seconds(float64(de) / float64(p))
}

// LeakVoltageAfter returns the voltage on capacitance c with parallel
// leakage resistance r after dt seconds of self-discharge from v0:
// V(t) = V0·exp(−t/RC). A non-positive r means an ideal capacitor.
func LeakVoltageAfter(c Capacitance, v0 Voltage, r Resistance, dt Seconds) Voltage {
	if r <= 0 || c <= 0 || dt <= 0 {
		return v0
	}
	return Voltage(float64(v0) * math.Exp(-float64(dt)/(float64(r)*float64(c))))
}

// MinAdvance returns the smallest span by which simulated time t can
// advance to a strictly later float64 instant (one ULP of t, floored at
// a femtosecond near zero). Event-driven loops must round horizons up
// to this: a stepped source is free to promise constancy for a sliver
// shorter than one ULP of the current clock (PWM traces do, near their
// edges, because phase arithmetic is exact while absolute time is not),
// and advancing by such a sliver leaves the clock bit-identical — a
// Zeno stall. Rounding up crosses the sliver by at most one ULP of
// physically meaningless time.
func MinAdvance(t Seconds) Seconds {
	d := Seconds(math.Nextafter(float64(t), math.Inf(1))) - t
	if d < 1e-15 {
		d = 1e-15
	}
	return d
}

// TimeToLeakTo returns how long capacitance c with leakage resistance r
// takes to self-discharge from v0 down to v1. It returns 0 when
// v0 ≤ v1, and +Inf for an ideal capacitor (r ≤ 0) or v1 ≤ 0.
func TimeToLeakTo(c Capacitance, v0, v1 Voltage, r Resistance) Seconds {
	if v0 <= v1 {
		return 0
	}
	if r <= 0 || c <= 0 || v1 <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(r) * float64(c) * math.Log(float64(v0)/float64(v1)))
}

// String implementations render quantities with engineering prefixes so
// traces and tables read like the paper ("67.5 mF", "2.4 V", "10 mW").

func (v Voltage) String() string     { return eng(float64(v), "V") }
func (i Current) String() string     { return eng(float64(i), "A") }
func (c Capacitance) String() string { return eng(float64(c), "F") }
func (e Energy) String() string      { return eng(float64(e), "J") }
func (p Power) String() string       { return eng(float64(p), "W") }
func (r Resistance) String() string  { return eng(float64(r), "Ω") }
func (v Volume) String() string      { return fmt.Sprintf("%.1f mm³", float64(v)) }
func (a Area) String() string        { return fmt.Sprintf("%.1f mm²", float64(a)) }

// String renders a time span: sub-second spans in ms, longer spans in
// seconds with decreasing precision.
func (s Seconds) String() string {
	abs := math.Abs(float64(s))
	switch {
	case abs == 0:
		return "0 s"
	case abs < 1e-3:
		return fmt.Sprintf("%.1f µs", float64(s)*1e6)
	case abs < 1:
		return fmt.Sprintf("%.1f ms", float64(s)*1e3)
	case abs < 100:
		return fmt.Sprintf("%.2f s", float64(s))
	default:
		return fmt.Sprintf("%.0f s", float64(s))
	}
}

var engPrefixes = []struct {
	scale  float64
	prefix string
}{
	{1, ""}, {1e-3, "m"}, {1e-6, "µ"}, {1e-9, "n"}, {1e-12, "p"},
}

func eng(x float64, unit string) string {
	if x == 0 {
		return "0 " + unit
	}
	abs := math.Abs(x)
	if abs >= 1 {
		return fmt.Sprintf("%.3g", x) + " " + unit
	}
	for _, p := range engPrefixes[1:] {
		if abs >= p.scale {
			return fmt.Sprintf("%.3g", x/p.scale) + " " + p.prefix + unit
		}
	}
	return fmt.Sprintf("%.3g %s", x, unit)
}

// Duration converts a simulated span to a time.Duration for interop
// with standard-library APIs. Spans beyond the Duration range saturate.
func (s Seconds) Duration() time.Duration {
	sec := float64(s)
	if sec > math.MaxInt64/1e9 {
		return time.Duration(math.MaxInt64)
	}
	if sec < -math.MaxInt64/1e9 {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(sec * float64(time.Second))
}

// FromDuration converts a time.Duration to simulated seconds.
func FromDuration(d time.Duration) Seconds { return Seconds(d.Seconds()) }
