package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1e-30)
}

func TestStoredEnergy(t *testing.T) {
	// 100 µF at 3.3 V holds ½·1e-4·3.3² = 544.5 µJ.
	got := StoredEnergy(100*MicroFarad, 3.3)
	if !almostEqual(float64(got), 544.5e-6, 1e-12) {
		t.Fatalf("StoredEnergy = %v, want 544.5 µJ", got)
	}
}

func TestBandEnergy(t *testing.T) {
	tests := []struct {
		name     string
		c        Capacitance
		top, bot Voltage
		want     Energy
	}{
		{"full band", 1 * MilliFarad, 2.4, 0, Energy(0.5 * 1e-3 * 2.4 * 2.4)},
		{"partial band", 1 * MilliFarad, 2.4, 1.8, Energy(0.5 * 1e-3 * (2.4*2.4 - 1.8*1.8))},
		{"inverted band", 1 * MilliFarad, 1.8, 2.4, 0},
		{"degenerate band", 1 * MilliFarad, 2.0, 2.0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := BandEnergy(tt.c, tt.top, tt.bot)
			if !almostEqual(float64(got), float64(tt.want), 1e-12) {
				t.Fatalf("BandEnergy(%v,%v,%v) = %v, want %v", tt.c, tt.top, tt.bot, got, tt.want)
			}
		})
	}
}

func TestVoltageForEnergyRoundTrip(t *testing.T) {
	f := func(cMicro, vRaw uint16) bool {
		c := Capacitance(float64(cMicro)+1) * MicroFarad
		v := Voltage(float64(vRaw)/float64(math.MaxUint16)*5 + 0.01)
		e := StoredEnergy(c, v)
		back := VoltageForEnergy(c, e)
		return almostEqual(float64(back), float64(v), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVoltageForEnergyEdgeCases(t *testing.T) {
	if got := VoltageForEnergy(0, 1); got != 0 {
		t.Errorf("zero capacitance: got %v, want 0", got)
	}
	if got := VoltageForEnergy(1*MicroFarad, -1); got != 0 {
		t.Errorf("negative energy: got %v, want 0", got)
	}
}

func TestChargeDischargeInverse(t *testing.T) {
	// Charging for dt then discharging at the same power for dt must
	// return to the starting voltage (the model is loss-free at this
	// layer; converters add losses above it).
	f := func(cMicro, pMicro, dtMilli uint16) bool {
		c := Capacitance(float64(cMicro)+1) * MicroFarad
		p := Power(float64(pMicro)+1) * MicroWatt
		dt := Seconds(float64(dtMilli)+1) * Millisecond
		v0 := Voltage(1.0)
		up := ChargeVoltageAfter(c, v0, p, dt)
		down := DischargeVoltageAfter(c, up, p, dt)
		return almostEqual(float64(down), float64(v0), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeToChargeMatchesChargeVoltageAfter(t *testing.T) {
	f := func(cMicro, pMicro uint16, vTopRaw uint8) bool {
		c := Capacitance(float64(cMicro)+10) * MicroFarad
		p := Power(float64(pMicro)+10) * MicroWatt
		v0 := Voltage(0.5)
		v1 := v0 + Voltage(float64(vTopRaw)/255*3+0.01)
		dt := TimeToCharge(c, v0, v1, p)
		reached := ChargeVoltageAfter(c, v0, p, dt)
		return almostEqual(float64(reached), float64(v1), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeToChargeDegenerate(t *testing.T) {
	if got := TimeToCharge(1*MilliFarad, 2.0, 1.0, 1*MilliWatt); got != 0 {
		t.Errorf("already charged: got %v, want 0", got)
	}
	if got := TimeToCharge(1*MilliFarad, 1.0, 2.0, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("no input power: got %v, want +Inf", got)
	}
}

func TestTimeToDischargeMatchesAnalytic(t *testing.T) {
	c := 10 * MilliFarad
	p := 5 * MilliWatt
	dt := TimeToDischarge(c, 3.0, 1.8, p)
	// E = ½·0.01·(9−3.24) = 28.8 mJ; t = E/P = 5.76 s.
	if !almostEqual(float64(dt), 5.76, 1e-12) {
		t.Fatalf("TimeToDischarge = %v, want 5.76 s", dt)
	}
	if got := TimeToDischarge(c, 1.0, 2.0, p); got != 0 {
		t.Errorf("below target: got %v, want 0", got)
	}
	if got := TimeToDischarge(c, 2.0, 1.0, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("no load: got %v, want +Inf", got)
	}
}

func TestLeakage(t *testing.T) {
	// After one RC time constant the voltage is V0/e.
	c := 4.7 * MicroFarad
	r := Resistance(10e6)
	rc := Seconds(float64(r) * float64(c))
	got := LeakVoltageAfter(c, 3.0, r, rc)
	if !almostEqual(float64(got), 3.0/math.E, 1e-9) {
		t.Fatalf("LeakVoltageAfter(RC) = %v, want %v", got, 3.0/math.E)
	}
	// Ideal capacitor never leaks.
	if got := LeakVoltageAfter(c, 3.0, 0, 1e9); got != 3.0 {
		t.Errorf("ideal capacitor leaked: %v", got)
	}
}

func TestTimeToLeakToRoundTrip(t *testing.T) {
	f := func(frac uint8) bool {
		c := 4.7 * MicroFarad
		r := Resistance(50e6)
		v0 := Voltage(3.0)
		v1 := Voltage(float64(frac)/256*2.9 + 0.05)
		dt := TimeToLeakTo(c, v0, v1, r)
		back := LeakVoltageAfter(c, v0, r, dt)
		return almostEqual(float64(back), float64(v1), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := TimeToLeakTo(1*MicroFarad, 1.0, 2.0, KiloOhm); got != 0 {
		t.Errorf("leak upward: got %v, want 0", got)
	}
	if got := TimeToLeakTo(1*MicroFarad, 2.0, 1.0, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("ideal capacitor leak time: got %v, want +Inf", got)
	}
}

func TestChargeCurveMonotonic(t *testing.T) {
	c := 67.5 * MilliFarad
	p := 10 * MilliWatt
	prev := Voltage(0)
	for i := 1; i <= 1000; i++ {
		v := ChargeVoltageAfter(c, 0, p, Seconds(i)*0.1)
		if v <= prev {
			t.Fatalf("charge curve not strictly increasing at step %d: %v <= %v", i, v, prev)
		}
		prev = v
	}
}

func TestStringFormats(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{(67.5 * MilliFarad).String(), "67.5 mF"},
		{Voltage(2.4).String(), "2.4 V"},
		{(10 * MilliWatt).String(), "10 mW"},
		{(330 * MicroFarad).String(), "330 µF"},
		{Capacitance(0).String(), "0 F"},
		{Seconds(0.0000005).String(), "0.5 µs"},
		{Seconds(0.25).String(), "250.0 ms"},
		{Seconds(64).String(), "64.00 s"},
		{Seconds(220).String(), "220 s"},
		{Volume(7.2).String(), "7.2 mm³"},
		{Area(80).String(), "80.0 mm²"},
		{Resistance(160).String(), "160 Ω"},
		{(30 * MilliAmp).String(), "30 mA"},
		{(544.5 * MicroJoule).String(), "544 µJ"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}

// TestAnalyticVsNumericalCharge cross-checks the closed-form constant-
// power charge solution against explicit Euler integration of
// dV/dt = P/(C·V).
func TestAnalyticVsNumericalCharge(t *testing.T) {
	c := 7.5 * MilliFarad
	p := 3 * MilliWatt
	v := 0.5 // start above 0 to avoid the dV/dt singularity
	const dt = 1e-4
	total := Seconds(0)
	for i := 0; i < 200000; i++ {
		v += float64(p) / (float64(c) * v) * dt
		total += dt
	}
	analytic := ChargeVoltageAfter(c, 0.5, p, total)
	if !almostEqual(v, float64(analytic), 1e-3) {
		t.Fatalf("numerical %v vs analytic %v diverged", v, analytic)
	}
}

// TestAnalyticVsNumericalLeak cross-checks exponential decay against
// Euler integration of dV/dt = −V/(RC).
func TestAnalyticVsNumericalLeak(t *testing.T) {
	c := 4.7 * MicroFarad
	r := Resistance(10e6)
	v := 3.0
	const dt = 1e-3
	total := Seconds(0)
	for i := 0; i < 50000; i++ {
		v -= v / (float64(r) * float64(c)) * dt
		total += dt
	}
	analytic := LeakVoltageAfter(c, 3.0, r, total)
	if !almostEqual(v, float64(analytic), 1e-3) {
		t.Fatalf("numerical %v vs analytic %v diverged", v, analytic)
	}
}

func TestDurationConversions(t *testing.T) {
	if got := Seconds(1.5).Duration(); got != 1500*1e6 {
		t.Fatalf("Duration = %v", got)
	}
	if got := FromDuration(250 * 1e6); got != 0.25 {
		t.Fatalf("FromDuration = %v", got)
	}
	// Extreme spans saturate instead of overflowing.
	if got := Seconds(1e300).Duration(); got <= 0 {
		t.Fatalf("positive saturation = %v", got)
	}
	if got := Seconds(-1e300).Duration(); got >= 0 {
		t.Fatalf("negative saturation = %v", got)
	}
}
