package fleetsvc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"capybara/internal/fleet"
)

func testServer(t *testing.T, cfg ServiceConfig) (*Service, *httptest.Server) {
	t.Helper()
	svc := openService(t, t.TempDir(), cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

func decodeStatus(t *testing.T, r io.Reader) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

// TestHTTPAPI is the table-driven pass over every route's success and
// error shapes against one live service.
func TestHTTPAPI(t *testing.T) {
	svc, srv := testServer(t, ServiceConfig{})

	// One finished job to serve reports from.
	done, err := svc.Submit(fleet.Spec{N: 16, Seed: 2, Scale: 0.02, ChunkSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, svc, done.ID); st.State != StateDone {
		t.Fatalf("setup job finished %s: %s", st.State, st.Error)
	}
	// One canceled job (submit then cancel; with the slot likely busy it
	// cancels while queued — either way it is terminal and report-less).
	canceled, err := svc.Submit(fleet.Spec{N: 480, Seed: 3, Scale: 0.05, ChunkSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Cancel(canceled.ID); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name     string
		method   string
		path     string
		body     string
		status   int
		contains string
	}{
		{"submit ok", "POST", "/api/v1/jobs", `{"n":16,"seed":4,"scale":0.02,"chunk_size":8}`, http.StatusCreated, `"state"`},
		{"submit rejects invalid spec", "POST", "/api/v1/jobs", `{"n":0}`, http.StatusBadRequest, "N must be positive"},
		{"submit rejects bad scale", "POST", "/api/v1/jobs", `{"n":8,"scale":3.5}`, http.StatusBadRequest, "bad scale"},
		{"submit rejects malformed json", "POST", "/api/v1/jobs", `{"n":`, http.StatusBadRequest, "bad submit body"},
		{"submit rejects unknown fields", "POST", "/api/v1/jobs", `{"n":8,"workers":4}`, http.StatusBadRequest, "bad submit body"},
		{"submit is POST-only", "GET", "/api/v1/jobs/" + done.ID + "/cancel", "", http.StatusMethodNotAllowed, ""},
		{"list", "GET", "/api/v1/jobs", "", http.StatusOK, `"jobs"`},
		{"status ok", "GET", "/api/v1/jobs/" + done.ID, "", http.StatusOK, `"state": "done"`},
		{"status with cohorts", "GET", "/api/v1/jobs/" + done.ID + "?cohorts=1", "", http.StatusOK, `"cohorts"`},
		{"status unknown job", "GET", "/api/v1/jobs/j999999", "", http.StatusNotFound, "no job"},
		{"report csv", "GET", "/api/v1/jobs/" + done.ID + "/report", "", http.StatusOK, "app,variant,scenario"},
		{"report json", "GET", "/api/v1/jobs/" + done.ID + "/report?format=json", "", http.StatusOK, `"cohorts"`},
		{"report bad format", "GET", "/api/v1/jobs/" + done.ID + "/report?format=xml", "", http.StatusBadRequest, "unknown format"},
		{"report unknown job", "GET", "/api/v1/jobs/j999999/report", "", http.StatusNotFound, "no job"},
		{"report of canceled job", "GET", "/api/v1/jobs/" + canceled.ID + "/report", "", http.StatusConflict, "canceled"},
		{"cancel unknown job", "POST", "/api/v1/jobs/j999999/cancel", "", http.StatusNotFound, "no job"},
		{"cancel terminal job is idempotent", "POST", "/api/v1/jobs/" + canceled.ID + "/cancel", "", http.StatusOK, `"state": "canceled"`},
		{"stream unknown job", "GET", "/api/v1/jobs/j999999/stream", "", http.StatusNotFound, "no job"},
		{"healthz", "GET", "/api/v1/healthz", "", http.StatusOK, `"ok": true`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("%s %s: got %d, want %d\nbody: %s", tc.method, tc.path, resp.StatusCode, tc.status, body)
			}
			if tc.contains != "" && !strings.Contains(string(body), tc.contains) {
				t.Fatalf("%s %s: body missing %q:\n%s", tc.method, tc.path, tc.contains, body)
			}
		})
	}
}

// TestHTTPCohortEngineStats: the ?cohorts=1 status view carries each
// cohort's engine-stat sidecars — memo cache, batch replay, and fused
// stepping — folded over completed chunks, so per-cohort execution
// diagnostics are visible through the job API without the report.
func TestHTTPCohortEngineStats(t *testing.T) {
	svc, srv := testServer(t, ServiceConfig{})
	done, err := svc.Submit(fleet.Spec{N: 16, Seed: 2, Scale: 0.02, ChunkSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, svc, done.ID); st.State != StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	resp, err := srv.Client().Get(srv.URL + "/api/v1/jobs/" + done.ID + "?cohorts=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Cohorts []CohortProgress `json:"cohorts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cohorts) == 0 {
		t.Fatal("no cohorts in status view")
	}
	fusedSteps := uint64(0)
	for _, c := range doc.Cohorts {
		// All three engine layers are on by default, so every touched
		// cohort must carry all three sidecars.
		if c.Memo == nil || c.Batch == nil || c.Fuse == nil {
			t.Fatalf("cohort %s missing engine stats: memo=%v batch=%v fuse=%v",
				c.Cohort, c.Memo != nil, c.Batch != nil, c.Fuse != nil)
		}
		fusedSteps += c.Fuse.Steps
	}
	if fusedSteps == 0 {
		t.Fatal("no cohort reported fused-stepping attempts — sidecar is not being folded")
	}
}

// TestHTTPSubmitToReportRoundTrip drives a job purely over HTTP —
// submit, poll, fetch both report formats — and checks the CSV equals
// the in-process baseline.
func TestHTTPSubmitToReportRoundTrip(t *testing.T) {
	cfg := fleet.Config{N: 32, Seed: 6, Scale: 0.02, ChunkSize: 8}
	want := baseline(t, cfg)
	_, srv := testServer(t, ServiceConfig{})

	body := fmt.Sprintf(`{"n":%d,"seed":%d,"scale":%g,"chunk_size":%d}`, cfg.N, cfg.Seed, cfg.Scale, cfg.ChunkSize)
	resp, err := srv.Client().Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	deadline := time.After(60 * time.Second)
	for !terminal(st.State) {
		select {
		case <-deadline:
			t.Fatalf("job stuck at %+v", st)
		case <-time.After(20 * time.Millisecond):
		}
		resp, err := srv.Client().Get(srv.URL + "/api/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		st = decodeStatus(t, resp.Body)
		resp.Body.Close()
	}
	if st.State != StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	resp, err = srv.Client().Get(srv.URL + "/api/v1/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("report content type %q", ct)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP-served report differs from in-process baseline")
	}

	resp, err = srv.Client().Get(srv.URL + "/api/v1/jobs/" + st.ID + "/report?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		N       int             `json:"n"`
		Cohorts json.RawMessage `json:"cohorts"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if doc.N != cfg.N || len(doc.Cohorts) == 0 {
		t.Fatalf("JSON report malformed: n=%d cohorts=%d bytes", doc.N, len(doc.Cohorts))
	}
}

// TestHTTPStream reads a job's NDJSON stream end to end: every line
// must decode as a status for the job, done-counts must be monotonic,
// and the stream must end with a terminal line.
func TestHTTPStream(t *testing.T) {
	_, srv := testServer(t, ServiceConfig{Jobs: 1})

	resp, err := srv.Client().Post(srv.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"n":96,"seed":8,"scale":0.05,"chunk_size":8}`))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()

	resp, err = srv.Client().Get(srv.URL + "/api/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines, lastDone := 0, -1
	var last JobStatus
	for sc.Scan() {
		var ev JobStatus
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line %d: %v\n%s", lines, err, sc.Text())
		}
		if ev.ID != st.ID {
			t.Fatalf("stream leaked job %s into %s's stream", ev.ID, st.ID)
		}
		if ev.Done < lastDone {
			t.Fatalf("stream went backwards: done %d after %d", ev.Done, lastDone)
		}
		lastDone = ev.Done
		last = ev
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stream produced no events")
	}
	if !terminal(last.State) {
		t.Fatalf("stream ended on non-terminal state %s", last.State)
	}
	if last.State != StateDone || last.Done != last.Chunks {
		t.Fatalf("final stream event %+v", last)
	}
}

// TestHTTPStreamVanishedJobEndsTerminal pins the stream contract's hard
// case: the 200 and some events are already written when the job
// disappears from the service table mid-stream. The stream must still
// end with a terminal-state line — a synthetic failed event — not a
// silent truncation the client would misread as a dropped connection.
func TestHTTPStreamVanishedJobEndsTerminal(t *testing.T) {
	svc, srv := testServer(t, ServiceConfig{})

	// Register a job without enqueueing it (white-box track), so it sits
	// in queued state forever: the stream cannot race to a real terminal
	// event before the test makes the job vanish.
	spec := fleet.Spec{N: 16, Seed: 5, Scale: 0.02, ChunkSize: 8}
	fj, err := fleet.NewJob(spec.Exec(fleet.ExecOptions{Jobs: 1}))
	if err != nil {
		t.Fatal(err)
	}
	resolved := fj.Spec()
	id := "j900000"
	svc.mu.Lock()
	j := svc.track(id, fj, SpecInfo{N: resolved.N, Seed: resolved.Seed, Scale: resolved.Scale, ChunkSize: resolved.ChunkSize})
	svc.mu.Unlock()

	resp, err := srv.Client().Get(srv.URL + "/api/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("stream produced no first event: %v", sc.Err())
	}
	var first JobStatus
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first stream line: %v\n%s", err, sc.Text())
	}
	if first.State != StateQueued {
		t.Fatalf("first event state %s, want queued", first.State)
	}

	// Vanish: remove the job from the lookup table (the engine never
	// held it — it was never enqueued), then nudge the watcher so the
	// stream handler re-reads Status and finds nothing.
	svc.mu.Lock()
	delete(svc.jobs, id)
	svc.mu.Unlock()
	j.notify()

	var last JobStatus
	lines := 0
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream line after vanish: %v\n%s", err, sc.Text())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stream truncated with no terminal line after the job vanished")
	}
	if !terminal(last.State) || last.State != StateFailed {
		t.Fatalf("stream ended on state %q, want failed terminal event", last.State)
	}
	if last.ID != id || !strings.Contains(last.Error, "job vanished") {
		t.Fatalf("terminal event %+v, want id %s and a vanish error", last, id)
	}
}
