package fleetsvc

import (
	"bytes"
	"context"
	"testing"

	"capybara/internal/fleet"
)

// FuzzPartialDecode throws arbitrary bytes at the store's entry decoder
// (which layers the checksummed header over fleet.DecodePartial). The
// invariants: never panic, never allocate past the payload bound, and
// anything accepted decodes to a partial for the requested chunk that
// survives a re-encode/re-decode cycle — so no input can smuggle an
// unserializable or mislabeled partial past the checks.
func FuzzPartialDecode(f *testing.F) {
	job, err := fleet.NewJob(fleet.Config{N: 16, Seed: 5, Scale: 0.02, ChunkSize: 8})
	if err != nil {
		f.Fatal(err)
	}
	hash := job.SpecHash()
	cp, err := job.RunChunk(context.Background(), 1, nil)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := EncodeEntry(hash, 1, cp)
	if err != nil {
		f.Fatal(err)
	}

	// Seed corpus: the valid entry, every corruption from the store
	// tests, a bare gob payload with no header, and junk.
	f.Add(valid)
	for _, c := range corruptions {
		f.Add(c.mangle(append([]byte(nil), valid...)))
	}
	f.Add(append([]byte(nil), valid[entryHeaderLen:]...))
	f.Add([]byte(entryMagic))
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeEntry(data, hash, 1)
		if err != nil {
			return // rejected — the expected outcome for almost all inputs
		}
		// Accepted: the partial must be labeled for the requested chunk
		// and survive a full store round trip.
		if got.Chunk != 1 {
			t.Fatalf("accepted entry labeled chunk %d, want 1", got.Chunk)
		}
		re, err := EncodeEntry(hash, 1, got)
		if err != nil {
			t.Fatalf("accepted entry failed to re-encode: %v", err)
		}
		re2, err := DecodeEntry(re, hash, 1)
		if err != nil {
			t.Fatalf("re-encoded entry failed to decode: %v", err)
		}
		var a, b bytes.Buffer
		if err := fleet.EncodePartial(&a, got); err != nil {
			t.Fatal(err)
		}
		if err := fleet.EncodePartial(&b, re2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("partial drifted across a store round trip")
		}
	})
}
