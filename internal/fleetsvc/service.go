package fleetsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"capybara/internal/fleet"
	"capybara/internal/power"
	"capybara/internal/sim"
	"capybara/internal/task"
)

// Service is the fleet-as-a-service layer: a queue of fleet jobs whose
// specs, states, and chunk checkpoints all live in the store directory,
// so the daemon owning a Service can be killed at any instant and a
// successor resumes every in-flight job from its completed chunks.
//
// Contract: a job's final report is byte-identical to fleet.Run with
// the same spec, however many times the service died and resumed while
// running it, and whatever other jobs ran concurrently. Two jobs with
// the same SpecHash share chunk checkpoints through the store (the
// cross-run memo); jobs with different hashes cannot touch each other's
// partials — the store is content-addressed, so isolation is by
// construction, not by locking discipline.

// ServiceConfig parameterizes a Service. Only Store is required.
type ServiceConfig struct {
	// Store holds checkpoints, job journals, and finished reports.
	Store *Store
	// Jobs is each running job's worker parallelism (<= 0 GOMAXPROCS).
	Jobs int
	// MaxConcurrent bounds how many jobs run at once (<= 0 means 2).
	// Queued jobs start in submission order as slots free up.
	MaxConcurrent int
	// Execution knobs forwarded to the engine (never affect reports).
	NoMemo    bool
	CacheSize int
	NoRecycle bool
	// Batch is the device-op replay width cap (fleet Config.Batch:
	// < 0 scalar, 0 unlimited, >= 1 cap).
	Batch int
	// NoVector disables the batch path's lockstep cursor (fleet
	// Config.NoVector).
	NoVector bool
	// NoFuse disables fused task-engine stepping (fleet Config.NoFuse).
	NoFuse bool
	// NoCohortSpin disables cohort-shared fixed-point spins (fleet
	// Config.NoCohortSpin).
	NoCohortSpin bool
	// NoPhaseKeys disables phase-keyed tapes and op-cache entries (fleet
	// Config.NoPhaseKeys).
	NoPhaseKeys bool
	// BypassAfter/BypassBelow tune the op-cache probation heuristic
	// (fleet Config.BypassAfter/BypassBelow; 0 = defaults).
	BypassAfter uint64
	BypassBelow float64
}

// Job states. queued and running survive a daemon restart (the
// successor re-enqueues them); done, failed, and canceled are terminal.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// SpecInfo is the JSON shape of a job's spec, with defaults resolved.
type SpecInfo struct {
	N         int     `json:"n"`
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`
	ChunkSize int     `json:"chunk_size"`
}

func (si SpecInfo) spec() fleet.Spec {
	return fleet.Spec{N: si.N, Seed: si.Seed, Scale: si.Scale, ChunkSize: si.ChunkSize}
}

// JobStatus is a point-in-time snapshot of one job, as served by the
// status API. Done = Loaded + Computed; Loaded counts chunks folded
// from pre-existing checkpoints (a resumed or memo-sharing job's
// savings), Computed counts chunks simulated fresh for this job.
type JobStatus struct {
	ID       string   `json:"id"`
	State    string   `json:"state"`
	Spec     SpecInfo `json:"spec"`
	SpecHash string   `json:"spec_hash"`
	Chunks   int      `json:"chunks"`
	Done     int      `json:"done"`
	Loaded   int      `json:"loaded"`
	Computed int      `json:"computed"`
	Devices  int      `json:"devices"`
	Error    string   `json:"error,omitempty"`
}

// CohortProgress is one cohort's running partial fold — served while a
// job runs, merged in chunk-index order over completed chunks only, so
// a snapshot at a given done-count is deterministic. Memo, Batch, and
// Fuse carry the cohort's engine-stat sidecars (memo cache, device-op
// replay, fused stepping) folded over the same chunks; each is nil when
// that layer was off for the run. They are execution diagnostics — they
// never appear in the canonical report.
type CohortProgress struct {
	Cohort   string            `json:"cohort"`
	Devices  int               `json:"devices"`
	Events   int               `json:"events"`
	Accuracy float64           `json:"accuracy_mean"`
	Memo     *power.CacheStats `json:"memo,omitempty"`
	Batch    *sim.OpCacheStats `json:"batch,omitempty"`
	Fuse     *task.FuseStats   `json:"fuse,omitempty"`
}

// jobRecord is the journaled form of a job: everything a successor
// daemon needs to resume it. The spec hash is recorded for diagnosis
// but recomputed by the resuming binary — checkpoints are addressed by
// the recomputed hash, so a drifted binary recomputes instead of
// folding stale partials (the same guarantee the shard handshake gives
// across processes, here across daemon generations).
type jobRecord struct {
	ID       string   `json:"id"`
	Spec     SpecInfo `json:"spec"`
	SpecHash string   `json:"spec_hash"`
	State    string   `json:"state"`
	Error    string   `json:"error,omitempty"`
}

// job is one tracked job. fjob is rebuilt from the spec by whichever
// binary runs the service, so its SpecHash — and therefore checkpoint
// addressing — is always the running binary's truth.
type job struct {
	id   string
	fjob *fleet.Job
	spec SpecInfo

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	errMsg   string
	loaded   int
	computed int
	devices  int
	partials []*fleet.ChunkPartial // completed chunks by index, for snapshots
	watchers map[int]chan struct{}
	nextW    int
}

// notify nudges every watcher (coalescing: a slow watcher misses
// intermediate states, never the latest).
func (j *job) notify() {
	j.mu.Lock()
	for _, ch := range j.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	j.mu.Unlock()
}

// transition moves state from -> to; reports whether it happened (a
// concurrent cancel may have won).
func (j *job) transition(from, to string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != from {
		return false
	}
	j.state = to
	return true
}

// Service implements the persistent job queue. See the contract above.
type Service struct {
	cfg   ServiceConfig
	store *Store

	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int
}

// NewService opens a service over cfg.Store, re-enqueues every
// journaled job that was queued or running when the previous owner
// died, and starts accepting submissions.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Store == nil {
		return nil, errors.New("fleetsvc: service requires a store")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:    cfg,
		store:  cfg.Store,
		ctx:    ctx,
		cancel: cancel,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		jobs:   make(map[string]*job),
		nextID: 1,
	}
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// Close stops the service: running jobs are interrupted mid-chunk and
// left journaled as running, exactly like a crash, so a successor
// resumes them from their completed chunks. Blocks until every job
// goroutine has unwound.
func (s *Service) Close() {
	s.cancel()
	s.wg.Wait()
}

func (s *Service) jobsDir() string { return filepath.Join(s.store.Dir(), "jobs") }

func (s *Service) journalPath(id string) string {
	return filepath.Join(s.jobsDir(), id+".json")
}

func (s *Service) reportPath(id string, asJSON bool) string {
	ext := ".report.csv"
	if asJSON {
		ext = ".report.json"
	}
	return filepath.Join(s.jobsDir(), id+ext)
}

// recover loads the journal and re-enqueues unfinished jobs in ID order
// (IDs are monotonic, so this is submission order).
func (s *Service) recover() error {
	ents, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return fmt.Errorf("fleetsvc: scanning jobs: %w", err)
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.Contains(name, ".report.") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(ids)
	for _, id := range ids {
		data, err := os.ReadFile(s.journalPath(id))
		if err != nil {
			return fmt.Errorf("fleetsvc: reading journal %s: %w", id, err)
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("fleetsvc: journal %s: %w", id, err)
		}
		if n := idNumber(id); n >= s.nextID {
			s.nextID = n + 1
		}
		fj, err := fleet.NewJob(s.engineConfig(rec.Spec))
		if err != nil {
			// A journaled spec this binary rejects: mark it failed, keep
			// the record for inspection, don't poison startup.
			rec.State = StateFailed
			rec.Error = err.Error()
			if werr := s.writeJournal(&rec); werr != nil {
				return werr
			}
			continue
		}
		j := s.track(id, fj, rec.Spec)
		j.state = rec.State
		j.errMsg = rec.Error
		switch rec.State {
		case StateDone:
			// Trust the persisted report if it exists; otherwise re-run —
			// every chunk is checkpointed, so the redo only re-renders.
			if _, err := os.Stat(s.reportPath(id, false)); err != nil {
				j.state = StateQueued
				s.enqueue(j)
			} else {
				j.loaded = fj.NumChunks()
				j.devices = rec.Spec.N
			}
		case StateQueued, StateRunning:
			j.state = StateQueued
			s.enqueue(j)
		}
	}
	return nil
}

func idNumber(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil {
		return 0
	}
	return n
}

func (s *Service) engineConfig(si SpecInfo) fleet.Config {
	return si.spec().Exec(s.execOptions())
}

func (s *Service) execOptions() fleet.ExecOptions {
	return fleet.ExecOptions{
		Jobs:         s.cfg.Jobs,
		NoMemo:       s.cfg.NoMemo,
		CacheSize:    s.cfg.CacheSize,
		NoRecycle:    s.cfg.NoRecycle,
		Batch:        s.cfg.Batch,
		NoVector:     s.cfg.NoVector,
		NoFuse:       s.cfg.NoFuse,
		NoCohortSpin: s.cfg.NoCohortSpin,
		NoPhaseKeys:  s.cfg.NoPhaseKeys,
		BypassAfter:  s.cfg.BypassAfter,
		BypassBelow:  s.cfg.BypassBelow,
	}
}

// track registers a job in the in-memory table. Callers hold s.mu or
// are single-threaded startup.
func (s *Service) track(id string, fj *fleet.Job, spec SpecInfo) *job {
	jctx, jcancel := context.WithCancel(s.ctx)
	j := &job{
		id:       id,
		fjob:     fj,
		spec:     spec,
		ctx:      jctx,
		cancel:   jcancel,
		state:    StateQueued,
		partials: make([]*fleet.ChunkPartial, fj.NumChunks()),
		watchers: make(map[int]chan struct{}),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j
}

// Submit validates spec, journals it, and queues it. The returned
// status is the freshly queued job (it may already be running by the
// time the caller reads the snapshot).
func (s *Service) Submit(spec fleet.Spec) (JobStatus, error) {
	fj, err := fleet.NewJob(spec.Exec(s.execOptions()))
	if err != nil {
		return JobStatus{}, err
	}
	resolved := fj.Spec()
	si := SpecInfo{N: resolved.N, Seed: resolved.Seed, Scale: resolved.Scale, ChunkSize: resolved.ChunkSize}

	s.mu.Lock()
	if s.ctx.Err() != nil {
		s.mu.Unlock()
		return JobStatus{}, errors.New("fleetsvc: service is shut down")
	}
	id := fmt.Sprintf("j%06d", s.nextID)
	s.nextID++
	j := s.track(id, fj, si)
	s.mu.Unlock()

	if err := s.journal(j); err != nil {
		return JobStatus{}, err
	}
	s.enqueue(j)
	return s.status(j), nil
}

func (s *Service) enqueue(j *job) {
	s.wg.Add(1)
	go s.runJob(j)
}

// runJob owns one job's lifecycle: wait for a slot, run the chunked
// engine against the shared store, persist the report, journal the
// terminal state. On service shutdown it returns with the journal still
// saying queued/running — the resume marker a successor picks up.
func (s *Service) runJob(j *job) {
	defer s.wg.Done()
	defer j.notify()
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-j.ctx.Done():
		// Service shutdown (leave the journal as-is for resume) or a
		// cancel while queued (Cancel journaled it already).
		return
	}
	if !j.transition(StateQueued, StateRunning) {
		return // canceled while waiting for the slot
	}
	if err := s.journal(j); err != nil {
		s.finish(j, nil, err)
		return
	}
	j.notify()

	res, _, err := RunWithStore(j.ctx, s.store, s.engineConfig(j.spec), func(p Progress) {
		j.mu.Lock()
		if p.Partial != nil && p.Partial.Chunk < len(j.partials) {
			j.partials[p.Partial.Chunk] = p.Partial
		}
		j.loaded = p.Loaded
		j.computed = p.Done - p.Loaded
		j.devices = p.Devices
		j.mu.Unlock()
		j.notify()
	})
	s.finish(j, res, err)
}

// finish journals a job's terminal state — or leaves it resumable if
// the run was interrupted by service shutdown.
func (s *Service) finish(j *job, res *fleet.Result, err error) {
	if err != nil {
		if s.ctx.Err() != nil {
			// Shutdown: the journal still says running; a successor
			// resumes from the checkpointed chunks.
			return
		}
		if j.ctx.Err() != nil {
			// Canceled via the API; Cancel journaled the state.
			return
		}
		j.mu.Lock()
		j.state = StateFailed
		j.errMsg = err.Error()
		j.mu.Unlock()
		_ = s.journal(j)
		return
	}

	// Render and persist both report formats before declaring done, so
	// a done journal entry always has servable reports next to it.
	var csv, js bytes.Buffer
	err = res.WriteCSV(&csv)
	if err == nil {
		err = res.WriteJSON(&js)
	}
	if err == nil {
		err = writeFileAtomic(s.jobsDir(), j.id+".report.csv", csv.Bytes(), s.store.seq.Add(1))
	}
	if err == nil {
		err = writeFileAtomic(s.jobsDir(), j.id+".report.json", js.Bytes(), s.store.seq.Add(1))
	}
	j.mu.Lock()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
	} else if !terminal(j.state) {
		j.state = StateDone
	}
	j.mu.Unlock()
	_ = s.journal(j)
}

// Cancel stops a queued or running job. Terminal jobs are left as they
// are (canceling a done job is a no-op, not an error).
func (s *Service) Cancel(id string) (JobStatus, error) {
	j, ok := s.lookup(id)
	if !ok {
		return JobStatus{}, fmt.Errorf("fleetsvc: no job %s", id)
	}
	j.mu.Lock()
	if !terminal(j.state) {
		j.state = StateCanceled
	}
	j.mu.Unlock()
	j.cancel()
	if err := s.journal(j); err != nil {
		return JobStatus{}, err
	}
	j.notify()
	return s.status(j), nil
}

// Status returns a job's snapshot.
func (s *Service) Status(id string) (JobStatus, bool) {
	j, ok := s.lookup(id)
	if !ok {
		return JobStatus{}, false
	}
	return s.status(j), true
}

// List returns every job's snapshot in submission order.
func (s *Service) List() []JobStatus {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = s.status(j)
	}
	return out
}

// Report returns a finished job's persisted report bytes.
func (s *Service) Report(id string, asJSON bool) ([]byte, error) {
	j, ok := s.lookup(id)
	if !ok {
		return nil, fmt.Errorf("fleetsvc: no job %s", id)
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state != StateDone {
		return nil, fmt.Errorf("fleetsvc: job %s is %s, not done", id, state)
	}
	return os.ReadFile(s.reportPath(id, asJSON))
}

// Cohorts returns the running per-cohort fold of a job's completed
// chunks, merged in chunk-index order (deterministic for a given
// done-count). Cohorts no completed chunk has touched are omitted.
func (s *Service) Cohorts(id string) ([]CohortProgress, error) {
	j, ok := s.lookup(id)
	if !ok {
		return nil, fmt.Errorf("fleetsvc: no job %s", id)
	}
	grid := j.fjob.Cohorts()
	accum := make([]fleet.CohortAccum, len(grid))
	var memo []power.CacheStats
	var batch []sim.OpCacheStats
	var fuse []task.FuseStats
	j.mu.Lock()
	for _, cp := range j.partials {
		if cp == nil {
			continue
		}
		for i := range cp.Cohorts {
			if cp.Cohorts[i].Devices == 0 {
				continue
			}
			if err := accum[i].Merge(&cp.Cohorts[i]); err != nil {
				j.mu.Unlock()
				return nil, err
			}
		}
		// Engine-stat sidecars fold like the fleet's own Fold: per-cohort
		// deltas sum; snapshot-valued Entries fields don't.
		if len(cp.Memo) == len(grid) {
			if memo == nil {
				memo = make([]power.CacheStats, len(grid))
			}
			for i, m := range cp.Memo {
				m.Entries = 0
				memo[i].Add(m)
			}
		}
		if len(cp.Ops) == len(grid) {
			if batch == nil {
				batch = make([]sim.OpCacheStats, len(grid))
			}
			for i, o := range cp.Ops {
				o.Entries = 0
				batch[i].Add(o)
			}
		}
		if len(cp.Fuse) == len(grid) {
			if fuse == nil {
				fuse = make([]task.FuseStats, len(grid))
			}
			for i, f := range cp.Fuse {
				fuse[i].Add(f)
			}
		}
	}
	j.mu.Unlock()
	var out []CohortProgress
	for i := range accum {
		if accum[i].Devices == 0 {
			continue
		}
		p := CohortProgress{
			Cohort:   grid[i].String(),
			Devices:  accum[i].Devices,
			Events:   accum[i].Events,
			Accuracy: accum[i].Accuracy.Mean,
		}
		if memo != nil {
			m := memo[i]
			p.Memo = &m
		}
		if batch != nil {
			b := batch[i]
			p.Batch = &b
		}
		if fuse != nil {
			f := fuse[i]
			p.Fuse = &f
		}
		out = append(out, p)
	}
	return out, nil
}

// Watch subscribes to a job's progress nudges. The returned channel
// receives (coalesced) signals whenever the job's status changes; stop
// unsubscribes. ok is false for unknown jobs.
func (s *Service) Watch(id string) (ch <-chan struct{}, stop func(), ok bool) {
	j, found := s.lookup(id)
	if !found {
		return nil, nil, false
	}
	c := make(chan struct{}, 1)
	j.mu.Lock()
	w := j.nextW
	j.nextW++
	j.watchers[w] = c
	j.mu.Unlock()
	return c, func() {
		j.mu.Lock()
		delete(j.watchers, w)
		j.mu.Unlock()
	}, true
}

func (s *Service) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Service) status(j *job) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:       j.id,
		State:    j.state,
		Spec:     j.spec,
		SpecHash: j.fjob.SpecHash(),
		Chunks:   j.fjob.NumChunks(),
		Done:     j.loaded + j.computed,
		Loaded:   j.loaded,
		Computed: j.computed,
		Devices:  j.devices,
		Error:    j.errMsg,
	}
}

// journal persists a job's current record atomically.
func (s *Service) journal(j *job) error {
	j.mu.Lock()
	rec := jobRecord{
		ID:       j.id,
		Spec:     j.spec,
		SpecHash: j.fjob.SpecHash(),
		State:    j.state,
		Error:    j.errMsg,
	}
	j.mu.Unlock()
	return s.writeJournal(&rec)
}

func (s *Service) writeJournal(rec *jobRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("fleetsvc: journaling %s: %w", rec.ID, err)
	}
	data = append(data, '\n')
	if err := writeFileAtomic(s.jobsDir(), rec.ID+".json", data, s.store.seq.Add(1)); err != nil {
		return fmt.Errorf("fleetsvc: journaling %s: %w", rec.ID, err)
	}
	return nil
}
