package fleetsvc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"capybara/internal/fleet"
)

// The chunked engine: the in-process fleet.Job path with the store in
// the loop. Load every chunk the store already holds, compute only the
// rest, and checkpoint each computed chunk the moment it folds — after
// a crash at any instant, a rerun repeats at most the chunks that were
// in flight. The final fold is fleet.Fold in fixed chunk-index order,
// so the report is byte-identical to an uninterrupted fleet.Run
// whatever mixture of loaded and computed partials produced it.

// RunStats reports how a chunked run's work divided between the store
// and fresh computation — the observable the cross-run-memo tests (and
// the resume smoke) assert on.
type RunStats struct {
	Chunks   int // total chunks in the job
	Loaded   int // chunks folded from store checkpoints
	Computed int // chunks simulated in this run
}

// Progress is one engine progress observation, emitted after every
// chunk that completes (loaded or computed).
type Progress struct {
	Done    int // chunks complete so far
	Chunks  int // total chunks
	Loaded  int
	Devices int // devices in completed chunks
	// Partial is the chunk that just completed. Observers may retain
	// it (the engine never mutates a completed partial) but must not
	// modify it.
	Partial *fleet.ChunkPartial
}

// RunWithStore executes cfg in-process, resuming from and checkpointing
// to store (which may be nil: a plain uncheckpointed run). onProgress,
// when non-nil, observes every completed chunk; it is called from the
// engine's fold goroutine only, never concurrently.
func RunWithStore(ctx context.Context, store *Store, cfg fleet.Config, onProgress func(Progress)) (*fleet.Result, RunStats, error) {
	job, err := fleet.NewJob(cfg)
	if err != nil {
		return nil, RunStats{}, err
	}
	workers := cfg.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	n := job.NumChunks()
	stats := RunStats{Chunks: n}
	partials := make([]*fleet.ChunkPartial, n)
	hash := job.SpecHash()
	devices := 0
	emit := func(cp *fleet.ChunkPartial) {
		if onProgress != nil {
			onProgress(Progress{
				Done:    stats.Loaded + stats.Computed,
				Chunks:  n,
				Loaded:  stats.Loaded,
				Devices: devices,
				Partial: cp,
			})
		}
	}

	// Phase 1: fold everything the store already holds. Corrupt entries
	// are quarantined inside Get and come back ErrNotFound, landing on
	// the compute list like any other miss.
	var missing []int
	for ci := 0; ci < n; ci++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		if store != nil {
			cp, err := store.Get(hash, ci)
			if err == nil {
				partials[ci] = cp
				stats.Loaded++
				lo, hi := job.ChunkBounds(ci)
				devices += hi - lo
				emit(cp)
				continue
			}
			if !errors.Is(err, ErrNotFound) {
				return nil, stats, err
			}
		}
		missing = append(missing, ci)
	}

	// Phase 2: compute the rest on a local worker pool, checkpointing
	// each chunk as it lands. Completion order is scheduling-dependent;
	// only the final index-ordered fold is canonical.
	start := time.Now()
	if len(missing) > 0 {
		if err := computeChunks(ctx, job, store, workers, missing, func(cp *fleet.ChunkPartial) {
			partials[cp.Chunk] = cp
			stats.Computed++
			lo, hi := job.ChunkBounds(cp.Chunk)
			devices += hi - lo
			emit(cp)
		}); err != nil {
			return nil, stats, err
		}
	}

	res, err := job.Fold(partials)
	if err != nil {
		return nil, stats, err
	}
	res.Workers = workers
	res.Elapsed = time.Since(start)
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.DevicesSec = float64(cfg.N) / secs
	}
	return res, stats, nil
}

// computeChunks runs the given chunk indices on `workers` goroutines,
// each owning one recycled Scratch, calling fold (single-goroutine) for
// every completed chunk. A chunk is checkpointed to the store before it
// is folded, so a crash after fold observes it never loses it. The
// first error (simulation, checkpoint write, or ctx) cancels the rest.
func computeChunks(ctx context.Context, job *fleet.Job, store *Store, workers int, chunks []int, fold func(*fleet.ChunkPartial)) error {
	if workers > len(chunks) {
		workers = len(chunks)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	work := make(chan int)
	done := make(chan *fleet.ChunkPartial)
	errs := make(chan error, workers+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := job.NewScratch()
			for ci := range work {
				cp, err := job.RunChunk(ctx, ci, ws)
				if err == nil && store != nil {
					if perr := store.Put(job.SpecHash(), ci, cp); perr != nil {
						err = fmt.Errorf("checkpointing chunk %d: %w", ci, perr)
					}
				}
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					cancel()
					return
				}
				select {
				case done <- cp:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(work)
		for _, ci := range chunks {
			select {
			case work <- ci:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()

	folded := 0
	for cp := range done {
		fold(cp)
		folded++
	}
	if err := ctx.Err(); err != nil && folded < len(chunks) {
		// Prefer the root cause a worker recorded over the bare ctx err.
		select {
		case werr := <-errs:
			return werr
		default:
		}
		return err
	}
	select {
	case werr := <-errs:
		return werr
	default:
	}
	if folded < len(chunks) {
		return fmt.Errorf("fleetsvc: %d of %d chunks unaccounted for", len(chunks)-folded, len(chunks))
	}
	return nil
}
