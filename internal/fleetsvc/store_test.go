package fleetsvc

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"capybara/internal/fleet"
)

// testJob is small (N=48 covers each of the 48 cohorts once) but
// decomposes into 6 chunks, enough for prefix/corruption schedules.
func testJob(t *testing.T) *fleet.Job {
	t.Helper()
	job, err := fleet.NewJob(testFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func testFleetConfig() fleet.Config {
	return fleet.Config{N: 48, Seed: 3, Scale: 0.05, ChunkSize: 8}
}

func runChunk(t *testing.T, job *fleet.Job, ci int) *fleet.ChunkPartial {
	t.Helper()
	cp, err := job.RunChunk(context.Background(), ci, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// entryPath locates the on-disk file backing (hash, ci).
func entryPath(s *Store, hash string, ci int) string {
	return filepath.Join(s.Dir(), "partials", hash, chunkFile(ci))
}

// TestStoreRoundTrip: Put then Get returns a partial that folds to the
// exact bytes of the original.
func TestStoreRoundTrip(t *testing.T) {
	job := testJob(t)
	s := openStore(t)
	hash := job.SpecHash()

	direct := make([]*fleet.ChunkPartial, job.NumChunks())
	loaded := make([]*fleet.ChunkPartial, job.NumChunks())
	for ci := 0; ci < job.NumChunks(); ci++ {
		direct[ci] = runChunk(t, job, ci)
		if err := s.Put(hash, ci, direct[ci]); err != nil {
			t.Fatal(err)
		}
		cp, err := s.Get(hash, ci)
		if err != nil {
			t.Fatal(err)
		}
		loaded[ci] = cp
	}

	want := renderFold(t, job, direct)
	got := renderFold(t, job, loaded)
	if want != got {
		t.Fatalf("report from stored partials differs:\n--- direct ---\n%s--- stored ---\n%s", want, got)
	}

	completed, err := s.Completed(hash)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != job.NumChunks() {
		t.Fatalf("Completed lists %d chunks, want %d", len(completed), job.NumChunks())
	}
	for i, ci := range completed {
		if ci != i {
			t.Fatalf("Completed[%d] = %d", i, ci)
		}
	}
	if st := s.Stats(); st.Puts != int64(job.NumChunks()) || st.Hits != int64(job.NumChunks()) || st.Quarantined != 0 {
		t.Fatalf("stats %+v after clean round trip", st)
	}
}

func renderFold(t *testing.T, job *fleet.Job, partials []*fleet.ChunkPartial) string {
	t.Helper()
	res, err := job.Fold(partials)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestStoreMiss: an absent entry is ErrNotFound, counted as a miss.
func TestStoreMiss(t *testing.T) {
	job := testJob(t)
	s := openStore(t)
	if _, err := s.Get(job.SpecHash(), 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing entry: %v", err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats %+v after one miss", st)
	}
}

// corruptions is the table of byte-level faults a store entry must
// survive (by detection, not by tolerance).
var corruptions = []struct {
	name   string
	mangle func(data []byte) []byte
}{
	{"truncated header", func(d []byte) []byte { return d[:entryHeaderLen/2] }},
	{"truncated payload", func(d []byte) []byte { return d[:len(d)-3] }},
	{"empty", func(d []byte) []byte { return nil }},
	{"magic flipped", func(d []byte) []byte { d[0] ^= 0xff; return d }},
	{"header hash flipped", func(d []byte) []byte { d[8] ^= 0x01; return d }},
	{"chunk index flipped", func(d []byte) []byte { d[79] ^= 0x01; return d }},
	{"length flipped", func(d []byte) []byte { d[87] ^= 0x01; return d }},
	{"checksum flipped", func(d []byte) []byte { d[100] ^= 0x01; return d }},
	{"payload bit flip", func(d []byte) []byte { d[entryHeaderLen+1] ^= 0x40; return d }},
	{"payload appended", func(d []byte) []byte { return append(d, 0xaa) }},
}

// TestStoreCorruptionQuarantined: every corruption in the table is
// detected on Get, the entry moves to quarantine/, and the slot reads
// as ErrNotFound afterwards — the recompute path.
func TestStoreCorruptionQuarantined(t *testing.T) {
	job := testJob(t)
	hash := job.SpecHash()
	cp := runChunk(t, job, 2)

	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := openStore(t)
			if err := s.Put(hash, 2, cp); err != nil {
				t.Fatal(err)
			}
			path := entryPath(s, hash, 2)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, err := s.Get(hash, 2); !errors.Is(err, ErrNotFound) {
				t.Fatalf("corrupt entry returned %v, want ErrNotFound", err)
			}
			if st := s.Stats(); st.Quarantined != 1 {
				t.Fatalf("stats %+v: corrupt entry not quarantined", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry still present: %v", err)
			}
			quarantined, err := filepath.Glob(filepath.Join(s.Dir(), "quarantine", "*.bad"))
			if err != nil || len(quarantined) != 1 {
				t.Fatalf("quarantine dir holds %d entries (%v), want 1", len(quarantined), err)
			}
			// The slot is free to recompute and refill.
			if _, err := s.Get(hash, 2); !errors.Is(err, ErrNotFound) {
				t.Fatalf("quarantined slot returned %v, want ErrNotFound", err)
			}
			if err := s.Put(hash, 2, cp); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(hash, 2); err != nil {
				t.Fatalf("refilled slot: %v", err)
			}
		})
	}
}

// TestStoreWrongHashEntry: an entry copied under a different spec's
// directory (a misfiled checkpoint) is rejected by its header hash even
// though the file itself is internally consistent.
func TestStoreWrongHashEntry(t *testing.T) {
	job := testJob(t)
	hashA := job.SpecHash()
	// A second spec: a different seed changes the hash, not the shape.
	cfgB := testFleetConfig()
	cfgB.Seed = 4
	jobB, err := fleet.NewJob(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	hashB := jobB.SpecHash()
	if hashA == hashB {
		t.Fatal("test needs two distinct spec hashes")
	}

	s := openStore(t)
	if err := s.Put(hashA, 1, runChunk(t, job, 1)); err != nil {
		t.Fatal(err)
	}
	// Misfile it under hashB.
	if err := os.MkdirAll(filepath.Join(s.Dir(), "partials", hashB), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(entryPath(s, hashA, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entryPath(s, hashB, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Get(hashB, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("misfiled entry returned %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats %+v: misfiled entry not quarantined", st)
	}
	// The original, correctly filed entry is untouched.
	if _, err := s.Get(hashA, 1); err != nil {
		t.Fatalf("original entry: %v", err)
	}
}

// TestStoreBadHashArgument: malformed spec hashes are rejected at the
// API instead of producing odd paths.
func TestStoreBadHashArgument(t *testing.T) {
	s := openStore(t)
	for _, h := range []string{"", "short", "../../../../etc/passwd-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", "ABCDEF0000000000000000000000000000000000000000000000000000000000"} {
		if _, err := s.Get(h, 0); err == nil || errors.Is(err, ErrNotFound) {
			t.Fatalf("hash %q accepted by Get: %v", h, err)
		}
		if err := s.Put(h, 0, &fleet.ChunkPartial{}); err == nil {
			t.Fatalf("hash %q accepted by Put", h)
		}
	}
}
