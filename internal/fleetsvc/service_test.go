package fleetsvc

import (
	"bytes"
	"context"
	"testing"
	"time"

	"capybara/internal/fleet"
)

// The service correctness suite. The claims under test, in order:
//
//  1. Crash/resume byte-identity: a daemon killed mid-run and restarted
//     over the same store finishes the job and serves a report
//     byte-identical to an uninterrupted single-process run.
//  2. Any-prefix resume (property): whatever prefix of chunks was
//     checkpointed before the crash — zero, some, or all — the resumed
//     run loads exactly that prefix, computes exactly the rest, and
//     folds to identical bytes.
//  3. Cross-run memo: a second job with the same spec loads every chunk
//     from the first job's checkpoints and computes nothing.
//  4. Isolation: concurrent jobs with different specs never fold each
//     other's partials.

// baseline renders cfg's canonical CSV report with no store in the
// loop: the bytes every checkpointed/resumed path must reproduce.
func baseline(t *testing.T, cfg fleet.Config) []byte {
	t.Helper()
	res, _, err := RunWithStore(context.Background(), nil, cfg, nil)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openService(t *testing.T, dir string, cfg ServiceConfig) *Service {
	t.Helper()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return svc
}

// waitStatus blocks until pred holds for the job's status (watch nudges
// plus a slow poll, so a nudge lost to coalescing cannot hang the test).
func waitStatus(t *testing.T, svc *Service, id string, what string, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	ch, stop, ok := svc.Watch(id)
	if !ok {
		t.Fatalf("waitStatus: no job %s", id)
	}
	defer stop()
	deadline := time.After(60 * time.Second)
	for {
		st, ok := svc.Status(id)
		if !ok {
			t.Fatalf("waitStatus: job %s vanished", id)
		}
		if pred(st) {
			return st
		}
		if terminal(st.State) {
			t.Fatalf("waitStatus: job %s reached %s (error %q) while waiting for %s", id, st.State, st.Error, what)
		}
		select {
		case <-ch:
		case <-time.After(50 * time.Millisecond):
		case <-deadline:
			t.Fatalf("waitStatus: job %s stuck at %+v waiting for %s", id, st, what)
		}
	}
}

func waitDone(t *testing.T, svc *Service, id string) JobStatus {
	t.Helper()
	ch, stop, ok := svc.Watch(id)
	if !ok {
		t.Fatalf("waitDone: no job %s", id)
	}
	defer stop()
	deadline := time.After(60 * time.Second)
	for {
		st, ok := svc.Status(id)
		if !ok {
			t.Fatalf("waitDone: job %s vanished", id)
		}
		if terminal(st.State) {
			return st
		}
		select {
		case <-ch:
		case <-time.After(50 * time.Millisecond):
		case <-deadline:
			t.Fatalf("waitDone: job %s stuck at %+v", id, st)
		}
	}
}

// TestServiceCrashResumeByteIdentity is the headline e2e: submit, let
// at least two chunks checkpoint, kill the service the way a SIGKILL
// would land (Close interrupts mid-chunk and leaves the journal saying
// running), restart over the same directory, and require the resumed
// job to finish with a report byte-identical to an uninterrupted run —
// having reloaded at least one checkpoint rather than starting over.
func TestServiceCrashResumeByteIdentity(t *testing.T) {
	cfg := fleet.Config{N: 240, Seed: 7, Scale: 0.05, ChunkSize: 8} // 30 chunks
	want := baseline(t, cfg)

	dir := t.TempDir()
	svc := openService(t, dir, ServiceConfig{Jobs: 1})
	st, err := svc.Submit(fleet.Spec{N: cfg.N, Seed: cfg.Seed, Scale: cfg.Scale, ChunkSize: cfg.ChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, st.ID, "two checkpoints", func(s JobStatus) bool { return s.Done >= 2 })
	svc.Close() // crash: journal still says running, partial checkpoints on disk

	svc2 := openService(t, dir, ServiceConfig{Jobs: 1})
	defer svc2.Close()
	fin := waitDone(t, svc2, st.ID)
	if fin.State != StateDone {
		t.Fatalf("resumed job finished %s: %s", fin.State, fin.Error)
	}
	if fin.Loaded < 1 {
		t.Fatalf("resumed job loaded %d chunks, want >= 1 (resume credit)", fin.Loaded)
	}
	if fin.Loaded+fin.Computed != fin.Chunks {
		t.Fatalf("loaded %d + computed %d != %d chunks", fin.Loaded, fin.Computed, fin.Chunks)
	}
	got, err := svc2.Report(st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- resumed\n%s--- baseline\n%s", got, want)
	}
}

// TestServiceResumeAcrossManyCrashes kills and restarts the service
// after every couple of checkpoints until the job completes — a crash
// at many distinct points of the same run, each resume folding the
// union of all prior generations' checkpoints.
func TestServiceResumeAcrossManyCrashes(t *testing.T) {
	cfg := fleet.Config{N: 120, Seed: 3, Scale: 0.05, ChunkSize: 8} // 15 chunks
	want := baseline(t, cfg)

	dir := t.TempDir()
	var finalSvc *Service
	var fin JobStatus
	id := ""
	for gen := 0; gen < 20; gen++ {
		svc := openService(t, dir, ServiceConfig{Jobs: 1})
		if id == "" {
			st, err := svc.Submit(fleet.Spec{N: cfg.N, Seed: cfg.Seed, Scale: cfg.Scale, ChunkSize: cfg.ChunkSize})
			if err != nil {
				t.Fatal(err)
			}
			id = st.ID
		}
		st, ok := svc.Status(id)
		if !ok {
			t.Fatalf("generation %d lost job %s", gen, id)
		}
		if terminal(st.State) {
			finalSvc, fin = svc, st
			break
		}
		// Wait for fresh compute, not just reloaded checkpoints, so every
		// generation is guaranteed to push the frontier before it dies.
		st = waitStatus(t, svc, id, "fresh compute", func(s JobStatus) bool { return terminal(s.State) || s.Computed >= 2 })
		if terminal(st.State) {
			finalSvc, fin = svc, st
			break
		}
		svc.Close() // crash this generation
	}
	if finalSvc == nil {
		t.Fatal("job never completed across 20 generations")
	}
	defer finalSvc.Close()
	if fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}
	got, err := finalSvc.Report(id, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("multi-crash report differs from uninterrupted run")
	}
}

// TestAnyPrefixResume is the property underlying every crash test: for
// EVERY possible checkpoint prefix k (a crash can land between any two
// chunk completions), a run over a store holding exactly chunks [0, k)
// loads k, computes the remaining n-k, and folds to identical bytes.
func TestAnyPrefixResume(t *testing.T) {
	cfg := fleet.Config{N: 48, Seed: 11, Scale: 0.05, ChunkSize: 8} // 6 chunks
	want := baseline(t, cfg)
	job, err := fleet.NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := job.NumChunks()
	hash := job.SpecHash()

	// Precompute every chunk once; prefixes reuse them.
	partials := make([]*fleet.ChunkPartial, n)
	for ci := 0; ci < n; ci++ {
		cp, err := job.RunChunk(context.Background(), ci, nil)
		if err != nil {
			t.Fatal(err)
		}
		partials[ci] = cp
	}

	for k := 0; k <= n; k++ {
		store, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		for ci := 0; ci < k; ci++ {
			if err := store.Put(hash, ci, partials[ci]); err != nil {
				t.Fatal(err)
			}
		}
		res, stats, err := RunWithStore(context.Background(), store, cfg, nil)
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		if stats.Loaded != k || stats.Computed != n-k {
			t.Fatalf("prefix %d: loaded %d computed %d, want %d and %d", k, stats.Loaded, stats.Computed, k, n-k)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("prefix %d: report differs from baseline", k)
		}
	}
}

// TestServiceCrossRunMemo: the store doubles as a cross-run memo — a
// second job with the same spec is satisfied entirely from the first
// job's checkpoints, with zero fresh computation.
func TestServiceCrossRunMemo(t *testing.T) {
	spec := fleet.Spec{N: 48, Seed: 5, Scale: 0.05, ChunkSize: 8}
	svc := openService(t, t.TempDir(), ServiceConfig{})
	defer svc.Close()

	first, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitDone(t, svc, first.ID)
	if st1.State != StateDone {
		t.Fatalf("first job: %s (%s)", st1.State, st1.Error)
	}
	if st1.Computed != st1.Chunks || st1.Loaded != 0 {
		t.Fatalf("first job on an empty store: computed %d loaded %d, want %d and 0", st1.Computed, st1.Loaded, st1.Chunks)
	}

	second, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitDone(t, svc, second.ID)
	if st2.State != StateDone {
		t.Fatalf("second job: %s (%s)", st2.State, st2.Error)
	}
	if st2.SpecHash != st1.SpecHash {
		t.Fatalf("same spec hashed differently: %s vs %s", st2.SpecHash, st1.SpecHash)
	}
	if st2.Computed != 0 || st2.Loaded != st2.Chunks {
		t.Fatalf("memo miss: second job computed %d loaded %d, want 0 and %d", st2.Computed, st2.Loaded, st2.Chunks)
	}
	r1, err := svc.Report(first.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc.Report(second.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Fatal("memo-satisfied report differs from computed report")
	}
}

// TestServiceConcurrentJobIsolation runs two different-spec jobs at
// once through one shared store and requires each report to match its
// own single-job baseline — concurrent jobs must never fold each
// other's partials, and the content-addressed store must keep their
// checkpoints apart.
func TestServiceConcurrentJobIsolation(t *testing.T) {
	cfgA := fleet.Config{N: 64, Seed: 21, Scale: 0.05, ChunkSize: 8}
	cfgB := fleet.Config{N: 64, Seed: 22, Scale: 0.05, ChunkSize: 8}
	wantA := baseline(t, cfgA)
	wantB := baseline(t, cfgB)
	if bytes.Equal(wantA, wantB) {
		t.Fatal("test needs distinguishable baselines; seeds 21/22 collided")
	}

	svc := openService(t, t.TempDir(), ServiceConfig{MaxConcurrent: 2})
	defer svc.Close()
	stA, err := svc.Submit(fleet.Spec{N: cfgA.N, Seed: cfgA.Seed, Scale: cfgA.Scale, ChunkSize: cfgA.ChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	stB, err := svc.Submit(fleet.Spec{N: cfgB.N, Seed: cfgB.Seed, Scale: cfgB.Scale, ChunkSize: cfgB.ChunkSize})
	if err != nil {
		t.Fatal(err)
	}
	if stA.SpecHash == stB.SpecHash {
		t.Fatal("different seeds produced the same spec hash")
	}
	finA := waitDone(t, svc, stA.ID)
	finB := waitDone(t, svc, stB.ID)
	if finA.State != StateDone || finB.State != StateDone {
		t.Fatalf("jobs finished %s/%s (%s %s)", finA.State, finB.State, finA.Error, finB.Error)
	}
	gotA, err := svc.Report(stA.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := svc.Report(stB.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, wantA) {
		t.Fatal("job A's report drifted under concurrency")
	}
	if !bytes.Equal(gotB, wantB) {
		t.Fatal("job B's report drifted under concurrency")
	}
}

// TestServiceCancel: canceling a running job reaches the canceled
// state, stays there across a restart, and never serves a report.
func TestServiceCancel(t *testing.T) {
	dir := t.TempDir()
	svc := openService(t, dir, ServiceConfig{Jobs: 1})
	st, err := svc.Submit(fleet.Spec{N: 240, Seed: 9, Scale: 0.05, ChunkSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, st.ID, "first checkpoint", func(s JobStatus) bool { return s.Done >= 1 })
	got, err := svc.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("cancel left job %s", got.State)
	}
	if _, err := svc.Report(st.ID, false); err == nil {
		t.Fatal("canceled job served a report")
	}
	svc.Close()

	// A successor must not resurrect a canceled job.
	svc2 := openService(t, dir, ServiceConfig{Jobs: 1})
	defer svc2.Close()
	st2, ok := svc2.Status(st.ID)
	if !ok {
		t.Fatalf("canceled job %s forgotten after restart", st.ID)
	}
	if st2.State != StateCanceled {
		t.Fatalf("canceled job resurrected as %s", st2.State)
	}
}

// TestServiceSubmitRejectsBadSpec: validation errors surface at submit
// time and never enter the queue or the journal.
func TestServiceSubmitRejectsBadSpec(t *testing.T) {
	svc := openService(t, t.TempDir(), ServiceConfig{})
	defer svc.Close()
	if _, err := svc.Submit(fleet.Spec{N: 0}); err == nil {
		t.Fatal("submit accepted N=0")
	}
	if _, err := svc.Submit(fleet.Spec{N: 8, Scale: 2.0}); err == nil {
		t.Fatal("submit accepted scale=2.0")
	}
	if got := len(svc.List()); got != 0 {
		t.Fatalf("rejected submits left %d jobs in the queue", got)
	}
}
