// Package fleetsvc turns the one-shot fleet engine into a persistent,
// resumable service: a content-addressed on-disk store of completed
// chunk partials, a chunked execution engine that loads checkpoints
// before computing, a job queue whose state survives process death, and
// an HTTP/JSON API over all of it (cmd/capyfleet -serve-http).
//
// The store is the load-bearing piece. A chunk partial is a pure
// function of (spec, chunk index) — PR 5's shard protocol already leans
// on that for re-leasing — so persisting partials keyed by
// SpecHash/chunk gives three properties at once:
//
//   - crash resume: a killed run's completed chunks are on disk; a
//     restart folds them and computes only the remainder, and the final
//     report is byte-identical to an uninterrupted run (gob preserves
//     float bit patterns; the fold order is fixed by chunk index);
//   - cross-run memoization: two jobs with the same SpecHash share
//     chunk work through the store, whichever ran first;
//   - cross-binary safety: a binary whose physics drifted derives a
//     different SpecHash and simply misses — it can never fold a stale
//     partial, the same guarantee the shard handshake enforces.
//
// Every entry carries a checksummed header; a truncated, bit-flipped,
// or misfiled entry is detected, quarantined (moved aside, never
// deleted — it is evidence), and recomputed rather than folded.
package fleetsvc

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"bytes"

	"capybara/internal/fleet"
)

// Store layout under the root directory:
//
//	partials/<spechash>/<chunk index, 8 digits>.cp   checkpointed partials
//	quarantine/<unique name>.bad                     corrupt entries, moved aside
//	jobs/<id>.json, jobs/<id>.report.{csv,json}      service job journal (service.go)
//
// Entry format (entryHeaderLen bytes, then the gob payload):
//
//	[0:8)    magic "CAPYCP1\n"
//	[8:72)   spec hash, 64 hex bytes
//	[72:80)  chunk index, big-endian uint64
//	[80:88)  payload length, big-endian uint64
//	[88:120) SHA-256 of the payload
//
// The header fields are each validated against what the reader already
// knows (the hash and chunk it asked for, the file's actual size), and
// the checksum validates the payload, so a flip of any byte anywhere in
// the entry is detected.

const (
	entryMagic     = "CAPYCP1\n"
	entryHeaderLen = 120
	hashLen        = 64
	// maxEntryPayload bounds a payload before it is trusted: a corrupt
	// length field must not drive allocation. Matches the shard frame
	// bound — a real partial is orders of magnitude smaller.
	maxEntryPayload = 16 << 20
)

// ErrNotFound reports a partial that is not in the store (including one
// that was quarantined on read): the caller recomputes.
var ErrNotFound = errors.New("fleetsvc: partial not in store")

// errCorrupt is the internal verdict that triggers quarantine; callers
// of Get only ever see ErrNotFound for it.
var errCorrupt = errors.New("fleetsvc: corrupt store entry")

// StoreStats counts store traffic since Open. Quarantined is the number
// of corrupt entries detected and moved aside — in a healthy store it
// stays zero.
type StoreStats struct {
	Hits        int64
	Misses      int64
	Puts        int64
	Quarantined int64
}

// Store is a content-addressed checkpoint store for chunk partials.
// All methods are safe for concurrent use; writes are atomic (temp file
// + rename), so a crash mid-Put leaves either the complete entry or no
// entry, never a torn one.
type Store struct {
	dir string

	seq   atomic.Int64 // temp-file uniquifier
	stats struct {
		hits, misses, puts, quarantined atomic.Int64
	}

	// mkdir guards first-use creation of per-hash directories.
	mkdir sync.Mutex
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("fleetsvc: empty store directory")
	}
	for _, sub := range []string{"partials", "quarantine", "jobs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("fleetsvc: opening store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:        s.stats.hits.Load(),
		Misses:      s.stats.misses.Load(),
		Puts:        s.stats.puts.Load(),
		Quarantined: s.stats.quarantined.Load(),
	}
}

func validHash(hash string) error {
	if len(hash) != hashLen {
		return fmt.Errorf("fleetsvc: spec hash %q: want %d hex chars", hash, hashLen)
	}
	for i := 0; i < len(hash); i++ {
		c := hash[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("fleetsvc: spec hash %q: not lowercase hex", hash)
		}
	}
	return nil
}

func (s *Store) hashDir(hash string) string {
	return filepath.Join(s.dir, "partials", hash)
}

func chunkFile(ci int) string {
	return fmt.Sprintf("%08d.cp", ci)
}

// EncodeEntry renders one store entry: checksummed header + gob
// payload. Exposed (package-level) so tests and the fuzz target build
// entries without a Store.
func EncodeEntry(hash string, ci int, cp *fleet.ChunkPartial) ([]byte, error) {
	if err := validHash(hash); err != nil {
		return nil, err
	}
	if ci < 0 {
		return nil, fmt.Errorf("fleetsvc: negative chunk index %d", ci)
	}
	var payload bytes.Buffer
	if err := fleet.EncodePartial(&payload, cp); err != nil {
		return nil, err
	}
	if payload.Len() > maxEntryPayload {
		return nil, fmt.Errorf("fleetsvc: partial payload %d bytes exceeds limit %d", payload.Len(), maxEntryPayload)
	}
	buf := make([]byte, entryHeaderLen+payload.Len())
	copy(buf[0:8], entryMagic)
	copy(buf[8:8+hashLen], hash)
	binary.BigEndian.PutUint64(buf[72:80], uint64(ci))
	binary.BigEndian.PutUint64(buf[80:88], uint64(payload.Len()))
	sum := sha256.Sum256(payload.Bytes())
	copy(buf[88:120], sum[:])
	copy(buf[entryHeaderLen:], payload.Bytes())
	return buf, nil
}

// DecodeEntry validates and decodes one store entry against the
// (hash, chunk) the caller expects. Any mismatch — magic, hash, index,
// length, checksum, or payload decode — returns an error wrapping
// errCorrupt; it never panics, whatever the bytes (FuzzPartialDecode
// pins that).
func DecodeEntry(data []byte, hash string, ci int) (*fleet.ChunkPartial, error) {
	if len(data) < entryHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the %d-byte header", errCorrupt, len(data), entryHeaderLen)
	}
	if string(data[0:8]) != entryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", errCorrupt, data[0:8])
	}
	if got := string(data[8 : 8+hashLen]); got != hash {
		return nil, fmt.Errorf("%w: entry is for spec %s, not %s", errCorrupt, got, hash)
	}
	if got := binary.BigEndian.Uint64(data[72:80]); got != uint64(ci) {
		return nil, fmt.Errorf("%w: entry is for chunk %d, not %d", errCorrupt, got, ci)
	}
	plen := binary.BigEndian.Uint64(data[80:88])
	if plen > maxEntryPayload || plen != uint64(len(data)-entryHeaderLen) {
		return nil, fmt.Errorf("%w: payload length %d does not match %d entry bytes", errCorrupt, plen, len(data)-entryHeaderLen)
	}
	payload := data[entryHeaderLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[88:120]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", errCorrupt)
	}
	cp, err := fleet.DecodePartial(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	if cp.Chunk != ci {
		return nil, fmt.Errorf("%w: payload labeled chunk %d, not %d", errCorrupt, cp.Chunk, ci)
	}
	return cp, nil
}

// Put checkpoints chunk ci's partial under hash. Concurrent Puts of the
// same (hash, ci) — two jobs sharing a spec — are safe: the payloads
// are bit-identical by the purity argument, and rename is atomic, so
// whichever lands last wins without a reader ever seeing a torn entry.
func (s *Store) Put(hash string, ci int, cp *fleet.ChunkPartial) error {
	data, err := EncodeEntry(hash, ci, cp)
	if err != nil {
		return err
	}
	dir := s.hashDir(hash)
	s.mkdir.Lock()
	err = os.MkdirAll(dir, 0o755)
	s.mkdir.Unlock()
	if err != nil {
		return fmt.Errorf("fleetsvc: put chunk %d: %w", ci, err)
	}
	if err := writeFileAtomic(dir, chunkFile(ci), data, s.seq.Add(1)); err != nil {
		return fmt.Errorf("fleetsvc: put chunk %d: %w", ci, err)
	}
	s.stats.puts.Add(1)
	return nil
}

// Get loads chunk ci's partial for hash. A missing entry returns
// ErrNotFound. A corrupt entry (truncated, bit-flipped, misfiled, or
// undecodable) is quarantined — moved into quarantine/ for inspection —
// and also returns ErrNotFound, so callers uniformly recompute.
func (s *Store) Get(hash string, ci int) (*fleet.ChunkPartial, error) {
	if err := validHash(hash); err != nil {
		return nil, err
	}
	path := filepath.Join(s.hashDir(hash), chunkFile(ci))
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.stats.misses.Add(1)
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("fleetsvc: get chunk %d: %w", ci, err)
	}
	cp, err := DecodeEntry(data, hash, ci)
	if err != nil {
		if errors.Is(err, errCorrupt) {
			s.quarantine(path, hash, ci, err)
			s.stats.misses.Add(1)
			return nil, ErrNotFound
		}
		return nil, err
	}
	s.stats.hits.Add(1)
	return cp, nil
}

// Completed lists the chunk indices with an entry present for hash, in
// ascending order. Presence is judged by filename only — the cheap scan
// a resuming job uses to size its work; each entry is still fully
// validated by the Get that follows.
func (s *Store) Completed(hash string) ([]int, error) {
	if err := validHash(hash); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(s.hashDir(hash))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("fleetsvc: scanning store: %w", err)
	}
	var out []int
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".cp") {
			continue
		}
		ci, err := strconv.Atoi(strings.TrimSuffix(name, ".cp"))
		if err != nil {
			continue
		}
		out = append(out, ci)
	}
	sort.Ints(out)
	return out, nil
}

// quarantine moves a corrupt entry out of the partials tree, with a
// sidecar note recording why. Failure to move (e.g. a concurrent
// quarantine already won) is not fatal — the entry will simply be
// re-detected on the next read if it is still there.
func (s *Store) quarantine(path, hash string, ci int, cause error) {
	dst := filepath.Join(s.dir, "quarantine",
		fmt.Sprintf("%s-%08d-%d.bad", hash, ci, s.seq.Add(1)))
	if err := os.Rename(path, dst); err != nil {
		return
	}
	s.stats.quarantined.Add(1)
	_ = os.WriteFile(dst+".reason", []byte(cause.Error()+"\n"), 0o644)
}

// writeFileAtomic writes name under dir via a unique temp file and
// rename, so readers only ever observe complete files.
func writeFileAtomic(dir, name string, data []byte, seq int64) error {
	tmp := filepath.Join(dir, fmt.Sprintf(".tmp-%d-%d-%s", os.Getpid(), seq, name))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
