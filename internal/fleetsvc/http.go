package fleetsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"capybara/internal/fleet"
)

// HTTP/JSON API over a Service, mounted by capyfleet -serve-http:
//
//	POST   /api/v1/jobs               submit {"n","seed","scale","chunk_size"} → 201 + status
//	GET    /api/v1/jobs               list all jobs
//	GET    /api/v1/jobs/{id}          one job's status (?cohorts=1 adds the running per-cohort fold)
//	GET    /api/v1/jobs/{id}/report   finished report, CSV (?format=json for JSON); 409 until done
//	GET    /api/v1/jobs/{id}/stream   NDJSON status events until the job reaches a terminal state
//	POST   /api/v1/jobs/{id}/cancel   cancel a queued/running job
//	GET    /api/v1/healthz            liveness + queue depth
//
// Every JSON response is either a JobStatus (see service.go), a list
// wrapper, or {"error": "..."} with a matching HTTP status.

// SubmitRequest is the POST /jobs body: the canonical report spec.
// Execution knobs (parallelism, caches) are deliberately absent — they
// belong to the daemon, and they cannot change a byte of the report.
type SubmitRequest struct {
	N         int     `json:"n"`
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`
	ChunkSize int     `json:"chunk_size"`
}

// statusResponse is JobStatus plus the optional cohort fold.
type statusResponse struct {
	JobStatus
	Cohorts []CohortProgress `json:"cohorts,omitempty"`
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/healthz", s.handleHealth)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	states := map[string]int{}
	for _, st := range s.List() {
		states[st.State]++
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "jobs": states})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad submit body: %v", err)
		return
	}
	st, err := s.Submit(fleet.Spec{N: req.N, Seed: req.Seed, Scale: req.Scale, ChunkSize: req.ChunkSize})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %s", id)
		return
	}
	resp := statusResponse{JobStatus: st}
	if r.URL.Query().Get("cohorts") == "1" {
		cohorts, err := s.Cohorts(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp.Cohorts = cohorts
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %s", id)
		return
	}
	asJSON := false
	switch f := r.URL.Query().Get("format"); f {
	case "", "csv":
	case "json":
		asJSON = true
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want csv or json)", f)
		return
	}
	data, err := s.Report(id, asJSON)
	if err != nil {
		if st.State == StateFailed || st.State == StateCanceled {
			writeError(w, http.StatusConflict, "job %s is %s: %s", id, st.State, st.Error)
		} else if st.State != StateDone {
			writeError(w, http.StatusConflict, "job %s is %s; report is available when done", id, st.State)
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	if asJSON {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/csv")
	}
	_, _ = w.Write(data)
}

// handleStream writes NDJSON status events: one line per observed
// change (coalesced under load), always ending with a terminal-state
// line. ?cohorts=1 embeds the running per-cohort fold in every event.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, stop, ok := s.Watch(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %s", id)
		return
	}
	defer stop()
	withCohorts := r.URL.Query().Get("cohorts") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	emit := func() (terminalState bool, err error) {
		st, ok := s.Status(id)
		if !ok {
			return true, errors.New("job vanished")
		}
		resp := statusResponse{JobStatus: st}
		if withCohorts {
			if cohorts, cerr := s.Cohorts(id); cerr == nil {
				resp.Cohorts = cohorts
			}
		}
		if err := enc.Encode(resp); err != nil {
			return true, err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return terminal(st.State), nil
	}
	// finish upholds the stream contract after the 200 is committed:
	// every stream ends with a terminal-state line. A clean terminal
	// event already is one; an emit failure (the job vanished, or the
	// encode broke mid-object) gets a synthetic failed-state line
	// instead of a silent truncation the client would misread as a
	// dropped connection. Best-effort by construction — if the
	// connection itself is gone the write is moot.
	finish := func(err error) {
		if err == nil {
			return
		}
		_ = enc.Encode(JobStatus{ID: id, State: StateFailed, Error: fmt.Sprintf("stream aborted: %v", err)})
		if flusher != nil {
			flusher.Flush()
		}
	}

	if done, err := emit(); done || err != nil {
		finish(err)
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ch:
			if done, err := emit(); done || err != nil {
				finish(err)
				return
			}
		}
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Status(id); !ok {
		writeError(w, http.StatusNotFound, "no job %s", id)
		return
	}
	st, err := s.Cancel(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
