package core

import (
	"math"
	"testing"

	"capybara/internal/device"
	"capybara/internal/storage"
	"capybara/internal/task"
	"capybara/internal/units"
)

// measureProgram is a two-task program with known costs: a cheap
// compute task and an expensive radio task.
func measureProgram() *task.Program {
	radio := device.CC2650()
	return task.MustProgram("cheap",
		&task.Task{Name: "cheap", Config: "small", Run: func(c *task.Ctx) task.Next {
			c.Compute(80_000) // 10 ms at 8 Mops/s
			if c.WordOr("rounds", 0) >= 4 {
				return "expensive"
			}
			c.SetWord("rounds", c.WordOr("rounds", 0)+1)
			return "cheap"
		}},
		&task.Task{Name: "expensive", Burst: "big", Run: func(c *task.Ctx) task.Next {
			c.Transmit(radio, 25)
			return task.Halt
		}},
	)
}

func TestMeasureProgram(t *testing.T) {
	ms, err := MeasureProgram(baseConfig(Continuous), measureProgram(), 60)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Measurement{}
	for _, m := range ms {
		byName[m.Task] = m
	}
	cheap, ok1 := byName["cheap"]
	expensive, ok2 := byName["expensive"]
	if !ok1 || !ok2 {
		t.Fatalf("missing measurements: %+v", ms)
	}
	if cheap.Runs != 5 || expensive.Runs != 1 {
		t.Fatalf("runs: cheap %d, expensive %d", cheap.Runs, expensive.Runs)
	}
	// The compute task runs 10 ms at the MCU's active power.
	if math.Abs(float64(cheap.Time)-0.010) > 1e-9 {
		t.Fatalf("cheap mean time = %v, want 10 ms", cheap.Time)
	}
	mcu := device.MSP430FR5969()
	if math.Abs(float64(cheap.Power)-float64(mcu.ActivePower)) > 1e-9 {
		t.Fatalf("cheap mean power = %v, want %v", cheap.Power, mcu.ActivePower)
	}
	// The radio task draws far more.
	if expensive.Power < 10*cheap.Power {
		t.Fatalf("expensive power %v should dwarf cheap %v", expensive.Power, cheap.Power)
	}
	if expensive.Energy <= cheap.Energy {
		t.Fatal("energy ordering wrong")
	}
}

func TestMeasureProgramNoProgress(t *testing.T) {
	prog := task.MustProgram("t", &task.Task{Name: "t", Run: func(c *task.Ctx) task.Next {
		return task.Halt
	}})
	// A zero horizon lets no task run at all: that is an error.
	if _, err := MeasureProgram(baseConfig(Continuous), prog, 0); err == nil {
		t.Fatal("expected no-progress error")
	}
}

func TestMeasureThenPlanThenRun(t *testing.T) {
	// The full §3+§8 loop: measure the program on continuous power,
	// derive a plan, build a Capy-P platform from it, and run the same
	// program on harvested energy.
	prog := measureProgram()
	ms, err := MeasureProgram(baseConfig(Continuous), prog, 60)
	if err != nil {
		t.Fatal(err)
	}
	sys := testPowerSystem()
	plan, err := PlanFromProfiles(sys, storage.EDLC, prog, ms, 30, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	// The plan must name both measured tasks as modes… but the program
	// annotations reference "small"/"big", so rebuild the program with
	// the planned mode names (the planner names modes after tasks).
	radio := device.CC2650()
	planned := task.MustProgram("cheap",
		&task.Task{Name: "cheap", Config: "cheap", Run: func(c *task.Ctx) task.Next {
			c.Compute(80_000)
			if c.WordOr("rounds", 0) >= 4 {
				return "expensive"
			}
			c.SetWord("rounds", c.WordOr("rounds", 0)+1)
			return "cheap"
		}},
		&task.Task{Name: "expensive", Burst: "expensive", Run: func(c *task.Ctx) task.Next {
			c.Transmit(radio, 25)
			return task.Halt
		}},
	)
	inst, err := New(Config{
		Variant:  CapyP,
		Source:   sys.Source,
		MCU:      device.MSP430FR5969(),
		Base:     plan.Banks[0],
		Switched: plan.Banks[1:],
		Modes:    plan.Modes,
	}, planned)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(300); err != nil {
		t.Fatal(err)
	}
	// The program halts only after the radio task succeeds.
	if cur := inst.Engine.CurrentTask(); cur != "cheap" {
		t.Fatalf("program did not complete: stuck at %q", cur)
	}
	if inst.Engine.Profile["expensive"].Runs != 1 {
		t.Fatalf("radio task runs = %d", inst.Engine.Profile["expensive"].Runs)
	}
}

func TestTaskProfileHelpers(t *testing.T) {
	p := &task.TaskProfile{Runs: 2, Time: 4, Energy: 8 * units.MilliJoule}
	if p.MeanTime() != 2 {
		t.Fatalf("MeanTime = %v", p.MeanTime())
	}
	if p.MeanEnergy() != 4*units.MilliJoule {
		t.Fatalf("MeanEnergy = %v", p.MeanEnergy())
	}
	if p.MeanPower() != 2*units.MilliWatt {
		t.Fatalf("MeanPower = %v", p.MeanPower())
	}
	zero := &task.TaskProfile{}
	if zero.MeanTime() != 0 || zero.MeanEnergy() != 0 || zero.MeanPower() != 0 {
		t.Fatal("zero profile means should be zero")
	}
}

func TestProfileCountsFailures(t *testing.T) {
	// A task that browns out twice before succeeding shows 2 failures
	// and 1 run.
	attempt := 0
	prog := task.MustProgram("flaky",
		&task.Task{Name: "flaky", Config: "small", Run: func(c *task.Ctx) task.Next {
			attempt++
			if attempt < 3 {
				c.Transmit(device.CC2650(), 250) // too big for the small bank
			}
			c.Compute(1000)
			return task.Halt
		}},
	)
	inst, err := New(baseConfig(CapyP), prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(1e5); err != nil {
		t.Fatal(err)
	}
	p := inst.Engine.Profile["flaky"]
	if p.Failures != 2 || p.Runs != 1 {
		t.Fatalf("profile = %+v, want 2 failures 1 run", p)
	}
}
