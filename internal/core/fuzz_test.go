package core

import (
	"fmt"
	"math/rand"
	"testing"

	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/reservoir"
	"capybara/internal/storage"
	"capybara/internal/task"
	"capybara/internal/units"
)

// TestRuntimeRingInvariantFuzz runs randomized ring programs (each task
// increments its own durable counter and passes control on) under
// randomized power conditions and annotations, then checks the
// wavefront invariant: in a ring, counters in visit order can differ by
// at most one, regardless of how many power failures and implicit
// reconfigurations interrupted execution. Any violation means a task
// transition committed non-atomically.
func TestRuntimeRingInvariantFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		variant := []Variant{Fixed, CapyR, CapyP}[rng.Intn(3)]

		names := make([]string, n)
		tasks := make([]*task.Task, n)
		for i := 0; i < n; i++ {
			names[i] = fmt.Sprintf("t%d", i)
		}
		for i := 0; i < n; i++ {
			i := i
			next := task.Next(names[(i+1)%n])
			tk := &task.Task{Name: names[i], Run: func(c *task.Ctx) task.Next {
				c.Compute(float64(1000 + rng.Intn(50000)))
				key := "count." + names[i]
				c.SetWord(key, c.WordOr(key, 0)+1)
				return next
			}}
			// Random annotations from the two-mode set.
			switch rng.Intn(4) {
			case 0:
				tk.Config = "small"
			case 1:
				tk.Config = "big"
			case 2:
				tk.Burst = "big"
			case 3:
				tk.PreburstBurst, tk.PreburstExec = "big", "small"
			}
			tasks[i] = tk
		}
		prog := task.MustProgram(names[0], tasks...)

		// Random power: steady or with one blackout window.
		var src harvest.Source = harvest.RegulatedSupply{
			Max: units.Power(1+rng.Float64()*9) * units.MilliWatt, V: 3.0,
		}
		if rng.Intn(2) == 0 {
			start := units.Seconds(rng.Float64() * 100)
			src = harvest.SolarPanel{
				PeakPower:          units.Power(1+rng.Float64()*9) * units.MilliWatt,
				OpenCircuitVoltage: 3.0,
				Light: harvest.BlackoutTrace(harvest.ConstantTrace(1),
					[2]units.Seconds{start, units.Seconds(30 + rng.Float64()*300)}),
			}
		}

		kind := reservoir.NormallyOpen
		if rng.Intn(2) == 0 {
			kind = reservoir.NormallyClosed
		}
		inst, err := New(Config{
			Variant: variant,
			Source:  src,
			MCU:     device.MSP430FR5969(),
			Base: storage.MustBank("base",
				storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
				storage.GroupFor(storage.Tantalum, 330*units.MicroFarad)),
			Switched:   []*storage.Bank{storage.MustBank("big", storage.GroupOf(storage.EDLC, 3))},
			SwitchKind: kind,
			Modes: []Mode{
				{Name: "small", Mask: 0b001},
				{Name: "big", Mask: 0b010},
			},
		}, prog)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		horizon := units.Seconds(200 + rng.Float64()*400)
		if err := inst.Run(horizon); err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}

		counts := make([]uint64, n)
		for i, name := range names {
			counts[i] = inst.Dev.NV.WordOr("count."+name, 0)
		}
		// Wavefront invariant: counters are non-increasing around the
		// ring from the entry, and the entry's counter exceeds the last
		// task's by at most one.
		for i := 1; i < n; i++ {
			if counts[i] > counts[i-1] {
				t.Fatalf("trial %d (%v, %d tasks): counter order violated: %v",
					trial, variant, n, counts)
			}
			if counts[i-1]-counts[i] > 1 {
				t.Fatalf("trial %d (%v): wavefront gap > 1: %v", trial, variant, counts)
			}
		}
		if counts[0]-counts[n-1] > 1 {
			t.Fatalf("trial %d (%v): ring closure violated: %v", trial, variant, counts)
		}
	}
}

// TestRuntimePointerAlwaysValidFuzz interrupts runs at random horizons
// and checks the durable task pointer still names a defined task — the
// resume point after any power failure.
func TestRuntimePointerAlwaysValidFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		prog := task.MustProgram("a",
			&task.Task{Name: "a", Config: "small", Run: func(c *task.Ctx) task.Next {
				c.Compute(20000)
				return "b"
			}},
			&task.Task{Name: "b", Burst: "big", Run: func(c *task.Ctx) task.Next {
				c.Compute(20000)
				return "a"
			}},
		)
		cfg := baseConfig(CapyP)
		inst, err := New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Run(units.Seconds(1 + rng.Float64()*20)); err != nil {
			t.Fatal(err)
		}
		cur := inst.Engine.CurrentTask()
		if _, ok := prog.Task(cur); !ok {
			t.Fatalf("trial %d: dangling task pointer %q", trial, cur)
		}
	}
}
