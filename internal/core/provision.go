package core

import (
	"fmt"

	"capybara/internal/power"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// Provision finds the smallest bank of tech units that lets a load
// drawing load watts for duration seconds run to completion from vtop,
// on power system sys. It implements the paper's provisioning
// methodology (§3, §6.1): "we ran the task while progressively
// increasing the capacity on the board until the task completed" —
// exponential growth followed by a binary search for the minimum.
func Provision(sys *power.System, tech storage.Technology, load units.Power, duration units.Seconds, vtop units.Voltage) (storage.Group, error) {
	if vtop <= 0 {
		vtop = DefaultVTop
	}
	completes := func(n int) bool {
		b := storage.MustBank("trial", storage.GroupOf(tech, n))
		b.SetVoltage(vtop) // SetVoltage clamps at the rated voltage
		_, ok := sys.Discharge(b, load, duration)
		return ok
	}
	// Exponential growth until the task completes.
	const maxUnits = 1 << 20
	hi := 1
	for ; hi <= maxUnits; hi *= 2 {
		if completes(hi) {
			break
		}
	}
	if hi > maxUnits {
		return storage.Group{}, fmt.Errorf(
			"core: task (%v for %v) infeasible with %s even at %d units — ESR or voltage limits the extraction",
			load, duration, tech.Name, maxUnits)
	}
	// Binary search for the minimal count in (hi/2, hi].
	lo := hi / 2 // known to fail (or 0)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if completes(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return storage.GroupOf(tech, hi), nil
}

// TaskEnergy estimates the energy a task consumes at the storage
// terminals: load power over duration, inflated by the output
// converter's loss and quiescent overhead. This mirrors the paper's
// continuous-power current-sense estimation approach (§3).
func TaskEnergy(sys *power.System, load units.Power, duration units.Seconds) units.Energy {
	return units.Energy(float64(sys.StoreDraw(load)) * float64(duration))
}

// Derate over-provisions a group by margin (e.g. 0.2 for +20 %) to
// account for capacitor aging — the standard derating practice §3
// mentions.
func Derate(g storage.Group, margin float64) storage.Group {
	if margin <= 0 {
		return g
	}
	n := int(float64(g.Count)*(1+margin) + 0.999999)
	if n == g.Count {
		n++
	}
	return storage.GroupOf(g.Tech, n)
}
