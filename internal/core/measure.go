package core

import (
	"fmt"

	"capybara/internal/power"
	"capybara/internal/storage"
	"capybara/internal/task"
	"capybara/internal/units"
)

// This file closes the paper's provisioning loop: §3 prescribes
// measuring task energy on continuous power, and §8 asks for automatic
// capacity estimation and bank allocation. MeasureProgram runs a
// program on the continuously-powered reference configuration and
// collects per-task energy profiles; PlanFromProfiles feeds them to the
// §8 planner. Together: measure → plan → build.

// Measurement is one task's observed cost on continuous power.
type Measurement struct {
	Task   string
	Runs   int
	Time   units.Seconds
	Energy units.Energy
	Power  units.Power
}

// MeasureProgram executes prog on a continuously-powered instance until
// horizon and returns per-task measurements. Tasks that never ran are
// absent from the result — lengthen the horizon or adjust the program's
// inputs so every task executes at least once.
func MeasureProgram(cfg Config, prog *task.Program, horizon units.Seconds) ([]Measurement, error) {
	cfg.Variant = Continuous
	inst, err := New(cfg, prog)
	if err != nil {
		return nil, err
	}
	if err := inst.Run(horizon); err != nil {
		return nil, err
	}
	var out []Measurement
	for _, name := range prog.Names() {
		p, ok := inst.Engine.Profile[name]
		if !ok || p.Runs == 0 {
			continue
		}
		out = append(out, Measurement{
			Task:   name,
			Runs:   p.Runs,
			Time:   p.MeanTime(),
			Energy: p.MeanEnergy(),
			Power:  p.MeanPower(),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no task completed within %v on continuous power", horizon)
	}
	return out, nil
}

// PlanFromProfiles converts measurements into planner demands, using
// the program's annotations to mark reactive (burst) tasks, and runs
// the §8 planner. Demands inherit maxRecharge for non-reactive tasks.
func PlanFromProfiles(sys *power.System, tech storage.Technology, prog *task.Program,
	measurements []Measurement, maxRecharge units.Seconds, vtop units.Voltage) (*Plan, error) {
	demands := make([]TaskDemand, 0, len(measurements))
	for _, m := range measurements {
		t, ok := prog.Task(m.Task)
		if !ok {
			return nil, fmt.Errorf("core: measurement for unknown task %q", m.Task)
		}
		d := TaskDemand{
			Name:     m.Task,
			Load:     m.Power,
			Duration: m.Time,
			Reactive: t.Burst != task.ModeNone,
		}
		if !d.Reactive {
			d.MaxRecharge = maxRecharge
		}
		demands = append(demands, d)
	}
	return PlanModes(sys, tech, demands, vtop)
}
