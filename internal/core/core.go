// Package core implements the Capybara runtime (paper §4): the mapping
// from declarative task energy modes to reservoir configurations, and
// the power-management policy that reconfigures the hardware, pauses to
// charge, and pre-charges energy bursts.
//
// The runtime is a task.PowerManager. Four variants are provided,
// matching the paper's evaluation systems (§6):
//
//   - Continuous — the continuously-powered reference board;
//   - Fixed — a statically-provisioned, fixed-capacity power system;
//   - CapyR — Capybara without burst support: every reconfiguration
//     recharges on the critical path;
//   - CapyP — complete Capybara with preburst/burst pre-charging.
package core

import (
	"fmt"

	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/sim"
	"capybara/internal/storage"
	"capybara/internal/task"
	"capybara/internal/units"
)

// DefaultVTop is the default charge-complete voltage for a mode. The
// input booster regulates bank charging to this setpoint unless a mode
// overrides it.
const DefaultVTop units.Voltage = 2.4

// Mode binds an energy-mode identifier to a concrete reservoir
// configuration: which banks are active and how high they charge.
type Mode struct {
	Name task.EnergyMode
	// Mask selects the active banks (bit 0 is the always-on base
	// bank; the runtime sets it implicitly).
	Mask uint64
	// VTop is the charge-complete voltage; zero means DefaultVTop.
	VTop units.Voltage
}

func (m Mode) vTop() units.Voltage {
	if m.VTop > 0 {
		return m.VTop
	}
	return DefaultVTop
}

// ModeTable indexes modes by name.
type ModeTable map[task.EnergyMode]Mode

// NewModeTable validates and indexes modes.
func NewModeTable(modes ...Mode) (ModeTable, error) {
	t := make(ModeTable, len(modes))
	for _, m := range modes {
		if m.Name == task.ModeNone {
			return nil, fmt.Errorf("core: mode with empty name")
		}
		if _, dup := t[m.Name]; dup {
			return nil, fmt.Errorf("core: duplicate mode %q", m.Name)
		}
		t[m.Name] = m
	}
	return t, nil
}

// Variant selects the power-management policy.
type Variant int

const (
	// Continuous is the continuously-powered reference board ("Pwr").
	Continuous Variant = iota
	// Fixed is the statically-provisioned fixed-capacity baseline.
	Fixed
	// CapyR is Capybara without burst support (recharges after every
	// reconfiguration, §6: "Capy-R").
	CapyR
	// CapyP is the complete Capybara system ("Capy-P").
	CapyP
)

func (v Variant) String() string {
	switch v {
	case Continuous:
		return "Cont"
	case Fixed:
		return "Fixed"
	case CapyR:
		return "Capy-R"
	default:
		return "Capy-P"
	}
}

// Runtime is the Capybara runtime system: it reconfigures the reservoir
// to match task energy modes and manages charge pauses. It implements
// task.PowerManager.
type Runtime struct {
	Dev     *sim.Device
	Modes   ModeTable
	Variant Variant

	// Reconfigs counts explicit mode reconfigurations; Precharges
	// counts preburst charge-ahead operations.
	Reconfigs  int
	Precharges int

	// modeMemo memoizes recent ModeTable lookups. The table is fixed
	// after New and the task loop resolves the same one or two mode
	// names for long stretches (a preburst task probes its burst and
	// exec modes every iteration), so the map probe on every task
	// iteration collapses to a couple of string compares.
	modeMemo [2]struct {
		name task.EnergyMode
		m    Mode
		ok   bool
	}
	modeNext uint8
}

// FuseCounters exposes the power-manager bookkeeping counters a fused
// engine step must track: the fused stepper (task.StepFuser) records
// their deltas at the leader and applies them to followers without
// re-running Prepare. Implements the fuser's optional counter
// interface; a PowerManager without it is simply not fusible.
func (r *Runtime) FuseCounters() (reconfigs, precharges *int) {
	return &r.Reconfigs, &r.Precharges
}

// mode resolves name against the mode table through the memo.
func (r *Runtime) mode(name task.EnergyMode) (Mode, bool) {
	for i := range r.modeMemo {
		if e := &r.modeMemo[i]; e.name == name {
			return e.m, e.ok
		}
	}
	m, ok := r.Modes[name]
	e := &r.modeMemo[r.modeNext]
	r.modeNext = 1 - r.modeNext
	e.name, e.m, e.ok = name, m, ok
	return m, ok
}

var _ task.PowerManager = (*Runtime)(nil)

// Prepare implements task.PowerManager.
func (r *Runtime) Prepare(t *task.Task, alive bool, deadline units.Seconds) bool {
	if r.Variant == Continuous {
		if !alive {
			return r.Dev.Boot()
		}
		return true
	}
	if !alive && !r.bringUp(deadline) {
		return false
	}
	switch r.Variant {
	case Fixed:
		// A fixed power system has nothing to reconfigure: the device
		// runs until the buffer empties, then bringUp recharges it.
		return true
	case CapyR:
		return r.prepareCapyR(t, deadline)
	default:
		return r.prepareCapyP(t, deadline)
	}
}

// bringUp restores an off device: charge whatever configuration is
// physically active (which after a long outage may be the switches'
// default, not what software last configured — §5.2), then boot.
func (r *Runtime) bringUp(deadline units.Seconds) bool {
	for r.Dev.Now() < deadline {
		target := r.activeVTop()
		if _, ok := r.Dev.ChargeTo(target, deadline-r.Dev.Now()); !ok {
			return false
		}
		if r.Dev.Boot() {
			return true
		}
	}
	return false
}

// activeVTop returns the charge target for the physically-active
// configuration: the matching mode's VTop, or the default.
func (r *Runtime) activeVTop() units.Voltage {
	mask := r.Dev.Array.ActiveMask() &^ 1
	for _, m := range r.Modes {
		if m.Mask&^1 == mask {
			return m.vTop()
		}
	}
	return DefaultVTop
}

// effectiveMode resolves which mode a task runs in under Capy-R, which
// lacks burst support: burst degrades to config on the burst mode, and
// preburst degrades to config on the exec mode (no charging ahead).
func effectiveModeCapyR(t *task.Task) task.EnergyMode {
	switch {
	case t.Burst != task.ModeNone:
		return t.Burst
	case t.PreburstExec != task.ModeNone:
		return t.PreburstExec
	default:
		return t.Config
	}
}

func (r *Runtime) prepareCapyR(t *task.Task, deadline units.Seconds) bool {
	name := effectiveModeCapyR(t)
	if name == task.ModeNone {
		return true
	}
	m, ok := r.mode(name)
	if !ok {
		return true // unmapped mode: run on the current configuration
	}
	return r.enterMode(m, m.vTop(), deadline)
}

func (r *Runtime) prepareCapyP(t *task.Task, deadline units.Seconds) bool {
	// Burst: re-activate the pre-charged banks and run immediately —
	// no charge pause (§4.2).
	if t.Burst != task.ModeNone {
		if m, ok := r.mode(t.Burst); ok {
			r.configure(m.Mask)
		}
		return true
	}
	// Preburst: charge the burst mode ahead of time, then configure
	// and charge the exec mode, then run (§4.2's four steps).
	if t.PreburstBurst != task.ModeNone {
		bm, okB := r.mode(t.PreburstBurst)
		em, okE := r.mode(t.PreburstExec)
		ceiling := bm.vTop() - reservoir.PrechargeDeficit
		if okB {
			// The switch circuit can pre-charge a bank only to a
			// strictly lower voltage than a direct charge (§6.4).
			if !r.enterMode(bm, ceiling, deadline) {
				return false
			}
			r.Precharges++
		}
		if okE {
			if !r.enterMode(em, em.vTop(), deadline) {
				return false
			}
		}
		if okB && okE {
			// The same switch-circuit limitation bounds what a
			// deactivated bank can hold through its pre-charge path:
			// charge-sharing with the exec banks cannot pump it above
			// the ceiling.
			for i := 1; i < r.Dev.Array.NumBanks(); i++ {
				bit := uint64(1) << uint(i)
				if bm.Mask&bit == 0 || em.Mask&bit != 0 {
					continue
				}
				if b := r.Dev.Array.Bank(i); b.Voltage() > ceiling {
					b.SetVoltage(ceiling)
				}
			}
		}
		return true
	}
	if t.Config != task.ModeNone {
		if m, ok := r.mode(t.Config); ok {
			return r.enterMode(m, m.vTop(), deadline)
		}
	}
	return true
}

// enterMode reconfigures to mode m (if needed) and pauses to charge the
// newly configured buffer to target. When the configuration is already
// active no pause occurs: the device keeps running on its remaining
// charge.
func (r *Runtime) enterMode(m Mode, target units.Voltage, deadline units.Seconds) bool {
	want := m.Mask | 1
	if r.Dev.Array.ActiveMask() == want {
		return true
	}
	r.configure(want)
	for r.Dev.Now() < deadline {
		elapsed, ok := r.Dev.ChargeTo(target, deadline-r.Dev.Now())
		if !ok {
			return false
		}
		if elapsed == 0 {
			// The configuration was already charged: no pause, the
			// processor never powered down, no reboot needed.
			return true
		}
		// Charging happened with the processor off; boot back up. A
		// failed boot (e.g. a switch reverted mid-charge and shrank the
		// buffer) loops back to recharge.
		if r.Dev.Boot() {
			return true
		}
	}
	return false
}

func (r *Runtime) configure(mask uint64) {
	if err := r.Dev.Configure(mask | 1); err != nil {
		// Masks are validated when the instance is built; an error here
		// is a programming bug, not a runtime condition.
		panic(fmt.Sprintf("core: reconfiguration failed: %v", err))
	}
	r.Reconfigs++
}

// Config assembles a complete platform: harvester, banks, MCU, modes,
// and the runtime variant.
type Config struct {
	Variant Variant
	Source  harvest.Source
	MCU     device.MCU
	// Base is the always-connected bank; Switched are the banks behind
	// reconfiguration switches (bank i is addressed by mask bit i+1).
	Base     *storage.Bank
	Switched []*storage.Bank
	// SwitchKind picks the switches' unpowered default (NO or NC).
	SwitchKind reservoir.SwitchKind
	// Modes declares the platform's energy modes.
	Modes []Mode
	// Trace, when non-nil, records the voltage trajectory.
	Trace *sim.Trace
	// Tune adjusts the power system after construction (optional).
	Tune func(*power.System)
	// NoMemo disables the charge-solve memo cache. Memoization is on by
	// default because cache hits are bit-identical to direct solves
	// (power/memo.go) — results never depend on this flag, only speed.
	NoMemo bool
	// Memo, when non-nil, attaches a caller-owned cache instead of a
	// fresh per-instance one (the fleet engine shares one per worker).
	// Ignored when NoMemo is set.
	Memo *power.SegmentCache
	// Ops, when non-nil, attaches a caller-owned device-op replay
	// cache (the fleet engine's batch path; see sim.OpCache). Replays
	// are byte-identical to direct solves, so attaching one never
	// changes results — only speed.
	Ops *sim.OpCache
}

// Instance is a ready-to-run platform: device, runtime, and engine.
type Instance struct {
	Dev     *sim.Device
	Runtime *Runtime
	Engine  *task.Engine
}

// New builds an Instance executing prog on the configured platform. It
// validates that every mode annotation in the program resolves and that
// every mode's mask addresses real banks.
func New(cfg Config, prog *task.Program) (*Instance, error) {
	modes, err := NewModeTable(cfg.Modes...)
	if err != nil {
		return nil, err
	}
	arr := reservoir.NewArray(cfg.Base, cfg.SwitchKind, cfg.Switched...)
	for _, m := range modes {
		if (m.Mask|1)>>uint(arr.NumBanks()) != 0 {
			return nil, fmt.Errorf("core: mode %q mask %#x exceeds %d banks", m.Name, m.Mask, arr.NumBanks())
		}
	}
	for _, name := range prog.Names() {
		t, _ := prog.Task(name)
		for _, ref := range []task.EnergyMode{t.Config, t.Burst, t.PreburstBurst, t.PreburstExec} {
			if ref != task.ModeNone {
				if _, ok := modes[ref]; !ok {
					return nil, fmt.Errorf("core: task %s references undefined mode %q", name, ref)
				}
			}
		}
	}
	sys := power.NewSystem(cfg.Source)
	if cfg.Tune != nil {
		cfg.Tune(sys)
	}
	if !cfg.NoMemo {
		if cfg.Memo != nil {
			sys.Memo = cfg.Memo
		} else {
			sys.Memo = power.NewSegmentCache(0)
		}
	}
	dev := sim.NewDevice(sys, arr, cfg.MCU)
	dev.Continuous = cfg.Variant == Continuous
	dev.Trace = cfg.Trace
	dev.Ops = cfg.Ops
	rt := &Runtime{Dev: dev, Modes: modes, Variant: cfg.Variant}
	eng := task.NewEngine(dev, prog, rt)
	return &Instance{Dev: dev, Runtime: rt, Engine: eng}, nil
}

// Run executes the instance until horizon.
func (i *Instance) Run(horizon units.Seconds) error {
	return i.Engine.Run(horizon)
}
