package core

import (
	"testing"

	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/reservoir"
	"capybara/internal/storage"
	"capybara/internal/task"
	"capybara/internal/units"
)

func smallBank() *storage.Bank {
	return storage.MustBank("small",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 330*units.MicroFarad))
}

func bigBank() *storage.Bank {
	return storage.MustBank("big", storage.GroupOf(storage.EDLC, 6)) // 45 mF
}

func baseConfig(v Variant) Config {
	return Config{
		Variant:    v,
		Source:     harvest.RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0},
		MCU:        device.MSP430FR5969(),
		Base:       smallBank(),
		Switched:   []*storage.Bank{bigBank()},
		SwitchKind: reservoir.NormallyOpen,
		Modes: []Mode{
			{Name: "small", Mask: 0b001},
			{Name: "big", Mask: 0b010},
		},
	}
}

func TestModeTableValidation(t *testing.T) {
	if _, err := NewModeTable(Mode{Name: "a"}, Mode{Name: "a"}); err == nil {
		t.Error("duplicate mode accepted")
	}
	if _, err := NewModeTable(Mode{Name: ""}); err == nil {
		t.Error("empty mode name accepted")
	}
	if _, err := NewModeTable(Mode{Name: "a"}, Mode{Name: "b"}); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	prog := task.MustProgram("t", &task.Task{Name: "t", Config: "small", Run: func(*task.Ctx) task.Next { return task.Halt }})
	cfg := baseConfig(CapyP)
	cfg.Modes = []Mode{{Name: "small", Mask: 0b100}} // bank 2 does not exist
	if _, err := New(cfg, prog); err == nil {
		t.Error("out-of-range mask accepted")
	}
	cfg = baseConfig(CapyP)
	cfg.Modes = []Mode{{Name: "other", Mask: 0b010}}
	if _, err := New(cfg, prog); err == nil {
		t.Error("undefined mode reference accepted")
	}
}

func TestVariantStrings(t *testing.T) {
	want := map[Variant]string{Continuous: "Cont", Fixed: "Fixed", CapyR: "Capy-R", CapyP: "Capy-P"}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
}

func TestContinuousVariantRunsWithoutCharging(t *testing.T) {
	radio := device.CC2650()
	var txAt units.Seconds
	prog := task.MustProgram("tx",
		&task.Task{Name: "tx", Config: "big", Run: func(c *task.Ctx) task.Next {
			txAt = c.Transmit(radio, 25)
			return task.Halt
		}})
	inst, err := New(baseConfig(Continuous), prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(1e6); err != nil {
		t.Fatal(err)
	}
	// Only boot time and the packet itself elapse — no charging.
	if txAt > 0.1 {
		t.Fatalf("continuous tx at %v, want well under 100 ms", txAt)
	}
	if inst.Dev.Stats.TimeCharging != 0 {
		t.Fatalf("continuous device charged for %v", inst.Dev.Stats.TimeCharging)
	}
}

func TestFixedVariantRechargesAfterDepletion(t *testing.T) {
	cycles := 0
	prog := task.MustProgram("spin",
		&task.Task{Name: "spin", Run: func(c *task.Ctx) task.Next {
			c.Compute(200_000)
			cycles++
			if cycles >= 25 {
				return task.Halt
			}
			return "spin"
		}})
	cfg := baseConfig(Fixed)
	cfg.Switched = nil
	cfg.Modes = nil
	inst, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if cycles != 25 {
		t.Fatalf("cycles = %d", cycles)
	}
	// The small bank cannot hold 25 compute quanta: the device must
	// have died and recharged at least once.
	if inst.Dev.Stats.Boots < 2 {
		t.Fatalf("boots = %d, want ≥ 2 (duty cycling)", inst.Dev.Stats.Boots)
	}
	if inst.Runtime.Reconfigs != 0 {
		t.Fatalf("fixed system reconfigured %d times", inst.Runtime.Reconfigs)
	}
}

func TestCapyPReconfiguresBetweenModes(t *testing.T) {
	hits := map[string]int{}
	prog := task.MustProgram("sense",
		&task.Task{Name: "sense", Config: "small", Run: func(c *task.Ctx) task.Next {
			hits["sense"]++
			c.Compute(10_000)
			return "send"
		}},
		&task.Task{Name: "send", Config: "big", Run: func(c *task.Ctx) task.Next {
			hits["send"]++
			c.Transmit(device.CC2650(), 25)
			return task.Halt
		}})
	inst, err := New(baseConfig(CapyP), prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if hits["sense"] != 1 || hits["send"] != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if inst.Runtime.Reconfigs == 0 {
		t.Fatal("no reconfiguration for the big mode")
	}
	// After entering the big mode the array must have bank 1 active.
	if mask := inst.Dev.Array.ActiveMask(); mask != 0b011 {
		t.Fatalf("final mask = %#b, want 0b011", mask)
	}
}

func TestSameModeNoChargePause(t *testing.T) {
	// Consecutive tasks in the same mode must not pause to recharge:
	// the device keeps running on its remaining buffer.
	prog := task.MustProgram("a",
		&task.Task{Name: "a", Config: "small", Run: func(c *task.Ctx) task.Next {
			c.Compute(1000)
			return "b"
		}},
		&task.Task{Name: "b", Config: "small", Run: func(c *task.Ctx) task.Next {
			c.Compute(1000)
			return task.Halt
		}})
	inst, err := New(baseConfig(CapyP), prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(1e6); err != nil {
		t.Fatal(err)
	}
	// Exactly one charge (bring-up); no mid-program pauses.
	if inst.Dev.Stats.Boots != 1 {
		t.Fatalf("boots = %d, want 1", inst.Dev.Stats.Boots)
	}
}

// burstProgram models the paper's reactive pattern: proc pre-charges
// the big mode ("the event"), then the burst task spends it
// immediately. procEnd records when the event fired; txAt when the
// alert packet finished.
func burstProgram(radio device.Radio, procEnd, txAt *units.Seconds) *task.Program {
	return task.MustProgram("proc",
		&task.Task{Name: "proc", PreburstBurst: "big", PreburstExec: "small", Run: func(c *task.Ctx) task.Next {
			c.Compute(50_000)
			*procEnd = c.Now()
			return "alert"
		}},
		&task.Task{Name: "alert", Burst: "big", Run: func(c *task.Ctx) task.Next {
			*txAt = c.Transmit(radio, 25)
			return task.Halt
		}})
}

func TestBurstAvoidsCriticalPathCharge(t *testing.T) {
	radio := device.CC2650()

	run := func(v Variant) (latency units.Seconds, inst *Instance) {
		var procEnd, txAt units.Seconds
		inst, err := New(baseConfig(v), burstProgram(radio, &procEnd, &txAt))
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Run(1e6); err != nil {
			t.Fatal(err)
		}
		if txAt <= procEnd || procEnd <= 0 {
			t.Fatalf("%v: bad timeline proc=%v tx=%v", v, procEnd, txAt)
		}
		return txAt - procEnd, inst
	}

	latP, instP := run(CapyP)
	latR, _ := run(CapyR)
	if instP.Runtime.Precharges != 1 {
		t.Fatalf("precharges = %d, want 1", instP.Runtime.Precharges)
	}
	// Capy-P's burst fires on the pre-charged bank: the event-to-alert
	// latency is just radio startup + airtime (tens of ms). Capy-R
	// charges the 45 mF bank on the critical path: seconds.
	if latP > 0.2 {
		t.Fatalf("Capy-P latency = %v, want reactive (≤ 200 ms)", latP)
	}
	if latR < 5 {
		t.Fatalf("Capy-R latency = %v, want a multi-second charge pause", latR)
	}
}

func TestBurstBankRetainsPrecharge(t *testing.T) {
	var procEnd, txAt units.Seconds
	inst, err := New(baseConfig(CapyP), burstProgram(device.CC2650(), &procEnd, &txAt))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(1e6); err != nil {
		t.Fatal(err)
	}
	// While proc ran in the small mode, the big bank must have held
	// its pre-charge (minus the §6.4 deficit at charge time).
	want := float64(DefaultVTop - reservoir.PrechargeDeficit)
	got := float64(inst.Dev.Array.Bank(1).Voltage())
	// The burst spent the bank; its post-run voltage is below the
	// pre-charge but must be well above zero (one packet ≪ 45 mF).
	if got <= 1.0 || got >= want {
		t.Fatalf("big bank after burst = %g V, want within (1.0, %g)", got, want)
	}
}

func TestBringUpAfterLatchRevert(t *testing.T) {
	// Configure the big mode, then cut input power long enough for the
	// NO switch to revert. The bring-up path must charge the default
	// small configuration and still make progress.
	src := harvest.SolarPanel{
		PeakPower:          10 * units.MilliWatt,
		OpenCircuitVoltage: 3.0,
		Light:              harvest.BlackoutTrace(harvest.ConstantTrace(1), [2]units.Seconds{60, 600}),
	}
	cfg := baseConfig(CapyP)
	cfg.Source = src
	steps := 0
	prog := task.MustProgram("work",
		&task.Task{Name: "work", Config: "big", Run: func(c *task.Ctx) task.Next {
			steps++
			c.Compute(100_000)
			if c.Now() > 700 {
				return task.Halt
			}
			// Busy-wait across the blackout by spinning compute.
			return "work"
		}})
	inst, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(900); err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("no progress at all")
	}
	if inst.Dev.Array.Reverts == 0 {
		t.Fatal("expected a latch revert during the blackout")
	}
}

func TestProvisionFindsMinimalBank(t *testing.T) {
	sys := testPowerSystem()
	radio := device.CC2650()
	mcu := device.MSP430FR5969()
	load := radio.TxPower + mcu.ActivePower
	dur := radio.StartupTime + radio.PacketTime(25)
	g, err := Provision(sys, storage.Tantalum, load, dur, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count < 1 {
		t.Fatalf("count = %d", g.Count)
	}
	// Minimality: one unit fewer must fail.
	if g.Count > 1 {
		smaller := storage.MustBank("x", storage.GroupOf(storage.Tantalum, g.Count-1))
		smaller.SetVoltage(2.4)
		if _, ok := sys.Discharge(smaller, load, dur); ok {
			t.Fatalf("%d units suffice but Provision returned %d", g.Count-1, g.Count)
		}
	}
	exact := storage.MustBank("x", storage.GroupOf(storage.Tantalum, g.Count))
	exact.SetVoltage(2.4)
	if _, ok := sys.Discharge(exact, load, dur); !ok {
		t.Fatal("provisioned bank cannot run the task")
	}
}

func TestProvisionInfeasible(t *testing.T) {
	sys := testPowerSystem()
	// A capacitor rated below the output booster's minimum input can
	// never deliver useful energy.
	hopeless := storage.Technology{
		Name: "under-rated", UnitCap: units.MilliFarad, UnitVolume: 1,
		UnitESR: 0.1, RatedVoltage: 1.0,
	}
	if _, err := Provision(sys, hopeless, 10*units.MilliWatt, 1, 2.4); err == nil {
		t.Fatal("infeasible provisioning succeeded")
	}
}

func TestDerate(t *testing.T) {
	g := storage.GroupOf(storage.Tantalum, 10)
	d := Derate(g, 0.2)
	if d.Count != 12 {
		t.Fatalf("derated count = %d, want 12", d.Count)
	}
	// Derating always adds at least one unit.
	if got := Derate(storage.GroupOf(storage.Tantalum, 1), 0.01).Count; got != 2 {
		t.Fatalf("small derate count = %d, want 2", got)
	}
	if got := Derate(g, 0); got.Count != 10 {
		t.Fatalf("zero margin changed count: %d", got.Count)
	}
}

func TestTaskEnergy(t *testing.T) {
	sys := testPowerSystem()
	e := TaskEnergy(sys, 8*units.MilliWatt, 0.5)
	want := float64(sys.StoreDraw(8*units.MilliWatt)) * 0.5
	if float64(e) != want {
		t.Fatalf("TaskEnergy = %v, want %g", e, want)
	}
}
