package core

import (
	"fmt"
	"math"
	"sort"

	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/storage"
	"capybara/internal/task"
	"capybara/internal/units"
)

// This file implements the paper's stated future work (§8): "automate
// energy capacity estimation for application tasks and find an
// allocation of capacitors to banks for a set of task energy
// requirements."
//
// The planner turns a set of task demands into a minimal prefix-
// structured bank array: banks are sized so that the demands, sorted by
// energy, map onto growing prefixes of the array. Demand i activates
// banks 0..i, so any task's mode is expressible with the switch
// hardware, smaller modes recharge faster (the reactivity requirement),
// and no capacitance is duplicated across modes.

// TaskDemand describes one task's requirements of the power system.
type TaskDemand struct {
	// Name identifies the demand; the planned mode reuses it.
	Name string
	// Load is the draw at the regulated output while the task runs.
	Load units.Power
	// Duration is the task's atomic duration.
	Duration units.Seconds
	// MaxRecharge, when positive, is the temporal constraint: the
	// longest tolerable recharge interval before the task can run
	// (again). Reactive burst tasks are exempt — their recharge is paid
	// off the critical path.
	MaxRecharge units.Seconds
	// Reactive marks a burst task (capacity constraint only; the
	// preburst mechanism hides its recharge latency).
	Reactive bool
}

// Energy returns the storage-side energy the demand requires on sys,
// with the planner's safety margin applied.
func (d TaskDemand) Energy(sys *power.System) units.Energy {
	raw := float64(sys.StoreDraw(d.Load)) * float64(d.Duration)
	return units.Energy(raw * (1 + planMargin))
}

// planMargin is the derating margin applied to every demand (§3's
// standard practice).
const planMargin = 0.2

// Plan is a derived provisioning: an ordered bank array plus one mode
// per demand, where demand i's mode activates a prefix of the array.
type Plan struct {
	// Banks is the array; Banks[0] is the always-connected base bank.
	Banks []*storage.Bank
	// Modes holds one mode per demand, named after it.
	Modes []Mode
	// VTop is the charge-complete voltage all modes share.
	VTop units.Voltage
	// RechargeTimes estimates each mode's full recharge interval at
	// the harvester's average power.
	RechargeTimes map[string]units.Seconds
}

// TotalCapacitance sums the planned array.
func (p *Plan) TotalCapacitance() units.Capacitance {
	return storage.CombinedCapacitance(p.Banks)
}

// TotalVolume sums the planned array's board volume.
func (p *Plan) TotalVolume() units.Volume {
	var v units.Volume
	for _, b := range p.Banks {
		v += b.Volume()
	}
	return v
}

// Mode returns the planned mode for a demand name.
func (p *Plan) Mode(name string) (Mode, bool) {
	for _, m := range p.Modes {
		if string(m.Name) == name {
			return m, true
		}
	}
	return Mode{}, false
}

// PlanModes derives a bank array and mode table for the demands, built
// from units of tech, charged to vtop (0 = DefaultVTop). It returns an
// error when a demand is infeasible — its energy cannot be banked at
// this voltage and technology, or its temporal constraint cannot be met
// at the harvester's average power.
func PlanModes(sys *power.System, tech storage.Technology, demands []TaskDemand, vtop units.Voltage) (*Plan, error) {
	if len(demands) == 0 {
		return nil, fmt.Errorf("core: no demands to plan for")
	}
	if vtop <= 0 {
		vtop = DefaultVTop
	}
	if tech.RatedVoltage > 0 && vtop > tech.RatedVoltage {
		return nil, fmt.Errorf("core: vtop %v exceeds %s rating %v", vtop, tech.Name, tech.RatedVoltage)
	}

	sorted := make([]TaskDemand, len(demands))
	copy(sorted, demands)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Energy(sys) < sorted[j].Energy(sys)
	})

	avgPower := harvest.AveragePower(sys.Source, units.Hour, 3600)
	chargePower := units.Power(float64(avgPower) * sys.In.Efficiency)

	plan := &Plan{VTop: vtop, RechargeTimes: make(map[string]units.Seconds, len(sorted))}
	var cumulative units.Capacitance
	eff := sys.Out.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	for i, d := range sorted {
		// Capacitance whose usable band at this load holds the energy:
		// E = η·½·C·(Vtop² − Vcut²). The cutoff depends on the combined
		// ESR, which depends on the unit count — iterate to fixpoint.
		need := float64(d.Energy(sys)) / eff
		count := cumulativeUnits(cumulative, tech) // start from what we have
		if count < 1 {
			count = 1
		}
		for iter := 0; iter < 64; iter++ {
			esr := tech.UnitESR / units.Resistance(count)
			cut := sys.CutoffVoltage(esr, d.Load)
			if cut >= vtop {
				count *= 2
				if count > 1<<22 {
					return nil, fmt.Errorf("core: demand %q (%v for %v) infeasible with %s at %v: ESR strands the energy",
						d.Name, d.Load, d.Duration, tech.Name, vtop)
				}
				continue
			}
			band := 0.5 * (float64(vtop)*float64(vtop) - float64(cut)*float64(cut))
			wantC := need / band
			wantUnits := int(math.Ceil(wantC / float64(tech.UnitCap)))
			if wantUnits <= count {
				break
			}
			count = wantUnits
		}
		totalC := tech.UnitCap * units.Capacitance(count)
		if totalC < cumulative {
			totalC = cumulative // an earlier, bigger demand already covers it
		}

		// Temporal constraint: the mode's full recharge at average
		// harvested power must fit, unless the demand is reactive.
		recharge := units.TimeToCharge(totalC, sys.Out.MinInput, vtop, chargePower)
		if !d.Reactive && d.MaxRecharge > 0 && recharge > d.MaxRecharge {
			return nil, fmt.Errorf("core: demand %q needs recharge ≤ %v but the %v mode takes %v at %v harvested",
				d.Name, d.MaxRecharge, totalC, recharge, avgPower)
		}
		plan.RechargeTimes[d.Name] = recharge

		// The bank for this tier holds the increment over the previous
		// tier. A zero increment means the demand shares the previous
		// tier's mask.
		if inc := totalC - cumulative; inc > 0 || len(plan.Banks) == 0 {
			n := int(math.Ceil(float64(inc) / float64(tech.UnitCap)))
			if n < 1 {
				n = 1
			}
			bank := storage.MustBank(fmt.Sprintf("tier%d", len(plan.Banks)), storage.GroupOf(tech, n))
			plan.Banks = append(plan.Banks, bank)
			cumulative += bank.Capacitance()
		}
		mask := prefixMask(len(plan.Banks))
		plan.Modes = append(plan.Modes, Mode{Name: task.EnergyMode(d.Name), Mask: mask, VTop: vtop})
		_ = i
	}
	return plan, nil
}

// prefixMask returns the mask activating banks 0..n-1 (bit 0 is the
// base bank, implied; bits 1.. are switched banks).
func prefixMask(n int) uint64 {
	if n <= 1 {
		return 1
	}
	return (uint64(1) << uint(n)) - 1
}

func cumulativeUnits(c units.Capacitance, tech storage.Technology) int {
	if tech.UnitCap <= 0 {
		return 0
	}
	return int(float64(c) / float64(tech.UnitCap))
}
