package core

import (
	"math/rand"
	"testing"

	"capybara/internal/device"
	"capybara/internal/storage"
	"capybara/internal/task"
	"capybara/internal/units"
)

func taDemands() []TaskDemand {
	mcu := device.MSP430FR5969()
	tmp := device.TMP36()
	radio := device.CC2650()
	return []TaskDemand{
		{
			Name:        "sample",
			Load:        tmp.ActivePower + mcu.ActivePower,
			Duration:    tmp.Warmup + tmp.OpTime,
			MaxRecharge: 10,
		},
		{
			Name:     "alarm",
			Load:     radio.TxPower + mcu.ActivePower,
			Duration: 3 * (radio.StartupTime + radio.PacketTime(25)),
			Reactive: true,
		},
	}
}

func TestPlanModesSatisfiesDemands(t *testing.T) {
	sys := testPowerSystem()
	plan, err := PlanModes(sys, storage.EDLC, taDemands(), 2.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Modes) != 2 {
		t.Fatalf("modes = %d", len(plan.Modes))
	}
	// Every demand's planned mode must actually sustain its task:
	// simulate a discharge on the prefix bank set.
	for _, d := range taDemands() {
		m, ok := plan.Mode(d.Name)
		if !ok {
			t.Fatalf("no mode for %s", d.Name)
		}
		banks := prefixBanks(plan, m.Mask)
		trial := storage.MustBank("trial", trialGroups(banks)...)
		trial.SetVoltage(plan.VTop)
		sustained, ok := sys.Discharge(trial, d.Load, d.Duration)
		if !ok {
			t.Fatalf("demand %s not satisfied: sustained only %v of %v on %v",
				d.Name, sustained, d.Duration, trial.Capacitance())
		}
	}
	// The sample mode must be a strict subset of the alarm mode.
	sm, _ := plan.Mode("sample")
	am, _ := plan.Mode("alarm")
	if sm.Mask >= am.Mask {
		t.Fatalf("sample mask %#b not below alarm mask %#b", sm.Mask, am.Mask)
	}
	// Recharge estimates exist and order correctly.
	if plan.RechargeTimes["sample"] >= plan.RechargeTimes["alarm"] {
		t.Fatalf("recharge times out of order: %v vs %v",
			plan.RechargeTimes["sample"], plan.RechargeTimes["alarm"])
	}
	if plan.TotalCapacitance() <= 0 || plan.TotalVolume() <= 0 {
		t.Fatal("plan totals empty")
	}
}

func prefixBanks(p *Plan, mask uint64) []*storage.Bank {
	var banks []*storage.Bank
	for i, b := range p.Banks {
		if mask&(1<<uint(i)) != 0 {
			banks = append(banks, b)
		}
	}
	return banks
}

func trialGroups(banks []*storage.Bank) []storage.Group {
	var groups []storage.Group
	for _, b := range banks {
		groups = append(groups, b.Groups()...)
	}
	return groups
}

func TestPlanModesTemporalConstraint(t *testing.T) {
	sys := testPowerSystem()
	// A big non-reactive task with an impossible recharge bound.
	demands := []TaskDemand{{
		Name:        "greedy",
		Load:        30 * units.MilliWatt,
		Duration:    2,
		MaxRecharge: 0.001,
	}}
	if _, err := PlanModes(sys, storage.EDLC, demands, 2.4); err == nil {
		t.Fatal("impossible temporal constraint accepted")
	}
	// The same demand as a reactive burst plans fine: pre-charging
	// hides the recharge.
	demands[0].Reactive = true
	if _, err := PlanModes(sys, storage.EDLC, demands, 2.4); err != nil {
		t.Fatalf("reactive demand rejected: %v", err)
	}
}

func TestPlanModesValidation(t *testing.T) {
	sys := testPowerSystem()
	if _, err := PlanModes(sys, storage.EDLC, nil, 2.4); err == nil {
		t.Error("empty demand set accepted")
	}
	if _, err := PlanModes(sys, storage.EDLC, taDemands(), 5.0); err == nil {
		t.Error("vtop above rating accepted")
	}
	// A technology whose rating is below the output booster minimum can
	// never bank usable energy.
	hopeless := storage.Technology{
		Name: "hopeless", UnitCap: units.MilliFarad, UnitVolume: 1,
		UnitESR: 0.1, RatedVoltage: 1.0,
	}
	if _, err := PlanModes(sys, hopeless, taDemands(), 1.0); err == nil {
		t.Error("sub-minimum vtop accepted")
	}
}

func TestPlanModesEqualDemandsShareMode(t *testing.T) {
	sys := testPowerSystem()
	d := TaskDemand{Name: "a", Load: 5 * units.MilliWatt, Duration: 0.1}
	d2 := d
	d2.Name = "b"
	plan, err := PlanModes(sys, storage.EDLC, []TaskDemand{d, d2}, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	ma, _ := plan.Mode("a")
	mb, _ := plan.Mode("b")
	if ma.Mask != mb.Mask {
		t.Fatalf("equal demands should share a mask: %#b vs %#b", ma.Mask, mb.Mask)
	}
	if len(plan.Banks) != 1 {
		t.Fatalf("equal demands should need one bank, got %d", len(plan.Banks))
	}
}

// Property: for random demand sets, the plan satisfies every demand and
// masks are prefix-nested in demand-energy order.
func TestPlanModesRandomDemandsProperty(t *testing.T) {
	sys := testPowerSystem()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(5)
		demands := make([]TaskDemand, n)
		for i := range demands {
			demands[i] = TaskDemand{
				Name:     string(rune('a' + i)),
				Load:     units.Power(1+rng.Float64()*29) * units.MilliWatt,
				Duration: units.Seconds(0.01 + rng.Float64()*0.8),
				Reactive: rng.Intn(2) == 0,
			}
		}
		plan, err := PlanModes(sys, storage.EDLC, demands, 2.4)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, d := range demands {
			m, ok := plan.Mode(d.Name)
			if !ok {
				t.Fatalf("trial %d: missing mode %s", trial, d.Name)
			}
			trialBank := storage.MustBank("t", trialGroups(prefixBanks(plan, m.Mask))...)
			trialBank.SetVoltage(plan.VTop)
			if _, ok := sys.Discharge(trialBank, d.Load, d.Duration); !ok {
				t.Fatalf("trial %d: demand %s unsatisfied by planned mode", trial, d.Name)
			}
			// Masks are prefixes: mask+1 must be a power of two.
			if (m.Mask+1)&m.Mask != 0 {
				t.Fatalf("trial %d: non-prefix mask %#b", trial, m.Mask)
			}
		}
	}
}

// TestPlanModesEndToEnd uses a plan to build and run a real instance.
func TestPlanModesEndToEnd(t *testing.T) {
	sys := testPowerSystem()
	plan, err := PlanModes(sys, storage.EDLC, taDemands(), 2.4)
	if err != nil {
		t.Fatal(err)
	}
	var alarms int
	radio := device.CC2650()
	prog := task.MustProgram("sample",
		&task.Task{Name: "sample", PreburstBurst: "alarm", PreburstExec: "sample", Run: func(c *task.Ctx) task.Next {
			c.Sample(device.TMP36())
			if c.WordOr("rounds", 0) >= 2 {
				return "fire"
			}
			c.SetWord("rounds", c.WordOr("rounds", 0)+1)
			return "sample"
		}},
		&task.Task{Name: "fire", Burst: "alarm", Run: func(c *task.Ctx) task.Next {
			for i := 0; i < 3; i++ {
				c.Transmit(radio, 25)
			}
			alarms++
			return task.Halt
		}},
	)
	cfg := Config{
		Variant:    CapyP,
		Source:     sys.Source,
		MCU:        device.MSP430FR5969(),
		Base:       plan.Banks[0],
		Switched:   plan.Banks[1:],
		SwitchKind: 0,
		Modes:      plan.Modes,
	}
	inst, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(120); err != nil {
		t.Fatal(err)
	}
	if alarms == 0 {
		t.Fatal("planned platform never completed the alarm task")
	}
}
