package core

import (
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/units"
)

func testPowerSystem() *power.System {
	return power.NewSystem(harvest.RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0})
}
