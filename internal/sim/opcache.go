package sim

import (
	"bytes"
	"encoding/binary"
	"math"

	"capybara/internal/harvest"
	"capybara/internal/units"
)

// Device-op replay cache: the fleet engine's batch-lockstep hot path.
//
// Within a fleet cohort, devices differ only by their RNG stream. Their
// lifecycles therefore revisit the same (array state, operation) pairs
// constantly: charge targets and brownout cutoffs snap voltages to exact
// values (power.Discharge sets the cutoff bit-exactly; chargeSegment
// snaps to target/limit), so after every brownout or completed charge a
// whole cohort's trajectories reconverge onto a shared state. The
// OpCache exploits this by memoizing *whole* Drain and ChargeTo calls:
// the first device through a state ("the batch leader") solves the
// operation for real and records its exact effect; every device that
// arrives at the bit-identical state replays the recorded effect
// without touching the solvers. The set of devices replaying one entry
// is a batch advancing in lockstep through a shared analytic segment;
// a device whose state diverges (a different Poisson gap, a different
// brownout instant) simply misses — a batch split — solves for real,
// and re-merges the moment a voltage snap puts it back on a shared
// state.
//
// State is held struct-of-arrays: recorded post-operation array images
// (bank voltages + latch voltages) live in one flat float64 arena per
// generation, entries are a flat slice, and keys are packed byte
// strings — rotation drops a whole generation without walking it.
//
// Soundness (why byte-identity survives batching):
//
//   - Keys are exact IEEE-754 bit patterns of every mutable word the
//     operation reads: the full array state (all bank voltages, all
//     latch voltages, switch positions) plus the call arguments, plus
//     the sampled source output. Bitwise-equal inputs run bitwise-equal
//     float operations, so the recorded effect IS the effect.
//   - Drain samples the source exactly once, at the call's start (the
//     tickSpan powered-ness decision), so a single "powered" key bit
//     covers its entire clock dependence — drains are cacheable under
//     any source, including PWM/blackout scenarios.
//   - ChargeTo is cached when the source reports an unbounded
//     constancy horizon (harvest.Forever) with power flowing: the whole
//     call is then a single analytic segment whose outcome depends on
//     the clock only through the sampled (power, voltage) pair, which
//     is in the key. A recorded completion replays only when it fits
//     the caller's deadline (entry.dur <= maxWait); the horizon floors
//     (units.MinAdvance) only ever lengthen a step, so a completion
//     recorded under one deadline is the completion under every
//     deadline it fits.
//   - With phase keys enabled (SetPhaseKeys), ChargeTo is additionally
//     cacheable under a *finite* constancy horizon when the source's
//     phase regime is keyable (harvest.PhaseKey) and the charge
//     completes strictly inside the segment it started in: the call is
//     then still a single analytic segment — chargeSegment's elapsed
//     when the target is reached is a sum of closed-form per-phase
//     solves independent of the dt bound — so its outcome is again a
//     pure function of keyed inputs. The phase key joins the entry key
//     (separating, say, a PWM on-phase from its off-phase) and replay
//     additionally requires the *live* horizon to cover the recorded
//     duration (entry.dur < NextChange at the replay clock), the exact
//     condition under which the scalar loop would have completed in
//     its first segment too. Entries whose charge crossed a segment
//     edge are never recorded — their splits depend on the clock.
//   - Every report-visible accumulator (now, TimeOn, TimeOff,
//     TimeCharging, Boots, Brownouts, Reverts) receives exactly one add
//     per call in the scalar path; replay performs the same single add
//     with the identical recorded value. EnergyDrawn's add is
//     recomputed from the same expression the scalar path uses.
//   - The diagnostic loss accumulators (Array.LeakLoss/ShareLoss) and
//     Stats.EnergyIntoStore accumulate several intermediate adds per
//     call in the scalar path; replay applies the recorded net delta in
//     one add, which can differ in the last ULP. These fields appear in
//     no fleet report (they are energy-balance diagnostics), so the
//     canonical byte-identity contract is unaffected.
//
// The cache engages only when no Trace, EventLog, or Observer needs the
// operation's intermediate events, and never for Continuous devices
// (their fast path is cheaper than a lookup).

// DefaultOpEntries bounds an OpCache built with max <= 0. The sizing
// trades reuse depth against locality: a cohort leader's trajectory
// between reconvergence anchors runs to thousands of operations, and a
// generation must hold enough of it for followers to replay (4096
// measurably starves the wider cohorts), while much larger tables
// thrash the data cache during probing and slow every lookup down.
const DefaultOpEntries = 16384

// OpCacheStats reports an OpCache's effectiveness and batching shape.
type OpCacheStats struct {
	// Hits counts calls replayed from a recorded entry; Misses counts
	// calls solved for real through the cache path.
	Hits, Misses uint64
	// Uncacheable counts calls the cache had to pass through untouched:
	// time-varying sources, outages, and deadline-bound charges.
	Uncacheable uint64
	// Records counts misses that recorded a fresh entry (a batch
	// leader's solve). Misses - Records is the unrecordable remainder.
	Records uint64
	// Bypassed counts calls routed straight to the solvers after the
	// probation window judged this cohort's trajectories too divergent
	// for replay to pay (see engaged).
	Bypassed uint64
	// Splits counts replay->solve transitions within one device's call
	// stream (a device leaving a shared trajectory); Merges counts
	// solve->replay transitions (rejoining one).
	Splits, Merges uint64
	// Vector counts the subset of Hits answered by the lockstep cursor:
	// replays certified against the previous operation's recorded
	// post-state without serializing the device state, building a key,
	// or probing the key index (see vectorNext).
	Vector uint64
	// Entries is the number of recorded operations currently retained.
	Entries int
}

// HitRate returns the fraction of cacheable calls answered by replay.
func (s OpCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// MeanWidth returns the mean batch width: how many devices, on
// average, advanced through one recorded solve (the leader plus its
// replays).
func (s OpCacheStats) MeanWidth() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.Hits+s.Records) / float64(s.Records)
}

// VectorRate returns the fraction of replays answered by the lockstep
// cursor rather than the keyed lookup path.
func (s OpCacheStats) VectorRate() float64 {
	if s.Hits == 0 {
		return 0
	}
	return float64(s.Vector) / float64(s.Hits)
}

// Add accumulates another cache's counters.
func (s *OpCacheStats) Add(o OpCacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Uncacheable += o.Uncacheable
	s.Records += o.Records
	s.Bypassed += o.Bypassed
	s.Splits += o.Splits
	s.Merges += o.Merges
	s.Vector += o.Vector
	s.Entries += o.Entries
}

// opEntry is one recorded operation effect. soff/slen locate the final
// array-state image in the generation's arena; koff/klen locate the
// entry's full key in the generation's key arena.
type opEntry struct {
	soff, slen int32
	koff, klen int32
	// next is the young-generation index of the entry the most recent
	// call stream used immediately after this one, or -1. It predicts
	// straight-line replay: when a batch advances in lockstep the next
	// operation's key is verified with one memcmp against next's stored
	// key, skipping the hash and map probe entirely. It is only ever a
	// hint — a failed comparison falls back to the map.
	next int32
	// replays counts devices that replayed this entry since it was
	// recorded, for the batch-width cap.
	replays  int32
	dReverts int32
	// linked memoizes the lockstep-cursor validity of the next edge:
	// 0 unverified, 1 verified (next's keyed state prefix is
	// byte-identical to this entry's recorded post-state), 2 verified
	// mismatched. Re-zeroed only when the edge is rewired; preserved on
	// in-place re-record (an identical key records an identical
	// post-state, so edge validity cannot change).
	linked uint8
	mask   uint64
	// dur is the operation's time span: Drain's sustained span or
	// ChargeTo's elapsed-to-target.
	dur units.Seconds
	// energy is the operation's stats add: Drain's exact EnergyDrawn
	// term, or ChargeTo's net EnergyIntoStore delta.
	energy float64
	dLeak  units.Energy
	dShare units.Energy
	// flag is Drain's "completed without brownout" result, or
	// ChargeTo's "charge power was flowing" counter selector.
	flag bool
}

// opGen is one generation of the two-generation rotation: a key index,
// the entry slice it points into, and the flat state arena.
type opGen struct {
	idx   map[string]int32
	ents  []opEntry
	arena []float64
	// keys is the flat key arena backing each entry's koff/klen.
	keys []byte
}

// OpCache memoizes whole Device.Drain/ChargeTo calls (see the package
// comment above). Not safe for concurrent use; the fleet engine keeps
// one per worker per cohort.
type OpCache struct {
	max   int
	width int

	cur, prev opGen
	stats     OpCacheStats

	// cfgs interns device hardware fingerprints (booster parameters,
	// bank electricals, switch parameters); a device's id participates
	// in every key, so one cache may safely serve heterogeneous
	// devices.
	cfgs map[string]uint32

	// key/fp/tmp are reusable scratch buffers for key building,
	// fingerprinting, and final-state capture.
	key []byte
	fp  []byte
	tmp []float64

	// streak tracks the current device's replay/solve alternation for
	// the split/merge counters: 0 unknown, 1 replayed, 2 solved.
	streak uint8

	// novec disables the lockstep cursor (see DisableVector).
	novec bool

	// phaseKeys enables finite-horizon charge caching keyed on the
	// source's phase regime (see SetPhaseKeys).
	phaseKeys bool

	// decided/bypass implement the probation policy: after opProbation
	// cacheable calls the cache either commits to replay or bypasses —
	// some cohorts' trajectories drift through never-repeating states
	// (a fixed cap discharging freely visits a fresh voltage every
	// operation), and for them key-building and recording is pure tax.
	// The decision reads only the cache's own deterministic call
	// stream; bypassing never changes a result, only who computes it.
	decided, bypass bool

	// probation/minHitRate parameterize the bypass decision; defaults
	// are opProbation/opMinHitRate (see SetProbation).
	probation  uint64
	minHitRate float64

	// last is the young-generation index of the entry the previous
	// cached call used (replayed or recorded), or -1. It anchors the
	// next-entry chain; deliberately NOT reset at device seams, so a
	// follower device re-enters its leader's chain at the very first
	// shared operation.
	last int32
}

// NewOpCache builds a cache retaining at most max recorded operations
// (<= 0 means DefaultOpEntries). width caps the batch width — how many
// devices may advance through one recorded solve: 0 is unlimited, w >= 1
// re-solves (and re-records) after the leader plus w-1 replays, and
// width 1 never replays at all, making the cache a pure pass-through
// that is behaviorally scalar while still exercising the record path.
func NewOpCache(max, width int) *OpCache {
	if max <= 0 {
		max = DefaultOpEntries
	}
	if max < 2 {
		max = 2
	}
	if width < 0 {
		width = 0
	}
	return &OpCache{
		max:        max,
		width:      width,
		cur:        opGen{idx: make(map[string]int32)},
		prev:       opGen{idx: make(map[string]int32)},
		cfgs:       make(map[string]uint32),
		last:       -1,
		probation:  opProbation,
		minHitRate: opMinHitRate,
	}
}

// DisableVector turns the lockstep cursor off, forcing every replay
// through the keyed lookup path. Results are identical either way (the
// cursor only certifies what the key comparison would have verified) —
// this is the A/B control behind the fleet NoVector knob.
func (c *OpCache) DisableVector() { c.novec = true }

// SetPhaseKeys enables (or disables) finite-horizon charge caching
// keyed on the source's phase regime (see the package comment). Like
// every cache knob it moves work between the cached and direct solve
// paths without changing a byte of any result — the replay gate
// re-proves segment coverage live — so it is an execution option,
// excluded from fleet spec hashes.
func (c *OpCache) SetPhaseKeys(on bool) { c.phaseKeys = on }

// Stats returns the cache's counters.
func (c *OpCache) Stats() OpCacheStats {
	st := c.stats
	st.Entries = len(c.cur.ents) + len(c.prev.ents)
	return st
}

// BeginDevice marks the start of a new device's call stream, so the
// split/merge counters do not count the seam between two devices as a
// transition.
func (c *OpCache) BeginDevice() { c.streak = 0 }

func (c *OpCache) noteReplay() {
	c.stats.Hits++
	if c.streak == 2 {
		c.stats.Merges++
	}
	c.streak = 1
}

func (c *OpCache) noteSolve(recorded bool) {
	c.stats.Misses++
	if recorded {
		c.stats.Records++
	}
	if c.streak == 1 {
		c.stats.Splits++
	}
	c.streak = 2
}

func (c *OpCache) noteUncacheable() { c.stats.Uncacheable++ }

// Default probation policy: how many cacheable calls the cache observes
// before deciding whether replay pays here, and the hit rate it must
// have seen. SetProbation overrides both.
const (
	opProbation  = 1 << 15
	opMinHitRate = 0.6
)

// SetProbation overrides the adaptive-bypass probation window (calls
// observed before deciding) and the minimum hit rate that keeps the
// cache engaged. Non-positive arguments keep the corresponding default.
// Bypass decisions only move work between the cached and direct solve
// paths — results are byte-identical at any setting — so the knob is an
// execution option, excluded from fleet spec hashes. Low-scale runs
// raise the window (or lower the rate floor) so cohorts that converge
// late are not written off during warm-up.
func (c *OpCache) SetProbation(calls uint64, minRate float64) {
	if calls > 0 {
		c.probation = calls
	} else {
		c.probation = opProbation
	}
	if minRate > 0 {
		c.minHitRate = minRate
	} else {
		c.minHitRate = opMinHitRate
	}
}

// engaged reports whether the cached path should run at all. During
// probation it always does; afterwards, a cohort whose hit rate never
// reached opMinHitRate is bypassed for good — its devices' states drift
// without reconverging, so probing and recording only slow the solve
// down. A batch-width cap of 1 (the behaviorally-scalar test mode)
// never bypasses: it exists to exercise the record path.
func (c *OpCache) engaged() bool {
	if c.bypass {
		c.stats.Bypassed++
		return false
	}
	if !c.decided {
		if t := c.stats.Hits + c.stats.Misses; t >= c.probation {
			c.decided = true
			c.bypass = c.width != 1 && c.stats.HitRate() < c.minHitRate
		}
	}
	return true
}

// appendBits packs a float64's exact bit pattern into a key buffer.
func appendBits[T ~float64](b []byte, x T) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(float64(x)))
}

// deviceID interns d's hardware fingerprint: every static parameter the
// cached operations read that is not in the per-call key. Computed once
// per (device, cache) pairing — the result is memoized on the device.
func (c *OpCache) deviceID(d *Device) uint32 {
	if d.opsFor == c {
		return d.opsID
	}
	fp := c.fp[:0]
	sys := d.Sys
	fp = appendBits(fp, sys.In.Efficiency)
	fp = appendBits(fp, sys.In.ColdStart)
	fp = appendBits(fp, sys.In.ColdStartEfficiency)
	fp = appendBits(fp, sys.In.MinSourceVoltage)
	if sys.Bypass.Enabled {
		fp = append(fp, 1)
	} else {
		fp = append(fp, 0)
	}
	fp = appendBits(fp, sys.Bypass.Drop)
	fp = appendBits(fp, sys.Out.Vout)
	fp = appendBits(fp, sys.Out.Efficiency)
	fp = appendBits(fp, sys.Out.MinInput)
	fp = appendBits(fp, sys.Out.Quiescent)
	a := d.Array
	nb := a.NumBanks()
	fp = append(fp, byte(nb))
	for i := 0; i < nb; i++ {
		b := a.Bank(i)
		fp = appendBits(fp, b.Capacitance())
		fp = appendBits(fp, b.ESR())
		fp = appendBits(fp, b.LeakResistance())
		fp = appendBits(fp, b.RatedVoltage())
	}
	for i := 1; i < nb; i++ {
		s := a.Switch(i)
		fp = append(fp, byte(s.Kind))
		fp = appendBits(fp, s.LatchCap)
		fp = appendBits(fp, s.LatchLeak)
		fp = appendBits(fp, s.HoldVoltage)
		fp = appendBits(fp, s.FullVoltage)
	}
	c.fp = fp
	id, ok := c.cfgs[string(fp)]
	if !ok {
		id = uint32(len(c.cfgs))
		c.cfgs[string(fp)] = id
	}
	d.opsID, d.opsFor = id, c
	return id
}

// Key tags distinguishing the two cached operations.
const (
	opDrain  byte = 1
	opCharge byte = 2
)

// Key layout: [tag 1][device id 4][mask 8][state words 8×S][args]. The
// lockstep cursor indexes the args suffix directly, so the section
// sizes are fixed here rather than implied by the append sequence.
const (
	opKeyHdr     = 13 // tag + device id + active mask
	opDrainArgs  = 17 // load power + dt + powered bit
	opChargeArgs = 24 // target + raw power + source voltage
	// Phase-keyed charge entries append [phase key 8][tag 1] so the two
	// charge key shapes can never collide byte-for-byte.
	opChargePhaseArgs = opChargeArgs + 9
)

// vectorNext is the lockstep cursor: without serializing state or
// building a key, it returns the young-generation entry predicted to
// answer the current call, or -1. The prediction is the chain successor
// of the previously-used entry, and it is *certified*, not just hinted,
// by three checks that together imply the successor's keyed state
// prefix equals the live device state bit for bit:
//
//   - the link edge is verified once and memoized in the predecessor's
//     linked flag: the successor's keyed mask and state words equal the
//     predecessor's recorded post-state image (verifyLink);
//   - the successor's keyed device id equals the live device's (two
//     heterogeneous devices can pass through coincidentally equal
//     states);
//   - the live array still matches the predecessor's post-state image
//     (Array.MatchState), which catches any mutation made outside the
//     cached ops — e.g. Capy-P's direct pre-sleep voltage downscale.
//
// Transitivity then does the rest: live state == predecessor post-state
// == successor key prefix, which is exactly what find()'s full-key
// memcmp would have established. The caller still owns the op-specific
// suffix checks: tag, exact key length, argument bytes, width cap. ao
// is the args-suffix offset within the successor's key, valid whenever
// n >= 0.
func (c *OpCache) vectorNext(d *Device) (n, ao int32) {
	if c.novec || c.last < 0 {
		return -1, 0
	}
	p := &c.cur.ents[c.last]
	if p.next < 0 {
		return -1, 0
	}
	if p.linked == 0 {
		p.linked = c.verifyLink(p)
	}
	if p.linked != 1 {
		return -1, 0
	}
	e := &c.cur.ents[p.next]
	key := c.cur.keys[e.koff : e.koff+e.klen]
	if binary.LittleEndian.Uint32(key[1:5]) != c.deviceID(d) {
		return -1, 0
	}
	if !d.Array.MatchState(c.cur.arena[p.soff:p.soff+p.slen], p.mask) {
		return -1, 0
	}
	return p.next, opKeyHdr + 8*p.slen
}

// verifyLink decides a chain edge's lockstep validity: 1 when the
// successor's keyed (mask, state words) prefix is byte-identical to the
// predecessor's recorded post-state, 2 otherwise. With equal device
// ids (checked by the caller) equal fingerprints imply equal state
// sizes, so a valid prefix of p.slen words positions the successor's
// argument suffix at opKeyHdr + 8*p.slen exactly.
func (c *OpCache) verifyLink(p *opEntry) uint8 {
	e := &c.cur.ents[p.next]
	key := c.cur.keys[e.koff : e.koff+e.klen]
	if int32(len(key)) < opKeyHdr+8*p.slen {
		return 2
	}
	if binary.LittleEndian.Uint64(key[5:opKeyHdr]) != p.mask {
		return 2
	}
	for i, v := range c.cur.arena[p.soff : p.soff+p.slen] {
		if binary.LittleEndian.Uint64(key[opKeyHdr+8*i:]) != math.Float64bits(v) {
			return 2
		}
	}
	return 1
}

// beginKey starts a key in the cache's scratch buffer: operation tag,
// device fingerprint id, and the full mutable array state (active mask,
// bank voltages, latch voltages) as exact bit patterns. The caller
// appends the operation's arguments.
func (c *OpCache) beginKey(tag byte, d *Device) {
	k := c.key[:0]
	k = append(k, tag)
	k = binary.LittleEndian.AppendUint32(k, c.deviceID(d))
	st, mask := d.Array.AppendState(c.tmp[:0])
	c.tmp = st
	k = binary.LittleEndian.AppendUint64(k, mask)
	for _, v := range st {
		k = binary.LittleEndian.AppendUint64(k, math.Float64bits(v))
	}
	c.key = k
}

// find looks the current key up, returning a young-generation entry
// index or -1. The chained next-entry hint is tried first: during
// straight-line lockstep replay it resolves the lookup with a single
// memcmp, no hash, no map probe. On a chain miss it falls back to the
// map of both generations, promoting an old-generation entry into the
// young one (so recently-used entries survive rotation). It does not
// touch the counters — the caller decides whether the entry is usable.
func (c *OpCache) find() int32 {
	if c.last >= 0 {
		if n := c.cur.ents[c.last].next; n >= 0 {
			e := &c.cur.ents[n]
			if bytes.Equal(c.cur.keys[e.koff:e.koff+e.klen], c.key) {
				return n
			}
		}
	}
	if i, ok := c.cur.idx[string(c.key)]; ok {
		return i
	}
	if i, ok := c.prev.idx[string(c.key)]; ok {
		e := c.prev.ents[i]
		st := append([]float64(nil), c.prev.arena[e.soff:e.soff+e.slen]...)
		return c.put(e, st)
	}
	return -1
}

// put records an entry for the current key, appending st (the final
// array state) and the key itself to the young generation's arenas. A
// key already present in the young generation is overwritten in place —
// the batch-width cap re-records an identical effect to reset its
// replay count (the stored key and chain successor stay valid).
func (c *OpCache) put(e opEntry, st []float64) int32 {
	if i, ok := c.cur.idx[string(c.key)]; ok {
		old := &c.cur.ents[i]
		copy(c.cur.arena[old.soff:old.soff+old.slen], st)
		e.soff, e.slen = old.soff, old.slen
		e.koff, e.klen = old.koff, old.klen
		e.next = old.next
		e.linked = old.linked
		*old = e
		return i
	}
	if len(c.cur.ents) >= c.max/2 {
		c.cur, c.prev = c.prev, c.cur
		clear(c.cur.idx)
		c.cur.ents = c.cur.ents[:0]
		c.cur.arena = c.cur.arena[:0]
		c.cur.keys = c.cur.keys[:0]
		// Entry indices rotated out from under the chain anchor.
		c.last = -1
	}
	e.soff = int32(len(c.cur.arena))
	e.slen = int32(len(st))
	c.cur.arena = append(c.cur.arena, st...)
	e.koff = int32(len(c.cur.keys))
	e.klen = int32(len(c.key))
	c.cur.keys = append(c.cur.keys, c.key...)
	e.next = -1
	i := int32(len(c.cur.ents))
	c.cur.ents = append(c.cur.ents, e)
	c.cur.idx[string(c.key)] = i
	return i
}

// link records that entry i followed the previously-used entry in the
// call stream, teaching the chain the trajectory for the next device.
// A rewired edge drops its memoized lockstep verdict; re-linking the
// same successor keeps it.
func (c *OpCache) link(i int32) {
	if c.last >= 0 {
		if p := &c.cur.ents[c.last]; p.next != i {
			p.next = i
			p.linked = 0
		}
	}
	c.last = i
}

// capped reports whether the batch-width cap forbids replaying e again.
func (c *OpCache) capped(e *opEntry) bool {
	return c.width > 0 && e.replays+1 >= int32(c.width)
}

// applyState restores the recorded post-operation array state and the
// passive-effect deltas shared by both operations.
func (d *Device) applyState(e *opEntry, g *opGen) {
	d.Array.RestoreState(g.arena[e.soff:e.soff+e.slen], e.mask)
	d.Array.LeakLoss += e.dLeak
	d.Array.ShareLoss += e.dShare
	d.Array.Reverts += int(e.dReverts)
	d.now += e.dur
}

// drainFast is Drain's cached path: key on (state, load, dt, powered),
// replay a recorded effect or solve-and-record. The powered bit covers
// Drain's entire clock dependence — the scalar path samples the source
// exactly once, at the span start.
func (d *Device) drainFast(c *OpCache, loadPower units.Power, dt units.Seconds) (units.Seconds, bool) {
	powered := d.powerAt(d.now) > 0
	d.Tape.sourced()
	if n, ao := c.vectorNext(d); n >= 0 {
		e := &c.cur.ents[n]
		key := c.cur.keys[e.koff : e.koff+e.klen]
		if key[0] == opDrain && e.klen == ao+opDrainArgs &&
			binary.LittleEndian.Uint64(key[ao:]) == math.Float64bits(float64(loadPower)) &&
			binary.LittleEndian.Uint64(key[ao+8:]) == math.Float64bits(float64(dt)) &&
			(key[ao+16] == 1) == powered &&
			!c.capped(e) {
			e.replays++
			c.noteReplay()
			c.stats.Vector++
			c.link(n)
			d.applyState(e, &c.cur)
			d.Stats.TimeOn += e.dur
			d.Stats.EnergyDrawn += units.Energy(e.energy)
			d.Tape.add(e.dur, e.energy, TapeTimeOn|TapeDrawn)
			if !e.flag {
				d.Stats.Brownouts++
			}
			return e.dur, e.flag
		}
	}
	c.beginKey(opDrain, d)
	k := appendBits(c.key, loadPower)
	k = appendBits(k, dt)
	if powered {
		k = append(k, 1)
	} else {
		k = append(k, 0)
	}
	c.key = k
	if i := c.find(); i >= 0 {
		if e := &c.cur.ents[i]; !c.capped(e) {
			e.replays++
			c.noteReplay()
			c.link(i)
			d.applyState(e, &c.cur)
			d.Stats.TimeOn += e.dur
			d.Stats.EnergyDrawn += units.Energy(e.energy)
			d.Tape.add(e.dur, e.energy, TapeTimeOn|TapeDrawn)
			if !e.flag {
				d.Stats.Brownouts++
			}
			return e.dur, e.flag
		}
	}
	leak0, share0 := d.Array.LeakLoss, d.Array.ShareLoss
	rev0 := d.Array.Reverts
	sustained, ok := d.drainSlow(loadPower, dt)
	st, mask := d.Array.AppendState(c.tmp[:0])
	c.tmp = st
	c.link(c.put(opEntry{
		mask: mask,
		dur:  sustained,
		// The identical expression drainSlow's EnergyDrawn add uses, so
		// replays add bit-identical values.
		energy:   float64(d.Sys.StoreDraw(loadPower)) * float64(sustained),
		dLeak:    d.Array.LeakLoss - leak0,
		dShare:   d.Array.ShareLoss - share0,
		dReverts: int32(d.Array.Reverts - rev0),
		flag:     ok,
	}, st))
	c.noteSolve(true)
	return sustained, ok
}

// chargeFast is ChargeTo's cached path. Constant-forever powered
// sources are always cacheable: the whole call is then one analytic
// segment (chargeHorizon takes the full remaining window at once), and
// its outcome depends on the clock only through the sampled source
// output, which is in the key. With phase keys enabled, a powered
// source with a finite constancy horizon and a keyable phase regime is
// cacheable too: the phase key joins the entry key, the recorded
// completion must have fit strictly inside its segment, and replay
// re-proves that the live segment covers it (see the package comment).
// Completions are recorded; deadline-bound failures and edge-crossing
// charges are not (their outcomes depend on maxWait or the clock).
func (d *Device) chargeFast(c *OpCache, target units.Voltage, maxWait units.Seconds) (units.Seconds, bool) {
	set := d.Store()
	// Mirror the scalar loop's first-iteration exits exactly.
	if set.Voltage() >= target {
		return 0, true
	}
	if maxWait <= 0 {
		return 0, false
	}
	src := d.Sys.Source
	raw := d.powerAt(d.now)
	if raw <= 0 {
		// An outage: the call waits on the source's pattern, so its
		// trajectory depends on the absolute clock.
		c.noteUncacheable()
		return d.chargeSlow(target, maxWait)
	}
	h := harvest.NextChange(src, d.now)
	var pk uint64
	finite := h != harvest.Forever
	if finite {
		ok := c.phaseKeys && h > 0
		if ok {
			pk, ok = harvest.PhaseKey(src, d.now)
		}
		if !ok {
			// A time-varying source with no keyable phase regime: the
			// trajectory depends on where the clock sits in the pattern.
			c.noteUncacheable()
			return d.chargeSlow(target, maxWait)
		}
	}
	alen := int32(opChargeArgs)
	if finite {
		alen = opChargePhaseArgs
	}
	srcV := src.VoltageAt(d.now)
	if n, ao := c.vectorNext(d); n >= 0 {
		e := &c.cur.ents[n]
		key := c.cur.keys[e.koff : e.koff+e.klen]
		if key[0] == opCharge && e.klen == ao+alen &&
			binary.LittleEndian.Uint64(key[ao:]) == math.Float64bits(float64(target)) &&
			binary.LittleEndian.Uint64(key[ao+8:]) == math.Float64bits(float64(raw)) &&
			binary.LittleEndian.Uint64(key[ao+16:]) == math.Float64bits(float64(srcV)) &&
			(!finite || binary.LittleEndian.Uint64(key[ao+24:]) == pk) {
			if e.dur > maxWait || (finite && e.dur >= h) {
				// Same rules as the keyed path below: the recorded
				// completion does not fit this call's deadline window
				// or its live constancy segment.
				c.noteUncacheable()
				return d.chargeSlow(target, maxWait)
			}
			if !c.capped(e) {
				e.replays++
				c.noteReplay()
				c.stats.Vector++
				c.link(n)
				d.applyState(e, &c.cur)
				if e.flag {
					d.Stats.TimeCharging += e.dur
				} else {
					d.Stats.TimeOff += e.dur
				}
				if e.energy != 0 {
					d.Stats.EnergyIntoStore += units.Energy(e.energy)
				}
				d.tapeChargeReplay(e)
				return e.dur, true
			}
		}
	}
	c.beginKey(opCharge, d)
	k := appendBits(c.key, target)
	k = appendBits(k, raw)
	k = appendBits(k, srcV)
	if finite {
		k = binary.LittleEndian.AppendUint64(k, pk)
		k = append(k, 1)
	}
	c.key = k
	i := c.find()
	if i >= 0 && (c.cur.ents[i].dur > maxWait || (finite && c.cur.ents[i].dur >= h)) {
		// The recorded completion lies beyond this call's deadline or
		// its live constancy segment; solve directly and record
		// nothing — a deadline-bound outcome is a function of maxWait,
		// which is not in the key, and an edge-crossing outcome is a
		// function of the clock.
		c.noteUncacheable()
		return d.chargeSlow(target, maxWait)
	}
	if i >= 0 {
		if e := &c.cur.ents[i]; !c.capped(e) {
			e.replays++
			c.noteReplay()
			c.link(i)
			d.applyState(e, &c.cur)
			if e.flag {
				d.Stats.TimeCharging += e.dur
			} else {
				d.Stats.TimeOff += e.dur
			}
			if e.energy != 0 {
				d.Stats.EnergyIntoStore += units.Energy(e.energy)
			}
			d.tapeChargeReplay(e)
			return e.dur, true
		}
	}
	leak0, share0 := d.Array.LeakLoss, d.Array.ShareLoss
	rev0 := d.Array.Reverts
	into0 := d.Stats.EnergyIntoStore
	v0, t0 := set.Voltage(), d.now
	elapsed, ok := d.chargeSlow(target, maxWait)
	if !ok {
		// Under a powered source only the deadline (or dead air) can
		// stop the charge; neither outcome is keyable.
		c.noteSolve(false)
		return elapsed, ok
	}
	if finite && elapsed >= h {
		// The charge crossed (or grazed) its segment edge: the loop
		// split at the edge, so the effect is clock-position-dependent.
		c.noteSolve(false)
		return elapsed, ok
	}
	st, mask := d.Array.AppendState(c.tmp[:0])
	c.tmp = st
	c.link(c.put(opEntry{
		mask:     mask,
		dur:      elapsed,
		energy:   float64(d.Stats.EnergyIntoStore - into0),
		dLeak:    d.Array.LeakLoss - leak0,
		dShare:   d.Array.ShareLoss - share0,
		dReverts: int32(d.Array.Reverts - rev0),
		// The scalar loop's per-segment counter selector, recomputed
		// from keyed values (one segment: decided once, at the start).
		flag: d.Sys.ChargePower(v0, t0) > 0,
	}, st))
	c.noteSolve(true)
	return elapsed, ok
}
