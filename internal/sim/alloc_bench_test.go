package sim

import (
	"testing"

	"capybara/internal/units"
)

// The recording paths run on every drain and every charge segment of
// every simulated device, so their per-call allocation behaviour is
// part of the simulator's performance envelope: an unbounded trace
// must amortize to ~0 allocs/op, a bounded one to exactly 0 after the
// initial block.

func BenchmarkTraceRecord(b *testing.B) {
	tr := &Trace{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.record(units.Seconds(i), 2.0, PhaseCharging)
	}
}

func BenchmarkTraceRecordBounded(b *testing.B) {
	tr := &Trace{Max: 4096}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.record(units.Seconds(i), 2.0, PhaseCharging)
	}
}

func BenchmarkEventLogAdd(b *testing.B) {
	l := &EventLog{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.add(Event{T: units.Seconds(i), Kind: EventBoot})
	}
}

// BenchmarkEventLogAddDetailed records detail-carrying events the way
// the simulator's hot paths now do: typed fields, no formatting. The
// eager variant below it is the pre-lazy behaviour (a fmt.Sprintf per
// event) kept as the comparison baseline — the delta between the two is
// the per-event saving.
func BenchmarkEventLogAddDetailed(b *testing.B) {
	l := &EventLog{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.add(Event{T: units.Seconds(i), Kind: EventReconfig, Mask: uint64(i) | 1})
	}
}

func BenchmarkEventLogAddEagerFormat(b *testing.B) {
	l := &EventLog{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := Event{T: units.Seconds(i), Kind: EventReconfig, Mask: uint64(i) | 1}
		_ = e.Detail() // what the eager path paid per event
		l.add(e)
	}
}

func TestTraceBounded(t *testing.T) {
	tr := &Trace{Max: 64}
	for i := 0; i < 10_000; i++ {
		tr.record(units.Seconds(i), 2.0, PhaseCharging)
	}
	if len(tr.Samples) > 64 {
		t.Fatalf("bounded trace holds %d samples, max 64", len(tr.Samples))
	}
	if len(tr.Samples) < 2 {
		t.Fatalf("bounded trace kept only %d samples", len(tr.Samples))
	}
	// Thinning must preserve order and span: first sample stays, and
	// the trace tracks the run's end to within the (doubled) density
	// floor.
	if tr.Samples[0].T != 0 {
		t.Errorf("first sample T = %v, want 0", tr.Samples[0].T)
	}
	if got := tr.Samples[len(tr.Samples)-1].T; got < 9999-tr.MinInterval {
		t.Errorf("last sample T = %v, want within MinInterval (%v) of 9999",
			got, tr.MinInterval)
	}
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].T <= tr.Samples[i-1].T {
			t.Fatalf("samples out of order at %d: %v after %v",
				i, tr.Samples[i].T, tr.Samples[i-1].T)
		}
	}
}
