package sim

import (
	"fmt"

	"capybara/internal/units"
)

// EventKind labels one entry of a device's event log.
type EventKind int

const (
	// EventBoot: the device powered up.
	EventBoot EventKind = iota
	// EventBrownout: the buffer emptied under load.
	EventBrownout
	// EventReconfig: software reprogrammed the switch array.
	EventReconfig
	// EventRevert: a latch expired and a switch fell back to its
	// default during an outage.
	EventRevert
	// EventChargeDone: a charge pause completed.
	EventChargeDone
)

func (k EventKind) String() string {
	switch k {
	case EventBoot:
		return "boot"
	case EventBrownout:
		return "brownout"
	case EventReconfig:
		return "reconfig"
	case EventRevert:
		return "revert"
	case EventChargeDone:
		return "charge-done"
	default:
		return "unknown"
	}
}

// Event is one timeline entry.
type Event struct {
	T      units.Seconds
	Kind   EventKind
	Detail string
}

func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%v %s", e.T, e.Kind)
	}
	return fmt.Sprintf("%v %s (%s)", e.T, e.Kind, e.Detail)
}

// EventLog records a bounded device timeline. When the log is full the
// oldest entries are discarded (the tail of a long run is usually what
// matters when debugging).
type EventLog struct {
	// Max bounds the log; zero means 4096.
	Max    int
	events []Event
	// Dropped counts discarded entries.
	Dropped int
}

func (l *EventLog) limit() int {
	if l.Max > 0 {
		return l.Max
	}
	return 4096
}

func (l *EventLog) add(t units.Seconds, kind EventKind, detail string) {
	if l == nil {
		return
	}
	if len(l.events) >= l.limit() {
		half := len(l.events) / 2
		l.Dropped += half
		l.events = append(l.events[:0], l.events[half:]...)
	}
	l.events = append(l.events, Event{T: t, Kind: kind, Detail: detail})
}

// Events returns the recorded timeline in order.
func (l *EventLog) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Count tallies entries of one kind.
func (l *EventLog) Count(kind EventKind) int {
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
