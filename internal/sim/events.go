package sim

import (
	"fmt"

	"capybara/internal/units"
)

// EventKind labels one entry of a device's event log.
type EventKind int

const (
	// EventBoot: the device powered up.
	EventBoot EventKind = iota
	// EventBrownout: the buffer emptied under load.
	EventBrownout
	// EventReconfig: software reprogrammed the switch array.
	EventReconfig
	// EventRevert: a latch expired and a switch fell back to its
	// default during an outage.
	EventRevert
	// EventChargeDone: a charge pause completed.
	EventChargeDone
)

func (k EventKind) String() string {
	switch k {
	case EventBoot:
		return "boot"
	case EventBrownout:
		return "brownout"
	case EventReconfig:
		return "reconfig"
	case EventRevert:
		return "revert"
	case EventChargeDone:
		return "charge-done"
	default:
		return "unknown"
	}
}

// Event is one timeline entry. Details are carried as typed fields and
// formatted lazily by Detail/String: the recording paths run inside the
// simulator's hot loops, so an eager fmt.Sprintf per event would charge
// every run for strings that only debugging reads.
type Event struct {
	T    units.Seconds
	Kind EventKind
	// Mask is the active-bank mask after a reconfiguration or revert.
	Mask uint64
	// V and Elapsed are the reached voltage and charge duration of a
	// charge-done event.
	V       units.Voltage
	Elapsed units.Seconds
}

// Detail renders the kind-specific payload, or "" when the kind carries
// none.
func (e Event) Detail() string {
	switch e.Kind {
	case EventReconfig, EventRevert:
		return fmt.Sprintf("mask %#b", e.Mask)
	case EventChargeDone:
		return fmt.Sprintf("%v after %v", e.V, e.Elapsed)
	default:
		return ""
	}
}

func (e Event) String() string {
	if d := e.Detail(); d != "" {
		return fmt.Sprintf("%v %s (%s)", e.T, e.Kind, d)
	}
	return fmt.Sprintf("%v %s", e.T, e.Kind)
}

// EventLog records a bounded device timeline. When the log is full the
// oldest entries are discarded (the tail of a long run is usually what
// matters when debugging).
type EventLog struct {
	// Max bounds the log; zero means 4096.
	Max    int
	events []Event
	// Dropped counts discarded entries.
	Dropped int
}

func (l *EventLog) limit() int {
	if l.Max > 0 {
		return l.Max
	}
	return 4096
}

func (l *EventLog) add(e Event) {
	if l == nil {
		return
	}
	if len(l.events) >= l.limit() {
		half := len(l.events) / 2
		l.Dropped += half
		l.events = append(l.events[:0], l.events[half:]...)
	}
	l.events = append(l.events, e)
}

// Reset clears the log for reuse, keeping the backing array.
func (l *EventLog) Reset() {
	if l == nil {
		return
	}
	l.events = l.events[:0]
	l.Dropped = 0
}

// Events returns the recorded timeline in order.
func (l *EventLog) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Count tallies entries of one kind.
func (l *EventLog) Count(kind EventKind) int {
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
