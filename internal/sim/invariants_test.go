package sim

import (
	"math/rand"
	"testing"

	"capybara/internal/units"
)

// TestEnergyBalanceInvariant drives a device through random operation
// sequences and checks first-law accounting: the energy stored at the
// end can never exceed what was there initially plus what charging put
// in, minus what loads drew (leakage and charge-sharing only ever lose
// more).
func TestEnergyBalanceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		d := newTestDevice(units.Power(1+rng.Float64()*9) * units.MilliWatt)
		initial := d.Store().Energy()
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0:
				d.ChargeTo(units.Voltage(1.8+rng.Float64()*0.6), units.Seconds(rng.Float64()*20))
			case 1:
				d.Drain(units.Power(rng.Float64()*30)*units.MilliWatt, units.Seconds(rng.Float64()))
			case 2:
				mask := uint64(rng.Intn(4)) | 1
				if err := d.Configure(mask & 0b11); err != nil {
					t.Fatal(err)
				}
			case 3:
				d.AdvanceOff(units.Seconds(rng.Float64() * 50))
			}
		}
		// Sum over ALL banks: deactivated banks retain charge that
		// still belongs to the balance.
		var final units.Energy
		for i := 0; i < d.Array.NumBanks(); i++ {
			final += d.Array.Bank(i).Energy()
		}
		budget := initial + d.Stats.EnergyIntoStore - d.Stats.EnergyDrawn
		const eps = 1e-9
		if float64(final) > float64(budget)+eps {
			t.Fatalf("trial %d: energy created from nothing: final %v > budget %v "+
				"(initial %v, in %v, drawn %v)",
				trial, final, budget, initial, d.Stats.EnergyIntoStore, d.Stats.EnergyDrawn)
		}
	}
}

// TestClockMonotoneInvariant checks that no operation sequence can move
// the simulated clock backwards.
func TestClockMonotoneInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := newTestDevice(3 * units.MilliWatt)
	last := d.Now()
	for op := 0; op < 300; op++ {
		switch rng.Intn(5) {
		case 0:
			d.ChargeTo(2.4, units.Seconds(rng.Float64()*5))
		case 1:
			d.Drain(units.Power(rng.Float64()*20)*units.MilliWatt, units.Seconds(rng.Float64()*0.2))
		case 2:
			d.Boot()
		case 3:
			d.Sleep(units.Seconds(rng.Float64()))
		case 4:
			d.AdvanceOff(units.Seconds(rng.Float64()))
		}
		if d.Now() < last {
			t.Fatalf("clock moved backwards at op %d: %v < %v", op, d.Now(), last)
		}
		last = d.Now()
	}
}

// TestVoltageBoundsInvariant checks that the storage voltage stays
// within [0, rated] under random operation.
func TestVoltageBoundsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := newTestDevice(10 * units.MilliWatt)
	for op := 0; op < 500; op++ {
		switch rng.Intn(3) {
		case 0:
			d.ChargeTo(units.Voltage(rng.Float64()*5), units.Seconds(rng.Float64()*10))
		case 1:
			d.Drain(units.Power(rng.Float64()*50)*units.MilliWatt, units.Seconds(rng.Float64()*2))
		case 2:
			if err := d.Configure(uint64(rng.Intn(4)) | 1); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < d.Array.NumBanks(); i++ {
			b := d.Array.Bank(i)
			if v := b.Voltage(); v < 0 || v > b.RatedVoltage() {
				t.Fatalf("bank %d voltage %v outside [0, %v] at op %d", i, v, b.RatedVoltage(), op)
			}
		}
	}
}

// TestTimeAccountingInvariant checks the phase times sum to the clock.
func TestTimeAccountingInvariant(t *testing.T) {
	d := newTestDevice(5 * units.MilliWatt)
	d.ChargeTo(2.4, 100)
	d.Boot()
	d.Drain(3*units.MilliWatt, 0.5)
	d.Sleep(0.2)
	d.AdvanceOff(3)
	d.ChargeTo(2.4, 100)
	sum := d.Stats.TimeOn + d.Stats.TimeCharging + d.Stats.TimeOff
	diff := float64(d.Now() - sum)
	if diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("phase times %v do not sum to clock %v", sum, d.Now())
	}
}
