// Package sim provides the discrete-event device simulator that ties a
// harvester-fed power system, a reconfigurable reservoir, and an MCU
// into one intermittently-powered device with a simulated clock.
//
// The intermittent execution model follows the paper (§2): the
// processor is completely off while charging, turns on once the buffer
// reaches the configured top voltage, and executes until the buffer is
// empty (brownout). Charging while operating is negligible and not
// modeled. A Device with Continuous set models the continuously-powered
// reference board used as the evaluation baseline.
package sim

import (
	"fmt"

	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/units"
)

// Phase labels what the device is doing, for traces.
type Phase int

const (
	// PhaseOff: no useful input power and no execution.
	PhaseOff Phase = iota
	// PhaseCharging: accumulating energy, processor off.
	PhaseCharging
	// PhaseRunning: executing on buffered energy.
	PhaseRunning
)

func (p Phase) String() string {
	switch p {
	case PhaseCharging:
		return "charging"
	case PhaseRunning:
		return "running"
	default:
		return "off"
	}
}

// Sample is one point of a voltage trace (Fig. 2-style).
type Sample struct {
	T     units.Seconds
	V     units.Voltage
	Phase Phase
}

// Trace records the storage voltage over time with bounded density.
type Trace struct {
	// MinInterval is the minimum spacing between recorded samples;
	// zero records every transition.
	MinInterval units.Seconds
	// Max bounds the number of retained samples; zero means unbounded.
	// A full trace thins itself: every other sample is dropped and
	// MinInterval doubles, so arbitrarily long runs keep a
	// shape-preserving trajectory in fixed memory.
	Max     int
	Samples []Sample
}

// traceInitialCap sizes the first allocation: one growth step instead
// of the ~10 progressive doublings a long run otherwise pays.
const traceInitialCap = 1024

func (tr *Trace) record(t units.Seconds, v units.Voltage, phase Phase) {
	if tr == nil {
		return
	}
	if n := len(tr.Samples); n > 0 {
		last := tr.Samples[n-1]
		if t-last.T < tr.MinInterval && last.Phase == phase {
			return
		}
	} else if tr.Samples == nil {
		capacity := traceInitialCap
		if tr.Max > 0 {
			capacity = tr.Max
		}
		tr.Samples = make([]Sample, 0, capacity)
	}
	if tr.Max > 0 && len(tr.Samples) >= tr.Max {
		tr.thin()
	}
	tr.Samples = append(tr.Samples, Sample{T: t, V: v, Phase: phase})
}

// Reset clears the trace for reuse, keeping the backing array. The
// caller re-establishes MinInterval afterwards when it matters:
// thinning may have doubled it away from the originally configured
// density floor.
func (tr *Trace) Reset() {
	if tr == nil {
		return
	}
	tr.Samples = tr.Samples[:0]
}

// thin halves the retained samples in place (keeping every other one)
// and doubles the density floor so the trace converges instead of
// thrashing at the bound.
func (tr *Trace) thin() {
	n := len(tr.Samples)
	for i := 1; 2*i < n; i++ {
		tr.Samples[i] = tr.Samples[2*i]
	}
	tr.Samples = tr.Samples[:(n+1)/2]
	if tr.MinInterval > 0 {
		tr.MinInterval *= 2
	} else if m := len(tr.Samples); m > 1 {
		tr.MinInterval = (tr.Samples[m-1].T - tr.Samples[0].T) / units.Seconds(m-1)
	}
}

// Stats aggregates device-lifetime counters.
type Stats struct {
	Boots        int
	Brownouts    int
	TimeOn       units.Seconds
	TimeCharging units.Seconds
	TimeOff      units.Seconds
	// EnergyDrawn is the energy pulled out of storage by loads;
	// EnergyIntoStore is the energy charging put into storage. Together
	// with leakage and charge-share losses they close the device's
	// energy balance (see TestEnergyBalanceInvariant).
	EnergyDrawn     units.Energy
	EnergyIntoStore units.Energy
}

// Device is one simulated energy-harvesting node.
type Device struct {
	Sys   *power.System
	Array *reservoir.Array
	MCU   device.MCU
	NV    *device.NVStore
	// Continuous marks the continuously-powered reference baseline:
	// charging is instantaneous and discharging never browns out.
	Continuous bool
	// Trace, when non-nil, records the voltage trajectory.
	Trace *Trace
	// Log, when non-nil, records a timeline of boots, brownouts,
	// reconfigurations, reverts, and charge completions.
	Log *EventLog
	// Obs, when non-nil, receives fine-grained simulator callbacks
	// (see Observer); used by the chaos harness.
	Obs Observer
	// Ops, when non-nil, memoizes whole Drain/ChargeTo calls keyed on
	// exact device state (see OpCache) — the fleet engine's batch
	// execution path. Replays are byte-identical to direct solves for
	// every report-visible quantity. The cache engages only while
	// Trace, Log, and Obs are all nil (they need the intermediate
	// events a replay skips) and never for Continuous devices.
	Ops *OpCache
	// Tape, when non-nil, mirrors every clock/stat mutation the
	// simulator performs onto a step-effect tape (see StepTape) — the
	// recording substrate for fused task-engine stepping. Attached only
	// by the task engine while a step is being recorded; the hooks are
	// a nil check when absent.
	Tape *StepTape

	Stats Stats
	now   units.Seconds

	// opsID/opsFor memoize the device's interned hardware fingerprint
	// in Ops (see OpCache.deviceID).
	opsID  uint32
	opsFor *OpCache

	// pAtT/pAt/pUntil memoize the last harvester sample and the window
	// over which the source guarantees it constant: one simulator step
	// asks for the source output at the same instant several times
	// (powered-ness, tick split, charge segment), successive steps walk
	// forward inside one constancy segment (a steady source is one
	// segment forever; PWM/blackout traces are piecewise constant), and
	// PowerAt is pure in t, so the evaluations collapse to one trace
	// walk per segment.
	pAtT   units.Seconds
	pUntil units.Seconds
	pAt    units.Power
	pAtOK  bool
}

// powerAt returns Sys.Source.PowerAt(t) through the constancy-window
// memo. With an observer attached the memo is skipped: observer hooks
// may mutate the source mid-run (chaos injects outage windows at
// observed instants), which voids any constancy horizon captured
// before the hook fired.
func (d *Device) powerAt(t units.Seconds) units.Power {
	if d.Obs != nil {
		return d.Sys.Source.PowerAt(t)
	}
	if d.pAtOK && (d.pAtT == t || (t > d.pAtT && t < d.pUntil)) {
		return d.pAt
	}
	p := d.Sys.Source.PowerAt(t)
	d.pAtT, d.pAt, d.pAtOK = t, p, true
	d.pUntil = t + harvest.NextChange(d.Sys.Source, t)
	return p
}

// NewDevice assembles a device with a fresh non-volatile store.
func NewDevice(sys *power.System, arr *reservoir.Array, mcu device.MCU) *Device {
	return &Device{Sys: sys, Array: arr, MCU: mcu, NV: device.NewNVStore()}
}

// Now returns the simulated time.
func (d *Device) Now() units.Seconds { return d.now }

// Store returns the electrical view of the currently connected banks.
func (d *Device) Store() *reservoir.ActiveSet { return d.Array.ActiveSet() }

// Configure reprograms the reservoir switches; callable only while the
// device is running (the GPIO interface needs the MCU up). The GPIO
// pulse costs a small quantum of active time.
func (d *Device) Configure(mask uint64) error {
	if err := d.Array.Configure(mask); err != nil {
		return err
	}
	d.Log.add(Event{T: d.now, Kind: EventReconfig, Mask: d.Array.ActiveMask()})
	if !d.Continuous {
		v := d.Store().Voltage()
		d.observe(HookReconfig, d.now, d.now, v, v, true)
		// Programming the latch through the GPIO interface: ~1 ms active.
		d.Drain(d.MCU.ActivePower, 1*units.Millisecond)
	}
	return nil
}

// tickSpan advances the array's passive state for the span of length
// dt that started at t0, deciding powered-ness from the span start:
// event-driven segments are aligned to source changes, so the output
// at t0 is the output for the whole span (sampling at the segment end
// would misread the instant the *next* segment begins).
//
// Unpowered spans are split at latch expiries so each revert (and the
// charge sharing it triggers) lands at its expiry instant rather than
// at the span end. Event-driven callers already bound their segments
// by NextRevert, but paths that tick a whole load drain in one span
// (Drain) would otherwise leak the post-revert configuration for the
// wrong duration. Exponential latch and bank decay compose exactly
// across the split, so only the revert timing changes.
func (d *Device) tickSpan(t0, dt units.Seconds) {
	if d.powerAt(t0) > 0 {
		d.Array.TickPowered(dt)
		return
	}
	for {
		step := dt
		if nr := d.Array.NextRevert(); nr < step {
			step = nr
		}
		before := d.Array.Reverts
		d.Array.TickUnpowered(step)
		t0 += step
		dt -= step
		reverted := d.Array.Reverts > before
		if reverted {
			d.Log.add(Event{T: t0, Kind: EventRevert, Mask: d.Array.ActiveMask()})
		}
		if dt <= 0 {
			return
		}
		if step == 0 && !reverted {
			// Defensive: an expiry that cannot fire must not stall the
			// split loop; take the rest of the span in one tick.
			d.Array.TickUnpowered(dt)
			return
		}
	}
}

// Drain runs a load drawing loadPower at the regulated output for up to
// dt of active time. It returns the time sustained and whether the full
// duration completed; on false the device browned out (task restart
// required). Time advances by the sustained span.
func (d *Device) Drain(loadPower units.Power, dt units.Seconds) (units.Seconds, bool) {
	if dt < 0 {
		dt = 0
	}
	if d.Continuous {
		de := units.Energy(float64(loadPower) * float64(dt))
		d.now += dt
		d.Stats.TimeOn += dt
		d.Stats.EnergyDrawn += de
		d.Tape.add(dt, float64(de), TapeTimeOn|TapeDrawn)
		return dt, true
	}
	if c := d.Ops; c != nil && d.Trace == nil && d.Log == nil && d.Obs == nil && c.engaged() {
		return d.drainFast(c, loadPower, dt)
	}
	return d.drainSlow(loadPower, dt)
}

// drainSlow is the direct (uncached) drain: discharge, advance time,
// tick the array's passive state.
func (d *Device) drainSlow(loadPower units.Power, dt units.Seconds) (units.Seconds, bool) {
	set := d.Store()
	start, v0 := d.now, set.Voltage()
	d.Trace.record(d.now, set.Voltage(), PhaseRunning)
	sustained, ok := d.Sys.Discharge(set, loadPower, dt)
	de := units.Energy(float64(d.Sys.StoreDraw(loadPower)) * float64(sustained))
	d.now += sustained
	d.Stats.TimeOn += sustained
	d.Stats.EnergyDrawn += de
	if d.Tape != nil {
		d.Tape.Sourced = true // tickSpan samples the source
		d.Tape.add(sustained, float64(de), TapeTimeOn|TapeDrawn)
	}
	d.tickSpan(start, sustained)
	d.Trace.record(d.now, set.Voltage(), PhaseRunning)
	if !ok {
		d.Stats.Brownouts++
		d.Log.add(Event{T: d.now, Kind: EventBrownout})
	}
	d.observe(HookDrain, start, d.now, v0, set.Voltage(), ok)
	return sustained, ok
}

// chargeStep bounds how long the charge loop advances between
// re-evaluations of an *opaque* source (one with no harvest.Stepped
// horizon) and, for traced runs, how sparse the recorded voltage
// trajectory may get. Stepped sources advance in whole analytic
// segments instead.
const chargeStep units.Seconds = 1.0

// chargeHorizon returns the next event-driven segment length starting
// at d.now, at most remain: the span over which the source output is
// constant (opaque sources fall back to the legacy fixed step),
// additionally split at the next latch expiry during true outages (so
// reverts land at the right instant) and, when a voltage trace is
// being recorded, capped so the trajectory stays plottable.
//
// whole reports that the source promised a positive constancy horizon:
// the returned step is then one exact analytic segment, either because
// step never exceeded the promise or because the MinAdvance floor
// dominated it — in which case power.segmentHorizon would floor to the
// identical value. Either way TimeToChargeTo's inner stepping collapses
// to a single StepSegment call with bit-identical arguments, so the
// caller may invoke StepSegment directly and skip the re-derivation of
// the same horizon.
func (d *Device) chargeHorizon(remain units.Seconds) (step units.Seconds, whole bool) {
	step = remain
	whole = true
	if h := harvest.NextChange(d.Sys.Source, d.now); h <= 0 {
		step = min(step, chargeStep)
		whole = false
	} else if h < step {
		step = h
	}
	if d.powerAt(d.now) <= 0 {
		// A true outage: latch capacitors are decaying, and the first
		// expiry reconfigures the array mid-charge (§5.2).
		if nr := d.Array.NextRevert(); nr < step {
			step = nr
		}
	}
	if d.Trace != nil {
		density := chargeStep
		if d.Trace.MinInterval > density {
			density = d.Trace.MinInterval
		}
		if density < step {
			step = density
		}
	}
	// A horizon shorter than one ULP of the clock cannot advance time
	// (sub-ULP constancy slivers near PWM edges); round up so the loop
	// always makes progress.
	if m := units.MinAdvance(d.now); step < m {
		step = m
	}
	return step, whole
}

// ChargeTo accumulates energy with the processor off until the active
// set reaches target volts, or until maxWait elapses. It returns the
// time spent and whether the target was reached. Latch capacitors decay
// during true outages (no input power) and may revert switches
// mid-charge — exactly the §5.2 hazard.
//
// The loop is event-driven: each iteration advances one analytic
// segment bounded by the next source change, latch expiry, maxWait, or
// the target being hit (see chargeHorizon), so charging a large bank
// from a constant source costs O(1) instead of O(seconds).
func (d *Device) ChargeTo(target units.Voltage, maxWait units.Seconds) (units.Seconds, bool) {
	if d.Continuous {
		return 0, true
	}
	if d.Tape != nil {
		d.tapeCharge(target, maxWait)
		elapsed, ok := d.chargeDispatch(target, maxWait)
		d.tapeChargeDone(maxWait, elapsed, ok)
		return elapsed, ok
	}
	return d.chargeDispatch(target, maxWait)
}

// chargeDispatch routes a charge to the cached or direct path.
func (d *Device) chargeDispatch(target units.Voltage, maxWait units.Seconds) (units.Seconds, bool) {
	if c := d.Ops; c != nil && d.Trace == nil && d.Log == nil && d.Obs == nil && c.engaged() {
		return d.chargeFast(c, target, maxWait)
	}
	return d.chargeSlow(target, maxWait)
}

// chargeSlow is the direct (uncached) event-driven charge loop.
func (d *Device) chargeSlow(target units.Voltage, maxWait units.Seconds) (units.Seconds, bool) {
	set := d.Store()
	var elapsed units.Seconds
	d.Trace.record(d.now, set.Voltage(), PhaseCharging)
	for {
		if set.Voltage() >= target {
			d.Trace.record(d.now, set.Voltage(), PhaseCharging)
			return elapsed, true
		}
		if elapsed >= maxWait {
			return elapsed, false
		}
		step, whole := d.chargeHorizon(maxWait - elapsed)
		// Within one segment the source output is constant, so whether
		// charge power flows is decided once, at the segment start —
		// the whole span is attributed to the matching counter. (The
		// old fixed-step loop reused a stale flag when the source cut
		// out mid-charge, counting dead air as TimeCharging.)
		start := d.now
		v0 := set.Voltage()
		charging := d.Sys.ChargePower(v0, start) > 0
		before := set.Energy()
		var used units.Seconds
		var reached bool
		if whole {
			// The horizon is one exact analytic segment, so the general
			// charge stepper collapses to a single closed-form segment
			// solve: same float operations, one fewer source-horizon
			// walk per segment.
			used, reached = d.Sys.StepSegment(set, target, start, step)
		} else {
			used, reached = d.Sys.TimeToChargeTo(set, target, start, step)
		}
		if gained := set.Energy() - before; gained > 0 {
			d.Stats.EnergyIntoStore += gained
		}
		d.now += used
		elapsed += used
		if charging {
			d.Stats.TimeCharging += used
		} else {
			d.Stats.TimeOff += used
		}
		if d.Tape != nil {
			sel := TapeTimeOff
			if charging {
				sel = TapeTimeCharging
			}
			e, eSel := 0.0, uint8(0)
			if gained := set.Energy() - before; gained > 0 {
				e, eSel = float64(gained), TapeInto
			}
			d.Tape.add(used, e, sel|eSel)
		}
		d.Trace.record(d.now, set.Voltage(), PhaseCharging)
		// The charge segment is observed before the passive tick: V0→V1
		// is the pure analytic charge trajectory, which is what the
		// chaos harness cross-checks numerically.
		d.observe(HookChargeSegment, start, d.now, v0, set.Voltage(), reached)
		// Success is decided before the passive tick: the voltage
		// supervisor boots the device the instant the threshold is hit;
		// the leakage within the same step is immaterial.
		d.tickSpan(start, used)
		d.observe(HookSpan, start, d.now, v0, set.Voltage(), true)
		if reached {
			d.Trace.record(d.now, set.Voltage(), PhaseCharging)
			d.Log.add(Event{T: d.now, Kind: EventChargeDone, V: set.Voltage(), Elapsed: elapsed})
			return elapsed, true
		}
	}
}

// Boot powers the MCU up from the charged buffer: boot-time active
// drain plus a boot counter. It reports whether boot completed without
// brownout.
func (d *Device) Boot() bool {
	d.Stats.Boots++
	d.Log.add(Event{T: d.now, Kind: EventBoot})
	if !d.Continuous {
		v := d.Store().Voltage()
		d.observe(HookBoot, d.now, d.now, v, v, true)
	}
	_, ok := d.Drain(d.MCU.ActivePower, d.MCU.BootTime)
	return ok
}

// Sleep keeps the device in a retentive low-power state for dt. The
// power system's quiescent draw continues, which is why sleeping does
// not preserve the buffer (§6.4).
func (d *Device) Sleep(dt units.Seconds) (units.Seconds, bool) {
	return d.Drain(d.MCU.SleepPower, dt)
}

// AdvanceOff lets dt pass with the device off and not charging
// (used when waiting for external conditions with a full buffer).
// Like ChargeTo it advances in event-driven segments: spans are split
// at source changes (so powered/unpowered spans tick the right array
// path) and at latch expiries (so reverts land at the right instant).
func (d *Device) AdvanceOff(dt units.Seconds) {
	for dt > 0 {
		step := dt
		if h := harvest.NextChange(d.Sys.Source, d.now); h > 0 && h < step {
			step = h
		}
		if d.powerAt(d.now) <= 0 {
			if nr := d.Array.NextRevert(); nr < step {
				step = nr
			}
		}
		// Same progress guarantee as chargeHorizon: never step by less
		// than the clock can represent.
		if m := units.MinAdvance(d.now); step < m {
			step = m
		}
		start := d.now
		v0 := d.Store().Voltage()
		d.now += step
		d.Stats.TimeOff += step
		if d.Tape != nil {
			d.Tape.Sourced = true
			d.Tape.add(step, 0, TapeTimeOff)
		}
		d.tickSpan(start, step)
		d.observe(HookSpan, start, d.now, v0, d.Store().Voltage(), true)
		dt -= step
	}
}

func (d *Device) String() string {
	return fmt.Sprintf("device[t=%v %s %v]", d.now, d.MCU.Name, d.Array)
}
