package sim

import (
	"math"

	"capybara/internal/harvest"
	"capybara/internal/units"
)

// Step-effect tape: the recording substrate for fused task-engine
// stepping (task.StepFuser; DESIGN.md §10, stage 3).
//
// While a tape is attached (Device.Tape), every mutation the simulator
// makes to the report-visible clock/stat accumulators — d.now and the
// Stats time/energy counters — is mirrored onto the tape as one
// TapeEntry per add, in execution order. A follower device that is
// bit-identical in every input the step reads can then replay the step
// by applying the entries to its own accumulators: `now += Dur` plus
// the selected counter adds, in the same order, with the same values,
// is exactly the float-add sequence its own scalar execution would have
// performed. (Adds to *different* accumulators commute trivially —
// each entry touches one time counter and at most one energy counter —
// and adds to the *same* accumulator keep their recorded order.)
//
// The tape also collects the evidence the replayer needs to decide that
// a recorded step is valid at a different absolute clock:
//
//   - Sourced: whether any operation sampled the harvester. Continuous
//     devices never do; their steps replay with no source evidence.
//   - NeedForever: a ChargeTo actually entered its charge loop. Such a
//     step is recordable only under a source with an unbounded
//     constancy horizon (harvest.Forever) and power flowing — the same
//     cacheability rule the OpCache uses — because a finite horizon
//     can clip the charge loop's segment lengths at a distance that
//     depends on the absolute clock.
//   - MinSlack: the tightest deadline margin any ChargeTo had
//     (maxWait − elapsed). Deadlines arrive as horizon-relative
//     windows, so a follower shifted δ later than the leader runs the
//     same calls with maxWait shrunk by δ; the recorded completions
//     still fit iff δ < MinSlack.
//   - Bad: the step hit an operation whose outcome is not a pure
//     function of the recorded inputs (time-varying-source charge,
//     deadline-bound charge failure); the recording is discarded.
type TapeEntry struct {
	// Dur advances the clock and the selected time counter.
	Dur units.Seconds
	// Energy is the value added to the selected energy counter (0 when
	// Sel selects none).
	Energy float64
	// Sel packs the counter selectors: bits 0-1 the time counter, bits
	// 2-3 the energy counter.
	Sel uint8
}

// Sel encodings for TapeEntry.
const (
	TapeTimeOn uint8 = iota
	TapeTimeCharging
	TapeTimeOff
)

const (
	// TapeDrawn/TapeInto select the energy accumulator (bits 2-3);
	// zero in that field selects none.
	TapeDrawn uint8 = 1 << 2
	TapeInto  uint8 = 2 << 2
)

// StepTape accumulates one engine step's recorded effects.
type StepTape struct {
	Ents []TapeEntry
	// Sourced reports that some operation sampled the harvester.
	Sourced bool
	// NeedForever reports that a ChargeTo entered its charge loop, so
	// replay requires an unbounded source-constancy horizon.
	NeedForever bool
	// Bad marks the step unrecordable.
	Bad bool
	// MinSlack is the tightest ChargeTo deadline margin seen
	// (maxWait − elapsed), +Inf when every operation was deadline-free.
	MinSlack float64
}

// Reset clears the tape for a new step, keeping backing storage.
func (t *StepTape) Reset() {
	t.Ents = t.Ents[:0]
	t.Sourced = false
	t.NeedForever = false
	t.Bad = false
	t.MinSlack = math.Inf(1)
}

func (t *StepTape) add(dur units.Seconds, energy float64, sel uint8) {
	if t == nil {
		return
	}
	t.Ents = append(t.Ents, TapeEntry{Dur: dur, Energy: energy, Sel: sel})
}

// sourced marks that an operation sampled the harvester.
func (t *StepTape) sourced() {
	if t != nil {
		t.Sourced = true
	}
}

// ApplyTapeEntry applies one recorded effect to the device: the same
// single adds, with the same values, the recorded execution performed.
func (d *Device) ApplyTapeEntry(e TapeEntry) {
	d.now += e.Dur
	switch e.Sel & 3 {
	case TapeTimeOn:
		d.Stats.TimeOn += e.Dur
	case TapeTimeCharging:
		d.Stats.TimeCharging += e.Dur
	default:
		d.Stats.TimeOff += e.Dur
	}
	switch e.Sel &^ 3 {
	case TapeDrawn:
		d.Stats.EnergyDrawn += units.Energy(e.Energy)
	case TapeInto:
		d.Stats.EnergyIntoStore += units.Energy(e.Energy)
	}
}

// tapeChargeReplay mirrors a chargeFast cache replay's accumulator adds
// onto the tape: one entry, with the counter selectors the replay used.
func (d *Device) tapeChargeReplay(e *opEntry) {
	if d.Tape == nil {
		return
	}
	sel := TapeTimeOff
	if e.flag {
		sel = TapeTimeCharging
	}
	if e.energy != 0 {
		sel |= TapeInto
	}
	d.Tape.add(e.dur, e.energy, sel)
}

// tapeCharge validates and accounts a ChargeTo call against the
// attached tape. Called from ChargeTo for non-continuous devices before
// dispatch; the per-iteration effect entries are added by the charge
// loop (or the cache replay path) itself.
func (d *Device) tapeCharge(target units.Voltage, maxWait units.Seconds) {
	t := d.Tape
	if t == nil || t.Bad {
		return
	}
	if d.Store().Voltage() >= target || maxWait <= 0 {
		// Mirrors the charge loop's first-iteration exits: no time
		// passes, nothing to validate.
		return
	}
	t.Sourced = true
	if d.powerAt(d.now) <= 0 || harvest.NextChange(d.Sys.Source, d.now) != harvest.Forever {
		// The charge trajectory depends on where the clock sits in the
		// source's pattern (or on dead air): unrecordable.
		t.Bad = true
		return
	}
	t.NeedForever = true
}

// tapeChargeDone records a completed ChargeTo's deadline margin; a
// deadline-bound failure poisons the recording (its outcome is a
// function of maxWait, which shifts with the replayer's clock).
func (d *Device) tapeChargeDone(maxWait, elapsed units.Seconds, ok bool) {
	t := d.Tape
	if t == nil || t.Bad || elapsed == 0 {
		return
	}
	if !ok {
		t.Bad = true
		return
	}
	if slack := float64(maxWait - elapsed); slack < t.MinSlack {
		t.MinSlack = slack
	}
}
