package sim

import (
	"math"

	"capybara/internal/harvest"
	"capybara/internal/units"
)

// Step-effect tape: the recording substrate for fused task-engine
// stepping (task.StepFuser; DESIGN.md §10, stage 3).
//
// While a tape is attached (Device.Tape), every mutation the simulator
// makes to the report-visible clock/stat accumulators — d.now and the
// Stats time/energy counters — is mirrored onto the tape as one
// TapeEntry per add, in execution order. A follower device that is
// bit-identical in every input the step reads can then replay the step
// by applying the entries to its own accumulators: `now += Dur` plus
// the selected counter adds, in the same order, with the same values,
// is exactly the float-add sequence its own scalar execution would have
// performed. (Adds to *different* accumulators commute trivially —
// each entry touches one time counter and at most one energy counter —
// and adds to the *same* accumulator keep their recorded order.)
//
// The tape also collects the evidence the replayer needs to decide that
// a recorded step is valid at a different absolute clock:
//
//   - Sourced: whether any operation sampled the harvester. Continuous
//     devices never do; their steps replay with no source evidence.
//   - NeedForever: a ChargeTo actually entered its charge loop under a
//     source with an unbounded constancy horizon (harvest.Forever) —
//     the OpCache's classic cacheability rule. With PhaseKeys enabled,
//     a charge under a *finite* horizon is recordable too, provided it
//     completed strictly inside the constancy segment it started in:
//     such a charge is one closed-form StepSegment solve whose elapsed
//     time and effects are independent of where the clock sits in the
//     segment (the solve's inputs are the sampled source output and the
//     electrical state, both in the replayer's evidence), so the step
//     translates to any clock whose live horizon covers it. A charge
//     that crossed a segment edge poisons the recording — its segment
//     splits depend on the absolute clock.
//   - MinSlack: the tightest deadline margin any ChargeTo had
//     (maxWait − elapsed). Deadlines arrive as horizon-relative
//     windows, so a follower shifted δ later than the leader runs the
//     same calls with maxWait shrunk by δ; the recorded completions
//     still fit iff δ < MinSlack.
//   - Bad: the step hit an operation whose outcome is not a pure
//     function of the recorded inputs (time-varying-source charge,
//     deadline-bound charge failure); the recording is discarded.
type TapeEntry struct {
	// Dur advances the clock and the selected time counter.
	Dur units.Seconds
	// Energy is the value added to the selected energy counter (0 when
	// Sel selects none).
	Energy float64
	// Sel packs the counter selectors: bits 0-1 the time counter, bits
	// 2-3 the energy counter.
	Sel uint8
}

// Sel encodings for TapeEntry.
const (
	TapeTimeOn uint8 = iota
	TapeTimeCharging
	TapeTimeOff
)

const (
	// TapeDrawn/TapeInto select the energy accumulator (bits 2-3);
	// zero in that field selects none.
	TapeDrawn uint8 = 1 << 2
	TapeInto  uint8 = 2 << 2
)

// StepTape accumulates one engine step's recorded effects.
type StepTape struct {
	Ents []TapeEntry
	// Sourced reports that some operation sampled the harvester.
	Sourced bool
	// NeedForever reports that a ChargeTo entered its charge loop under
	// an unbounded constancy horizon, so replay requires one too.
	NeedForever bool
	// Bad marks the step unrecordable.
	Bad bool
	// PhaseKeys permits recording charges under finite constancy
	// horizons when the source's phase regime is keyable (see
	// harvest.PhaseKey); a charge must then complete strictly inside
	// the segment it started in. Configuration, preserved by Reset.
	PhaseKeys bool
	// Phased reports that a finite-horizon charge completed inside its
	// segment — the step is recordable only because PhaseKeys is on.
	Phased bool
	// MinSlack is the tightest ChargeTo deadline margin seen
	// (maxWait − elapsed), +Inf when every operation was deadline-free.
	MinSlack float64

	// pendH is the live constancy horizon at the start of the
	// finite-horizon charge currently executing (0 when none pending).
	pendH units.Seconds
}

// Reset clears the tape for a new step, keeping backing storage and the
// PhaseKeys configuration.
func (t *StepTape) Reset() {
	t.Ents = t.Ents[:0]
	t.Sourced = false
	t.NeedForever = false
	t.Bad = false
	t.Phased = false
	t.MinSlack = math.Inf(1)
	t.pendH = 0
}

func (t *StepTape) add(dur units.Seconds, energy float64, sel uint8) {
	if t == nil {
		return
	}
	t.Ents = append(t.Ents, TapeEntry{Dur: dur, Energy: energy, Sel: sel})
}

// sourced marks that an operation sampled the harvester.
func (t *StepTape) sourced() {
	if t != nil {
		t.Sourced = true
	}
}

// ApplyTapeEntry applies one recorded effect to the device: the same
// single adds, with the same values, the recorded execution performed.
func (d *Device) ApplyTapeEntry(e TapeEntry) {
	d.now += e.Dur
	switch e.Sel & 3 {
	case TapeTimeOn:
		d.Stats.TimeOn += e.Dur
	case TapeTimeCharging:
		d.Stats.TimeCharging += e.Dur
	default:
		d.Stats.TimeOff += e.Dur
	}
	switch e.Sel &^ 3 {
	case TapeDrawn:
		d.Stats.EnergyDrawn += units.Energy(e.Energy)
	case TapeInto:
		d.Stats.EnergyIntoStore += units.Energy(e.Energy)
	}
}

// ApplyTapeSpan applies one whole tape iteration whose end clock the
// caller precomputed by the same sequential Dur adds ApplyTapeEntry
// performs: assigning tEnd to the clock is then bit-identical to
// performing the adds, and each entry's counter adds are applied in
// recorded order with recorded values — the spin fast path for
// templates that record no samples (nothing inside the span observes
// intermediate clocks). prep is the boundary index where the
// power-manager preparation finished; the returned snapshot is the
// (TimeOn, EnergyDrawn) pair at that boundary — at the span start when
// prep is 0 — exactly the task-profile window base the scalar engine
// snapshots.
func (d *Device) ApplyTapeSpan(ents []TapeEntry, prep int32, tEnd units.Seconds) (timeBefore units.Seconds, energyBefore units.Energy) {
	timeBefore, energyBefore = d.Stats.TimeOn, d.Stats.EnergyDrawn
	for k := range ents {
		e := &ents[k]
		switch e.Sel & 3 {
		case TapeTimeOn:
			d.Stats.TimeOn += e.Dur
		case TapeTimeCharging:
			d.Stats.TimeCharging += e.Dur
		default:
			d.Stats.TimeOff += e.Dur
		}
		switch e.Sel &^ 3 {
		case TapeDrawn:
			d.Stats.EnergyDrawn += units.Energy(e.Energy)
		case TapeInto:
			d.Stats.EnergyIntoStore += units.Energy(e.Energy)
		}
		if int32(k+1) == prep {
			timeBefore, energyBefore = d.Stats.TimeOn, d.Stats.EnergyDrawn
		}
	}
	d.now = tEnd
	return timeBefore, energyBefore
}

// tapeChargeReplay mirrors a chargeFast cache replay's accumulator adds
// onto the tape: one entry, with the counter selectors the replay used.
func (d *Device) tapeChargeReplay(e *opEntry) {
	if d.Tape == nil {
		return
	}
	sel := TapeTimeOff
	if e.flag {
		sel = TapeTimeCharging
	}
	if e.energy != 0 {
		sel |= TapeInto
	}
	d.Tape.add(e.dur, e.energy, sel)
}

// tapeCharge validates and accounts a ChargeTo call against the
// attached tape. Called from ChargeTo for non-continuous devices before
// dispatch; the per-iteration effect entries are added by the charge
// loop (or the cache replay path) itself.
func (d *Device) tapeCharge(target units.Voltage, maxWait units.Seconds) {
	t := d.Tape
	if t == nil || t.Bad {
		return
	}
	if d.Store().Voltage() >= target || maxWait <= 0 {
		// Mirrors the charge loop's first-iteration exits: no time
		// passes, nothing to validate.
		return
	}
	t.Sourced = true
	if d.powerAt(d.now) <= 0 {
		// Dead air: the charge waits on the source's pattern, so its
		// trajectory depends on the absolute clock. Unrecordable.
		t.Bad = true
		return
	}
	h := harvest.NextChange(d.Sys.Source, d.now)
	if h == harvest.Forever {
		t.NeedForever = true
		return
	}
	if !t.PhaseKeys || h <= 0 {
		t.Bad = true
		return
	}
	if _, ok := harvest.PhaseKey(d.Sys.Source, d.now); !ok {
		// A finite horizon without a phase regime (opaque or
		// continuously-varying source): templates would thrash across
		// regimes with no key to separate them.
		t.Bad = true
		return
	}
	// Finite-horizon charge: recordable iff it completes strictly
	// inside this constancy segment (checked in tapeChargeDone).
	t.pendH = h
}

// tapeChargeDone records a completed ChargeTo's deadline margin; a
// deadline-bound failure poisons the recording (its outcome is a
// function of maxWait, which shifts with the replayer's clock), as does
// a finite-horizon charge that ran to or past its segment edge (its
// segment splits depend on the absolute clock).
func (d *Device) tapeChargeDone(maxWait, elapsed units.Seconds, ok bool) {
	t := d.Tape
	if t == nil {
		return
	}
	pendH := t.pendH
	t.pendH = 0
	if t.Bad || elapsed == 0 {
		return
	}
	if !ok {
		t.Bad = true
		return
	}
	if pendH > 0 {
		if elapsed >= pendH {
			// Crossed (or grazed) the segment edge: the charge loop
			// split at the edge, so its entries are
			// clock-position-dependent.
			t.Bad = true
			return
		}
		t.Phased = true
	}
	if slack := float64(maxWait - elapsed); slack < t.MinSlack {
		t.MinSlack = slack
	}
}
