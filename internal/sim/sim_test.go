package sim

import (
	"testing"

	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/storage"
	"capybara/internal/units"
)

func smallBank() *storage.Bank {
	return storage.MustBank("small",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 330*units.MicroFarad))
}

func bigBank() *storage.Bank {
	return storage.MustBank("big", storage.GroupOf(storage.EDLC, 9))
}

func newTestDevice(p units.Power) *Device {
	sys := power.NewSystem(harvest.RegulatedSupply{Max: p, V: 3.0})
	arr := reservoir.NewArray(smallBank(), reservoir.NormallyOpen, bigBank())
	d := NewDevice(sys, arr, device.MSP430FR5969())
	return d
}

func TestChargeBootRun(t *testing.T) {
	d := newTestDevice(10 * units.MilliWatt)
	elapsed, ok := d.ChargeTo(2.4, 1e5)
	if !ok {
		t.Fatal("charge failed")
	}
	if elapsed <= 0 {
		t.Fatal("charging took no time")
	}
	if d.Now() != elapsed {
		t.Fatalf("clock %v != elapsed %v", d.Now(), elapsed)
	}
	if !d.Boot() {
		t.Fatal("boot browned out")
	}
	if d.Stats.Boots != 1 {
		t.Fatalf("boots = %d", d.Stats.Boots)
	}
	sustained, ok := d.Drain(2*units.MilliWatt, 0.01)
	if !ok || sustained != 0.01 {
		t.Fatalf("drain = (%v, %v)", sustained, ok)
	}
	if d.Stats.TimeOn <= 0 || d.Stats.EnergyDrawn <= 0 {
		t.Fatalf("stats not accumulated: %+v", d.Stats)
	}
}

func TestDrainBrownout(t *testing.T) {
	d := newTestDevice(10 * units.MilliWatt)
	if _, ok := d.ChargeTo(2.4, 1e5); !ok {
		t.Fatal("charge failed")
	}
	// The small default bank cannot run the radio for a second.
	sustained, ok := d.Drain(30*units.MilliWatt, 1.0)
	if ok {
		t.Fatal("expected brownout")
	}
	if sustained <= 0 || sustained >= 1.0 {
		t.Fatalf("sustained = %v", sustained)
	}
	if d.Stats.Brownouts != 1 {
		t.Fatalf("brownouts = %d", d.Stats.Brownouts)
	}
}

func TestBiggerConfigurationChargesSlower(t *testing.T) {
	d := newTestDevice(10 * units.MilliWatt)
	dtSmall, ok := d.ChargeTo(2.4, 1e5)
	if !ok {
		t.Fatal("small charge failed")
	}
	if !d.Boot() {
		t.Fatal("boot failed")
	}
	if err := d.Configure(0b010); err != nil {
		t.Fatal(err)
	}
	dtBig, ok := d.ChargeTo(2.4, 1e5)
	if !ok {
		t.Fatal("big charge failed")
	}
	if dtBig < 5*dtSmall {
		t.Fatalf("big config charge (%v) should dwarf small (%v)", dtBig, dtSmall)
	}
}

func TestContinuousDeviceNeverFails(t *testing.T) {
	d := newTestDevice(0) // no harvested power at all
	d.Continuous = true
	if _, ok := d.ChargeTo(2.4, 10); !ok {
		t.Fatal("continuous charge should be instantaneous")
	}
	sustained, ok := d.Drain(100*units.MilliWatt, 5)
	if !ok || sustained != 5 {
		t.Fatalf("continuous drain = (%v, %v)", sustained, ok)
	}
	if d.Now() != 5 {
		t.Fatalf("clock = %v", d.Now())
	}
}

func TestChargeToTimesOut(t *testing.T) {
	d := newTestDevice(0)
	elapsed, ok := d.ChargeTo(2.4, 50)
	if ok {
		t.Fatal("charge with dead source succeeded")
	}
	if elapsed != 50 {
		t.Fatalf("elapsed = %v, want 50", elapsed)
	}
	if d.Stats.TimeOff != 50 {
		t.Fatalf("TimeOff = %v (dead-source wait must count as off)", d.Stats.TimeOff)
	}
}

func TestChargeAccountingSourceCutsOut(t *testing.T) {
	// Regression: the fixed-step loop decided "charging vs off" from a
	// stale flag carried across iterations, so when the source died
	// mid-charge the dead air kept counting as TimeCharging. The
	// event-driven loop attributes each segment from its own start.
	//
	// Source on for exactly 10 s, then dark until t=110 s. 100 µW can
	// not lift the bank to 2.4 V in 10 s, so a 30 s wait splits into
	// exactly 10 s charging + 20 s off.
	src := harvest.SolarPanel{
		PeakPower:          100 * units.MicroWatt,
		OpenCircuitVoltage: 3.0,
		Light:              harvest.BlackoutTrace(harvest.ConstantTrace(1), [2]units.Seconds{10, 100}),
	}
	sys := power.NewSystem(src)
	arr := reservoir.NewArray(smallBank(), reservoir.NormallyOpen)
	d := NewDevice(sys, arr, device.MSP430FR5969())
	elapsed, ok := d.ChargeTo(2.4, 30)
	if ok {
		t.Fatalf("charge reached target at %v; the test needs a starved source", elapsed)
	}
	if elapsed != 30 {
		t.Fatalf("elapsed = %v, want 30", elapsed)
	}
	if got := d.Stats.TimeCharging; got != 10 {
		t.Errorf("TimeCharging = %v, want exactly 10 (the powered span)", got)
	}
	if got := d.Stats.TimeOff; got != 20 {
		t.Errorf("TimeOff = %v, want exactly 20 (the dark span)", got)
	}
	if sum := d.Stats.TimeCharging + d.Stats.TimeOff; sum != elapsed {
		t.Errorf("TimeCharging+TimeOff = %v, want %v", sum, elapsed)
	}
}

func TestLatchRevertDuringOutage(t *testing.T) {
	// Input power dies while the big bank is connected. After the latch
	// retention expires the NO switch reverts to the small default.
	src := harvest.SolarPanel{
		PeakPower:          10 * units.MilliWatt,
		OpenCircuitVoltage: 3.0,
		Light:              harvest.BlackoutTrace(harvest.ConstantTrace(1), [2]units.Seconds{5, 2000}),
	}
	sys := power.NewSystem(src)
	arr := reservoir.NewArray(smallBank(), reservoir.NormallyOpen, bigBank())
	d := NewDevice(sys, arr, device.MSP430FR5969())
	if _, ok := d.ChargeTo(2.0, 4); !ok {
		t.Fatal("initial charge failed")
	}
	if !d.Boot() {
		t.Fatal("boot failed")
	}
	if err := d.Configure(0b010); err != nil {
		t.Fatal(err)
	}
	if d.Array.ActiveMask() != 0b011 {
		t.Fatal("configure failed")
	}
	// Ride into the blackout: charging makes no progress, latch decays.
	d.ChargeTo(3.5, 800)
	if d.Array.ActiveMask() != 0b001 {
		t.Fatalf("switch should have reverted during outage, mask=%#b", d.Array.ActiveMask())
	}
	if d.Array.Reverts == 0 {
		t.Fatal("revert not counted")
	}
}

func TestTraceRecordsPhases(t *testing.T) {
	d := newTestDevice(10 * units.MilliWatt)
	d.Trace = &Trace{MinInterval: 0.05}
	d.ChargeTo(2.4, 1e5)
	d.Boot()
	d.Drain(2*units.MilliWatt, 0.2)
	if len(d.Trace.Samples) < 3 {
		t.Fatalf("trace too sparse: %d samples", len(d.Trace.Samples))
	}
	sawCharging, sawRunning := false, false
	last := units.Seconds(-1)
	for _, s := range d.Trace.Samples {
		if s.T < last {
			t.Fatalf("trace not monotonic at %v", s.T)
		}
		last = s.T
		switch s.Phase {
		case PhaseCharging:
			sawCharging = true
		case PhaseRunning:
			sawRunning = true
		}
	}
	if !sawCharging || !sawRunning {
		t.Fatalf("phases missing: charging=%v running=%v", sawCharging, sawRunning)
	}
}

func TestSleepDrainsQuiescent(t *testing.T) {
	d := newTestDevice(10 * units.MilliWatt)
	d.ChargeTo(2.4, 1e5)
	v0 := d.Store().Voltage()
	if _, ok := d.Sleep(5); !ok {
		t.Fatal("sleep browned out unexpectedly")
	}
	if d.Store().Voltage() >= v0 {
		t.Fatal("sleep should still drain the buffer via quiescent overhead")
	}
}

func TestAdvanceOff(t *testing.T) {
	d := newTestDevice(10 * units.MilliWatt)
	d.AdvanceOff(42)
	if d.Now() != 42 || d.Stats.TimeOff != 42 {
		t.Fatalf("AdvanceOff: now=%v off=%v", d.Now(), d.Stats.TimeOff)
	}
	d.AdvanceOff(-5)
	if d.Now() != 42 {
		t.Fatal("negative AdvanceOff moved the clock")
	}
}

func TestPhaseStrings(t *testing.T) {
	for _, p := range []Phase{PhaseOff, PhaseCharging, PhaseRunning} {
		if p.String() == "" {
			t.Errorf("phase %d empty", p)
		}
	}
	if newTestDevice(units.MilliWatt).String() == "" {
		t.Error("device stringer empty")
	}
}

func TestEventLogTimeline(t *testing.T) {
	d := newTestDevice(10 * units.MilliWatt)
	d.Log = &EventLog{}
	d.ChargeTo(2.4, 1e5)
	d.Boot()
	d.Configure(0b010)
	d.Drain(30*units.MilliWatt, 10) // browns out
	events := d.Log.Events()
	if len(events) < 4 {
		t.Fatalf("timeline too short: %v", events)
	}
	wantKinds := map[EventKind]int{
		EventChargeDone: 1, EventBoot: 1, EventReconfig: 1, EventBrownout: 1,
	}
	for kind, min := range wantKinds {
		if d.Log.Count(kind) < min {
			t.Errorf("missing %v events: %v", kind, events)
		}
	}
	// Timeline is time-ordered.
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
	for _, e := range events {
		if e.String() == "" || e.Kind.String() == "" {
			t.Fatal("empty event rendering")
		}
	}
}

func TestEventLogBounded(t *testing.T) {
	l := &EventLog{Max: 8}
	for i := 0; i < 20; i++ {
		l.add(Event{T: units.Seconds(i), Kind: EventBoot})
	}
	if len(l.Events()) > 8 {
		t.Fatalf("log exceeded bound: %d", len(l.Events()))
	}
	if l.Dropped == 0 {
		t.Fatal("no drops recorded")
	}
	// The newest events survive.
	events := l.Events()
	if events[len(events)-1].T != 19 {
		t.Fatalf("newest event lost: %v", events)
	}
	// A nil log is a no-op.
	var nilLog *EventLog
	nilLog.add(Event{Kind: EventBoot})
}

func TestEventLogRevertRecorded(t *testing.T) {
	src := harvest.SolarPanel{
		PeakPower:          10 * units.MilliWatt,
		OpenCircuitVoltage: 3.0,
		Light:              harvest.BlackoutTrace(harvest.ConstantTrace(1), [2]units.Seconds{5, 2000}),
	}
	sys := power.NewSystem(src)
	arr := reservoir.NewArray(smallBank(), reservoir.NormallyOpen, bigBank())
	d := NewDevice(sys, arr, device.MSP430FR5969())
	d.Log = &EventLog{}
	d.ChargeTo(2.0, 4)
	d.Boot()
	d.Configure(0b010)
	d.ChargeTo(3.5, 800)
	if d.Log.Count(EventRevert) == 0 {
		t.Fatalf("revert not logged: %v", d.Log.Events())
	}
}
