package sim

import (
	"math"
	"testing"
	"time"

	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/units"
)

// TestDrainRevertLandsAtExpiryInstant pins a revert-timing bug the
// chaos harness surfaced: a long load drain advances the array in one
// passive span, and the old tickSpan applied latch expiry at the span
// end — the revert (and the charge sharing it triggers) landed at the
// wrong instant, and the event log recorded it there. tickSpan now
// splits unpowered spans at NextRevert, so the revert fires exactly
// when the latch retention runs out.
func TestDrainRevertLandsAtExpiryInstant(t *testing.T) {
	// A device with no harvestable input: every span is a true outage.
	sys := power.NewSystem(harvest.RegulatedSupply{Max: 0, V: 0})
	arr := reservoir.NewArray(smallBank(), reservoir.NormallyOpen, bigBank())
	d := NewDevice(sys, arr, device.MSP430FR5969())
	d.Log = &EventLog{Max: 64}

	// Pre-charge by hand (the source is dead) and connect the big bank.
	for i := 0; i < arr.NumBanks(); i++ {
		arr.Bank(i).SetVoltage(3.0)
	}
	if err := d.Configure(0b11); err != nil {
		t.Fatal(err)
	}
	expiry := d.Now() + arr.NextRevert()

	// One long sleep that straddles the latch expiry: the NO switch
	// must revert mid-span, at the expiry instant.
	d.Sleep(arr.NextRevert() + 60)

	var revert *Event
	for _, e := range d.Log.Events() {
		if e.Kind == EventRevert {
			ev := e
			revert = &ev
			break
		}
	}
	if revert == nil {
		t.Fatalf("no revert logged during a %v outage (retention ≈ %v)", d.Now(), expiry)
	}
	if diff := math.Abs(float64(revert.T - expiry)); diff > 1e-6 {
		t.Fatalf("revert logged at %v, want expiry instant %v (Δ %v)", revert.T, expiry, units.Seconds(diff))
	}
	if got := arr.ActiveMask(); got != 0b01 {
		t.Fatalf("big bank still connected after revert: mask %#b", got)
	}
}

// sliverSource is a constant supply whose Stepped horizon degenerates
// near edge the way PWM traces do in practice: phase arithmetic is
// exact while absolute time is not, so close to an edge the promised
// constancy span drops below one ULP of the clock. Any positive return
// is contract-legal (the output really is constant), but advancing the
// clock by a sub-ULP span leaves it bit-identical.
type sliverSource struct {
	harvest.RegulatedSupply
	edge units.Seconds
}

func (s sliverSource) NextChange(t units.Seconds) units.Seconds {
	switch {
	case t < s.edge-1e-13:
		return s.edge - 1e-13 - t
	case t < s.edge:
		return 1e-15 // sub-ULP sliver: t + 1e-15 == t at t ≈ 92
	default:
		return harvest.Forever
	}
}

// TestChargeToSurvivesSubULPHorizons pins a Zeno stall the chaos
// harness surfaced: the event-driven charge loop advanced by exactly
// the source's promised horizon, and a horizon smaller than one ULP of
// the simulated clock (PWM traces emit these near their edges) left
// d.now bit-identical — the loop spun forever. Horizons are now
// floored at units.MinAdvance.
func TestChargeToSurvivesSubULPHorizons(t *testing.T) {
	src := sliverSource{
		RegulatedSupply: harvest.RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0},
		edge:            92.0,
	}
	arr := reservoir.NewArray(smallBank(), reservoir.NormallyOpen)
	d := NewDevice(power.NewSystem(src), arr, device.MSP430FR5969())
	d.Array.Bank(0).SetVoltage(2.0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Straddle the degenerate edge; pre-fix this never returns.
		d.AdvanceOff(91.9999)
		d.ChargeTo(2.4, 1.0)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("charge loop stalled on a sub-ULP source horizon")
	}
	if d.Now() < 92.0 {
		t.Fatalf("clock failed to cross the degenerate edge: %v", d.Now())
	}
}
