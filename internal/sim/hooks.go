package sim

import "capybara/internal/units"

// HookKind labels the simulator events an Observer can watch.
type HookKind int

const (
	// HookChargeSegment: one analytic charge segment completed, observed
	// BEFORE the passive tick for the same span — V0→V1 is the pure
	// charge trajectory under an unchanged configuration, which is what
	// a numerical cross-check must reproduce.
	HookChargeSegment HookKind = iota
	// HookSpan: a span of simulated time (charging, off, or idle)
	// finished, including its passive tick. State is fully settled.
	HookSpan
	// HookDrain: a load drain finished (OK reports whether the full
	// duration completed; false is a brownout).
	HookDrain
	// HookReconfig: software reprogrammed the switch array.
	HookReconfig
	// HookBoot: the MCU is booting from the charged buffer.
	HookBoot
)

func (k HookKind) String() string {
	switch k {
	case HookChargeSegment:
		return "charge-segment"
	case HookSpan:
		return "span"
	case HookDrain:
		return "drain"
	case HookReconfig:
		return "reconfig"
	case HookBoot:
		return "boot"
	default:
		return "hook?"
	}
}

// HookEvent is one observed simulator event: the span it covers and the
// active-set voltage at its ends.
type HookEvent struct {
	Kind   HookKind
	T0, T1 units.Seconds
	V0, V1 units.Voltage
	// OK is event-specific: target reached (charge segment), drain
	// completed without brownout (drain); true otherwise.
	OK bool
}

// Observer receives fine-grained simulator callbacks. It exists for
// correctness tooling (the chaos harness checks its invariant registry
// after every event and schedules faults at observed instants); a nil
// Device.Obs costs one pointer test per event.
type Observer interface {
	Observe(d *Device, e HookEvent)
}

func (d *Device) observe(kind HookKind, t0, t1 units.Seconds, v0, v1 units.Voltage, ok bool) {
	if d.Obs != nil {
		d.Obs.Observe(d, HookEvent{Kind: kind, T0: t0, T1: t1, V0: v0, V1: v1, OK: ok})
	}
}
