package checkpoint

import (
	"testing"

	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/sim"
	"capybara/internal/storage"
	"capybara/internal/units"
)

func newDevice(capacitance units.Capacitance, supply units.Power) *sim.Device {
	tech := storage.Technology{
		Name: "test", UnitCap: capacitance, UnitVolume: 1, UnitESR: 0.05, RatedVoltage: 3.6,
	}
	bank := storage.MustBank("main", storage.GroupOf(tech, 1))
	arr := reservoir.NewArray(bank, reservoir.NormallyOpen)
	sys := power.NewSystem(harvest.RegulatedSupply{Max: supply, V: 3.0})
	return sim.NewDevice(sys, arr, device.MSP430FR5969())
}

func TestCheckpointCompletesComputation(t *testing.T) {
	dev := newDevice(units.MilliFarad, 2*units.MilliWatt)
	res, err := Run(dev, DefaultConfig(), 20e6, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("computation did not finish: %v", res)
	}
	// 20 Mops exceed the 1 mF buffer many times over: the run must
	// have checkpointed and restored across power cycles.
	if res.Checkpoints == 0 || res.Restores == 0 {
		t.Fatalf("no checkpointing happened: %v", res)
	}
	if res.CompletedOps < 20e6-1 {
		t.Fatalf("completed ops = %g", res.CompletedOps)
	}
	// Checkpointing loses no work when the supervisor margin holds.
	if res.ReexecutedOps > 0.05*20e6 {
		t.Fatalf("excessive re-execution for a checkpointing runtime: %v", res)
	}
	if res.String() == "" {
		t.Fatal("empty stringer")
	}
}

func TestCheckpointSmallBufferStalls(t *testing.T) {
	// A buffer too small to hold even one snapshot's energy cannot make
	// progress — the §2.2.1 infeasible region.
	dev := newDevice(20*units.MicroFarad, 2*units.MilliWatt)
	res, err := Run(dev, DefaultConfig(), 20e6, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done {
		t.Fatalf("tiny buffer should not finish 20 Mops: %v", res)
	}
}

func TestTaskRestartCompletes(t *testing.T) {
	dev := newDevice(units.MilliFarad, 2*units.MilliWatt)
	res := RunTaskRestart(dev, 2.4, 20e6, 0.2e6, 1e5)
	if !res.Done {
		t.Fatalf("task-restart did not finish: %v", res)
	}
	if res.CompletedOps < 20e6-1 {
		t.Fatalf("completed ops = %g", res.CompletedOps)
	}
}

func TestOversizedTasksWasteWork(t *testing.T) {
	// Tasks larger than the buffer brown out mid-task and re-execute:
	// the re-execution waste the checkpointing runtime avoids.
	dev := newDevice(units.MilliFarad, 2*units.MilliWatt)
	res := RunTaskRestart(dev, 2.4, 20e6, 2e6, 1e5)
	if !res.Done {
		t.Fatalf("did not finish: %v", res)
	}
	if res.ReexecutedOps == 0 {
		t.Fatal("oversized tasks should have re-executed work")
	}
	// A task bigger than the whole buffer never completes.
	dev2 := newDevice(units.MilliFarad, 2*units.MilliWatt)
	res2 := RunTaskRestart(dev2, 2.4, 20e6, 20e6, 500)
	if res2.Done {
		t.Fatalf("impossible task granularity completed: %v", res2)
	}
	if res2.ReexecutedOps == 0 {
		t.Fatal("impossible granularity should show waste")
	}
}

func TestGranularityTradeoff(t *testing.T) {
	// The classic intermittent trade-off: fine tasks waste little to
	// re-execution; coarse tasks waste more.
	fine := RunTaskRestart(newDevice(units.MilliFarad, 2*units.MilliWatt), 2.4, 20e6, 0.1e6, 1e5)
	coarse := RunTaskRestart(newDevice(units.MilliFarad, 2*units.MilliWatt), 2.4, 20e6, 2e6, 1e5)
	if !fine.Done || !coarse.Done {
		t.Fatal("runs did not finish")
	}
	if fine.ReexecutedOps >= coarse.ReexecutedOps {
		t.Fatalf("fine granularity (%g wasted) should beat coarse (%g wasted)",
			fine.ReexecutedOps, coarse.ReexecutedOps)
	}
}

func TestCheckpointVsTaskRestartOverheads(t *testing.T) {
	// Both disciplines finish; checkpointing pays snapshot time, task
	// restart pays re-execution. Neither should be free on a small
	// buffer.
	cp, err := Run(newDevice(units.MilliFarad, 2*units.MilliWatt), DefaultConfig(), 20e6, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	tr := RunTaskRestart(newDevice(units.MilliFarad, 2*units.MilliWatt), 2.4, 20e6, 2e6, 1e5)
	if !cp.Done || !tr.Done {
		t.Fatal("runs did not finish")
	}
	if cp.OverheadTime <= 0 {
		t.Fatal("checkpointing reported no overhead")
	}
	if tr.ReexecutedOps <= 0 {
		t.Fatal("task restart reported no waste")
	}
}

func TestDeadSourceGivesUp(t *testing.T) {
	dev := newDevice(units.MilliFarad, 0)
	res, err := Run(dev, DefaultConfig(), 1e6, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done || res.CompletedOps != 0 {
		t.Fatalf("dead source produced work: %v", res)
	}
	dev2 := newDevice(units.MilliFarad, 0)
	res2 := RunTaskRestart(dev2, 2.4, 1e6, 1e5, 100)
	if res2.Done {
		t.Fatalf("dead source finished: %v", res2)
	}
}

// TestConfigValidate pins the validation rules: the old Run silently
// clamped Margin to 1 and treated FRAMBandwidth <= 0 as a free
// (zero-duration, zero-energy) snapshot, which skewed every comparison
// built on the result.
func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero snapshot", func(c *Config) { c.SnapshotBytes = 0 }},
		{"negative snapshot", func(c *Config) { c.SnapshotBytes = -1 }},
		{"zero bandwidth", func(c *Config) { c.FRAMBandwidth = 0 }},
		{"negative bandwidth", func(c *Config) { c.FRAMBandwidth = -1e6 }},
		{"zero vtop", func(c *Config) { c.VTop = 0 }},
		{"sub-unity margin", func(c *Config) { c.Margin = 0.5 }},
	}
	for _, tc := range bad {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
}

// TestRunRejectsInvalidConfig verifies Run refuses to execute a
// mis-modeled configuration instead of silently adjusting it.
func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FRAMBandwidth = 0
	dev := newDevice(units.MilliFarad, 2*units.MilliWatt)
	res, err := Run(dev, cfg, 1e6, 100)
	if err == nil {
		t.Fatal("Run accepted a zero-bandwidth (free snapshot) config")
	}
	if res.CompletedOps != 0 || dev.Now() != 0 {
		t.Fatalf("Run did work before rejecting the config: %+v at t=%v", res, dev.Now())
	}

	cfg = DefaultConfig()
	cfg.Margin = 0.2
	if _, err := Run(newDevice(units.MilliFarad, 2*units.MilliWatt), cfg, 1e6, 100); err == nil {
		t.Fatal("Run accepted a sub-unity margin instead of returning an error")
	}
}
