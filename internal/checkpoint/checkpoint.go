// Package checkpoint implements a Hibernus/QuickRecall-style dynamic
// checkpointing executor — the class of intermittent-computing systems
// the paper contrasts with task-based models in §7 ("dynamic
// checkpointing approaches are less amenable to use with Capybara
// because checkpoints occur arbitrarily, on energy changes").
//
// The executor runs a monolithic computation on a simulated device: a
// voltage supervisor triggers a volatile-state snapshot to FRAM when
// the storage voltage decays to a save threshold, the device powers
// off, recharges, restores, and continues. Together with the
// task-restart executor it reproduces the classic intermittent
// trade-off: checkpoint overhead vs re-execution waste.
package checkpoint

import (
	"fmt"

	"capybara/internal/sim"
	"capybara/internal/units"
)

// Config parameterizes the checkpointing runtime.
type Config struct {
	// SnapshotBytes is the volatile state the checkpoint saves.
	SnapshotBytes int
	// FRAMBandwidth is the non-volatile write bandwidth in bytes/s.
	FRAMBandwidth float64
	// VTop is the recharge target after each power-down.
	VTop units.Voltage
	// Margin scales the energy reserved for the save (≥ 1).
	Margin float64
}

// DefaultConfig models an MSP430FR5969-class device: 4 KiB of RAM and
// registers snapshotted at FRAM speed.
func DefaultConfig() Config {
	return Config{
		SnapshotBytes: 4096,
		FRAMBandwidth: 1.5e6,
		VTop:          2.4,
		Margin:        1.5,
	}
}

// Validate rejects configurations the executor would silently
// mis-model: a non-positive FRAM bandwidth makes every snapshot free
// (zero save time, zero reserved energy — checkpointing with no cost is
// not a comparison), and a margin below 1 reserves less energy than the
// save itself needs, so the supervisor fires too late by construction.
func (c Config) Validate() error {
	if c.SnapshotBytes <= 0 {
		return fmt.Errorf("checkpoint: SnapshotBytes must be positive, got %d", c.SnapshotBytes)
	}
	if c.FRAMBandwidth <= 0 {
		return fmt.Errorf("checkpoint: FRAMBandwidth must be positive, got %g (a free snapshot is not a model)", c.FRAMBandwidth)
	}
	if c.VTop <= 0 {
		return fmt.Errorf("checkpoint: VTop must be positive, got %v", c.VTop)
	}
	if c.Margin < 1 {
		return fmt.Errorf("checkpoint: Margin must be >= 1, got %g (reserving less than one save under-provisions the supervisor)", c.Margin)
	}
	return nil
}

// saveTime returns the duration of one checkpoint write. Validate has
// already rejected non-positive bandwidth.
func (c Config) saveTime() units.Seconds {
	return units.Seconds(float64(c.SnapshotBytes) / c.FRAMBandwidth)
}

// Result summarizes one executor run.
type Result struct {
	// CompletedOps is how much of the computation finished.
	CompletedOps float64
	// Elapsed is the simulated completion (or horizon) time.
	Elapsed units.Seconds
	// Checkpoints counts snapshot writes; Restores counts resumptions.
	Checkpoints, Restores int
	// ReexecutedOps counts work performed more than once (zero for
	// checkpointing; the task-restart executor's waste).
	ReexecutedOps float64
	// OverheadTime is time spent on snapshots and restores.
	OverheadTime units.Seconds
	// Done reports whether the computation finished before the horizon.
	Done bool
}

func (r Result) String() string {
	return fmt.Sprintf("completed %.2f Mops in %v (%d checkpoints, %d restores, %.2f Mops re-executed)",
		r.CompletedOps/1e6, r.Elapsed, r.Checkpoints, r.Restores, r.ReexecutedOps/1e6)
}

// Run executes totalOps of computation under the checkpointing
// discipline on dev, until the horizon. An invalid cfg is an error, not
// a silently-adjusted run (the old behavior clamped Margin and made
// zero-bandwidth snapshots free, which skewed every comparison built on
// the result).
func Run(dev *sim.Device, cfg Config, totalOps float64, horizon units.Seconds) (Result, error) {
	var res Result
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	mcu := dev.MCU
	saveT := cfg.saveTime()
	margin := cfg.Margin
	remaining := totalOps

	for remaining > 0 && dev.Now() < horizon {
		// Bring the device up.
		if _, ok := dev.ChargeTo(cfg.VTop, horizon-dev.Now()); !ok {
			break
		}
		if !dev.Boot() {
			continue
		}
		if res.Checkpoints > 0 {
			// Restore the snapshot (same cost as saving it).
			if _, ok := dev.Drain(mcu.ActivePower, saveT); !ok {
				continue
			}
			res.Restores++
			res.OverheadTime += saveT
		}

		// Run until the supervisor fires: leave exactly enough energy
		// to write the snapshot (with margin).
		saveEnergy := units.Energy(float64(dev.Sys.StoreDraw(mcu.ActivePower)) * float64(saveT) * margin)
		set := dev.Store()
		cut := dev.Sys.CutoffVoltage(set.ESR(), mcu.ActivePower)
		vSave := units.VoltageForEnergy(set.Capacitance(),
			units.StoredEnergy(set.Capacitance(), cut)+saveEnergy)
		runFor := units.TimeToDischarge(set.Capacitance(), set.Voltage(), vSave,
			dev.Sys.StoreDraw(mcu.ActivePower))
		want := mcu.ComputeTime(remaining)
		finishing := want <= runFor
		if finishing {
			runFor = want
		}
		if runFor > 0 {
			sustained, ok := dev.Drain(mcu.ActivePower, runFor)
			remaining -= float64(sustained) * mcu.OpsPerSecond
			res.CompletedOps += float64(sustained) * mcu.OpsPerSecond
			if !ok {
				// The supervisor margin was insufficient (e.g. the
				// charge died mid-run): progress since the last
				// checkpoint is lost.
				lost := float64(sustained) * mcu.OpsPerSecond
				remaining += lost
				res.CompletedOps -= lost
				res.ReexecutedOps += lost
				continue
			}
		}
		if remaining <= 0 {
			break
		}
		// Snapshot and power down.
		if _, ok := dev.Drain(mcu.ActivePower, saveT); !ok {
			// The save itself browned out: the previous checkpoint
			// still stands, but the run since then is lost.
			continue
		}
		res.Checkpoints++
		res.OverheadTime += saveT
	}
	res.Elapsed = dev.Now()
	res.Done = remaining <= 0
	return res, nil
}

// RunTaskRestart executes totalOps decomposed into tasks of taskOps
// each under Chain-style restart semantics: a brownout mid-task
// discards the task's progress. This is the software substrate
// Capybara's annotations attach to, isolated for comparison.
func RunTaskRestart(dev *sim.Device, vtop units.Voltage, totalOps, taskOps float64, horizon units.Seconds) Result {
	var res Result
	mcu := dev.MCU
	remaining := totalOps

	for remaining > 0 && dev.Now() < horizon {
		if !dev.Sys.CanSupply(dev.Store(), mcu.ActivePower) {
			if _, ok := dev.ChargeTo(vtop, horizon-dev.Now()); !ok {
				break
			}
			if !dev.Boot() {
				continue
			}
		}
		ops := taskOps
		if ops > remaining {
			ops = remaining
		}
		sustained, ok := dev.Drain(mcu.ActivePower, mcu.ComputeTime(ops))
		if !ok {
			// The whole task re-executes.
			res.ReexecutedOps += float64(sustained) * mcu.OpsPerSecond
			continue
		}
		remaining -= ops
		res.CompletedOps += ops
	}
	res.Elapsed = dev.Now()
	res.Done = remaining <= 0
	return res
}
