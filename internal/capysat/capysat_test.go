package capysat

import (
	"math"
	"testing"

	"capybara/internal/reservoir"
	"capybara/internal/units"
)

func TestBoardVolume(t *testing.T) {
	v := BoardVolume()
	// 43.2 × 43.2 × 3.8 ≈ 7092 mm³.
	if float64(v) < 7000 || float64(v) > 7200 {
		t.Fatalf("board volume = %v", v)
	}
}

func TestStorageFitsBoard(t *testing.T) {
	p := New()
	if !p.FitsBoard() {
		t.Fatalf("capacitors (%v) exceed the volume budget (%v/4)", p.CapacitorVolume(), BoardVolume())
	}
}

func TestAreaSavingsClaim(t *testing.T) {
	p := New()
	splitter, switches := p.AreaSavings()
	if splitter*5 != switches {
		t.Fatalf("splitter area %v should be 20%% of switch area %v", splitter, switches)
	}
	if splitter != reservoir.SwitchArea/5 {
		t.Fatalf("splitter area = %v", splitter)
	}
}

func TestBoostersAreVital(t *testing.T) {
	// §6.6: "without the input and output boosters, energy storable and
	// extractable from a capacitor bank that would fit on the board
	// would be insufficient for the radio transmission."
	f := New().Feasibility()
	if !f.FeasibleBoosted {
		t.Fatalf("boosted system infeasible: %v extractable vs %v needed", f.WithBoost, f.PacketEnergy)
	}
	if f.FeasibleRaw {
		t.Fatalf("raw (no boosters) system should be infeasible: %v extractable", f.NoInputBoost)
	}
	// The chain degrades monotonically: full system > no output boost ≥
	// no input boost.
	if !(f.WithBoost > f.NoOutputBoost && f.NoOutputBoost >= f.NoInputBoost) {
		t.Fatalf("booster degradation not monotone: %v, %v, %v",
			f.WithBoost, f.NoOutputBoost, f.NoInputBoost)
	}
	// The cold, high-ESR supercapacitor bank strands everything without
	// the output booster ("renders the capacitor useless in power
	// systems without the capability to boost voltage", §2.2.2), and
	// without the input booster it cannot even charge usefully.
	if f.NoOutputBoost >= f.PacketEnergy {
		t.Fatalf("no-output-boost extractable = %v, should be infeasible", f.NoOutputBoost)
	}
	if f.NoInputBoost > 0 {
		t.Fatalf("no-input-boost extractable = %v, want 0", f.NoInputBoost)
	}
}

func TestEligibilityAtMinusForty(t *testing.T) {
	// §6.6: batteries (including thin-film) and many supercapacitors
	// are disqualified; the platform's chosen parts qualify.
	e := Eligibility()
	wantQualified := map[string]bool{
		"ceramic-X5R":       true,
		"tantalum":          true,
		"supercap-CPH3225A": true,
		"EDLC":              false,
		"thin-film-battery": false,
	}
	for name, want := range wantQualified {
		got, ok := e[name]
		if !ok {
			t.Fatalf("technology %s missing from eligibility map", name)
		}
		if got != want {
			t.Errorf("%s eligible = %v, want %v", name, got, want)
		}
	}
}

func TestSimulateMission(t *testing.T) {
	p := New()
	res := p.Simulate(2)
	if res.Orbits != 2 {
		t.Fatalf("orbits = %d", res.Orbits)
	}
	if res.Samples == 0 {
		t.Fatal("no IMU samples collected")
	}
	if res.Packets == 0 {
		t.Fatal("no packets transmitted")
	}
	// Sampling is the cheap mode, communication the expensive one: the
	// sampling MCU must complete more operations than the comm MCU.
	if res.Samples <= res.Packets {
		t.Fatalf("samples (%d) should outnumber packets (%d)", res.Samples, res.Packets)
	}
	if res.CommBankPeak < 2.0 {
		t.Fatalf("comm bank never charged usefully: peak %v", res.CommBankPeak)
	}
	if res.String() == "" {
		t.Fatal("empty stringer")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := New().Simulate(1)
	b := New().Simulate(1)
	if a != b {
		t.Fatalf("mission not deterministic: %+v vs %+v", a, b)
	}
}

func TestDirectCutoffSolvesEquation(t *testing.T) {
	v := directCutoff(2.0, RadioTxPower, 4)
	got := float64(v) - float64(RadioTxPower)/float64(v)*4
	if math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("direct cutoff equation residual: %g", got)
	}
	if s := sqrt(0); s != 0 {
		t.Fatalf("sqrt(0) = %g", s)
	}
	if s := sqrt(9); math.Abs(s-3) > 1e-9 {
		t.Fatalf("sqrt(9) = %g", s)
	}
}

func TestRadioAtomicityNumbers(t *testing.T) {
	// The paper's numbers: 250 ms at 30 mA (on the 2.0 V rail).
	if RadioTxTime != 0.25 {
		t.Fatalf("tx time = %v", RadioTxTime)
	}
	if RadioTxPower != 60*units.MilliWatt {
		t.Fatalf("tx power = %v", RadioTxPower)
	}
}
