// Package capysat reproduces the paper's §6.6 case study: a
// solar-powered, board-scale low-earth-orbit satellite built by
// specializing Capybara.
//
// The satellite's constraints (volume 1.7×1.7×0.15 in including panels,
// −40 °C) disqualify batteries and most supercapacitors. The
// application runs on two MCUs concurrently — one sampling the IMU
// (magnetometer, accelerometer, gyroscope), one transmitting to Earth —
// so each MCU permanently exercises one energy mode. That lets the
// general capacitor-bank switch degenerate into a diode splitter that
// always connects both banks to the harvester but dedicates one bank to
// each MCU, at 20 % of the switch area.
//
// The radio has an extreme atomicity requirement: a 1-byte packet with
// a 1064× redundant encoding keeps the radio on for 250 ms at 30 mA.
package capysat

import (
	"fmt"

	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// Board constraints from §6.6.
const (
	// BoardSide is the board edge length (1.7 in) in millimetres.
	BoardSide = 43.2
	// BoardThickness is the stack height (0.15 in) in millimetres.
	BoardThickness = 3.8
	// MinTemperature rules out batteries and many supercaps.
	MinTemperature = -40.0
	// OrbitPeriod is a low-earth-orbit day/night cycle.
	OrbitPeriod units.Seconds = 92 * 60
)

// BoardVolume returns the total available volume in mm³.
func BoardVolume() units.Volume {
	return units.Volume(BoardSide * BoardSide * BoardThickness)
}

// RadioTxPower is the transmission draw: 30 mA at the 2.0 V rail.
const RadioTxPower units.Power = 60 * units.MilliWatt

// RadioTxTime is the atomic on-time for one 1-byte packet with the
// 1064× redundant encoding.
const RadioTxTime units.Seconds = 250 * units.Millisecond

// Platform is the CapySat power architecture: one harvester, a diode
// splitter feeding two banks, two MCUs.
type Platform struct {
	Sys *power.System
	// Split dedicates SampleBank to the sampling MCU and CommBank to
	// the communication MCU.
	Split *reservoir.Splitter
	// MCU models both processors (identical parts).
	MCU device.MCU
}

// coldTech derates a technology to the mission's temperature floor.
// The platform's parts are chosen to qualify, so failure is a
// configuration bug.
func coldTech(t storage.Technology) storage.Technology {
	out, err := t.AtTemperature(MinTemperature)
	if err != nil {
		panic(err)
	}
	return out
}

// Eligibility lists each catalog technology and whether it survives the
// mission's −40 °C floor — §6.6's "volume and temperature constraints
// severely limit eligible energy-storage technologies, disqualifying
// all batteries, including thin-film, and many super-capacitors".
func Eligibility() map[string]bool {
	out := make(map[string]bool)
	for _, t := range storage.Catalog() {
		_, err := t.AtTemperature(MinTemperature)
		out[t.Name] = err == nil
	}
	return out
}

// New assembles the platform: sun-synchronous panels with a low
// open-circuit voltage (hence the input booster is essential), a small
// sampling bank, and a communication bank of cold-rated CPH3225A
// supercapacitors (ordinary EDLCs are disqualified at −40 °C). All
// parts are derated to the mission temperature.
func New() *Platform {
	src := harvest.SolarPanel{
		PeakPower:          30 * units.MilliWatt,
		OpenCircuitVoltage: 2.0,
		Light:              harvest.DiurnalTrace(OrbitPeriod),
	}
	sys := power.NewSystem(harvest.Limiter{Source: src, Max: 5.5})
	sampleBank := storage.MustBank("sat-sample",
		storage.GroupFor(coldTech(storage.CeramicX5R), 200*units.MicroFarad),
		storage.GroupFor(coldTech(storage.Tantalum), 330*units.MicroFarad))
	commBank := storage.MustBank("sat-comm", storage.GroupOf(coldTech(storage.SupercapCPH3225A), 16))
	return &Platform{
		Sys: sys,
		Split: &reservoir.Splitter{
			BankA: sampleBank,
			BankB: commBank,
			Drop:  0.3,
		},
		MCU: device.MSP430FR5969(),
	}
}

// CapacitorVolume returns the volume of both banks.
func (p *Platform) CapacitorVolume() units.Volume {
	return p.Split.BankA.Volume() + p.Split.BankB.Volume()
}

// FitsBoard reports whether the storage fits the volume budget (a
// quarter of the stack is available for energy storage).
func (p *Platform) FitsBoard() bool {
	return p.CapacitorVolume() <= BoardVolume()/4
}

// AreaSavings compares the splitter against the general two-bank switch
// array (§6.6: "the resulting configuration matches the energy storage
// to the application demands, but at 20 % of the area").
func (p *Platform) AreaSavings() (splitter, switches units.Area) {
	return p.Split.Area(), reservoir.SwitchArea
}

// RadioFeasibility quantifies why the boosters are vital: the
// extractable energy for one packet with the full power system, without
// the output booster (direct connection: the bank is only usable down
// to the radio's 2.0 V minimum, with unregulated ESR droop), and
// without the input booster (the bank charges only one diode drop below
// the panel voltage).
type RadioFeasibility struct {
	PacketEnergy    units.Energy
	WithBoost       units.Energy
	NoOutputBoost   units.Energy
	NoInputBoost    units.Energy
	FeasibleBoosted bool
	FeasibleRaw     bool
}

// Feasibility computes the §6.6 booster analysis on the comm bank.
func (p *Platform) Feasibility() RadioFeasibility {
	b := p.Split.BankB
	c := b.Capacitance()
	esr := b.ESR()
	packet := units.Energy(float64(p.Sys.StoreDraw(RadioTxPower)) * float64(RadioTxTime))

	var f RadioFeasibility
	f.PacketEnergy = packet

	// Full system: charge to the mode top, extract down to the
	// boosted cutoff.
	vTop := units.Voltage(2.4)
	cut := p.Sys.CutoffVoltage(esr, RadioTxPower)
	f.WithBoost = units.Energy(float64(units.BandEnergy(c, vTop, cut)) * p.Sys.Out.Efficiency)

	// No output booster: the radio needs its 2.0 V rail directly from
	// the bank, and the unregulated ESR droop raises the floor further:
	// V − (P/V)·R ≥ Vmin.
	vminDirect := directCutoff(device.CC2650().MinVout, RadioTxPower, esr)
	f.NoOutputBoost = units.BandEnergy(c, vTop, vminDirect)

	// No input booster: the bank charges only to the panel voltage
	// minus the diode drop — below the radio's minimum, so nothing is
	// extractable at all.
	peakPanel := maxSourceVoltage(p.Sys, OrbitPeriod)
	rawTop := peakPanel - p.Split.Drop
	f.NoInputBoost = units.BandEnergy(c, rawTop, vminDirect)

	f.FeasibleBoosted = f.WithBoost >= packet
	f.FeasibleRaw = f.NoInputBoost >= packet
	return f
}

// directCutoff solves V − (P/V)·R = vmin for the unboosted discharge
// floor.
func directCutoff(vmin units.Voltage, load units.Power, esr units.Resistance) units.Voltage {
	m := float64(vmin)
	pr := float64(load) * float64(esr)
	return units.Voltage((m + sqrt(m*m+4*pr)) / 2)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method is fine here; avoids importing math for one call.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func maxSourceVoltage(sys *power.System, period units.Seconds) units.Voltage {
	var peak units.Voltage
	for i := 0; i < 200; i++ {
		t := units.Seconds(float64(i) / 200 * float64(period))
		if v := sys.Source.VoltageAt(t); v > peak {
			peak = v
		}
	}
	return peak
}

// Result aggregates a mission simulation.
type Result struct {
	Orbits        int
	Samples       int
	Packets       int
	SampleBankMin units.Voltage
	CommBankPeak  units.Voltage
}

func (r Result) String() string {
	return fmt.Sprintf("capysat: %d orbits, %d IMU samples, %d packets to Earth",
		r.Orbits, r.Samples, r.Packets)
}

// Simulate flies the satellite for the given number of orbits. The two
// MCUs run concurrently: the sampling MCU drains its bank for IMU
// bursts whenever charged; the comm MCU fires one packet whenever its
// bank fills. Both banks charge through the splitter during the
// sunlit half of each orbit.
func (p *Platform) Simulate(orbits int) Result {
	const step units.Seconds = 1.0
	// IMU burst: magnetometer + accelerometer + gyroscope back-to-back.
	imuTime := units.Seconds(45 * units.Millisecond)
	imuPower := 6 * units.MilliWatt

	sampleTop := units.Voltage(2.4)
	commTop := units.Voltage(2.4)

	res := Result{Orbits: orbits, SampleBankMin: 99}
	horizon := units.Seconds(orbits) * OrbitPeriod
	for t := units.Seconds(0); t < horizon; t += step {
		p.Split.ChargeBoth(p.Sys, t, step)

		if p.Split.BankA.Voltage() >= sampleTop {
			if _, ok := p.Sys.Discharge(p.Split.BankA, imuPower, imuTime); ok {
				res.Samples++
			}
		}
		if v := p.Split.BankA.Voltage(); v < res.SampleBankMin {
			res.SampleBankMin = v
		}
		if p.Split.BankB.Voltage() >= commTop {
			if _, ok := p.Sys.Discharge(p.Split.BankB, RadioTxPower, RadioTxTime); ok {
				res.Packets++
			}
		}
		if v := p.Split.BankB.Voltage(); v > res.CommBankPeak {
			res.CommBankPeak = v
		}
	}
	return res
}
