package harvest

import (
	"math"
	"testing"

	"capybara/internal/units"
)

func testPanel() PVPanel {
	return PVPanel{
		ShortCircuitCurrent: 5 * units.MilliAmp,
		OpenCircuitVoltage:  2.0,
	}
}

func TestPVCurrentEndpoints(t *testing.T) {
	p := testPanel()
	// Short circuit: the full photocurrent flows.
	if got := p.Current(0, 0); math.Abs(float64(got)-5e-3) > 1e-9 {
		t.Fatalf("Isc = %v", got)
	}
	// Open circuit: no current at Voc.
	if got := p.Current(2.0, 0); float64(got) > 1e-6 {
		t.Fatalf("I(Voc) = %v, want ≈0", got)
	}
	// Beyond Voc the diode clamps at zero (no negative current).
	if got := p.Current(3.0, 0); got != 0 {
		t.Fatalf("I(V>Voc) = %v", got)
	}
}

func TestPVCurrentMonotoneDecreasing(t *testing.T) {
	p := testPanel()
	prev := p.Current(0, 0)
	for v := 0.1; v <= 2.0; v += 0.1 {
		cur := p.Current(units.Voltage(v), 0)
		if cur > prev {
			t.Fatalf("IV curve not monotone at %g V", v)
		}
		prev = cur
	}
}

func TestMPPIsMaximal(t *testing.T) {
	p := testPanel()
	vmpp, pmpp := p.MPP(0)
	if vmpp <= 0 || vmpp >= p.OpenCircuitVoltage {
		t.Fatalf("Vmpp = %v outside (0, Voc)", vmpp)
	}
	// The MPP beats nearby operating points.
	for _, dv := range []units.Voltage{-0.1, 0.1} {
		v := vmpp + dv
		pw := units.Power(float64(v) * float64(p.Current(v, 0)))
		if pw > pmpp {
			t.Fatalf("P(%v)=%v exceeds MPP %v", v, pw, pmpp)
		}
	}
}

func TestFillFactorPlausible(t *testing.T) {
	ff := testPanel().FillFactor()
	if ff < 0.5 || ff > 0.95 {
		t.Fatalf("fill factor = %.2f, want a plausible 0.5–0.95", ff)
	}
}

func TestPVScalesWithLight(t *testing.T) {
	dim := testPanel()
	dim.Light = ConstantTrace(0.25)
	full := testPanel()
	pDim := dim.PowerAt(0)
	pFull := full.PowerAt(0)
	// Power falls slightly super-linearly with irradiance (Voc shrinks
	// too): between 15 % and 25 % of full power at quarter sun.
	ratio := float64(pDim) / float64(pFull)
	if ratio < 0.15 || ratio > 0.27 {
		t.Fatalf("quarter-sun power ratio = %.2f", ratio)
	}
	dark := testPanel()
	dark.Light = ConstantTrace(0)
	if dark.PowerAt(0) != 0 || dark.VoltageAt(0) != 0 {
		t.Fatal("dark panel produced power")
	}
}

func TestPVSeriesParallelScaling(t *testing.T) {
	single := testPanel()
	quad := testPanel()
	quad.Series, quad.Parallel = 2, 2
	v1, p1 := single.MPP(0)
	v4, p4 := quad.MPP(0)
	if math.Abs(float64(v4)/float64(v1)-2) > 0.05 {
		t.Fatalf("series voltage scaling: %v vs %v", v4, v1)
	}
	if math.Abs(float64(p4)/float64(p1)-4) > 0.1 {
		t.Fatalf("2S2P power scaling: %v vs %v", p4, p1)
	}
}

func TestPVAsSource(t *testing.T) {
	// The MPPT panel plugs into the power system like any Source.
	var src Source = testPanel()
	if src.PowerAt(0) <= 0 || src.VoltageAt(0) <= 0 {
		t.Fatal("PVPanel does not behave as a Source")
	}
	if testPanel().String() == "" {
		t.Fatal("empty stringer")
	}
}

func TestPVDefaultThermalVoltage(t *testing.T) {
	p := testPanel()
	if p.vt() != 0.06 {
		t.Fatalf("default Vt = %g", p.vt())
	}
	p.ThermalVoltage = 0.05
	if p.vt() != 0.05 {
		t.Fatalf("override Vt = %g", p.vt())
	}
}
