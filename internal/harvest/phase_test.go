package harvest

import (
	"testing"

	"capybara/internal/units"
)

func TestPhaseKeyConstantSources(t *testing.T) {
	for _, tc := range []struct {
		name string
		x    any
	}{
		{"constant trace", ConstantTrace(0.7)},
		{"regulated supply", RegulatedSupply{Max: 0.01, V: 3.3}},
		{"rf harvester", RFHarvester{TransmitPower: 3, Distance: 2, Efficiency: 0.5, V: 3.0}},
		{"solar no trace", SolarPanel{PeakPower: 0.02, OpenCircuitVoltage: 4}},
	} {
		k0, ok := PhaseKey(tc.x, 0)
		if !ok {
			t.Fatalf("%s: not keyable", tc.name)
		}
		k1, ok := PhaseKey(tc.x, 1e6)
		if !ok || k1 != k0 {
			t.Fatalf("%s: key not constant: %d@0 vs %d@1e6 (ok=%v)", tc.name, k0, k1, ok)
		}
	}
}

func TestPhaseKeyOpaque(t *testing.T) {
	f := TraceFunc(func(t units.Seconds) float64 { return 0.5 })
	if _, ok := PhaseKey(f, 0); ok {
		t.Fatal("opaque TraceFunc reported a phase key")
	}
	m := Modulated{Source: RegulatedSupply{Max: 0.01, V: 3.3}, Trace: f}
	if _, ok := PhaseKey(m, 0); ok {
		t.Fatal("modulated over an opaque trace reported a phase key")
	}
}

// TestPhaseKeyPWM pins the key to the square wave's on/off state: the
// key equals 1 exactly when Level is 1, at offsets all over the cycle.
func TestPhaseKeyPWM(t *testing.T) {
	tr := PWMTrace(0.42, 8)
	for i := 0; i < 200; i++ {
		at := units.Seconds(float64(i) * 0.173)
		k, ok := PhaseKey(tr, at)
		if !ok {
			t.Fatalf("pwm not keyable at %v", at)
		}
		lvl := tr.Level(at)
		if (k == 1) != (lvl == 1) {
			t.Fatalf("pwm key %d disagrees with level %g at %v", k, lvl, at)
		}
	}
}

func TestPhaseKeyDiurnal(t *testing.T) {
	tr := DiurnalTrace(100)
	if _, ok := PhaseKey(tr, 25); ok {
		t.Fatal("diurnal day keyable (sinusoid varies continuously)")
	}
	k, ok := PhaseKey(tr, 75)
	if !ok {
		t.Fatal("diurnal night not keyable")
	}
	if lvl := tr.Level(75); lvl != 0 {
		t.Fatalf("keyed night level %g, want 0", lvl)
	}
	k2, ok := PhaseKey(tr, 60)
	if !ok || k2 != k {
		t.Fatalf("night key not constant: %d vs %d", k, k2)
	}
}

func TestPhaseKeyBlackout(t *testing.T) {
	tr := BlackoutTrace(ConstantTrace(1), [2]units.Seconds{10, 5}, [2]units.Seconds{30, 5})
	kw0, ok := PhaseKey(tr, 12)
	if !ok {
		t.Fatal("blackout window not keyable")
	}
	kw1, ok := PhaseKey(tr, 32)
	if !ok {
		t.Fatal("second blackout window not keyable")
	}
	if kw0 == kw1 {
		t.Fatal("distinct windows share a key")
	}
	kg0, ok := PhaseKey(tr, 5)
	if !ok {
		t.Fatal("gap before first window not keyable")
	}
	kg1, ok := PhaseKey(tr, 20)
	if !ok {
		t.Fatal("gap between windows not keyable")
	}
	if kg0 == kg1 {
		t.Fatal("distinct gaps share a key")
	}
	if kg0 == kw0 || kg1 == kw1 {
		t.Fatal("gap and window share a key")
	}
}

// TestPhaseKeyConstancySpan: wherever a key is reported, it stays
// constant across the NextChange constancy span — the property the
// tape layer leans on when it folds the key into a cache entry.
func TestPhaseKeyConstancySpan(t *testing.T) {
	traces := []Trace{
		PWMTrace(0.3, 4),
		BlackoutTrace(PWMTrace(0.6, 10), [2]units.Seconds{7, 3}, [2]units.Seconds{21, 2}),
		ScaleTrace(PWMTrace(0.5, 6), ConstantTrace(0.9)),
	}
	for ti, tr := range traces {
		for i := 0; i < 400; i++ {
			at := units.Seconds(float64(i) * 0.211)
			k, ok := PhaseKey(tr, at)
			if !ok {
				continue
			}
			h := NextChange(tr, at)
			if h <= 1e-6 {
				continue
			}
			for _, frac := range []float64{0.25, 0.5, 0.99} {
				at2 := at + units.Seconds(frac*float64(h))
				k2, ok2 := PhaseKey(tr, at2)
				if !ok2 || k2 != k {
					t.Fatalf("trace %d: key changed inside constancy span: %d@%v vs %d@%v (ok=%v, h=%v)",
						ti, k, at, k2, at2, ok2, h)
				}
			}
		}
	}
}

func TestPhaseKeyDelegation(t *testing.T) {
	base := SolarPanel{PeakPower: 0.02, OpenCircuitVoltage: 4, Light: PWMTrace(0.4, 8)}
	lk, ok := PhaseKey(base.Light, 1)
	if !ok {
		t.Fatal("pwm light not keyable")
	}
	pk, ok := PhaseKey(base, 1)
	if !ok || pk != lk {
		t.Fatalf("solar panel key %d (ok=%v), want light key %d", pk, ok, lk)
	}
	lim := Limiter{Source: base, Max: 3.5}
	ck, ok := PhaseKey(lim, 1)
	if !ok || ck != pk {
		t.Fatalf("limiter key %d (ok=%v), want source key %d", ck, ok, pk)
	}
	m := Modulated{Source: RegulatedSupply{Max: 0.01, V: 3.3}, Trace: PWMTrace(0.4, 8)}
	m0, ok := PhaseKey(m, 1)
	if !ok {
		t.Fatal("modulated over pwm not keyable")
	}
	m1, ok := PhaseKey(m, 9)
	if !ok || m0 != m1 {
		t.Fatalf("modulated key not periodic: %d@1 vs %d@9", m0, m1)
	}
}

// FuzzPhaseKey drives the phase-key encoder over randomized PWM and
// blackout shapes: the key must be deterministic, must agree with the
// sampled level for PWM (key 1 ⇔ level 1), and must stay constant
// across the NextChange constancy span whenever one is reported.
func FuzzPhaseKey(f *testing.F) {
	f.Add(0.42, 8.0, 10.0, 5.0, 30.0, 5.0, 12.5)
	f.Add(0.3, 4.0, 7.0, 3.0, 21.0, 2.0, 0.0)
	f.Add(0.99, 0.001, 0.0, 0.0, 0.0, 0.0, 1e9)
	f.Fuzz(func(t *testing.T, duty, period, w0, d0, w1, d1, at float64) {
		if period < 0 || period > 1e12 || at < -1e12 || at > 1e12 {
			t.Skip()
		}
		clampWin := func(s, d float64) [2]units.Seconds {
			if s < 0 {
				s = -s
			}
			if d < 0 {
				d = -d
			}
			if s > 1e12 {
				s = 1e12
			}
			if d > 1e12 {
				d = 1e12
			}
			return [2]units.Seconds{units.Seconds(s), units.Seconds(d)}
		}
		pwm := PWMTrace(duty, units.Seconds(period))
		traces := []Trace{
			pwm,
			BlackoutTrace(pwm, clampWin(w0, d0), clampWin(w1, d1)),
			BlackoutTrace(ConstantTrace(1), clampWin(w0, d0), clampWin(w1, d1)),
		}
		ts := units.Seconds(at)
		for ti, tr := range traces {
			k, ok := PhaseKey(tr, ts)
			k2, ok2 := PhaseKey(tr, ts)
			if k != k2 || ok != ok2 {
				t.Fatalf("trace %d: PhaseKey not deterministic at %v", ti, ts)
			}
			if !ok {
				continue
			}
			if ti == 0 {
				if lvl := tr.Level(ts); (k == 1) != (lvl == 1) {
					t.Fatalf("pwm key %d disagrees with level %g at %v", k, lvl, ts)
				}
			}
			h := NextChange(tr, ts)
			if h <= 1e-6 || h == Forever {
				continue
			}
			mid := ts + units.Seconds(0.5*float64(h))
			if km, okm := PhaseKey(tr, mid); !okm || km != k {
				t.Fatalf("trace %d: key changed inside constancy span [%v, +%v)", ti, ts, h)
			}
		}
	})
}
