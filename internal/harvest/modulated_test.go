package harvest

import (
	"testing"

	"capybara/internal/units"
)

func TestModulated(t *testing.T) {
	base := RegulatedSupply{Max: 10 * units.MilliWatt, V: 3}
	m := Modulated{Source: base, Trace: PWMTrace(0.25, 8)} // on for 2 s of every 8

	if got := m.PowerAt(1); got != 10*units.MilliWatt {
		t.Fatalf("on-phase power %v", got)
	}
	if got := m.PowerAt(5); got != 0 {
		t.Fatalf("off-phase power %v, want 0", got)
	}
	if got := m.VoltageAt(5); got != 3 {
		t.Fatalf("voltage %v, want 3 (modulation must not touch voltage)", got)
	}

	// Stepped: the horizon is the min of the base's (Forever) and the
	// trace's next PWM edge.
	if got := NextChange(m, 0.5); got != 1.5 {
		t.Fatalf("NextChange(0.5) = %v, want 1.5 (edge at t=2)", got)
	}
	if got := NextChange(m, 3); got != 5 {
		t.Fatalf("NextChange(3) = %v, want 5 (edge at t=8)", got)
	}

	// An opaque trace makes the product opaque.
	op := Modulated{Source: base, Trace: TraceFunc(func(units.Seconds) float64 { return 0.5 })}
	if got := op.NextChange(0); got != 0 {
		t.Fatalf("opaque trace horizon %v, want 0", got)
	}
	if got := op.PowerAt(0); got != 5*units.MilliWatt {
		t.Fatalf("scaled power %v", got)
	}
}
