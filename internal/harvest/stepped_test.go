package harvest

import (
	"math"
	"testing"
	"testing/quick"

	"capybara/internal/units"
)

func TestNextChangeConstantSources(t *testing.T) {
	for _, src := range []Source{
		RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0},
		RFHarvester{TransmitPower: 3, Distance: 2, Efficiency: 0.5, V: 1.2},
		SolarPanel{PeakPower: units.MilliWatt, OpenCircuitVoltage: 1.5},
		PVPanel{ShortCircuitCurrent: 30 * units.MilliAmp, OpenCircuitVoltage: 1.5},
	} {
		if h := NextChange(src, 17); !math.IsInf(float64(h), 1) {
			t.Errorf("%T horizon = %v, want Forever", src, h)
		}
	}
}

func TestNextChangeOpaque(t *testing.T) {
	// A bare TraceFunc gives the solver no horizon: callers must fall
	// back to fixed-step integration.
	opaque := SolarPanel{PeakPower: units.MilliWatt, OpenCircuitVoltage: 1.5,
		Light: TraceFunc(func(t units.Seconds) float64 { return 0.5 })}
	if h := NextChange(opaque, 0); h != 0 {
		t.Fatalf("opaque trace horizon = %v, want 0", h)
	}
	// Non-Stepped values are conservatively opaque too.
	if h := NextChange(struct{}{}, 0); h != 0 {
		t.Fatalf("non-Stepped horizon = %v, want 0", h)
	}
}

func TestNextChangePWM(t *testing.T) {
	tr := PWMTrace(0.42, 1.0)
	if h := NextChange(tr, 0.1); math.Abs(float64(h)-0.32) > 1e-9 {
		t.Errorf("on-phase horizon = %v, want 0.32", h)
	}
	if h := NextChange(tr, 0.9); math.Abs(float64(h)-0.1) > 1e-9 {
		t.Errorf("off-phase horizon = %v, want 0.1", h)
	}
	// Exactly on an edge the horizon must still be positive.
	if h := NextChange(tr, 0.42); h <= 0 {
		t.Errorf("edge horizon = %v, want > 0", h)
	}
}

func TestNextChangeDiurnal(t *testing.T) {
	tr := DiurnalTrace(3600)
	// Daytime: sinusoid varies continuously, horizon unknown.
	if h := NextChange(tr, 900); h != 0 {
		t.Errorf("day horizon = %v, want 0", h)
	}
	// Night: constant zero until the next dawn.
	if h := NextChange(tr, 2700); math.Abs(float64(h)-900) > 1e-9 {
		t.Errorf("night horizon = %v, want 900", h)
	}
}

func TestNextChangeBlackout(t *testing.T) {
	tr := BlackoutTrace(ConstantTrace(1), [2]units.Seconds{10, 5})
	// Inside the window: zero until the window ends.
	if h := NextChange(tr, 12); math.Abs(float64(h)-3) > 1e-9 {
		t.Errorf("in-window horizon = %v, want 3", h)
	}
	// Before the window: the base's infinite horizon is clamped at the
	// window start.
	if h := NextChange(tr, 4); math.Abs(float64(h)-6) > 1e-9 {
		t.Errorf("pre-window horizon = %v, want 6", h)
	}
	// After the last window the base horizon shines through.
	if h := NextChange(tr, 20); !math.IsInf(float64(h), 1) {
		t.Errorf("post-window horizon = %v, want Forever", h)
	}
	// An opaque base stays opaque outside the windows.
	op := BlackoutTrace(TraceFunc(func(units.Seconds) float64 { return 1 }),
		[2]units.Seconds{10, 5})
	if h := NextChange(op, 4); h != 0 {
		t.Errorf("opaque-base horizon = %v, want 0", h)
	}
}

func TestNextChangeScaleAndLimiter(t *testing.T) {
	tr := ScaleTrace(PWMTrace(0.5, 2), ConstantTrace(0.8))
	if h := NextChange(tr, 0.25); math.Abs(float64(h)-0.75) > 1e-9 {
		t.Errorf("scale horizon = %v, want 0.75", h)
	}
	lim := Limiter{Source: SolarPanel{PeakPower: units.MilliWatt,
		OpenCircuitVoltage: 1.5, Light: PWMTrace(0.5, 2)}, Max: 5.5}
	if h := NextChange(lim, 0.25); math.Abs(float64(h)-0.75) > 1e-9 {
		t.Errorf("limiter horizon = %v, want 0.75", h)
	}
}

// TestNextChangeIsSound property-checks the Stepped contract: over the
// reported horizon the source output must actually be constant.
func TestNextChangeIsSound(t *testing.T) {
	traces := []Trace{
		ConstantTrace(0.42),
		PWMTrace(0.42, 1.0),
		PWMTrace(0.9, 7.3),
		DiurnalTrace(3600),
		BlackoutTrace(PWMTrace(0.5, 2), [2]units.Seconds{3, 4}, [2]units.Seconds{20, 1}),
		ScaleTrace(PWMTrace(0.5, 2), DiurnalTrace(100)),
	}
	f := func(which uint8, tRaw uint32, fRaw uint16) bool {
		tr := traces[int(which)%len(traces)]
		t0 := units.Seconds(float64(tRaw) / 1e3)
		h := NextChange(tr, t0)
		if h < 0 {
			return false
		}
		if h == 0 {
			return true // unknown horizon: nothing promised
		}
		// Probe a point strictly inside [t0, t0+h).
		frac := float64(fRaw) / (math.MaxUint16 + 1)
		probe := t0 + units.Seconds(frac*0.999999)*units.Seconds(math.Min(float64(h), 1e6))
		return tr.Level(probe) == tr.Level(t0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
