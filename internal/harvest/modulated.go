package harvest

import "capybara/internal/units"

// Modulated scales an existing source's power by a trace, leaving the
// voltage untouched. The fleet engine uses it to derive heterogeneous
// environments (PWM duty cycles, blackout windows) from one shared base
// source without rebuilding the platform: the wrapper is memoryless, so
// a single base Source instance can sit behind many Modulated views.
type Modulated struct {
	Source Source
	Trace  Trace
}

// PowerAt implements Source.
func (m Modulated) PowerAt(t units.Seconds) units.Power {
	return units.Power(float64(m.Source.PowerAt(t)) * clamp01(m.Trace.Level(t)))
}

// VoltageAt implements Source: modulation attenuates power, not the
// harvester's operating voltage.
func (m Modulated) VoltageAt(t units.Seconds) units.Voltage {
	return m.Source.VoltageAt(t)
}

// NextChange implements Stepped: the product is constant while both the
// base source and the trace are. An opaque factor (no usable horizon)
// makes the product opaque.
func (m Modulated) NextChange(t units.Seconds) units.Seconds {
	hs := NextChange(m.Source, t)
	ht := NextChange(m.Trace, t)
	if hs <= 0 || ht <= 0 {
		return 0
	}
	if ht < hs {
		return ht
	}
	return hs
}
