package harvest

import "capybara/internal/units"

// PhaseKeyer is optionally implemented by sources and traces whose
// piecewise-constant output cycles through a small set of regimes (PWM
// on/off, blackout window vs. gap, diurnal night). PhaseKey(t) returns
// a key identifying the regime the output is in at time t, and whether
// the regime is keyable at all: ok is false while the output varies
// continuously (the diurnal day sinusoid) or the shape is opaque.
//
// Keys are a cache discriminator, never evidence. Two instants with the
// same key see the same output *level*, but not necessarily the same
// remaining horizon — every consumer (the tape recorder, the op cache,
// the step fuser) re-proves duration coverage live against NextChange
// and re-checks the sampled power/voltage bits before replaying. A
// coarse or colliding key can therefore cost performance, never
// correctness.
type PhaseKeyer interface {
	PhaseKey(t units.Seconds) (uint64, bool)
}

// PhaseKey reports x's output regime at time t. x is typically a Source
// or a Trace. If x does not implement PhaseKeyer, the regime is unknown
// and PhaseKey returns (0, false): callers must treat the output as
// unkeyable, exactly as a non-Stepped source is treated by NextChange.
func PhaseKey(x any, t units.Seconds) (uint64, bool) {
	pk, ok := x.(PhaseKeyer)
	if !ok {
		return 0, false
	}
	return pk.PhaseKey(t)
}

// phaseMix folds two regime keys into one. Asymmetric on purpose so
// that composing (source, trace) distinguishes which side contributed
// which regime; collisions are harmless (keys are not evidence).
func phaseMix(a, b uint64) uint64 {
	const m = 0x9e3779b97f4a7c15
	h := (a ^ b*m) * m
	return h ^ h>>32
}

// PhaseKey implements PhaseKeyer: a constant trace is one regime.
func (c constantTrace) PhaseKey(units.Seconds) (uint64, bool) { return 0, true }

// PhaseKey implements PhaseKeyer: the square wave's on/off state, via
// the same phase comparison Level uses. The key deliberately ignores
// the offset within the half-cycle — duration coverage is what differs
// between offsets, and consumers re-prove that live via NextChange.
func (p pwmTrace) PhaseKey(t units.Seconds) (uint64, bool) {
	if p.phase(t) < p.duty {
		return 1, true
	}
	return 0, true
}

// PhaseKey implements PhaseKeyer: the night half is one constant-zero
// regime; the day sinusoid varies continuously, so it is unkeyable.
func (d diurnalTrace) PhaseKey(t units.Seconds) (uint64, bool) {
	ph := fastMod(float64(t), float64(d.period))
	if ph >= float64(d.period)/2 {
		return 1, true
	}
	return 0, false
}

// PhaseKey implements PhaseKeyer. Inside a blackout window the output
// is forced to zero regardless of the base, but each window is its own
// regime (their remaining horizons differ). Outside, the key combines
// the base regime with the gap index so the stretches between windows
// stay distinct.
func (b blackoutTrace) PhaseKey(t units.Seconds) (uint64, bool) {
	for i, w := range b.windows {
		if t >= w[0] && t < w[0]+w[1] {
			return phaseMix(uint64(i), 1), true
		}
	}
	base, ok := PhaseKey(b.base, t)
	if !ok {
		return 0, false
	}
	var gap uint64
	for _, w := range b.windows {
		if w[0] <= t {
			gap++
		}
	}
	return phaseMix(base*1000003+gap, 0), true
}

// PhaseKey implements PhaseKeyer: the product regime is keyable while
// both factors are.
func (s scaleTrace) PhaseKey(t units.Seconds) (uint64, bool) {
	ka, ok := PhaseKey(s.a, t)
	if !ok {
		return 0, false
	}
	kb, ok := PhaseKey(s.b, t)
	if !ok {
		return 0, false
	}
	return phaseMix(ka, kb), true
}

// PhaseKey implements PhaseKeyer: a regulated supply is one regime.
func (s RegulatedSupply) PhaseKey(units.Seconds) (uint64, bool) { return 0, true }

// PhaseKey implements PhaseKeyer: a fixed-range RF field is one regime.
func (r RFHarvester) PhaseKey(units.Seconds) (uint64, bool) { return 0, true }

// PhaseKey implements PhaseKeyer by delegating to the light trace; a
// nil trace means constant full sun.
func (p SolarPanel) PhaseKey(t units.Seconds) (uint64, bool) {
	if p.Light == nil {
		return 0, true
	}
	return PhaseKey(p.Light, t)
}

// PhaseKey implements PhaseKeyer by delegating to the wrapped source:
// the clamp is memoryless.
func (l Limiter) PhaseKey(t units.Seconds) (uint64, bool) {
	return PhaseKey(l.Source, t)
}

// PhaseKey implements PhaseKeyer: a modulated source's regime combines
// the base source's regime with the trace's.
func (m Modulated) PhaseKey(t units.Seconds) (uint64, bool) {
	ks, ok := PhaseKey(m.Source, t)
	if !ok {
		return 0, false
	}
	kt, ok := PhaseKey(m.Trace, t)
	if !ok {
		return 0, false
	}
	return phaseMix(ks, kt), true
}
