package harvest

import (
	"fmt"
	"math"

	"capybara/internal/units"
)

// PVPanel models a photovoltaic panel with a single-diode IV
// characteristic, the model behind the paper's maximum-power-point
// tracking input booster (§7: "Capybara leverages maximum power point
// tracking in its input booster"):
//
//	I(V) = Iph − I0·(exp(V/Vt) − 1)
//
// with the photocurrent Iph proportional to irradiance and the dark
// current I0 fixed by the full-sun open-circuit voltage. The booster
// operates the panel at the voltage maximizing P = V·I (the MPP),
// which this type computes by golden-section search.
//
// PVPanel is the physically-detailed alternative to the simpler
// SolarPanel; both implement Source.
type PVPanel struct {
	// ShortCircuitCurrent is Isc at full irradiance.
	ShortCircuitCurrent units.Current
	// OpenCircuitVoltage is Voc at full irradiance.
	OpenCircuitVoltage units.Voltage
	// ThermalVoltage is the lumped diode factor n·Vt (≈ 50–80 mV for a
	// small series string at room temperature). Zero selects 60 mV.
	ThermalVoltage units.Voltage
	// Series strings multiply voltage; Parallel strings multiply
	// current. Zero means 1.
	Series, Parallel int
	// Light is the irradiance trace; nil means constant full sun.
	Light Trace
}

func (p PVPanel) vt() float64 {
	if p.ThermalVoltage > 0 {
		return float64(p.ThermalVoltage)
	}
	return 0.06
}

func (p PVPanel) dims() (series, parallel float64) {
	series, parallel = float64(p.Series), float64(p.Parallel)
	if series < 1 {
		series = 1
	}
	if parallel < 1 {
		parallel = 1
	}
	return series, parallel
}

func (p PVPanel) level(t units.Seconds) float64 {
	if p.Light == nil {
		return 1
	}
	return clamp01(p.Light.Level(t))
}

// NextChange implements Stepped: the MPP output is constant exactly as
// long as the light trace is.
func (p PVPanel) NextChange(t units.Seconds) units.Seconds {
	if p.Light == nil {
		return Forever
	}
	return NextChange(p.Light, t)
}

// darkCurrent returns I0 from the full-sun operating point:
// 0 = Isc − I0·(exp(Voc/Vt) − 1).
func (p PVPanel) darkCurrent() float64 {
	e := math.Exp(float64(p.OpenCircuitVoltage)/p.vt()) - 1
	if e <= 0 {
		return 0
	}
	return float64(p.ShortCircuitCurrent) / e
}

// Current returns the panel current at terminal voltage v and time t
// (for one series string, scaled by parallel strings).
func (p PVPanel) Current(v units.Voltage, t units.Seconds) units.Current {
	series, parallel := p.dims()
	lvl := p.level(t)
	if lvl <= 0 {
		return 0
	}
	perCell := float64(v) / series
	i := float64(p.ShortCircuitCurrent)*lvl - p.darkCurrent()*(math.Exp(perCell/p.vt())-1)
	if i < 0 {
		i = 0
	}
	return units.Current(i * parallel)
}

// MPP returns the maximum power point at time t: the operating voltage
// and the power there.
func (p PVPanel) MPP(t units.Seconds) (units.Voltage, units.Power) {
	series, _ := p.dims()
	lvl := p.level(t)
	if lvl <= 0 {
		return 0, 0
	}
	// Voc shrinks logarithmically with irradiance.
	voc := (float64(p.OpenCircuitVoltage) + p.vt()*math.Log(lvl)) * series
	if voc <= 0 {
		return 0, 0
	}
	power := func(v float64) float64 {
		return v * float64(p.Current(units.Voltage(v), t))
	}
	// Golden-section search over [0, voc]: P(V) is unimodal for the
	// single-diode model.
	const phi = 0.6180339887498949
	lo, hi := 0.0, voc
	for i := 0; i < 80; i++ {
		a := hi - (hi-lo)*phi
		b := lo + (hi-lo)*phi
		if power(a) < power(b) {
			lo = a
		} else {
			hi = b
		}
	}
	v := (lo + hi) / 2
	return units.Voltage(v), units.Power(power(v))
}

// PowerAt implements Source: the MPPT booster extracts the MPP power.
func (p PVPanel) PowerAt(t units.Seconds) units.Power {
	_, pw := p.MPP(t)
	return pw
}

// VoltageAt implements Source: the booster holds the panel at the MPP
// voltage.
func (p PVPanel) VoltageAt(t units.Seconds) units.Voltage {
	v, _ := p.MPP(t)
	return v
}

// FillFactor returns the panel's fill factor at full sun:
// P_mpp / (Voc · Isc), a standard quality figure (~0.6–0.8).
func (p PVPanel) FillFactor() float64 {
	series, parallel := p.dims()
	_, pmpp := p.MPP(0)
	denom := float64(p.OpenCircuitVoltage) * series * float64(p.ShortCircuitCurrent) * parallel
	if denom <= 0 {
		return 0
	}
	return float64(pmpp) / denom
}

func (p PVPanel) String() string {
	series, parallel := p.dims()
	return fmt.Sprintf("PV %gS%gP (Isc %v, Voc %v, FF %.2f)",
		series, parallel, p.ShortCircuitCurrent, p.OpenCircuitVoltage, p.FillFactor())
}
