package harvest

import (
	"math"
	"testing"
	"testing/quick"

	"capybara/internal/units"
)

func TestRegulatedSupply(t *testing.T) {
	s := RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0}
	for _, tt := range []units.Seconds{0, 1, 1e6} {
		if s.PowerAt(tt) != 10*units.MilliWatt {
			t.Fatalf("PowerAt(%v) = %v", tt, s.PowerAt(tt))
		}
		if s.VoltageAt(tt) != 3.0 {
			t.Fatalf("VoltageAt(%v) = %v", tt, s.VoltageAt(tt))
		}
	}
}

func TestConstantTraceClamps(t *testing.T) {
	if got := ConstantTrace(2.0).Level(5); got != 1 {
		t.Errorf("over-range trace = %g", got)
	}
	if got := ConstantTrace(-1).Level(5); got != 0 {
		t.Errorf("negative trace = %g", got)
	}
}

func TestPWMTrace(t *testing.T) {
	tr := PWMTrace(0.42, 1.0)
	// Inside the on-phase.
	if got := tr.Level(0.1); got != 1 {
		t.Errorf("PWM on-phase = %g", got)
	}
	// Inside the off-phase.
	if got := tr.Level(0.9); got != 0 {
		t.Errorf("PWM off-phase = %g", got)
	}
	// Long-term average equals the duty cycle.
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += tr.Level(units.Seconds(float64(i) * 0.001))
	}
	if avg := sum / n; math.Abs(avg-0.42) > 0.01 {
		t.Errorf("PWM average = %g, want 0.42", avg)
	}
	// Degenerate period falls back to a constant.
	if got := PWMTrace(0.42, 0).Level(123); got != 0.42 {
		t.Errorf("degenerate PWM = %g", got)
	}
}

func TestDiurnalTrace(t *testing.T) {
	tr := DiurnalTrace(units.Hour)
	if got := tr.Level(units.Hour / 4); math.Abs(got-1) > 1e-9 {
		t.Errorf("noon = %g, want 1", got)
	}
	if got := tr.Level(3 * units.Hour / 4); got != 0 {
		t.Errorf("night = %g, want 0", got)
	}
	if got := DiurnalTrace(0).Level(1); got != 0 {
		t.Errorf("degenerate diurnal = %g", got)
	}
}

func TestBlackoutTrace(t *testing.T) {
	tr := BlackoutTrace(ConstantTrace(1), [2]units.Seconds{10, 5})
	if got := tr.Level(9.9); got != 1 {
		t.Errorf("before blackout = %g", got)
	}
	if got := tr.Level(12); got != 0 {
		t.Errorf("during blackout = %g", got)
	}
	if got := tr.Level(15); got != 1 {
		t.Errorf("after blackout = %g (window end is exclusive)", got)
	}
}

func TestSolarPanelScaling(t *testing.T) {
	one := SolarPanel{PeakPower: 5 * units.MilliWatt, OpenCircuitVoltage: 1.5}
	two := SolarPanel{PeakPower: 5 * units.MilliWatt, OpenCircuitVoltage: 1.5, Series: 2}
	if got := one.PowerAt(0); got != 5*units.MilliWatt {
		t.Errorf("single panel power = %v", got)
	}
	if got := two.PowerAt(0); got != 10*units.MilliWatt {
		t.Errorf("series pair power = %v", got)
	}
	if got := two.VoltageAt(0); got != 3.0 {
		t.Errorf("series pair voltage = %v, want 3.0", got)
	}
	quad := SolarPanel{PeakPower: 5 * units.MilliWatt, OpenCircuitVoltage: 1.5, Series: 2, Parallel: 2}
	if got := quad.PowerAt(0); got != 20*units.MilliWatt {
		t.Errorf("2S2P power = %v", got)
	}
	if got := quad.VoltageAt(0); got != 3.0 {
		t.Errorf("2S2P voltage = %v (parallel must not add voltage)", got)
	}
}

func TestSolarPanelDimming(t *testing.T) {
	p := SolarPanel{PeakPower: 10 * units.MilliWatt, OpenCircuitVoltage: 2.0, Light: ConstantTrace(0.25)}
	if got := p.PowerAt(0); got != 2.5*units.MilliWatt {
		t.Errorf("dim power = %v, want 2.5 mW", got)
	}
	// Voltage sags as sqrt(level): 2.0 * 0.5 = 1.0.
	if got := p.VoltageAt(0); math.Abs(float64(got)-1.0) > 1e-12 {
		t.Errorf("dim voltage = %v, want 1.0", got)
	}
	dark := SolarPanel{PeakPower: 10 * units.MilliWatt, OpenCircuitVoltage: 2.0, Light: ConstantTrace(0)}
	if dark.PowerAt(0) != 0 || dark.VoltageAt(0) != 0 {
		t.Errorf("dark panel produced output: %v, %v", dark.PowerAt(0), dark.VoltageAt(0))
	}
}

func TestRFHarvester(t *testing.T) {
	r := RFHarvester{TransmitPower: 3, Distance: 2, Efficiency: 0.5, V: 1.2}
	want := 3 * 0.5 / (4 * math.Pi * 4)
	if got := r.PowerAt(0); math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("RF power = %v, want %g", got, want)
	}
	if got := (RFHarvester{TransmitPower: 3}).PowerAt(0); got != 0 {
		t.Errorf("zero-distance RF power = %v", got)
	}
	// Power falls off with distance squared.
	near := RFHarvester{TransmitPower: 3, Distance: 1, Efficiency: 0.5}
	far := RFHarvester{TransmitPower: 3, Distance: 10, Efficiency: 0.5}
	if ratio := float64(near.PowerAt(0)) / float64(far.PowerAt(0)); math.Abs(ratio-100) > 1e-6 {
		t.Errorf("inverse-square ratio = %g, want 100", ratio)
	}
}

func TestLimiterClamps(t *testing.T) {
	// Series panels in bright light exceed the rating; the limiter
	// clamps voltage and sheds the proportional power.
	src := SolarPanel{PeakPower: 10 * units.MilliWatt, OpenCircuitVoltage: 3.0, Series: 3}
	lim := Limiter{Source: src, Max: 5.5}
	if got := lim.VoltageAt(0); got != 5.5 {
		t.Errorf("limited voltage = %v, want 5.5", got)
	}
	wantP := 30e-3 * 5.5 / 9.0
	if got := lim.PowerAt(0); math.Abs(float64(got)-wantP) > 1e-12 {
		t.Errorf("limited power = %v, want %g", got, wantP)
	}
	// Below the limit the limiter is transparent.
	dim := Limiter{Source: SolarPanel{PeakPower: 10 * units.MilliWatt, OpenCircuitVoltage: 2.0}, Max: 5.5}
	if dim.VoltageAt(0) != 2.0 || dim.PowerAt(0) != 10*units.MilliWatt {
		t.Errorf("limiter not transparent below Max: %v %v", dim.VoltageAt(0), dim.PowerAt(0))
	}
}

func TestLimiterNeverExceedsMaxProperty(t *testing.T) {
	f := func(series uint8, voc uint16, tRaw uint16) bool {
		src := SolarPanel{
			PeakPower:          10 * units.MilliWatt,
			OpenCircuitVoltage: units.Voltage(float64(voc)/math.MaxUint16*5 + 0.1),
			Series:             int(series%8) + 1,
			Light:              DiurnalTrace(3600),
		}
		lim := Limiter{Source: src, Max: 5.5}
		tt := units.Seconds(float64(tRaw))
		return lim.VoltageAt(tt) <= 5.5 && lim.PowerAt(tt) <= src.PowerAt(tt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAveragePower(t *testing.T) {
	p := SolarPanel{PeakPower: 10 * units.MilliWatt, OpenCircuitVoltage: 2.0, Light: PWMTrace(0.5, 1)}
	avg := AveragePower(p, 100, 10000)
	if math.Abs(float64(avg)-5e-3) > 2e-4 {
		t.Errorf("average power = %v, want ≈5 mW", avg)
	}
	// Degenerate sampling falls back to instantaneous power.
	if got := AveragePower(p, 0, 0); got != p.PowerAt(0) {
		t.Errorf("degenerate average = %v", got)
	}
}

func TestSourceStringers(t *testing.T) {
	if s := (RegulatedSupply{Max: 10 * units.MilliWatt, V: 3}).String(); s == "" {
		t.Error("RegulatedSupply stringer empty")
	}
	if s := (SolarPanel{PeakPower: units.MilliWatt, OpenCircuitVoltage: 1.5}).String(); s == "" {
		t.Error("SolarPanel stringer empty")
	}
}

func TestScaleTrace(t *testing.T) {
	tr := ScaleTrace(ConstantTrace(0.5), ConstantTrace(0.5))
	if got := tr.Level(0); got != 0.25 {
		t.Fatalf("ScaleTrace = %g, want 0.25", got)
	}
}

func TestRFHarvesterVoltage(t *testing.T) {
	r := RFHarvester{TransmitPower: 3, Distance: 2, Efficiency: 0.5, V: 1.2}
	if got := r.VoltageAt(0); got != 1.2 {
		t.Fatalf("VoltageAt = %v", got)
	}
	// A bad efficiency falls back to a sane default.
	weird := RFHarvester{TransmitPower: 3, Distance: 1, Efficiency: 2}
	if got := weird.PowerAt(0); got <= 0 {
		t.Fatalf("fallback efficiency power = %v", got)
	}
}

// TestFastMod pins the fast periodic-phase reduction against math.Mod
// over the domain the traces use (non-negative times, positive
// periods): the result must stay in [0, period) and agree with the
// reference to within one quotient correction.
func TestFastMod(t *testing.T) {
	check := func(x, y float64) {
		t.Helper()
		got := fastMod(x, y)
		if got < 0 || got >= y {
			t.Fatalf("fastMod(%g, %g) = %g out of [0, %g)", x, y, got, y)
		}
		want := math.Mod(x, y)
		if want < 0 {
			want += y
		}
		if got != want {
			t.Fatalf("fastMod(%g, %g) = %g, math.Mod says %g", x, y, got, want)
		}
	}
	// Edge instants: exact multiples, just-below multiples, zero.
	for _, y := range []float64{1, 8, 86400, 0.125, 3.7} {
		check(0, y)
		for k := 1.0; k <= 4; k++ {
			check(k*y, y)
			check(math.Nextafter(k*y, 0), y)
			check(math.Nextafter(k*y, math.Inf(1)), y)
		}
	}
	prop := func(rawX, rawY uint32) bool {
		x := float64(rawX) / 16            // up to ~3 days of sim time
		y := 0.01 + float64(rawY%8000)/100 // periods 0.01..80 s
		got := fastMod(x, y)
		want := math.Mod(x, y)
		if want < 0 {
			want += y
		}
		return got == want && got >= 0 && got < y
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200000}); err != nil {
		t.Fatal(err)
	}
}
