// Package harvest models the energy sources that feed a Capybara power
// system: solar panels, regulated bench supplies, and RF harvesters,
// together with the time-varying environmental traces that drive them
// and the input voltage limiter from the paper's power distribution
// circuit (§5.1).
package harvest

import (
	"fmt"
	"math"

	"capybara/internal/units"
)

// Source is an energy harvester. At simulated time t it produces
// PowerAt(t) at open-circuit voltage VoltageAt(t). The power system's
// input booster performs maximum-power-point extraction, so PowerAt is
// the power actually deliverable into the booster.
type Source interface {
	// PowerAt returns the harvestable power at time t.
	PowerAt(t units.Seconds) units.Power
	// VoltageAt returns the harvester's output voltage at time t. The
	// input booster needs this to decide whether the bypass diode path
	// can charge directly (voltage above the storage voltage) or the
	// boost path is required.
	VoltageAt(t units.Seconds) units.Voltage
}

// Stepped is optionally implemented by sources and traces whose output
// is piecewise constant. NextChange(t) returns a duration h > 0 such
// that the output is constant on [t, t+h); h may be Forever for
// sources that never change. Implementations must be conservative: it
// is always legal to report a horizon shorter than the true one, and a
// return of 0 means "unknown — assume the output can change at any
// moment". The event-driven charge solver (internal/power,
// internal/sim) uses this to jump analytically across whole segments
// instead of ticking a fixed-step clock.
type Stepped interface {
	NextChange(t units.Seconds) units.Seconds
}

// Forever is the horizon reported by sources whose output never
// changes (regulated supplies, constant traces).
var Forever = units.Seconds(math.Inf(1))

// NextChange reports how long x's output is guaranteed constant
// starting at t. x is typically a Source or a Trace. If x does not
// implement Stepped (or reports an unusable horizon), NextChange
// returns 0: callers must fall back to conservative fixed-step
// integration.
func NextChange(x any, t units.Seconds) units.Seconds {
	st, ok := x.(Stepped)
	if !ok {
		return 0
	}
	h := st.NextChange(t)
	if h < 0 || math.IsNaN(float64(h)) {
		return 0
	}
	return h
}

// Trace is a dimensionless environmental intensity over time in [0, 1]
// (e.g. normalized irradiance). Traces compose multiplicatively. The
// constructors in this package return traces that also implement
// Stepped where the shape allows it.
type Trace interface {
	Level(t units.Seconds) float64
}

// TraceFunc adapts an arbitrary function to the Trace interface. It is
// opaque to the event solver (no Stepped implementation), so sources
// driven by a TraceFunc take the conservative fixed-step path.
type TraceFunc func(t units.Seconds) float64

// Level implements Trace.
func (f TraceFunc) Level(t units.Seconds) float64 { return f(t) }

type constantTrace float64

func (c constantTrace) Level(units.Seconds) float64            { return float64(c) }
func (c constantTrace) NextChange(units.Seconds) units.Seconds { return Forever }

// ConstantTrace returns level at all times, clamped to [0, 1].
func ConstantTrace(level float64) Trace {
	return constantTrace(clamp01(level))
}

type pwmTrace struct {
	duty   float64
	period units.Seconds
}

// fastMod returns x modulo y in [0, y) for y > 0. math.Mod's
// bit-normalization loop dominates CPU profiles of PWM-gated charge
// workloads; floor and fused multiply-add compile to single
// instructions, and the correction branches repair the at-most-one-off
// quotient when x/y rounds across an integer.
func fastMod(x, y float64) float64 {
	r := math.FMA(-math.Floor(x/y), y, x)
	if r < 0 {
		r += y
	} else if r >= y {
		r -= y
	}
	return r
}

func (p pwmTrace) phase(t units.Seconds) float64 {
	// fastMod keeps the phase in [0, 1); negative t wraps into the
	// same cycle position.
	return fastMod(float64(t), float64(p.period)) / float64(p.period)
}

func (p pwmTrace) Level(t units.Seconds) float64 {
	if p.phase(t) < p.duty {
		return 1
	}
	return 0
}

// NextChange implements Stepped: the output is constant until the next
// PWM edge.
func (p pwmTrace) NextChange(t units.Seconds) units.Seconds {
	ph := p.phase(t)
	var frac float64
	if ph < p.duty {
		frac = p.duty - ph
	} else {
		frac = 1 - ph
	}
	h := units.Seconds(frac * float64(p.period))
	// Float modulo can land exactly on an edge; never report a
	// non-positive horizon for an output that is constant on some
	// open interval.
	if h <= 0 {
		h = units.Seconds(math.Min(float64(p.period), 1e-9))
	}
	return h
}

// PWMTrace models the paper's PWM-dimmed halogen bulb: the long-term
// average intensity equals duty, delivered as a fast square wave with
// the given period. Thermal mass of the bulb filament and the booster's
// input capacitor average the chopping, so consumers see the duty-
// scaled level; the square wave matters only for sub-period sampling.
func PWMTrace(duty float64, period units.Seconds) Trace {
	duty = clamp01(duty)
	if period <= 0 {
		return ConstantTrace(duty)
	}
	return pwmTrace{duty: duty, period: period}
}

type diurnalTrace struct {
	period units.Seconds
}

func (d diurnalTrace) Level(t units.Seconds) float64 {
	s := math.Sin(2 * math.Pi * float64(t) / float64(d.period))
	if s < 0 {
		return 0
	}
	return s
}

// NextChange implements Stepped. During the night half the output is
// constant zero until the next dawn; during the day the sinusoid
// varies continuously, so the horizon is unknown (0).
func (d diurnalTrace) NextChange(t units.Seconds) units.Seconds {
	ph := fastMod(float64(t), float64(d.period))
	if ph >= float64(d.period)/2 {
		h := units.Seconds(float64(d.period) - ph)
		if h > 0 {
			return h
		}
	}
	return 0
}

// DiurnalTrace models a day/night cycle: intensity follows the positive
// half of a sinusoid with the given period (e.g. 24 h, or ~90 min for
// a low-earth-orbit satellite), zero during the "night" half.
func DiurnalTrace(period units.Seconds) Trace {
	if period <= 0 {
		return ConstantTrace(0)
	}
	return diurnalTrace{period: period}
}

type blackoutTrace struct {
	base    Trace
	windows [][2]units.Seconds
}

func (b blackoutTrace) Level(t units.Seconds) float64 {
	for _, w := range b.windows {
		if t >= w[0] && t < w[0]+w[1] {
			return 0
		}
	}
	return b.base.Level(t)
}

// NextChange implements Stepped: inside a blackout window the output
// is zero until the window ends; outside, the base horizon is clamped
// at the next window start.
func (b blackoutTrace) NextChange(t units.Seconds) units.Seconds {
	for _, w := range b.windows {
		if t >= w[0] && t < w[0]+w[1] {
			return w[0] + w[1] - t
		}
	}
	h := NextChange(b.base, t)
	if h <= 0 {
		return 0
	}
	for _, w := range b.windows {
		if w[0] > t && w[0]-t < h {
			h = w[0] - t
		}
	}
	return h
}

// BlackoutTrace wraps base, forcing intensity to zero inside each
// [start, start+dur) window. Used for adversarial input-power timing
// experiments (the NO-switch retry hazard, paper §5.2).
func BlackoutTrace(base Trace, windows ...[2]units.Seconds) Trace {
	return blackoutTrace{base: base, windows: windows}
}

type scaleTrace struct {
	a, b Trace
}

func (s scaleTrace) Level(t units.Seconds) float64 {
	return s.a.Level(t) * s.b.Level(t)
}

// NextChange implements Stepped: the product is constant while both
// factors are.
func (s scaleTrace) NextChange(t units.Seconds) units.Seconds {
	ha := NextChange(s.a, t)
	hb := NextChange(s.b, t)
	if ha <= 0 || hb <= 0 {
		return 0
	}
	if hb < ha {
		return hb
	}
	return ha
}

// ScaleTrace multiplies two traces pointwise.
func ScaleTrace(a, b Trace) Trace {
	return scaleTrace{a: a, b: b}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// RegulatedSupply models the paper's GRC harvester: "a voltage
// regulator and an attenuating resistor that supplies at most 10 mW".
// Power is constant; voltage is the regulator setpoint.
type RegulatedSupply struct {
	Max units.Power
	V   units.Voltage
}

// PowerAt implements Source.
func (s RegulatedSupply) PowerAt(units.Seconds) units.Power { return s.Max }

// VoltageAt implements Source.
func (s RegulatedSupply) VoltageAt(units.Seconds) units.Voltage { return s.V }

// NextChange implements Stepped: a regulated supply never changes.
func (s RegulatedSupply) NextChange(units.Seconds) units.Seconds { return Forever }

func (s RegulatedSupply) String() string {
	return fmt.Sprintf("regulated supply (%v @ %v)", s.Max, s.V)
}

// SolarPanel models one or more photovoltaic panels under a light
// trace. PeakPower is the electrical output at trace level 1.0.
// Panels wired in series multiply voltage; in parallel they multiply
// power. The paper's TA rig: two TrisolX panels under a 20 W halogen
// at 42 % PWM.
type SolarPanel struct {
	// PeakPower is one panel's output at full trace intensity.
	PeakPower units.Power
	// OpenCircuitVoltage is one panel's Voc at full intensity.
	OpenCircuitVoltage units.Voltage
	// Series is the number of panels wired in series (≥ 1). Series
	// wiring is the paper's dim-light trick: it raises voltage into the
	// booster's usable range while the limiter guards bright light.
	Series int
	// Parallel is the number of series strings in parallel (≥ 1).
	Parallel int
	// Light is the irradiance trace; nil means constant full sun.
	Light Trace
}

func (p SolarPanel) dims() (series, parallel int) {
	series, parallel = p.Series, p.Parallel
	if series < 1 {
		series = 1
	}
	if parallel < 1 {
		parallel = 1
	}
	return series, parallel
}

func (p SolarPanel) level(t units.Seconds) float64 {
	if p.Light == nil {
		return 1
	}
	return clamp01(p.Light.Level(t))
}

// PowerAt implements Source: total power scales with panel count and
// light level.
func (p SolarPanel) PowerAt(t units.Seconds) units.Power {
	series, parallel := p.dims()
	return units.Power(float64(p.PeakPower) * float64(series*parallel) * p.level(t))
}

// VoltageAt implements Source: series strings add voltage; a panel's
// voltage sags logarithmically as light dims (photovoltaic Voc ∝
// ln(irradiance)), approximated here by a square-root falloff that
// keeps the curve monotone and zero at darkness.
func (p SolarPanel) VoltageAt(t units.Seconds) units.Voltage {
	series, _ := p.dims()
	return units.Voltage(float64(p.OpenCircuitVoltage) * float64(series) * math.Sqrt(p.level(t)))
}

// NextChange implements Stepped: the panel output is constant exactly
// as long as its light trace is.
func (p SolarPanel) NextChange(t units.Seconds) units.Seconds {
	if p.Light == nil {
		return Forever
	}
	return NextChange(p.Light, t)
}

func (p SolarPanel) String() string {
	series, parallel := p.dims()
	return fmt.Sprintf("solar %dS%dP (%v, Voc %v)", series, parallel, p.PeakPower, p.OpenCircuitVoltage)
}

// RFHarvester models a far-field RF power harvester (e.g. the P2110B
// the paper cites as an over-specialized design). Received power falls
// with the square of distance.
type RFHarvester struct {
	// TransmitPower is the radiated power of the RF source.
	TransmitPower units.Power
	// Distance is the range to the source in metres.
	Distance float64
	// Efficiency is the RF-to-DC conversion efficiency in (0, 1].
	Efficiency float64
	// V is the rectified output voltage.
	V units.Voltage
}

// PowerAt implements Source using a free-space path-loss model with a
// reference gain of 1 m².
func (r RFHarvester) PowerAt(units.Seconds) units.Power {
	if r.Distance <= 0 {
		return 0
	}
	eff := r.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 0.5
	}
	return units.Power(float64(r.TransmitPower) * eff / (4 * math.Pi * r.Distance * r.Distance))
}

// VoltageAt implements Source.
func (r RFHarvester) VoltageAt(units.Seconds) units.Voltage { return r.V }

// NextChange implements Stepped: a fixed-range RF field is constant.
func (r RFHarvester) NextChange(units.Seconds) units.Seconds { return Forever }

// Limiter is the input voltage limiter from the paper's power
// distribution circuit: it allows the harvester voltage to rise above
// component ratings (solar panels in series for dim light) by clamping
// what downstream components see.
type Limiter struct {
	Source Source
	Max    units.Voltage
}

// PowerAt implements Source. Power clipped by the limiter above Max is
// dissipated: the deliverable power is reduced proportionally to the
// voltage clamp (the limiter is a shunt).
func (l Limiter) PowerAt(t units.Seconds) units.Power {
	v := l.Source.VoltageAt(t)
	p := l.Source.PowerAt(t)
	if l.Max <= 0 || v <= l.Max {
		return p
	}
	return units.Power(float64(p) * float64(l.Max) / float64(v))
}

// VoltageAt implements Source, clamping at Max.
func (l Limiter) VoltageAt(t units.Seconds) units.Voltage {
	v := l.Source.VoltageAt(t)
	if l.Max > 0 && v > l.Max {
		return l.Max
	}
	return v
}

// NextChange implements Stepped by delegating to the wrapped source:
// the clamp is memoryless, so the limited output changes exactly when
// the underlying source does.
func (l Limiter) NextChange(t units.Seconds) units.Seconds {
	return NextChange(l.Source, t)
}

// AveragePower integrates a source's power over [0, horizon] with the
// given number of samples, for provisioning estimates.
func AveragePower(s Source, horizon units.Seconds, samples int) units.Power {
	if samples <= 0 || horizon <= 0 {
		return s.PowerAt(0)
	}
	var sum float64
	for i := 0; i < samples; i++ {
		t := units.Seconds(float64(i) / float64(samples) * float64(horizon))
		sum += float64(s.PowerAt(t))
	}
	return units.Power(sum / float64(samples))
}
