package reservoir

import (
	"math"
	"testing"

	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// TestRevertFiresExactlyAtRetention pins the boundary semantics the
// chaos harness surfaced: an outage lasting *exactly* the retention
// span must revert the switch at, not after, expiry. The old
// implementation leaked the latch and then compared the post-leak
// voltage against HoldVoltage with a strict '<', so the boundary
// depended on exp/log rounding and an exact-length outage could leave
// the switch holding state forever.
func TestRevertFiresExactlyAtRetention(t *testing.T) {
	// Sweep latch programmings: under the old voltage-compare semantics
	// ~3/4 of FullVoltage values (2.0 V among them) failed the exact
	// boundary; the prototype's 2.5 V merely happened to round down.
	for _, full := range []units.Voltage{2.0, 2.25, 2.5, 2.75, 3.0} {
		s := DefaultSwitch(NormallyOpen)
		s.FullVoltage = full
		s.Set(true)
		if !s.TickUnpowered(s.Retention()) {
			t.Fatalf("outage of exactly Retention() (%v, full=%v) did not revert (latchV=%v)",
				s.Retention(), full, s.LatchVoltage())
		}
		if s.Closed() {
			t.Fatalf("NO switch still closed after exact-retention outage (full=%v)", full)
		}
		if s.LatchVoltage() != 0 {
			t.Fatalf("latch not drained after revert: %v", s.LatchVoltage())
		}
	}

	s := DefaultSwitch(NormallyOpen)

	// One tick before expiry must NOT revert...
	s.Set(true)
	if s.TickUnpowered(s.Retention() - 1e-9) {
		t.Fatal("reverted one tick before retention expiry")
	}
	if !s.Closed() {
		t.Fatal("switch lost state before retention expiry")
	}
	// ...and the residual expiry must close out the revert exactly.
	rest := s.Expiry()
	if math.IsInf(float64(rest), 1) {
		t.Fatal("held switch reports +Inf expiry")
	}
	if !s.TickUnpowered(rest) {
		t.Fatal("residual Expiry() tick did not revert")
	}
}

// TestUnpoweredLeakKeepsActiveBanksSettled pins a settling bug the
// chaos harness surfaced: connected banks share one terminal, so they
// must stay at a common voltage while leaking during an outage. The
// old TickUnpowered leaked each bank independently and only re-settled
// after a revert, so banks with different leakage resistances drifted
// apart — breaking the ActiveSet contract (base-bank voltage speaks
// for the whole set) and the array's energy accounting.
func TestUnpoweredLeakKeepsActiveBanksSettled(t *testing.T) {
	a := newTestArray(NormallyOpen)
	if err := a.Configure(0b111); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumBanks(); i++ {
		a.Bank(i).SetVoltage(3.0)
	}
	// Well inside the retention window: no revert, just leakage. The
	// small bank's ceramics/tantalums barely leak while the EDLCs do,
	// so without re-settling the members diverge.
	a.TickUnpowered(100)
	if a.Reverts != 0 {
		t.Fatalf("unexpected revert inside retention window: %d", a.Reverts)
	}
	v0 := a.Bank(0).Voltage()
	for i := 1; i < a.NumBanks(); i++ {
		if v := a.Bank(i).Voltage(); math.Abs(float64(v-v0)) > 1e-9 {
			t.Fatalf("active banks diverged during unpowered leak: bank0=%v bank%d=%v", v0, i, v)
		}
	}
}

// TestLeakLossClosesEnergyBalance checks that LeakLoss (with ShareLoss)
// accounts exactly for the energy an isolated array loses over time.
func TestLeakLossClosesEnergyBalance(t *testing.T) {
	a := newTestArray(NormallyOpen)
	if err := a.Configure(0b111); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumBanks(); i++ {
		a.Bank(i).SetVoltage(2.8)
	}
	total := func() units.Energy {
		var e units.Energy
		for i := 0; i < a.NumBanks(); i++ {
			e += a.Bank(i).Energy()
		}
		return e
	}
	before := total()
	share0, leak0 := a.ShareLoss, a.LeakLoss
	for i := 0; i < 50; i++ {
		a.TickUnpowered(10)
	}
	lost := float64(before - total())
	accounted := float64(a.LeakLoss-leak0) + float64(a.ShareLoss-share0)
	if !almostEqual(lost, accounted, 1e-9) {
		t.Fatalf("energy books do not close: lost %v, accounted %v (leak %v share %v)",
			lost, accounted, a.LeakLoss-leak0, a.ShareLoss-share0)
	}
	if a.LeakLoss <= leak0 {
		t.Fatal("EDLC-backed array reported no leakage loss")
	}
}

// TestChargeKeepsMixedRatingSetSettled is the multi-bank half of the
// rated-ceiling charger bug (see power.TestChargeStopsAtRatedVoltage):
// an active set with mixed ratings (ceramic 6.3 V + EDLC 3.6 V) must
// charge as one electrically-connected store bounded by the lowest
// rating. The old solver pushed the set past 3.6 V, the EDLC clamped
// itself, and the "settled common voltage" contract the whole
// reservoir model rests on was silently broken.
func TestChargeKeepsMixedRatingSetSettled(t *testing.T) {
	base := storage.MustBank("base", storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad))
	big := storage.MustBank("big", storage.GroupOf(storage.EDLC, 9))
	arr := NewArray(base, NormallyOpen, big)
	if err := arr.Configure(0b11); err != nil {
		t.Fatal(err)
	}
	set := arr.ActiveSet()

	sys := power.NewSystem(harvest.RegulatedSupply{Max: 20 * units.MilliWatt, V: 3.0})
	_, reached := sys.TimeToChargeTo(set, 5.0, 0, 100_000)
	if reached {
		t.Fatalf("solver claims 5 V reached on a set rated %v", set.RatedVoltage())
	}
	vb, vg := base.Voltage(), big.Voltage()
	if math.Abs(float64(vb-vg)) > 1e-9 {
		t.Fatalf("connected banks diverged: base=%v big=%v", vb, vg)
	}
	if vb > set.RatedVoltage()+1e-9 {
		t.Fatalf("set charged above its lowest rating: %v > %v", vb, set.RatedVoltage())
	}
}
