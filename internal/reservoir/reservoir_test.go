package reservoir

import (
	"math"
	"testing"
	"testing/quick"

	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/storage"
	"capybara/internal/units"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1e-30)
}

func smallBank() *storage.Bank {
	return storage.MustBank("small",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 330*units.MicroFarad))
}

func midBank() *storage.Bank {
	return storage.MustBank("mid", storage.GroupOf(storage.EDLC, 1)) // 7.5 mF
}

func bigBank() *storage.Bank {
	return storage.MustBank("big", storage.GroupOf(storage.EDLC, 9)) // 67.5 mF
}

func newTestArray(kind SwitchKind) *Array {
	return NewArray(smallBank(), kind, midBank(), bigBank())
}

func TestSwitchDefaults(t *testing.T) {
	no := DefaultSwitch(NormallyOpen)
	if no.Closed() {
		t.Error("NO switch should start open")
	}
	nc := DefaultSwitch(NormallyClosed)
	if !nc.Closed() {
		t.Error("NC switch should start closed")
	}
	if no.Kind.String() != "NO" || nc.Kind.String() != "NC" {
		t.Error("kind stringers broken")
	}
}

func TestSwitchRetention(t *testing.T) {
	s := DefaultSwitch(NormallyOpen)
	s.Set(true)
	// Prototype retention: "approximately 3 minutes".
	r := s.Retention()
	if r < 120 || r > 260 {
		t.Fatalf("retention = %v, want ≈3 min", r)
	}
	// Within retention the state holds.
	if s.TickUnpowered(r - 10); !s.Closed() {
		t.Fatal("switch lost state before retention expired")
	}
	// Past retention it reverts.
	if reverted := s.TickUnpowered(20); !reverted || s.Closed() {
		t.Fatalf("switch should revert after retention (reverted=%v closed=%v)", reverted, s.Closed())
	}
	// A reverted switch does not report reverting again.
	if s.TickUnpowered(1000) {
		t.Fatal("double revert")
	}
}

func TestSwitchReplenishOnlyWhileHeld(t *testing.T) {
	s := DefaultSwitch(NormallyOpen)
	s.Set(true)
	s.TickUnpowered(60)
	s.Replenish()
	if s.latchV != s.FullVoltage {
		t.Fatal("replenish should refill a held latch")
	}
	// Drain fully: replenish must NOT resurrect the state.
	s.TickUnpowered(1e4)
	if s.Closed() {
		t.Fatal("latch should have expired")
	}
	s.Replenish()
	if s.latchV != 0 {
		t.Fatal("replenish resurrected a drained latch")
	}
}

func TestArrayConfigure(t *testing.T) {
	a := newTestArray(NormallyOpen)
	if got := a.ActiveMask(); got != 0b001 {
		t.Fatalf("initial mask = %#b, want base only", got)
	}
	if err := a.Configure(0b011); err != nil {
		t.Fatal(err)
	}
	if got := a.ActiveMask(); got != 0b011 {
		t.Fatalf("mask = %#b, want 0b011", got)
	}
	if a.Reconfigurations != 1 {
		t.Fatalf("reconfigurations = %d, want 1", a.Reconfigurations)
	}
	// Re-configuring to the same mask is free.
	if err := a.Configure(0b011); err != nil {
		t.Fatal(err)
	}
	if a.Reconfigurations != 1 {
		t.Fatalf("no-op reconfig counted: %d", a.Reconfigurations)
	}
	if err := a.Configure(0b1000); err == nil {
		t.Fatal("out-of-range mask accepted")
	}
}

func TestConfigureChargeShares(t *testing.T) {
	a := newTestArray(NormallyOpen)
	a.Bank(0).SetVoltage(2.4)
	a.Bank(1).SetVoltage(0)
	if err := a.Configure(0b011); err != nil {
		t.Fatal(err)
	}
	v0, v1 := a.Bank(0).Voltage(), a.Bank(1).Voltage()
	if v0 != v1 {
		t.Fatalf("connected banks not settled: %v vs %v", v0, v1)
	}
	if v0 >= 2.4 || v0 <= 0 {
		t.Fatalf("settled voltage = %v, want between 0 and 2.4", v0)
	}
	if a.ShareLoss <= 0 {
		t.Fatal("charge sharing should dissipate energy")
	}
	// The disconnected big bank is untouched.
	if a.Bank(2).Voltage() != 0 {
		t.Fatalf("inactive bank moved: %v", a.Bank(2).Voltage())
	}
}

func TestDeactivatedBankRetainsCharge(t *testing.T) {
	// The key Capy-P property (§4.2): a de-activated mode's energy
	// buffers retain their stored energy, except leakage.
	a := newTestArray(NormallyOpen)
	if err := a.Configure(0b100); err != nil { // big bank in
		t.Fatal(err)
	}
	a.ActiveSet().SetVoltage(2.0)
	if err := a.Configure(0b000); err != nil { // big bank out
		t.Fatal(err)
	}
	if got := a.Bank(2).Voltage(); got != 2.0 {
		t.Fatalf("deactivated bank voltage = %v, want 2.0", got)
	}
	// Leakage still applies over time.
	a.TickPowered(3600)
	if got := a.Bank(2).Voltage(); got >= 2.0 {
		t.Fatalf("EDLC bank did not leak: %v", got)
	}
}

func TestNOArrayRevertsToSmallDefault(t *testing.T) {
	a := newTestArray(NormallyOpen)
	if err := a.Configure(0b110); err != nil {
		t.Fatal(err)
	}
	// A long outage: latches expire, NO switches open.
	a.TickUnpowered(1000)
	if got := a.ActiveMask(); got != 0b001 {
		t.Fatalf("post-outage mask = %#b, want base only", got)
	}
	if a.Reverts != 2 {
		t.Fatalf("reverts = %d, want 2", a.Reverts)
	}
}

func TestNCArrayRevertsToMaxCapacity(t *testing.T) {
	a := newTestArray(NormallyClosed)
	if err := a.Configure(0b001); err != nil { // open both switches
		t.Fatal(err)
	}
	a.TickUnpowered(1000)
	if got := a.ActiveMask(); got != 0b111 {
		t.Fatalf("post-outage mask = %#b, want all banks", got)
	}
}

func TestShortOutageKeepsState(t *testing.T) {
	a := newTestArray(NormallyOpen)
	if err := a.Configure(0b010); err != nil {
		t.Fatal(err)
	}
	a.TickUnpowered(30) // well within ~3 min retention
	if got := a.ActiveMask(); got != 0b011 {
		t.Fatalf("mask after short outage = %#b, want 0b011", got)
	}
	if a.Reverts != 0 {
		t.Fatalf("reverts = %d, want 0", a.Reverts)
	}
}

func TestActiveSetStoreView(t *testing.T) {
	a := newTestArray(NormallyOpen)
	if err := a.Configure(0b111); err != nil {
		t.Fatal(err)
	}
	set := a.ActiveSet()
	wantC := a.Bank(0).Capacitance() + a.Bank(1).Capacitance() + a.Bank(2).Capacitance()
	if got := set.Capacitance(); !almostEqual(float64(got), float64(wantC), 1e-12) {
		t.Fatalf("active capacitance = %v, want %v", got, wantC)
	}
	set.SetVoltage(2.2)
	for i := 0; i < 3; i++ {
		if a.Bank(i).Voltage() != 2.2 {
			t.Fatalf("bank %d voltage = %v", i, a.Bank(i).Voltage())
		}
	}
	if set.Voltage() != 2.2 {
		t.Fatalf("set voltage = %v", set.Voltage())
	}
	// Rated voltage is limited by the EDLC banks (3.6 V).
	if got := set.RatedVoltage(); got != 3.6 {
		t.Fatalf("rated = %v, want 3.6", got)
	}
	if set.Energy() <= 0 {
		t.Fatal("energy should be positive")
	}
	// ESR of the set must be below any single member's ESR.
	if set.ESR() >= a.Bank(1).ESR() {
		t.Fatalf("combined ESR %v not below member ESR %v", set.ESR(), a.Bank(1).ESR())
	}
}

func TestActiveSetWorksWithPowerSystem(t *testing.T) {
	a := newTestArray(NormallyOpen)
	sys := power.NewSystem(harvest.RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0})
	// Charge base-only, then grow the configuration and charge again.
	dtSmall, ok := sys.TimeToChargeTo(a.ActiveSet(), 2.4, 0, 1e6)
	if !ok {
		t.Fatal("small config charge failed")
	}
	if err := a.Configure(0b100); err != nil {
		t.Fatal(err)
	}
	dtBig, ok := sys.TimeToChargeTo(a.ActiveSet(), 2.4, 0, 1e6)
	if !ok {
		t.Fatal("big config charge failed")
	}
	if dtBig < 10*dtSmall {
		t.Fatalf("big config (%v) should charge much slower than small (%v)", dtBig, dtSmall)
	}
}

// Property: Configure conserves charge across arbitrary mask sequences
// (ignoring leakage, which is not ticked here).
func TestConfigureConservesChargeProperty(t *testing.T) {
	f := func(masks []uint8, v0, v1, v2 uint8) bool {
		a := newTestArray(NormallyOpen)
		a.Bank(0).SetVoltage(units.Voltage(float64(v0) / 255 * 3))
		a.Bank(1).SetVoltage(units.Voltage(float64(v1) / 255 * 3))
		a.Bank(2).SetVoltage(units.Voltage(float64(v2) / 255 * 3))
		a.settle()
		charge := func() float64 {
			var q float64
			for i := 0; i < a.NumBanks(); i++ {
				q += float64(a.Bank(i).Capacitance()) * float64(a.Bank(i).Voltage())
			}
			return q
		}
		before := charge()
		for _, m := range masks {
			if err := a.Configure(uint64(m) & 0b111); err != nil {
				return false
			}
		}
		return almostEqual(before, charge(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdversarialNOTiming(t *testing.T) {
	// The paper's §5.2 hazard: with NO switches and input power that
	// dies for longer than the latch retention, a device that needs the
	// big bank keeps losing its configuration. Verify the implicit
	// reconfiguration occurs on every long outage.
	a := newTestArray(NormallyOpen)
	for cycle := 0; cycle < 5; cycle++ {
		if err := a.Configure(0b100); err != nil {
			t.Fatal(err)
		}
		if a.ActiveMask() != 0b101 {
			t.Fatalf("cycle %d: configure failed", cycle)
		}
		a.TickUnpowered(600) // outage longer than retention
		if a.ActiveMask() != 0b001 {
			t.Fatalf("cycle %d: switch retained state across long outage", cycle)
		}
	}
	if a.Reverts != 5 {
		t.Fatalf("reverts = %d, want 5", a.Reverts)
	}
}

func TestStatesAndStringer(t *testing.T) {
	a := newTestArray(NormallyOpen)
	st := a.States()
	if len(st) != 3 || !st[0].Active || st[1].Active {
		t.Fatalf("States() = %+v", st)
	}
	if a.String() == "" {
		t.Fatal("empty stringer")
	}
	if got := a.Area(); got != 160 {
		t.Fatalf("array area = %v, want 160 mm² (2 switches)", got)
	}
}

func TestArraySwitchAccessor(t *testing.T) {
	a := newTestArray(NormallyOpen)
	sw := a.Switch(1)
	if sw == nil || sw.Closed() {
		t.Fatalf("switch accessor broken: %+v", sw)
	}
	if err := a.Configure(0b010); err != nil {
		t.Fatal(err)
	}
	if !a.Switch(1).Closed() {
		t.Fatal("switch state not visible through accessor")
	}
}

func TestSwitchExpiry(t *testing.T) {
	s := DefaultSwitch(NormallyOpen)
	if e := s.Expiry(); !math.IsInf(float64(e), 1) {
		t.Fatalf("empty latch Expiry = %v, want +Inf", e)
	}
	s.Set(true)
	e := s.Expiry()
	if !almostEqual(float64(e), float64(s.Retention()), 1e-6) {
		t.Fatalf("full-latch Expiry = %v, want ≈ Retention %v", e, s.Retention())
	}
	// Ticking exactly Expiry must revert: TickUnpowered compares the
	// elapsed span against the remaining retention, so the boundary is
	// exact rather than left to exp/log rounding.
	if !s.TickUnpowered(e) {
		t.Fatalf("TickUnpowered(Expiry()) did not revert (latchV=%v)", s.latchV)
	}
	if s.Closed() {
		t.Fatal("NO switch still closed after latch expiry")
	}
	// Partially decayed latches expire sooner than full ones.
	s.Set(true)
	s.TickUnpowered(60)
	if got := s.Expiry(); got >= s.Retention() {
		t.Fatalf("decayed-latch Expiry = %v, want < Retention %v", got, s.Retention())
	}
}

func TestArrayNextRevert(t *testing.T) {
	a := newTestArray(NormallyOpen)
	// Default configuration: no switch differs from its default state.
	if nr := a.NextRevert(); !math.IsInf(float64(nr), 1) {
		t.Fatalf("default-config NextRevert = %v, want +Inf", nr)
	}
	if err := a.Configure(0b111); err != nil {
		t.Fatal(err)
	}
	nr := a.NextRevert()
	if !almostEqual(float64(nr), float64(a.Switch(1).Retention()), 1e-6) {
		t.Fatalf("NextRevert = %v, want ≈ Retention %v", nr, a.Switch(1).Retention())
	}
	// Inside the horizon nothing reverts; ticking to the horizon does.
	a.TickUnpowered(nr / 2)
	if a.Reverts != 0 {
		t.Fatalf("revert before NextRevert horizon: %d", a.Reverts)
	}
	a.TickUnpowered(a.NextRevert())
	if a.Reverts != 2 {
		t.Fatalf("Reverts after ticking past horizon = %d, want 2", a.Reverts)
	}
	if a.ActiveMask() != 0b001 {
		t.Fatalf("mask after revert = %#b, want 0b001", a.ActiveMask())
	}
	// Fully reverted: nothing left to expire.
	if nr := a.NextRevert(); !math.IsInf(float64(nr), 1) {
		t.Fatalf("post-revert NextRevert = %v, want +Inf", nr)
	}
}
