// Package reservoir implements Capybara's reconfigurable energy storage
// circuit (paper §5.2): an array of capacitor banks, each behind a
// programmatically-controlled state-retaining switch, plus the
// alternative Vtop-threshold mechanism and the CapySat diode splitter.
//
// The package captures the behavioural contract the Capybara runtime
// depends on:
//
//   - banks activate/deactivate under software control (GPIO pulses);
//   - active banks are electrically connected and charge-share;
//   - deactivated banks retain their charge, minus leakage;
//   - a switch's latch capacitor retains its state for a bounded time
//     while the device is unpowered, after which the switch reverts to
//     its normally-open (small default) or normally-closed (maximum
//     capacity) configuration;
//   - pre-charging a bank through the switch tops out ~0.3 V below the
//     directly-charged voltage (the Capy-P limitation, §6.4).
package reservoir

import (
	"fmt"
	"math"
	"strings"

	"capybara/internal/storage"
	"capybara/internal/units"
)

// SwitchKind selects the default state a bank switch reverts to when
// its latch capacitor runs out during a long power outage.
type SwitchKind int

const (
	// NormallyOpen switches revert to disconnected: the array falls
	// back to the small default bank, which recharges quickly but may
	// be insufficient for the interrupted task (the paper's
	// adversarial-retry hazard).
	NormallyOpen SwitchKind = iota
	// NormallyClosed switches revert to connected: the array falls
	// back to maximum capacity, guaranteeing first-attempt success at
	// the cost of the longest recharge.
	NormallyClosed
)

func (k SwitchKind) String() string {
	if k == NormallyClosed {
		return "NC"
	}
	return "NO"
}

// Switch is the replicable bank-switch module from Fig. 6(b): a
// P-channel MOSFET held by a latch capacitor, with a replenishment
// circuit that tops the latch up whenever the device is powered.
type Switch struct {
	Kind SwitchKind
	// LatchCap is the latch capacitor (4.7 µF on the prototype).
	LatchCap units.Capacitance
	// LatchLeak is the leakage resistance discharging the latch while
	// the device is unpowered. With the default latch capacitor it
	// yields roughly the prototype's ~3 minute retention.
	LatchLeak units.Resistance
	// HoldVoltage is the minimum latch voltage that still holds the
	// programmed state.
	HoldVoltage units.Voltage
	// FullVoltage is the latch voltage right after (re)programming or
	// replenishment.
	FullVoltage units.Voltage

	closed bool
	latchV units.Voltage
}

// DefaultSwitch returns a switch module with the prototype's
// parameters: a 4.7 µF latch retaining state for about 3 minutes.
func DefaultSwitch(kind SwitchKind) *Switch {
	s := &Switch{
		Kind:        kind,
		LatchCap:    4.7 * units.MicroFarad,
		LatchLeak:   42e6, // RC·ln(2.5/1.0) ≈ 181 s retention
		HoldVoltage: 1.0,
		FullVoltage: 2.5,
	}
	s.Reset()
	return s
}

// Reset forces the switch to its default state with an empty latch.
func (s *Switch) Reset() {
	s.closed = s.Kind == NormallyClosed
	s.latchV = 0
}

// Closed reports whether the switch currently connects its bank.
func (s *Switch) Closed() bool { return s.closed }

// Set programs the switch. The caller must only invoke it while the
// device is powered (the GPIO interface charges or discharges the latch
// capacitor). Programming also fills the latch.
func (s *Switch) Set(closed bool) {
	s.closed = closed
	s.latchV = s.FullVoltage
}

// Replenish tops up the latch capacitor; the replenishment circuit does
// this continuously while the device is powered and the latch holds
// charge. A fully drained latch is NOT replenished: the state has
// already reverted.
func (s *Switch) Replenish() {
	if s.latchV >= s.HoldVoltage {
		s.latchV = s.FullVoltage
	}
}

// LatchVoltage returns the present latch-capacitor voltage (0 after a
// revert or before the first programming).
func (s *Switch) LatchVoltage() units.Voltage { return s.latchV }

// TickUnpowered advances the latch leakage by dt with the device off.
// If retention runs out within dt the switch reverts to its default
// state. It reports whether a revert happened.
//
// Expiry is decided by comparing dt against the remaining retention
// span rather than by comparing the post-leak voltage against
// HoldVoltage: the two are the same equation, but the span comparison
// makes "tick exactly Expiry()" revert deterministically instead of
// leaving the boundary to exp/log rounding luck.
func (s *Switch) TickUnpowered(dt units.Seconds) bool {
	if s.latchV <= 0 {
		return false
	}
	if need := units.TimeToLeakTo(s.LatchCap, s.latchV, s.HoldVoltage, s.LatchLeak); dt >= need {
		s.latchV = 0
		def := s.Kind == NormallyClosed
		if s.closed != def {
			s.closed = def
			return true
		}
		return false
	}
	s.latchV = units.LeakVoltageAfter(s.LatchCap, s.latchV, s.LatchLeak, dt)
	return false
}

// Retention returns how long the switch holds programmed state while
// unpowered, from a full latch.
func (s *Switch) Retention() units.Seconds {
	return units.TimeToLeakTo(s.LatchCap, s.FullVoltage, s.HoldVoltage, s.LatchLeak)
}

// Expiry returns how long the latch holds its programmed state from its
// present charge while unpowered: the exact time for the latch voltage
// to decay to HoldVoltage. An already-reverted (or never-programmed)
// latch returns +Inf — there is nothing left to expire. The value is
// exact (no epsilon pad): TickUnpowered compares spans, so ticking
// exactly Expiry() reverts at, not after, the retention limit — an
// outage ending precisely at expiry finds the switch already in its
// default state.
func (s *Switch) Expiry() units.Seconds {
	if s.latchV <= 0 {
		return units.Seconds(math.Inf(1))
	}
	return units.TimeToLeakTo(s.LatchCap, s.latchV, s.HoldVoltage, s.LatchLeak)
}

// Characterization constants from the paper (§6.5, §5.2).
const (
	// SwitchArea is the board area of one reconfiguration switch
	// module (including both NO and NC circuits and debug support).
	SwitchArea units.Area = 80
	// PowerSystemArea is the area of the shared distribution circuits.
	PowerSystemArea units.Area = 640
	// SolarArea is the area of the prototype's solar panels.
	SolarArea units.Area = 700
	// PrechargeDeficit is how far below the direct-charge voltage a
	// bank can be pre-charged through its switch (§6.4: "approximately
	// 0.3 V"). The Capybara runtime subtracts it when pre-charging
	// burst banks.
	PrechargeDeficit units.Voltage = 0.3
)

// BankState describes one bank's runtime condition.
type BankState struct {
	Name    string
	Active  bool
	Voltage units.Voltage
}

// Array is the reconfigurable reservoir: a base bank that is always
// connected plus switched banks. Bank indices: 0 is the base bank;
// 1..N address the switched banks.
type Array struct {
	base     *storage.Bank
	banks    []*storage.Bank
	switches []*Switch

	// ShareLoss accumulates the energy dissipated by charge sharing
	// across reconfigurations, for efficiency accounting.
	ShareLoss units.Energy
	// LeakLoss accumulates the energy self-discharged through the banks'
	// leakage resistances. Together with ShareLoss it lets callers close
	// the array's energy balance exactly.
	LeakLoss units.Energy
	// Reconfigurations counts switch programmings.
	Reconfigurations int
	// Reverts counts implicit reconfigurations caused by latch expiry.
	Reverts int

	// all and active cache the bank slices; the composition is fixed at
	// construction, and the active set changes only under Configure and
	// latch-expiry reverts (both of which refresh the cache). Without
	// the caches every passive tick and every power.Store call on the
	// ActiveSet allocated a fresh slice — the dominant allocation in
	// matrix sweeps.
	all    []*storage.Bank
	active []*storage.Bank
	// aset is the single reusable power.Store adapter; ActiveSet used to
	// allocate one per call, and the simulator calls it on every drain.
	aset ActiveSet
	// actCap/actESR/actRated are the parallel-combination electricals
	// of the connected banks, recomputed only when the configuration
	// changes: bank parameters are static, so between switch events
	// these are constants the drain path reads on every call.
	actCap   units.Capacitance
	actESR   units.Resistance
	actRated units.Voltage
	// actMask mirrors the switch positions as a bank bitmask (bit 0 is
	// the always-on base), refreshed with the other caches; ActiveMask
	// is on the per-task-iteration hot path.
	actMask uint64
}

// NewArray builds an array from a base bank and switched banks. Every
// switched bank gets its own DefaultSwitch of the given kind.
func NewArray(base *storage.Bank, kind SwitchKind, switched ...*storage.Bank) *Array {
	a := &Array{base: base, banks: switched}
	for range switched {
		a.switches = append(a.switches, DefaultSwitch(kind))
	}
	a.all = append([]*storage.Bank{base}, switched...)
	a.aset = ActiveSet{a: a}
	a.refreshActive()
	a.settle()
	return a
}

// refreshActive rebuilds the connected-bank cache from the switch
// states. It must be called after any switch state change.
func (a *Array) refreshActive() {
	a.active = a.active[:0]
	a.active = append(a.active, a.base)
	a.actMask = 1
	for i, s := range a.switches {
		if s.Closed() {
			a.active = append(a.active, a.banks[i])
			a.actMask |= 1 << uint(i+1)
		}
	}
	a.actCap = storage.CombinedCapacitance(a.active)
	a.actESR = storage.CombinedESR(a.active)
	rated := units.Voltage(math.Inf(1))
	for _, b := range a.active {
		if r := b.RatedVoltage(); r > 0 && r < rated {
			rated = r
		}
	}
	if math.IsInf(float64(rated), 1) {
		rated = 0
	}
	a.actRated = rated
}

// NumBanks returns the number of banks including the base bank.
func (a *Array) NumBanks() int { return 1 + len(a.banks) }

// Bank returns bank i (0 = base).
func (a *Array) Bank(i int) *storage.Bank {
	if i == 0 {
		return a.base
	}
	return a.banks[i-1]
}

// Switch returns the switch for bank i (1-based; the base bank has no
// switch).
func (a *Array) Switch(i int) *Switch { return a.switches[i-1] }

// ActiveMask returns a bitmask of the currently connected banks. Bit 0
// (the base bank) is always set.
func (a *Array) ActiveMask() uint64 { return a.actMask }

// Configure programs the switches so that exactly the banks in mask
// (plus the always-on base bank) are connected. Newly connected banks
// charge-share with the active set; the dissipated energy is accounted
// in ShareLoss. Configure must only be called while the device is
// powered. It returns an error for out-of-range mask bits.
func (a *Array) Configure(mask uint64) error {
	if mask>>uint(a.NumBanks()) != 0 {
		return fmt.Errorf("reservoir: mask %#x addresses nonexistent banks (have %d)", mask, a.NumBanks())
	}
	for i, s := range a.switches {
		want := mask&(1<<uint(i+1)) != 0
		if s.Closed() != want {
			s.Set(want)
			a.Reconfigurations++
		} else {
			s.Replenish()
		}
	}
	a.refreshActive()
	a.settle()
	return nil
}

// settle equalizes the voltage across all connected banks, conserving
// charge and accounting the dissipated energy.
func (a *Array) settle() {
	active := a.activeBanks()
	if len(active) < 2 {
		return
	}
	var q, c float64
	for _, b := range active {
		q += float64(b.Capacitance()) * float64(b.Voltage())
		c += float64(b.Capacitance())
	}
	v := units.Voltage(q / c)
	// Already settled (bit-equal voltages all the way down): the writes
	// below would change nothing and the loss would be exactly zero, so
	// skip the per-bank energy bookkeeping. Drains re-settle the set
	// every tick, and between reconfigurations the members usually sit
	// at exactly the shared terminal voltage.
	settled := true
	for _, b := range active {
		if b.Voltage() != v {
			settled = false
			break
		}
	}
	if settled {
		return
	}
	var before float64
	for _, b := range active {
		before += float64(b.Energy())
	}
	var after float64
	for _, b := range active {
		b.SetVoltage(v)
		after += float64(b.Energy())
	}
	if loss := before - after; loss > 0 {
		a.ShareLoss += units.Energy(loss)
	}
}

func (a *Array) activeBanks() []*storage.Bank { return a.active }

// TickPowered advances dt of powered time: bank self-discharge
// continues and the replenishment circuit keeps the latches full.
func (a *Array) TickPowered(dt units.Seconds) {
	for _, b := range a.allBanks() {
		a.LeakLoss += b.Leak(dt)
	}
	for _, s := range a.switches {
		s.Replenish()
	}
	a.settle()
}

// TickUnpowered advances dt of unpowered time: banks leak and latches
// decay; expired switches revert to their default state, implicitly
// reconfiguring the array (and charge-sharing if banks reconnect).
// Connected banks re-settle even without a revert: they share one
// terminal, so unequal leak rates drain the parallel combination
// rather than letting the members drift apart.
func (a *Array) TickUnpowered(dt units.Seconds) {
	for _, b := range a.allBanks() {
		a.LeakLoss += b.Leak(dt)
	}
	reverted := false
	for _, s := range a.switches {
		if s.TickUnpowered(dt) {
			reverted = true
			a.Reverts++
		}
	}
	if reverted {
		a.refreshActive()
	}
	a.settle()
}

// NextRevert returns how long until the earliest latch expiry reverts a
// switch away from its programmed state, assuming the device stays
// unpowered. It is +Inf when no programmed switch differs from its
// default (reverting to the default is a no-op for those) or all
// latches are already drained. The event-driven charge solver uses this
// as the "latch expiry" segment boundary: within the returned span,
// unpowered time changes no switch state.
func (a *Array) NextRevert() units.Seconds {
	next := units.Seconds(math.Inf(1))
	for _, s := range a.switches {
		if s.Closed() == (s.Kind == NormallyClosed) {
			continue // already in the default state: expiry changes nothing
		}
		if e := s.Expiry(); e < next {
			next = e
		}
	}
	return next
}

func (a *Array) allBanks() []*storage.Bank { return a.all }

// StateSize returns the number of float64 words AppendState emits: one
// bank voltage per bank (base first) plus one latch voltage per switch.
func (a *Array) StateSize() int { return len(a.all) + len(a.switches) }

// AppendState appends the array's complete mutable electrical state —
// every bank voltage and every latch voltage — to dst and returns the
// extended slice plus the active-bank mask. Together with the loss
// accumulators (LeakLoss, ShareLoss) and the Reverts counter, which the
// caller snapshots separately, this is everything a passive tick or
// discharge can change; the counters Reconfigurations and Bank cycle
// counts only move under Configure/Bank.Discharge, which the replayed
// operations never call. The sim-layer op cache uses the words as an
// exact (bitwise) state fingerprint and as the restore image for
// replayed operations.
func (a *Array) AppendState(dst []float64) ([]float64, uint64) {
	for _, b := range a.all {
		dst = append(dst, float64(b.Voltage()))
	}
	for _, s := range a.switches {
		dst = append(dst, float64(s.latchV))
	}
	return dst, a.ActiveMask()
}

// RestoreState sets the array to a state previously captured by
// AppendState: bank voltages, latch voltages, and switch positions from
// the mask. Restoring values the array itself produced is bit-exact —
// Bank.SetVoltage clamps to [0, rated], and captured voltages are
// already inside that range. The active-set caches are refreshed when
// the switch configuration changed.
func (a *Array) RestoreState(vals []float64, mask uint64) {
	for i, b := range a.all {
		b.SetVoltage(units.Voltage(vals[i]))
	}
	nb := len(a.all)
	changed := false
	for i, s := range a.switches {
		s.latchV = units.Voltage(vals[nb+i])
		want := mask&(1<<uint(i+1)) != 0
		if s.closed != want {
			s.closed = want
			changed = true
		}
	}
	if changed {
		a.refreshActive()
	}
}

// MatchState reports whether the array's present mutable state — every
// bank voltage, every latch voltage, and the switch configuration — is
// bit-identical to a state previously captured by AppendState. It is
// the sim-layer lockstep cursor's divergence check: a batch follower
// verifies it is still on the recorded trajectory by comparing the live
// array against the previous operation's recorded post-state, without
// serializing the live state into a key. Comparison is on IEEE-754 bit
// patterns, mirroring the op-cache keys (float equality would conflate
// -0 with 0 and can never match a NaN against itself).
func (a *Array) MatchState(vals []float64, mask uint64) bool {
	if mask != a.actMask || len(vals) != len(a.all)+len(a.switches) {
		return false
	}
	for i, b := range a.all {
		if math.Float64bits(float64(b.Voltage())) != math.Float64bits(vals[i]) {
			return false
		}
	}
	nb := len(a.all)
	for i, s := range a.switches {
		if math.Float64bits(float64(s.latchV)) != math.Float64bits(vals[nb+i]) {
			return false
		}
	}
	return true
}

// States reports each bank's condition for tracing.
func (a *Array) States() []BankState {
	out := []BankState{{Name: a.base.Name(), Active: true, Voltage: a.base.Voltage()}}
	for i, b := range a.banks {
		out = append(out, BankState{Name: b.Name(), Active: a.switches[i].Closed(), Voltage: b.Voltage()})
	}
	return out
}

// Area returns the reconfiguration hardware's board area: one switch
// module per switched bank.
func (a *Array) Area() units.Area {
	return SwitchArea * units.Area(len(a.switches))
}

func (a *Array) String() string {
	var parts []string
	for _, st := range a.States() {
		mark := " "
		if st.Active {
			mark = "*"
		}
		parts = append(parts, fmt.Sprintf("%s%s@%v", mark, st.Name, st.Voltage))
	}
	return "array[" + strings.Join(parts, " ") + "]"
}

// ActiveSet returns the power.Store view of the connected banks.
func (a *Array) ActiveSet() *ActiveSet { return &a.aset }

// ActiveSet adapts the connected banks to the power.Store interface.
// All connected banks share one terminal voltage (maintained by
// settle), so the set behaves as a single capacitor whose capacitance
// and ESR are the parallel combination.
type ActiveSet struct{ a *Array }

// Capacitance implements power.Store.
func (s *ActiveSet) Capacitance() units.Capacitance { return s.a.actCap }

// Voltage implements power.Store. The connected banks are always
// settled to a common voltage.
func (s *ActiveSet) Voltage() units.Voltage { return s.a.base.Voltage() }

// SetVoltage implements power.Store, setting every connected bank.
func (s *ActiveSet) SetVoltage(v units.Voltage) {
	for _, b := range s.a.activeBanks() {
		b.SetVoltage(v)
	}
}

// ESR implements power.Store.
func (s *ActiveSet) ESR() units.Resistance { return s.a.actESR }

// RatedVoltage returns the lowest rated voltage among connected banks.
func (s *ActiveSet) RatedVoltage() units.Voltage { return s.a.actRated }

// Energy returns the energy stored across connected banks.
func (s *ActiveSet) Energy() units.Energy {
	var e units.Energy
	for _, b := range s.a.activeBanks() {
		e += b.Energy()
	}
	return e
}
