package reservoir

import (
	"fmt"

	"capybara/internal/power"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// Mechanism abstracts the three ways §5.2 considers for reconfiguring
// stored energy E = ½C(Vtop² − Vbottom²): controlling C (Capybara's
// switched banks), controlling Vtop (a non-volatile digital
// potentiometer plus voltage supervisor), and controlling Vbottom (the
// MCU's built-in comparator). The comparison table (cold-start time,
// area, leakage, endurance) is regenerated from these models.
type Mechanism interface {
	// Name identifies the mechanism.
	Name() string
	// ColdStartTime returns the time from completely empty storage to
	// first boot for a task needing taskEnergy, on power system sys.
	ColdStartTime(sys *power.System, taskEnergy units.Energy) units.Seconds
	// Area returns the mechanism's board area.
	Area() units.Area
	// LeakCurrent returns the mechanism's standing leakage.
	LeakCurrent() units.Current
	// WriteEndurance returns the number of reconfigurations the
	// mechanism survives; 0 means unlimited.
	WriteEndurance() int
}

// Baseline hardware figures for the mechanism comparison. The paper
// reports the Vtop prototype (EEPROM digital potentiometer) occupies
// twice the area and leaks 1.5× the current of the switch module.
const (
	switchLeakCurrent units.Current = 100e-9
	potWriteEndurance               = 1_000_000 // EEPROM wear limit
)

// SwitchedBankMechanism is Capybara's choice: control C with an array
// of switched banks. Cold start only needs the smallest bank charged to
// the minimum boostable voltage.
type SwitchedBankMechanism struct {
	// SmallBank is the default (smallest) bank used for cold start.
	SmallBank *storage.Bank
	// Banks is the number of switched banks (for area accounting).
	Banks int
}

// Name implements Mechanism.
func (m SwitchedBankMechanism) Name() string { return "switched-C" }

// ColdStartTime implements Mechanism: charge only the small bank to the
// output booster's minimum, boot, then (not counted here) reconfigure.
func (m SwitchedBankMechanism) ColdStartTime(sys *power.System, _ units.Energy) units.Seconds {
	b := cloneBank(m.SmallBank)
	dt, ok := sys.TimeToChargeTo(b, sys.Out.MinInput, 0, 1e7)
	if !ok {
		return units.Seconds(1e7)
	}
	return dt
}

// Area implements Mechanism.
func (m SwitchedBankMechanism) Area() units.Area { return SwitchArea * units.Area(m.Banks) }

// LeakCurrent implements Mechanism.
func (m SwitchedBankMechanism) LeakCurrent() units.Current {
	return switchLeakCurrent * units.Current(m.Banks)
}

// WriteEndurance implements Mechanism: MOSFET switches do not wear.
func (m SwitchedBankMechanism) WriteEndurance() int { return 0 }

// VtopMechanism controls the top charge threshold with a non-volatile
// digital potentiometer and a voltage supervisor. All capacitance is
// always connected, so cold start must charge the full capacitance to
// the minimum boostable voltage before any useful energy accumulates.
type VtopMechanism struct {
	// FullBank is the complete, always-connected storage.
	FullBank *storage.Bank
	// Banks is the number of logical capacity levels (for area parity
	// with the switch design).
	Banks int
}

// Name implements Mechanism.
func (m VtopMechanism) Name() string { return "Vtop-threshold" }

// ColdStartTime implements Mechanism.
func (m VtopMechanism) ColdStartTime(sys *power.System, _ units.Energy) units.Seconds {
	b := cloneBank(m.FullBank)
	dt, ok := sys.TimeToChargeTo(b, sys.Out.MinInput, 0, 1e7)
	if !ok {
		return units.Seconds(1e7)
	}
	return dt
}

// Area implements Mechanism: twice the switch area (§5.2).
func (m VtopMechanism) Area() units.Area { return 2 * SwitchArea * units.Area(m.Banks) }

// LeakCurrent implements Mechanism: 1.5× the switch leakage (§5.2).
func (m VtopMechanism) LeakCurrent() units.Current {
	return units.Current(1.5 * float64(switchLeakCurrent) * float64(m.Banks))
}

// WriteEndurance implements Mechanism: EEPROM potentiometer wear.
func (m VtopMechanism) WriteEndurance() int { return potWriteEndurance }

// VbottomMechanism controls the discharge floor with the MCU's built-in
// comparator. Cold start is the worst: the full capacitance must charge
// all the way to the top threshold before the first boot, regardless of
// how little energy the task needs (§5.2: "the capacitor must charge to
// the top threshold even for a low atomicity requirement").
type VbottomMechanism struct {
	FullBank *storage.Bank
	// Vtop is the fixed top threshold the capacitor charges to.
	Vtop units.Voltage
}

// Name implements Mechanism.
func (m VbottomMechanism) Name() string { return "Vbottom-threshold" }

// ColdStartTime implements Mechanism.
func (m VbottomMechanism) ColdStartTime(sys *power.System, _ units.Energy) units.Seconds {
	b := cloneBank(m.FullBank)
	target := m.Vtop
	if target <= 0 {
		target = b.RatedVoltage()
	}
	dt, ok := sys.TimeToChargeTo(b, target, 0, 1e7)
	if !ok {
		return units.Seconds(1e7)
	}
	return dt
}

// Area implements Mechanism: uses the MCU's comparator, no extra parts.
func (m VbottomMechanism) Area() units.Area { return 0 }

// LeakCurrent implements Mechanism: the comparator runs while
// discharging only; standing leakage is negligible.
func (m VbottomMechanism) LeakCurrent() units.Current { return 0 }

// WriteEndurance implements Mechanism.
func (m VbottomMechanism) WriteEndurance() int { return 0 }

func cloneBank(b *storage.Bank) *storage.Bank {
	return storage.MustBank(b.Name(), b.Groups()...)
}

// Splitter is the CapySat simplification (§6.6): a diode-based splitter
// that always connects both banks to the harvester but dedicates one
// bank to each of two MCUs. No switches, no reconfiguration — the
// mapping of banks to loads is fixed, yet each load still sees storage
// matched to its energy mode. It occupies 20 % of the switch area.
type Splitter struct {
	BankA, BankB *storage.Bank
	// Drop is the splitter diode forward drop.
	Drop units.Voltage
}

// Area returns the splitter's board area (20 % of a switch module).
func (s *Splitter) Area() units.Area { return SwitchArea / 5 }

// ChargeBoth divides harvested charge power between the two banks for
// dt at time t0. Each bank charges through its own diode; power splits
// proportionally to each bank's headroom need (a bank at its rated
// voltage stops drawing).
func (s *Splitter) ChargeBoth(sys *power.System, t0, dt units.Seconds) {
	const step = units.Seconds(0.25)
	for done := units.Seconds(0); done < dt; done += step {
		h := step
		if done+h > dt {
			h = dt - done
		}
		t := t0 + done
		aOpen := s.BankA.Voltage() < s.BankA.RatedVoltage()
		bOpen := s.BankB.Voltage() < s.BankB.RatedVoltage()
		switch {
		case aOpen && bOpen:
			half := halfPower(sys, s.lowest(), t)
			s.BankA.Charge(half, h)
			s.BankB.Charge(half, h)
		case aOpen:
			s.BankA.Charge(sys.ChargePower(s.BankA.Voltage(), t), h)
		case bOpen:
			s.BankB.Charge(sys.ChargePower(s.BankB.Voltage(), t), h)
		}
	}
}

func (s *Splitter) lowest() units.Voltage {
	if s.BankA.Voltage() < s.BankB.Voltage() {
		return s.BankA.Voltage()
	}
	return s.BankB.Voltage()
}

func halfPower(sys *power.System, v units.Voltage, t units.Seconds) units.Power {
	return sys.ChargePower(v, t) / 2
}

func (s *Splitter) String() string {
	return fmt.Sprintf("splitter[%v | %v]", s.BankA, s.BankB)
}
