package reservoir

import (
	"testing"

	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/storage"
	"capybara/internal/units"
)

func testPowerSystem() *power.System {
	return power.NewSystem(harvest.RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0})
}

func mechanisms() (SwitchedBankMechanism, VtopMechanism, VbottomMechanism) {
	full := storage.MustBank("full",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupOf(storage.EDLC, 9))
	sw := SwitchedBankMechanism{SmallBank: smallBank(), Banks: 2}
	vt := VtopMechanism{FullBank: full, Banks: 2}
	vb := VbottomMechanism{FullBank: full, Vtop: 3.3}
	return sw, vt, vb
}

func TestColdStartOrdering(t *testing.T) {
	// §5.2: "The shortest cold-start time is achieved by controlling C"
	// and "With Vbottom control, cold-start time is longer than with
	// Vtop".
	sw, vt, vb := mechanisms()
	taskE := 10 * units.MilliJoule
	tSw := sw.ColdStartTime(testPowerSystem(), taskE)
	tVt := vt.ColdStartTime(testPowerSystem(), taskE)
	tVb := vb.ColdStartTime(testPowerSystem(), taskE)
	if !(tSw < tVt && tVt < tVb) {
		t.Fatalf("cold start ordering violated: switched=%v vtop=%v vbottom=%v", tSw, tVt, tVb)
	}
	// The switched-bank advantage should be large (small bank vs full
	// array to min-boost voltage).
	if float64(tVt)/float64(tSw) < 5 {
		t.Fatalf("switched-C advantage too small: %v vs %v", tSw, tVt)
	}
}

func TestMechanismAreaAndLeakage(t *testing.T) {
	sw, vt, vb := mechanisms()
	// §5.2: the threshold circuit occupies twice the area and has 1.5×
	// the leakage of the switched design.
	if vt.Area() != 2*sw.Area() {
		t.Fatalf("Vtop area = %v, want 2× switch area %v", vt.Area(), sw.Area())
	}
	if got, want := float64(vt.LeakCurrent()), 1.5*float64(sw.LeakCurrent()); got != want {
		t.Fatalf("Vtop leak = %v, want 1.5× switch leak", vt.LeakCurrent())
	}
	if vb.Area() != 0 || vb.LeakCurrent() != 0 {
		t.Fatalf("Vbottom should reuse the MCU comparator: area %v leak %v", vb.Area(), vb.LeakCurrent())
	}
}

func TestMechanismEndurance(t *testing.T) {
	sw, vt, _ := mechanisms()
	if sw.WriteEndurance() != 0 {
		t.Fatal("switch endurance should be unlimited")
	}
	if vt.WriteEndurance() <= 0 {
		t.Fatal("EEPROM potentiometer endurance must be finite")
	}
}

func TestMechanismNames(t *testing.T) {
	sw, vt, vb := mechanisms()
	for _, m := range []Mechanism{sw, vt, vb} {
		if m.Name() == "" {
			t.Fatal("empty mechanism name")
		}
	}
}

func TestSplitterChargesBothBanks(t *testing.T) {
	s := &Splitter{BankA: smallBank(), BankB: midBank(), Drop: 0.3}
	sys := testPowerSystem()
	s.ChargeBoth(sys, 0, 30)
	if s.BankA.Voltage() <= 0 || s.BankB.Voltage() <= 0 {
		t.Fatalf("banks not charged: %v %v", s.BankA.Voltage(), s.BankB.Voltage())
	}
	// The small bank reaches a higher voltage for the same shared power.
	if s.BankA.Voltage() <= s.BankB.Voltage() {
		t.Fatalf("small bank (%v) should outpace mid bank (%v)", s.BankA.Voltage(), s.BankB.Voltage())
	}
}

func TestSplitterFullBankStopsDrawing(t *testing.T) {
	s := &Splitter{BankA: smallBank(), BankB: bigBank(), Drop: 0.3}
	sys := testPowerSystem()
	s.BankA.SetVoltage(s.BankA.RatedVoltage())
	before := s.BankB.Voltage()
	s.ChargeBoth(sys, 0, 10)
	if s.BankA.Voltage() > s.BankA.RatedVoltage() {
		t.Fatal("full bank overcharged")
	}
	if s.BankB.Voltage() <= before {
		t.Fatal("all power should go to the empty bank")
	}
}

func TestSplitterAreaClaim(t *testing.T) {
	// §6.6: the splitter matches storage to demand "at 20 % of the
	// area" of the general-purpose switch.
	s := &Splitter{BankA: smallBank(), BankB: bigBank()}
	if got, want := s.Area(), SwitchArea/5; got != want {
		t.Fatalf("splitter area = %v, want %v", got, want)
	}
	if s.String() == "" {
		t.Fatal("empty stringer")
	}
}
