package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// TestMapOrder: results come back in input order for every
// (job count × worker count) combination, including workers > jobs,
// the serial path, and the default worker count.
func TestMapOrder(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 16, 100} {
		for _, workers := range []int{-1, 0, 1, 2, 3, 8, 200} {
			got, err := Map(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
				return i * i, nil
			})
			if err != nil {
				t.Fatalf("Map(workers=%d, n=%d): %v", workers, n, err)
			}
			if len(got) != n {
				t.Fatalf("Map(workers=%d, n=%d): %d results", workers, n, len(got))
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("Map(workers=%d, n=%d): result[%d] = %d, want %d", workers, n, i, v, i*i)
				}
			}
		}
	}
}

// TestMapOrderProperty drives the ordering invariant with testing/quick
// over arbitrary job and worker counts.
func TestMapOrderProperty(t *testing.T) {
	prop := func(jobs uint8, workers uint8) bool {
		n := int(jobs % 64)
		w := int(workers%16) - 1 // exercise <= 0 too
		got, err := Map(context.Background(), w, n, func(_ context.Context, i int) (int, error) {
			return 3*i + 1, nil
		})
		if err != nil || len(got) != n {
			return false
		}
		for i, v := range got {
			if v != 3*i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMapNegativeCount: a negative job count is an error, not a hang.
func TestMapNegativeCount(t *testing.T) {
	if _, err := Map(context.Background(), 4, -1, func(_ context.Context, i int) (int, error) {
		return i, nil
	}); err == nil {
		t.Fatal("negative job count accepted")
	}
}

// TestMapFirstError: when several jobs fail, the lowest-indexed job's
// error is returned — deterministically, at any worker count — and the
// result slice is nil.
func TestMapFirstError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got, err := Map(context.Background(), workers, 20, func(_ context.Context, i int) (int, error) {
			if i >= 5 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if got != nil {
			t.Fatalf("workers=%d: results returned alongside error", workers)
		}
		if err == nil || err.Error() != "job 5 failed" {
			t.Fatalf("workers=%d: err = %v, want job 5's", workers, err)
		}
	}
}

// TestMapErrorCancelsInFlight: the first failure cancels the context
// seen by running jobs and stops dispatching queued ones.
func TestMapErrorCancelsInFlight(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	_, err := Map(context.Background(), 4, 100, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		// Jobs block until the failure cancels them; without
		// cancellation this would wait out the test timeout.
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(30 * time.Second):
			return 0, errors.New("cancellation never arrived")
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := started.Load(); n >= 100 {
		t.Fatalf("all %d jobs started despite early failure", n)
	}
}

// TestMapPanic: a panicking job is recovered into a *PanicError naming
// the job index, on both the serial and the parallel path.
func TestMapPanic(t *testing.T) {
	for _, workers := range []int{1, 8} {
		_, err := Map(context.Background(), workers, 10, func(_ context.Context, i int) (int, error) {
			if i == 7 {
				panic("kaboom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Job != 7 || pe.Value != "kaboom" {
			t.Fatalf("workers=%d: PanicError = {Job: %d, Value: %v}", workers, pe.Job, pe.Value)
		}
		if want := "runner: job 7 panicked: kaboom"; err.Error() != want {
			t.Fatalf("workers=%d: message %q, want %q", workers, err.Error(), want)
		}
	}
}

// TestMapCancelledContext: a context cancelled before Map starts
// surfaces as its error without running jobs.
func TestMapCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := false
		_, err := Map(ctx, workers, 5, func(_ context.Context, i int) (int, error) {
			ran = true
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if workers == 1 && ran {
			t.Fatal("serial path ran a job under a cancelled context")
		}
	}
}

// TestPoolRun: the untyped wrapper keeps Map's guarantees.
func TestPoolRun(t *testing.T) {
	hits := make([]atomic.Int32, 10)
	if err := (Pool{Workers: 3}).Run(context.Background(), len(hits), func(_ context.Context, i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("job %d ran %d times", i, hits[i].Load())
		}
	}
	wantErr := errors.New("nope")
	if err := (Pool{}).Run(context.Background(), 3, func(_ context.Context, i int) error {
		if i == 1 {
			return wantErr
		}
		return nil
	}); !errors.Is(err, wantErr) {
		t.Fatalf("Pool.Run err = %v, want %v", err, wantErr)
	}
}

// TestRNG: streams are a pure function of (seed, job), and neighboring
// jobs or seeds do not alias.
func TestRNG(t *testing.T) {
	a, b := RNG(42, 3), RNG(42, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, job) diverged")
		}
	}
	seen := map[uint64]string{}
	for seed := int64(0); seed < 4; seed++ {
		for job := 0; job < 16; job++ {
			v := RNG(seed, job).Uint64()
			key := fmt.Sprintf("seed %d job %d", seed, job)
			if prev, dup := seen[v]; dup {
				t.Fatalf("%s collides with %s", key, prev)
			}
			seen[v] = key
		}
	}
}

// --- Fleet-scale stress tests -----------------------------------------
//
// The fleet engine (internal/fleet) pushes tens of thousands of jobs
// through Map in one call. These tests pin the behaviors that matter at
// that scale: a mid-stream failure stops dispatch promptly instead of
// draining the queue, a panic deep in the job stream still surfaces as
// a *PanicError naming its index, and external cancellation aborts the
// run without waiting for the tail.

const fleetJobs = 12_000

// TestMapFleetScaleError: job 6000 of 12000 fails. The failure must
// surface as the lowest-indexed error (every earlier job succeeds), and
// dispatch must stop well short of the full stream.
func TestMapFleetScaleError(t *testing.T) {
	boom := errors.New("boom at 6000")
	var started atomic.Int32
	got, err := Map(context.Background(), 8, fleetJobs, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 6000 {
			return 0, boom
		}
		if i > 6000 {
			// Post-failure jobs that were already dispatched must see
			// the cancellation; block briefly to give it time to land.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(10 * time.Second):
				return 0, errors.New("cancellation never arrived")
			}
		}
		return i, nil
	})
	if got != nil {
		t.Fatal("results returned alongside error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := started.Load(); int(n) >= fleetJobs {
		t.Fatalf("all %d jobs started despite failure at 6000", n)
	}
}

// TestMapFleetScalePanic: a panic buried deep in a fleet-sized stream is
// recovered into a *PanicError carrying the right job index, and the
// remaining queue is not drained.
func TestMapFleetScalePanic(t *testing.T) {
	var started atomic.Int32
	_, err := Map(context.Background(), 8, fleetJobs, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		if i == 7777 {
			panic(fmt.Sprintf("device %d exploded", i))
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Job != 7777 || pe.Value != "device 7777 exploded" {
		t.Fatalf("PanicError = {Job: %d, Value: %v}", pe.Job, pe.Value)
	}
	if n := started.Load(); int(n) >= fleetJobs {
		t.Fatalf("all %d jobs started despite panic at 7777", n)
	}
}

// TestMapFleetScaleCancel: cancelling the caller's context mid-stream
// aborts a fleet-sized run — the error is context.Canceled and the tail
// of the stream never starts.
func TestMapFleetScaleCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	_, err := Map(ctx, 8, fleetJobs, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == 500 {
			cancel()
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); int(n) >= fleetJobs {
		t.Fatalf("all %d jobs started despite cancellation at 500", n)
	}
}

// TestPoolRunFleetScale: the untyped wrapper handles a fleet-sized
// stream — every job runs exactly once on the happy path, and a late
// failure still cancels the remainder.
func TestPoolRunFleetScale(t *testing.T) {
	hits := make([]atomic.Int32, fleetJobs)
	if err := (Pool{Workers: 8}).Run(context.Background(), len(hits), func(_ context.Context, i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("job %d ran %d times", i, hits[i].Load())
		}
	}

	boom := errors.New("late failure")
	var started atomic.Int32
	err := (Pool{Workers: 8}).Run(context.Background(), fleetJobs, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 9000 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := started.Load(); int(n) >= fleetJobs {
		t.Fatalf("all %d jobs started despite failure at 9000", n)
	}
}
