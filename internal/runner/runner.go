// Package runner is the sweep engine behind the paper's evaluation
// grids. Every figure is a set of fully independent simulations (an
// app×system matrix cell, one seed of a multi-seed run, one point of a
// design-space sweep), so regenerating them is embarrassingly parallel:
// Map fans the jobs across a bounded worker pool while guaranteeing
// that parallelism can never change a paper number.
//
// The guarantees that make that safe:
//
//   - Results are returned in input order regardless of completion
//     order, so downstream tables render identically at any worker
//     count.
//   - Jobs share no RNG state: each job derives its own *rand.Rand
//     (see RNG) or constructs one from the experiment seed, so the
//     random streams are a function of (seed, job index) alone.
//   - The first error — by job index, not by completion time, so the
//     reported error is deterministic too — cancels the context seen
//     by in-flight jobs and is returned.
//   - A panicking job is recovered into a *PanicError naming the job
//     index instead of tearing down the whole process.
package runner

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// DefaultJobs is the worker count used when a Pool (or the -jobs flag)
// does not specify one: every available CPU.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// PanicError is a job panic converted into an error. Job is the index
// of the offending job; Value is the recovered panic value.
type PanicError struct {
	Job   int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.Job, e.Value)
}

// Pool is a reusable sweep configuration. The zero value runs with
// DefaultJobs workers.
type Pool struct {
	// Workers is the number of concurrent jobs; <= 0 means
	// DefaultJobs(). Workers == 1 runs the jobs serially on the
	// calling goroutine, in index order.
	Workers int
}

// Run executes fn for every job index in [0, n) across the pool's
// workers with Map's ordering, error, and panic guarantees, for sweeps
// whose jobs write their own results (methods cannot be generic, so
// the typed variant is the free function Map).
func (p Pool) Run(ctx context.Context, n int, fn func(ctx context.Context, job int) error) error {
	_, err := Map(ctx, p.Workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// Map runs fn(ctx, i) for every i in [0, n) across workers goroutines
// (<= 0 means DefaultJobs, 1 means serial on the calling goroutine) and
// returns the n results in input order regardless of completion order.
//
// The first error by job index cancels ctx for in-flight jobs, jobs not
// yet started are skipped, and that error is returned with a nil slice.
// A panic inside fn is recovered into a *PanicError carrying the job
// index. A ctx that is cancelled before a job starts surfaces as
// ctx.Err().
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, job int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative job count %d", n)
	}
	if workers <= 0 {
		workers = DefaultJobs()
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)

	if workers <= 1 {
		// Serial path: same job decomposition, same index order, no
		// goroutines — what -jobs 1 forces.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			results[i], errs[i] = call(ctx, i, fn)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = call(ctx, i, fn)
				if errs[i] != nil {
					cancel() // first failure stops in-flight work
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Mark never-started jobs so an outer cancellation (rather
			// than a job failure) still reports an error below.
			errs[i] = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// call invokes one job, converting a panic into a *PanicError.
func call[T any](ctx context.Context, i int, fn func(context.Context, int) (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Job: i, Value: r}
		}
	}()
	return fn(ctx, i)
}

// RNG returns an independent deterministic generator for job i of a
// sweep seeded with seed. The stream is a pure function of (seed, i):
// the pair is mixed through SplitMix64 so that adjacent seeds or
// adjacent job indices do not produce correlated streams, and no two
// jobs ever share *rand.Rand state.
func RNG(seed int64, job int) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix(uint64(seed) + uint64(job)*0x9e3779b97f4a7c15))))
}

// mix is the SplitMix64 finalizer.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
