package chaos

import (
	"testing"

	"capybara/internal/core"
	"capybara/internal/device"
	"capybara/internal/env"
	"capybara/internal/metrics"
	"capybara/internal/runner"
	"capybara/internal/task"
	"capybara/internal/units"
)

// buildFusedWorkload replicates the task-workload scenario with the
// fused stepper force-attached: randomized hardware, a fault-wrapped
// harvester, and the writer/reader channel-atomicity program, with a
// StepFuser (plus the schedule and recorder its evidence checks need)
// wired into the engine the way the fleet's builders wire it.
func buildFusedWorkload(t *testing.T, job int, seed int64, maxViol int) (*trial, *core.Instance, *task.StepFuser) {
	t.Helper()
	rng := runner.RNG(seed, job)
	base, switched, kind, fs := genParts(rng)
	maskAll := uint64(1)<<uint(1+len(switched)) - 1
	variant := core.CapyP
	if rng.Intn(2) == 0 {
		variant = core.CapyR
	}
	tr := &trial{job: job, seed: seed, rng: rng, scenario: "task-workload", fs: fs}

	writer := &task.Task{
		Name:   "writer",
		Config: "hi",
		Run: func(c *task.Ctx) task.Next {
			c.Compute(2_000 + float64(rng.Intn(20_000)))
			n := c.WordOr("n", 0) + 1
			c.SetWord("n", n)
			c.ChanOut("reader", "a", n)
			c.ChanOut("reader", "b", 2*n)
			return "reader"
		},
	}
	reader := &task.Task{
		Name:   "reader",
		Config: "lo",
		Run: func(c *task.Ctx) task.Next {
			a, okA := c.ChanIn("a", "writer")
			b, okB := c.ChanIn("b", "writer")
			if okA != okB || (okA && b != 2*a) {
				tr.chk.Failf("channel-atomicity", c.Now(),
					"reader saw torn pair: a=%d(%v) b=%d(%v)", a, okA, b, okB)
			}
			c.Compute(1_000 + float64(rng.Intn(5_000)))
			return "writer"
		},
	}
	prog := task.MustProgram("writer", writer, reader)

	inst, err := core.New(core.Config{
		Variant:    variant,
		Source:     fs,
		MCU:        device.MSP430FR5969(),
		Base:       base,
		Switched:   switched,
		SwitchKind: kind,
		Modes: []core.Mode{
			{Name: "hi", Mask: maskAll},
			{Name: "lo", Mask: 1, VTop: 2.2},
		},
	}, prog)
	if err != nil {
		t.Fatalf("chaos: fused workload construction failed: %v", err)
	}
	fuser := task.NewStepFuser()
	inst.Engine.Fuse = fuser
	inst.Engine.FuseSched = env.Schedule{}
	inst.Engine.Rec = &metrics.Recorder{}
	tr.dev, tr.arr = inst.Dev, inst.Dev.Array
	tr.chk = NewChecker(tr.dev, job, seed)
	tr.chk.MaxViolations = maxViol
	return tr, inst, fuser
}

// TestFuseObserverGate force-enables fused stepping on the chaos task
// workload and attaches the invariant-checking observer, exactly like a
// chaos trial. The fused path must disable itself under the observer —
// the same gate the powerAt memo honors — so the checker sees every
// event, every invariant holds, and the fuser records and replays
// nothing. A control run without the observer pins that the gate (not
// some other precondition) is what held fusion back.
func TestFuseObserverGate(t *testing.T) {
	const horizon = units.Seconds(300)
	var controlSteps uint64
	for job := 0; job < 8; job++ {
		tr, inst, fuser := buildFusedWorkload(t, job, 0xface, 8)
		tr.dev.Obs = &observer{chk: tr.chk}
		tr.scheduleRandomCuts(horizon)
		if err := inst.Run(horizon); err != nil {
			t.Fatalf("job %d: engine error: %v", job, err)
		}
		st := fuser.Stats()
		if st.Steps != 0 || st.Replays != 0 || st.Records != 0 {
			t.Fatalf("job %d: observer gate leaked: fuser stats %+v", job, st)
		}
		if len(tr.chk.Violations) != 0 {
			for _, v := range tr.chk.Violations {
				t.Errorf("job %d: %v", job, v)
			}
			t.Fatalf("job %d: %d invariant violations with fusion force-enabled", job, len(tr.chk.Violations))
		}
		if tr.chk.Events == 0 {
			t.Fatalf("job %d: observer saw no events — gate test is vacuous", job)
		}

		// Control: identical build, no observer. The engine must at least
		// consider fusion (Steps counts gate-passing step attempts), which
		// proves the gated runs were held back by the observer alone.
		ctr, cinst, cfuser := buildFusedWorkload(t, job, 0xface, 8)
		ctr.scheduleRandomCuts(horizon)
		if err := cinst.Run(horizon); err != nil {
			t.Fatalf("job %d control: engine error: %v", job, err)
		}
		controlSteps += cfuser.Stats().Steps
	}
	if controlSteps == 0 {
		t.Fatalf("control runs never passed the fusion gates — observer-gate assertion is vacuous")
	}
}
