package chaos

import (
	"fmt"
	"math"
	"math/rand"

	"capybara/internal/core"
	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/runner"
	"capybara/internal/sim"
	"capybara/internal/storage"
	"capybara/internal/task"
	"capybara/internal/units"
)

// scenarioNames lists the fault scenarios in dispatch order; trial job
// j runs scenario j mod len(scenarioNames), so any contiguous block of
// trials covers every scenario.
var scenarioNames = []string{
	"random-ops",
	"segment-boundary-cut",
	"cold-start-cut",
	"latch-expiry",
	"reconfig-dropout",
	"task-workload",
}

// trial is the per-job state of one chaos run.
type trial struct {
	job      int
	seed     int64
	scenario string
	rng      *rand.Rand

	dev  *sim.Device
	arr  *reservoir.Array
	fs   *FaultSource
	chk  *Checker
	vmax units.Voltage
}

// observer fans one sim.Observer slot out to the invariant checker and
// an optional scenario hook (which schedules faults off live events).
// The checker runs first so each event is judged before the hook
// perturbs the future.
type observer struct {
	chk  *Checker
	hook func(d *sim.Device, e sim.HookEvent)
}

func (o *observer) Observe(d *sim.Device, e sim.HookEvent) {
	o.chk.Observe(d, e)
	if o.hook != nil {
		o.hook(d, e)
	}
}

// genParts builds the randomized hardware for a trial: base bank,
// switched banks, switch kind, and a fault-wrapped harvester. The
// construction is a pure function of the rng stream, which is how the
// cold-start scenario dry-runs an identical twin of its device.
func genParts(rng *rand.Rand) (base *storage.Bank, switched []*storage.Bank, kind reservoir.SwitchKind, fs *FaultSource) {
	baseCap := units.Capacitance(100+rng.Float64()*400) * units.MicroFarad
	base = storage.MustBank("base",
		storage.GroupFor(storage.CeramicX5R, baseCap),
		storage.GroupOf(storage.Tantalum, 1+rng.Intn(2)))

	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		var g storage.Group
		if rng.Intn(2) == 0 {
			g = storage.GroupOf(storage.EDLC, 1+rng.Intn(9))
		} else {
			g = storage.GroupOf(storage.SupercapCPH3225A, 1+rng.Intn(4))
		}
		switched = append(switched, storage.MustBank(fmt.Sprintf("bank%d", i+1), g))
	}

	kind = reservoir.NormallyOpen
	if rng.Intn(2) == 0 {
		kind = reservoir.NormallyClosed
	}

	var src harvest.Source
	switch rng.Intn(3) {
	case 0:
		src = harvest.RegulatedSupply{
			Max: units.Power(1+rng.Float64()*19) * units.MilliWatt,
			V:   units.Voltage(2.5 + rng.Float64()*2),
		}
	case 1:
		src = harvest.SolarPanel{
			PeakPower:          units.Power(2+rng.Float64()*8) * units.MilliWatt,
			OpenCircuitVoltage: units.Voltage(1.5 + rng.Float64()),
			Series:             1 + rng.Intn(3),
			Light:              harvest.PWMTrace(0.3+rng.Float64()*0.6, units.Seconds(5+rng.Float64()*40)),
		}
	default:
		src = harvest.SolarPanel{
			PeakPower:          units.Power(3+rng.Float64()*10) * units.MilliWatt,
			OpenCircuitVoltage: units.Voltage(2 + rng.Float64()),
			Series:             2,
		}
	}
	return base, switched, kind, &FaultSource{Base: src}
}

// newTrial assembles a device for the scripted (non-task) scenarios.
func newTrial(job int, seed int64, rng *rand.Rand) *trial {
	base, switched, kind, fs := genParts(rng)
	arr := reservoir.NewArray(base, kind, switched...)
	dev := sim.NewDevice(power.NewSystem(fs), arr, device.MSP430FR5969())

	vmax := units.Voltage(math.Inf(1))
	for i := 0; i < arr.NumBanks(); i++ {
		if r := arr.Bank(i).RatedVoltage(); r > 0 && r < vmax {
			vmax = r
		}
	}
	vmax -= 0.05

	// A common starting voltage keeps whatever set the switch defaults
	// connect electrically consistent (connected banks share one
	// terminal; diverging them by hand would fake a violation).
	v0 := units.Voltage(rng.Float64() * 1.2)
	for i := 0; i < arr.NumBanks(); i++ {
		arr.Bank(i).SetVoltage(v0)
	}

	tr := &trial{
		job: job, seed: seed, rng: rng,
		scenario: scenarioNames[job%len(scenarioNames)],
		dev:      dev, arr: arr, fs: fs, vmax: vmax,
	}
	tr.chk = NewChecker(dev, job, seed)
	return tr
}

// scheduleRandomCuts sprinkles outages across the horizon up front
// (legal: every window is in the future at t=0).
func (tr *trial) scheduleRandomCuts(horizon units.Seconds) {
	for i, n := 0, 1+tr.rng.Intn(8); i < n; i++ {
		start := units.Seconds(tr.rng.Float64() * float64(horizon))
		tr.fs.CutAt(start, units.Seconds(0.5+tr.rng.Float64()*30))
	}
}

// drive exercises the device with a random operation mix until the
// horizon, stopping early once an invariant has failed (the wreckage
// after a first violation is not more signal).
func (tr *trial) drive(horizon units.Seconds) {
	d := tr.dev
	for d.Now() < horizon && len(tr.chk.Violations) == 0 {
		switch tr.rng.Intn(7) {
		case 0, 1:
			target := units.Voltage(1.7 + tr.rng.Float64()*float64(tr.vmax-1.7))
			d.ChargeTo(target, units.Seconds(5+tr.rng.Float64()*115))
		case 2:
			if d.Boot() {
				d.Drain(d.MCU.ActivePower, units.Seconds(0.01+tr.rng.Float64()*2))
			}
		case 3:
			d.Sleep(units.Seconds(0.05 + tr.rng.Float64()*5))
		case 4:
			mask := uint64(tr.rng.Intn(1<<uint(tr.arr.NumBanks()))) | 1
			if err := d.Configure(mask); err != nil {
				tr.chk.Failf("scenario", d.Now(), "configure %#b failed: %v", mask, err)
				return
			}
		default:
			d.AdvanceOff(units.Seconds(1 + tr.rng.Float64()*120))
		}
	}
}

// run dispatches the trial's scenario.
func (tr *trial) run(horizon units.Seconds) {
	switch tr.scenario {
	case "segment-boundary-cut":
		tr.segmentBoundaryCut(horizon)
	case "cold-start-cut":
		tr.coldStartCut(horizon)
	case "latch-expiry":
		tr.latchExpiry(horizon)
	case "reconfig-dropout":
		tr.reconfigDropout(horizon)
	default: // random-ops
		tr.scheduleRandomCuts(horizon)
		tr.dev.Obs = &observer{chk: tr.chk}
		tr.drive(horizon)
	}
}

// segmentBoundaryCut schedules outages that start exactly where an
// analytic charge segment ended: the solver's event boundaries are the
// instants its bookkeeping is most likely to be off by one.
func (tr *trial) segmentBoundaryCut(horizon units.Seconds) {
	countdown := 2 + tr.rng.Intn(5)
	tr.dev.Obs = &observer{chk: tr.chk, hook: func(d *sim.Device, e sim.HookEvent) {
		if e.Kind != sim.HookChargeSegment {
			return
		}
		if countdown--; countdown <= 0 {
			tr.fs.CutAt(e.T1, units.Seconds(0.5+tr.rng.Float64()*20))
			countdown = 2 + tr.rng.Intn(6)
		}
	}}
	tr.drive(horizon)
}

// coldStartCut kills the harvester at the exact instant the store
// crosses the booster's cold-start threshold. The crossing time comes
// from a dry run on an identical twin device — genParts replayed on a
// fresh copy of the trial's rng stream — so the cut boundary coincides
// with the phase change to the precision of the solver itself.
func (tr *trial) coldStartCut(horizon units.Seconds) {
	twinRng := runner.RNG(tr.seed, tr.job)
	base, switched, kind, twinFS := genParts(twinRng)
	twinArr := reservoir.NewArray(base, kind, switched...)
	twinDev := sim.NewDevice(power.NewSystem(twinFS), twinArr, device.MSP430FR5969())

	// Start both devices below the threshold so the ramp crosses it,
	// and re-base the checker on the adjusted state.
	coldStart := tr.dev.Sys.In.ColdStart
	start := units.Voltage(tr.rng.Float64() * float64(coldStart) * 0.8)
	for i := 0; i < tr.arr.NumBanks(); i++ {
		tr.arr.Bank(i).SetVoltage(start)
	}
	for i := 0; i < twinArr.NumBanks(); i++ {
		twinArr.Bank(i).SetVoltage(start)
	}
	maxViol := tr.chk.MaxViolations
	tr.chk = NewChecker(tr.dev, tr.job, tr.seed)
	tr.chk.MaxViolations = maxViol

	if tCross, reached := twinDev.ChargeTo(coldStart, horizon); reached {
		tr.fs.CutAt(tCross, units.Seconds(1+tr.rng.Float64()*30))
	}
	tr.dev.Obs = &observer{chk: tr.chk}
	tr.dev.ChargeTo(tr.vmax, horizon/2)
	tr.drive(horizon)
}

// latchExpiry walks the latch-retention boundary: it programs the
// non-default configuration, cuts the harvester, and advances exactly
// one tick before / at / one tick after the predicted expiry, asserting
// the revert fires iff the retention span has fully elapsed.
func (tr *trial) latchExpiry(horizon units.Seconds) {
	d := tr.dev
	tr.dev.Obs = &observer{chk: tr.chk}

	// Pick the mask that puts every switch in its NON-default state so
	// each holds its latch: all-on for normally-open, base-only for
	// normally-closed.
	mask := uint64(1)<<uint(tr.arr.NumBanks()) - 1
	if tr.arr.Switch(1).Kind == reservoir.NormallyClosed {
		mask = 1
	}
	if err := d.Configure(mask); err != nil {
		tr.chk.Failf("scenario", d.Now(), "configure %#b failed: %v", mask, err)
		return
	}
	tr.fs.CutAt(d.Now(), 2*horizon)

	nr := tr.arr.NextRevert()
	if math.IsInf(float64(nr), 1) || nr <= 0 {
		tr.chk.Failf("latch-expiry", d.Now(), "held switches report no finite expiry: %v", nr)
		return
	}
	const eps units.Seconds = 1e-6
	offset := []units.Seconds{-eps, 0, eps}[tr.rng.Intn(3)]
	before := tr.arr.Reverts
	d.AdvanceOff(nr + offset)
	reverted := tr.arr.Reverts > before
	if want := offset >= 0; reverted != want {
		tr.chk.Failf("latch-expiry", d.Now(),
			"advance of expiry%+v: reverted=%v, want %v (retention %v)", offset, reverted, want, nr)
		return
	}
	if offset < 0 {
		// One tick short: the residual expiry must close out the revert.
		rest := tr.arr.NextRevert()
		if math.IsInf(float64(rest), 1) {
			tr.chk.Failf("latch-expiry", d.Now(), "held switch lost its expiry one tick before retention")
			return
		}
		d.AdvanceOff(rest)
		if tr.arr.Reverts == before {
			tr.chk.Failf("latch-expiry", d.Now(), "residual expiry %v did not revert", rest)
			return
		}
	}
	tr.drive(horizon)
}

// reconfigDropout cuts the harvester at the instant software
// reconfigures the bank switches, so the charge-share transient and the
// GPIO programming drain both happen over a dying supply.
func (tr *trial) reconfigDropout(horizon units.Seconds) {
	countdown := 1 + tr.rng.Intn(3)
	tr.dev.Obs = &observer{chk: tr.chk, hook: func(d *sim.Device, e sim.HookEvent) {
		if e.Kind != sim.HookReconfig {
			return
		}
		if countdown--; countdown <= 0 {
			tr.fs.CutAt(e.T0, units.Seconds(0.01+tr.rng.Float64()*5))
			countdown = 1 + tr.rng.Intn(4)
		}
	}}
	tr.drive(horizon)
}

// taskWorkload runs a writer/reader task graph under the Capybara
// runtime with random outages and asserts channel atomicity: the writer
// publishes a pair of fields in one commit, so the reader must never
// observe them torn, no matter where power failed.
func runTaskWorkload(job int, seed int64, rng *rand.Rand, horizon units.Seconds, maxViol int) *trial {
	base, switched, kind, fs := genParts(rng)

	maskAll := uint64(1)<<uint(1+len(switched)) - 1
	variant := core.CapyP
	if rng.Intn(2) == 0 {
		variant = core.CapyR
	}

	tr := &trial{job: job, seed: seed, rng: rng, scenario: "task-workload", fs: fs}

	writer := &task.Task{
		Name:   "writer",
		Config: "hi",
		Run: func(c *task.Ctx) task.Next {
			c.Compute(2_000 + float64(rng.Intn(20_000)))
			n := c.WordOr("n", 0) + 1
			c.SetWord("n", n)
			// One commit publishes the pair; tearing them is the bug.
			c.ChanOut("reader", "a", n)
			c.ChanOut("reader", "b", 2*n)
			return "reader"
		},
	}
	reader := &task.Task{
		Name:   "reader",
		Config: "lo",
		Run: func(c *task.Ctx) task.Next {
			a, okA := c.ChanIn("a", "writer")
			b, okB := c.ChanIn("b", "writer")
			if okA != okB || (okA && b != 2*a) {
				tr.chk.Failf("channel-atomicity", c.Now(),
					"reader saw torn pair: a=%d(%v) b=%d(%v)", a, okA, b, okB)
			}
			c.Compute(1_000 + float64(rng.Intn(5_000)))
			return "writer"
		},
	}
	prog := task.MustProgram("writer", writer, reader)

	inst, err := core.New(core.Config{
		Variant:    variant,
		Source:     fs,
		MCU:        device.MSP430FR5969(),
		Base:       base,
		Switched:   switched,
		SwitchKind: kind,
		Modes: []core.Mode{
			{Name: "hi", Mask: maskAll},
			{Name: "lo", Mask: 1, VTop: 2.2},
		},
	}, prog)
	if err != nil {
		panic(fmt.Sprintf("chaos: task workload construction failed: %v", err))
	}
	tr.dev, tr.arr = inst.Dev, inst.Dev.Array
	tr.chk = NewChecker(tr.dev, job, seed)
	tr.chk.MaxViolations = maxViol
	tr.dev.Obs = &observer{chk: tr.chk}
	tr.scheduleRandomCuts(horizon)

	if err := inst.Run(horizon); err != nil {
		tr.chk.Failf("scenario", tr.dev.Now(), "engine error: %v", err)
	}
	return tr
}
