package chaos

import (
	"context"
	"reflect"
	"testing"

	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/sim"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// testDevice builds a small deterministic two-bank device for
// handcrafted checker tests.
func testDevice() *sim.Device {
	base := storage.MustBank("base",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupOf(storage.Tantalum, 1))
	big := storage.MustBank("big", storage.GroupOf(storage.EDLC, 4))
	arr := reservoir.NewArray(base, reservoir.NormallyOpen, big)
	sys := power.NewSystem(harvest.RegulatedSupply{Max: 5 * units.MilliWatt, V: 3.0})
	return sim.NewDevice(sys, arr, device.MSP430FR5969())
}

func spanEvent(kind sim.HookKind, t0, t1 units.Seconds, v0, v1 units.Voltage) sim.HookEvent {
	return sim.HookEvent{Kind: kind, T0: t0, T1: t1, V0: v0, V1: v1, OK: true}
}

func violationsOf(c *Checker, name string) []Violation {
	var out []Violation
	for _, v := range c.Violations {
		if v.Invariant == name {
			out = append(out, v)
		}
	}
	return out
}

func TestCheckerPassesOnQuietDevice(t *testing.T) {
	d := testDevice()
	c := NewChecker(d, 0, 0)
	c.Observe(d, spanEvent(sim.HookSpan, 0, 0, 0, 0))
	if len(c.Violations) != 0 {
		t.Fatalf("checker flagged an untouched device: %v", c.Violations)
	}
}

func TestCheckerCatchesEnergyCreation(t *testing.T) {
	d := testDevice()
	c := NewChecker(d, 0, 0)
	// Conjure energy out of nowhere: books say 0 in, 0 out.
	d.Array.Bank(0).SetVoltage(2.0)
	c.Observe(d, spanEvent(sim.HookSpan, 0, 0, 0, 2.0))
	if len(violationsOf(c, "energy-balance")) == 0 {
		t.Fatalf("energy created from nothing not flagged; violations: %v", c.Violations)
	}
}

func TestCheckerCatchesChargeCreationAtReconfig(t *testing.T) {
	d := testDevice()
	c := NewChecker(d, 0, 0)
	d.Array.Bank(0).SetVoltage(1.5)
	c.Observe(d, spanEvent(sim.HookReconfig, 0, 0, 1.5, 1.5))
	if len(violationsOf(c, "charge-conservation")) == 0 {
		t.Fatalf("charge created across reconfig not flagged; violations: %v", c.Violations)
	}
}

func TestCheckerCatchesUnsettledActiveSet(t *testing.T) {
	d := testDevice()
	if err := d.Array.Configure(0b11); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(d, 0, 0)
	// Diverge two electrically connected banks by hand.
	d.Array.Bank(0).SetVoltage(2.0)
	d.Array.Bank(1).SetVoltage(1.0)
	c.Observe(d, spanEvent(sim.HookSpan, 0, 0, 2.0, 2.0))
	if len(violationsOf(c, "settled-set")) == 0 {
		t.Fatalf("diverged active set not flagged; violations: %v", c.Violations)
	}
}

func TestCheckerCatchesClockRegression(t *testing.T) {
	d := testDevice()
	c := NewChecker(d, 0, 0)
	c.Observe(d, spanEvent(sim.HookSpan, 5, 1, 0, 0))
	if len(violationsOf(c, "clock-monotone")) == 0 {
		t.Fatalf("backwards span not flagged; violations: %v", c.Violations)
	}
}

func TestCheckerCatchesGhostSwitchFlip(t *testing.T) {
	d := testDevice()
	c := NewChecker(d, 0, 0)
	// First event learns the programmed states.
	c.Observe(d, spanEvent(sim.HookSpan, 0, 0, 0, 0))
	// Flip a switch behind the checker's back with a live latch.
	d.Array.Switch(1).Set(true)
	c.Observe(d, spanEvent(sim.HookSpan, 0, 1, 0, 0))
	if len(violationsOf(c, "latch-consistency")) == 0 {
		t.Fatalf("ghost switch flip not flagged; violations: %v", c.Violations)
	}
}

func TestCheckerCatchesSolverDivergence(t *testing.T) {
	d := testDevice()
	c := NewChecker(d, 0, 0)
	// Claim a charge segment gained far more voltage than the source
	// can deliver in its span (OK=false: no target snap to hide behind).
	c.Observe(d, sim.HookEvent{Kind: sim.HookChargeSegment, T0: 0, T1: 0.1, V0: 0.5, V1: 3.0})
	if len(violationsOf(c, "solver-cross-check")) == 0 {
		t.Fatalf("bogus analytic segment not flagged; violations: %v", c.Violations)
	}
}

func TestFaultSourceCutsAndHorizons(t *testing.T) {
	fs := &FaultSource{Base: harvest.RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0}}
	fs.CutAt(10, 5)

	if got := fs.PowerAt(9.999); got <= 0 {
		t.Fatal("powered before the cut")
	}
	if got := fs.PowerAt(10); got != 0 {
		t.Fatalf("cut start is inclusive; got %v", got)
	}
	if got := fs.PowerAt(15); got <= 0 {
		t.Fatal("cut end is exclusive; still dark at end")
	}
	// Outside the cut the constant base's horizon is clipped at the
	// window start; inside, at the window end.
	if h := fs.NextChange(4); h != 6 {
		t.Fatalf("horizon before cut = %v, want 6", h)
	}
	if h := fs.NextChange(12); h != 3 {
		t.Fatalf("horizon inside cut = %v, want 3", h)
	}
	// An opaque base stays opaque outside windows.
	op := &FaultSource{Base: harvest.SolarPanel{
		PeakPower:          5 * units.MilliWatt,
		OpenCircuitVoltage: 3,
		Light:              harvest.TraceFunc(func(t units.Seconds) float64 { return 0.5 }),
	}}
	op.CutAt(10, 5)
	if h := op.NextChange(0); h != 0 {
		t.Fatalf("opaque base must stay opaque, got horizon %v", h)
	}
}

func TestChaosRunCleanAndCovering(t *testing.T) {
	cfg := Config{Trials: 2 * len(scenarioNames), Seed: 1, Jobs: 4, Horizon: 150}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("chaos run found violations:\n%s", rep.Summary())
	}
	if rep.Faults == 0 {
		t.Fatal("no faults were injected")
	}
	for _, name := range scenarioNames {
		if rep.Scenarios[name] != 2 {
			t.Fatalf("scenario %q ran %d times, want 2\n%s", name, rep.Scenarios[name], rep.Summary())
		}
	}
	for _, inv := range Registry() {
		if inv.Check == nil {
			continue
		}
		if rep.Checks[inv.Name] == 0 {
			t.Fatalf("invariant %q never checked\n%s", inv.Name, rep.Summary())
		}
	}
}

func TestChaosRunDeterministic(t *testing.T) {
	cfg := Config{Trials: len(scenarioNames), Seed: 7, Horizon: 100}
	cfg.Jobs = 1
	serial, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Jobs = 8
	parallel, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("report depends on worker count:\nserial:\n%s\nparallel:\n%s",
			serial.Summary(), parallel.Summary())
	}
}
