// Package chaos is a seeded fault-injection and invariant-checking
// harness for the simulator. Each trial builds a randomized device,
// injects harvester outages at adversarial instants — segment
// boundaries, the cold-start crossing, latch-retention expiry (one
// tick before, at, and after), mid-reconfiguration, and mid-task — and
// checks a registry of physics and semantics invariants after every
// simulator event (see Registry). Trials are a pure function of
// (seed, trial index): any violation is replayable from its seed.
package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"capybara/internal/runner"
	"capybara/internal/units"
)

// Config parameterizes a chaos run.
type Config struct {
	// Trials is the number of independent trials to run.
	Trials int
	// Seed makes the whole run reproducible; trial i derives its own
	// stream from (Seed, i).
	Seed int64
	// Jobs bounds worker parallelism (<= 0 means GOMAXPROCS-ish,
	// see runner.DefaultJobs; 1 forces serial).
	Jobs int
	// Horizon is each trial's simulated duration (default 600 s).
	Horizon units.Seconds
	// MaxViolationsPerTrial bounds recorded violations per trial
	// (default 8): a single genuine bug fails every subsequent check.
	MaxViolationsPerTrial int
}

func (c Config) horizon() units.Seconds {
	if c.Horizon > 0 {
		return c.Horizon
	}
	return 600
}

// Report aggregates a chaos run.
type Report struct {
	Trials int
	// Events is the total number of simulator events observed; Faults
	// the total number of injected outage windows.
	Events int
	Faults int
	// Scenarios counts trials per scenario; Checks counts executed
	// assertions per invariant.
	Scenarios map[string]int
	Checks    map[string]int
	// Violations holds every recorded invariant breach.
	Violations []Violation
}

// Summary renders the report for the CLI.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d trials, %d faults injected, %d events observed\n",
		r.Trials, r.Faults, r.Events)
	names := make([]string, 0, len(r.Scenarios))
	for name := range r.Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  scenario %-22s %d trials\n", name, r.Scenarios[name])
	}
	names = names[:0]
	for name := range r.Checks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  invariant %-21s %d checks\n", name, r.Checks[name])
	}
	if len(r.Violations) == 0 {
		b.WriteString("  0 violations\n")
	} else {
		fmt.Fprintf(&b, "  %d VIOLATIONS:\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "    %v\n", v)
		}
	}
	return b.String()
}

// trialResult is what one trial reports back to the aggregator.
type trialResult struct {
	scenario   string
	events     int
	faults     int
	checks     map[string]int
	violations []Violation
}

// Run executes cfg.Trials independent chaos trials across cfg.Jobs
// workers and aggregates their results. The report is deterministic in
// (Seed, Trials, Horizon): trial scheduling order does not matter
// because every trial owns its rng stream and results are merged in
// trial order.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	horizon := cfg.horizon()
	results, err := runner.Map(ctx, cfg.Jobs, cfg.Trials, func(ctx context.Context, job int) (trialResult, error) {
		return runTrial(job, cfg, horizon), nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Trials:    cfg.Trials,
		Scenarios: make(map[string]int),
		Checks:    make(map[string]int),
	}
	for _, res := range results {
		rep.Events += res.events
		rep.Faults += res.faults
		rep.Scenarios[res.scenario]++
		for name, n := range res.checks {
			rep.Checks[name] += n
		}
		rep.Violations = append(rep.Violations, res.violations...)
	}
	return rep, nil
}

// runTrial executes one trial and snapshots its checker.
func runTrial(job int, cfg Config, horizon units.Seconds) trialResult {
	rng := runner.RNG(cfg.Seed, job)
	var tr *trial
	if scenarioNames[job%len(scenarioNames)] == "task-workload" {
		tr = runTaskWorkload(job, cfg.Seed, rng, horizon, cfg.MaxViolationsPerTrial)
	} else {
		tr = newTrial(job, cfg.Seed, rng)
		tr.chk.MaxViolations = cfg.MaxViolationsPerTrial
		tr.run(horizon)
	}
	return trialResult{
		scenario:   tr.scenario,
		events:     tr.chk.Events,
		faults:     tr.fs.Cuts(),
		checks:     tr.chk.Checks,
		violations: tr.chk.Violations,
	}
}
