package chaos

import (
	"fmt"
	"math"

	"capybara/internal/reservoir"
	"capybara/internal/sim"
	"capybara/internal/units"
)

// Violation is one invariant breach observed during a chaos trial.
type Violation struct {
	Trial     int
	Seed      int64
	Invariant string
	T         units.Seconds
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("trial %d seed %d t=%v [%s] %s", v.Trial, v.Seed, v.T, v.Invariant, v.Detail)
}

// Invariant is one registry entry: a named physics/semantics property
// checked after every observed simulator event, with its tolerance
// documented. The registry is the heart of the harness — every entry
// is a claim the paper's arguments rest on.
type Invariant struct {
	Name string
	// Desc states what the invariant asserts and its tolerance.
	Desc string
	// Check runs the assertion; nil entries are checked elsewhere
	// (scenario scripts or fuzz targets) and listed for documentation.
	Check func(c *Checker, e sim.HookEvent)
}

// registry is the ordered invariant set Checker.Observe runs.
var registry = []Invariant{
	{
		Name: "clock-monotone",
		Desc: "event spans are well-formed and simulated time never runs backwards (exact); overlapping views of one span (charge-segment then span) are legal, an end before the clock high-water mark is not",
		Check: func(c *Checker, e sim.HookEvent) {
			if e.T1 < e.T0 || e.T1 < c.lastT-1e-9 {
				c.failf("clock-monotone", e.T1, "span [%v,%v] after t=%v", e.T0, e.T1, c.lastT)
			}
		},
	},
	{
		Name: "energy-balance",
		Desc: "total bank energy equals initial + charged − drawn − share loss − leak loss (tolerance 1e-9 J + 1e-6 relative)",
		Check: func(c *Checker, e sim.HookEvent) {
			st := c.dev.Stats
			arr := c.dev.Array
			budget := float64(c.initial) +
				float64(st.EnergyIntoStore-c.baseInto) - float64(st.EnergyDrawn-c.baseDrawn) -
				float64(arr.ShareLoss-c.baseShare) - float64(arr.LeakLoss-c.baseLeak)
			total := float64(c.totalEnergy())
			tol := 1e-9 + 1e-6*math.Max(math.Abs(budget), math.Abs(total))
			if d := math.Abs(total - budget); d > tol {
				c.failf("energy-balance", e.T1, "stored %.12g J, books say %.12g J (Δ %.3g, tol %.3g)",
					total, budget, total-budget, tol)
			}
		},
	},
	{
		Name: "voltage-rating",
		Desc: "no bank voltage is negative or above its rated voltage (tolerance 1e-9 V)",
		Check: func(c *Checker, e sim.HookEvent) {
			arr := c.dev.Array
			for i := 0; i < arr.NumBanks(); i++ {
				b := arr.Bank(i)
				v := b.Voltage()
				if v < -1e-12 {
					c.failf("voltage-rating", e.T1, "bank %d (%s) at negative voltage %v", i, b.Name(), v)
				}
				if r := b.RatedVoltage(); r > 0 && float64(v) > float64(r)+1e-9 {
					c.failf("voltage-rating", e.T1, "bank %d (%s) at %v exceeds rating %v", i, b.Name(), v, r)
				}
			}
		},
	},
	{
		Name: "settled-set",
		Desc: "electrically connected banks share one terminal voltage (tolerance 1e-9 V)",
		Check: func(c *Checker, e sim.HookEvent) {
			arr := c.dev.Array
			v0 := arr.Bank(0).Voltage()
			for i := 1; i < arr.NumBanks(); i++ {
				if arr.Switch(i).Closed() {
					if v := arr.Bank(i).Voltage(); math.Abs(float64(v-v0)) > 1e-9 {
						c.failf("settled-set", e.T1, "active bank %d at %v, base at %v", i, v, v0)
					}
				}
			}
		},
	},
	{
		Name: "charge-conservation",
		Desc: "reconfiguration charge-sharing never creates charge or energy (tolerance 1e-9 relative); checked at every reconfig against the previous event's totals",
		Check: func(c *Checker, e sim.HookEvent) {
			if e.Kind != sim.HookReconfig {
				return
			}
			q, en := c.totalChargeEnergy()
			if qTol := 1e-12 + 1e-9*math.Abs(c.prevQ); q > c.prevQ+qTol {
				c.failf("charge-conservation", e.T1, "charge grew across reconfig: %.12g → %.12g C", c.prevQ, q)
			}
			if eTol := 1e-12 + 1e-9*math.Abs(c.prevE); en > c.prevE+eTol {
				c.failf("charge-conservation", e.T1, "energy grew across reconfig: %.12g → %.12g J", c.prevE, en)
			}
		},
	},
	{
		Name: "latch-consistency",
		Desc: "a switch differs from its programmed state iff its latch drained, and it then sits in its default state (exact)",
		Check: func(c *Checker, e sim.HookEvent) {
			arr := c.dev.Array
			if e.Kind == sim.HookReconfig || c.programmed == nil {
				// (Re)learn the programmed states at attach and at every
				// software reconfiguration.
				c.programmed = c.programmed[:0]
				for i := 1; i < arr.NumBanks(); i++ {
					c.programmed = append(c.programmed, arr.Switch(i).Closed())
				}
				return
			}
			for i := 1; i < arr.NumBanks(); i++ {
				sw := arr.Switch(i)
				prog := c.programmed[i-1]
				if sw.Closed() == prog {
					continue
				}
				// State changed without software: that is only legal as a
				// latch-expiry revert to the default state.
				def := sw.Kind == reservoir.NormallyClosed
				if sw.LatchVoltage() != 0 {
					c.failf("latch-consistency", e.T1,
						"switch %d flipped with a live latch (%v)", i, sw.LatchVoltage())
				} else if sw.Closed() != def {
					c.failf("latch-consistency", e.T1,
						"switch %d reverted to non-default state (closed=%v, kind=%v)", i, sw.Closed(), sw.Kind)
				}
				c.programmed[i-1] = sw.Closed()
			}
		},
	},
	{
		Name: "time-accounting",
		Desc: "TimeOn + TimeCharging + TimeOff equals the simulated clock (tolerance 1e-6 s + 1e-9 relative)",
		Check: func(c *Checker, e sim.HookEvent) {
			st := c.dev.Stats
			sum := float64(st.TimeOn + st.TimeCharging + st.TimeOff)
			now := float64(c.dev.Now())
			if d := math.Abs(sum - now); d > 1e-6+1e-9*now {
				c.failf("time-accounting", e.T1, "phase times sum to %.9g s, clock at %.9g s", sum, now)
			}
		},
	},
	{
		Name: "solver-cross-check",
		Desc: "the analytic charge solver agrees with small-step numerical integration on every charge segment (tolerance 0.05 V)",
		Check: func(c *Checker, e sim.HookEvent) {
			if e.Kind != sim.HookChargeSegment {
				return
			}
			c.crossCheck(e)
		},
	},
	{
		Name: "channel-atomicity",
		Desc: "task channels never expose partially-committed data (exact); asserted by the task-workload scenario and the task commit fuzz target",
	},
}

// Registry returns the invariant registry (names and descriptions) for
// reporting and documentation.
func Registry() []Invariant {
	out := make([]Invariant, len(registry))
	copy(out, registry)
	return out
}

// Checker implements sim.Observer: after every simulator event it runs
// the invariant registry against the device state and records
// violations.
type Checker struct {
	// Trial and Seed label recorded violations.
	Trial int
	Seed  int64
	// MaxViolations bounds recorded violations per checker (default 8):
	// one genuine bug tends to fail every subsequent event, and the
	// first few reports carry all the signal.
	MaxViolations int

	dev     *sim.Device
	initial units.Energy
	baseInto, baseDrawn,
	baseShare, baseLeak units.Energy
	programmed []bool
	lastT      units.Seconds
	prevQ      float64
	prevE      float64

	// Events counts observed events; Checks counts executed assertions
	// per invariant.
	Events     int
	Checks     map[string]int
	Violations []Violation
}

// NewChecker builds a checker over d's current state. The caller wires
// it up (directly via d.Obs = c, or through a scenario observer that
// delegates).
func NewChecker(d *sim.Device, trial int, seed int64) *Checker {
	c := &Checker{Trial: trial, Seed: seed, dev: d, Checks: make(map[string]int)}
	c.initial = c.totalEnergy()
	c.baseInto = d.Stats.EnergyIntoStore
	c.baseDrawn = d.Stats.EnergyDrawn
	c.baseShare = d.Array.ShareLoss
	c.baseLeak = d.Array.LeakLoss
	c.lastT = d.Now()
	c.prevQ, c.prevE = c.totalChargeEnergy()
	return c
}

func (c *Checker) maxViolations() int {
	if c.MaxViolations > 0 {
		return c.MaxViolations
	}
	return 8
}

// Observe implements sim.Observer.
func (c *Checker) Observe(d *sim.Device, e sim.HookEvent) {
	c.dev = d
	c.Events++
	for i := range registry {
		inv := &registry[i]
		if inv.Check == nil {
			continue
		}
		if len(c.Violations) >= c.maxViolations() {
			break
		}
		inv.Check(c, e)
		c.Checks[inv.Name]++
	}
	if e.T1 > c.lastT {
		c.lastT = e.T1
	}
	c.prevQ, c.prevE = c.totalChargeEnergy()
}

// Failf records a violation found outside the registry (scenario-level
// assertions such as channel atomicity or scheduled-expiry checks).
func (c *Checker) Failf(name string, t units.Seconds, format string, args ...any) {
	c.Checks[name]++
	c.failf(name, t, format, args...)
}

func (c *Checker) failf(name string, t units.Seconds, format string, args ...any) {
	if len(c.Violations) >= c.maxViolations() {
		return
	}
	c.Violations = append(c.Violations, Violation{
		Trial: c.Trial, Seed: c.Seed, Invariant: name, T: t,
		Detail: fmt.Sprintf(format, args...),
	})
}

// totalEnergy sums stored energy across every bank, connected or not.
func (c *Checker) totalEnergy() units.Energy {
	var e units.Energy
	arr := c.dev.Array
	for i := 0; i < arr.NumBanks(); i++ {
		e += arr.Bank(i).Energy()
	}
	return e
}

// totalChargeEnergy sums charge (Q = C·V) and energy across every bank.
func (c *Checker) totalChargeEnergy() (q, e float64) {
	arr := c.dev.Array
	for i := 0; i < arr.NumBanks(); i++ {
		b := arr.Bank(i)
		q += float64(b.Capacitance()) * float64(b.Voltage())
		e += float64(b.Energy())
	}
	return q, e
}

// crossCheck re-integrates one analytic charge segment with small
// fixed steps and compares the end voltage. The segment contract
// (constant source output on [T0, T1)) is guaranteed by the solver's
// segmentation, so the reference integrator only has to re-sample the
// charge-path boundaries the analytic solve crossed in closed form.
func (c *Checker) crossCheck(e sim.HookEvent) {
	dt := e.T1 - e.T0
	if dt <= 1e-9 {
		return
	}
	set := c.dev.Store()
	cap_ := set.Capacitance()
	rated := set.RatedVoltage()
	steps := int(float64(dt) / 1e-3)
	if steps < 400 {
		steps = 400
	}
	if steps > 50_000 {
		steps = 50_000
	}
	step := dt / units.Seconds(steps)
	v := e.V0
	sys := c.dev.Sys
	for i := 0; i < steps; i++ {
		tt := e.T0 + step*units.Seconds(i)
		if p := sys.ChargePower(v, tt); p > 0 {
			v = units.ChargeVoltageAfter(cap_, v, p, step)
			if rated > 0 && v > rated {
				v = rated
			}
			if e.OK && v > e.V1 {
				// The analytic segment ended the instant the target was
				// hit; integration past it is crossing jitter.
				v = e.V1
			}
		}
	}
	if d := math.Abs(float64(v - e.V1)); d > 0.05 {
		c.failf("solver-cross-check", e.T1,
			"analytic %v, numeric %v after %v from %v (Δ %.4g V)", e.V1, v, dt, e.V0, d)
	}
}
