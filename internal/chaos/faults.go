package chaos

import (
	"fmt"
	"math"

	"capybara/internal/harvest"
	"capybara/internal/units"
)

// cutWindow is one scheduled outage: [start, end) of zero harvester
// output.
type cutWindow struct {
	start, end units.Seconds
}

// FaultSource wraps a harvest.Source with schedulable outage windows:
// within a window the harvester is disconnected (zero power, zero
// voltage). Scenarios use it to cut power at adversarial instants
// learned from observer hooks — a cut scheduled at an observed event
// time starts exactly at a segment boundary, which is the hardest
// instant for the event-driven solver to get right.
//
// FaultSource implements harvest.Stepped conservatively: horizons are
// clipped at the next window boundary, so the analytic solver never
// integrates across a cut. Scheduling is only legal for windows that
// start at or after the present simulated time (the solver holds no
// constancy promise beyond it).
type FaultSource struct {
	Base harvest.Source
	cuts []cutWindow
}

// CutAt schedules an outage of duration dur starting at start. Windows
// may overlap; the union is what counts.
func (f *FaultSource) CutAt(start, dur units.Seconds) {
	if dur <= 0 {
		return
	}
	f.cuts = append(f.cuts, cutWindow{start: start, end: start + dur})
}

// InCut reports whether t falls inside a scheduled outage.
func (f *FaultSource) InCut(t units.Seconds) bool {
	for _, w := range f.cuts {
		if t >= w.start && t < w.end {
			return true
		}
	}
	return false
}

// Cuts returns the number of scheduled outage windows.
func (f *FaultSource) Cuts() int { return len(f.cuts) }

// PowerAt implements harvest.Source.
func (f *FaultSource) PowerAt(t units.Seconds) units.Power {
	if f.InCut(t) {
		return 0
	}
	return f.Base.PowerAt(t)
}

// VoltageAt implements harvest.Source.
func (f *FaultSource) VoltageAt(t units.Seconds) units.Voltage {
	if f.InCut(t) {
		return 0
	}
	return f.Base.VoltageAt(t)
}

// NextChange implements harvest.Stepped. Inside a window the output is
// constant (zero) until the window ends or another begins; outside, the
// base horizon is clipped at the next window start. A return of 0
// outside a window means the base source is opaque — callers fall back
// to fixed-step integration, which remains correct.
func (f *FaultSource) NextChange(t units.Seconds) units.Seconds {
	boundary := units.Seconds(math.Inf(1))
	for _, w := range f.cuts {
		if w.start > t && w.start-t < boundary {
			boundary = w.start - t
		}
		if w.end > t && w.start <= t && w.end-t < boundary {
			boundary = w.end - t
		}
	}
	if f.InCut(t) {
		// Output is pinned to zero up to the nearest boundary regardless
		// of what the base source does underneath.
		return boundary
	}
	h := harvest.NextChange(f.Base, t)
	if h <= 0 {
		return 0 // opaque base: stay conservative
	}
	if boundary < h {
		return boundary
	}
	return h
}

func (f *FaultSource) String() string {
	return fmt.Sprintf("fault-source{%v, %d cuts}", f.Base, len(f.cuts))
}
