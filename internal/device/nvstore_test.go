package device

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestNVStoreWords(t *testing.T) {
	s := NewNVStore()
	if _, ok := s.Word("missing"); ok {
		t.Fatal("missing key found")
	}
	s.SetWord("state", 42)
	if v, ok := s.Word("state"); !ok || v != 42 {
		t.Fatalf("Word = (%d, %v)", v, ok)
	}
	if got := s.WordOr("state", 7); got != 42 {
		t.Fatalf("WordOr existing = %d", got)
	}
	if got := s.WordOr("missing", 7); got != 7 {
		t.Fatalf("WordOr default = %d", got)
	}
	if s.Writes() != 1 {
		t.Fatalf("writes = %d, want 1", s.Writes())
	}
}

func TestNVStoreFloats(t *testing.T) {
	s := NewNVStore()
	s.SetFloat("v", 2.4)
	if got := s.FloatOr("v", 0); got != 2.4 {
		t.Fatalf("FloatOr = %g", got)
	}
	if got := s.FloatOr("missing", -1); got != -1 {
		t.Fatalf("FloatOr default = %g", got)
	}
}

func TestNVStoreBlobsAreCopied(t *testing.T) {
	s := NewNVStore()
	src := []byte{1, 2, 3}
	s.SetBlob("b", src)
	src[0] = 99 // must not affect the stored copy
	got, ok := s.Blob("b")
	if !ok || !reflect.DeepEqual(got, []byte{1, 2, 3}) {
		t.Fatalf("Blob = (%v, %v)", got, ok)
	}
	got[1] = 77 // must not affect the stored copy either
	again, _ := s.Blob("b")
	if !reflect.DeepEqual(again, []byte{1, 2, 3}) {
		t.Fatalf("stored blob mutated: %v", again)
	}
	if _, ok := s.Blob("missing"); ok {
		t.Fatal("missing blob found")
	}
}

func TestNVStoreFloatSeries(t *testing.T) {
	s := NewNVStore()
	want := []float64{21.5, 22.0, 22.5}
	for _, v := range want {
		s.AppendFloat("series", v)
	}
	if got := s.FloatSeries("series"); !reflect.DeepEqual(got, want) {
		t.Fatalf("FloatSeries = %v, want %v", got, want)
	}
	if got := s.FloatSeries("missing"); len(got) != 0 {
		t.Fatalf("missing series = %v", got)
	}
}

func TestNVStoreFloatSeriesRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		s := NewNVStore()
		for _, v := range vals {
			s.AppendFloat("k", v)
		}
		got := s.FloatSeries("k")
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN-safe comparison via bit identity is handled by
			// reflect.DeepEqual on float64 only for equal bits; compare
			// bitwise through the encoded path instead.
			if got[i] != vals[i] && !(got[i] != got[i] && vals[i] != vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNVStoreDeleteAndKeys(t *testing.T) {
	s := NewNVStore()
	s.SetWord("b", 1)
	s.SetBlob("a", []byte{1})
	s.SetWord("a", 2) // same key in both spaces is one logical key
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Keys = %v", got)
	}
	s.Delete("a")
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("Keys after delete = %v", got)
	}
}

func TestNVStoreSnapshotIsolated(t *testing.T) {
	s := NewNVStore()
	s.SetWord("w", 1)
	s.AppendFloat("f", 3.5)
	snap := s.Snapshot()
	s.SetWord("w", 2)
	s.AppendFloat("f", 4.5)
	if got := snap.WordOr("w", 0); got != 1 {
		t.Fatalf("snapshot word mutated: %d", got)
	}
	if got := snap.FloatSeries("f"); len(got) != 1 || got[0] != 3.5 {
		t.Fatalf("snapshot series mutated: %v", got)
	}
	if s.String() == "" {
		t.Error("empty stringer")
	}
}
