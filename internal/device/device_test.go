package device

import (
	"math"
	"testing"
)

func TestMCUComputeTime(t *testing.T) {
	m := MSP430FR5969()
	// 8 Mops/s: one Mop takes 125 ms.
	if got := m.ComputeTime(1e6); math.Abs(float64(got)-0.125) > 1e-12 {
		t.Fatalf("ComputeTime(1 Mop) = %v, want 125 ms", got)
	}
	if got := m.ComputeTime(0); got != 0 {
		t.Errorf("ComputeTime(0) = %v", got)
	}
	if got := (MCU{}).ComputeTime(100); got != 0 {
		t.Errorf("zero MCU ComputeTime = %v", got)
	}
}

func TestMCUOpEnergy(t *testing.T) {
	m := MSP430FR5969()
	want := float64(m.ActivePower) / m.OpsPerSecond
	if got := m.OpEnergy(); math.Abs(float64(got)-want) > 1e-18 {
		t.Fatalf("OpEnergy = %v, want %g", got, want)
	}
	if got := (MCU{}).OpEnergy(); got != 0 {
		t.Errorf("zero MCU OpEnergy = %v", got)
	}
	if m.String() == "" {
		t.Error("empty stringer")
	}
}

func TestRadioPacketTimeCalibration(t *testing.T) {
	r := CC2650()
	// The paper's calibration point: a 25-byte BLE packet requires
	// operating atomically for 35 ms.
	if got := r.PacketTime(25); math.Abs(float64(got)-0.035) > 1e-9 {
		t.Fatalf("PacketTime(25) = %v, want 35 ms", got)
	}
	// Smaller packets are shorter but not free.
	p8 := r.PacketTime(8)
	if p8 >= r.PacketTime(25) || p8 <= r.BaseAirtime {
		t.Fatalf("PacketTime(8) = %v out of range", p8)
	}
	if got := r.PacketTime(-3); got != r.BaseAirtime {
		t.Fatalf("negative payload: %v", got)
	}
}

func TestRadioPacketEnergy(t *testing.T) {
	r := CC2650()
	m := MSP430FR5969()
	e := r.PacketEnergy(m, 25)
	// (27 mW + 2 mW) · (10 ms + 35 ms) = 1.305 mJ.
	if math.Abs(float64(e)-1.305e-3) > 1e-9 {
		t.Fatalf("PacketEnergy = %v, want 1.305 mJ", e)
	}
	if r.String() == "" {
		t.Error("empty stringer")
	}
}

func TestPeripheralCatalogSanity(t *testing.T) {
	// The catalog must reflect the paper's load ordering: compute <
	// sensing < gesture sensing < radio.
	mcu := MSP430FR5969()
	tmp := TMP36()
	apds := APDS9960()
	radio := CC2650()
	eTmp := tmp.OpEnergyAt(tmp.ActivePower + mcu.ActivePower)
	eApds := apds.OpEnergyAt(apds.ActivePower + mcu.ActivePower)
	eRadio := radio.PacketEnergy(mcu, 25)
	if !(eTmp < eApds) {
		t.Fatalf("temp sample (%v) should cost less than gesture window (%v)", eTmp, eApds)
	}
	if !(eTmp < eRadio) {
		t.Fatalf("temp sample (%v) should cost less than a packet (%v)", eTmp, eRadio)
	}
}

func TestPeripheralVoltageRequirements(t *testing.T) {
	// §5.1: the output booster exists partly to run the 2.5 V gesture
	// sensor and the 2.0 V BLE radio.
	if APDS9960().MinVout != 2.5 {
		t.Errorf("APDS MinVout = %v", APDS9960().MinVout)
	}
	if CC2650().MinVout != 2.0 {
		t.Errorf("CC2650 MinVout = %v", CC2650().MinVout)
	}
}

func TestPeripheralStringers(t *testing.T) {
	for _, p := range []Peripheral{Phototransistor(), APDS9960(), TMP36(), Magnetometer(), ProximitySensor(), LED()} {
		if p.String() == "" || p.Name == "" {
			t.Errorf("peripheral %+v has empty name or stringer", p)
		}
		if p.OpTime <= 0 || p.ActivePower <= 0 {
			t.Errorf("peripheral %s has non-positive op time or power", p.Name)
		}
	}
}

func TestGestureWindowIs250ms(t *testing.T) {
	// §6.1.1: "keep the APDS sensor on for the minimum duration of a
	// gesture motion (250 ms)".
	if got := APDS9960().OpTime; got != 0.25 {
		t.Fatalf("gesture window = %v, want 250 ms", got)
	}
}
