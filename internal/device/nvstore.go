package device

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// NVStore models the MCU's non-volatile memory (FRAM on the
// MSP430FR5969). Values written here survive power failures; everything
// else on the device is volatile and lost at each reboot. The Capybara
// runtime keeps its state machine and the task runtime keeps its
// channels in an NVStore (§4.3: "robust to power failures by careful
// use of non-volatile memory").
//
// The zero value is not usable; call NewNVStore.
type NVStore struct {
	words  map[string]uint64
	blobs  map[string][]byte
	writes int
}

// NewNVStore returns an empty non-volatile memory.
func NewNVStore() *NVStore {
	return &NVStore{words: make(map[string]uint64), blobs: make(map[string][]byte)}
}

// Writes returns the number of NV write operations performed, for wear
// and overhead accounting.
func (s *NVStore) Writes() int { return s.writes }

// SetWord durably stores a 64-bit word under key.
func (s *NVStore) SetWord(key string, v uint64) {
	s.words[key] = v
	s.writes++
}

// Word returns the word stored under key and whether it exists.
func (s *NVStore) Word(key string) (uint64, bool) {
	v, ok := s.words[key]
	return v, ok
}

// WordOr returns the stored word or def when absent.
func (s *NVStore) WordOr(key string, def uint64) uint64 {
	if v, ok := s.words[key]; ok {
		return v
	}
	return def
}

// SetFloat durably stores a float64 under key.
func (s *NVStore) SetFloat(key string, v float64) {
	s.SetWord(key, math.Float64bits(v))
}

// FloatOr returns the stored float or def when absent.
func (s *NVStore) FloatOr(key string, def float64) float64 {
	if v, ok := s.words[key]; ok {
		return math.Float64frombits(v)
	}
	return def
}

// SetBlob durably stores a byte slice under key (copied).
func (s *NVStore) SetBlob(key string, b []byte) {
	cp := make([]byte, len(b))
	copy(cp, b)
	s.blobs[key] = cp
	s.writes++
}

// SetBlobOwned durably stores b under key without copying. The caller
// relinquishes ownership: b must not be read or written afterwards.
// The task engine's commit path uses this to move staged blobs into NV
// without a copy per transition; external callers should use SetBlob.
func (s *NVStore) SetBlobOwned(key string, b []byte) {
	s.blobs[key] = b
	s.writes++
}

// Blob returns a copy of the blob stored under key.
func (s *NVStore) Blob(key string) ([]byte, bool) {
	b, ok := s.blobs[key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp, true
}

// PeekBlob returns the blob stored under key without copying. The
// returned slice aliases the store: callers must treat it as read-only
// and must not retain it across writes. Hot read paths (the task
// engine's current-task lookup runs once per scheduler iteration) use
// this to avoid a copy per read; everything else should use Blob.
func (s *NVStore) PeekBlob(key string) ([]byte, bool) {
	b, ok := s.blobs[key]
	return b, ok
}

// AppendFloat appends a float64 to a durable series under key — the
// applications use this for sensor time series.
func (s *NVStore) AppendFloat(key string, v float64) {
	b := s.blobs[key]
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	s.blobs[key] = append(b, buf[:]...)
	s.writes++
}

// FloatSeries decodes the durable series under key.
func (s *NVStore) FloatSeries(key string) []float64 {
	b := s.blobs[key]
	out := make([]float64, 0, len(b)/8)
	for i := 0; i+8 <= len(b); i += 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[i:])))
	}
	return out
}

// Delete removes a key from both spaces.
func (s *NVStore) Delete(key string) {
	delete(s.words, key)
	delete(s.blobs, key)
	s.writes++
}

// Keys lists all stored keys in sorted order.
func (s *NVStore) Keys() []string {
	seen := make(map[string]bool, len(s.words)+len(s.blobs))
	for k := range s.words {
		seen[k] = true
	}
	for k := range s.blobs {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns a deep copy, for testing checkpoint-and-compare
// failure injection.
func (s *NVStore) Snapshot() *NVStore {
	cp := NewNVStore()
	for k, v := range s.words {
		cp.words[k] = v
	}
	for k, v := range s.blobs {
		b := make([]byte, len(v))
		copy(b, v)
		cp.blobs[k] = b
	}
	return cp
}

func (s *NVStore) String() string {
	return fmt.Sprintf("nvstore(%d keys, %d writes)", len(s.Keys()), s.writes)
}
