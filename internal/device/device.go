// Package device models the loads on a Capybara power system: the
// microcontroller, its non-volatile memory, and the peripherals
// (sensors, radio, LED) the paper's applications exercise.
//
// A load is characterized by the power it draws from the regulated
// output and how long its atomic operations take; the power system
// (internal/power) converts that into storage drain. Datasheet-scale
// values for the MSP430FR5969 and CC2650 parts are provided.
package device

import (
	"fmt"

	"capybara/internal/units"
)

// MCU models a microcontroller class: an MSP430FR5969-like
// FRAM-equipped low-power MCU on the paper's prototypes.
type MCU struct {
	// Name identifies the part.
	Name string
	// ActivePower is the draw at the regulated output while computing.
	ActivePower units.Power
	// SleepPower is the draw in a retentive low-power mode. Sleeping
	// does not stop power-system quiescent drain (§6.4).
	SleepPower units.Power
	// OpsPerSecond is the ALU operation throughput used for atomicity
	// accounting (the "Mops" of Fig. 3 and Fig. 4).
	OpsPerSecond float64
	// BootTime is the time from power-good to the first task
	// instruction, at ActivePower.
	BootTime units.Seconds
}

// MSP430FR5969 returns the prototype MCU model: ~100 µA/MHz at 8 MHz
// and ~2.2 V gives roughly 2 mW active; with FRAM wait states it
// executes about 8 Mops/s.
func MSP430FR5969() MCU {
	return MCU{
		Name:         "MSP430FR5969",
		ActivePower:  2 * units.MilliWatt,
		SleepPower:   2 * units.MicroWatt,
		OpsPerSecond: 8e6,
		BootTime:     5 * units.Millisecond,
	}
}

// ComputeTime returns how long the MCU needs for ops ALU operations.
func (m MCU) ComputeTime(ops float64) units.Seconds {
	if m.OpsPerSecond <= 0 || ops <= 0 {
		return 0
	}
	return units.Seconds(ops / m.OpsPerSecond)
}

// OpEnergy returns the energy one ALU operation consumes at the
// regulated output.
func (m MCU) OpEnergy() units.Energy {
	if m.OpsPerSecond <= 0 {
		return 0
	}
	return units.Energy(float64(m.ActivePower) / m.OpsPerSecond)
}

func (m MCU) String() string {
	return fmt.Sprintf("%s (%v active, %.0f Mops/s)", m.Name, m.ActivePower, m.OpsPerSecond/1e6)
}

// Peripheral models a sensor, radio, or actuator as a load with a
// warm-up phase and a per-operation active phase.
type Peripheral struct {
	// Name identifies the part.
	Name string
	// ActivePower is the draw while the peripheral operates, in
	// addition to the MCU's own draw.
	ActivePower units.Power
	// Warmup is the initialization time required after the peripheral
	// powers on, at ActivePower (e.g. sensor warm-up, radio stack
	// startup). Warm-up is paid once per power-on session.
	Warmup units.Seconds
	// OpTime is the duration of one atomic operation (one sample, one
	// LED flash).
	OpTime units.Seconds
	// MinVout is the minimum regulated output voltage the part needs
	// (2.5 V gesture sensor, 2.0 V BLE radio — §5.1).
	MinVout units.Voltage
}

// OpEnergyAt returns the energy one operation consumes given the total
// power draw p (peripheral + MCU) — a provisioning helper.
func (p Peripheral) OpEnergyAt(total units.Power) units.Energy {
	return units.Energy(float64(total) * float64(p.OpTime))
}

func (p Peripheral) String() string {
	return fmt.Sprintf("%s (%v, op %v)", p.Name, p.ActivePower, p.OpTime)
}

// The peripheral catalog used by the paper's three applications.

// Phototransistor is the GRC proximity detector: one cheap analog
// sample detects an object over the board.
func Phototransistor() Peripheral {
	return Peripheral{
		Name:        "phototransistor",
		ActivePower: 200 * units.MicroWatt,
		Warmup:      0,
		OpTime:      1 * units.Millisecond,
		MinVout:     1.8,
	}
}

// APDS9960 is the gesture sensor: it must stay on for at least the
// minimum duration of a gesture motion, 250 ms (§6.1.1). In gesture
// mode the part drives its IR LED at high current, so the average draw
// is tens of milliwatts — this is what makes gesture recognition a
// high-energy atomic task needing a dedicated large bank.
func APDS9960() Peripheral {
	return Peripheral{
		Name:        "APDS-9960",
		ActivePower: 30 * units.MilliWatt,
		Warmup:      30 * units.Millisecond,
		OpTime:      250 * units.Millisecond,
		MinVout:     2.5,
	}
}

// TMP36 is the analog temperature sensor: an 8 ms low-power atomic
// sample (§2 gives "8 milliseconds" as the canonical sensor example).
func TMP36() Peripheral {
	return Peripheral{
		Name:        "TMP36",
		ActivePower: 100 * units.MicroWatt,
		Warmup:      2 * units.Millisecond,
		OpTime:      8 * units.Millisecond,
		MinVout:     1.8,
	}
}

// Magnetometer is CSR's magnetic field sensor.
func Magnetometer() Peripheral {
	return Peripheral{
		Name:        "magnetometer",
		ActivePower: 1 * units.MilliWatt,
		Warmup:      5 * units.Millisecond,
		OpTime:      10 * units.Millisecond,
		MinVout:     1.8,
	}
}

// ProximitySensor is CSR's distance sensor; CSR collects 32 samples
// back-to-back in one atomic task.
func ProximitySensor() Peripheral {
	return Peripheral{
		Name:        "proximity",
		ActivePower: 3 * units.MilliWatt,
		Warmup:      10 * units.Millisecond,
		OpTime:      5 * units.Millisecond,
		MinVout:     2.5,
	}
}

// LED is CSR's indicator, held on for 250 ms.
func LED() Peripheral {
	return Peripheral{
		Name:        "LED",
		ActivePower: 6 * units.MilliWatt,
		Warmup:      0,
		OpTime:      250 * units.Millisecond,
		MinVout:     2.0,
	}
}

// Radio models the CC2650 BLE transmitter. A packet transmission is an
// atomic high-power operation: stack startup plus airtime.
type Radio struct {
	// Name identifies the part.
	Name string
	// TxPower is the draw during transmission.
	TxPower units.Power
	// StartupTime is the radio stack initialization before the first
	// packet of a session, at TxPower.
	StartupTime units.Seconds
	// BaseAirtime is the fixed per-packet airtime (advertising
	// overhead), and PerByte the additional airtime per payload byte.
	// The paper's calibration point: a 25-byte packet occupies the
	// radio atomically for 35 ms.
	BaseAirtime units.Seconds
	PerByte     units.Seconds
	// MinVout is the minimum regulated voltage (2.0 V for BLE, §5.1).
	MinVout units.Voltage
}

// CC2650 returns the prototype radio model.
func CC2650() Radio {
	return Radio{
		Name:        "CC2650",
		TxPower:     27 * units.MilliWatt,
		StartupTime: 10 * units.Millisecond,
		BaseAirtime: 25 * units.Millisecond,
		PerByte:     400e-6,
		MinVout:     2.0,
	}
}

// PacketTime returns the atomic airtime of a packet with the given
// payload size (excluding stack startup).
func (r Radio) PacketTime(payloadBytes int) units.Seconds {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	return r.BaseAirtime + units.Seconds(payloadBytes)*r.PerByte
}

// PacketEnergy returns the energy of one packet transmission including
// startup, at the radio's draw plus the MCU's active draw.
func (r Radio) PacketEnergy(mcu MCU, payloadBytes int) units.Energy {
	dt := r.StartupTime + r.PacketTime(payloadBytes)
	return units.Energy(float64(r.TxPower+mcu.ActivePower) * float64(dt))
}

func (r Radio) String() string {
	return fmt.Sprintf("%s (%v TX)", r.Name, r.TxPower)
}
