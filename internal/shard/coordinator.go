package shard

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"capybara/internal/fleet"
)

// Options tunes the coordinator's lease and progress behavior. The zero
// value is usable: every field has a default.
type Options struct {
	// LeaseTimeout is how long a worker holds a chunk before the
	// coordinator re-leases it (0 = 1 minute). It bounds how long a
	// wedged worker can stall the run; chunks finish in well under a
	// second each at default chunk size, so the default is generous.
	LeaseTimeout time.Duration
	// MaxAttempts is how many times a chunk may be leased before the
	// run fails hard (0 = 3). Attempts count lease grants: a chunk that
	// times out or dies MaxAttempts times is presumed to crash workers
	// deterministically, and retrying forever would hide it.
	MaxAttempts int
	// RetryBackoff delays a failed chunk's re-lease, doubling per prior
	// attempt and clamped at maxRetryBackoff (0 = 250ms). It keeps a
	// crash-looping chunk from hot-cycling through the worker pool.
	RetryBackoff time.Duration
	// Progress, when non-nil, receives a line of chunk/worker/
	// throughput state every ProgressEvery (0 = 2s).
	Progress      io.Writer
	ProgressEvery time.Duration
	// Completed pre-seeds chunks a previous run already computed (e.g.
	// reloaded from a checkpoint store): they are marked done before any
	// lease is granted, so workers only ever see the missing chunks.
	// Each partial must belong to this job — chunk index in range,
	// cohort count matching the grid — or Serve fails before listening.
	// Pre-seeded chunks are not passed to OnChunk.
	Completed []*fleet.ChunkPartial
	// OnChunk, when non-nil, observes every newly completed chunk
	// before it is folded — the coordinator's checkpoint hook. A non-nil
	// error fails the run (a checkpoint that cannot be written is a
	// durability loss, not a warning). Calls may be concurrent (one per
	// worker connection), and a duplicate-result race can deliver the
	// same chunk twice; both are harmless against an idempotent
	// content-addressed store.
	OnChunk func(*fleet.ChunkPartial) error
}

// ChunkError is the failure Serve returns when chunks exhaust their
// lease attempts: Failed lists every exhausted chunk index (sorted), so
// a caller that checkpointed the completed chunks knows exactly what a
// resumed run still owes. Cause is the first exhausted chunk's last
// lease failure.
type ChunkError struct {
	Failed []int
	Cause  error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("shard: chunk(s) %v failed after exhausting lease attempts: %v", e.Failed, e.Cause)
}

func (e *ChunkError) Unwrap() error { return e.Cause }

func (o Options) withDefaults() Options {
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 250 * time.Millisecond
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = 2 * time.Second
	}
	return o
}

// chunk lease states.
const (
	chunkPending uint8 = iota
	chunkLeased
	chunkDone
)

type chunkState struct {
	status    uint8
	attempts  int       // lease grants so far
	owner     int64     // conn id while leased
	deadline  time.Time // lease expiry while leased
	notBefore time.Time // backoff gate while pending after a failure
}

// coordinator is the shared scheduler state. Everything below mu is
// guarded by it; cond wakes lease feeders when chunks become eligible
// (completion, failure requeue, backoff expiry, shutdown).
type coordinator struct {
	job *fleet.Job
	opt Options

	mu       sync.Mutex
	cond     *sync.Cond
	chunks   []chunkState
	partials []*fleet.ChunkPartial
	doneCh   chan struct{} // closed when the run completes or fails
	nextID   int64

	remaining int   // chunks not yet done
	exhausted []int // chunks that spent every lease attempt
	retries   int   // re-lease events (diagnostic)
	workers   int // currently handshaken workers
	peak      int // max concurrent workers (diagnostic)
	devices   int // devices in completed chunks (progress)
	fatal     error
	finished  bool // remaining hit 0 or fatal set; stop leasing
}

// Serve coordinates a sharded fleet run on ln: it ships the job spec to
// every connecting worker, leases chunks with deadlines, re-leases on
// worker failure, folds the partials in chunk-index order, and returns
// a Result whose report is byte-identical to fleet.Run with the same
// Config. It blocks until the run completes, a chunk exhausts its lease
// attempts, or ctx is canceled. The listener is closed on return.
func Serve(ctx context.Context, ln net.Listener, cfg fleet.Config, opt Options) (*fleet.Result, error) {
	job, err := fleet.NewJob(cfg)
	if err != nil {
		return nil, err
	}
	c := &coordinator{
		job:       job,
		opt:       opt.withDefaults(),
		chunks:    make([]chunkState, job.NumChunks()),
		partials:  make([]*fleet.ChunkPartial, job.NumChunks()),
		doneCh:    make(chan struct{}),
		remaining: job.NumChunks(),
	}
	c.cond = sync.NewCond(&c.mu)
	start := time.Now()

	// Pre-seed checkpointed chunks: mark them done before any worker can
	// be leased one. Validation is strict — a partial from the wrong job
	// would poison the fold only after all the remaining work was done.
	for _, cp := range c.opt.Completed {
		if cp == nil {
			continue
		}
		if cp.Chunk < 0 || cp.Chunk >= job.NumChunks() {
			return nil, fmt.Errorf("shard: completed partial for chunk %d out of range [0, %d)", cp.Chunk, job.NumChunks())
		}
		if len(cp.Cohorts) != len(job.Cohorts()) {
			return nil, fmt.Errorf("shard: completed partial for chunk %d has %d cohorts, want %d", cp.Chunk, len(cp.Cohorts), len(job.Cohorts()))
		}
		if c.chunks[cp.Chunk].status == chunkDone {
			continue
		}
		c.chunks[cp.Chunk].status = chunkDone
		c.partials[cp.Chunk] = cp
		c.remaining--
		lo, hi := job.ChunkBounds(cp.Chunk)
		c.devices += hi - lo
	}

	stopCtx := context.AfterFunc(ctx, func() { c.fail(ctx.Err()) })
	defer stopCtx()

	// Background goroutines: the accept loop (which spawns one handler
	// per connection), the lease monitor, and the progress reporter.
	stop := make(chan struct{})
	var bg sync.WaitGroup
	var handlers sync.WaitGroup
	handlers.Add(1)
	go func() {
		defer handlers.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed (shutdown) or fatal accept error
			}
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				c.serveWorker(conn)
			}()
		}
	}()
	bg.Add(1)
	go func() {
		defer bg.Done()
		c.monitor(stop)
	}()
	if c.opt.Progress != nil {
		bg.Add(1)
		go func() {
			defer bg.Done()
			c.progress(stop, start)
		}()
	}

	// Wait for completion or failure.
	c.mu.Lock()
	for c.remaining > 0 && c.fatal == nil {
		c.cond.Wait()
	}
	c.finished = true
	fatal := c.fatal
	c.mu.Unlock()
	c.cond.Broadcast() // wake feeders parked waiting for eligible chunks
	close(c.doneCh)    // wake feeders parked waiting for lease credits

	// Every feeder sends its worker a farewell (done, or the fatal
	// error) and closes the connection, which unwinds the paired read
	// loop; handshake stragglers are bounded by their deadline. The
	// listener close stops new connections and the accept loop.
	ln.Close()
	close(stop)
	bg.Wait()
	handlers.Wait()

	if fatal != nil {
		return nil, fatal
	}
	res, err := c.job.Fold(c.partials)
	if err != nil {
		return nil, err
	}
	res.Workers = c.peak
	res.Elapsed = time.Since(start)
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.DevicesSec = float64(cfg.N) / secs
	}
	if c.opt.Progress != nil {
		fmt.Fprintf(c.opt.Progress, "shard: complete — %d chunks on %d worker(s), %d re-leased\n",
			len(c.chunks), c.peak, c.retries)
	}
	return res, nil
}

// fail records a fatal error (first one wins) unless the run already
// completed, and wakes everyone.
func (c *coordinator) fail(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	if c.fatal == nil && c.remaining > 0 {
		c.fatal = err
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// monitor enforces lease deadlines and backoff gates: every tick it
// requeues expired leases and wakes feeders (a pending chunk's backoff
// may have elapsed with no other event to signal it).
func (c *coordinator) monitor(stop <-chan struct{}) {
	tick := c.opt.LeaseTimeout / 8
	if tick > 100*time.Millisecond {
		tick = 100 * time.Millisecond
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			c.mu.Lock()
			for i := range c.chunks {
				st := &c.chunks[i]
				if st.status == chunkLeased && now.After(st.deadline) {
					c.requeueLocked(i, fmt.Errorf("lease expired after %v", c.opt.LeaseTimeout))
				}
			}
			c.mu.Unlock()
			c.cond.Broadcast()
		}
	}
}

// progress reports chunk/worker/throughput state on the Progress writer.
func (c *coordinator) progress(stop <-chan struct{}, start time.Time) {
	t := time.NewTicker(c.opt.ProgressEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.mu.Lock()
			done := len(c.chunks) - c.remaining
			retries, workers, devices := c.retries, c.workers, c.devices
			c.mu.Unlock()
			rate := float64(devices) / time.Since(start).Seconds()
			fmt.Fprintf(c.opt.Progress, "shard: %d/%d chunks, %d worker(s), %d re-leased, %.0f devices/sec\n",
				done, len(c.chunks), workers, retries, rate)
		}
	}
}

// requeueLocked returns a leased chunk to the pending queue after a
// failure, with backoff, or fails the run if its attempts are spent.
// Caller holds mu.
func (c *coordinator) requeueLocked(ci int, cause error) {
	st := &c.chunks[ci]
	if st.status != chunkLeased {
		return
	}
	st.status = chunkPending
	st.owner = 0
	c.retries++
	if st.attempts >= c.opt.MaxAttempts {
		c.exhausted = append(c.exhausted, ci)
		// Fail hard, surfacing every exhausted chunk so a caller that
		// checkpointed the completed ones (Options.OnChunk) knows what a
		// resumed run still owes. The error value is replaced, never
		// mutated — snapshots other goroutines hold stay immutable.
		if ce, ok := c.fatal.(*ChunkError); c.fatal == nil || ok {
			failed := append([]int(nil), c.exhausted...)
			sort.Ints(failed)
			first := cause
			if ok {
				first = ce.Cause
			}
			c.fatal = &ChunkError{Failed: failed, Cause: first}
		}
		c.cond.Broadcast()
		return
	}
	st.notBefore = time.Now().Add(retryDelay(c.opt.RetryBackoff, st.attempts))
}

// maxRetryBackoff caps the exponential lease-retry backoff: past it,
// longer waits no longer protect anything (the lease timeout itself
// bounds how stale a worker can be) and only delay the run.
const maxRetryBackoff = 2 * time.Minute

// retryDelay returns the backoff before re-leasing a chunk that failed
// `attempts` times: base doubled per prior attempt, clamped at
// maxRetryBackoff. The doubling is a bounded loop, not a shift — a
// shift by attempts-1 overflows time.Duration's int64 around attempt 40
// with the default base, silently producing a negative delay (backoff
// vanishes) or a far-future notBefore (the chunk is never re-leased and
// the run stalls). A base already at or above the cap is honored
// unchanged: the cap bounds growth, it never shortens a configured
// backoff.
func retryDelay(base time.Duration, attempts int) time.Duration {
	d := base
	for i := 1; i < attempts && d < maxRetryBackoff; i++ {
		d *= 2
	}
	if d > maxRetryBackoff && base < maxRetryBackoff {
		d = maxRetryBackoff
	}
	return d
}

// releaseWorker requeues every chunk the dead worker still holds.
func (c *coordinator) releaseWorker(id int64, cause error) {
	c.mu.Lock()
	for i := range c.chunks {
		if c.chunks[i].status == chunkLeased && c.chunks[i].owner == id {
			c.requeueLocked(i, cause)
		}
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// leaseOutcome is nextLease's verdict when no lease is granted.
type leaseOutcome int

const (
	leaseGranted leaseOutcome = iota
	leaseRunDone
	leaseRunFailed
	leaseWorkerDead
)

// nextLease blocks until a chunk is eligible for worker id (granting
// it), the run completes, the run fails, or the worker's connection is
// declared dead by its read loop.
func (c *coordinator) nextLease(id int64, dead *atomic.Bool) (ci int, outcome leaseOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if dead.Load() {
			return 0, leaseWorkerDead
		}
		if c.fatal != nil {
			return 0, leaseRunFailed
		}
		if c.remaining == 0 || c.finished {
			return 0, leaseRunDone
		}
		now := time.Now()
		for i := range c.chunks {
			st := &c.chunks[i]
			if st.status == chunkPending && !st.notBefore.After(now) {
				st.status = chunkLeased
				st.owner = id
				st.attempts++
				st.deadline = now.Add(c.opt.LeaseTimeout)
				return i, leaseGranted
			}
		}
		c.cond.Wait()
	}
}

// complete records a chunk result. Duplicate results (a worker answered
// after its lease expired and the chunk was re-run elsewhere) are
// ignored — partials are pure functions of the chunk index, so both
// copies are bit-identical and the first wins. Returns false for a
// malformed result, which the caller treats as a protocol failure.
func (c *coordinator) complete(cp *fleet.ChunkPartial) bool {
	if cp.Chunk < 0 || cp.Chunk >= len(c.chunks) {
		return false
	}
	c.mu.Lock()
	if c.chunks[cp.Chunk].status == chunkDone {
		c.mu.Unlock()
		return true
	}
	c.mu.Unlock()

	// Checkpoint before marking done (and outside the lock — this is
	// disk I/O): if the write fails, the run fails while the chunk is
	// still officially unfinished, mirroring the in-process engine's
	// put-before-fold ordering. A duplicate-result race can reach here
	// twice; the store put is idempotent and the done-marking below
	// still picks exactly one winner.
	if c.opt.OnChunk != nil {
		if err := c.opt.OnChunk(cp); err != nil {
			c.fail(fmt.Errorf("shard: checkpointing chunk %d: %w", cp.Chunk, err))
			return true
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	st := &c.chunks[cp.Chunk]
	if st.status == chunkDone {
		return true
	}
	st.status = chunkDone
	c.partials[cp.Chunk] = cp
	c.remaining--
	lo, hi := c.job.ChunkBounds(cp.Chunk)
	c.devices += hi - lo
	if c.remaining == 0 {
		c.cond.Broadcast()
	}
	return true
}

// serveWorker owns one worker connection: handshake, then a feeder
// goroutine streams leases (bounded by the worker's declared capacity)
// while this goroutine reads results. Any read error, malformed frame,
// or disconnect releases the worker's outstanding leases for re-lease.
func (c *coordinator) serveWorker(conn net.Conn) {
	fc := newFrameConn(conn)
	defer fc.close()
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	// Handshake, bounded: ship the spec, read the worker's hello, and
	// refuse to lease anything unless its independently computed spec
	// hash matches ours.
	fc.setDeadline(time.Now().Add(handshakeTimeout))
	err := fc.write(&frame{Type: msgJob, Job: jobMsg{
		Proto:    protoVersion,
		Spec:     c.job.Spec(),
		SpecHash: c.job.SpecHash(),
	}})
	if err != nil {
		return
	}
	f, err := fc.read()
	if err != nil || f.Type != msgHello {
		return
	}
	if f.Hello.SpecHash != c.job.SpecHash() {
		fc.write(&frame{Type: msgError, Error: fmt.Sprintf(
			"spec hash mismatch: coordinator %s, worker %s (mismatched binaries?)",
			c.job.SpecHash(), f.Hello.SpecHash)})
		return
	}
	capacity := f.Hello.Capacity
	if capacity < 1 {
		capacity = 1
	}
	if capacity > 256 {
		capacity = 256
	}
	fc.setDeadline(time.Time{})

	c.mu.Lock()
	c.workers++
	if c.workers > c.peak {
		c.peak = c.workers
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.workers--
		c.mu.Unlock()
	}()

	// credits carries one token per lease slot: the feeder consumes a
	// token before acquiring a lease, the read loop returns it when the
	// result lands. Buffered to capacity, so the read loop's sends
	// never block even after the feeder has exited. dead flips once the
	// connection is known broken, so the feeder stops acquiring leases
	// a doomed worker would only burn attempts on.
	credits := make(chan struct{}, capacity)
	for i := 0; i < capacity; i++ {
		credits <- struct{}{}
	}
	var dead atomic.Bool
	// farewell tells the worker why no more leases are coming — done,
	// or the run's fatal error — then closes the connection so the
	// paired read loop unwinds even if the worker never speaks again.
	farewell := func() {
		c.mu.Lock()
		fatal := c.fatal
		c.mu.Unlock()
		if fatal != nil {
			fc.write(&frame{Type: msgError, Error: fatal.Error()})
		} else {
			fc.write(&frame{Type: msgDone})
		}
		fc.close()
	}
	var feeder sync.WaitGroup
	feeder.Add(1)
	go func() {
		defer feeder.Done()
		for {
			select {
			case _, ok := <-credits:
				if !ok {
					return // read loop failed; it owns the cleanup
				}
			case <-c.doneCh:
				farewell()
				return
			}
			ci, outcome := c.nextLease(id, &dead)
			switch outcome {
			case leaseWorkerDead:
				return
			case leaseRunDone, leaseRunFailed:
				farewell()
				return
			}
			if err := fc.write(&frame{Type: msgLease, Lease: leaseMsg{Chunk: ci, TTL: c.opt.LeaseTimeout}}); err != nil {
				dead.Store(true)
				c.releaseWorker(id, fmt.Errorf("worker %d: sending lease: %w", id, err))
				fc.close()
				return
			}
		}
	}()

	var failure error
	for {
		f, err := fc.read()
		if err != nil {
			failure = err
			break
		}
		switch f.Type {
		case msgResult:
			if !c.complete(&f.Result) {
				failure = fmt.Errorf("result for out-of-range chunk %d", f.Result.Chunk)
			} else {
				select {
				case credits <- struct{}{}:
				default: // capacity violated by the peer; drop the token
				}
				continue
			}
		case msgError:
			failure = fmt.Errorf("worker error: %s", f.Error)
		default:
			failure = fmt.Errorf("unexpected %v frame from worker", f.Type)
		}
		break
	}
	// Read loop over (disconnect, malformed frame, or worker error):
	// release anything this worker still held, then stop the feeder.
	dead.Store(true)
	c.releaseWorker(id, fmt.Errorf("worker %d: %w", id, failure))
	fc.close()         // unblocks a feeder stuck writing
	close(credits)     // feeder's range terminates once drained
	c.cond.Broadcast() // feeder may be parked in nextLease
	feeder.Wait()
}
