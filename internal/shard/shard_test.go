package shard

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"capybara/internal/fleet"
	"capybara/internal/task"
)

// testConfig is small enough for unit tests but decomposes into 12
// chunks (N=96, ChunkSize=8), so leases actually spread across workers
// and mid-run failures leave real work to re-lease.
func testConfig() fleet.Config {
	return fleet.Config{N: 96, Seed: 1, Jobs: 2, Scale: 0.05, ChunkSize: 8}
}

// renderRun renders the single-process reference report.
func renderRun(t *testing.T, cfg fleet.Config) (string, string) {
	t.Helper()
	res, err := fleet.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return renderResult(t, res)
}

func renderResult(t *testing.T, res *fleet.Result) (string, string) {
	t.Helper()
	var csv, js bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return csv.String(), js.String()
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// serveWith runs a coordinator over ln while the given worker funcs run
// concurrently, and returns the folded result plus each worker's error.
func serveWith(t *testing.T, cfg fleet.Config, opt Options, workers ...func(addr string) error) (*fleet.Result, []error) {
	t.Helper()
	ln := listen(t)
	addr := ln.Addr().String()
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w func(string) error) {
			defer wg.Done()
			errs[i] = w(addr)
		}(i, w)
	}
	res, err := Serve(context.Background(), ln, cfg, opt)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()
	return res, errs
}

func worker(jobs int, opts WorkerOptions) func(addr string) error {
	return func(addr string) error {
		return Work(context.Background(), addr, jobs, opts)
	}
}

// TestShardByteIdentical is the tentpole guarantee: a loopback
// coordinator with two worker processes produces a report
// byte-identical to the in-process engine at the same config.
func TestShardByteIdentical(t *testing.T) {
	cfg := testConfig()
	wantCSV, wantJSON := renderRun(t, cfg)
	res, errs := serveWith(t, cfg, Options{},
		worker(2, WorkerOptions{}),
		worker(1, WorkerOptions{NoMemo: true}), // heterogeneous knobs must not matter
	)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	gotCSV, gotJSON := renderResult(t, res)
	if gotCSV != wantCSV {
		t.Fatalf("sharded CSV differs from fleet.Run:\n--- run ---\n%s--- shard ---\n%s", wantCSV, gotCSV)
	}
	if gotJSON != wantJSON {
		t.Fatal("sharded JSON differs from fleet.Run")
	}
	if res.Workers != 2 {
		t.Fatalf("peak workers %d, want 2", res.Workers)
	}
}

// TestShardFoldsEngineStatSidecars: worker partials carry the
// per-cohort engine-stat sidecars (memo, batch, fused stepping) over
// the wire, and the coordinator folds them into the Result's
// diagnostics exactly like the in-process engine — so a sharded
// -connect run loses no cohort visibility. The sidecars must stay out
// of the canonical report (TestShardByteIdentical pins that side).
func TestShardFoldsEngineStatSidecars(t *testing.T) {
	cfg := testConfig()
	res, errs := serveWith(t, cfg, Options{},
		worker(2, WorkerOptions{}),
		worker(2, WorkerOptions{}),
	)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if res.CohortBatch == nil {
		t.Fatal("coordinator folded no per-cohort batch stats from worker partials")
	}
	if res.CohortFuse == nil {
		t.Fatal("coordinator folded no per-cohort fuse stats from worker partials")
	}
	var sum task.FuseStats
	for _, f := range res.CohortFuse {
		sum.Add(f)
	}
	if sum != res.Fuse {
		t.Fatalf("aggregate fuse stats %+v != sum of per-cohort stats %+v", res.Fuse, sum)
	}
	if res.Fuse.Steps == 0 {
		t.Fatal("fused stepping never passed its gates — sidecar fold test is vacuous")
	}
}

// TestShardWorkerKilledMidRun kills one worker after its first result
// (abrupt close while holding further leases) and asserts the re-leased
// run still completes with a report byte-identical to the unfailed run.
func TestShardWorkerKilledMidRun(t *testing.T) {
	cfg := testConfig()
	wantCSV, wantJSON := renderRun(t, cfg)
	res, errs := serveWith(t, cfg, Options{RetryBackoff: time.Millisecond},
		worker(2, WorkerOptions{dieAfterResults: 1}),
		worker(2, WorkerOptions{}),
	)
	if errs[0] == nil {
		t.Fatal("killed worker reported no error")
	}
	if errs[1] != nil {
		t.Fatalf("surviving worker: %v", errs[1])
	}
	gotCSV, gotJSON := renderResult(t, res)
	if gotCSV != wantCSV {
		t.Fatalf("report after worker death differs:\n--- unfailed ---\n%s--- failed ---\n%s", wantCSV, gotCSV)
	}
	if gotJSON != wantJSON {
		t.Fatal("JSON report after worker death differs")
	}
}

// TestShardSoleWorkerDiesThenReplacementFinishes: the run survives a
// window with zero workers — chunks wait for the next connection.
func TestShardSoleWorkerDiesThenReplacementFinishes(t *testing.T) {
	cfg := testConfig()
	wantCSV, _ := renderRun(t, cfg)
	res, errs := serveWith(t, cfg, Options{RetryBackoff: time.Millisecond},
		worker(1, WorkerOptions{dieAfterResults: 2}),
		func(addr string) error {
			time.Sleep(150 * time.Millisecond) // arrive after the first worker died
			return Work(context.Background(), addr, 2, WorkerOptions{})
		},
	)
	if errs[0] == nil {
		t.Fatal("killed worker reported no error")
	}
	if errs[1] != nil {
		t.Fatalf("replacement worker: %v", errs[1])
	}
	gotCSV, _ := renderResult(t, res)
	if gotCSV != wantCSV {
		t.Fatal("report differs after sole-worker death and replacement")
	}
}

// rawDial completes the handshake like a real worker would (computing
// the true spec hash via fleet.NewJob) and hands back the framed conn.
func rawDial(t *testing.T, addr string, capacity int) (*frameConn, *frame) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := newFrameConn(conn)
	jobFrame, err := fc.read()
	if err != nil || jobFrame.Type != msgJob {
		t.Fatalf("handshake read: %v (type %v)", err, jobFrame.Type)
	}
	job, err := fleet.NewJob(jobFrame.Job.Spec.Exec(fleet.ExecOptions{Jobs: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.write(&frame{Type: msgHello, Hello: helloMsg{SpecHash: job.SpecHash(), Capacity: capacity}}); err != nil {
		t.Fatal(err)
	}
	return fc, jobFrame
}

// TestShardSpecHashMismatchRejected: a worker declaring a different
// spec hash is refused before any lease, and the run still completes on
// the honest worker with an identical report.
func TestShardSpecHashMismatchRejected(t *testing.T) {
	cfg := testConfig()
	wantCSV, _ := renderRun(t, cfg)
	mismatch := make(chan string, 1)
	res, errs := serveWith(t, cfg, Options{},
		worker(2, WorkerOptions{}),
		func(addr string) error {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return err
			}
			defer conn.Close()
			fc := newFrameConn(conn)
			if _, err := fc.read(); err != nil {
				return err
			}
			if err := fc.write(&frame{Type: msgHello, Hello: helloMsg{SpecHash: "deadbeef", Capacity: 1}}); err != nil {
				return err
			}
			f, err := fc.read()
			if err == nil && f.Type == msgError {
				mismatch <- f.Error
			}
			return nil
		},
	)
	if errs[0] != nil {
		t.Fatalf("honest worker: %v", errs[0])
	}
	select {
	case msg := <-mismatch:
		if !strings.Contains(msg, "spec hash mismatch") {
			t.Fatalf("rejection message %q", msg)
		}
	default:
		t.Fatal("mismatched worker was not rejected with an error frame")
	}
	gotCSV, _ := renderResult(t, res)
	if gotCSV != wantCSV {
		t.Fatal("report differs after rejecting a mismatched worker")
	}
}

// TestShardWorkerRejectsBadCoordinator: the worker side of the same
// check — a coordinator announcing a hash the worker cannot reproduce
// is refused.
func TestShardWorkerRejectsBadCoordinator(t *testing.T) {
	ln := listen(t)
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fc := newFrameConn(conn)
		fc.write(&frame{Type: msgJob, Job: jobMsg{
			Proto:    protoVersion,
			Spec:     fleet.Spec{N: 8, Seed: 1, Scale: 0.05, ChunkSize: 8},
			SpecHash: "not-the-real-hash",
		}})
		fc.read() // worker's error frame, then EOF
	}()
	err := Work(context.Background(), ln.Addr().String(), 1, WorkerOptions{})
	if err == nil || !strings.Contains(err.Error(), "spec hash mismatch") {
		t.Fatalf("worker accepted a mismatched coordinator: %v", err)
	}
}

// TestShardMalformedFrameReLeased: a worker that takes a lease and then
// sends garbage is dropped, its chunk is re-leased, and the report is
// unchanged.
func TestShardMalformedFrameReLeased(t *testing.T) {
	cfg := testConfig()
	wantCSV, _ := renderRun(t, cfg)
	res, errs := serveWith(t, cfg, Options{RetryBackoff: time.Millisecond},
		worker(2, WorkerOptions{}),
		func(addr string) error {
			fc, _ := rawDial(t, addr, 1)
			defer fc.close()
			if _, err := fc.read(); err != nil { // the lease
				return nil // run may already be over — fine
			}
			// A plausible length prefix followed by garbage: framing
			// accepts it, gob decode must not.
			var buf [16]byte
			binary.BigEndian.PutUint32(buf[:4], 12)
			copy(buf[4:], []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
			fc.c.Write(buf[:])
			fc.read() // wait for the drop
			return nil
		},
	)
	if errs[0] != nil {
		t.Fatalf("honest worker: %v", errs[0])
	}
	gotCSV, _ := renderResult(t, res)
	if gotCSV != wantCSV {
		t.Fatal("report differs after a malformed-frame worker")
	}
}

// TestShardLeaseTimeoutReLeased: a worker that accepts a lease and goes
// silent has it re-leased after the deadline; the run completes on the
// healthy worker with an identical report.
func TestShardLeaseTimeoutReLeased(t *testing.T) {
	cfg := testConfig()
	wantCSV, _ := renderRun(t, cfg)
	stallDropped := make(chan struct{})
	// MaxAttempts has headroom well past the default 3: the stalling
	// worker re-grabs pending chunks as fast as leases expire, so on a
	// loaded box it can legitimately burn several attempts of one chunk
	// before the healthy worker frees up and claims it. The test's
	// subject is re-leasing, not attempt exhaustion (that's
	// TestShardRetriesExhausted).
	res, errs := serveWith(t, cfg,
		Options{LeaseTimeout: 200 * time.Millisecond, RetryBackoff: time.Millisecond, MaxAttempts: 64},
		worker(2, WorkerOptions{}),
		func(addr string) error {
			fc, _ := rawDial(t, addr, 1)
			defer fc.close()
			// Accept leases, never answer. The coordinator closes the
			// conn at shutdown; read until then.
			for {
				if _, err := fc.read(); err != nil {
					close(stallDropped)
					return nil
				}
			}
		},
	)
	if errs[0] != nil {
		t.Fatalf("healthy worker: %v", errs[0])
	}
	<-stallDropped
	gotCSV, _ := renderResult(t, res)
	if gotCSV != wantCSV {
		t.Fatal("report differs after lease-timeout re-leasing")
	}
}

// TestShardRetriesExhausted: when a chunk's lease attempts are spent,
// the run fails hard with a descriptive error instead of spinning.
func TestShardRetriesExhausted(t *testing.T) {
	ln := listen(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		fc, _ := rawDial(t, ln.Addr().String(), 1)
		defer fc.close()
		for { // hold leases silently until the coordinator gives up
			if _, err := fc.read(); err != nil {
				return
			}
		}
	}()
	_, err := Serve(context.Background(), ln, testConfig(),
		Options{LeaseTimeout: 50 * time.Millisecond, MaxAttempts: 1, RetryBackoff: time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "lease attempts") {
		t.Fatalf("exhausted retries did not fail hard: %v", err)
	}
	<-done
}

// chunk0Refuser is a worker that computes every chunk except chunk 0.
// It holds chunk 0's lease silently while answering the rest, then
// kills its connection and reconnects; the second grant dies instantly.
// Exhaustion is therefore driven entirely by disconnects — no reliance
// on lease-expiry timing, so the test is exact under -race on slow
// machines. Returns nil when the coordinator stops serving.
func chunk0Refuser(addr string) error {
	computed := 0
	firstConn := true
	for {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil // listener closed: the run is over
		}
		fc := newFrameConn(conn)
		jobFrame, err := fc.read()
		if err != nil || jobFrame.Type != msgJob {
			fc.close()
			return nil
		}
		job, err := fleet.NewJob(jobFrame.Job.Spec.Exec(fleet.ExecOptions{Jobs: 1}))
		if err != nil {
			fc.close()
			return err
		}
		n := job.NumChunks()
		if err := fc.write(&frame{Type: msgHello, Hello: helloMsg{SpecHash: job.SpecHash(), Capacity: 2}}); err != nil {
			fc.close()
			return nil
		}
		ws := job.NewScratch()
		dead := false
		for !dead {
			f, err := fc.read()
			if err != nil || f.Type != msgLease {
				fc.close()
				return nil // done/error farewell or coordinator close
			}
			if f.Lease.Chunk == 0 {
				if !firstConn {
					dead = true // second grant: die at once, exhausting it
				}
				continue // first grant: hold silently, keep serving others
			}
			cp, err := job.RunChunk(context.Background(), f.Lease.Chunk, ws)
			if err != nil {
				fc.close()
				return err
			}
			if err := fc.write(&frame{Type: msgResult, Result: *cp}); err != nil {
				fc.close()
				return nil
			}
			computed++
			if computed == n-1 {
				dead = true // everything but chunk 0 done: die holding it
			}
		}
		fc.close() // abrupt: the held chunk-0 lease is released for re-lease
		firstConn = false
	}
}

// TestShardCheckpointResumeRetriesOnlyFailed is the coordinator-side
// resume regression: a run whose worker refuses chunk 0 fails with a
// ChunkError naming exactly that chunk, the other chunks having been
// checkpointed through OnChunk on the way down — and a second run
// pre-seeded with those checkpoints re-leases only chunk 0 and folds a
// report byte-identical to the unfailed run.
func TestShardCheckpointResumeRetriesOnlyFailed(t *testing.T) {
	cfg := testConfig()
	wantCSV, _ := renderRun(t, cfg)
	job, err := fleet.NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := job.NumChunks()

	// First run: checkpoint every completed chunk; chunk 0 exhausts.
	var mu sync.Mutex
	checkpointed := map[int]*fleet.ChunkPartial{}
	var workerWG sync.WaitGroup
	workerErr := error(nil)
	ln := listen(t)
	workerWG.Add(1)
	go func() {
		defer workerWG.Done()
		workerErr = chunk0Refuser(ln.Addr().String())
	}()
	_, err = Serve(context.Background(), ln, cfg, Options{
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		OnChunk: func(cp *fleet.ChunkPartial) error {
			mu.Lock()
			checkpointed[cp.Chunk] = cp
			mu.Unlock()
			return nil
		},
	})
	workerWG.Wait()
	if workerErr != nil {
		t.Fatalf("refusing worker: %v", workerErr)
	}
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("failed run returned %v (%T), want *ChunkError", err, err)
	}
	if len(ce.Failed) != 1 || ce.Failed[0] != 0 {
		t.Fatalf("ChunkError.Failed = %v, want [0]", ce.Failed)
	}
	if !strings.Contains(err.Error(), "lease attempts") {
		t.Fatalf("ChunkError message %q lost the lease-attempts marker", err)
	}
	if len(checkpointed) != n-1 {
		t.Fatalf("failed run checkpointed %d chunks, want %d (all but the refused one)", len(checkpointed), n-1)
	}
	if _, ok := checkpointed[0]; ok {
		t.Fatal("the refused chunk was checkpointed")
	}

	// Resume: pre-seed the survivors; only chunk 0 should be computed.
	completed := make([]*fleet.ChunkPartial, 0, n-1)
	for _, cp := range checkpointed {
		completed = append(completed, cp)
	}
	var recomputed []int
	res, errs := serveWith(t, cfg, Options{
		RetryBackoff: time.Millisecond,
		Completed:    completed,
		OnChunk: func(cp *fleet.ChunkPartial) error {
			mu.Lock()
			recomputed = append(recomputed, cp.Chunk)
			mu.Unlock()
			return nil
		},
	}, worker(2, WorkerOptions{}))
	if errs[0] != nil {
		t.Fatalf("resume worker: %v", errs[0])
	}
	if len(recomputed) != 1 || recomputed[0] != 0 {
		t.Fatalf("resume recomputed chunks %v, want exactly [0]", recomputed)
	}
	gotCSV, _ := renderResult(t, res)
	if gotCSV != wantCSV {
		t.Fatal("resumed report differs from the unfailed run")
	}
}

// TestShardCompletedAllChunks: a run pre-seeded with every chunk folds
// and returns without leasing anything — no workers ever connect.
func TestShardCompletedAllChunks(t *testing.T) {
	cfg := testConfig()
	wantCSV, _ := renderRun(t, cfg)
	job, err := fleet.NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	completed := make([]*fleet.ChunkPartial, job.NumChunks())
	for ci := range completed {
		cp, err := job.RunChunk(context.Background(), ci, nil)
		if err != nil {
			t.Fatal(err)
		}
		completed[ci] = cp
	}
	res, err := Serve(context.Background(), listen(t), cfg, Options{Completed: completed})
	if err != nil {
		t.Fatal(err)
	}
	gotCSV, _ := renderResult(t, res)
	if gotCSV != wantCSV {
		t.Fatal("fully pre-seeded report differs from fleet.Run")
	}
}

// TestShardCompletedValidation: partials that cannot belong to the job
// are rejected before the listener accepts any worker.
func TestShardCompletedValidation(t *testing.T) {
	cfg := testConfig()
	job, err := fleet.NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := job.RunChunk(context.Background(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	outOfRange := *cp
	outOfRange.Chunk = job.NumChunks()
	if _, err := Serve(context.Background(), listen(t), cfg, Options{Completed: []*fleet.ChunkPartial{&outOfRange}}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range completed chunk accepted: %v", err)
	}

	wrongGrid := *cp
	wrongGrid.Cohorts = wrongGrid.Cohorts[:1]
	if _, err := Serve(context.Background(), listen(t), cfg, Options{Completed: []*fleet.ChunkPartial{&wrongGrid}}); err == nil || !strings.Contains(err.Error(), "cohorts") {
		t.Fatalf("wrong-grid completed chunk accepted: %v", err)
	}
}

// TestShardOnChunkErrorFailsRun: a checkpoint hook error is a hard
// failure, not a warning — losing durability silently would defeat the
// resume guarantee.
func TestShardOnChunkErrorFailsRun(t *testing.T) {
	ln := listen(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		Work(context.Background(), ln.Addr().String(), 2, WorkerOptions{})
	}()
	_, err := Serve(context.Background(), ln, testConfig(), Options{
		OnChunk: func(cp *fleet.ChunkPartial) error {
			return fmt.Errorf("disk full")
		},
	})
	wg.Wait()
	if err == nil || !strings.Contains(err.Error(), "checkpointing chunk") || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("OnChunk failure did not fail the run: %v", err)
	}
}

// TestShardServeCanceled: ctx cancellation aborts a run with no workers.
func TestShardServeCanceled(t *testing.T) {
	ln := listen(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Serve(ctx, ln, testConfig(), Options{}); err == nil {
		t.Fatal("canceled Serve returned a result")
	}
}

// TestShardWorkCanceled: ctx cancellation unsticks a worker waiting on
// a silent coordinator.
func TestShardWorkCanceled(t *testing.T) {
	ln := listen(t)
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			defer conn.Close()
			time.Sleep(5 * time.Second) // never send the job
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := Work(ctx, ln.Addr().String(), 1, WorkerOptions{}); err == nil {
		t.Fatal("canceled Work returned nil")
	}
}

// TestShardBadConfig: Serve validates the fleet config before
// listening-side work begins.
func TestShardBadConfig(t *testing.T) {
	ln := listen(t)
	defer ln.Close()
	if _, err := Serve(context.Background(), ln, fleet.Config{N: -1}, Options{}); err == nil {
		t.Fatal("negative N accepted")
	}
	if _, err := Serve(context.Background(), ln, fleet.Config{N: 1, Scale: 2}, Options{}); err == nil {
		t.Fatal("bad scale accepted")
	}
}

// TestFrameRoundTrip pins the framing layer: encode → decode is exact,
// oversized and zero-length frames are rejected at the prefix.
func TestFrameRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	in := &frame{Type: msgLease, Lease: leaseMsg{Chunk: 42, TTL: 3 * time.Second}}
	go func() {
		newFrameConn(client).write(in)
	}()
	out, err := newFrameConn(server).read()
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != msgLease || out.Lease != in.Lease {
		t.Fatalf("round trip got %+v, want %+v", out, in)
	}

	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
		client.Write(hdr[:])
	}()
	if _, err := newFrameConn(server).read(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("oversized frame accepted: %v", err)
	}

	go func() {
		client.Write([]byte{0, 0, 0, 0})
	}()
	if _, err := newFrameConn(server).read(); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

// TestShardDialRetry: a worker started before the coordinator listens
// connects once the listener appears.
func TestShardDialRetry(t *testing.T) {
	// Reserve an address, then free it so the first dials are refused.
	ln := listen(t)
	addr := ln.Addr().String()
	ln.Close()

	cfg := testConfig()
	wantCSV, _ := renderRun(t, cfg)
	var res *fleet.Result
	var serveErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(200 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			serveErr = err
			return
		}
		res, serveErr = Serve(context.Background(), ln2, cfg, Options{})
	}()
	if err := Work(context.Background(), addr, 2, WorkerOptions{DialRetry: 5 * time.Second}); err != nil {
		t.Fatalf("worker with dial retry: %v", err)
	}
	<-done
	if serveErr != nil {
		t.Fatalf("Serve: %v", serveErr)
	}
	gotCSV, _ := renderResult(t, res)
	if gotCSV != wantCSV {
		t.Fatal("report differs via dial-retry worker")
	}
}
