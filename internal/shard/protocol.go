// Package shard distributes a fleet run across worker processes: a
// coordinator partitions the run into the same fixed-size device-index
// chunks the in-process engine uses (fleet.Job), leases chunks to
// workers over TCP, and folds the returned partials in chunk-index
// order — so the report is byte-identical to a single-process run at
// any worker count, topology, or failure schedule.
//
// Wire format: length-prefixed frames (4-byte big-endian length, then a
// self-contained gob stream encoding one frame struct). Each frame is
// encoded and decoded independently, so a corrupt frame is detected at
// its own boundary instead of silently poisoning a long-lived stream,
// and the length prefix bounds memory before a byte of the body is
// trusted.
//
// Failure model: leases carry deadlines. A worker that disconnects,
// lets a lease expire, or sends a malformed frame has its outstanding
// chunks re-leased to surviving workers (bounded attempts with backoff,
// then a hard error). Re-leasing can double-run a chunk; that is safe
// because a chunk's partial is a pure function of (Spec, chunk index) —
// duplicate results are bit-identical and the first one wins. Workers
// validate the job's SpecHash before accepting work, so a mismatched
// binary (different app tables, grid order, or trace generators) fails
// the handshake instead of folding divergent partials into the report.
package shard

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"capybara/internal/fleet"
)

const (
	// protoVersion gates the frame schema; coordinator and worker must
	// match exactly.
	protoVersion = 1
	// maxFrame bounds a frame body before it is read: a 10k-cohort
	// partial is well under 1 MiB, so anything near this limit is a
	// corrupt length prefix, not data.
	maxFrame = 16 << 20
	// handshakeTimeout bounds how long either side waits for the
	// job/hello exchange — a peer that connects and goes silent must
	// not pin a handler goroutine forever.
	handshakeTimeout = 10 * time.Second
)

// msgType discriminates frames. Field names in the frame struct mirror
// these; only the field matching Type is meaningful.
type msgType uint8

const (
	// msgJob (coordinator → worker): the job spec and its hash, sent
	// immediately on connect.
	msgJob msgType = iota + 1
	// msgHello (worker → coordinator): the worker's own hash of the
	// spec plus how many leases it can hold concurrently.
	msgHello
	// msgLease (coordinator → worker): one chunk to run, with the
	// lease's time-to-live for the worker's information (the
	// coordinator enforces the deadline on its own clock).
	msgLease
	// msgResult (worker → coordinator): one chunk's partial.
	msgResult
	// msgDone (coordinator → worker): no more work; exit cleanly.
	msgDone
	// msgError (either direction): fatal condition, human-readable.
	msgError
)

func (t msgType) String() string {
	switch t {
	case msgJob:
		return "job"
	case msgHello:
		return "hello"
	case msgLease:
		return "lease"
	case msgResult:
		return "result"
	case msgDone:
		return "done"
	case msgError:
		return "error"
	default:
		return fmt.Sprintf("msgType(%d)", uint8(t))
	}
}

// frame is the single wire message. Sub-messages are value fields: gob
// omits zero values, so an unused field costs nothing on the wire, and
// there are no nil-pointer cases to validate after decode.
type frame struct {
	Type   msgType
	Job    jobMsg
	Hello  helloMsg
	Lease  leaseMsg
	Result fleet.ChunkPartial
	Error  string
}

type jobMsg struct {
	Proto    int
	Spec     fleet.Spec
	SpecHash string
}

type helloMsg struct {
	SpecHash string
	Capacity int
}

type leaseMsg struct {
	Chunk int
	TTL   time.Duration
}

// frameConn wraps a connection with framed gob encoding. Reads are
// single-goroutine (the owner's read loop); writes are serialized by a
// mutex because leases (feeder goroutine) and errors (read loop) can
// race on the same connection. The write buffer is reused across
// frames — one encoder buffer per connection, not one per message.
type frameConn struct {
	c  net.Conn
	rd *bytesReader

	mu  sync.Mutex
	buf bytes.Buffer
}

// bytesReader is a small adapter holding the read scratch so body
// buffers are reused across frames too.
type bytesReader struct {
	r    io.Reader
	body []byte
}

func newFrameConn(c net.Conn) *frameConn {
	return &frameConn{c: c, rd: &bytesReader{r: c}}
}

// write frames and sends f. Safe for concurrent use.
func (fc *frameConn) write(f *frame) error {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.buf.Reset()
	fc.buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&fc.buf).Encode(f); err != nil {
		return fmt.Errorf("shard: encode %v frame: %w", f.Type, err)
	}
	b := fc.buf.Bytes()
	body := len(b) - 4
	if body > maxFrame {
		return fmt.Errorf("shard: %v frame of %d bytes exceeds limit %d", f.Type, body, maxFrame)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(body))
	_, err := fc.c.Write(b)
	return err
}

// read decodes the next frame. Not safe for concurrent use; only the
// connection's owning read loop calls it.
func (fc *frameConn) read() (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fc.rd.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("shard: frame length %d out of range", n)
	}
	if cap(fc.rd.body) < int(n) {
		fc.rd.body = make([]byte, n)
	}
	body := fc.rd.body[:n]
	if _, err := io.ReadFull(fc.rd.r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return nil, fmt.Errorf("shard: malformed frame: %w", err)
	}
	if f.Type < msgJob || f.Type > msgError {
		return nil, fmt.Errorf("shard: malformed frame: unknown type %d", f.Type)
	}
	return &f, nil
}

func (fc *frameConn) close() error { return fc.c.Close() }

// setDeadline bounds the next read/write (zero clears).
func (fc *frameConn) setDeadline(t time.Time) { fc.c.SetDeadline(t) }
