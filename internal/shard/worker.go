package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"capybara/internal/fleet"
)

// WorkerOptions carries a worker's local execution knobs. None of them
// affect a byte of the report — the canonical fields arrive in the job
// spec from the coordinator — so heterogeneous workers (different
// parallelism, cache sizes, memo on/off) are free to mix in one run.
type WorkerOptions struct {
	// NoMemo disables charge-solve memoization on this worker.
	NoMemo bool
	// CacheSize bounds this worker's memo caches (0 = default).
	CacheSize int
	// NoRecycle builds every device fresh on this worker.
	NoRecycle bool
	// Batch is this worker's device-op replay width cap (fleet
	// Config.Batch: < 0 scalar, 0 unlimited, >= 1 cap). Like the other
	// knobs it never changes a byte of the report.
	Batch int
	// NoVector disables the batch path's lockstep cursor on this
	// worker (fleet Config.NoVector).
	NoVector bool
	// NoFuse disables fused task-engine stepping on this worker (fleet
	// Config.NoFuse).
	NoFuse bool
	// NoCohortSpin disables cohort-shared fixed-point spins on this
	// worker (fleet Config.NoCohortSpin).
	NoCohortSpin bool
	// NoPhaseKeys disables phase-keyed tapes and op-cache entries on
	// this worker (fleet Config.NoPhaseKeys).
	NoPhaseKeys bool
	// BypassAfter/BypassBelow tune this worker's op-cache probation
	// heuristic (fleet Config.BypassAfter/BypassBelow; 0 = defaults).
	BypassAfter uint64
	BypassBelow float64
	// DialRetry keeps retrying the initial connection for this long
	// (0 = fail on the first refused dial). It lets workers start
	// before the coordinator is listening — the usual two-terminal and
	// scripted bring-up order is not deterministic.
	DialRetry time.Duration

	// dieAfterResults, when positive, abruptly closes the connection
	// after sending that many results — the test hook that simulates a
	// worker crashing mid-run at a deterministic point.
	dieAfterResults int
}

// Work runs the worker side of a sharded fleet: dial the coordinator,
// validate the job spec hash against what this binary derives from the
// spec, then lease chunks, run them with `jobs`-way local parallelism
// (<= 0 means GOMAXPROCS), and stream the partials back. It returns nil
// when the coordinator signals completion, and an error on protocol
// failure, spec mismatch, or ctx cancellation.
func Work(ctx context.Context, addr string, jobs int, opts WorkerOptions) error {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	conn, err := dial(ctx, addr, opts.DialRetry)
	if err != nil {
		return err
	}
	defer conn.Close()
	// ctx cancellation unblocks every pending read/write by killing the
	// connection.
	stopCtx := context.AfterFunc(ctx, func() { conn.Close() })
	defer stopCtx()
	fc := newFrameConn(conn)

	// Handshake: receive the job, rebuild it locally, and refuse to
	// work unless our independently computed spec hash matches the
	// coordinator's — mismatched binaries must fail fast, not fold
	// divergent partials.
	fc.setDeadline(time.Now().Add(handshakeTimeout))
	f, err := fc.read()
	if err != nil {
		return fmt.Errorf("shard: reading job spec: %w", wrapCtx(ctx, err))
	}
	if f.Type != msgJob {
		return fmt.Errorf("shard: expected job frame, got %v", f.Type)
	}
	if f.Job.Proto != protoVersion {
		return fmt.Errorf("shard: protocol version mismatch: coordinator %d, worker %d", f.Job.Proto, protoVersion)
	}
	job, err := fleet.NewJob(f.Job.Spec.Exec(fleet.ExecOptions{
		Jobs:         jobs,
		NoMemo:       opts.NoMemo,
		CacheSize:    opts.CacheSize,
		NoRecycle:    opts.NoRecycle,
		Batch:        opts.Batch,
		NoVector:     opts.NoVector,
		NoFuse:       opts.NoFuse,
		NoCohortSpin: opts.NoCohortSpin,
		NoPhaseKeys:  opts.NoPhaseKeys,
		BypassAfter:  opts.BypassAfter,
		BypassBelow:  opts.BypassBelow,
	}))
	if err != nil {
		fc.write(&frame{Type: msgError, Error: err.Error()})
		return fmt.Errorf("shard: bad job spec: %w", err)
	}
	if job.SpecHash() != f.Job.SpecHash {
		err := fmt.Errorf("shard: spec hash mismatch: coordinator %s, worker %s (mismatched binaries?)",
			f.Job.SpecHash, job.SpecHash())
		fc.write(&frame{Type: msgError, Error: err.Error()})
		return err
	}
	if err := fc.write(&frame{Type: msgHello, Hello: helloMsg{SpecHash: job.SpecHash(), Capacity: jobs}}); err != nil {
		return fmt.Errorf("shard: sending hello: %w", wrapCtx(ctx, err))
	}
	fc.setDeadline(time.Time{})

	// Local pipeline: the read loop feeds leases to `jobs` runner
	// goroutines, each owning one recycled Scratch; a writer goroutine
	// serializes results back onto the connection. `dead` tears the
	// pipeline down from any side without anyone blocking on a channel
	// whose consumer is gone.
	leases := make(chan int, jobs)
	results := make(chan *fleet.ChunkPartial)
	dead := make(chan struct{})
	errs := make(chan error, jobs+1) // first failure wins; others drop
	var once sync.Once
	closeLeases := func() { once.Do(func() { close(leases) }) }
	defer closeLeases()
	var stopOnce sync.Once
	stopPipeline := func() { stopOnce.Do(func() { close(dead) }) }
	defer stopPipeline()

	var runners sync.WaitGroup
	for w := 0; w < jobs; w++ {
		runners.Add(1)
		go func() {
			defer runners.Done()
			ws := job.NewScratch()
			for ci := range leases {
				cp, err := job.RunChunk(ctx, ci, ws)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					// A simulation error is fatal for this worker: tell
					// the coordinator (best effort) and kill the
					// connection so the read loop unwinds.
					fc.write(&frame{Type: msgError, Error: fmt.Sprintf("chunk %d: %v", ci, err)})
					fc.close()
					return
				}
				select {
				case results <- cp:
				case <-dead:
					return
				}
			}
		}()
	}
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		sent := 0
		for {
			select {
			case cp := <-results:
				if err := fc.write(&frame{Type: msgResult, Result: *cp}); err != nil {
					select {
					case errs <- fmt.Errorf("shard: sending result: %w", err):
					default:
					}
					fc.close()
					return
				}
				sent++
				if opts.dieAfterResults > 0 && sent >= opts.dieAfterResults {
					select {
					case errs <- errDied:
					default:
					}
					fc.close() // simulated crash: vanish mid-protocol
					return
				}
			case <-dead:
				return
			}
		}
	}()

	finish := func(ret error) error {
		closeLeases()
		stopPipeline()
		runners.Wait()
		writer.Wait()
		if ret == nil {
			return nil
		}
		// Prefer the root cause recorded by the pipeline (or ctx) over
		// the read error it provoked.
		select {
		case err := <-errs:
			return err
		default:
		}
		return ret
	}

	for {
		f, err := fc.read()
		if err != nil {
			return finish(fmt.Errorf("shard: connection lost: %w", wrapCtx(ctx, err)))
		}
		switch f.Type {
		case msgLease:
			select {
			case leases <- f.Lease.Chunk:
			case <-dead:
				return finish(errors.New("shard: pipeline failed"))
			}
		case msgDone:
			// The coordinator only signals done once every chunk's
			// result has been received, so the local pipeline is
			// necessarily drained: shut it down and exit cleanly.
			return finish(nil)
		case msgError:
			return finish(fmt.Errorf("shard: coordinator: %s", f.Error))
		default:
			return finish(fmt.Errorf("shard: unexpected %v frame from coordinator", f.Type))
		}
	}
}

// errDied marks the deliberate test-hook crash.
var errDied = errors.New("shard: worker killed by test hook")

// wrapCtx substitutes the context's error for the I/O error it caused.
func wrapCtx(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

// dial connects to the coordinator, retrying refused/unreachable dials
// for up to retry (workers often start before the coordinator listens).
func dial(ctx context.Context, addr string, retry time.Duration) (net.Conn, error) {
	var d net.Dialer
	deadline := time.Now().Add(retry)
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shard: dial %s: %w", addr, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
