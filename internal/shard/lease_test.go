package shard

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"capybara/internal/fleet"
)

// newTestCoordinator builds a coordinator directly (no listener, no
// workers) so lease scheduling can be driven synchronously.
func newTestCoordinator(t *testing.T, opt Options) *coordinator {
	t.Helper()
	job, err := fleet.NewJob(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := &coordinator{
		job:       job,
		opt:       opt.withDefaults(),
		chunks:    make([]chunkState, job.NumChunks()),
		partials:  make([]*fleet.ChunkPartial, job.NumChunks()),
		doneCh:    make(chan struct{}),
		remaining: job.NumChunks(),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// TestRetryDelayClampedMonotone is the regression test for the lease
// backoff overflow: the old `RetryBackoff << (attempts-1)` expression
// overflows time.Duration around attempt 40 with a 100ms base,
// producing a negative delay (backoff silently vanishes) or an
// astronomically-future notBefore (the chunk is never re-leased and the
// run stalls). Walking attempts 1..64 fails against that expression and
// pins the fixed shape: exact doubling until the cap, then flat.
func TestRetryDelayClampedMonotone(t *testing.T) {
	base := 100 * time.Millisecond
	prev := time.Duration(0)
	for attempts := 1; attempts <= 64; attempts++ {
		d := retryDelay(base, attempts)
		if d <= 0 {
			t.Fatalf("retryDelay(%v, %d) = %v, want positive", base, attempts, d)
		}
		if d < prev {
			t.Fatalf("retryDelay(%v, %d) = %v < previous %v, want non-decreasing", base, attempts, d, prev)
		}
		if d > maxRetryBackoff {
			t.Fatalf("retryDelay(%v, %d) = %v, want <= cap %v", base, attempts, d, maxRetryBackoff)
		}
		prev = d
	}
	if got := retryDelay(base, 64); got != maxRetryBackoff {
		t.Fatalf("retryDelay(%v, 64) = %v, want cap %v", base, got, maxRetryBackoff)
	}
	if got, want := retryDelay(base, 3), 400*time.Millisecond; got != want {
		t.Fatalf("retryDelay(%v, 3) = %v, want exact doubling %v", base, got, want)
	}
	// A base at or above the cap is honored, never shortened: the cap
	// bounds growth, not configuration.
	for _, attempts := range []int{1, 7, 64} {
		if got := retryDelay(3*time.Minute, attempts); got != 3*time.Minute {
			t.Fatalf("retryDelay(3m, %d) = %v, want 3m unchanged", attempts, got)
		}
	}
}

// TestRequeueBackoffBounded drives the fix through requeueLocked: a
// chunk on a huge attempt count must land with notBefore in the future
// and within the cap — the pre-fix shift put it in the past or
// centuries ahead.
func TestRequeueBackoffBounded(t *testing.T) {
	c := newTestCoordinator(t, Options{MaxAttempts: 64})
	c.chunks[0] = chunkState{status: chunkLeased, owner: 1, attempts: 45}
	before := time.Now()
	c.mu.Lock()
	c.requeueLocked(0, errors.New("boom"))
	c.mu.Unlock()
	st := c.chunks[0]
	if st.status != chunkPending {
		t.Fatalf("requeued chunk status = %d, want pending", st.status)
	}
	if st.notBefore.Before(before) {
		t.Fatalf("notBefore %v is in the past of %v: backoff vanished", st.notBefore, before)
	}
	if limit := before.Add(maxRetryBackoff + time.Second); st.notBefore.After(limit) {
		t.Fatalf("notBefore %v beyond cap horizon %v: backoff overflowed", st.notBefore, limit)
	}
}

// TestLeaseHonorsBackoffEligibility is the lease-timing property pair:
// nextLease must never grant a chunk before its notBefore, and once the
// backoff elapses the monitor's periodic broadcast must get it
// re-leased within roughly one ticker period (the wakeup path — no
// other event signals backoff expiry).
func TestLeaseHonorsBackoffEligibility(t *testing.T) {
	c := newTestCoordinator(t, Options{LeaseTimeout: 40 * time.Millisecond})
	// Leave only chunk 0 in play so nextLease's scan is deterministic.
	for i := 1; i < len(c.chunks); i++ {
		c.chunks[i].status = chunkDone
	}
	c.remaining = 1
	stop := make(chan struct{})
	defer close(stop)
	go c.monitor(stop)

	// monitor's tick for a 40ms lease timeout is 5ms; see monitor().
	tick := c.opt.LeaseTimeout / 8
	var dead atomic.Bool
	for trial := 0; trial < 5; trial++ {
		backoff := time.Duration(10+8*trial) * time.Millisecond
		eligible := time.Now().Add(backoff)
		c.mu.Lock()
		c.chunks[0] = chunkState{status: chunkPending, notBefore: eligible}
		c.mu.Unlock()
		ci, outcome := c.nextLease(1, &dead)
		granted := time.Now()
		if outcome != leaseGranted || ci != 0 {
			t.Fatalf("trial %d: nextLease = (%d, %d), want (0, granted)", trial, ci, outcome)
		}
		if granted.Before(eligible) {
			t.Fatalf("trial %d: granted at %v, before notBefore %v", trial, granted, eligible)
		}
		// One ticker period plus generous scheduler slack: a broken
		// wakeup path doesn't miss by milliseconds, it blocks until an
		// unrelated broadcast (or forever).
		if limit := eligible.Add(tick + 750*time.Millisecond); granted.After(limit) {
			t.Fatalf("trial %d: granted at %v, want within a tick of %v", trial, granted, eligible)
		}
	}

	// A pending chunk whose backoff has not elapsed must never be
	// granted: with notBefore far in the future, a worker declared dead
	// mid-wait exits without a lease.
	c.mu.Lock()
	c.chunks[0] = chunkState{status: chunkPending, notBefore: time.Now().Add(time.Hour)}
	c.mu.Unlock()
	dead.Store(false)
	time.AfterFunc(30*time.Millisecond, func() { dead.Store(true) })
	if ci, outcome := c.nextLease(1, &dead); outcome != leaseWorkerDead {
		t.Fatalf("nextLease = (%d, %d), want worker-dead: chunk granted %v early",
			ci, outcome, time.Until(c.chunks[0].notBefore))
	}
}
