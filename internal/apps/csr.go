package apps

import (
	"capybara/internal/core"
	"capybara/internal/device"
	"capybara/internal/env"
	"capybara/internal/metrics"
	"capybara/internal/sim"
	"capybara/internal/task"
	"capybara/internal/units"
)

// csrDistanceSamples is the number of back-to-back proximity samples
// CSR collects per magnetic event (§6.1.3: "collect 32 distance
// samples").
const csrDistanceSamples = 32

// NewCSR builds the correlated sensing and report application
// (§6.1.3): the sample task polls the magnetometer for the magnet on
// the pendulum; on a field event the report task collects 32 distance
// samples with the proximity sensor, lights the LED for 250 ms, and
// sends an 8-byte BLE packet — all in one atomic burst.
func NewCSR(variant core.Variant, sched env.Schedule, trace *sim.Trace, scr *Scratch) (*Run, error) {
	rec := scratchRecorder(scr)
	mag := device.Magnetometer()
	prox := device.ProximitySensor()
	led := device.LED()
	radio := device.CC2650()

	// CSR is written in the Chain channel style: the detected event
	// crosses the task boundary in the sample→report channel, report
	// acknowledges through the report→sample channel, and report
	// deduplicates retries through its self-channel.
	sample := &task.Task{
		Name:          "sample",
		PreburstBurst: modeBig,
		PreburstExec:  modeSmall,
		Run: func(c *task.Ctx) task.Next {
			at := c.Sample(mag)
			rec.RecordSample(at)
			c.Compute(4000) // field-change detection
			if ev, ok := sched.ActiveAt(at); ok && c.ChanInOr(0, "last", "report") != uint64(ev.Index)+1 {
				c.ChanOut("report", "pending", uint64(ev.Index)+1)
				c.ChanOutFloat("report", "at", float64(ev.At))
				return "report"
			}
			// "The magnetometer must maintain a consistent sampling
			// frequency to capture field changes over time" (§6.1.3).
			c.Sleep(0.02)
			return "sample"
		},
	}

	report := &task.Task{
		Name:  "report",
		Burst: modeBig,
		Run: func(c *task.Ctx) task.Next {
			idx := c.ChanInOr(0, "pending", "sample")
			done, _ := c.Self("done")
			if idx == 0 || idx == done {
				return "sample"
			}
			times := c.SampleBurst(prox, csrDistanceSamples)
			for range times {
				c.Compute(500) // distance conversion per sample
			}
			c.Sample(led) // 250 ms indicator flash
			c.Transmit(radio, 8)
			rec.RecordReport(metrics.Report{
				EventIndex: int(idx) - 1,
				EventAt:    units.Seconds(c.ChanInFloat(0, "at", "sample")),
				ReportedAt: c.Now(),
				Outcome:    metrics.Correct,
			})
			c.SelfOut("done", idx)
			c.ChanOut("sample", "last", idx)
			return "sample"
		},
	}

	cfg := buildConfig(variant, grcSupply(), csrFixedBank(), csrSmallBank(), csrBigBank(), trace, scr)
	prog := task.MustProgram("sample", sample, report)
	inst, err := core.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	if scr != nil && scr.Fuse != nil {
		// The sample task's steady loop reads the schedule and the
		// report channel and stages nothing — exactly the fusion
		// contract; report steps discard themselves (they stage channel
		// writes and record a report).
		inst.Engine.Fuse = scr.Fuse
		inst.Engine.FuseSched = sched
		inst.Engine.Rec = rec
	}
	return &Run{
		Name:     "CorrSense",
		Variant:  variant,
		Schedule: sched,
		Horizon:  sched.Horizon() + 30,
		Rec:      rec,
		Inst:     inst,
	}, nil
}
