package apps

import (
	"capybara/internal/metrics"
	"capybara/internal/power"
	"capybara/internal/sim"
	"capybara/internal/task"
)

// Scratch bundles the reusable per-run state an application build
// otherwise allocates fresh: the observable recorder (whose sample
// slice grows to tens of thousands of timestamps over a lifecycle —
// the dominant per-device retention in fleet profiles), optional
// trace/event-log buffers, and the charge-solve memo cache.
//
// The fleet engine keeps one Scratch per worker in a sync.Pool and
// calls Reset between devices, so per-device cost is simulation state,
// not construction. Passing nil to the constructors preserves the
// original allocate-fresh behaviour.
//
// Reuse is sound because Reset restores every container to its empty
// state (keeping only backing capacity) and the simulator never reads
// a container before writing it; the determinism golden tests
// (fleet, experiments) run entirely through recycled scratch.
type Scratch struct {
	// Rec records the run's observables. Constructors wire &Rec into
	// the task closures instead of allocating a Recorder.
	Rec metrics.Recorder
	// Trace and Log are recycled buffers for callers that want a
	// voltage trace or device timeline per run; the constructors do not
	// wire them automatically (fleet runs neither — pass &Trace as the
	// trace argument to use it).
	Trace sim.Trace
	Log   sim.EventLog
	// Memo, when non-nil, is attached to the built instance in place of
	// a fresh per-instance cache; nil disables memoization for the
	// instance entirely. Either way results are bit-identical to the
	// uncached solver (see power/memo.go) — only speed changes.
	Memo *power.SegmentCache
	// Ops, when non-nil, attaches the device-op replay cache — the
	// fleet engine's batch execution path (see sim.OpCache). Replays
	// are byte-identical to direct solves for every report-visible
	// quantity; nil leaves the scalar path in effect.
	Ops *sim.OpCache
	// Fuse, when non-nil, attaches the fused task-engine stepper (see
	// task.StepFuser): whole lockstep engine steps recorded once and
	// replayed across the cohort. Builders wire it — together with the
	// schedule and recorder its evidence checks need — into instances
	// whose task bodies satisfy the fusion contract (GRC, CSR; not TA,
	// whose every step stages a durable write).
	Fuse *task.StepFuser
}

// Reset clears the run state for the next device. Backing storage and
// the memo cache survive: stale memo entries can only produce
// bit-identical replays, never wrong results.
func (s *Scratch) Reset() {
	s.Rec.Reset()
	s.Trace.Reset()
	s.Log.Reset()
}

// scratchRecorder returns the recorder an application build should wire
// into its task closures: the scratch's recycled one, or a fresh
// allocation when building without scratch.
func scratchRecorder(s *Scratch) *metrics.Recorder {
	if s != nil {
		return &s.Rec
	}
	return &metrics.Recorder{}
}
