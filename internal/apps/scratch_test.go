package apps

import (
	"reflect"
	"testing"

	"capybara/internal/core"
	"capybara/internal/power"
)

// TestScratchReuseIdentical is the recycling soundness property the
// fleet engine depends on: running every application through one dirty,
// repeatedly-Reset Scratch (with a shared memo cache, like a fleet
// worker) yields exactly the observables of fresh allocation.
func TestScratchReuseIdentical(t *testing.T) {
	scr := &Scratch{Memo: power.NewSegmentCache(0)}
	for round := 0; round < 2; round++ { // round 1 reuses dirty state
		for _, name := range SpecNames() {
			spec, _ := SpecByName(name)
			sched := shortSchedule(spec, 6)
			for _, v := range []core.Variant{core.Fixed, core.CapyR, core.CapyP} {
				fresh := mustRun(t, spec, v, sched)

				scr.Reset()
				run, err := spec.Build(v, sched, nil, scr)
				if err != nil {
					t.Fatalf("%s/%v scratch build: %v", name, v, err)
				}
				if run.Rec != &scr.Rec {
					t.Fatalf("%s/%v: scratch recorder not wired in", name, v)
				}
				if run.Inst.Dev.Sys.Memo != scr.Memo {
					t.Fatalf("%s/%v: scratch memo cache not wired in", name, v)
				}
				if err := run.Execute(); err != nil {
					t.Fatalf("%s/%v scratch execute: %v", name, v, err)
				}

				if got, want := run.Accuracy(), fresh.Accuracy(); got != want {
					t.Errorf("%s/%v round %d: accuracy %+v, fresh %+v", name, v, round, got, want)
				}
				if got, want := run.Rec.Latencies(), fresh.Rec.Latencies(); !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%v round %d: latencies %v, fresh %v", name, v, round, got, want)
				}
				if got, want := run.Rec.Samples(), fresh.Rec.Samples(); !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%v round %d: %d samples vs fresh %d", name, v, round, len(got), len(want))
				}
			}
		}
	}
	if st := scr.Memo.Stats(); st.Hits == 0 {
		t.Error("shared memo cache saw no hits across reused runs")
	}
}

// TestScratchNilMemoDisables checks the other half of the contract:
// a Scratch with no cache builds an instance with memoization off.
func TestScratchNilMemoDisables(t *testing.T) {
	spec, _ := SpecByName("TempAlarm")
	scr := &Scratch{}
	run, err := spec.Build(core.CapyR, shortSchedule(spec, 2), nil, scr)
	if err != nil {
		t.Fatal(err)
	}
	if run.Inst.Dev.Sys.Memo != nil {
		t.Fatal("nil-Memo scratch still attached a cache")
	}
}
