package apps

import (
	"capybara/internal/core"
	"capybara/internal/device"
	"capybara/internal/env"
	"capybara/internal/metrics"
	"capybara/internal/sim"
	"capybara/internal/task"
	"capybara/internal/units"
)

// NewGRC builds the wireless gesture-activated remote control (§6.1.1).
//
// Tasks: sense samples the phototransistor looking for an object above
// the board; on proximity the gesture task activates the APDS-9960 for
// the 250 ms minimum gesture window, decodes the swing direction, and
// broadcasts it in an 8-byte BLE packet.
//
// In the Fast variant gesture recognition and transmission are one
// joined atomic task (larger peak energy, no recharge between them); in
// the Compact variant they are separate tasks on a tighter burst bank,
// so the transmission sometimes pays a recharge.
func NewGRC(variant core.Variant, fast bool, sched env.Schedule, trace *sim.Trace, scr *Scratch) (*Run, error) {
	pend := env.NewPendulum(sched)
	pend.FlakyEvery = 10 // intrinsic APDS decode-failure rate

	rec := scratchRecorder(scr)
	photo := device.Phototransistor()
	apds := device.APDS9960()
	radio := device.CC2650()

	report := func(c *task.Ctx, idx uint64, evAt float64, outcome metrics.Outcome) {
		rec.RecordReport(metrics.Report{
			EventIndex: int(idx),
			EventAt:    units.Seconds(evAt),
			ReportedAt: c.Now(),
			Outcome:    outcome,
		})
	}

	sense := &task.Task{
		Name:          "sense",
		PreburstBurst: modeBig,
		PreburstExec:  modeSmall,
		Run: func(c *task.Ctx) task.Next {
			at := c.Sample(photo)
			rec.RecordSample(at)
			c.Compute(8000) // threshold the analog reading
			if pend.ObjectPresent(at) {
				return "gesture"
			}
			return "sense"
		},
	}

	var tasks []*task.Task
	if fast {
		// GRC-Fast: gesture recognition and packet transmission joined
		// into one atomic burst.
		gesture := &task.Task{
			Name:  "gesture",
			Burst: modeBig,
			Run: func(c *task.Ctx) task.Next {
				start := c.Sample(apds)
				outcome, ev := pend.Sense(start, apds.OpTime)
				switch outcome {
				case env.GestureCorrect:
					c.Transmit(radio, 8)
					report(c, uint64(ev.Index), float64(ev.At), metrics.Correct)
				case env.GestureMisclassified:
					c.Transmit(radio, 8)
					report(c, uint64(ev.Index), float64(ev.At), metrics.Misclassified)
				case env.GestureProximityOnly:
					report(c, uint64(ev.Index), float64(ev.At), metrics.ProximityOnly)
				}
				return "sense"
			},
		}
		tasks = []*task.Task{sense, gesture}
	} else {
		// GRC-Compact: recognition, full-swing observation, and
		// transmission are separate tasks; the decoded gesture crosses
		// the task boundaries in non-volatile channels. Observing the
		// remainder of the swing has data-dependent energy cost, so the
		// burst bank sometimes empties mid-pipeline and the
		// transmission pays a recharge (the paper's 54 %-of-events
		// latency behaviour, §6.3).
		gesture := &task.Task{
			Name:  "gesture",
			Burst: modeBig,
			Run: func(c *task.Ctx) task.Next {
				start := c.Sample(apds)
				outcome, ev := pend.Sense(start, apds.OpTime)
				switch outcome {
				case env.GestureCorrect, env.GestureMisclassified:
					c.SetWord("pending.event", uint64(ev.Index)+1)
					c.SetFloat("pending.at", float64(ev.At))
					c.SetFloat("pending.end", float64(ev.End()))
					correct := uint64(0)
					if outcome == env.GestureCorrect {
						correct = 1
					}
					c.SetWord("pending.correct", correct)
					return "observe"
				case env.GestureProximityOnly:
					report(c, uint64(ev.Index), float64(ev.At), metrics.ProximityOnly)
				}
				return "sense"
			},
		}
		observe := &task.Task{
			Name:  "observe",
			Burst: modeBig,
			Run: func(c *task.Ctx) task.Next {
				// Track the rest of the swing for motion refinement.
				rest := units.Seconds(c.FloatOr("pending.end", 0)) - c.Now()
				if rest > 0 {
					c.Activate(apds, rest)
				}
				return "tx"
			},
		}
		tx := &task.Task{
			Name:  "tx",
			Burst: modeBig,
			Run: func(c *task.Ctx) task.Next {
				idx := c.WordOr("pending.event", 0)
				if idx == 0 {
					return "sense"
				}
				c.Transmit(radio, 8)
				outcome := metrics.Misclassified
				if c.WordOr("pending.correct", 0) == 1 {
					outcome = metrics.Correct
				}
				report(c, idx-1, c.FloatOr("pending.at", 0), outcome)
				c.SetWord("pending.event", 0)
				return "sense"
			},
		}
		tasks = []*task.Task{sense, gesture, observe, tx}
	}

	big := grcFastBigBank()
	if !fast {
		big = grcCompactBigBank()
	}
	cfg := buildConfig(variant, grcSupply(), grcFixedBank(), grcSmallBank(), big, trace, scr)
	prog := task.MustProgram("sense", tasks...)
	inst, err := core.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	if scr != nil && scr.Fuse != nil {
		// Fused stepping: the quiet-range evidence comes from the same
		// schedule the pendulum rig wraps, so a quiet step's environment
		// queries are clock-invariant.
		inst.Engine.Fuse = scr.Fuse
		inst.Engine.FuseSched = sched
		inst.Engine.Rec = rec
	}
	name := "GestureCompact"
	if fast {
		name = "GestureFast"
	}
	return &Run{
		Name:     name,
		Variant:  variant,
		Schedule: sched,
		Horizon:  sched.Horizon() + 30,
		Rec:      rec,
		Inst:     inst,
	}, nil
}
