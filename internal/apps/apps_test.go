package apps

import (
	"math/rand"
	"testing"

	"capybara/internal/core"
	"capybara/internal/env"
	"capybara/internal/metrics"
	"capybara/internal/sim"
	"capybara/internal/units"
)

// shortSchedule builds a reduced Poisson schedule so integration tests
// stay fast while exercising the full pipeline.
func shortSchedule(spec Spec, n int) env.Schedule {
	return env.Poisson(rand.New(rand.NewSource(7)), n, spec.Mean, spec.Window)
}

func mustRun(t *testing.T, spec Spec, v core.Variant, sched env.Schedule) *Run {
	t.Helper()
	run, err := spec.Build(v, sched, nil, nil)
	if err != nil {
		t.Fatalf("%s/%v build: %v", spec.Name, v, err)
	}
	if err := run.Execute(); err != nil {
		t.Fatalf("%s/%v execute: %v", spec.Name, v, err)
	}
	return run
}

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	for _, name := range SpecNames() {
		s, ok := specs[name]
		if !ok {
			t.Fatalf("spec %s missing", name)
		}
		if s.Events <= 0 || s.Mean <= 0 || s.Window <= 0 || s.Build == nil {
			t.Fatalf("spec %s incomplete: %+v", name, s)
		}
	}
	if _, err := SpecByName("TempAlarm"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestAllAppsAllVariantsRun(t *testing.T) {
	for _, name := range SpecNames() {
		spec, _ := SpecByName(name)
		sched := shortSchedule(spec, 8)
		for _, v := range []core.Variant{core.Continuous, core.Fixed, core.CapyR, core.CapyP} {
			run := mustRun(t, spec, v, sched)
			if run.Name != name || run.Variant != v {
				t.Fatalf("run identity wrong: %s/%v", run.Name, run.Variant)
			}
			acc := run.Accuracy()
			if acc.Total != 8 {
				t.Fatalf("%s/%v total = %d", name, v, acc.Total)
			}
		}
	}
}

func TestContinuousDetectsNearlyEverything(t *testing.T) {
	for _, name := range []string{"TempAlarm", "CorrSense"} {
		spec, _ := SpecByName(name)
		run := mustRun(t, spec, core.Continuous, shortSchedule(spec, 10))
		if got := run.Accuracy().FractionCorrect(); got < 0.99 {
			t.Errorf("%s continuous accuracy = %g, want ~1", name, got)
		}
	}
}

func TestCapybaraBeatsFixedAccuracy(t *testing.T) {
	// The headline result (Fig. 8): reconfigurability improves event
	// detection accuracy over a statically-provisioned system.
	for _, name := range []string{"TempAlarm", "GestureFast", "CorrSense"} {
		spec, _ := SpecByName(name)
		sched := env.Poisson(rand.New(rand.NewSource(3)), 20, spec.Mean, spec.Window)
		fixed := mustRun(t, spec, core.Fixed, sched)
		capy := mustRun(t, spec, core.CapyP, sched)
		f, p := fixed.Accuracy().FractionCorrect(), capy.Accuracy().FractionCorrect()
		if p <= f {
			t.Errorf("%s: Capy-P (%.2f) should beat Fixed (%.2f)", name, p, f)
		}
		if p < 1.5*f {
			t.Errorf("%s: Capy-P advantage %.1fx below the paper's 2-4x band", name, p/f)
		}
	}
}

func TestGRCIntractableUnderCapyR(t *testing.T) {
	// §6.2: "Capy-R is not suitable for GRC, because it incurs a
	// charging delay between proximity detection and the gesture
	// recognition task, during which the gesture motion completes".
	spec, _ := SpecByName("GestureFast")
	run := mustRun(t, spec, core.CapyR, shortSchedule(spec, 15))
	if got := run.Accuracy().FractionCorrect(); got > 0.15 {
		t.Fatalf("Capy-R GRC accuracy = %g, want ≈0", got)
	}
}

func TestTACapyRPaysChargeOnCriticalPath(t *testing.T) {
	spec, _ := SpecByName("TempAlarm")
	sched := shortSchedule(spec, 10)
	r := mustRun(t, spec, core.CapyR, sched)
	p := mustRun(t, spec, core.CapyP, sched)
	latR, latP := r.Latency(), p.Latency()
	if latR.Count == 0 || latP.Count == 0 {
		t.Fatal("no latencies recorded")
	}
	// Capy-R recharges the alarm bank on the critical path: its median
	// latency must exceed Capy-P's by an order of magnitude.
	if latR.Median < 5*latP.Median {
		t.Fatalf("Capy-R median %v should dwarf Capy-P median %v", latR.Median, latP.Median)
	}
}

func TestCapyPLatencyNearContinuous(t *testing.T) {
	// Abstract: "maintains response latency within 1.5x of a
	// continuously-powered baseline" — GRC-Fast is the showcase.
	spec, _ := SpecByName("GestureFast")
	sched := shortSchedule(spec, 15)
	cont := mustRun(t, spec, core.Continuous, sched)
	capy := mustRun(t, spec, core.CapyP, sched)
	lc, lp := cont.Latency(), capy.Latency()
	if lc.Count == 0 || lp.Count == 0 {
		t.Fatal("no latencies recorded")
	}
	if float64(lp.Median) > 2.5*float64(lc.Median) {
		t.Fatalf("Capy-P median latency %v too far above continuous %v", lp.Median, lc.Median)
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	spec, _ := SpecByName("TempAlarm")
	sched := shortSchedule(spec, 6)
	a := mustRun(t, spec, core.CapyP, sched)
	b := mustRun(t, spec, core.CapyP, sched)
	if a.Accuracy() != b.Accuracy() {
		t.Fatalf("accuracy differs across identical runs: %v vs %v", a.Accuracy(), b.Accuracy())
	}
	la, lb := a.Latency(), b.Latency()
	if la != lb {
		t.Fatalf("latency differs across identical runs: %v vs %v", la, lb)
	}
	if len(a.Rec.Samples()) != len(b.Rec.Samples()) {
		t.Fatal("sample counts differ across identical runs")
	}
}

func TestGapAnalysisShapes(t *testing.T) {
	// Fig. 11's qualitative claim: the fixed system's meaningful
	// inter-sample gaps are long; Capybara's are short.
	spec, _ := SpecByName("TempAlarm")
	sched := shortSchedule(spec, 8)
	fixed := mustRun(t, spec, core.Fixed, sched)
	capy := mustRun(t, spec, core.CapyP, sched)

	meaningful := func(gaps []metrics.Gap) (n int, mean units.Seconds) {
		var sum units.Seconds
		for _, g := range gaps {
			if g.Class != metrics.BackToBack {
				n++
				sum += g.Duration
			}
		}
		if n > 0 {
			mean = sum / units.Seconds(n)
		}
		return n, mean
	}
	nf, mf := meaningful(fixed.Gaps())
	nc, mc := meaningful(capy.Gaps())
	if nf == 0 || nc == 0 {
		t.Fatal("no meaningful gaps recorded")
	}
	if mf < 5*mc {
		t.Fatalf("fixed mean gap %v should dwarf Capybara's %v", mf, mc)
	}
	if len(fixed.EventWindows()) != 8 {
		t.Fatalf("event windows = %d", len(fixed.EventWindows()))
	}
}

func TestTraceCapture(t *testing.T) {
	spec, _ := SpecByName("TempAlarm")
	tr := &sim.Trace{MinInterval: 1}
	run, err := spec.Build(core.Fixed, shortSchedule(spec, 4), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Execute(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) < 10 {
		t.Fatalf("trace has only %d samples", len(tr.Samples))
	}
}
