// Package apps implements the paper's three evaluation applications
// (§6.1) on the Capybara software interface:
//
//   - GRC — the wireless gesture-activated remote control, in its Fast
//     (joined gesture+transmit task) and Compact (separate tasks)
//     variants;
//   - TA — the temperature monitor with alarm;
//   - CSR — correlated sensing and report (magnetometer + proximity +
//     LED + radio).
//
// Each application builds against any of the four power-system variants
// (Continuous, Fixed, Capy-R, Capy-P) with the bank provisioning the
// paper describes, and records detection/latency observables into a
// metrics.Recorder.
package apps

import (
	"fmt"

	"capybara/internal/core"
	"capybara/internal/device"
	"capybara/internal/env"
	"capybara/internal/harvest"
	"capybara/internal/metrics"
	"capybara/internal/reservoir"
	"capybara/internal/sim"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// Run bundles a built application instance with its environment,
// schedule, and recorder, ready to execute.
type Run struct {
	Name     string
	Variant  core.Variant
	Schedule env.Schedule
	Horizon  units.Seconds
	Rec      *metrics.Recorder
	Inst     *core.Instance
}

// Execute runs the application to its horizon.
func (r *Run) Execute() error { return r.Inst.Run(r.Horizon) }

// Accuracy computes the run's event-detection accuracy.
func (r *Run) Accuracy() metrics.Accuracy {
	return r.Rec.ComputeAccuracy(len(r.Schedule.Events))
}

// Latency summarizes the run's event-to-report latencies.
func (r *Run) Latency() metrics.Summary {
	return metrics.Summarize(r.Rec.Latencies())
}

// EventWindows converts the schedule for gap analysis.
func (r *Run) EventWindows() []metrics.Window {
	out := make([]metrics.Window, 0, len(r.Schedule.Events))
	for _, e := range r.Schedule.Events {
		out = append(out, metrics.Window{Start: e.At, End: e.End()})
	}
	return out
}

// Gaps classifies the run's inter-sample intervals (Fig. 11).
func (r *Run) Gaps() []metrics.Gap {
	return metrics.AnalyzeGaps(r.Rec.Samples(), r.EventWindows())
}

// Bank factories for the paper's provisioning (§6.1). Banks must be
// constructed fresh per instance, so these are functions.

// grcSmallBank is the low-energy-mode bank both gesture variants use:
// "400 uF ceramic + 330 uF tantalum".
func grcSmallBank() *storage.Bank {
	return storage.MustBank("grc-small",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 330*units.MicroFarad))
}

// grcFastBigBank: GRC-Fast's burst bank. Fast trades device size for
// responsiveness: its joined gesture+transmit task needs the sum of
// both atomicity requirements in one bank, 67.5 mF.
func grcFastBigBank() *storage.Bank {
	return storage.MustBank("grc-big", storage.GroupOf(storage.EDLC, 9))
}

// grcCompactBigBank: GRC-Compact's burst bank. Compact keeps the
// device small (45 mF): each pipeline task fits individually, but the
// gesture-observe-transmit sequence often exceeds the bank without an
// intervening recharge — the latency trade-off of §6.3.
func grcCompactBigBank() *storage.Bank {
	return storage.MustBank("grc-big", storage.GroupOf(storage.EDLC, 6))
}

// grcFixedBank: "a capacity of 400 uF ceramic + 330 uF tantalum +
// 67.5 mF EDLC is provisioned to meet the maximum atomicity
// requirement".
func grcFixedBank() *storage.Bank {
	return storage.MustBank("grc-fixed",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 330*units.MicroFarad),
		storage.GroupOf(storage.EDLC, 9))
}

// taSmallBank: "300 uF ceramic + 100 uF tantalum" for the sampling mode.
func taSmallBank() *storage.Bank {
	return storage.MustBank("ta-small",
		storage.GroupFor(storage.CeramicX5R, 300*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 100*units.MicroFarad))
}

// taBigBank: "1000 uF tantalum + 7.5 mF EDLC" for the alarm packet.
func taBigBank() *storage.Bank {
	return storage.MustBank("ta-big",
		storage.GroupFor(storage.Tantalum, 1000*units.MicroFarad),
		storage.GroupOf(storage.EDLC, 1))
}

// taFixedBank: "a single bank of 300 uF ceramic + 1100 uF tantalum +
// 7.5 mF EDLC capacity".
func taFixedBank() *storage.Bank {
	return storage.MustBank("ta-fixed",
		storage.GroupFor(storage.CeramicX5R, 300*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 1100*units.MicroFarad),
		storage.GroupOf(storage.EDLC, 1))
}

// csrSmallBank: "a 400 uF ceramic + 330 uF tantalum bank for the
// magnetometer".
func csrSmallBank() *storage.Bank {
	return storage.MustBank("csr-small",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 330*units.MicroFarad))
}

// csrBigBank: "the large bank from GRC-Fast for the other mode" (45 mF).
func csrBigBank() *storage.Bank {
	return storage.MustBank("csr-big", storage.GroupOf(storage.EDLC, 6))
}

// csrFixedBank: "the same bank as GRC-Fast" for the fixed system.
func csrFixedBank() *storage.Bank { return grcFixedBank() }

// grcSupply is the GRC/CSR harvester: "a voltage regulator and an
// attenuating resistor that supplies at most 10 mW". The attenuating
// resistor holds the deliverable power well below the 10 mW ceiling at
// the operating point; 2 mW reproduces the paper's charge/discharge
// asymmetry.
func grcSupply() harvest.Source {
	return harvest.RegulatedSupply{Max: 2.5 * units.MilliWatt, V: 3.0}
}

// taSupply is the TA harvester: "two TrisolX solar panels, illuminated
// with a 20 W halogen bulb with brightness controlled by PWM to 42 %".
// The bulb's thermal mass averages the PWM chopping, so the panels see
// a constant 42 % irradiance.
func taSupply() harvest.Source {
	return harvest.SolarPanel{
		PeakPower:          0.19 * units.MilliWatt,
		OpenCircuitVoltage: 2.5,
		Series:             2,
		Light:              harvest.ConstantTrace(0.42),
	}
}

// modeSmall/modeBig are the two energy modes every application uses.
const (
	modeSmall = "small"
	modeBig   = "big"
)

// buildConfig assembles the per-variant platform configuration. Fixed
// and Continuous use a single statically-provisioned bank (modes map to
// the base bank); the Capybara variants get a switched big bank.
//
// When a Scratch is supplied the instance uses exactly scr.Memo as its
// charge-solve cache (nil disables memoization): the scratch owner —
// typically a fleet worker sharing one cache across its devices —
// controls caching fully, and the default per-instance cache is never
// allocated.
func buildConfig(variant core.Variant, src harvest.Source,
	fixed, small, big *storage.Bank, trace *sim.Trace, scr *Scratch) core.Config {
	cfg := core.Config{
		Variant:    variant,
		Source:     src,
		MCU:        device.MSP430FR5969(),
		SwitchKind: reservoir.NormallyOpen,
		Trace:      trace,
	}
	if scr != nil {
		if scr.Memo != nil {
			cfg.Memo = scr.Memo
		} else {
			cfg.NoMemo = true
		}
		cfg.Ops = scr.Ops
	}
	switch variant {
	case core.Continuous, core.Fixed:
		cfg.Base = fixed
		cfg.Modes = []core.Mode{
			{Name: modeSmall, Mask: 0},
			{Name: modeBig, Mask: 0},
		}
	default:
		cfg.Base = small
		cfg.Switched = []*storage.Bank{big}
		cfg.Modes = []core.Mode{
			{Name: modeSmall, Mask: 0b001},
			{Name: modeBig, Mask: 0b010},
		}
	}
	return cfg
}

// Spec describes an application's default experiment parameters, used
// by the experiments package and the CLIs.
type Spec struct {
	Name string
	// Events and Mean define the default Poisson schedule (§6.2:
	// "The event sequence for TA contains 50 events over 120 minutes,
	// and for GRC and CSR — 80 events over 42 minutes").
	Events int
	Mean   units.Seconds
	// Window is how long each event remains observable.
	Window units.Seconds
	// Horizon is the experiment duration.
	Horizon units.Seconds
	// Build constructs a run for the variant and schedule. A non-nil
	// scr recycles the run's state containers and memo cache (see
	// Scratch); nil allocates fresh.
	Build func(v core.Variant, sched env.Schedule, trace *sim.Trace, scr *Scratch) (*Run, error)
}

// Specs returns all four application specs keyed by name.
func Specs() map[string]Spec {
	specs := map[string]Spec{
		"TempAlarm": {
			Name: "TempAlarm", Events: 50, Mean: 144, Window: 60, Horizon: 120 * units.Minute,
			Build: NewTA,
		},
		"GestureFast": {
			Name: "GestureFast", Events: 80, Mean: 31.5, Window: 1, Horizon: 42 * units.Minute,
			Build: func(v core.Variant, s env.Schedule, tr *sim.Trace, scr *Scratch) (*Run, error) {
				return NewGRC(v, true, s, tr, scr)
			},
		},
		"GestureCompact": {
			Name: "GestureCompact", Events: 80, Mean: 31.5, Window: 1, Horizon: 42 * units.Minute,
			Build: func(v core.Variant, s env.Schedule, tr *sim.Trace, scr *Scratch) (*Run, error) {
				return NewGRC(v, false, s, tr, scr)
			},
		},
		"CorrSense": {
			Name: "CorrSense", Events: 80, Mean: 31.5, Window: 1, Horizon: 42 * units.Minute,
			Build: NewCSR,
		},
	}
	return specs
}

// SpecNames lists the application names in the paper's presentation
// order.
func SpecNames() []string {
	return []string{"TempAlarm", "GestureFast", "GestureCompact", "CorrSense"}
}

// SpecByName returns the named spec.
func SpecByName(name string) (Spec, error) {
	if s, ok := Specs()[name]; ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("apps: unknown application %q", name)
}
