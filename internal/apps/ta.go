package apps

import (
	"capybara/internal/core"
	"capybara/internal/device"
	"capybara/internal/env"
	"capybara/internal/metrics"
	"capybara/internal/sim"
	"capybara/internal/task"
	"capybara/internal/units"
)

// taSeriesLen is the length of the temperature time series the alarm
// packet carries (the paper's application collects "a time series of
// the samples" and transmits "the most recent time series").
const taSeriesLen = 15

// NewTA builds the temperature monitor with alarm (§6.1.2).
//
// The sample task reads the TMP36 on the small bank and appends to a
// bounded time series; when a reading leaves the configured range it
// hands off to the alarm task, which transmits a 25-byte BLE packet
// containing the series. Under Capy-P the alarm's bank is pre-charged
// by the sample task's preburst annotation.
func NewTA(variant core.Variant, sched env.Schedule, trace *sim.Trace, scr *Scratch) (*Run, error) {
	plant := env.NewThermal(sched)
	rec := scratchRecorder(scr)
	tmp := device.TMP36()
	radio := device.CC2650()

	sample := &task.Task{
		Name:          "sample",
		PreburstBurst: modeBig,
		PreburstExec:  modeSmall,
		Run: func(c *task.Ctx) task.Next {
			at := c.Sample(tmp)
			rec.RecordSample(at)
			reading := plant.Temperature(at)
			series := append(c.FloatSeries("series"), reading)
			if len(series) > taSeriesLen {
				series = series[len(series)-taSeriesLen:]
			}
			c.SetFloats("series", series)
			c.Compute(2000) // range check + series bookkeeping
			if plant.OutOfRange(reading) {
				if ev, ok := sched.ActiveAt(at); ok && c.WordOr("alarm.last", 0) != uint64(ev.Index)+1 {
					c.SetWord("alarm.pending", uint64(ev.Index)+1)
					c.SetFloat("alarm.at", float64(ev.At))
					return "alarm"
				}
			}
			// Pace the sampling loop; the power system's quiescent draw
			// keeps discharging the buffer during the sleep (§6.4).
			c.Sleep(0.08)
			return "sample"
		},
	}

	alarm := &task.Task{
		Name:  "alarm",
		Burst: modeBig,
		Run: func(c *task.Ctx) task.Next {
			idx := c.WordOr("alarm.pending", 0)
			if idx == 0 {
				return "sample"
			}
			// BLE advertising broadcasts the alarm on all three
			// advertising channels.
			for ch := 0; ch < 3; ch++ {
				c.Transmit(radio, 25)
			}
			rec.RecordReport(metrics.Report{
				EventIndex: int(idx) - 1,
				EventAt:    units.Seconds(c.FloatOr("alarm.at", 0)),
				ReportedAt: c.Now(),
				Outcome:    metrics.Correct,
			})
			c.SetWord("alarm.last", idx)
			c.SetWord("alarm.pending", 0)
			return "sample"
		},
	}

	cfg := buildConfig(variant, taSupply(), taFixedBank(), taSmallBank(), taBigBank(), trace, scr)
	prog := task.MustProgram("sample", sample, alarm)
	inst, err := core.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	return &Run{
		Name:     "TempAlarm",
		Variant:  variant,
		Schedule: sched,
		Horizon:  sched.Horizon() + 60,
		Rec:      rec,
		Inst:     inst,
	}, nil
}
