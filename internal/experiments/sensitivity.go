package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"capybara/internal/apps"
	"capybara/internal/core"
	"capybara/internal/env"
	"capybara/internal/runner"
	"capybara/internal/units"
)

// Figure 10 — sensitivity of accuracy to event inter-arrival times:
// event sequences drawn from Poisson distributions with decreasing
// means. The farther apart the events, the more are recognized; a lower
// event frequency does not help a fixed-capacity system as much as it
// helps Capybara.

// Fig10Point is one (mean inter-arrival, system) accuracy sample.
type Fig10Point struct {
	Mean     units.Seconds
	Variant  core.Variant
	Reported float64 // fraction of events reported (correct + misclassified)
}

// Fig10Config parameterizes a sensitivity sweep.
type Fig10Config struct {
	App      string
	Means    []units.Seconds
	Events   int
	Variants []core.Variant
	Seed     int64
	// Jobs is the worker count for the sweep: <= 0 means every CPU,
	// 1 forces the serial path. The points are identical either way.
	Jobs int
}

// TASensitivity returns the paper's TempAlarm sweep configuration
// (means 100–400 s across Pwr, Fixed, CB-R, CB-P).
func TASensitivity() Fig10Config {
	return Fig10Config{
		App:      "TempAlarm",
		Means:    []units.Seconds{100, 150, 200, 250, 300, 350, 400},
		Events:   50,
		Variants: Variants(),
		Seed:     DefaultSeed,
	}
}

// GRCSensitivity returns the paper's GestureFast sweep (means 10–30 s
// across Pwr, Fixed, CB-P; Capy-R reports no gestures and is omitted,
// as in the paper's Fig. 10).
func GRCSensitivity() Fig10Config {
	return Fig10Config{
		App:      "GestureFast",
		Means:    []units.Seconds{10, 15, 20, 25, 30},
		Events:   80,
		Variants: []core.Variant{core.Continuous, core.Fixed, core.CapyP},
		Seed:     DefaultSeed,
	}
}

// Figure10 executes a sensitivity sweep with one job per
// (mean, variant) point. Each job regenerates its mean's schedule from
// cfg.Seed with a private *rand.Rand, so no RNG state crosses
// goroutines and the points come back in sweep order at any worker
// count.
func Figure10(cfg Fig10Config) ([]Fig10Point, error) {
	return Figure10Ctx(context.Background(), cfg)
}

// Figure10Ctx is Figure10 with cancellation.
func Figure10Ctx(ctx context.Context, cfg Fig10Config) ([]Fig10Point, error) {
	spec, err := apps.SpecByName(cfg.App)
	if err != nil {
		return nil, err
	}
	return runner.Map(ctx, cfg.Jobs, len(cfg.Means)*len(cfg.Variants),
		func(ctx context.Context, i int) (Fig10Point, error) {
			mean := cfg.Means[i/len(cfg.Variants)]
			v := cfg.Variants[i%len(cfg.Variants)]
			sched := env.Poisson(rand.New(rand.NewSource(cfg.Seed)), cfg.Events, mean, spec.Window)
			run, err := spec.Build(v, sched, nil, nil)
			if err != nil {
				return Fig10Point{}, err
			}
			if err := run.Execute(); err != nil {
				return Fig10Point{}, err
			}
			a := run.Accuracy()
			reported := float64(a.Correct+a.Misclassified) / float64(a.Total)
			return Fig10Point{Mean: mean, Variant: v, Reported: reported}, nil
		})
}

// Fig10Table renders a sensitivity sweep with one row per mean and one
// column per system.
func Fig10Table(cfg Fig10Config, points []Fig10Point) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 10 — accuracy vs mean event inter-arrival (%s)", cfg.App),
		Header: []string{"mean inter-arrival"},
	}
	for _, v := range cfg.Variants {
		t.Header = append(t.Header, v.String())
	}
	byKey := make(map[string]float64, len(points))
	for _, p := range points {
		byKey[fmt.Sprintf("%v/%v", p.Mean, p.Variant)] = p.Reported
	}
	for _, mean := range cfg.Means {
		row := []string{mean.String()}
		for _, v := range cfg.Variants {
			row = append(row, fmt.Sprintf("%.2f", byKey[fmt.Sprintf("%v/%v", mean, v)]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
