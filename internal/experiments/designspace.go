package experiments

import (
	"context"
	"fmt"
	"math"

	"capybara/internal/core"
	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/metrics"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/runner"
	"capybara/internal/sim"
	"capybara/internal/storage"
	"capybara/internal/task"
	"capybara/internal/units"
)

// Figure 2 — execution with a fixed-capacity energy buffer. The
// application collects a time series of 15 sensor samples and transmits
// them by radio. With low capacity the samples are reactive but the
// packet never completes; with high capacity the packet completes but
// sampling is bursty with long recharges.

// Fig2Result holds both devices' trajectories and outcomes.
type Fig2Result struct {
	LowTrace, HighTrace     *sim.Trace
	LowSamples, HighSamples []units.Seconds
	LowPackets, HighPackets int
	Horizon                 units.Seconds
}

// Figure2 runs the fixed-capacity comparison.
func Figure2() (*Fig2Result, error) {
	const horizon units.Seconds = 300
	res := &Fig2Result{Horizon: horizon}

	run := func(bank *storage.Bank, trace *sim.Trace) ([]units.Seconds, int, error) {
		tmp := device.TMP36()
		radio := device.CC2650()
		var samples []units.Seconds
		packets := 0
		prog := task.MustProgram("sample",
			&task.Task{Name: "sample", Run: func(c *task.Ctx) task.Next {
				at := c.Sample(tmp)
				samples = append(samples, at)
				n := c.WordOr("n", 0) + 1
				c.SetWord("n", n)
				if n >= 15 {
					c.SetWord("n", 0)
					return "send"
				}
				c.Sleep(0.1)
				return "sample"
			}},
			&task.Task{Name: "send", Run: func(c *task.Ctx) task.Next {
				c.Transmit(radio, 25)
				packets++
				return "sample"
			}},
		)
		inst, err := core.New(core.Config{
			Variant:    core.Fixed,
			Source:     harvest.RegulatedSupply{Max: 0.5 * units.MilliWatt, V: 3.0},
			MCU:        device.MSP430FR5969(),
			Base:       bank,
			SwitchKind: reservoir.NormallyOpen,
			Trace:      trace,
		}, prog)
		if err != nil {
			return nil, 0, err
		}
		return samples, packets, inst.Run(horizon)
	}

	res.LowTrace = &sim.Trace{MinInterval: 0.05}
	low := storage.MustBank("low",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 330*units.MicroFarad))
	var err error
	res.LowSamples, res.LowPackets, err = run(low, res.LowTrace)
	if err != nil {
		return nil, err
	}

	res.HighTrace = &sim.Trace{MinInterval: 0.05}
	high := storage.MustBank("high",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 330*units.MicroFarad),
		storage.GroupOf(storage.EDLC, 2))
	res.HighSamples, res.HighPackets, err = run(high, res.HighTrace)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders Figure 2's outcome summary.
func (r *Fig2Result) Table() *Table {
	gap := func(samples []units.Seconds) string {
		s := metrics.Summarize(diffs(samples))
		if s.Count == 0 {
			return "n/a"
		}
		return s.Max.String()
	}
	return &Table{
		Title:  "Figure 2 — execution with a fixed-capacity energy buffer",
		Header: []string{"capacity", "samples", "complete packets", "longest sampling gap"},
		Rows: [][]string{
			{"low (730 µF)", fmt.Sprint(len(r.LowSamples)), fmt.Sprint(r.LowPackets), gap(r.LowSamples)},
			{"high (+15 mF)", fmt.Sprint(len(r.HighSamples)), fmt.Sprint(r.HighPackets), gap(r.HighSamples)},
		},
	}
}

func diffs(xs []units.Seconds) []units.Seconds {
	if len(xs) < 2 {
		return nil
	}
	out := make([]units.Seconds, 0, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out = append(out, xs[i]-xs[i-1])
	}
	return out
}

// Figure 3 — design space for energy buffer capacity: the longest span
// of ALU operations (atomicity, in Mops) executable without a power
// failure, as a function of capacitance.

// Fig3Point is one capacitance sample of the design-space curve.
type Fig3Point struct {
	C     units.Capacitance
	Mops  float64
	OnFor units.Seconds
}

// Figure3 sweeps capacitance logarithmically from 50 µF to 20 mF, as in
// the paper's 10²–10⁴ µF axis.
func Figure3() []Fig3Point {
	points, err := Figure3Parallel(context.Background(), 0)
	if err != nil {
		// Sweep jobs cannot fail; an error here is a recovered panic
		// (runner.PanicError) and deserves to surface as one.
		panic(err)
	}
	return points
}

// Figure3Parallel runs the capacitance sweep with one job per sample
// point across jobs workers (<= 0 means every CPU, 1 forces the serial
// path). Each job builds its own power system, MCU model, and bank, so
// nothing is shared between goroutines and the curve is identical at
// any worker count.
func Figure3Parallel(ctx context.Context, jobs int) ([]Fig3Point, error) {
	var caps []units.Capacitance
	for exp := 0.0; exp <= 1.0001; exp += 1.0 / 24 {
		caps = append(caps, units.Capacitance(50e-6*math.Pow(20e-3/50e-6, exp)))
	}
	return runner.Map(ctx, jobs, len(caps), func(ctx context.Context, i int) (Fig3Point, error) {
		sys := power.NewSystem(harvest.RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0})
		mcu := device.MSP430FR5969()
		c := caps[i]
		// A low-ESR bank of exactly this capacitance.
		tech := storage.Technology{
			Name: "sweep", UnitCap: c, UnitVolume: 1, UnitESR: 0.05, RatedVoltage: 3.6,
		}
		b := storage.MustBank("sweep", storage.GroupOf(tech, 1))
		b.SetVoltage(core.DefaultVTop)
		on := sys.OperatingTime(b, mcu.ActivePower)
		return Fig3Point{
			C:     c,
			Mops:  float64(on) * mcu.OpsPerSecond / 1e6,
			OnFor: on,
		}, nil
	})
}

// Fig3Region classifies a design point against an atomicity
// requirement, reproducing Fig. 3's annotated regions: left of the
// curve the task is infeasible; on it, optimal; right of it, the
// buffer (and its charge time) are larger than needed, so the task is
// not reactive.
type Fig3Region int

const (
	// RegionInfeasible: capacity below the task's atomicity need.
	RegionInfeasible Fig3Region = iota
	// RegionOptimal: capacity within a small margin of the need.
	RegionOptimal
	// RegionNotReactive: over-provisioned; recharge time wasted.
	RegionNotReactive
)

func (r Fig3Region) String() string {
	switch r {
	case RegionInfeasible:
		return "infeasible"
	case RegionOptimal:
		return "optimal"
	default:
		return "not reactive"
	}
}

// ClassifyFig3 labels each sweep point against a required atomicity in
// Mops (the paper's dashed line). Points within ±25 % of the
// requirement count as optimal.
func ClassifyFig3(points []Fig3Point, requiredMops float64) map[units.Capacitance]Fig3Region {
	out := make(map[units.Capacitance]Fig3Region, len(points))
	for _, p := range points {
		switch {
		case p.Mops < requiredMops*0.75:
			out[p.C] = RegionInfeasible
		case p.Mops <= requiredMops*1.25:
			out[p.C] = RegionOptimal
		default:
			out[p.C] = RegionNotReactive
		}
	}
	return out
}

// Fig3Table renders the Figure 3 sweep.
func Fig3Table(points []Fig3Point) *Table {
	t := &Table{
		Title:  "Figure 3 — atomicity vs energy buffer capacitance",
		Header: []string{"capacitance", "operating time", "atomicity (Mops)"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			p.C.String(), p.OnFor.String(), fmt.Sprintf("%.3f", p.Mops),
		})
	}
	return t
}

// Figure 4 — design space for provisioning atomicity by capacitor
// volume and technology. Ceramics are low-density; the CPH3225A
// supercap is dense but its high ESR strands energy, so atomicity sees
// a diminishing increase with volume.

// Fig4Point is one (technology, volume) sample.
type Fig4Point struct {
	Tech   string
	Units  int
	Volume units.Volume
	Mops   float64
}

// Figure4 sweeps unit counts of each technology up to 35 mm³.
func Figure4() []Fig4Point {
	points, err := Figure4Parallel(context.Background(), 0)
	if err != nil {
		// Sweep jobs cannot fail; an error here is a recovered panic
		// (runner.PanicError) and deserves to surface as one.
		panic(err)
	}
	return points
}

// Figure4Parallel runs the volume sweep with one job per
// (technology, unit count) point across jobs workers (<= 0 means every
// CPU, 1 forces the serial path). The cheap volume enumeration stays
// serial; only the operating-time evaluation fans out, with each job
// building its own power system and bank.
func Figure4Parallel(ctx context.Context, jobs int) ([]Fig4Point, error) {
	const maxVolume units.Volume = 35
	type sample struct {
		tech  storage.Technology
		units int
	}
	var samples []sample
	for _, tech := range []storage.Technology{storage.CeramicX5R, storage.SupercapCPH3225A} {
		for n := 1; storage.GroupOf(tech, n).Volume() <= maxVolume; n++ {
			samples = append(samples, sample{tech: tech, units: n})
		}
	}
	return runner.Map(ctx, jobs, len(samples), func(ctx context.Context, i int) (Fig4Point, error) {
		sys := power.NewSystem(harvest.RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0})
		mcu := device.MSP430FR5969()
		s := samples[i]
		g := storage.GroupOf(s.tech, s.units)
		b := storage.MustBank("sweep", g)
		b.SetVoltage(b.RatedVoltage())
		on := sys.OperatingTime(b, mcu.ActivePower)
		return Fig4Point{
			Tech:   s.tech.Name,
			Units:  s.units,
			Volume: g.Volume(),
			Mops:   float64(on) * mcu.OpsPerSecond / 1e6,
		}, nil
	})
}

// Fig4Table renders the Figure 4 sweep.
func Fig4Table(points []Fig4Point) *Table {
	t := &Table{
		Title:  "Figure 4 — atomicity vs capacitor volume by technology",
		Header: []string{"technology", "units", "volume", "atomicity (Mops)"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			p.Tech, fmt.Sprint(p.Units), p.Volume.String(), fmt.Sprintf("%.3f", p.Mops),
		})
	}
	return t
}
