package experiments

import (
	"bytes"
	"context"
	"testing"

	"capybara/internal/core"
	"capybara/internal/units"
)

// These golden tests pin the sweep engine's central guarantee: the
// worker count is a performance knob, never an experimental input.
// Every table a figure emits must be byte-identical between the serial
// path (-jobs 1) and a parallel run (-jobs 8), so parallelism can never
// silently change a paper number.

// renderMatrix serializes every table the run matrix feeds (Figs. 8, 9,
// and 11) into one byte string.
func renderMatrix(t *testing.T, m *Matrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tab := range []*Table{m.AccuracyTable(), m.LatencyTable(), m.GapTable()} {
		if err := tab.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestMatrixTablesIdenticalAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	serial, err := RunMatrixParallel(ctx, DefaultSeed, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := renderMatrix(t, serial)
	for _, jobs := range []int{3, 8} {
		m, err := RunMatrixParallel(ctx, DefaultSeed, 0.2, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderMatrix(t, m); !bytes.Equal(got, want) {
			t.Errorf("jobs=%d: matrix tables differ from the serial run:\n--- jobs=1\n%s\n--- jobs=%d\n%s",
				jobs, want, jobs, got)
		}
	}
}

func TestDesignSpaceTablesIdenticalAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	render := func(jobs int) []byte {
		p3, err := Figure3Parallel(ctx, jobs)
		if err != nil {
			t.Fatal(err)
		}
		p4, err := Figure4Parallel(ctx, jobs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tab := range []*Table{Fig3Table(p3), Fig4Table(p4)} {
			if err := tab.Fprint(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	want := render(1)
	if got := render(8); !bytes.Equal(got, want) {
		t.Errorf("design-space tables differ:\n--- jobs=1\n%s\n--- jobs=8\n%s", want, got)
	}
}

func TestFig10TableIdenticalAcrossWorkers(t *testing.T) {
	cfg := Fig10Config{
		App:      "TempAlarm",
		Means:    []units.Seconds{150, 300},
		Events:   10,
		Variants: Variants(),
		Seed:     DefaultSeed,
	}
	render := func(jobs int) []byte {
		cfg.Jobs = jobs
		points, err := Figure10Ctx(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Fig10Table(cfg, points).Fprint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render(1)
	if got := render(8); !bytes.Equal(got, want) {
		t.Errorf("Fig. 10 table differs:\n--- jobs=1\n%s\n--- jobs=8\n%s", want, got)
	}
}

func TestMultiSeedTableIdenticalAcrossWorkers(t *testing.T) {
	variants := []core.Variant{core.Fixed, core.CapyP}
	seeds := DefaultSeeds(3)
	render := func(jobs int) []byte {
		rows, err := MultiSeedParallel(context.Background(), "TempAlarm", variants, seeds, 0.1, jobs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := MultiSeedTable(rows).Fprint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render(1)
	if got := render(8); !bytes.Equal(got, want) {
		t.Errorf("multi-seed table differs:\n--- jobs=1\n%s\n--- jobs=8\n%s", want, got)
	}
}
