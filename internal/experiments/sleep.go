package experiments

import (
	"fmt"

	"capybara/internal/core"
	"capybara/internal/device"
	"capybara/internal/harvest"
	"capybara/internal/metrics"
	"capybara/internal/reservoir"
	"capybara/internal/storage"
	"capybara/internal/task"
	"capybara/internal/units"
)

// SleepAblation tests §6.4's dismissal of the sleep-between-samples
// alternative for fixed-capacity systems: "the batches will still be
// separated by the long charge time of the large capacitor, because it
// will discharge during sampling despite the sleep mode, due to the
// power overhead of the power system that remains on."
type SleepAblation struct {
	Sleep         units.Seconds
	Samples       int
	MaxGap        units.Seconds
	MeaningfulGap units.Seconds // median of the non-back-to-back gaps
}

// AblateSleep runs a fixed-capacity sampling loop with growing sleep
// intervals and reports the inter-sample distribution.
func AblateSleep() []SleepAblation {
	const horizon units.Seconds = 900
	var out []SleepAblation
	for _, sleep := range []units.Seconds{0, 0.25, 1.0, 4.0} {
		tmp := device.TMP36()
		var rec metrics.Recorder
		s := sleep
		prog := task.MustProgram("sample",
			&task.Task{Name: "sample", Run: func(c *task.Ctx) task.Next {
				rec.RecordSample(c.Sample(tmp))
				if s > 0 {
					c.Sleep(s)
				}
				return "sample"
			}},
		)
		bank := storage.MustBank("fixed",
			storage.GroupFor(storage.CeramicX5R, 300*units.MicroFarad),
			storage.GroupFor(storage.Tantalum, 1100*units.MicroFarad),
			storage.GroupOf(storage.EDLC, 1))
		inst, err := core.New(core.Config{
			Variant: core.Fixed,
			Source: harvest.SolarPanel{
				PeakPower:          0.19 * units.MilliWatt,
				OpenCircuitVoltage: 2.5,
				Series:             2,
				Light:              harvest.ConstantTrace(0.42),
			},
			MCU:        device.MSP430FR5969(),
			Base:       bank,
			SwitchKind: reservoir.NormallyOpen,
		}, prog)
		if err != nil {
			panic(err) // static configuration
		}
		if err := inst.Run(horizon); err != nil {
			panic(err)
		}

		gaps := metrics.AnalyzeGaps(rec.Samples(), nil)
		var meaningful []units.Seconds
		var max units.Seconds
		for _, g := range gaps {
			if g.Duration > max {
				max = g.Duration
			}
			if g.Class != metrics.BackToBack {
				meaningful = append(meaningful, g.Duration)
			}
		}
		out = append(out, SleepAblation{
			Sleep:         sleep,
			Samples:       len(rec.Samples()),
			MaxGap:        max,
			MeaningfulGap: metrics.Summarize(meaningful).Median,
		})
	}
	return out
}

// SleepTable renders the sleep ablation.
func SleepTable(rows []SleepAblation) *Table {
	t := &Table{
		Title:  "Ablation — sleeping between samples on a fixed-capacity system (§6.4)",
		Header: []string{"sleep", "samples", "median meaningful gap", "max gap"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Sleep.String(), fmt.Sprint(r.Samples),
			r.MeaningfulGap.String(), r.MaxGap.String(),
		})
	}
	return t
}
