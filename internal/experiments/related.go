package experiments

import (
	"fmt"

	"capybara/internal/checkpoint"
	"capybara/internal/device"
	"capybara/internal/federated"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/sim"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// Related-work comparisons (§7): the federated-storage baseline (UFoP)
// and the dynamic-checkpointing baseline (Hibernus/QuickRecall class),
// both built on the same simulation substrate as Capybara.

// FederatedResult compares a UFoP federation against a Capybara
// reconfigurable array with identical total capacitance.
type FederatedResult struct {
	TotalCapacitance units.Capacitance
	// MaxAtomicFederated is the largest task energy any federated
	// store supports; MaxAtomicGanged is what the same capacitors
	// support when Capybara activates them together.
	MaxAtomicFederated units.Energy
	MaxAtomicGanged    units.Energy
	// BigTaskEnergy is a data-dump task between the two ceilings:
	// feasible for Capybara, impossible for the federation.
	BigTaskEnergy     units.Energy
	FeasibleFederated bool
	FeasibleGanged    bool
	// BurstPacketsFederated/Ganged count back-to-back packets each
	// system fires from full storage at a phase change.
	BurstPacketsFederated int
	BurstPacketsGanged    int
}

// Federated runs the comparison.
func Federated() FederatedResult {
	sys := power.NewSystem(harvest.RegulatedSupply{Max: 5 * units.MilliWatt, V: 3.0})
	mcu := device.MSP430FR5969()
	radio := device.CC2650()
	load := radio.TxPower + mcu.ActivePower

	mkSmall := func() *storage.Bank {
		return storage.MustBank("sense", storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad))
	}
	mkBig := func() *storage.Bank {
		return storage.MustBank("radio", storage.GroupOf(storage.EDLC, 3))
	}

	fed := federated.NewArray(
		&federated.Store{Name: "mcu", Bank: mkSmall(), VTop: 2.4},
		&federated.Store{Name: "radio", Bank: mkBig(), VTop: 2.4},
	)

	var res FederatedResult
	res.TotalCapacitance = fed.TotalCapacitance()
	res.MaxAtomicFederated = fed.MaxAtomicEnergy(sys, load)

	ganged := storage.MustBank("ganged",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupOf(storage.EDLC, 3))
	ganged.SetVoltage(2.4)
	res.MaxAtomicGanged = sys.ExtractableEnergy(ganged, load)

	// A data-dump task sized between the two ceilings.
	res.BigTaskEnergy = (res.MaxAtomicFederated + res.MaxAtomicGanged) / 2
	res.FeasibleFederated = res.MaxAtomicFederated >= res.BigTaskEnergy
	res.FeasibleGanged = res.MaxAtomicGanged >= res.BigTaskEnergy

	// Phase-change burst: both systems fully charged, then transmit
	// packets back-to-back until brownout.
	packetTime := radio.StartupTime + radio.PacketTime(25)
	fed.Charge(sys, 0, 1e6)
	for {
		if _, ok := fed.Spend(sys, "radio", load, packetTime); !ok {
			break
		}
		res.BurstPacketsFederated++
		if res.BurstPacketsFederated > 10_000 {
			break
		}
	}
	for {
		if _, ok := sys.Discharge(ganged, load, packetTime); !ok {
			break
		}
		res.BurstPacketsGanged++
		if res.BurstPacketsGanged > 10_000 {
			break
		}
	}
	return res
}

// Table renders the federation comparison.
func (r FederatedResult) Table() *Table {
	return &Table{
		Title:  "§7 — federated storage (UFoP) vs reconfigurable banks (same capacitors)",
		Header: []string{"item", "federated", "Capybara (ganged)"},
		Rows: [][]string{
			{"total capacitance", r.TotalCapacitance.String(), r.TotalCapacitance.String()},
			{"max atomic task energy", r.MaxAtomicFederated.String(), r.MaxAtomicGanged.String()},
			{fmt.Sprintf("data dump (%v) feasible", r.BigTaskEnergy),
				fmt.Sprint(r.FeasibleFederated), fmt.Sprint(r.FeasibleGanged)},
			{"phase-change packet burst",
				fmt.Sprint(r.BurstPacketsFederated), fmt.Sprint(r.BurstPacketsGanged)},
		},
	}
}

// CheckpointResult compares the checkpointing discipline against
// task-restart granularities for one fixed computation.
type CheckpointResult struct {
	TotalOps   float64
	Checkpoint checkpoint.Result
	FineTasks  checkpoint.Result
	CoarseTask checkpoint.Result
}

// Checkpointing runs the comparison: a 20 Mop computation on a 1 mF
// buffer at 2 mW harvested.
func Checkpointing() (CheckpointResult, error) {
	const totalOps = 20e6
	mk := func() *sim.Device {
		tech := storage.Technology{
			Name: "buf", UnitCap: units.MilliFarad, UnitVolume: 1, UnitESR: 0.05, RatedVoltage: 3.6,
		}
		bank := storage.MustBank("main", storage.GroupOf(tech, 1))
		arr := reservoir.NewArray(bank, reservoir.NormallyOpen)
		sys := power.NewSystem(harvest.RegulatedSupply{Max: 2 * units.MilliWatt, V: 3.0})
		return sim.NewDevice(sys, arr, device.MSP430FR5969())
	}
	ckpt, err := checkpoint.Run(mk(), checkpoint.DefaultConfig(), totalOps, 1e5)
	if err != nil {
		return CheckpointResult{}, err
	}
	return CheckpointResult{
		TotalOps:   totalOps,
		Checkpoint: ckpt,
		FineTasks:  checkpoint.RunTaskRestart(mk(), 2.4, totalOps, 0.1e6, 1e5),
		CoarseTask: checkpoint.RunTaskRestart(mk(), 2.4, totalOps, 2e6, 1e5),
	}, nil
}

// Table renders the checkpointing comparison.
func (r CheckpointResult) Table() *Table {
	row := func(name string, res checkpoint.Result) []string {
		return []string{
			name,
			fmt.Sprintf("%v", res.Done),
			res.Elapsed.String(),
			fmt.Sprintf("%.2f", res.ReexecutedOps/1e6),
			res.OverheadTime.String(),
			fmt.Sprint(res.Checkpoints),
		}
	}
	return &Table{
		Title:  fmt.Sprintf("§7 — checkpointing vs task restart (%.0f Mops, 1 mF buffer)", r.TotalOps/1e6),
		Header: []string{"runtime", "done", "elapsed", "re-executed Mops", "snapshot overhead", "checkpoints"},
		Rows: [][]string{
			row("Hibernus-style checkpointing", r.Checkpoint),
			row("task restart (0.1 Mop tasks)", r.FineTasks),
			row("task restart (2 Mop tasks)", r.CoarseTask),
		},
	}
}
