package experiments

import (
	"bytes"
	"strings"
	"testing"

	"capybara/internal/core"
	"capybara/internal/metrics"
	"capybara/internal/units"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	}
	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n3,4\n" {
		t.Fatalf("CSV = %q", got)
	}
}

func TestFigure2Shapes(t *testing.T) {
	r, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// Low capacity: reactive sampling, but the packet never completes.
	if r.LowPackets != 0 {
		t.Errorf("low capacity completed %d packets, want 0 (failed packet)", r.LowPackets)
	}
	if len(r.LowSamples) < 15 {
		t.Errorf("low capacity only took %d samples", len(r.LowSamples))
	}
	// High capacity: completes packets, but samples arrive in bursts
	// separated by long recharges.
	if r.HighPackets == 0 {
		t.Error("high capacity completed no packets")
	}
	lowGaps := metrics.Summarize(diffs(r.LowSamples))
	highGaps := metrics.Summarize(diffs(r.HighSamples))
	if highGaps.Max < 3*lowGaps.Max {
		t.Errorf("high-capacity max gap %v should dwarf low-capacity %v", highGaps.Max, lowGaps.Max)
	}
	if len(r.LowTrace.Samples) == 0 || len(r.HighTrace.Samples) == 0 {
		t.Error("traces empty")
	}
	if tbl := r.Table(); len(tbl.Rows) != 2 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestFigure3Monotonic(t *testing.T) {
	points := Figure3()
	if len(points) < 20 {
		t.Fatalf("too few sweep points: %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Mops <= points[i-1].Mops {
			t.Fatalf("atomicity not increasing with capacitance at %v", points[i].C)
		}
	}
	// Calibration: the 10³–10⁴ µF range lands in the paper's 0–4 Mops.
	for _, p := range points {
		if p.C >= 1000*units.MicroFarad && p.C <= 20*units.MilliFarad {
			if p.Mops <= 0 || p.Mops > 100 {
				t.Fatalf("Mops at %v = %g out of plausible range", p.C, p.Mops)
			}
		}
	}
	if tbl := Fig3Table(points); len(tbl.Rows) != len(points) {
		t.Fatal("table row mismatch")
	}
}

func TestFigure4TechnologyShapes(t *testing.T) {
	points := Figure4()
	var ceramic, super []Fig4Point
	for _, p := range points {
		switch p.Tech {
		case "ceramic-X5R":
			ceramic = append(ceramic, p)
		case "supercap-CPH3225A":
			super = append(super, p)
		}
	}
	if len(ceramic) == 0 || len(super) == 0 {
		t.Fatal("missing technology sweeps")
	}
	// At comparable volume the supercap dominates ceramic atomicity.
	lastC, lastS := ceramic[len(ceramic)-1], super[len(super)-1]
	if lastS.Mops <= lastC.Mops {
		t.Fatalf("supercap (%g Mops) should beat ceramic (%g Mops)", lastS.Mops, lastC.Mops)
	}
	// Diminishing increase for the supercap on the paper's log axis:
	// the multiplicative growth factor shrinks with each added unit.
	if len(super) >= 3 {
		prevRatio := super[1].Mops / super[0].Mops
		for i := 2; i < len(super); i++ {
			ratio := super[i].Mops / super[i-1].Mops
			if ratio >= prevRatio {
				t.Fatalf("supercap growth factor not diminishing at unit %d: %g then %g",
					super[i].Units, prevRatio, ratio)
			}
			prevRatio = ratio
		}
	}
	if tbl := Fig4Table(points); len(tbl.Rows) != len(points) {
		t.Fatal("table row mismatch")
	}
}

func TestMatrixScaledGrid(t *testing.T) {
	m, err := RunMatrixScaled(DefaultSeed, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 4 {
		t.Fatalf("apps in matrix = %d", len(m.Runs))
	}
	for app, byVariant := range m.Runs {
		if len(byVariant) != 4 {
			t.Fatalf("%s has %d variants", app, len(byVariant))
		}
	}
	acc := m.AccuracyTable()
	if len(acc.Rows) != 16 {
		t.Fatalf("accuracy rows = %d, want 16", len(acc.Rows))
	}
	lat := m.LatencyTable()
	if len(lat.Rows) != 16 {
		t.Fatalf("latency rows = %d, want 16", len(lat.Rows))
	}
	gaps := m.GapTable()
	if len(gaps.Rows) != 3 {
		t.Fatalf("gap rows = %d, want 3", len(gaps.Rows))
	}
	h := m.GapHistogram(core.Fixed)
	if h.Total() == 0 {
		t.Fatal("empty gap histogram")
	}
}

func TestMatrixScaleValidation(t *testing.T) {
	if _, err := RunMatrixScaled(1, 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := RunMatrixScaled(1, 1.5); err == nil {
		t.Error("over-unity scale accepted")
	}
}

func TestFigure10SmallSweep(t *testing.T) {
	cfg := Fig10Config{
		App:      "TempAlarm",
		Means:    []units.Seconds{100, 400},
		Events:   8,
		Variants: []core.Variant{core.Fixed, core.CapyP},
		Seed:     DefaultSeed,
	}
	points, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	get := func(mean units.Seconds, v core.Variant) float64 {
		for _, p := range points {
			if p.Mean == mean && p.Variant == v {
				return p.Reported
			}
		}
		t.Fatalf("missing point %v/%v", mean, v)
		return 0
	}
	// Capybara beats Fixed at both means.
	for _, mean := range cfg.Means {
		if get(mean, core.CapyP) <= get(mean, core.Fixed) {
			t.Errorf("at mean %v Capy-P (%g) should beat Fixed (%g)",
				mean, get(mean, core.CapyP), get(mean, core.Fixed))
		}
	}
	tbl := Fig10Table(cfg, points)
	if len(tbl.Rows) != 2 || len(tbl.Header) != 3 {
		t.Fatalf("table shape %dx%d", len(tbl.Rows), len(tbl.Header))
	}
	if _, err := Figure10(Fig10Config{App: "nope"}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSensitivityConfigs(t *testing.T) {
	ta := TASensitivity()
	if ta.App != "TempAlarm" || len(ta.Means) != 7 || len(ta.Variants) != 4 {
		t.Fatalf("TA config wrong: %+v", ta)
	}
	grc := GRCSensitivity()
	if grc.App != "GestureFast" || len(grc.Means) != 5 || len(grc.Variants) != 3 {
		t.Fatalf("GRC config wrong: %+v", grc)
	}
}

func TestMechanismsOrdering(t *testing.T) {
	rows := Mechanisms()
	if len(rows) != 3 {
		t.Fatalf("mechanisms = %d", len(rows))
	}
	byName := map[string]MechanismRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	sw, vt, vb := byName["switched-C"], byName["Vtop-threshold"], byName["Vbottom-threshold"]
	if !(sw.ColdStart < vt.ColdStart && vt.ColdStart < vb.ColdStart) {
		t.Fatalf("cold start ordering wrong: %v %v %v", sw.ColdStart, vt.ColdStart, vb.ColdStart)
	}
	if vt.Area != 2*sw.Area {
		t.Fatalf("Vtop area %v != 2x switch %v", vt.Area, sw.Area)
	}
	if tbl := MechanismTable(rows); len(tbl.Rows) != 3 {
		t.Fatal("mechanism table rows")
	}
}

func TestCharacterization(t *testing.T) {
	tbl := Characterization()
	if len(tbl.Rows) < 5 {
		t.Fatalf("characterization rows = %d", len(tbl.Rows))
	}
}

func TestCapySatStudy(t *testing.T) {
	s := CapySat(1)
	if !s.Feasibility.FeasibleBoosted || s.Feasibility.FeasibleRaw {
		t.Fatalf("feasibility wrong: %+v", s.Feasibility)
	}
	if s.Splitter*5 != s.Switches {
		t.Fatalf("area ratio wrong: %v vs %v", s.Splitter, s.Switches)
	}
	if s.Mission.Packets == 0 {
		t.Fatal("no packets")
	}
	if tbl := s.Table(); len(tbl.Rows) < 8 {
		t.Fatal("capysat table too small")
	}
}

func TestAblateBypass(t *testing.T) {
	a := AblateBypass()
	if a.Speedup < 10 {
		t.Fatalf("bypass speedup = %.1fx, want ≥ 10x (the paper's order of magnitude)", a.Speedup)
	}
	if len(a.Table().Rows) != 3 {
		t.Fatal("bypass table rows")
	}
}

func TestAblateSwitchDefault(t *testing.T) {
	rows := AblateSwitchDefault()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	no, nc := rows[0], rows[1]
	// NO recovers fast on the small default but cannot run the big
	// task; NC recovers slowly at maximum capacity but can.
	if no.FirstAttemptOK {
		t.Error("NO default should not satisfy the big task")
	}
	if !nc.FirstAttemptOK {
		t.Error("NC default should satisfy the big task")
	}
	if no.RecoveryCharge >= nc.RecoveryCharge {
		t.Errorf("NO recovery (%v) should be faster than NC (%v)", no.RecoveryCharge, nc.RecoveryCharge)
	}
	if no.ImplicitCapacity >= nc.ImplicitCapacity {
		t.Error("NO implicit capacity should be smaller")
	}
	if len(SwitchDefaultTable(rows).Rows) != 2 {
		t.Fatal("switch table rows")
	}
}

func TestAblateESRMonotone(t *testing.T) {
	rows := AblateESR()
	sawStranded := false
	for i := 1; i < len(rows); i++ {
		if rows[i].Extractable > rows[i-1].Extractable {
			t.Fatalf("extractable energy increased with ESR at %v", rows[i].ESR)
		}
		if rows[i-1].Extractable > 0 && rows[i].Extractable >= rows[i-1].Extractable {
			t.Fatalf("extractable energy not strictly decreasing at %v", rows[i].ESR)
		}
		if rows[i].Cutoff <= rows[i-1].Cutoff {
			t.Fatalf("cutoff not increasing with ESR at %v", rows[i].ESR)
		}
	}
	// At CPH3225A-scale ESR the entire bank is stranded for this load —
	// the §2.2.2 "useless without voltage boosting" regime.
	for _, r := range rows {
		if r.ESR == 160 && r.Extractable == 0 {
			sawStranded = true
		}
	}
	if !sawStranded {
		t.Fatal("160 Ω row should strand all energy under a 30 mW load")
	}
	if len(ESRTable(rows).Rows) != len(rows) {
		t.Fatal("ESR table rows")
	}
}

func TestAblateDeficitMonotone(t *testing.T) {
	rows := AblateDeficit()
	if rows[0].LossVsTop != 0 {
		t.Fatalf("zero deficit should lose nothing: %g", rows[0].LossVsTop)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].BurstBand >= rows[i-1].BurstBand {
			t.Fatalf("burst band not decreasing with deficit at %v", rows[i].Deficit)
		}
	}
	// The paper's 0.3 V deficit costs a meaningful share of the band.
	for _, r := range rows {
		if r.Deficit == 0.3 && (r.LossVsTop < 0.1 || r.LossVsTop > 0.9) {
			t.Fatalf("0.3 V deficit loss = %.0f%%, implausible", 100*r.LossVsTop)
		}
	}
	if len(DeficitTable(rows).Rows) != len(rows) {
		t.Fatal("deficit table rows")
	}
}

func TestFederatedComparison(t *testing.T) {
	r := Federated()
	if r.MaxAtomicGanged <= r.MaxAtomicFederated {
		t.Fatalf("ganged ceiling (%v) should exceed federated (%v)",
			r.MaxAtomicGanged, r.MaxAtomicFederated)
	}
	if r.FeasibleFederated || !r.FeasibleGanged {
		t.Fatalf("data-dump feasibility wrong: fed=%v ganged=%v",
			r.FeasibleFederated, r.FeasibleGanged)
	}
	if r.BurstPacketsGanged <= r.BurstPacketsFederated {
		t.Fatalf("ganged burst (%d) should exceed federated (%d)",
			r.BurstPacketsGanged, r.BurstPacketsFederated)
	}
	if r.BurstPacketsFederated == 0 {
		t.Fatal("federation should still send some packets")
	}
	if len(r.Table().Rows) != 4 {
		t.Fatal("federated table rows")
	}
}

func TestCheckpointingComparison(t *testing.T) {
	r, err := Checkpointing()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checkpoint.Done || !r.FineTasks.Done || !r.CoarseTask.Done {
		t.Fatalf("not all runtimes finished: %+v", r)
	}
	// Checkpointing avoids re-execution; coarse tasks waste the most.
	if r.Checkpoint.ReexecutedOps > r.CoarseTask.ReexecutedOps {
		t.Fatal("checkpointing wasted more than coarse task restart")
	}
	if r.FineTasks.ReexecutedOps > r.CoarseTask.ReexecutedOps {
		t.Fatal("fine tasks wasted more than coarse tasks")
	}
	if len(r.Table().Rows) != 3 {
		t.Fatal("checkpoint table rows")
	}
}

func TestAblateSleep(t *testing.T) {
	rows := AblateSleep()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Longer sleeps take fewer samples…
	for i := 1; i < len(rows); i++ {
		if rows[i].Samples >= rows[i-1].Samples {
			t.Fatalf("samples not decreasing with sleep: %d then %d",
				rows[i-1].Samples, rows[i].Samples)
		}
	}
	// …but the long recharge gap never goes away: §6.4's point. Every
	// configuration still shows a multi-second maximum gap dominated by
	// the fixed bank's charge time.
	for _, r := range rows {
		if r.MaxGap < 10 {
			t.Fatalf("sleep %v: max gap %v — sleeping should not remove the recharge gap",
				r.Sleep, r.MaxGap)
		}
	}
	if len(SleepTable(rows).Rows) != 4 {
		t.Fatal("sleep table rows")
	}
}

// TestGoldenHeadlines pins the full-scale evaluation's headline numbers
// at the default seed. Every number here is deterministic; a change
// means the model changed and EXPERIMENTS.md needs regenerating.
func TestGoldenHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is several seconds; skipped with -short")
	}
	m, err := RunMatrix(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	correct := func(app string, v core.Variant) int {
		return m.Runs[app][v].Accuracy().Correct
	}
	golden := []struct {
		app  string
		v    core.Variant
		want int
	}{
		{"TempAlarm", core.Continuous, 50},
		{"TempAlarm", core.Fixed, 28},
		{"TempAlarm", core.CapyR, 48},
		{"TempAlarm", core.CapyP, 48},
		{"GestureFast", core.Continuous, 72},
		{"GestureFast", core.Fixed, 16},
		{"GestureFast", core.CapyR, 1},
		{"GestureFast", core.CapyP, 49},
		{"GestureCompact", core.Fixed, 20},
		{"GestureCompact", core.CapyR, 0},
		{"GestureCompact", core.CapyP, 36},
		{"CorrSense", core.Continuous, 80},
		{"CorrSense", core.Fixed, 34},
		{"CorrSense", core.CapyR, 71},
		{"CorrSense", core.CapyP, 72},
	}
	for _, g := range golden {
		if got := correct(g.app, g.v); got != g.want {
			t.Errorf("%s/%v correct = %d, want %d", g.app, g.v, got, g.want)
		}
	}
	// The headline latency relation: Capy-R pays the TA charge on the
	// critical path, Capy-P does not.
	ta := m.Runs["TempAlarm"]
	if r, p := ta[core.CapyR].Latency().Median, ta[core.CapyP].Latency().Median; r < 10*p {
		t.Errorf("TA latency relation broken: Capy-R %v vs Capy-P %v", r, p)
	}
}

func TestMultiSeedStats(t *testing.T) {
	rows, err := MultiSeed("TempAlarm",
		[]core.Variant{core.Fixed, core.CapyP}, DefaultSeeds(3), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byVariant := map[core.Variant]SeedStats{}
	for _, r := range rows {
		if r.Seeds != 3 {
			t.Fatalf("seeds = %d", r.Seeds)
		}
		if r.Min > r.Mean || r.Mean > r.Max {
			t.Fatalf("ordering violated: %+v", r)
		}
		byVariant[r.Variant] = r
	}
	// The headline conclusion survives every seed: even Capy-P's worst
	// draw beats Fixed's best.
	if byVariant[core.CapyP].Min <= byVariant[core.Fixed].Max {
		t.Fatalf("conclusion not robust: CapyP min %.2f vs Fixed max %.2f",
			byVariant[core.CapyP].Min, byVariant[core.Fixed].Max)
	}
	if len(MultiSeedTable(rows).Rows) != 2 {
		t.Fatal("table rows")
	}
	if _, err := MultiSeed("nope", nil, DefaultSeeds(1), 1); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := MultiSeed("TempAlarm", nil, DefaultSeeds(1), 0); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestClassifyFig3Regions(t *testing.T) {
	points := Figure3()
	// The paper's dashed-line example: a ~1.5 Mops requirement makes
	// small capacitors infeasible (Design A) and large ones
	// non-reactive (Design B).
	regions := ClassifyFig3(points, 1.5)
	if len(regions) != len(points) {
		t.Fatalf("regions = %d", len(regions))
	}
	var sawInfeasible, sawOptimal, sawNotReactive bool
	for _, p := range points {
		switch regions[p.C] {
		case RegionInfeasible:
			sawInfeasible = true
			if p.Mops >= 1.5 {
				t.Fatalf("point %v misclassified infeasible at %g Mops", p.C, p.Mops)
			}
		case RegionOptimal:
			sawOptimal = true
		case RegionNotReactive:
			sawNotReactive = true
			if p.Mops <= 1.5 {
				t.Fatalf("point %v misclassified not-reactive at %g Mops", p.C, p.Mops)
			}
		}
	}
	if !sawInfeasible || !sawOptimal || !sawNotReactive {
		t.Fatalf("regions missing: %v %v %v", sawInfeasible, sawOptimal, sawNotReactive)
	}
	for _, r := range []Fig3Region{RegionInfeasible, RegionOptimal, RegionNotReactive} {
		if r.String() == "" {
			t.Error("empty region name")
		}
	}
}
