package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"capybara/internal/apps"
	"capybara/internal/core"
	"capybara/internal/env"
	"capybara/internal/runner"
)

// Multi-seed robustness: the paper evaluates one event sequence per
// experiment; here the same applications run over several independent
// Poisson draws so the Fig. 8 conclusions carry error bars.

// SeedStats aggregates one (application, system) cell across seeds.
type SeedStats struct {
	App     string
	Variant core.Variant
	Seeds   int
	// Mean, Min, Max, and Stddev of the correct fraction.
	Mean, Min, Max, Stddev float64
}

// MultiSeed runs app under each variant for every seed and aggregates
// the correct fraction. Events scale by frac in (0, 1].
func MultiSeed(app string, variants []core.Variant, seeds []int64, frac float64) ([]SeedStats, error) {
	return MultiSeedParallel(context.Background(), app, variants, seeds, frac, 0)
}

// MultiSeedParallel runs the variant×seed grid with one job per cell
// fanned across jobs workers (<= 0 means every CPU, 1 forces the
// serial path). Each cell regenerates its schedule from its own seed
// with a private *rand.Rand, and the per-variant aggregation sums the
// correct fractions in seed order, so the statistics are bit-identical
// at any worker count.
func MultiSeedParallel(ctx context.Context, app string, variants []core.Variant, seeds []int64, frac float64, jobs int) ([]SeedStats, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("experiments: bad scale %g", frac)
	}
	spec, err := apps.SpecByName(app)
	if err != nil {
		return nil, err
	}
	n := scaledEvents(spec.Events, frac)
	fractions, err := runner.Map(ctx, jobs, len(variants)*len(seeds),
		func(ctx context.Context, i int) (float64, error) {
			v := variants[i/len(seeds)]
			seed := seeds[i%len(seeds)]
			sched := env.Poisson(rand.New(rand.NewSource(seed)), n, spec.Mean, spec.Window)
			run, err := spec.Build(v, sched, nil, nil)
			if err != nil {
				return 0, err
			}
			if err := run.Execute(); err != nil {
				return 0, err
			}
			return run.Accuracy().FractionCorrect(), nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]SeedStats, 0, len(variants))
	for vi, v := range variants {
		stats := SeedStats{App: app, Variant: v, Seeds: len(seeds), Min: math.Inf(1), Max: math.Inf(-1)}
		var sum, sumSq float64
		for _, f := range fractions[vi*len(seeds) : (vi+1)*len(seeds)] {
			sum += f
			sumSq += f * f
			stats.Min = math.Min(stats.Min, f)
			stats.Max = math.Max(stats.Max, f)
		}
		k := float64(len(seeds))
		stats.Mean = sum / k
		if k > 1 {
			variance := (sumSq - sum*sum/k) / (k - 1)
			if variance > 0 {
				stats.Stddev = math.Sqrt(variance)
			}
		}
		out = append(out, stats)
	}
	return out, nil
}

// DefaultSeeds returns n deterministic seeds.
func DefaultSeeds(n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = DefaultSeed + int64(i)*101
	}
	return seeds
}

// MultiSeedTable renders the aggregation.
func MultiSeedTable(rows []SeedStats) *Table {
	t := &Table{
		Title:  "Figure 8 robustness — correct fraction across independent event sequences",
		Header: []string{"app", "system", "seeds", "mean", "min", "max", "stddev"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.App, r.Variant.String(), fmt.Sprint(r.Seeds),
			fmt.Sprintf("%.2f", r.Mean), fmt.Sprintf("%.2f", r.Min),
			fmt.Sprintf("%.2f", r.Max), fmt.Sprintf("%.3f", r.Stddev),
		})
	}
	return t
}
