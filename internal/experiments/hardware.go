package experiments

import (
	"fmt"
	"sort"
	"strings"

	"capybara/internal/capysat"
	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// Mechanism comparison (§5.2) — cold-start time, area, leakage, and
// write endurance of the three reconfiguration mechanisms: switched
// capacitor banks (controlling C), a non-volatile Vtop threshold
// (digital potentiometer + supervisor), and a Vbottom threshold (the
// MCU's comparator).

// MechanismRow is one mechanism's comparison entry.
type MechanismRow struct {
	Name      string
	ColdStart units.Seconds
	Area      units.Area
	Leak      units.Current
	Endurance int
}

// Mechanisms runs the comparison on a TempAlarm-scale platform.
func Mechanisms() []MechanismRow {
	sys := power.NewSystem(harvest.RegulatedSupply{Max: 1 * units.MilliWatt, V: 3.0})
	small := storage.MustBank("small",
		storage.GroupFor(storage.CeramicX5R, 300*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 100*units.MicroFarad))
	full := storage.MustBank("full",
		storage.GroupFor(storage.CeramicX5R, 300*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 1100*units.MicroFarad),
		storage.GroupOf(storage.EDLC, 1))

	mechs := []reservoir.Mechanism{
		reservoir.SwitchedBankMechanism{SmallBank: small, Banks: 2},
		reservoir.VtopMechanism{FullBank: full, Banks: 2},
		reservoir.VbottomMechanism{FullBank: full, Vtop: 2.4},
	}
	taskEnergy := 10 * units.MilliJoule
	rows := make([]MechanismRow, 0, len(mechs))
	for _, m := range mechs {
		rows = append(rows, MechanismRow{
			Name:      m.Name(),
			ColdStart: m.ColdStartTime(sys, taskEnergy),
			Area:      m.Area(),
			Leak:      m.LeakCurrent(),
			Endurance: m.WriteEndurance(),
		})
	}
	return rows
}

// MechanismTable renders the §5.2 comparison.
func MechanismTable(rows []MechanismRow) *Table {
	t := &Table{
		Title:  "§5.2 — reconfiguration mechanism comparison",
		Header: []string{"mechanism", "cold start", "area", "leakage", "endurance"},
	}
	for _, r := range rows {
		endurance := "unlimited"
		if r.Endurance > 0 {
			endurance = fmt.Sprint(r.Endurance)
		}
		t.Rows = append(t.Rows, []string{
			r.Name, r.ColdStart.String(), r.Area.String(), r.Leak.String(), endurance,
		})
	}
	return t
}

// Characterization (§6.5) — board-area and switch-retention figures of
// the Capybara hardware.
func Characterization() *Table {
	sw := reservoir.DefaultSwitch(reservoir.NormallyOpen)
	return &Table{
		Title:  "§6.5 — Capybara hardware characterization",
		Header: []string{"item", "value"},
		Rows: [][]string{
			{"solar panel area", reservoir.SolarArea.String()},
			{"power system area", reservoir.PowerSystemArea.String()},
			{"reconfiguration switch area", reservoir.SwitchArea.String()},
			{"latch capacitor", sw.LatchCap.String()},
			{"switch state retention", sw.Retention().String()},
			{"pre-charge voltage deficit", reservoir.PrechargeDeficit.String()},
		},
	}
}

// CapySatStudy (§6.6) — the satellite case study: booster feasibility,
// splitter area savings, technology eligibility at −40 °C, and a
// mission simulation.
type CapySatStudy struct {
	Feasibility capysat.RadioFeasibility
	Splitter    units.Area
	Switches    units.Area
	Mission     capysat.Result
	Eligibility map[string]bool
}

// CapySat runs the case study.
func CapySat(orbits int) CapySatStudy {
	p := capysat.New()
	var s CapySatStudy
	s.Feasibility = p.Feasibility()
	s.Splitter, s.Switches = p.AreaSavings()
	s.Mission = p.Simulate(orbits)
	s.Eligibility = capysat.Eligibility()
	return s
}

// Table renders the case study.
func (s CapySatStudy) Table() *Table {
	return &Table{
		Title:  "§6.6 — CapySat case study",
		Header: []string{"item", "value"},
		Rows: [][]string{
			{"packet energy (250 ms @ 30 mA)", s.Feasibility.PacketEnergy.String()},
			{"extractable, full power system", s.Feasibility.WithBoost.String()},
			{"extractable, no output booster", s.Feasibility.NoOutputBoost.String()},
			{"extractable, no input booster", s.Feasibility.NoInputBoost.String()},
			{"radio feasible (boosted)", fmt.Sprint(s.Feasibility.FeasibleBoosted)},
			{"radio feasible (raw)", fmt.Sprint(s.Feasibility.FeasibleRaw)},
			{"splitter area", s.Splitter.String()},
			{"general switch area", s.Switches.String()},
			{"orbits simulated", fmt.Sprint(s.Mission.Orbits)},
			{"IMU samples", fmt.Sprint(s.Mission.Samples)},
			{"packets to Earth", fmt.Sprint(s.Mission.Packets)},
			{"eligible at -40 °C", eligibleList(s.Eligibility, true)},
			{"disqualified at -40 °C", eligibleList(s.Eligibility, false)},
		},
	}
}

func eligibleList(m map[string]bool, want bool) string {
	var names []string
	for name, ok := range m {
		if ok == want {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
