package experiments

import (
	"fmt"

	"capybara/internal/harvest"
	"capybara/internal/power"
	"capybara/internal/reservoir"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// Ablations for the design choices DESIGN.md calls out: the bypass
// diode, the NO-vs-NC switch default under adversarial input power, the
// ESR dependence of extraction, and the pre-charge voltage deficit.

// BypassAblation measures the cold-start charge time of the GRC fixed
// bank with and without the bypass diode (§5.1: "the bypass
// optimization reduces charge time by at least an order of magnitude").
type BypassAblation struct {
	With, Without units.Seconds
	Speedup       float64
}

// AblateBypass runs the comparison.
func AblateBypass() BypassAblation {
	charge := func(bypass bool) units.Seconds {
		sys := power.NewSystem(harvest.RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0})
		sys.Bypass.Enabled = bypass
		b := storage.MustBank("grc-fixed",
			storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
			storage.GroupFor(storage.Tantalum, 330*units.MicroFarad),
			storage.GroupOf(storage.EDLC, 9))
		dt, ok := sys.TimeToChargeTo(b, 2.4, 0, 1e7)
		if !ok {
			return units.Seconds(1e7)
		}
		return dt
	}
	a := BypassAblation{With: charge(true), Without: charge(false)}
	a.Speedup = float64(a.Without) / float64(a.With)
	return a
}

// Table renders the bypass ablation.
func (a BypassAblation) Table() *Table {
	return &Table{
		Title:  "Ablation — input booster bypass diode (cold start of the 68 mF bank)",
		Header: []string{"configuration", "charge time"},
		Rows: [][]string{
			{"with bypass", a.With.String()},
			{"without bypass", a.Without.String()},
			{"speedup", fmt.Sprintf("%.1fx", a.Speedup)},
		},
	}
}

// SwitchDefaultAblation compares NO and NC switch defaults under
// adversarial input-power timing (§5.2): repeated outages longer than
// the latch retention. The NO array keeps falling back to the small
// default (fast recovery, but a big-bank task never completes on first
// attempt); the NC array falls back to maximum capacity (slow recovery,
// guaranteed completion).
type SwitchDefaultAblation struct {
	Kind              reservoir.SwitchKind
	RecoveryCharge    units.Seconds // time to recharge the default config after an outage
	FirstAttemptOK    bool          // would a big-bank task complete on the default config?
	ImplicitCapacity  units.Capacitance
	RevertsPerOutage  int
	RetentionOverhead units.Seconds
}

// AblateSwitchDefault runs both variants through one long outage.
func AblateSwitchDefault() []SwitchDefaultAblation {
	var out []SwitchDefaultAblation
	for _, kind := range []reservoir.SwitchKind{reservoir.NormallyOpen, reservoir.NormallyClosed} {
		sys := power.NewSystem(harvest.RegulatedSupply{Max: 2 * units.MilliWatt, V: 3.0})
		small := storage.MustBank("small",
			storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
			storage.GroupFor(storage.Tantalum, 330*units.MicroFarad))
		big := storage.MustBank("big", storage.GroupOf(storage.EDLC, 9))
		arr := reservoir.NewArray(small, kind, big)
		// Software selects the big configuration, then power dies for
		// 10 minutes — far past the latch retention.
		if err := arr.Configure(0b010); err != nil {
			panic(err)
		}
		arr.TickUnpowered(600)

		set := arr.ActiveSet()
		dt, ok := sys.TimeToChargeTo(set, 2.4, 0, 1e7)
		if !ok {
			dt = units.Seconds(1e7)
		}
		// A "big" task needs the big bank's energy: feasible on the
		// post-outage default only if the big bank is connected.
		bigConnected := arr.ActiveMask()&0b010 != 0
		out = append(out, SwitchDefaultAblation{
			Kind:              kind,
			RecoveryCharge:    dt,
			FirstAttemptOK:    bigConnected,
			ImplicitCapacity:  set.Capacitance(),
			RevertsPerOutage:  arr.Reverts,
			RetentionOverhead: reservoir.DefaultSwitch(kind).Retention(),
		})
	}
	return out
}

// SwitchDefaultTable renders the NO/NC ablation.
func SwitchDefaultTable(rows []SwitchDefaultAblation) *Table {
	t := &Table{
		Title: "Ablation — NO vs NC switch default after a long outage",
		Header: []string{"default", "implicit capacity", "recovery charge",
			"big task on first attempt", "reverts"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Kind.String(), r.ImplicitCapacity.String(), r.RecoveryCharge.String(),
			fmt.Sprint(r.FirstAttemptOK), fmt.Sprint(r.RevertsPerOutage),
		})
	}
	return t
}

// ESRAblation sweeps the equivalent series resistance of a fixed
// 45 mF bank and reports the extractable energy for the radio load —
// the §2.2.2/Fig. 4 effect in isolation.
type ESRAblation struct {
	ESR         units.Resistance
	Cutoff      units.Voltage
	Extractable units.Energy
}

// AblateESR runs the sweep.
func AblateESR() []ESRAblation {
	sys := power.NewSystem(harvest.RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0})
	load := 30 * units.MilliWatt
	var out []ESRAblation
	for _, esr := range []units.Resistance{0, 1, 2, 5, 10, 20, 40, 80, 160} {
		tech := storage.Technology{
			Name: "sweep", UnitCap: 45 * units.MilliFarad, UnitVolume: 1,
			UnitESR: esr, RatedVoltage: 3.6,
		}
		b := storage.MustBank("sweep", storage.GroupOf(tech, 1))
		b.SetVoltage(2.4)
		out = append(out, ESRAblation{
			ESR:         esr,
			Cutoff:      sys.CutoffVoltage(b.ESR(), load),
			Extractable: sys.ExtractableEnergy(b, load),
		})
	}
	return out
}

// ESRTable renders the ESR sweep.
func ESRTable(rows []ESRAblation) *Table {
	t := &Table{
		Title:  "Ablation — ESR vs extractable energy (45 mF bank, 30 mW load)",
		Header: []string{"ESR", "cutoff voltage", "extractable energy"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.ESR.String(), r.Cutoff.String(), r.Extractable.String(),
		})
	}
	return t
}

// DeficitAblation sweeps the pre-charge voltage deficit and reports the
// energy a 45 mF burst bank loses to it — why Capy-R can beat Capy-P on
// accuracy for some event sequences (§6.4).
type DeficitAblation struct {
	Deficit   units.Voltage
	BurstBand units.Energy
	LossVsTop float64
}

// AblateDeficit runs the sweep.
func AblateDeficit() []DeficitAblation {
	sys := power.NewSystem(harvest.RegulatedSupply{Max: 10 * units.MilliWatt, V: 3.0})
	c := 45 * units.MilliFarad
	cut := sys.CutoffVoltage(25.0/6, 30*units.MilliWatt)
	full := units.BandEnergy(c, 2.4, cut)
	var out []DeficitAblation
	for _, d := range []units.Voltage{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		band := units.BandEnergy(c, 2.4-d, cut)
		out = append(out, DeficitAblation{
			Deficit:   d,
			BurstBand: band,
			LossVsTop: 1 - float64(band)/float64(full),
		})
	}
	return out
}

// DeficitTable renders the deficit sweep.
func DeficitTable(rows []DeficitAblation) *Table {
	t := &Table{
		Title:  "Ablation — pre-charge voltage deficit vs burst energy (45 mF bank)",
		Header: []string{"deficit", "burst band", "loss vs direct charge"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Deficit.String(), r.BurstBand.String(), fmt.Sprintf("%.0f%%", 100*r.LossVsTop),
		})
	}
	return t
}
