// Package experiments regenerates every figure and table of the
// paper's evaluation (§6) plus the §5.2 mechanism comparison, as
// structured results with renderable tables. The cmd/capybench CLI and
// the repository benchmarks are thin wrappers over this package; the
// per-experiment index lives in DESIGN.md.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"text/tabwriter"
)

// DefaultSeed is the seed every experiment uses unless overridden, so
// published numbers regenerate bit-identically.
const DefaultSeed int64 = 42

// Table is a rendered experiment result: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return tw.Flush()
}

// WriteCSV renders the table as CSV (header then rows; the title is
// omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
