package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"capybara/internal/apps"
	"capybara/internal/core"
	"capybara/internal/env"
	"capybara/internal/metrics"
	"capybara/internal/runner"
	"capybara/internal/units"
)

// Variants lists the evaluation systems in the paper's presentation
// order: Pwr, Fixed, CB-R, CB-P.
func Variants() []core.Variant {
	return []core.Variant{core.Continuous, core.Fixed, core.CapyR, core.CapyP}
}

// Matrix holds the full Fig. 8/9/11 run grid: every application under
// every power system, on one shared event schedule per application.
type Matrix struct {
	Seed int64
	// Runs indexes app name → variant → completed run.
	Runs map[string]map[core.Variant]*apps.Run
}

// RunMatrix executes the complete evaluation grid with the default
// schedules (§6.2: TA 50 events over 120 min; GRC and CSR 80 events
// over 42 min). The same schedule drives every system of an
// application, as on the paper's testbed. Cells run in parallel
// across every CPU; the tables are byte-identical at any worker count.
func RunMatrix(seed int64) (*Matrix, error) {
	return RunMatrixScaled(seed, 1.0)
}

// RunMatrixScaled runs the grid with event counts scaled by frac in
// (0, 1] — used by tests to keep wall time short.
func RunMatrixScaled(seed int64, frac float64) (*Matrix, error) {
	return RunMatrixParallel(context.Background(), seed, frac, 0)
}

// RunMatrixParallel runs the grid with one job per app×variant cell
// fanned across jobs workers (<= 0 means every CPU, 1 forces the
// serial path). Each cell regenerates its application's schedule from
// the seed with a private *rand.Rand, so every system of an
// application sees the identical event sequence — as on the paper's
// testbed — without any RNG state shared between goroutines, and the
// resulting tables are byte-identical at any worker count.
func RunMatrixParallel(ctx context.Context, seed int64, frac float64, jobs int) (*Matrix, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("experiments: bad scale %g", frac)
	}
	type cell struct {
		name    string
		spec    apps.Spec
		variant core.Variant
	}
	var cells []cell
	for _, name := range apps.SpecNames() {
		spec, err := apps.SpecByName(name)
		if err != nil {
			return nil, err
		}
		for _, v := range Variants() {
			cells = append(cells, cell{name: name, spec: spec, variant: v})
		}
	}
	runs, err := runner.Map(ctx, jobs, len(cells), func(ctx context.Context, i int) (*apps.Run, error) {
		c := cells[i]
		n := scaledEvents(c.spec.Events, frac)
		sched := env.Poisson(rand.New(rand.NewSource(seed)), n, c.spec.Mean, c.spec.Window)
		run, err := c.spec.Build(c.variant, sched, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s/%v: %w", c.name, c.variant, err)
		}
		if err := run.Execute(); err != nil {
			return nil, fmt.Errorf("experiments: run %s/%v: %w", c.name, c.variant, err)
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	m := &Matrix{Seed: seed, Runs: make(map[string]map[core.Variant]*apps.Run)}
	for i, run := range runs {
		c := cells[i]
		if m.Runs[c.name] == nil {
			m.Runs[c.name] = make(map[core.Variant]*apps.Run, 4)
		}
		m.Runs[c.name][c.variant] = run
	}
	return m, nil
}

// scaledEvents scales an event count by frac, keeping at least one.
func scaledEvents(events int, frac float64) int {
	n := int(float64(events) * frac)
	if n < 1 {
		n = 1
	}
	return n
}

// AccuracyTable renders Figure 8 — event detection accuracy per
// application and system, broken down by outcome.
func (m *Matrix) AccuracyTable() *Table {
	t := &Table{
		Title: "Figure 8 — event detection accuracy",
		Header: []string{"app", "system", "correct", "misclassified",
			"proximity-only", "missed", "correct %"},
	}
	for _, name := range apps.SpecNames() {
		for _, v := range Variants() {
			run := m.Runs[name][v]
			if run == nil {
				continue
			}
			a := run.Accuracy()
			t.Rows = append(t.Rows, []string{
				name, v.String(),
				fmt.Sprint(a.Correct), fmt.Sprint(a.Misclassified),
				fmt.Sprint(a.ProximityOnly), fmt.Sprint(a.Missed),
				fmt.Sprintf("%.0f%%", 100*a.FractionCorrect()),
			})
		}
	}
	return t
}

// LatencyTable renders Figure 9 — report latency for detected events.
// The delayed column is the §6.3 measure: the fraction of reported
// events whose latency exceeds 2× the continuous baseline's median
// (those that paid a charge on the critical path).
func (m *Matrix) LatencyTable() *Table {
	t := &Table{
		Title:  "Figure 9 — report latency for detected events",
		Header: []string{"app", "system", "reported", "mean", "median", "p95", "max", "delayed"},
	}
	for _, name := range apps.SpecNames() {
		var baseline units.Seconds
		if cont := m.Runs[name][core.Continuous]; cont != nil {
			baseline = cont.Latency().Median
		}
		for _, v := range Variants() {
			run := m.Runs[name][v]
			if run == nil {
				continue
			}
			lats := run.Rec.Latencies()
			s := metrics.Summarize(lats)
			if s.Count == 0 {
				t.Rows = append(t.Rows, []string{name, v.String(), "0", "-", "-", "-", "-", "-"})
				continue
			}
			delayed := metrics.DelayedFraction(lats, 2*baseline)
			t.Rows = append(t.Rows, []string{
				name, v.String(), fmt.Sprint(s.Count),
				s.Mean.String(), s.Median.String(), s.P95.String(), s.Max.String(),
				fmt.Sprintf("%.0f%%", 100*delayed),
			})
		}
	}
	return t
}

// GapTable renders Figure 11 — the distribution of times between
// samples in the TempAlarm application for the three intermittent
// systems, split into back-to-back, clean, and events-missed intervals.
func (m *Matrix) GapTable() *Table {
	t := &Table{
		Title: "Figure 11 — distribution of times between samples (TempAlarm)",
		Header: []string{"system", "back-to-back", "clean", "missed-event",
			"median meaningful gap", "max gap"},
	}
	for _, v := range []core.Variant{core.Fixed, core.CapyR, core.CapyP} {
		run := m.Runs["TempAlarm"][v]
		if run == nil {
			continue
		}
		gaps := run.Gaps()
		counts := metrics.GapCounts(gaps)
		var meaningful []units.Seconds
		var max units.Seconds
		for _, g := range gaps {
			if g.Duration > max {
				max = g.Duration
			}
			if g.Class != metrics.BackToBack {
				meaningful = append(meaningful, g.Duration)
			}
		}
		s := metrics.Summarize(meaningful)
		t.Rows = append(t.Rows, []string{
			v.String(),
			fmt.Sprint(counts[metrics.BackToBack]),
			fmt.Sprint(counts[metrics.Clean]),
			fmt.Sprint(counts[metrics.MissedEvent]),
			s.Median.String(), max.String(),
		})
	}
	return t
}

// GapHistogram bins the meaningful (non-back-to-back) gaps of one
// TempAlarm system for Fig. 11's long-interval panel.
func (m *Matrix) GapHistogram(v core.Variant) *metrics.Histogram {
	run := m.Runs["TempAlarm"][v]
	h := metrics.NewHistogram(1, 5, 10, 60, 110, 160, 210, 260, 310)
	if run == nil {
		return h
	}
	for _, g := range run.Gaps() {
		h.Add(g.Duration)
	}
	return h
}
