// Package metrics computes the paper's evaluation measures: event
// detection accuracy (Fig. 8, Fig. 10), report latency (Fig. 9), and
// inter-sample interval distributions (Fig. 11), plus small statistics
// and histogram helpers shared by the benchmarks and CLIs.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"capybara/internal/units"
)

// Outcome labels how an event was handled, matching Fig. 8's legend.
type Outcome string

const (
	// Correct: the event was detected and reported correctly.
	Correct Outcome = "correct"
	// Misclassified: reported, but with the wrong classification
	// (e.g. gesture direction decoded too late in the swing).
	Misclassified Outcome = "misclassified"
	// ProximityOnly: the sensor fired on proximity but produced no
	// gesture (GRC-specific).
	ProximityOnly Outcome = "proximity-only"
	// Missed: the device never observed the event (off or charging).
	Missed Outcome = "missed"
)

// Report is one event's disposition: when the event happened and when
// (if ever) the alert packet was received.
type Report struct {
	EventIndex int
	EventAt    units.Seconds
	ReportedAt units.Seconds
	Outcome    Outcome
}

// Latency returns the event-to-report latency.
func (r Report) Latency() units.Seconds { return r.ReportedAt - r.EventAt }

// Recorder collects an experiment run's observables. The zero value is
// ready to use.
type Recorder struct {
	samples []units.Seconds
	reports map[int]Report
}

// RecordSample notes that a sensor observed the world at time t.
func (r *Recorder) RecordSample(t units.Seconds) {
	r.samples = append(r.samples, t)
}

// Reset clears the recorder for reuse, keeping the backing storage.
// A long lifecycle retains tens of thousands of sample timestamps, so
// fleet-scale runs recycle recorders instead of allocating per device.
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	clear(r.reports)
}

// RecordReport notes an event's disposition. Only the first report per
// event index is kept: BLE retransmissions of the same alert do not
// improve accuracy, and real sniffers deduplicate too. A reported
// outcome upgrades an earlier Missed/ProximityOnly placeholder.
func (r *Recorder) RecordReport(rep Report) {
	if r.reports == nil {
		r.reports = make(map[int]Report)
	}
	if prev, ok := r.reports[rep.EventIndex]; ok {
		if rank(rep.Outcome) <= rank(prev.Outcome) {
			return
		}
	}
	r.reports[rep.EventIndex] = rep
}

// rank orders outcomes from worst to best so upgrades are well-defined.
func rank(o Outcome) int {
	switch o {
	case Correct:
		return 3
	case Misclassified:
		return 2
	case ProximityOnly:
		return 1
	default:
		return 0
	}
}

// SampleCount returns the number of samples recorded so far. Together
// with SampleAt it gives replay machinery (task.StepFuser) a
// copy-free view of the tail recorded during one engine step.
func (r *Recorder) SampleCount() int { return len(r.samples) }

// SampleAt returns the i-th recorded sample time.
func (r *Recorder) SampleAt(i int) units.Seconds { return r.samples[i] }

// ReportCount returns the number of distinct event reports recorded.
func (r *Recorder) ReportCount() int { return len(r.reports) }

// Samples returns the recorded sample times in order.
func (r *Recorder) Samples() []units.Seconds {
	out := make([]units.Seconds, len(r.samples))
	copy(out, r.samples)
	return out
}

// Reports returns the recorded per-event dispositions sorted by index.
func (r *Recorder) Reports() []Report {
	out := make([]Report, 0, len(r.reports))
	for _, rep := range r.reports {
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EventIndex < out[j].EventIndex })
	return out
}

// Accuracy is Fig. 8's stacked bar for one system: fractions of events
// by outcome.
type Accuracy struct {
	Total         int
	Correct       int
	Misclassified int
	ProximityOnly int
	Missed        int
}

// ComputeAccuracy tallies outcomes over totalEvents; events without a
// report count as missed.
func (r *Recorder) ComputeAccuracy(totalEvents int) Accuracy {
	a := Accuracy{Total: totalEvents}
	for _, rep := range r.reports {
		switch rep.Outcome {
		case Correct:
			a.Correct++
		case Misclassified:
			a.Misclassified++
		case ProximityOnly:
			a.ProximityOnly++
		}
	}
	a.Missed = totalEvents - a.Correct - a.Misclassified - a.ProximityOnly
	if a.Missed < 0 {
		a.Missed = 0
	}
	return a
}

// FractionCorrect returns the correct share in [0, 1].
func (a Accuracy) FractionCorrect() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.Total)
}

func (a Accuracy) String() string {
	return fmt.Sprintf("correct %d/%d (%.0f%%), misclassified %d, proximity-only %d, missed %d",
		a.Correct, a.Total, 100*a.FractionCorrect(), a.Misclassified, a.ProximityOnly, a.Missed)
}

// Latencies returns the event-to-report latency of every correctly or
// misclassified-reported event (events that produced a packet).
func (r *Recorder) Latencies() []units.Seconds {
	return r.AppendLatencies(nil)
}

// AppendLatencies appends the latencies Latencies would return to dst
// and returns the extended slice, in event-index order. Passing a
// recycled dst lets per-device aggregation loops avoid two allocations
// per device (the sorted report copy and the latency slice).
func (r *Recorder) AppendLatencies(dst []units.Seconds) []units.Seconds {
	idx := make([]int, 0, len(r.reports))
	for i, rep := range r.reports {
		if rep.Outcome == Correct || rep.Outcome == Misclassified {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	for _, i := range idx {
		dst = append(dst, r.reports[i].Latency())
	}
	return dst
}

// DelayedFraction returns the share of values exceeding threshold —
// the paper's "increased latency is incurred for 7 % of reported events
// in GRC-Fast and 54 % in GRC-Compact" measure (§6.3).
func DelayedFraction(xs []units.Seconds, threshold units.Seconds) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Summary is a five-number statistic over a series of durations.
type Summary struct {
	Count                  int
	Mean, Median, Min, Max units.Seconds
	P95                    units.Seconds
}

// Summarize computes a Summary; an empty input yields the zero value.
// NaN values are dropped before sorting — a single undefined latency
// (e.g. a report that never happened subtracted from one that did)
// would otherwise poison the sort order and every derived statistic.
func Summarize(xs []units.Seconds) Summary {
	sorted := make([]units.Seconds, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(float64(x)) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		return Summary{}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum units.Seconds
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		Count:  len(sorted),
		Mean:   sum / units.Seconds(len(sorted)),
		Median: sorted[len(sorted)/2],
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P95:    sorted[(len(sorted)*95)/100],
	}
}

func (s Summary) String() string {
	if s.Count == 0 {
		return "no data"
	}
	return fmt.Sprintf("n=%d mean=%v median=%v min=%v max=%v p95=%v",
		s.Count, s.Mean, s.Median, s.Min, s.Max, s.P95)
}
