package metrics

import (
	"fmt"
	"sort"

	"capybara/internal/units"
)

// GapClass classifies one inter-sample interval, matching Fig. 11's
// three colors.
type GapClass int

const (
	// BackToBack intervals are sub-second bursts of limited utility
	// (Fig. 11's gray bars).
	BackToBack GapClass = iota
	// Clean intervals contain no events: nothing was missed (green).
	Clean
	// MissedEvent intervals contain one or more events that were
	// necessarily missed while the device was not sampling (red).
	MissedEvent
)

func (g GapClass) String() string {
	switch g {
	case BackToBack:
		return "back-to-back"
	case Clean:
		return "clean"
	default:
		return "missed-event"
	}
}

// BackToBackThreshold separates burst sampling from meaningful
// intervals (Fig. 11 grays out sub-second gaps).
const BackToBackThreshold units.Seconds = 1.0

// Gap is one inter-sample interval.
type Gap struct {
	Start, Duration units.Seconds
	Class           GapClass
}

// Window is a time span [Start, End) during which an event was
// observable.
type Window struct {
	Start, End units.Seconds
}

// AnalyzeGaps computes the intervals between consecutive samples and
// classifies each: back-to-back if shorter than BackToBackThreshold,
// missed-event if at least one event window fell entirely inside the
// interval (so no sample could have observed it), clean otherwise.
func AnalyzeGaps(samples []units.Seconds, events []Window) []Gap {
	if len(samples) < 2 {
		return nil
	}
	sorted := make([]units.Seconds, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	gaps := make([]Gap, 0, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		g := Gap{Start: sorted[i-1], Duration: sorted[i] - sorted[i-1]}
		switch {
		case g.Duration < BackToBackThreshold:
			g.Class = BackToBack
		case anyWindowInside(events, sorted[i-1], sorted[i]):
			g.Class = MissedEvent
		default:
			g.Class = Clean
		}
		gaps = append(gaps, g)
	}
	return gaps
}

func anyWindowInside(events []Window, t0, t1 units.Seconds) bool {
	for _, w := range events {
		if w.Start > t0 && w.End < t1 {
			return true
		}
	}
	return false
}

// GapCounts tallies gaps by class.
func GapCounts(gaps []Gap) map[GapClass]int {
	counts := make(map[GapClass]int, 3)
	for _, g := range gaps {
		counts[g.Class]++
	}
	return counts
}

// Histogram bins values by duration. Edges must be ascending; values
// below the first edge land in bin 0, values at or above the last edge
// in the final bin.
type Histogram struct {
	Edges  []units.Seconds
	Counts []int
}

// NewHistogram builds a histogram with len(edges)+1 bins.
func NewHistogram(edges ...units.Seconds) *Histogram {
	return &Histogram{Edges: edges, Counts: make([]int, len(edges)+1)}
}

// Add bins one value. Counts is grown on demand so a Histogram built
// by hand (or the zero value, a single all-encompassing bin) works the
// same as one from NewHistogram instead of indexing out of range.
func (h *Histogram) Add(v units.Seconds) {
	i := sort.Search(len(h.Edges), func(i int) bool { return v < h.Edges[i] })
	for len(h.Counts) <= len(h.Edges) {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[i]++
}

// Total returns the number of values binned.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinLabel renders bin i's range for tables.
func (h *Histogram) BinLabel(i int) string {
	switch {
	case len(h.Edges) == 0:
		return "all"
	case i == 0:
		return fmt.Sprintf("< %v", h.Edges[0])
	case i >= len(h.Edges):
		return fmt.Sprintf("≥ %v", h.Edges[len(h.Edges)-1])
	default:
		return fmt.Sprintf("%v – %v", h.Edges[i-1], h.Edges[i])
	}
}
