package metrics

import (
	"math"
	"reflect"
	"testing"

	"capybara/internal/units"
)

func TestRecorderDeduplicatesReports(t *testing.T) {
	var r Recorder
	r.RecordReport(Report{EventIndex: 1, EventAt: 10, ReportedAt: 12, Outcome: Correct})
	// A retransmission of the same event must not create a second row.
	r.RecordReport(Report{EventIndex: 1, EventAt: 10, ReportedAt: 30, Outcome: Correct})
	reps := r.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d, want 1", len(reps))
	}
	if reps[0].ReportedAt != 12 {
		t.Fatalf("first report must win: %v", reps[0].ReportedAt)
	}
}

func TestRecorderUpgradesOutcome(t *testing.T) {
	var r Recorder
	r.RecordReport(Report{EventIndex: 2, Outcome: ProximityOnly})
	r.RecordReport(Report{EventIndex: 2, Outcome: Correct, ReportedAt: 5})
	reps := r.Reports()
	if len(reps) != 1 || reps[0].Outcome != Correct {
		t.Fatalf("outcome not upgraded: %+v", reps)
	}
	// A downgrade must be ignored.
	r.RecordReport(Report{EventIndex: 2, Outcome: Misclassified})
	if got := r.Reports()[0].Outcome; got != Correct {
		t.Fatalf("outcome downgraded to %v", got)
	}
}

func TestComputeAccuracy(t *testing.T) {
	var r Recorder
	r.RecordReport(Report{EventIndex: 0, Outcome: Correct})
	r.RecordReport(Report{EventIndex: 1, Outcome: Correct})
	r.RecordReport(Report{EventIndex: 2, Outcome: Misclassified})
	r.RecordReport(Report{EventIndex: 3, Outcome: ProximityOnly})
	a := r.ComputeAccuracy(10)
	want := Accuracy{Total: 10, Correct: 2, Misclassified: 1, ProximityOnly: 1, Missed: 6}
	if a != want {
		t.Fatalf("accuracy = %+v, want %+v", a, want)
	}
	if a.FractionCorrect() != 0.2 {
		t.Fatalf("fraction = %g", a.FractionCorrect())
	}
	if a.String() == "" {
		t.Error("empty stringer")
	}
	if (Accuracy{}).FractionCorrect() != 0 {
		t.Error("zero-total fraction should be 0")
	}
}

func TestLatencies(t *testing.T) {
	var r Recorder
	r.RecordReport(Report{EventIndex: 0, EventAt: 10, ReportedAt: 12.5, Outcome: Correct})
	r.RecordReport(Report{EventIndex: 1, EventAt: 20, ReportedAt: 21, Outcome: Misclassified})
	r.RecordReport(Report{EventIndex: 2, EventAt: 30, Outcome: Missed})
	got := r.Latencies()
	if !reflect.DeepEqual(got, []units.Seconds{2.5, 1}) {
		t.Fatalf("latencies = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]units.Seconds{5, 1, 3, 2, 4})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stringer")
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.String() != "no data" {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestSummarizeP95(t *testing.T) {
	xs := make([]units.Seconds, 100)
	for i := range xs {
		xs[i] = units.Seconds(i + 1)
	}
	s := Summarize(xs)
	if s.P95 != 96 {
		t.Fatalf("p95 = %v, want 96", s.P95)
	}
}

func TestAnalyzeGaps(t *testing.T) {
	samples := []units.Seconds{0, 0.5, 0.9, 10, 120}
	events := []Window{
		{Start: 50, End: 51},   // entirely inside the 10→120 gap: missed
		{Start: 9.5, End: 9.9}, // inside 0.9→10: missed
	}
	gaps := AnalyzeGaps(samples, events)
	if len(gaps) != 4 {
		t.Fatalf("gaps = %d, want 4", len(gaps))
	}
	wantClasses := []GapClass{BackToBack, BackToBack, MissedEvent, MissedEvent}
	for i, g := range gaps {
		if g.Class != wantClasses[i] {
			t.Errorf("gap %d class = %v, want %v", i, g.Class, wantClasses[i])
		}
	}
	counts := GapCounts(gaps)
	if counts[BackToBack] != 2 || counts[MissedEvent] != 2 || counts[Clean] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestAnalyzeGapsCleanAndEdge(t *testing.T) {
	// An event overlapping a sample time is NOT missed: the window is
	// only missed when it sits strictly inside the gap.
	samples := []units.Seconds{0, 10}
	events := []Window{{Start: 9, End: 11}}
	gaps := AnalyzeGaps(samples, events)
	if gaps[0].Class != Clean {
		t.Fatalf("overlapping window misclassified: %v", gaps[0].Class)
	}
	if AnalyzeGaps([]units.Seconds{5}, nil) != nil {
		t.Error("single sample should yield no gaps")
	}
	// Unsorted input is sorted internally.
	g := AnalyzeGaps([]units.Seconds{10, 0}, nil)
	if len(g) != 1 || g[0].Duration != 10 {
		t.Fatalf("unsorted input mishandled: %+v", g)
	}
}

func TestGapClassStrings(t *testing.T) {
	for _, c := range []GapClass{BackToBack, Clean, MissedEvent} {
		if c.String() == "" {
			t.Errorf("class %d empty", c)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 10, 60)
	for _, v := range []units.Seconds{0.5, 0.9, 5, 30, 120, 60} {
		h.Add(v)
	}
	want := []int{2, 1, 1, 2}
	if !reflect.DeepEqual(h.Counts, want) {
		t.Fatalf("counts = %v, want %v", h.Counts, want)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	labels := []string{h.BinLabel(0), h.BinLabel(1), h.BinLabel(3)}
	for _, l := range labels {
		if l == "" {
			t.Error("empty bin label")
		}
	}
	if NewHistogram().BinLabel(0) != "all" {
		t.Error("edgeless histogram label")
	}
}

func TestRecorderSamples(t *testing.T) {
	var r Recorder
	r.RecordSample(1)
	r.RecordSample(2)
	got := r.Samples()
	if !reflect.DeepEqual(got, []units.Seconds{1, 2}) {
		t.Fatalf("samples = %v", got)
	}
	got[0] = 99
	if r.Samples()[0] != 1 {
		t.Fatal("Samples() must return a copy")
	}
}

func TestDelayedFraction(t *testing.T) {
	xs := []units.Seconds{0.1, 0.2, 5, 60}
	if got := DelayedFraction(xs, 1); got != 0.5 {
		t.Fatalf("DelayedFraction = %g, want 0.5", got)
	}
	if got := DelayedFraction(nil, 1); got != 0 {
		t.Fatalf("empty DelayedFraction = %g", got)
	}
	if got := DelayedFraction(xs, 0.05); got != 1 {
		t.Fatalf("all-delayed = %g", got)
	}
}

// TestSummarizeDropsNaN pins the NaN guard: a single undefined latency
// used to poison the sort order, so every derived statistic (including
// the mean) came out NaN.
func TestSummarizeDropsNaN(t *testing.T) {
	nan := units.Seconds(math.NaN())
	s := Summarize([]units.Seconds{3, nan, 1, 2, nan})
	if s.Count != 3 {
		t.Fatalf("count %d, want 3 (NaNs dropped)", s.Count)
	}
	if math.IsNaN(float64(s.Mean)) || math.IsNaN(float64(s.Median)) ||
		math.IsNaN(float64(s.Min)) || math.IsNaN(float64(s.Max)) || math.IsNaN(float64(s.P95)) {
		t.Fatalf("NaN leaked into summary: %+v", s)
	}
	if s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("wrong order statistics after NaN filter: %+v", s)
	}
	if all := Summarize([]units.Seconds{nan, nan}); all.Count != 0 {
		t.Fatalf("all-NaN input should summarize to the zero value, got %+v", all)
	}
}

// TestEmptySampleGuards pins the division-by-zero guards on the
// fraction helpers and the empty-input summary.
func TestEmptySampleGuards(t *testing.T) {
	if f := (Accuracy{}).FractionCorrect(); f != 0 {
		t.Fatalf("FractionCorrect on zero events = %v, want 0", f)
	}
	if f := DelayedFraction(nil, 1); f != 0 {
		t.Fatalf("DelayedFraction on no samples = %v, want 0", f)
	}
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zero value", s)
	}
}
