package metrics

import (
	"testing"

	"capybara/internal/units"
)

// TestHistogramZeroValue pins the lazy-grow fix: a Histogram built by
// hand (Edges set, Counts left nil — or the plain zero value) used to
// panic with an index-out-of-range on the first Add.
func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	h.Add(1)
	h.Add(100)
	if got := h.Total(); got != 2 {
		t.Fatalf("zero-value histogram total %d, want 2", got)
	}
	if h.BinLabel(0) != "all" {
		t.Fatalf("zero-value bin label %q", h.BinLabel(0))
	}

	manual := Histogram{Edges: []units.Seconds{1, 10}}
	for _, v := range []units.Seconds{0.5, 5, 50} {
		manual.Add(v)
	}
	if want := []int{1, 1, 1}; len(manual.Counts) != 3 ||
		manual.Counts[0] != want[0] || manual.Counts[1] != want[1] || manual.Counts[2] != want[2] {
		t.Fatalf("hand-built histogram counts %v, want %v", manual.Counts, want)
	}
}

// TestHistogramBinning pins the NewHistogram path against the same
// inputs so the lazy-grow branch cannot drift from it.
func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(1, 10)
	for _, v := range []units.Seconds{0.5, 5, 50, 10} {
		h.Add(v)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 2 {
		t.Fatalf("counts %v, want [1 1 2]", h.Counts)
	}
	if h.Total() != 4 {
		t.Fatalf("total %d, want 4", h.Total())
	}
}
