package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capybara/internal/units"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.String() != "no data" || r.Variance() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("empty accumulator not inert")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N != 8 || r.Mean != 5 {
		t.Fatalf("mean: %+v", r)
	}
	if v := r.Variance(); math.Abs(v-4) > 1e-12 {
		t.Fatalf("variance %v, want 4", v)
	}
	if r.StdDev() != math.Sqrt(r.Variance()) {
		t.Fatal("StdDev != sqrt(Variance)")
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("extremes: %+v", r)
	}
	if r.String() == "" {
		t.Fatal("empty render")
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	b.Add(3)
	a.Merge(b) // empty ← nonempty adopts
	if a.N != 1 || a.Mean != 3 || a.Min() != 3 {
		t.Fatalf("adopt: %+v", a)
	}
	a.Merge(Running{}) // nonempty ← empty is a no-op
	if a.N != 1 || a.Mean != 3 {
		t.Fatalf("no-op: %+v", a)
	}
}

// TestRunningMergeEquivalence is the shard-fold property: splitting a
// stream at any point and merging the two accumulators matches the
// single-pass result to float tolerance.
func TestRunningMergeEquivalence(t *testing.T) {
	f := func(seed int64, rawSplit uint16, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n)%200 + 2
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.NormFloat64()*1e3 + 50
		}
		split := int(rawSplit) % m

		var single Running
		for _, x := range xs {
			single.Add(x)
		}
		var left, right Running
		for _, x := range xs[:split] {
			left.Add(x)
		}
		for _, x := range xs[split:] {
			right.Add(x)
		}
		left.Merge(right)

		if left.N != single.N || left.Min() != single.Min() || left.Max() != single.Max() {
			t.Logf("count/extremes: merged %+v single %+v", left, single)
			return false
		}
		scale := math.Abs(single.Mean) + 1
		if math.Abs(left.Mean-single.Mean) > 1e-9*scale {
			t.Logf("mean: merged %v single %v", left.Mean, single.Mean)
			return false
		}
		vScale := single.Variance() + 1
		if math.Abs(left.Variance()-single.Variance()) > 1e-9*vScale {
			t.Logf("variance: merged %v single %v", left.Variance(), single.Variance())
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 10, 60)
	b := NewHistogram(1, 10, 60)
	for _, v := range []units.Seconds{0.5, 3, 3, 70} {
		a.Add(v)
	}
	for _, v := range []units.Seconds{12, 0.1, 100} {
		b.Add(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 1, 2}
	for i, c := range a.Counts {
		if c != want[i] {
			t.Fatalf("counts %v, want %v", a.Counts, want)
		}
	}
	if a.Total() != 7 {
		t.Fatalf("total %d", a.Total())
	}
}

func TestHistogramMergeShapes(t *testing.T) {
	// Zero-value histogram adopts the other's shape.
	var z Histogram
	o := NewHistogram(1, 2)
	o.Add(1.5)
	if err := z.Merge(o); err != nil {
		t.Fatal(err)
	}
	if z.Total() != 1 || len(z.Edges) != 2 {
		t.Fatalf("adopt: %+v", z)
	}
	// Adopted state is a copy, not an alias.
	z.Add(1.5)
	if o.Counts[1] != 1 {
		t.Fatalf("merge aliased counts: %+v", o)
	}
	// Nil merge is a no-op.
	if err := z.Merge(nil); err != nil {
		t.Fatal(err)
	}
	// Mismatched edges are an error, not silent nonsense.
	if err := z.Merge(NewHistogram(1, 3)); err == nil {
		t.Fatal("mismatched edge values accepted")
	}
	if err := z.Merge(NewHistogram(1)); err == nil {
		t.Fatal("mismatched edge count accepted")
	}
	// A hand-built histogram with short Counts lazy-grows on merge.
	short := &Histogram{Edges: []units.Seconds{1, 2}}
	if err := short.Merge(o); err != nil {
		t.Fatal(err)
	}
	if short.Total() != 1 {
		t.Fatalf("short merge: %+v", short)
	}
}

// TestHistogramMergeEquivalence: merging per-shard histograms is
// integer-exact against a single-pass fill, for any split.
func TestHistogramMergeEquivalence(t *testing.T) {
	f := func(seed int64, rawSplit uint16, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n)%300 + 1
		xs := make([]units.Seconds, m)
		for i := range xs {
			xs[i] = units.Seconds(rng.Float64() * 120)
		}
		split := int(rawSplit) % m

		single := NewHistogram(1, 5, 10, 30, 60)
		for _, x := range xs {
			single.Add(x)
		}
		left, right := NewHistogram(1, 5, 10, 30, 60), NewHistogram(1, 5, 10, 30, 60)
		for _, x := range xs[:split] {
			left.Add(x)
		}
		for _, x := range xs[split:] {
			right.Add(x)
		}
		if err := left.Merge(right); err != nil {
			t.Log(err)
			return false
		}
		for i, c := range single.Counts {
			if left.Counts[i] != c {
				t.Logf("bin %d: merged %d single %d", i, left.Counts[i], c)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
