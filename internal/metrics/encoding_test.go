package metrics

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"capybara/internal/units"
)

// The shard protocol ships Running and Histogram accumulators between
// processes (gob frames today; JSON is the documented alternative
// encoding). These property tests pin the contract the distributed fold
// depends on: encode → decode → Merge is bit-identical to merging the
// original value directly. Running holds float64 state, so "equal"
// means math.Float64bits equality, not tolerance.

func gobRoundTrip[T any](t *testing.T, v T) T {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out T
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

func jsonRoundTrip[T any](t *testing.T, v T) T {
	t.Helper()
	b, err := json.Marshal(&v)
	if err != nil {
		t.Fatalf("json marshal: %v", err)
	}
	var out T
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("json unmarshal: %v", err)
	}
	return out
}

// sameBits compares two floats exactly (NaN-safe, -0 vs +0 sensitive —
// the decoded accumulator must replay the identical operations).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func runningEqual(a, b Running) bool {
	return a.N == b.N && sameBits(a.Mean, b.Mean) && sameBits(a.M2, b.M2) &&
		sameBits(a.MinV, b.MinV) && sameBits(a.MaxV, b.MaxV)
}

// randomRunning folds n draws spanning many magnitudes (including
// negatives and subnormal-ish values) into an accumulator.
func randomRunning(rng *rand.Rand, n int) Running {
	var r Running
	for i := 0; i < n; i++ {
		x := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
		r.Add(x)
	}
	return r
}

// TestRunningRoundTripMerge: for random split streams, decode(encode(b))
// merged into a equals b merged into a, bit for bit, under both codecs.
func TestRunningRoundTripMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	codecs := []struct {
		name string
		rt   func(*testing.T, Running) Running
	}{
		{"gob", gobRoundTrip[Running]},
		{"json", jsonRoundTrip[Running]},
	}
	for _, codec := range codecs {
		for trial := 0; trial < 200; trial++ {
			a := randomRunning(rng, rng.Intn(50))
			b := randomRunning(rng, rng.Intn(50))

			// Round trip alone must be lossless.
			decoded := codec.rt(t, b)
			if !runningEqual(b, decoded) {
				t.Fatalf("%s trial %d: round trip changed the accumulator: %+v vs %+v",
					codec.name, trial, b, decoded)
			}

			direct := a
			direct.Merge(b)
			viaWire := a
			viaWire.Merge(decoded)
			if !runningEqual(direct, viaWire) {
				t.Fatalf("%s trial %d: merge-after-decode diverged: %+v vs %+v",
					codec.name, trial, direct, viaWire)
			}
		}

		// The zero value (an empty accumulator) must survive the wire:
		// gob omits zero fields, JSON writes them — either way the
		// decoded value must still merge as a no-op.
		var empty Running
		decoded := codec.rt(t, empty)
		if !runningEqual(empty, decoded) {
			t.Fatalf("%s: empty accumulator changed: %+v", codec.name, decoded)
		}
		target := randomRunning(rng, 17)
		want := target
		target.Merge(decoded)
		if !runningEqual(target, want) {
			t.Fatalf("%s: merging a decoded empty accumulator changed state", codec.name)
		}
	}
}

func histogramsEqual(a, b *Histogram) bool {
	if len(a.Edges) != len(b.Edges) || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Edges {
		if !sameBits(float64(a.Edges[i]), float64(b.Edges[i])) {
			return false
		}
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	return true
}

func randomHistogram(rng *rand.Rand, edges []units.Seconds, fills int) *Histogram {
	h := NewHistogram(edges...)
	for i := 0; i < fills; i++ {
		h.Add(units.Seconds(rng.Float64() * 200))
	}
	return h
}

// TestHistogramRoundTripMerge: decode(encode(b)) merged into a equals b
// merged into a — counts are integers, so equality is exact, and the
// edge floats must survive bit-identically or Merge would reject them.
func TestHistogramRoundTripMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	codecs := []struct {
		name string
		rt   func(*testing.T, Histogram) Histogram
	}{
		{"gob", gobRoundTrip[Histogram]},
		{"json", jsonRoundTrip[Histogram]},
	}
	for _, codec := range codecs {
		for trial := 0; trial < 200; trial++ {
			nEdges := 1 + rng.Intn(8)
			edges := make([]units.Seconds, 0, nEdges)
			e := rng.Float64() * 10
			for i := 0; i < nEdges; i++ {
				e += rng.Float64() * 30
				edges = append(edges, units.Seconds(e))
			}
			a := randomHistogram(rng, edges, rng.Intn(100))
			b := randomHistogram(rng, edges, rng.Intn(100))

			decoded := codec.rt(t, *b)
			if !histogramsEqual(b, &decoded) {
				t.Fatalf("%s trial %d: round trip changed the histogram: %+v vs %+v",
					codec.name, trial, b, decoded)
			}

			direct := *a
			direct.Counts = append([]int(nil), a.Counts...)
			if err := direct.Merge(b); err != nil {
				t.Fatalf("%s trial %d: direct merge: %v", codec.name, trial, err)
			}
			viaWire := *a
			viaWire.Counts = append([]int(nil), a.Counts...)
			if err := viaWire.Merge(&decoded); err != nil {
				t.Fatalf("%s trial %d: merge after decode rejected the edges: %v",
					codec.name, trial, err)
			}
			if !histogramsEqual(&direct, &viaWire) {
				t.Fatalf("%s trial %d: merge-after-decode diverged: %+v vs %+v",
					codec.name, trial, direct, viaWire)
			}
		}

		// Zero-value histogram: decodes empty and adopts the other
		// side's shape on merge, same as a never-encoded zero value.
		var empty Histogram
		decoded := codec.rt(t, empty)
		if len(decoded.Edges) != 0 || len(decoded.Counts) != 0 {
			t.Fatalf("%s: empty histogram grew on the wire: %+v", codec.name, decoded)
		}
		src := randomHistogram(rng, []units.Seconds{1, 5}, 9)
		if err := decoded.Merge(src); err != nil {
			t.Fatalf("%s: decoded empty histogram rejected adoption: %v", codec.name, err)
		}
		if !histogramsEqual(&decoded, src) {
			t.Fatalf("%s: adoption after decode differs: %+v vs %+v", codec.name, decoded, src)
		}
	}
}
