package metrics

import (
	"fmt"
	"math"
)

// Streaming aggregation for fleet-scale runs: shards accumulate
// constant-size state per metric and fold together at the end, so
// memory is O(shards), not O(devices).

// Running is an online mean/variance accumulator (Welford's algorithm)
// with a parallel combiner (Chan et al.). The zero value is an empty
// accumulator. Accumulators merge associatively: folding per-shard
// Runnings equals a single-pass accumulation over the concatenated
// stream up to float rounding (see the stream property tests).
type Running struct {
	// N is the number of observations.
	N int64
	// Mean is the running mean (0 when empty).
	Mean float64
	// M2 is the sum of squared deviations from the mean.
	M2 float64
	// MinV and MaxV track the extremes (undefined when empty).
	MinV, MaxV float64
}

// Add folds one observation in.
func (r *Running) Add(x float64) {
	r.N++
	if r.N == 1 {
		r.Mean, r.MinV, r.MaxV = x, x, x
		r.M2 = 0
		return
	}
	d := x - r.Mean
	r.Mean += d / float64(r.N)
	r.M2 += d * (x - r.Mean)
	if x < r.MinV {
		r.MinV = x
	}
	if x > r.MaxV {
		r.MaxV = x
	}
}

// Merge folds another accumulator in, as if o's observations had been
// Added to r.
func (r *Running) Merge(o Running) {
	if o.N == 0 {
		return
	}
	if r.N == 0 {
		*r = o
		return
	}
	n := float64(r.N + o.N)
	d := o.Mean - r.Mean
	r.Mean += d * float64(o.N) / n
	r.M2 += o.M2 + d*d*float64(r.N)*float64(o.N)/n
	r.N += o.N
	if o.MinV < r.MinV {
		r.MinV = o.MinV
	}
	if o.MaxV > r.MaxV {
		r.MaxV = o.MaxV
	}
}

// Variance returns the population variance (0 for fewer than two
// observations).
func (r *Running) Variance() float64 {
	if r.N < 2 {
		return 0
	}
	return r.M2 / float64(r.N)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min and Max return the extremes, or 0 when empty.
func (r *Running) Min() float64 {
	if r.N == 0 {
		return 0
	}
	return r.MinV
}

func (r *Running) Max() float64 {
	if r.N == 0 {
		return 0
	}
	return r.MaxV
}

func (r *Running) String() string {
	if r.N == 0 {
		return "no data"
	}
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		r.N, r.Mean, r.StdDev(), r.Min(), r.Max())
}

// Merge folds another histogram's counts into h. The two must have been
// built over identical edges — merging differently-binned histograms
// has no meaning — and since counts are integers the merge is exact:
// any fold order equals a single-pass fill. An empty h (zero value or
// all-zero counts with no edges) adopts o's shape.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(h.Edges) == 0 && len(h.Counts) == 0 {
		h.Edges = append(h.Edges, o.Edges...)
		h.Counts = append(h.Counts, o.Counts...)
		return nil
	}
	if len(h.Edges) != len(o.Edges) {
		return fmt.Errorf("metrics: merging histograms with %d vs %d edges",
			len(h.Edges), len(o.Edges))
	}
	for i, e := range h.Edges {
		if o.Edges[i] != e {
			return fmt.Errorf("metrics: merging histograms with mismatched edge %d: %v vs %v",
				i, e, o.Edges[i])
		}
	}
	for len(h.Counts) <= len(h.Edges) {
		h.Counts = append(h.Counts, 0)
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	return nil
}
