// Package storage models the energy-buffering capacitors of a Capybara
// power system: capacitor technologies with their volumetric density,
// equivalent series resistance (ESR), leakage, and voltage rating, and
// banks composed of parallel groups of unit capacitors.
//
// The package corresponds to the physical capacitor array on the
// Capybara board (paper §2.2.2 and §5.2). It deals only in physics —
// switches, boosters, and reconfiguration policy live in the reservoir
// and power packages.
package storage

import (
	"errors"
	"fmt"
	"math"

	"capybara/internal/units"
)

// Technology describes one capacitor product family. Values are taken
// from datasheet-scale figures for the parts the paper names (X5R
// ceramic, tantalum, Seiko CPH3225A supercapacitor, EDLC supercaps).
type Technology struct {
	// Name identifies the family, e.g. "ceramic-X5R".
	Name string
	// UnitCap is the capacitance of a single unit capacitor.
	UnitCap units.Capacitance
	// UnitVolume is the board volume consumed by one unit.
	UnitVolume units.Volume
	// UnitESR is the equivalent series resistance of one unit.
	// Parallel units divide this (paper §2.2.2: ESR is inversely
	// proportional to the number of capacitors connected in parallel).
	UnitESR units.Resistance
	// UnitLeak is the self-discharge (parallel leakage) resistance of
	// one unit. Zero means leakage is negligible at experiment scale.
	UnitLeak units.Resistance
	// RatedVoltage is the maximum safe charge voltage.
	RatedVoltage units.Voltage
	// CycleLife is the number of full charge/discharge cycles the part
	// sustains before significant degradation; zero means effectively
	// unlimited (ceramics). EDLCs are the fragile, dense parts the
	// paper's wear-leveling discussion targets (§5.2).
	CycleLife int
	// MinTemperature is the rated operating floor in °C. The CapySat
	// case study's −40 °C requirement (§6.6) disqualifies parts whose
	// floor is higher — batteries and many supercapacitors.
	MinTemperature float64
	// CapTempCoeff is the fractional capacitance change per °C away
	// from 25 °C (negative: the part loses capacitance when cold).
	CapTempCoeff float64
	// ESRColdFactor is the multiplicative ESR growth per °C below
	// 25 °C (1 = temperature-independent). Electrolytes thicken in the
	// cold; ceramics barely care.
	ESRColdFactor float64
}

// ErrTooCold reports a part operated below its rated floor.
var ErrTooCold = errors.New("storage: below the technology's rated temperature floor")

// AtTemperature returns the technology derated to celsius: capacitance
// scaled by its temperature coefficient and ESR grown by the cold
// factor. Operating below the rated floor returns ErrTooCold — the
// part is disqualified, as §6.6 disqualifies batteries and many
// supercapacitors at −40 °C.
func (t Technology) AtTemperature(celsius float64) (Technology, error) {
	if celsius < t.MinTemperature {
		return Technology{}, fmt.Errorf("%s rated to %g °C, asked for %g °C: %w",
			t.Name, t.MinTemperature, celsius, ErrTooCold)
	}
	const reference = 25.0
	delta := celsius - reference
	out := t
	scale := 1 + t.CapTempCoeff*delta
	if scale < 0.05 {
		scale = 0.05
	}
	out.UnitCap = units.Capacitance(float64(t.UnitCap) * scale)
	if delta < 0 && t.ESRColdFactor > 1 {
		out.UnitESR = units.Resistance(float64(t.UnitESR) * math.Pow(t.ESRColdFactor, -delta))
	}
	out.Name = fmt.Sprintf("%s@%g°C", t.Name, celsius)
	return out, nil
}

// Density returns the volumetric capacitance density in F/mm³.
func (t Technology) Density() float64 {
	if t.UnitVolume <= 0 {
		return 0
	}
	return float64(t.UnitCap) / float64(t.UnitVolume)
}

func (t Technology) String() string {
	return fmt.Sprintf("%s (%v / %v, ESR %v)", t.Name, t.UnitCap, t.UnitVolume, t.UnitESR)
}

// The technology catalog. The paper's prototypes use X5R ceramics,
// tantalum electrolytics, the ultra-compact CPH3225A supercapacitor,
// and larger EDLC supercaps for the big banks.
var (
	// CeramicX5R models a 22 µF X5R MLCC in a 1210 package
	// (3.2×2.5×1.5 mm). Low density, negligible ESR, no wear.
	CeramicX5R = Technology{
		Name:           "ceramic-X5R",
		UnitCap:        22 * units.MicroFarad,
		UnitVolume:     12,
		UnitESR:        0.01,
		UnitLeak:       0, // negligible over experiment timescales
		RatedVoltage:   6.3,
		MinTemperature: -55,
		CapTempCoeff:   0.002, // X5R: ±15 % over −55…+85 °C
		ESRColdFactor:  1.001,
	}

	// Tantalum models a 330 µF tantalum electrolytic in a 7343 case
	// (7.3×4.3×2.8 mm). Mid density, sub-ohm ESR.
	Tantalum = Technology{
		Name:           "tantalum",
		UnitCap:        330 * units.MicroFarad,
		UnitVolume:     88,
		UnitESR:        0.5,
		UnitLeak:       0,
		RatedVoltage:   6.3,
		MinTemperature: -55,
		CapTempCoeff:   0.001,
		ESRColdFactor:  1.02,
	}

	// SupercapCPH3225A models the Seiko CPH3225A: 11 mF in
	// 3.2×2.5×0.9 mm with a very high ESR (~160 Ω) that limits useful
	// extraction without an output booster (paper §2.2.2, Fig. 4).
	SupercapCPH3225A = Technology{
		Name:           "supercap-CPH3225A",
		UnitCap:        11 * units.MilliFarad,
		UnitVolume:     7.2,
		UnitESR:        160,
		UnitLeak:       50e6,
		RatedVoltage:   3.3,
		CycleLife:      100_000,
		MinTemperature: -40, // one of the few supercaps rated this low
		CapTempCoeff:   0.001,
		ESRColdFactor:  1.01,
	}

	// EDLC models a small-can 7.5 mF electric double-layer capacitor
	// with moderate ESR, used for the large Capybara banks.
	EDLC = Technology{
		Name:           "EDLC",
		UnitCap:        7.5 * units.MilliFarad,
		UnitVolume:     50,
		UnitESR:        25,
		UnitLeak:       100e6,
		RatedVoltage:   3.6,
		CycleLife:      500_000,
		MinTemperature: -25, // typical aqueous EDLC floor: disqualified at −40 °C
		CapTempCoeff:   0.004,
		ESRColdFactor:  1.04,
	}

	// ThinFilmBattery is a thin-film lithium pseudo-technology used to
	// demonstrate §6.6's battery disqualification: high density, but an
	// operating floor far above −40 °C and a tiny cycle life.
	ThinFilmBattery = Technology{
		Name:           "thin-film-battery",
		UnitCap:        2, // farad-equivalent of ~1 mAh at 2.4 V nominal
		UnitVolume:     120,
		UnitESR:        40,
		UnitLeak:       500e6,
		RatedVoltage:   4.0,
		CycleLife:      1_000,
		MinTemperature: -10,
		CapTempCoeff:   0.01,
		ESRColdFactor:  1.08,
	}
)

// Catalog lists every built-in technology, for sweeps and CLIs.
func Catalog() []Technology {
	return []Technology{CeramicX5R, Tantalum, SupercapCPH3225A, EDLC, ThinFilmBattery}
}

// TechnologyByName returns the catalog entry with the given name.
func TechnologyByName(name string) (Technology, error) {
	for _, t := range Catalog() {
		if t.Name == name {
			return t, nil
		}
	}
	return Technology{}, fmt.Errorf("storage: unknown capacitor technology %q", name)
}
