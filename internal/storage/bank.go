package storage

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"capybara/internal/units"
)

// Group is a parallel set of identical unit capacitors of one
// technology. Banks mix groups, e.g. the paper's TA fixed bank is
// "300 µF ceramic + 1100 µF tantalum + 7.5 mF EDLC".
type Group struct {
	Tech  Technology
	Count int
}

// Capacitance returns the group's total capacitance (units in parallel
// sum their capacitance).
func (g Group) Capacitance() units.Capacitance {
	return g.Tech.UnitCap * units.Capacitance(g.Count)
}

// ESR returns the group's effective series resistance: parallel units
// divide the unit ESR.
func (g Group) ESR() units.Resistance {
	if g.Count <= 0 {
		return units.Resistance(math.Inf(1))
	}
	return g.Tech.UnitESR / units.Resistance(g.Count)
}

// LeakResistance returns the group's effective parallel leakage
// resistance, or 0 if leakage is negligible.
func (g Group) LeakResistance() units.Resistance {
	if g.Count <= 0 || g.Tech.UnitLeak <= 0 {
		return 0
	}
	return g.Tech.UnitLeak / units.Resistance(g.Count)
}

// Volume returns the board volume consumed by the group.
func (g Group) Volume() units.Volume {
	return g.Tech.UnitVolume * units.Volume(g.Count)
}

// GroupOf builds a group of n units of tech.
func GroupOf(tech Technology, n int) Group { return Group{Tech: tech, Count: n} }

// GroupFor builds the smallest group of tech units whose total
// capacitance is at least c.
func GroupFor(tech Technology, c units.Capacitance) Group {
	if tech.UnitCap <= 0 || c <= 0 {
		return Group{Tech: tech}
	}
	n := int(math.Ceil(float64(c) / float64(tech.UnitCap)))
	return Group{Tech: tech, Count: n}
}

// Bank is a capacitor bank: one or more parallel groups that share a
// single stored-charge state. A Bank is the unit of reconfiguration —
// the reservoir package attaches one switch per bank.
type Bank struct {
	name    string
	groups  []Group
	voltage units.Voltage
	cycles  int // completed deep-discharge cycles, for wear accounting

	// Derived electrical properties are fixed by the group composition,
	// which never changes after construction; they are computed once so
	// the simulator's hot loops (leak ticks, charge segments) don't
	// re-reduce the groups on every call.
	cap   units.Capacitance
	esr   units.Resistance
	leakR units.Resistance
	rated units.Voltage

	// leakDt/leakFac memoize recent exp(−dt/RC) decay factors keyed by
	// the exact dt: the simulator leaks every bank once per drain, and
	// drain durations come from a handful of fixed peripheral timings,
	// so the same exponential recurs millions of times. Identical dt
	// yields the identical factor, so the memo changes no result bits.
	leakDt  [4]units.Seconds
	leakFac [4]float64
	leakN   int
}

// NewBank builds a named bank from groups. It returns an error when the
// bank has no capacitance.
func NewBank(name string, groups ...Group) (*Bank, error) {
	b := &Bank{name: name, groups: groups}
	b.cap = b.sumCapacitance()
	b.esr = b.reduceESR()
	b.leakR = b.reduceLeakResistance()
	b.rated = b.reduceRatedVoltage()
	if b.cap <= 0 {
		return nil, fmt.Errorf("storage: bank %q has no capacitance", name)
	}
	return b, nil
}

// MustBank is NewBank for static configurations known to be valid.
func MustBank(name string, groups ...Group) *Bank {
	b, err := NewBank(name, groups...)
	if err != nil {
		panic(err)
	}
	return b
}

// Name returns the bank's configured name.
func (b *Bank) Name() string { return b.name }

// Groups returns a copy of the bank's group composition.
func (b *Bank) Groups() []Group {
	out := make([]Group, len(b.groups))
	copy(out, b.groups)
	return out
}

// Capacitance returns the bank's total capacitance.
func (b *Bank) Capacitance() units.Capacitance { return b.cap }

func (b *Bank) sumCapacitance() units.Capacitance {
	var c units.Capacitance
	for _, g := range b.groups {
		c += g.Capacitance()
	}
	return c
}

// ESR returns the bank's effective series resistance: the parallel
// combination of the group ESRs.
func (b *Bank) ESR() units.Resistance { return b.esr }

func (b *Bank) reduceESR() units.Resistance {
	var inv float64
	for _, g := range b.groups {
		if r := g.ESR(); r > 0 && !math.IsInf(float64(r), 1) {
			inv += 1 / float64(r)
		}
	}
	if inv == 0 {
		return 0
	}
	return units.Resistance(1 / inv)
}

// LeakResistance returns the bank's effective leakage resistance, or 0
// when leakage is negligible.
func (b *Bank) LeakResistance() units.Resistance { return b.leakR }

func (b *Bank) reduceLeakResistance() units.Resistance {
	var inv float64
	for _, g := range b.groups {
		if r := g.LeakResistance(); r > 0 {
			inv += 1 / float64(r)
		}
	}
	if inv == 0 {
		return 0
	}
	return units.Resistance(1 / inv)
}

// Volume returns the board volume consumed by the bank's capacitors.
func (b *Bank) Volume() units.Volume {
	var v units.Volume
	for _, g := range b.groups {
		v += g.Volume()
	}
	return v
}

// RatedVoltage returns the lowest rated voltage across the bank's
// groups — the bank must not be charged above it.
func (b *Bank) RatedVoltage() units.Voltage { return b.rated }

func (b *Bank) reduceRatedVoltage() units.Voltage {
	v := units.Voltage(math.Inf(1))
	for _, g := range b.groups {
		if g.Count > 0 && g.Tech.RatedVoltage < v {
			v = g.Tech.RatedVoltage
		}
	}
	if math.IsInf(float64(v), 1) {
		return 0
	}
	return v
}

// Voltage returns the bank's present terminal voltage.
func (b *Bank) Voltage() units.Voltage { return b.voltage }

// SetVoltage forces the stored voltage; it is clamped to [0, rated].
func (b *Bank) SetVoltage(v units.Voltage) {
	if v < 0 {
		v = 0
	}
	if b.rated > 0 && v > b.rated {
		v = b.rated
	}
	b.voltage = v
}

// Energy returns the total energy stored at the present voltage.
func (b *Bank) Energy() units.Energy {
	return units.StoredEnergy(b.Capacitance(), b.voltage)
}

// EnergyAbove returns the energy stored above voltage floor vMin, i.e.
// what an output booster that cuts off at vMin could extract ignoring
// ESR losses.
func (b *Bank) EnergyAbove(vMin units.Voltage) units.Energy {
	return units.BandEnergy(b.Capacitance(), b.voltage, vMin)
}

// Charge adds energy at constant power p for dt and returns the new
// voltage, clamped at the rated voltage (the input booster stops
// charging a full bank).
func (b *Bank) Charge(p units.Power, dt units.Seconds) units.Voltage {
	v := units.ChargeVoltageAfter(b.Capacitance(), b.voltage, p, dt)
	b.SetVoltage(v)
	return b.voltage
}

// ErrDepleted reports that a discharge request exceeded the energy
// stored above the requested floor.
var ErrDepleted = errors.New("storage: bank depleted below requested floor")

// Discharge removes energy at constant power p for dt, not letting the
// voltage drop below floor. It returns the time actually sustained; if
// that is less than dt the bank hit the floor and ErrDepleted is
// returned alongside the shortened time.
func (b *Bank) Discharge(p units.Power, dt units.Seconds, floor units.Voltage) (units.Seconds, error) {
	if p <= 0 || dt <= 0 {
		return dt, nil
	}
	sustain := units.TimeToDischarge(b.Capacitance(), b.voltage, floor, p)
	if sustain >= dt {
		b.SetVoltage(units.DischargeVoltageAfter(b.Capacitance(), b.voltage, p, dt))
		return dt, nil
	}
	b.SetVoltage(floor)
	b.cycles++
	return sustain, ErrDepleted
}

// Leak self-discharges the bank for dt through its leakage resistance
// and returns the energy dissipated, so callers can close the energy
// balance (leaked energy is the one loss term that otherwise leaves the
// books silently).
func (b *Bank) Leak(dt units.Seconds) units.Energy {
	if b.leakR <= 0 || b.voltage <= 0 {
		return 0
	}
	if dt <= 0 {
		return 0
	}
	before := b.Energy()
	b.voltage = units.Voltage(float64(b.voltage) * b.leakFactor(dt))
	return before - b.Energy()
}

// leakFactor returns exp(−dt/RC) through the small decay-factor memo.
func (b *Bank) leakFactor(dt units.Seconds) float64 {
	for i := 0; i < b.leakN; i++ {
		if b.leakDt[i] == dt {
			return b.leakFac[i]
		}
	}
	f := math.Exp(-float64(dt) / (float64(b.leakR) * float64(b.cap)))
	i := b.leakN
	if i == len(b.leakDt) {
		i = 0 // full: evict the oldest slot
	} else {
		b.leakN++
	}
	b.leakDt[i], b.leakFac[i] = dt, f
	return f
}

// Cycles returns the number of deep-discharge cycles the bank has
// completed, for wear-leveling analysis against Technology.CycleLife.
func (b *Bank) Cycles() int { return b.cycles }

// WearFraction returns the worst-case consumed fraction of cycle life
// across the bank's groups (0 when no group has a finite cycle life).
func (b *Bank) WearFraction() float64 {
	worst := 0.0
	for _, g := range b.groups {
		if g.Tech.CycleLife > 0 {
			if f := float64(b.cycles) / float64(g.Tech.CycleLife); f > worst {
				worst = f
			}
		}
	}
	return worst
}

func (b *Bank) String() string {
	parts := make([]string, 0, len(b.groups))
	for _, g := range b.groups {
		parts = append(parts, fmt.Sprintf("%v %s", g.Capacitance(), g.Tech.Name))
	}
	return fmt.Sprintf("%s[%s @ %v]", b.name, strings.Join(parts, " + "), b.voltage)
}

// Connect joins two banks electrically: charge redistributes so both
// settle at the charge-conserving common voltage
// V = (C1·V1 + C2·V2)/(C1 + C2). The dissipated energy (lost in the
// interconnect resistance) is returned; it is always ≥ 0.
func Connect(a, c *Bank) units.Energy {
	ca, cc := a.Capacitance(), c.Capacitance()
	if ca+cc <= 0 {
		return 0
	}
	before := a.Energy() + c.Energy()
	v := (float64(ca)*float64(a.voltage) + float64(cc)*float64(c.voltage)) / float64(ca+cc)
	a.SetVoltage(units.Voltage(v))
	c.SetVoltage(units.Voltage(v))
	after := a.Energy() + c.Energy()
	loss := before - after
	if loss < 0 {
		loss = 0
	}
	return loss
}

// CombinedCapacitance sums the capacitance of banks.
func CombinedCapacitance(banks []*Bank) units.Capacitance {
	var c units.Capacitance
	for _, b := range banks {
		c += b.Capacitance()
	}
	return c
}

// CombinedESR returns the parallel combination of the banks' ESRs.
func CombinedESR(banks []*Bank) units.Resistance {
	var inv float64
	for _, b := range banks {
		if r := b.ESR(); r > 0 {
			inv += 1 / float64(r)
		}
	}
	if inv == 0 {
		return 0
	}
	return units.Resistance(1 / inv)
}
