package storage

import (
	"math"
	"math/rand"
	"testing"

	"capybara/internal/units"
)

// randomBank builds a bank from 1–3 random catalog groups, charged to a
// random legal voltage.
func randomBank(t *testing.T, rng *rand.Rand, name string) *Bank {
	t.Helper()
	catalog := []Technology{CeramicX5R, Tantalum, SupercapCPH3225A, EDLC}
	n := 1 + rng.Intn(3)
	groups := make([]Group, 0, n)
	for i := 0; i < n; i++ {
		groups = append(groups, GroupOf(catalog[rng.Intn(len(catalog))], 1+rng.Intn(6)))
	}
	b, err := NewBank(name, groups...)
	if err != nil {
		t.Fatal(err)
	}
	b.SetVoltage(units.Voltage(rng.Float64()) * b.RatedVoltage())
	return b
}

// TestConnectConservesChargeRandomTopologies is the charge-sharing
// property over randomized bank pairs: joining two banks must settle
// both on one terminal voltage, conserve charge exactly, and only ever
// dissipate energy (the returned loss), never mint it.
func TestConnectConservesChargeRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		a := randomBank(t, rng, "a")
		b := randomBank(t, rng, "b")
		qBefore := float64(a.Capacitance())*float64(a.Voltage()) + float64(b.Capacitance())*float64(b.Voltage())
		eBefore := float64(a.Energy() + b.Energy())
		common := qBefore / float64(a.Capacitance()+b.Capacitance())
		// A weighted mean of two voltages legal for their own banks can
		// still exceed the *other* bank's rating when ratings differ, in
		// which case SetVoltage clamps and sheds charge (legally, as loss).
		clamped := common > float64(a.RatedVoltage()) || common > float64(b.RatedVoltage())

		loss := Connect(a, b)

		if loss < 0 {
			t.Fatalf("trial %d: negative sharing loss %v", trial, loss)
		}
		qAfter := float64(a.Capacitance())*float64(a.Voltage()) + float64(b.Capacitance())*float64(b.Voltage())
		if qAfter > qBefore+1e-12+1e-9*math.Abs(qBefore) {
			t.Fatalf("trial %d: sharing created charge: %.15g C → %.15g C", trial, qBefore, qAfter)
		}
		eAfter := float64(a.Energy() + b.Energy())
		if eAfter > eBefore+1e-12+1e-9*eBefore {
			t.Fatalf("trial %d: sharing created energy: %.15g J → %.15g J", trial, eBefore, eAfter)
		}
		if !clamped {
			if av, bv := a.Voltage(), b.Voltage(); math.Abs(float64(av-bv)) > 1e-12 {
				t.Fatalf("trial %d: banks did not settle together: %v vs %v", trial, av, bv)
			}
			if tol := 1e-12 + 1e-9*math.Abs(qBefore); math.Abs(qAfter-qBefore) > tol {
				t.Fatalf("trial %d: charge not conserved: %.15g C → %.15g C", trial, qBefore, qAfter)
			}
			if tol := 1e-12 + 1e-6*eBefore; math.Abs(eBefore-eAfter-float64(loss)) > tol {
				t.Fatalf("trial %d: reported loss %v does not match energy drop %.15g J",
					trial, loss, eBefore-eAfter)
			}
		}
	}
}

// TestEnergyBooksCloseRandomTopologies drives random charge, discharge,
// and leak operations against randomized banks and checks that stored
// energy always equals initial + charged − drawn − leaked, with the
// rated-voltage clamp as the only (one-sided) escape.
func TestEnergyBooksCloseRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		b := randomBank(t, rng, "bank")
		books := float64(b.Energy())
		for op := 0; op < 50; op++ {
			switch rng.Intn(3) {
			case 0: // charge
				p := units.Power(1e-6 + rng.Float64()*10e-3)
				dt := units.Seconds(0.01 + rng.Float64()*5)
				before := b.Voltage()
				b.Charge(p, dt)
				if b.Voltage() < b.RatedVoltage()-1e-12 {
					books += float64(p) * float64(dt)
				} else {
					// Clamped at rated: some input was shed. Re-base the
					// books at the clamp; energy must not exceed them.
					books = float64(b.Energy())
					if full := float64(units.StoredEnergy(b.Capacitance(), b.RatedVoltage())); books > full+1e-12 {
						t.Fatalf("trial %d op %d: clamp overshot rated energy: %.15g > %.15g (from %v)",
							trial, op, books, full, before)
					}
				}
			case 1: // discharge toward a floor
				p := units.Power(1e-6 + rng.Float64()*10e-3)
				dt := units.Seconds(0.01 + rng.Float64()*5)
				floor := units.Voltage(rng.Float64()) * b.Voltage()
				sustained, _ := b.Discharge(p, dt, floor)
				books -= float64(p) * float64(sustained)
			case 2: // leak
				books -= float64(b.Leak(units.Seconds(rng.Float64() * 100)))
			}
			got := float64(b.Energy())
			if tol := 1e-12 + 1e-6*math.Max(math.Abs(books), got); math.Abs(got-books) > tol {
				t.Fatalf("trial %d op %d: energy books off: stored %.15g J, books %.15g J (Δ %.3g)",
					trial, op, got, books, got-books)
			}
			if got < -1e-15 {
				t.Fatalf("trial %d op %d: negative stored energy %.15g", trial, op, got)
			}
		}
	}
}

// FuzzConnect hammers the charge-sharing primitive with arbitrary
// capacitances, ratings, and voltages: whatever the inputs, Connect
// must never create charge or energy, never report a negative loss,
// and must leave both banks on a common, legal voltage.
func FuzzConnect(f *testing.F) {
	f.Add(100e-6, 7.5e-3, 3.6, 3.6, 1.2, 3.0)
	f.Add(22e-6, 22e-6, 6.3, 6.3, 0.0, 6.3)
	f.Add(11e-3, 330e-6, 3.3, 6.3, 3.3, 0.1)
	f.Fuzz(func(t *testing.T, capA, capB, ratedA, ratedB, vA, vB float64) {
		clampCap := func(c float64) units.Capacitance {
			if math.IsNaN(c) || c < 1e-9 {
				c = 1e-9
			}
			if c > 1 {
				c = 1
			}
			return units.Capacitance(c)
		}
		clampRated := func(r float64) units.Voltage {
			if math.IsNaN(r) || r < 0.1 {
				r = 0.1
			}
			if r > 20 {
				r = 20
			}
			return units.Voltage(r)
		}
		mk := func(name string, c units.Capacitance, rated units.Voltage, v float64) *Bank {
			b := MustBank(name, GroupOf(Technology{
				Name: "fuzz", UnitCap: c, UnitVolume: 1, UnitESR: 0.1, RatedVoltage: rated,
			}, 1))
			if math.IsNaN(v) {
				v = 0
			}
			b.SetVoltage(units.Voltage(v)) // SetVoltage clamps to [0, rated]
			return b
		}
		a := mk("a", clampCap(capA), clampRated(ratedA), vA)
		b := mk("b", clampCap(capB), clampRated(ratedB), vB)

		qBefore := float64(a.Capacitance())*float64(a.Voltage()) + float64(b.Capacitance())*float64(b.Voltage())
		eBefore := float64(a.Energy() + b.Energy())
		common := qBefore / float64(a.Capacitance()+b.Capacitance())

		loss := Connect(a, b)

		if loss < 0 || math.IsNaN(float64(loss)) {
			t.Fatalf("bad sharing loss %v", loss)
		}
		for _, bk := range []*Bank{a, b} {
			if v := bk.Voltage(); v < 0 || float64(v) > float64(bk.RatedVoltage())+1e-9 || math.IsNaN(float64(v)) {
				t.Fatalf("bank %s at illegal voltage %v (rated %v)", bk.Name(), v, bk.RatedVoltage())
			}
		}
		qAfter := float64(a.Capacitance())*float64(a.Voltage()) + float64(b.Capacitance())*float64(b.Voltage())
		if qAfter > qBefore+1e-12+1e-9*math.Abs(qBefore) {
			t.Fatalf("Connect created charge: %.15g C → %.15g C", qBefore, qAfter)
		}
		eAfter := float64(a.Energy() + b.Energy())
		if eAfter > eBefore+1e-12+1e-9*eBefore {
			t.Fatalf("Connect created energy: %.15g J → %.15g J", eBefore, eAfter)
		}
		// When the common voltage is legal for both banks (no clamp), the
		// banks must settle together.
		if common <= float64(a.RatedVoltage()) && common <= float64(b.RatedVoltage()) {
			if d := math.Abs(float64(a.Voltage() - b.Voltage())); d > 1e-9 {
				t.Fatalf("banks did not settle together: %v vs %v", a.Voltage(), b.Voltage())
			}
		}
	})
}
