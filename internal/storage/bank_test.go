package storage

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"capybara/internal/units"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1e-30)
}

func TestGroupCapacitanceESR(t *testing.T) {
	g := GroupOf(SupercapCPH3225A, 4)
	if got, want := g.Capacitance(), 44*units.MilliFarad; !almostEqual(float64(got), float64(want), 1e-12) {
		t.Errorf("Capacitance = %v, want %v", got, want)
	}
	if got, want := g.ESR(), units.Resistance(40); !almostEqual(float64(got), float64(want), 1e-12) {
		t.Errorf("ESR = %v, want %v (160 Ω / 4 in parallel)", got, want)
	}
	if got, want := g.Volume(), units.Volume(28.8); !almostEqual(float64(got), float64(want), 1e-12) {
		t.Errorf("Volume = %v, want %v", got, want)
	}
}

func TestGroupEmpty(t *testing.T) {
	g := GroupOf(CeramicX5R, 0)
	if g.Capacitance() != 0 {
		t.Errorf("empty group capacitance = %v", g.Capacitance())
	}
	if !math.IsInf(float64(g.ESR()), 1) {
		t.Errorf("empty group ESR = %v, want +Inf", g.ESR())
	}
	if g.LeakResistance() != 0 {
		t.Errorf("empty group leak = %v", g.LeakResistance())
	}
}

func TestGroupFor(t *testing.T) {
	// 400 µF of 22 µF ceramics needs ⌈400/22⌉ = 19 units.
	g := GroupFor(CeramicX5R, 400*units.MicroFarad)
	if g.Count != 19 {
		t.Fatalf("GroupFor count = %d, want 19", g.Count)
	}
	if g.Capacitance() < 400*units.MicroFarad {
		t.Fatalf("GroupFor under-provisions: %v", g.Capacitance())
	}
	if g := GroupFor(CeramicX5R, 0); g.Count != 0 {
		t.Errorf("GroupFor(0) count = %d", g.Count)
	}
}

func TestNewBankRejectsEmpty(t *testing.T) {
	if _, err := NewBank("empty"); err == nil {
		t.Fatal("NewBank with no groups should fail")
	}
	if _, err := NewBank("zero", GroupOf(Tantalum, 0)); err == nil {
		t.Fatal("NewBank with zero-count group should fail")
	}
}

func TestBankMixedComposition(t *testing.T) {
	// The paper's TA fixed bank: 300 µF ceramic + 1100 µF tantalum + 7.5 mF EDLC.
	b := MustBank("ta-fixed",
		GroupFor(CeramicX5R, 300*units.MicroFarad),
		GroupFor(Tantalum, 1100*units.MicroFarad),
		GroupOf(EDLC, 1),
	)
	c := b.Capacitance()
	if c < 8.9*units.MilliFarad || c > 9.3*units.MilliFarad {
		t.Fatalf("mixed bank capacitance = %v, want ≈8.9 mF", c)
	}
	// Rated voltage is the minimum across groups (EDLC's 3.6 V).
	if got := b.RatedVoltage(); got != 3.6 {
		t.Fatalf("RatedVoltage = %v, want 3.6 V", got)
	}
	// ESR is dominated by the low-ESR ceramics in parallel.
	if got := b.ESR(); got >= 0.01 {
		t.Fatalf("ESR = %v, want < 10 mΩ", got)
	}
}

func TestBankChargeClampsAtRated(t *testing.T) {
	b := MustBank("sc", GroupOf(SupercapCPH3225A, 1))
	b.Charge(1*units.MilliWatt, 1e9)
	if got := b.Voltage(); got != SupercapCPH3225A.RatedVoltage {
		t.Fatalf("overcharged to %v, want clamp at %v", got, SupercapCPH3225A.RatedVoltage)
	}
}

func TestBankDischargeToFloor(t *testing.T) {
	b := MustBank("b", GroupOf(Tantalum, 3))
	b.SetVoltage(3.0)
	// Ask for far more time than the stored energy can sustain.
	sustained, err := b.Discharge(10*units.MilliWatt, 1e6, 1.0)
	if err != ErrDepleted {
		t.Fatalf("err = %v, want ErrDepleted", err)
	}
	want := units.TimeToDischarge(3*Tantalum.UnitCap, 3.0, 1.0, 10*units.MilliWatt)
	if !almostEqual(float64(sustained), float64(want), 1e-9) {
		t.Fatalf("sustained %v, want %v", sustained, want)
	}
	if got := b.Voltage(); !almostEqual(float64(got), 1.0, 1e-9) {
		t.Fatalf("voltage after depletion = %v, want floor 1.0", got)
	}
	if b.Cycles() != 1 {
		t.Fatalf("cycles = %d, want 1", b.Cycles())
	}
}

func TestBankDischargeWithinBudget(t *testing.T) {
	b := MustBank("b", GroupOf(EDLC, 9)) // 67.5 mF
	b.SetVoltage(2.4)
	sustained, err := b.Discharge(5*units.MilliWatt, 1.0, 1.0)
	if err != nil {
		t.Fatalf("unexpected err: %v", err)
	}
	if sustained != 1.0 {
		t.Fatalf("sustained %v, want 1.0", sustained)
	}
	want := units.DischargeVoltageAfter(b.Capacitance(), 2.4, 5*units.MilliWatt, 1.0)
	if !almostEqual(float64(b.Voltage()), float64(want), 1e-12) {
		t.Fatalf("voltage = %v, want %v", b.Voltage(), want)
	}
	if b.Cycles() != 0 {
		t.Fatalf("cycles = %d, want 0 (no deep discharge)", b.Cycles())
	}
}

func TestBankDischargeNoOps(t *testing.T) {
	b := MustBank("b", GroupOf(Tantalum, 1))
	b.SetVoltage(2.0)
	if got, err := b.Discharge(0, 5, 1.0); err != nil || got != 5 {
		t.Errorf("zero-power discharge: (%v, %v)", got, err)
	}
	if got, err := b.Discharge(1*units.MilliWatt, 0, 1.0); err != nil || got != 0 {
		t.Errorf("zero-duration discharge: (%v, %v)", got, err)
	}
	if b.Voltage() != 2.0 {
		t.Errorf("voltage changed by no-op discharge: %v", b.Voltage())
	}
}

func TestConnectChargeSharing(t *testing.T) {
	a := MustBank("a", GroupFor(CeramicX5R, 100*units.MicroFarad))
	b := MustBank("b", GroupFor(CeramicX5R, 100*units.MicroFarad))
	// GroupFor rounds up; use actual capacitances in the expectation.
	a.SetVoltage(3.0)
	b.SetVoltage(1.0)
	loss := Connect(a, b)
	ca, cb := float64(a.Capacitance()), float64(b.Capacitance())
	wantV := (ca*3.0 + cb*1.0) / (ca + cb)
	if !almostEqual(float64(a.Voltage()), wantV, 1e-12) || a.Voltage() != b.Voltage() {
		t.Fatalf("voltages after connect: %v, %v, want both %v", a.Voltage(), b.Voltage(), wantV)
	}
	if loss <= 0 {
		t.Fatalf("connecting banks at different voltages must dissipate energy, got %v", loss)
	}
}

func TestConnectEqualVoltagesLossless(t *testing.T) {
	a := MustBank("a", GroupOf(Tantalum, 1))
	b := MustBank("b", GroupOf(EDLC, 1))
	a.SetVoltage(2.2)
	b.SetVoltage(2.2)
	loss := Connect(a, b)
	if !almostEqual(float64(loss), 0, 1e-15) {
		t.Fatalf("equal-voltage connect lost %v", loss)
	}
	if a.Voltage() != 2.2 || b.Voltage() != 2.2 {
		t.Fatalf("voltages moved: %v, %v", a.Voltage(), b.Voltage())
	}
}

// Property: charge sharing conserves charge and never creates energy.
func TestConnectConservesChargeProperty(t *testing.T) {
	f := func(na, nb uint8, va, vb uint16) bool {
		a := MustBank("a", GroupOf(CeramicX5R, int(na%20)+1))
		b := MustBank("b", GroupOf(EDLC, int(nb%5)+1))
		a.SetVoltage(units.Voltage(float64(va) / math.MaxUint16 * 3))
		b.SetVoltage(units.Voltage(float64(vb) / math.MaxUint16 * 3))
		qBefore := float64(a.Capacitance())*float64(a.Voltage()) + float64(b.Capacitance())*float64(b.Voltage())
		eBefore := a.Energy() + b.Energy()
		loss := Connect(a, b)
		qAfter := float64(a.Capacitance())*float64(a.Voltage()) + float64(b.Capacitance())*float64(b.Voltage())
		eAfter := a.Energy() + b.Energy()
		return almostEqual(qBefore, qAfter, 1e-9) &&
			loss >= 0 &&
			almostEqual(float64(eBefore), float64(eAfter+loss), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBankLeak(t *testing.T) {
	b := MustBank("sc", GroupOf(SupercapCPH3225A, 1))
	b.SetVoltage(3.0)
	b.Leak(units.Seconds(1000))
	want := units.LeakVoltageAfter(SupercapCPH3225A.UnitCap, 3.0, SupercapCPH3225A.UnitLeak, 1000)
	if !almostEqual(float64(b.Voltage()), float64(want), 1e-12) {
		t.Fatalf("leaked voltage = %v, want %v", b.Voltage(), want)
	}
	// Ceramic bank: negligible leak is modeled as none.
	c := MustBank("cer", GroupOf(CeramicX5R, 5))
	c.SetVoltage(3.0)
	c.Leak(1e9)
	if c.Voltage() != 3.0 {
		t.Fatalf("ceramic bank leaked: %v", c.Voltage())
	}
}

func TestBankEnergyAbove(t *testing.T) {
	b := MustBank("b", GroupOf(EDLC, 1))
	b.SetVoltage(2.4)
	full := b.Energy()
	above := b.EnergyAbove(1.6)
	if above >= full || above <= 0 {
		t.Fatalf("EnergyAbove(1.6 V) = %v, full = %v; want 0 < above < full", above, full)
	}
	if got := b.EnergyAbove(2.4); got != 0 {
		t.Fatalf("EnergyAbove(V) = %v, want 0", got)
	}
}

func TestTechnologyDensityOrdering(t *testing.T) {
	// The paper's Fig. 4 observation: supercap density far exceeds
	// ceramic density; tantalum sits between.
	cer := CeramicX5R.Density()
	tan := Tantalum.Density()
	sc := SupercapCPH3225A.Density()
	if !(sc > tan && tan > cer) {
		t.Fatalf("density ordering violated: ceramic=%g tantalum=%g supercap=%g", cer, tan, sc)
	}
	if sc/cer < 100 {
		t.Fatalf("supercap should be orders of magnitude denser than ceramic: ratio %g", sc/cer)
	}
}

func TestTechnologyByName(t *testing.T) {
	got, err := TechnologyByName("EDLC")
	if err != nil || got.Name != "EDLC" {
		t.Fatalf("TechnologyByName(EDLC) = %v, %v", got, err)
	}
	if _, err := TechnologyByName("unobtainium"); err == nil {
		t.Fatal("unknown technology should error")
	}
}

func TestWearFraction(t *testing.T) {
	b := MustBank("sc", GroupOf(SupercapCPH3225A, 1))
	if b.WearFraction() != 0 {
		t.Fatalf("fresh bank wear = %g", b.WearFraction())
	}
	b.SetVoltage(3.0)
	for i := 0; i < 10; i++ {
		b.SetVoltage(3.0)
		if _, err := b.Discharge(10*units.MilliWatt, 1e9, 0.5); err != ErrDepleted {
			t.Fatalf("expected depletion, got %v", err)
		}
	}
	want := 10.0 / float64(SupercapCPH3225A.CycleLife)
	if !almostEqual(b.WearFraction(), want, 1e-12) {
		t.Fatalf("wear = %g, want %g", b.WearFraction(), want)
	}
	// Ceramic has unlimited cycle life: wear stays 0.
	c := MustBank("cer", GroupOf(CeramicX5R, 1))
	c.SetVoltage(3.0)
	_, _ = c.Discharge(10*units.MilliWatt, 1e9, 0.5)
	if c.WearFraction() != 0 {
		t.Fatalf("ceramic wear = %g, want 0", c.WearFraction())
	}
}

func TestCombinedCapacitanceESR(t *testing.T) {
	a := MustBank("a", GroupOf(SupercapCPH3225A, 1)) // 160 Ω
	b := MustBank("b", GroupOf(SupercapCPH3225A, 1)) // 160 Ω
	banks := []*Bank{a, b}
	if got, want := CombinedCapacitance(banks), 22*units.MilliFarad; !almostEqual(float64(got), float64(want), 1e-12) {
		t.Errorf("CombinedCapacitance = %v, want %v", got, want)
	}
	if got, want := CombinedESR(banks), units.Resistance(80); !almostEqual(float64(got), float64(want), 1e-12) {
		t.Errorf("CombinedESR = %v, want %v", got, want)
	}
	if got := CombinedESR(nil); got != 0 {
		t.Errorf("CombinedESR(nil) = %v, want 0", got)
	}
}

func TestBankStringer(t *testing.T) {
	b := MustBank("small", GroupFor(CeramicX5R, 400*units.MicroFarad))
	s := b.String()
	if s == "" || b.Name() != "small" {
		t.Fatalf("String/Name broken: %q", s)
	}
}

func TestAtTemperatureDerating(t *testing.T) {
	cold, err := EDLC.AtTemperature(-20)
	if err != nil {
		t.Fatal(err)
	}
	// Capacitance shrinks in the cold…
	if cold.UnitCap >= EDLC.UnitCap {
		t.Fatalf("cold capacitance %v not below %v", cold.UnitCap, EDLC.UnitCap)
	}
	// …and ESR grows.
	if cold.UnitESR <= EDLC.UnitESR {
		t.Fatalf("cold ESR %v not above %v", cold.UnitESR, EDLC.UnitESR)
	}
	if cold.Name == EDLC.Name {
		t.Fatal("derated technology should carry the temperature in its name")
	}
	// At the reference temperature nothing changes.
	same, err := EDLC.AtTemperature(25)
	if err != nil {
		t.Fatal(err)
	}
	if same.UnitCap != EDLC.UnitCap || same.UnitESR != EDLC.UnitESR {
		t.Fatalf("reference temperature changed the part: %v", same)
	}
}

func TestAtTemperatureDisqualifies(t *testing.T) {
	if _, err := EDLC.AtTemperature(-40); !errors.Is(err, ErrTooCold) {
		t.Fatalf("EDLC at -40°C: err = %v, want ErrTooCold", err)
	}
	if _, err := ThinFilmBattery.AtTemperature(-40); !errors.Is(err, ErrTooCold) {
		t.Fatalf("battery at -40°C: err = %v, want ErrTooCold", err)
	}
	if _, err := SupercapCPH3225A.AtTemperature(-40); err != nil {
		t.Fatalf("CPH3225A should qualify at its floor: %v", err)
	}
}

func TestAtTemperatureCapacitanceFloor(t *testing.T) {
	// Extreme (hypothetical) coefficients must not drive capacitance
	// negative.
	hot := Technology{Name: "x", UnitCap: units.MicroFarad, UnitVolume: 1,
		CapTempCoeff: 1, MinTemperature: -100}
	out, err := hot.AtTemperature(-99)
	if err != nil {
		t.Fatal(err)
	}
	if out.UnitCap <= 0 {
		t.Fatalf("capacitance collapsed: %v", out.UnitCap)
	}
}

func TestBankGroupsAndVolume(t *testing.T) {
	b := MustBank("b", GroupOf(Tantalum, 2), GroupOf(EDLC, 1))
	groups := b.Groups()
	if len(groups) != 2 || groups[0].Count != 2 {
		t.Fatalf("Groups = %+v", groups)
	}
	// The copy is isolated from the bank.
	groups[0].Count = 99
	if b.Groups()[0].Count != 2 {
		t.Fatal("Groups() must return a copy")
	}
	want := 2*Tantalum.UnitVolume + EDLC.UnitVolume
	if got := b.Volume(); got != want {
		t.Fatalf("Volume = %v, want %v", got, want)
	}
}

func TestTechnologyStringers(t *testing.T) {
	for _, tech := range Catalog() {
		if tech.String() == "" || tech.Density() <= 0 {
			t.Errorf("technology %s stringer or density broken", tech.Name)
		}
	}
	if (Technology{}).Density() != 0 {
		t.Error("zero-volume density should be 0")
	}
}
