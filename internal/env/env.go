// Package env models the experimental environments that drive the
// paper's applications with external events: the servo-driven pendulum
// rig (GRC and CSR, Fig. 7), the heater/cooler thermal plant (TA), and
// the Poisson event schedules the evaluation draws (§6.2).
//
// Everything is deterministic given a seed, so experiments regenerate
// bit-identically.
package env

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"capybara/internal/units"
)

// Event is one external stimulus: it becomes observable at At and
// remains observable for Window.
type Event struct {
	// Index is the event's ordinal in its schedule.
	Index int
	// At is when the stimulus begins.
	At units.Seconds
	// Window is how long the stimulus remains observable (the
	// pendulum's pass over the sensor, the temperature excursion).
	Window units.Seconds
	// Value carries event-specific data: gesture direction (±1),
	// temperature excursion in °C, magnet field polarity.
	Value float64
}

// End returns the time the stimulus stops being observable.
func (e Event) End() units.Seconds { return e.At + e.Window }

func (e Event) String() string {
	return fmt.Sprintf("event %d @ %v (+%v)", e.Index, e.At, e.Window)
}

// Schedule is a time-ordered list of events.
type Schedule struct {
	Events []Event
}

// Poisson draws n events with exponentially-distributed inter-arrival
// times of the given mean, each observable for roughly window (each
// event's window is jittered ±20 % — real pendulum swings and thermal
// excursions are not identical). Events never overlap: arrivals are
// spaced at least one window apart, matching the physical rigs (the
// pendulum must return before it can swing again). Values alternate
// deterministic pseudo-random directions in {−1, +1}.
func Poisson(rng *rand.Rand, n int, mean, window units.Seconds) Schedule {
	events := make([]Event, 0, n)
	t := units.Seconds(0)
	prevWindow := units.Seconds(0)
	for i := 0; i < n; i++ {
		w := units.Seconds(float64(window) * (0.8 + 0.4*rng.Float64()))
		gap := units.Seconds(rng.ExpFloat64() * float64(mean))
		// The previous swing must complete before the next can start.
		if gap < prevWindow {
			gap = prevWindow
		}
		prevWindow = w
		t += gap
		val := 1.0
		if rng.Intn(2) == 0 {
			val = -1
		}
		events = append(events, Event{Index: i, At: t, Window: w, Value: val})
	}
	return Schedule{Events: events}
}

// Horizon returns the time by which every event has ended.
func (s Schedule) Horizon() units.Seconds {
	var h units.Seconds
	for _, e := range s.Events {
		if e.End() > h {
			h = e.End()
		}
	}
	return h
}

// ActiveAt returns the event observable at time t, if any.
func (s Schedule) ActiveAt(t units.Seconds) (Event, bool) {
	// Events are ordered and non-overlapping; binary-search the first
	// event ending after t.
	i := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].End() > t })
	if i < len(s.Events) && s.Events[i].At <= t {
		return s.Events[i], true
	}
	return Event{}, false
}

// activeAtHint is ActiveAt with a cursor: it walks hint to the first
// event ending after t and stores it back. Sensing rigs query with a
// near-monotonic clock, so the walk is amortized O(1) where the binary
// search pays its full log on every call. The result is identical to
// ActiveAt for any t and any starting hint.
func (s Schedule) activeAtHint(t units.Seconds, hint *int) (Event, bool) {
	n := len(s.Events)
	i := *hint
	if i > n {
		i = n
	}
	for i > 0 && s.Events[i-1].End() > t {
		i--
	}
	for i < n && s.Events[i].End() <= t {
		i++
	}
	*hint = i
	if i < n && s.Events[i].At <= t {
		return s.Events[i], true
	}
	return Event{}, false
}

// QuietRange reports whether no event is observable anywhere in
// [t0, t1]: every query an event-sensing rig makes with a clock in that
// range returns not-found. Events are ordered and non-overlapping, so
// the range is quiet iff the first event ending after t0 starts after
// t1.
func (s Schedule) QuietRange(t0, t1 units.Seconds) bool {
	i := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].End() > t0 })
	return i == len(s.Events) || s.Events[i].At > t1
}

// QuietBound returns the exclusive upper bound of QuietRange's second
// argument at t0: QuietRange(t0, t1) holds exactly for t1 <
// QuietBound(t0). +Inf when no event ends after t0 (quiet forever).
// The fused task-engine stepper uses it to size fixed-point spin spans
// (task.QuietBounder).
func (s Schedule) QuietBound(t0 units.Seconds) units.Seconds {
	i := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].End() > t0 })
	if i == len(s.Events) {
		return units.Seconds(math.Inf(1))
	}
	return s.Events[i].At
}

// NextAfter returns the first event starting at or after t, if any.
func (s Schedule) NextAfter(t units.Seconds) (Event, bool) {
	i := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].At >= t })
	if i < len(s.Events) {
		return s.Events[i], true
	}
	return Event{}, false
}

// MeanInterarrival returns the empirical mean gap between event starts.
func (s Schedule) MeanInterarrival() units.Seconds {
	if len(s.Events) < 2 {
		return 0
	}
	span := s.Events[len(s.Events)-1].At - s.Events[0].At
	return span / units.Seconds(len(s.Events)-1)
}

// Pendulum is the GRC/CSR rig: a servo swings a rigid pendulum (with a
// gesture target or magnet) over the sensors at each scheduled event.
// During an event window the object is observable; a gesture is
// correctly classifiable only if gesture sensing starts early enough in
// the swing (§6.2: "gesture motions are misclassified when the
// proximity detection occurs too late in the pendulum's swing").
type Pendulum struct {
	Schedule Schedule
	// ClassifyBy is the fraction of the window within which gesture
	// sensing must begin for the direction to be distinguishable.
	ClassifyBy float64
	// FlakyEvery models intrinsic sensor imperfection: every
	// FlakyEvery-th event fails to decode even under perfect timing
	// (the paper's imperfect continuous-power accuracy, §6.2:
	// "the APDS sensor is activated following a proximity detection
	// but does not report a gesture"). Zero disables flakiness.
	FlakyEvery int

	// cur is the event cursor for the rig's near-monotonic queries.
	cur int
}

// NewPendulum builds the rig with the default classification deadline
// (the first 40 % of the swing).
func NewPendulum(s Schedule) *Pendulum {
	return &Pendulum{Schedule: s, ClassifyBy: 0.4}
}

// ObjectPresent reports whether the pendulum is over the board at t —
// what the phototransistor (GRC) or magnetometer (CSR) observes.
func (p *Pendulum) ObjectPresent(t units.Seconds) bool {
	_, ok := p.Schedule.activeAtHint(t, &p.cur)
	return ok
}

// GestureOutcome classifies a gesture-sensing operation that runs over
// [start, start+opTime].
type GestureOutcome int

const (
	// GestureMissed: no object was present when sensing started.
	GestureMissed GestureOutcome = iota
	// GestureProximityOnly: the sensor was activated while the object
	// was present, but the swing ended before a full gesture window
	// was observed — the APDS reports nothing (§6.2 "Proximity Only").
	GestureProximityOnly
	// GestureMisclassified: a gesture was decoded but sensing started
	// too late in the swing to distinguish direction.
	GestureMisclassified
	// GestureCorrect: the direction was decoded correctly.
	GestureCorrect
)

func (g GestureOutcome) String() string {
	switch g {
	case GestureCorrect:
		return "correct"
	case GestureMisclassified:
		return "misclassified"
	case GestureProximityOnly:
		return "proximity-only"
	default:
		return "missed"
	}
}

// Sense classifies a gesture-sensing operation beginning at start and
// lasting opTime. It returns the outcome and the event observed (for
// correct and misclassified outcomes).
func (p *Pendulum) Sense(start, opTime units.Seconds) (GestureOutcome, Event) {
	ev, ok := p.Schedule.activeAtHint(start, &p.cur)
	if !ok {
		return GestureMissed, Event{}
	}
	if start+opTime > ev.End() {
		return GestureProximityOnly, ev
	}
	if p.FlakyEvery > 0 && (ev.Index+1)%p.FlakyEvery == 0 {
		return GestureProximityOnly, ev
	}
	deadline := ev.At + units.Seconds(p.ClassifyBy*float64(ev.Window))
	if start > deadline {
		return GestureMisclassified, ev
	}
	return GestureCorrect, ev
}

// Thermal is the TA rig: a heatsink whose temperature a control loop
// holds inside [Low, High], except during scheduled alarm events when
// it is pushed out of range by each event's Value (°C beyond the
// nearest bound).
type Thermal struct {
	Schedule  Schedule
	Low, High float64
	// Period is the benign oscillation period of the control loop.
	Period units.Seconds

	// cur is the event cursor for the rig's near-monotonic queries.
	cur int
}

// NewThermal builds the default plant: 20–30 °C band with a 60 s
// control-loop wobble.
func NewThermal(s Schedule) *Thermal {
	return &Thermal{Schedule: s, Low: 20, High: 30, Period: 60}
}

// Temperature returns the heatsink temperature at t.
func (th *Thermal) Temperature(t units.Seconds) float64 {
	mid := (th.Low + th.High) / 2
	amp := (th.High - th.Low) / 2 * 0.8 // stays inside the band
	base := mid + amp*math.Sin(2*math.Pi*float64(t)/float64(th.Period))
	if ev, ok := th.Schedule.activeAtHint(t, &th.cur); ok {
		if ev.Value >= 0 {
			return th.High + 2 + ev.Value
		}
		return th.Low - 2 + ev.Value
	}
	return base
}

// OutOfRange reports whether a reading indicates an alarm.
func (th *Thermal) OutOfRange(reading float64) bool {
	return reading < th.Low || reading > th.High
}
