package env

import (
	"math"
	"math/rand"
	"testing"

	"capybara/internal/units"
)

func TestPoissonDeterministic(t *testing.T) {
	a := Poisson(rand.New(rand.NewSource(7)), 50, 30, 1)
	b := Poisson(rand.New(rand.NewSource(7)), 50, 30, 1)
	if len(a.Events) != 50 || len(b.Events) != 50 {
		t.Fatalf("event counts: %d, %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
}

func TestPoissonNonOverlapping(t *testing.T) {
	s := Poisson(rand.New(rand.NewSource(1)), 200, 5, 1)
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].At < s.Events[i-1].End() {
			t.Fatalf("events %d and %d overlap: %v, %v", i-1, i, s.Events[i-1], s.Events[i])
		}
	}
}

func TestPoissonMeanInterarrival(t *testing.T) {
	mean := units.Seconds(144) // TA's 50 events over 120 min
	s := Poisson(rand.New(rand.NewSource(3)), 2000, mean, 1)
	got := s.MeanInterarrival()
	if math.Abs(float64(got)-float64(mean))/float64(mean) > 0.1 {
		t.Fatalf("empirical mean = %v, want ≈%v", got, mean)
	}
	if (Schedule{}).MeanInterarrival() != 0 {
		t.Error("empty schedule mean should be 0")
	}
}

func TestActiveAt(t *testing.T) {
	s := Schedule{Events: []Event{
		{Index: 0, At: 10, Window: 2},
		{Index: 1, At: 20, Window: 2},
	}}
	if _, ok := s.ActiveAt(9.9); ok {
		t.Error("no event should be active before the first")
	}
	ev, ok := s.ActiveAt(11)
	if !ok || ev.Index != 0 {
		t.Errorf("ActiveAt(11) = %v, %v", ev, ok)
	}
	if _, ok := s.ActiveAt(12.5); ok {
		t.Error("gap between events should be inactive")
	}
	ev, ok = s.ActiveAt(20)
	if !ok || ev.Index != 1 {
		t.Errorf("ActiveAt(20) = %v, %v (start is inclusive)", ev, ok)
	}
	if _, ok := s.ActiveAt(22); ok {
		t.Error("window end should be exclusive")
	}
}

func TestNextAfter(t *testing.T) {
	s := Schedule{Events: []Event{{Index: 0, At: 10, Window: 1}, {Index: 1, At: 20, Window: 1}}}
	ev, ok := s.NextAfter(0)
	if !ok || ev.Index != 0 {
		t.Errorf("NextAfter(0) = %v, %v", ev, ok)
	}
	ev, ok = s.NextAfter(10.5)
	if !ok || ev.Index != 1 {
		t.Errorf("NextAfter(10.5) = %v, %v", ev, ok)
	}
	if _, ok := s.NextAfter(100); ok {
		t.Error("NextAfter past the end should fail")
	}
}

func TestHorizon(t *testing.T) {
	s := Schedule{Events: []Event{{At: 10, Window: 2}, {At: 20, Window: 5}}}
	if got := s.Horizon(); got != 25 {
		t.Fatalf("Horizon = %v, want 25", got)
	}
	if got := (Schedule{}).Horizon(); got != 0 {
		t.Fatalf("empty horizon = %v", got)
	}
}

func TestPendulumSenseOutcomes(t *testing.T) {
	s := Schedule{Events: []Event{{Index: 0, At: 100, Window: 1, Value: 1}}}
	p := NewPendulum(s)

	if !p.ObjectPresent(100.5) || p.ObjectPresent(99) {
		t.Fatal("ObjectPresent window wrong")
	}

	// Sensing before the swing: missed.
	if out, _ := p.Sense(50, 0.25); out != GestureMissed {
		t.Errorf("early sense = %v", out)
	}
	// Sensing promptly: correct classification.
	out, ev := p.Sense(100.1, 0.25)
	if out != GestureCorrect || ev.Index != 0 {
		t.Errorf("prompt sense = %v, %v", out, ev)
	}
	// Sensing after the classification deadline (40 % of 1 s) but with
	// a full window remaining: misclassified.
	if out, _ := p.Sense(100.5, 0.25); out != GestureMisclassified {
		t.Errorf("late sense = %v", out)
	}
	// Sensing so late the 250 ms window does not fit: proximity only.
	if out, _ := p.Sense(100.9, 0.25); out != GestureProximityOnly {
		t.Errorf("too-late sense = %v", out)
	}
}

func TestGestureOutcomeStrings(t *testing.T) {
	for _, o := range []GestureOutcome{GestureMissed, GestureProximityOnly, GestureMisclassified, GestureCorrect} {
		if o.String() == "" {
			t.Errorf("outcome %d has empty string", o)
		}
	}
}

func TestThermalPlant(t *testing.T) {
	s := Schedule{Events: []Event{
		{Index: 0, At: 1000, Window: 30, Value: 3},  // over-temperature
		{Index: 1, At: 2000, Window: 30, Value: -3}, // under-temperature
	}}
	th := NewThermal(s)

	// Benign operation stays in range at every phase of the wobble.
	for i := 0; i < 600; i++ {
		tt := units.Seconds(i)
		if tt >= 1000 {
			break
		}
		if temp := th.Temperature(tt); th.OutOfRange(temp) {
			t.Fatalf("benign temperature out of range at %v: %g", tt, temp)
		}
	}
	// During events the reading is out of range on the correct side.
	if temp := th.Temperature(1010); temp <= th.High {
		t.Fatalf("over-temp event reads %g, want > %g", temp, th.High)
	}
	if temp := th.Temperature(2010); temp >= th.Low {
		t.Fatalf("under-temp event reads %g, want < %g", temp, th.Low)
	}
	if !th.OutOfRange(th.Temperature(1010)) || !th.OutOfRange(th.Temperature(2010)) {
		t.Fatal("OutOfRange disagrees with Temperature")
	}
}

func TestEventStringer(t *testing.T) {
	e := Event{Index: 3, At: 42, Window: 1}
	if e.String() == "" || e.End() != 43 {
		t.Fatalf("Event helpers broken: %v, end %v", e, e.End())
	}
}
