package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capybara/internal/harvest"
	"capybara/internal/units"
)

// quickStore is a minimal Store for solver cross-checks.
type quickStore struct {
	c   units.Capacitance
	v   units.Voltage
	esr units.Resistance
}

func (s *quickStore) Capacitance() units.Capacitance { return s.c }
func (s *quickStore) Voltage() units.Voltage         { return s.v }
func (s *quickStore) SetVoltage(v units.Voltage)     { s.v = v }
func (s *quickStore) ESR() units.Resistance          { return s.esr }

// numericChargeTo is the reference integrator: fixed small steps, the
// charge power re-evaluated from the segment-start voltage and time —
// exactly the pre-event-solver loop, just with a much finer step. The
// analytic solver must agree with its limit.
func numericChargeTo(s *System, c units.Capacitance, v0, target units.Voltage,
	t0, maxWait, step units.Seconds) (units.Seconds, units.Voltage, bool) {
	v := v0
	elapsed := units.Seconds(0)
	for elapsed < maxWait {
		if v >= target {
			return elapsed, target, true
		}
		dt := step
		if rem := maxWait - elapsed; rem < dt {
			dt = rem
		}
		if p := s.ChargePower(v, t0+elapsed); p > 0 {
			v = units.ChargeVoltageAfter(c, v, p, dt)
		}
		elapsed += dt
	}
	if v >= target {
		return maxWait, target, true
	}
	return maxWait, v, false
}

// TestAnalyticMatchesNumerical property-checks the event-driven solver
// against small-step numerical integration across randomized sources,
// capacitances, ESRs, starting voltages, and cold-start/bypass
// configurations. Stepped sources must agree to integration error;
// opaque (non-Stepped) sources exercise the maxChargeStep fallback and
// get a proportionally looser tolerance (the fallback re-samples every
// 0.5 s, the reference every millisecond).
func TestAnalyticMatchesNumerical(t *testing.T) {
	f := func(kind uint8, rawC, rawV0, rawTarget, rawP, rawSrcV, rawWait, rawCold, rawDrop uint16, bypass bool) bool {
		frac := func(r uint16) float64 { return float64(r) / math.MaxUint16 }

		c := units.Capacitance(1e-5 * math.Pow(10, 3*frac(rawC)))  // 10 µF … 10 mF
		v0 := units.Voltage(2.2 * frac(rawV0))                     // 0 … 2.2 V
		target := v0 + units.Voltage(0.05+2.4*frac(rawTarget))     // above v0, ≤ 4.65 V
		p := units.Power(50e-6 * math.Pow(10, 2.6*frac(rawP)))     // 50 µW … 20 mW
		srcV := units.Voltage(0.2 + 4.8*frac(rawSrcV))             // 0.2 … 5 V
		maxWait := units.Seconds(0.5 + 3.5*frac(rawWait))          // 0.5 … 4 s
		coldStart := units.Voltage(1.0 + 1.0*frac(rawCold))        // 1 … 2 V
		drop := units.Voltage(0.1 + 0.4*frac(rawDrop))             // 0.1 … 0.5 V

		var src harvest.Source
		opaque := false
		switch kind % 4 {
		case 0:
			src = harvest.RegulatedSupply{Max: p, V: srcV}
		case 1:
			src = harvest.SolarPanel{PeakPower: p, OpenCircuitVoltage: srcV}
		case 2:
			// Piecewise-constant varying source: the solver splits
			// segments at the PWM edges.
			src = harvest.SolarPanel{PeakPower: p, OpenCircuitVoltage: srcV,
				Light: harvest.PWMTrace(0.6, 0.7)}
		default:
			// Opaque slowly-varying source: no Stepped horizon, so the
			// solver must fall back to bounded re-sampling.
			opaque = true
			src = harvest.SolarPanel{PeakPower: p, OpenCircuitVoltage: srcV,
				Light: harvest.TraceFunc(func(tt units.Seconds) float64 {
					return 0.65 + 0.35*math.Sin(2*math.Pi*float64(tt)/120)
				})}
		}

		sys := NewSystem(src)
		sys.In.ColdStart = coldStart
		sys.Bypass = BypassDiode{Enabled: bypass, Drop: drop}

		st := &quickStore{c: c, v: v0, esr: units.Resistance(frac(rawC))}
		gotT, gotOK := sys.TimeToChargeTo(st, target, 0, maxWait)
		gotV := st.Voltage()

		// The reference step must be far below the charge-curve
		// timescale: a 10 µF store at mW power charges in well under a
		// millisecond. Resolve whichever duration the analytic solver
		// measured into ~4000 steps (finer is only a stronger check).
		step := gotT / 4000
		if step > 1e-3 {
			step = 1e-3
		}
		if step < 1e-7 {
			step = 1e-7
		}
		wantT, wantV, wantOK := numericChargeTo(sys, c, v0, target, 0, maxWait, step)

		// Tolerances: the reference lags the analytic hit by up to one
		// step per path boundary or PWM edge; the opaque fallback
		// additionally mis-integrates the within-step power drift.
		timeTol := 10*step + units.Seconds(0.015*float64(wantT))
		// The voltage tolerance is dominated by phase-crossing jitter: a
		// small disagreement in *when* the trajectory crosses the
		// cold-start threshold amplifies through the ~40× power step
		// into a visible voltage gap until the target is hit.
		vTol := units.Voltage(0.03)
		if opaque {
			timeTol += units.Seconds(0.05*float64(wantT)) + maxChargeStep
			vTol = 0.2
		}
		if gotOK != wantOK {
			// A target hit within tolerance of the deadline can land on
			// either side of it.
			edge := math.Min(math.Abs(float64(gotT-maxWait)), math.Abs(float64(wantT-maxWait)))
			if edge > float64(timeTol) {
				t.Logf("reached mismatch: analytic (%v, %v) numeric (%v, %v) cfg C=%v v0=%v target=%v",
					gotT, gotOK, wantT, wantOK, c, v0, target)
				return false
			}
			return true
		}
		if d := math.Abs(float64(gotT - wantT)); d > float64(timeTol) {
			t.Logf("time mismatch: analytic %v numeric %v (tol %v) cfg C=%v v0=%v target=%v src=%v",
				gotT, wantT, timeTol, c, v0, target, src)
			return false
		}
		if d := math.Abs(float64(gotV - wantV)); d > float64(vTol) {
			t.Logf("voltage mismatch: analytic %v numeric %v (tol %v) cfg C=%v v0=%v target=%v src=%v",
				gotV, wantV, vTol, c, v0, target, src)
			return false
		}
		return true
	}

	cfg := &quick.Config{
		MaxCount: 1200,
		Rand:     rand.New(rand.NewSource(20260806)),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
