package power

import (
	"math"

	"capybara/internal/units"
)

// Charge-solve memoization.
//
// Fleet workloads re-solve the same closed-form charge segments millions
// of times: periodic sources (PWM, diurnal gating) and cyclic device
// lifecycles revisit a small set of (store fingerprint, source level,
// V-start, V-target) combinations. A segment solve is a pure function of
// those inputs plus the booster configuration — time enters only through
// the source output, which is constant within a segment by contract — so
// the solve can be cached under an exact key with no loss of fidelity.
//
// Soundness: keys are exact float64 tuples (never quantized or
// interpolated) covering every value chargeSegment reads, and an entry
// stores the segment's phase-boundary trajectory as produced by a
// dt-unbounded walk of the same phase logic. Replaying an entry performs
// the same floating-point operations in the same order as the direct
// solver for any dt, so a cache hit yields bit-identical results to a
// recompute — memo-on and memo-off runs produce byte-identical outputs
// (see TestMemoBitIdentical and the experiment golden tests).
//
// Scope: the cache only engages below the cold-start threshold. A warm
// store charges through the started booster alone — a single
// closed-form phase — so a direct solve is cheaper than a hash lookup
// and the memoized path would only add overhead. Cold-start segments
// cross up to three path boundaries (bypass ceiling, threshold,
// started-booster limit), each costing a source sample and a
// closed-form solve, and periodic workloads (PWM, diurnal gating)
// revisit the same few trajectories every cycle — that is where
// replaying wins.

// segConfig is the booster-configuration part of the memo key: every
// System parameter the segment solver reads. Two Systems with equal
// segConfigs compute identical segments, so a cache may be shared across
// devices (fleet shards share one cache per worker).
//
// All key fields are stored as IEEE-754 bit patterns rather than
// float64s: a struct of uint64s hashes as one flat memory block
// (aeshash over 96 bytes) instead of field-by-field float hashing,
// which shows up hard in charge-solve profiles. Bitwise keying also has
// the right cache semantics — it distinguishes nothing the solver
// doesn't (two bit-identical inputs run the identical float ops), and
// unlike float equality it never lets a NaN key miss itself forever.
type segConfig struct {
	eff     uint64
	coldEff uint64
	coldV   uint64
	minSrcV uint64
	bypass  uint64
	drop    uint64
}

// fb converts any float64-based quantity to its memo-key bit pattern.
func fb[T ~float64](x T) uint64 { return math.Float64bits(float64(x)) }

func (s *System) segConfig() segConfig {
	cfg := segConfig{
		eff:     fb(s.In.Efficiency),
		coldEff: fb(s.In.ColdStartEfficiency),
		coldV:   fb(s.In.ColdStart),
		minSrcV: fb(s.In.MinSourceVoltage),
		drop:    fb(s.Bypass.Drop),
	}
	if s.Bypass.Enabled {
		cfg.bypass = 1
	}
	return cfg
}

// segKey identifies one constant-power segment solve exactly. The
// booster configuration participates as an interned index rather than
// inline: interning is injective (see SegmentCache.internConfig), so
// the key remains exact while the hashed struct shrinks from 104 to 56
// bytes — segment lookups sit on the charge path's hottest line.
type segKey struct {
	cfg    uint32
	c      uint64
	rated  uint64
	raw    uint64
	srcV   uint64
	v0     uint64
	target uint64
}

// segMaxPhases bounds the recorded trajectory. A segment crosses at most
// three charge-path boundaries (bypass ceiling, cold-start threshold,
// started-booster limit); anything longer indicates a configuration the
// recorder does not understand and is left uncached.
const segMaxPhases = 4

// segPhase is one constant-power stretch of the trajectory: starting at
// voltage v, power p applies until the store reaches limit after need
// seconds.
type segPhase struct {
	v     units.Voltage
	p     units.Power
	limit units.Voltage
	need  units.Seconds
}

// segTerm labels how the trajectory ends after its recorded phases.
type segTerm uint8

const (
	// termTarget: the final phase reaches the requested target.
	termTarget segTerm = iota
	// termParked: the store reaches its rated ceiling (or starts there);
	// the rest of any segment is dead air.
	termParked
	// termDead: no charge power flows (source too weak for the path in
	// effect); the voltage holds for the whole segment.
	termDead
	// termOpen: charging continues at constant power with no voltage
	// bound (no target, no rating, above cold start).
	termOpen
)

// segEntry is one memoized trajectory.
type segEntry struct {
	phases [segMaxPhases]segPhase
	n      uint8
	term   segTerm
	termV  units.Voltage // termOpen: phase start voltage
	termP  units.Power   // termOpen: phase power
}

// recordSegment walks the charge-path phases from v0 with no time bound,
// mirroring chargeSegment's phase selection exactly. It reports false
// when the trajectory exceeds segMaxPhases (left uncached).
func (s *System) recordSegment(c units.Capacitance, rated, v0, target units.Voltage, t units.Seconds) (segEntry, bool) {
	var e segEntry
	v := v0
	for {
		if target > 0 && v >= target {
			e.term = termTarget
			return e, true
		}
		if rated > 0 && v >= rated {
			e.term = termParked
			return e, true
		}
		p := s.ChargePower(v, t)
		if p <= 0 {
			e.term = termDead
			return e, true
		}
		limit := target
		if rated > 0 && (limit <= 0 || rated < limit) {
			limit = rated
		}
		if v < s.In.ColdStart {
			b := s.In.ColdStart
			if s.Bypass.Enabled {
				if bc := s.bypassCeiling(t); bc > v && bc < b {
					b = bc
				}
			}
			if limit <= 0 || b < limit {
				limit = b
			}
		}
		if limit <= 0 {
			e.term = termOpen
			e.termV = v
			e.termP = p
			return e, true
		}
		if int(e.n) == len(e.phases) {
			return e, false
		}
		e.phases[e.n] = segPhase{v: v, p: p, limit: limit,
			need: units.TimeToCharge(c, v, limit, p)}
		e.n++
		v = limit
	}
}

// replay answers a dt-bounded segment query from the recorded
// trajectory, performing the same floating-point operations the direct
// solver would: whole phases advance by their exact need and snap to
// their exact limit; a phase cut short by dt ends at
// ChargeVoltageAfter(c, phaseStart, p, remain) with the identical
// arguments the direct partial step uses.
func (e *segEntry) replay(st Store, c units.Capacitance, dt units.Seconds) (units.Seconds, bool) {
	elapsed := units.Seconds(0)
	v := units.Voltage(-1) // sentinel: no voltage change yet
	for i := 0; i < int(e.n); i++ {
		ph := &e.phases[i]
		remain := dt - elapsed
		if remain <= 0 {
			// The direct loop exits on elapsed >= dt before touching the
			// store again.
			if v >= 0 {
				st.SetVoltage(v)
			}
			return dt, false
		}
		if ph.need <= remain {
			v = ph.limit
			elapsed += ph.need
			continue
		}
		st.SetVoltage(units.ChargeVoltageAfter(c, ph.v, ph.p, remain))
		return dt, false
	}
	switch e.term {
	case termTarget:
		if v >= 0 {
			st.SetVoltage(v)
		}
		return elapsed, true
	case termOpen:
		remain := dt - elapsed
		if remain <= 0 {
			if v >= 0 {
				st.SetVoltage(v)
			}
			return dt, false
		}
		st.SetVoltage(units.ChargeVoltageAfter(c, e.termV, e.termP, remain))
		return dt, false
	default: // termParked, termDead: the rest of the segment is dead air
		if v >= 0 {
			st.SetVoltage(v)
		}
		return dt, false
	}
}

// DefaultMemoEntries bounds a SegmentCache built with size <= 0.
const DefaultMemoEntries = 4096

// CacheStats reports a SegmentCache's effectiveness counters.
type CacheStats struct {
	// Hits and Misses count lookups answered from the cache and
	// trajectories recorded fresh, respectively.
	Hits, Misses uint64
	// Uncacheable counts solves that fell back to the direct solver
	// (trajectory longer than segMaxPhases).
	Uncacheable uint64
	// Entries is the number of trajectories currently retained.
	Entries int
}

// HitRate returns the fraction of lookups answered from the cache.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Add accumulates another cache's counters (fleet shards report one
// combined figure).
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Uncacheable += o.Uncacheable
	s.Entries += o.Entries
}

// SegmentCache memoizes charge-segment solves. It is bounded by a
// two-generation rotation (an approximate LRU): inserts land in the
// young generation, lookups that hit the old generation re-promote, and
// when the young generation fills, the old one — everything not touched
// since the last rotation — is dropped. Total retention never exceeds
// the configured entry bound.
//
// A cache is not safe for concurrent use; give each worker its own (the
// fleet engine recycles them through a sync.Pool). Sharing one cache
// across Systems or devices is sound: the key embeds every booster
// parameter the solver reads, and hits are bit-identical to recomputes,
// so cache state can never alter a result — only the hit counters vary
// with sharing.
type SegmentCache struct {
	max       int
	cur, prev map[segKey]*segEntry
	stats     CacheStats
	// cfgs interns the booster configurations seen by this cache; a
	// config's index is its segKey.cfg. The slice is tiny (one entry per
	// distinct booster tuning — heterogeneous fleets have a handful) and
	// last/lastID short-circuit the common case of consecutive solves
	// from the same System.
	cfgs   []segConfig
	last   segConfig
	lastID uint32
	warm   bool
}

// internConfig maps a booster configuration to its stable index in the
// cache, assigning one on first sight. Interning is injective — equal
// indices imply bitwise-equal configs — so keying on the index is as
// exact as keying on the config itself. The config is recomputed from
// the System every solve (it is six bit-casts), which keeps mutation of
// booster parameters between solves sound, unlike caching the key on
// the System would be.
func (m *SegmentCache) internConfig(cfg segConfig) uint32 {
	if m.warm && cfg == m.last {
		return m.lastID
	}
	id := uint32(0)
	for i := range m.cfgs {
		if m.cfgs[i] == cfg {
			id = uint32(i)
			goto found
		}
	}
	id = uint32(len(m.cfgs))
	m.cfgs = append(m.cfgs, cfg)
found:
	m.last, m.lastID, m.warm = cfg, id, true
	return id
}

// NewSegmentCache builds a cache bounded to at most max entries
// (<= 0 means DefaultMemoEntries).
func NewSegmentCache(max int) *SegmentCache {
	if max <= 0 {
		max = DefaultMemoEntries
	}
	if max < 2 {
		max = 2
	}
	// Maps start empty and grow to the working set: typical runs retain
	// far fewer trajectories than the bound, and fleets build one System
	// per device, so pre-sizing to the bound would dominate construction.
	return &SegmentCache{max: max, cur: make(map[segKey]*segEntry)}
}

// Stats returns the cache's counters.
func (m *SegmentCache) Stats() CacheStats {
	st := m.stats
	st.Entries = len(m.cur) + len(m.prev)
	return st
}

// Reset drops every entry and zeroes the counters.
func (m *SegmentCache) Reset() {
	clear(m.cur)
	m.prev = nil
	m.stats = CacheStats{}
	m.cfgs = nil
	m.warm = false
}

func (m *SegmentCache) get(k segKey) *segEntry {
	if e, ok := m.cur[k]; ok {
		m.stats.Hits++
		return e
	}
	if e, ok := m.prev[k]; ok {
		m.stats.Hits++
		m.put(k, e) // promote: recently-used entries survive rotation
		return e
	}
	m.stats.Misses++
	return nil
}

func (m *SegmentCache) put(k segKey, e *segEntry) {
	if len(m.cur) >= m.max/2 {
		m.prev = m.cur
		m.cur = make(map[segKey]*segEntry, len(m.prev))
	}
	m.cur[k] = e
}

// StepSegment advances st through exactly one analytic charge segment
// of length dt toward target, answering through the memo cache when one
// is attached and falling back to the direct closed-form solver
// otherwise. It returns the time consumed (dt unless the target was
// hit) and whether the target was reached. The contract matches
// chargeSegment: the caller must guarantee the source output is
// constant on [t, t+dt) — AdvanceCharge and TimeToChargeTo bound their
// iterations by segmentHorizon to establish it, and sim's fused charge
// loop passes its own source-change horizon through directly, skipping
// the per-iteration stepping machinery for a batch of devices crossing
// the same segment.
func (s *System) StepSegment(st Store, target units.Voltage, t, dt units.Seconds) (units.Seconds, bool) {
	m := s.Memo
	if m == nil {
		return s.chargeSegment(st, target, t, dt)
	}
	if dt <= 0 {
		return dt, false
	}
	v0 := st.Voltage()
	if target > 0 && v0 >= target {
		st.SetVoltage(target)
		return 0, true
	}
	// Warm store: above the cold-start threshold the started booster is
	// the only charge path and voltage only rises, so the segment is a
	// single closed-form phase — solving it directly is cheaper than
	// hashing it. The cache earns its keep below cold start, where
	// trajectories cross bypass-ceiling and threshold boundaries (several
	// source samples and closed-form solves each).
	if v0 >= s.In.ColdStart {
		return s.chargeSegment(st, target, t, dt)
	}
	// Dead air is the common case under gated sources (PWM off-phase,
	// night half of a diurnal cycle) and cheaper to answer inline than to
	// hash: mirror ChargePower's no-flow checks exactly.
	raw := s.Source.PowerAt(t)
	if raw <= 0 {
		return dt, false
	}
	srcV := s.Source.VoltageAt(t)
	if srcV < s.In.MinSourceVoltage {
		return dt, false
	}
	rated := ratedCeiling(st)
	c := st.Capacitance()
	key := segKey{cfg: m.internConfig(s.segConfig()), c: fb(c), rated: fb(rated),
		raw: fb(raw), srcV: fb(srcV), v0: fb(v0), target: fb(target)}
	e := m.get(key)
	if e == nil {
		fresh, cacheable := s.recordSegment(c, rated, v0, target, t)
		if !cacheable {
			m.stats.Uncacheable++
			return s.chargeSegment(st, target, t, dt)
		}
		e = &fresh
		m.put(key, e)
	}
	return e.replay(st, c, dt)
}
