package power

import (
	"math"
	"testing"
	"testing/quick"

	"capybara/internal/harvest"
	"capybara/internal/storage"
	"capybara/internal/units"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1e-30)
}

func testSystem(p units.Power, v units.Voltage) *System {
	return NewSystem(harvest.RegulatedSupply{Max: p, V: v})
}

func smallBank() *storage.Bank {
	return storage.MustBank("small",
		storage.GroupFor(storage.CeramicX5R, 400*units.MicroFarad),
		storage.GroupFor(storage.Tantalum, 330*units.MicroFarad))
}

func bigBank() *storage.Bank {
	return storage.MustBank("big", storage.GroupOf(storage.EDLC, 9)) // 67.5 mF
}

func TestChargePowerPhases(t *testing.T) {
	s := testSystem(10*units.MilliWatt, 3.0)

	// Above cold start: normal boosting at Efficiency.
	got := s.ChargePower(2.0, 0)
	want := units.Power(10e-3 * s.In.Efficiency)
	if !almostEqual(float64(got), float64(want), 1e-12) {
		t.Errorf("started phase power = %v, want %v", got, want)
	}

	// Below cold start with bypass: diode path loses only the drop.
	got = s.ChargePower(0.2, 0)
	want = units.Power(10e-3 * (1 - 0.3/3.0))
	if !almostEqual(float64(got), float64(want), 1e-12) {
		t.Errorf("bypass phase power = %v, want %v", got, want)
	}

	// Below cold start without bypass: trickle at ColdStartEfficiency.
	s.Bypass.Enabled = false
	got = s.ChargePower(0.2, 0)
	want = units.Power(10e-3 * s.In.ColdStartEfficiency)
	if !almostEqual(float64(got), float64(want), 1e-12) {
		t.Errorf("cold-start phase power = %v, want %v", got, want)
	}
}

func TestChargePowerDeadSource(t *testing.T) {
	s := testSystem(0, 3.0)
	if got := s.ChargePower(1.0, 0); got != 0 {
		t.Errorf("dead source charge power = %v", got)
	}
	// Harvester voltage below the booster's minimum: no charging.
	weak := testSystem(10*units.MilliWatt, 0.1)
	if got := weak.ChargePower(2.0, 0); got != 0 {
		t.Errorf("under-voltage source charge power = %v", got)
	}
}

func TestBypassSpeedsColdStart(t *testing.T) {
	// The paper: "the bypass optimization reduces charge time by at
	// least an order of magnitude."
	mk := func(bypass bool) units.Seconds {
		s := testSystem(10*units.MilliWatt, 3.0)
		s.Bypass.Enabled = bypass
		b := bigBank()
		dt, ok := s.TimeToChargeTo(b, 2.4, 0, 1e6)
		if !ok {
			t.Fatalf("charge did not complete (bypass=%v)", bypass)
		}
		return dt
	}
	with := mk(true)
	without := mk(false)
	if ratio := float64(without) / float64(with); ratio < 10 {
		t.Fatalf("bypass speedup = %.1fx (with %v, without %v), want ≥ 10x", ratio, with, without)
	}
}

func TestTimeToChargeToAlreadyCharged(t *testing.T) {
	s := testSystem(10*units.MilliWatt, 3.0)
	b := smallBank()
	b.SetVoltage(2.5)
	dt, ok := s.TimeToChargeTo(b, 2.4, 0, 1000)
	if !ok || dt != 0 {
		t.Fatalf("already-charged: (%v, %v), want (0, true)", dt, ok)
	}
}

func TestTimeToChargeToTimesOut(t *testing.T) {
	s := testSystem(0, 3.0) // no input power
	b := smallBank()
	dt, ok := s.TimeToChargeTo(b, 2.4, 0, 100)
	if ok || dt != 100 {
		t.Fatalf("dead-source charge: (%v, %v), want (100, false)", dt, ok)
	}
}

func TestChargeTimeScalesWithCapacity(t *testing.T) {
	// Large banks take proportionally longer: the capacity/reactivity
	// trade-off at the heart of the paper (§2.1).
	s1 := testSystem(10*units.MilliWatt, 3.0)
	small := smallBank()
	dtSmall, ok1 := s1.TimeToChargeTo(small, 2.4, 0, 1e6)
	s2 := testSystem(10*units.MilliWatt, 3.0)
	big := bigBank()
	dtBig, ok2 := s2.TimeToChargeTo(big, 2.4, 0, 1e6)
	if !ok1 || !ok2 {
		t.Fatal("charging did not complete")
	}
	if dtBig < 50*dtSmall {
		t.Fatalf("big bank (%v) should charge much slower than small (%v)", dtBig, dtSmall)
	}
	// Sanity: the big bank's full charge is tens of seconds at 10 mW,
	// matching the paper's charge-time scale.
	if dtBig < 10 || dtBig > 300 {
		t.Fatalf("big bank charge time = %v, want tens of seconds", dtBig)
	}
}

func TestCutoffVoltageESR(t *testing.T) {
	s := testSystem(10*units.MilliWatt, 3.0)
	// Zero ESR: cutoff is exactly MinInput.
	if got := s.CutoffVoltage(0, 10*units.MilliWatt); got != s.Out.MinInput {
		t.Errorf("zero-ESR cutoff = %v, want %v", got, s.Out.MinInput)
	}
	// High ESR raises the cutoff strictly.
	lo := s.CutoffVoltage(10, 10*units.MilliWatt)
	hi := s.CutoffVoltage(160, 10*units.MilliWatt)
	if !(hi > lo && lo > s.Out.MinInput) {
		t.Errorf("cutoff not increasing with ESR: %v, %v", lo, hi)
	}
	// Higher load power also raises the cutoff.
	light := s.CutoffVoltage(160, 1*units.MilliWatt)
	heavy := s.CutoffVoltage(160, 30*units.MilliWatt)
	if heavy <= light {
		t.Errorf("cutoff not increasing with load: %v, %v", light, heavy)
	}
}

func TestCutoffSolvesDroopEquation(t *testing.T) {
	f := func(esrRaw, pRaw uint16) bool {
		s := testSystem(10*units.MilliWatt, 3.0)
		esr := units.Resistance(float64(esrRaw) / math.MaxUint16 * 200)
		load := units.Power(float64(pRaw)/math.MaxUint16*50+0.1) * units.MilliWatt
		v := float64(s.CutoffVoltage(esr, load))
		p := float64(s.StoreDraw(load))
		// At the cutoff, V − (P/V)·ESR = MinInput.
		eff := v - p/v*float64(esr)
		return almostEqual(eff, float64(s.Out.MinInput), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDischargeBrownout(t *testing.T) {
	s := testSystem(10*units.MilliWatt, 3.0)
	b := smallBank()
	b.SetVoltage(2.4)
	// A 30 mW radio burn for 10 s far exceeds the small bank.
	sustained, ok := s.Discharge(b, 30*units.MilliWatt, 10)
	if ok {
		t.Fatal("small bank should brown out under radio load")
	}
	if sustained <= 0 || sustained >= 10 {
		t.Fatalf("sustained = %v, want within (0, 10)", sustained)
	}
	cut := s.CutoffVoltage(b.ESR(), 30*units.MilliWatt)
	if !almostEqual(float64(b.Voltage()), float64(cut), 1e-9) {
		t.Fatalf("post-brownout voltage = %v, want cutoff %v", b.Voltage(), cut)
	}
	// Already below cutoff: no time sustained at all.
	sustained, ok = s.Discharge(b, 30*units.MilliWatt, 1)
	if ok || sustained != 0 {
		t.Fatalf("below-cutoff discharge = (%v, %v)", sustained, ok)
	}
}

func TestDischargeWithinBudget(t *testing.T) {
	s := testSystem(10*units.MilliWatt, 3.0)
	b := bigBank()
	b.SetVoltage(2.4)
	sustained, ok := s.Discharge(b, 5*units.MilliWatt, 0.25)
	if !ok || sustained != 0.25 {
		t.Fatalf("discharge = (%v, %v), want (0.25, true)", sustained, ok)
	}
	if b.Voltage() >= 2.4 {
		t.Fatal("voltage did not drop")
	}
}

func TestOperatingTimeMatchesDischarge(t *testing.T) {
	s := testSystem(10*units.MilliWatt, 3.0)
	b := bigBank()
	b.SetVoltage(2.4)
	op := s.OperatingTime(b, 5*units.MilliWatt)
	sustained, ok := s.Discharge(b, 5*units.MilliWatt, 1e9)
	if ok {
		t.Fatal("unbounded discharge should brown out")
	}
	if !almostEqual(float64(op), float64(sustained), 1e-9) {
		t.Fatalf("OperatingTime %v != sustained %v", op, sustained)
	}
}

func TestExtractableEnergyESRPenalty(t *testing.T) {
	s := testSystem(10*units.MilliWatt, 3.0)
	// Same capacitance, different ESR: one CPH3225A vs four in
	// parallel scaled down — model directly with two banks.
	highESR := storage.MustBank("1x", storage.GroupOf(storage.SupercapCPH3225A, 1))
	lowESR := storage.MustBank("4x", storage.GroupOf(storage.SupercapCPH3225A, 4))
	highESR.SetVoltage(3.3)
	lowESR.SetVoltage(3.3)
	perCapHigh := float64(s.ExtractableEnergy(highESR, 10*units.MilliWatt))
	perCapLow := float64(s.ExtractableEnergy(lowESR, 10*units.MilliWatt)) / 4
	if perCapLow <= perCapHigh {
		t.Fatalf("parallel (low-ESR) extraction per cap %v should beat single %v", perCapLow, perCapHigh)
	}
}

func TestCanSupply(t *testing.T) {
	s := testSystem(10*units.MilliWatt, 3.0)
	b := smallBank()
	b.SetVoltage(2.4)
	if !s.CanSupply(b, 1*units.MilliWatt) {
		t.Fatal("charged bank should supply a light load")
	}
	b.SetVoltage(1.0)
	if s.CanSupply(b, 1*units.MilliWatt) {
		t.Fatal("bank below MinInput cannot supply")
	}
}

func TestAdvanceChargeRespectsCeiling(t *testing.T) {
	s := testSystem(10*units.MilliWatt, 3.0)
	b := smallBank()
	v := s.AdvanceCharge(b, 0, 1e4, 2.0)
	if !almostEqual(float64(v), 2.0, 1e-9) {
		t.Fatalf("AdvanceCharge ceiling: %v, want 2.0", v)
	}
}

func TestAdvanceChargeTracksTimeToCharge(t *testing.T) {
	// Charging for exactly the computed charge time must land on the
	// target voltage (with a constant source).
	s1 := testSystem(10*units.MilliWatt, 3.0)
	b1 := bigBank()
	dt, ok := s1.TimeToChargeTo(b1, 2.4, 0, 1e6)
	if !ok {
		t.Fatal("charge incomplete")
	}
	s2 := testSystem(10*units.MilliWatt, 3.0)
	b2 := bigBank()
	v := s2.AdvanceCharge(b2, 0, dt, 0)
	if !almostEqual(float64(v), 2.4, 1e-3) {
		t.Fatalf("AdvanceCharge(%v) reached %v, want 2.4", dt, v)
	}
}

func TestAdvanceChargeIntermittentSource(t *testing.T) {
	// A source that blacks out mid-charge: charging pauses but resumes.
	src := harvest.SolarPanel{
		PeakPower:          10 * units.MilliWatt,
		OpenCircuitVoltage: 3.0,
		Light:              harvest.BlackoutTrace(harvest.ConstantTrace(1), [2]units.Seconds{1, 5}),
	}
	s := NewSystem(src)
	b := smallBank()
	vAtBlackout := s.AdvanceCharge(b, 0, 1, 0)
	vDuring := s.AdvanceCharge(b, 1, 5, 0)
	if vDuring > vAtBlackout+1e-9 {
		t.Fatalf("charged during blackout: %v > %v", vDuring, vAtBlackout)
	}
	vAfter := s.AdvanceCharge(b, 6, 1, 0)
	if vAfter <= vDuring {
		t.Fatal("did not resume charging after blackout")
	}
}

func TestStoreDrawIncludesOverheads(t *testing.T) {
	s := testSystem(10*units.MilliWatt, 3.0)
	got := s.StoreDraw(8 * units.MilliWatt)
	want := units.Power(8e-3/s.Out.Efficiency) + s.Out.Quiescent
	if !almostEqual(float64(got), float64(want), 1e-12) {
		t.Fatalf("StoreDraw = %v, want %v", got, want)
	}
}

func TestSystemStringer(t *testing.T) {
	if s := testSystem(10*units.MilliWatt, 3.0).String(); s == "" {
		t.Fatal("empty stringer")
	}
}
