package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capybara/internal/harvest"
	"capybara/internal/units"
)

// memoSystem builds a randomized system from the same raw knobs as the
// analytic-vs-numerical quick test, so the memo equivalence check covers
// the same configuration space (all four source kinds including PWM
// edges and the opaque re-sampling fallback).
func memoSystem(kind uint8, rawP, rawSrcV, rawCold, rawDrop uint16, bypass bool) *System {
	frac := func(r uint16) float64 { return float64(r) / math.MaxUint16 }
	p := units.Power(50e-6 * math.Pow(10, 2.6*frac(rawP)))
	srcV := units.Voltage(0.2 + 4.8*frac(rawSrcV))
	var src harvest.Source
	switch kind % 4 {
	case 0:
		src = harvest.RegulatedSupply{Max: p, V: srcV}
	case 1:
		src = harvest.SolarPanel{PeakPower: p, OpenCircuitVoltage: srcV}
	case 2:
		src = harvest.SolarPanel{PeakPower: p, OpenCircuitVoltage: srcV,
			Light: harvest.PWMTrace(0.6, 0.7)}
	default:
		src = harvest.SolarPanel{PeakPower: p, OpenCircuitVoltage: srcV,
			Light: harvest.TraceFunc(func(tt units.Seconds) float64 {
				return 0.65 + 0.35*math.Sin(2*math.Pi*float64(tt)/120)
			})}
	}
	sys := NewSystem(src)
	sys.In.ColdStart = units.Voltage(1.0 + 1.0*frac(rawCold))
	sys.Bypass = BypassDiode{Enabled: bypass, Drop: units.Voltage(0.1 + 0.4*frac(rawDrop))}
	return sys
}

// TestMemoBitIdentical is the memo cache's soundness property: for
// randomized configurations, a memoized TimeToChargeTo / AdvanceCharge
// produces bit-identical elapsed times and store voltages to the direct
// solver — including on the second run of the same query, which is
// answered entirely from the cache.
func TestMemoBitIdentical(t *testing.T) {
	f := func(kind uint8, rawC, rawV0, rawTarget, rawP, rawSrcV, rawWait, rawCold, rawDrop uint16, bypass, rated bool) bool {
		frac := func(r uint16) float64 { return float64(r) / math.MaxUint16 }
		c := units.Capacitance(1e-5 * math.Pow(10, 3*frac(rawC)))
		v0 := units.Voltage(2.2 * frac(rawV0))
		target := v0 + units.Voltage(0.05+2.4*frac(rawTarget))
		maxWait := units.Seconds(0.5 + 3.5*frac(rawWait))

		direct := memoSystem(kind, rawP, rawSrcV, rawCold, rawDrop, bypass)
		memo := memoSystem(kind, rawP, rawSrcV, rawCold, rawDrop, bypass)
		memo.Memo = NewSegmentCache(0)

		mk := func() Store {
			if rated {
				// Exercise the termParked path with a rating that can sit
				// below the target.
				return &ratedQuickStore{quickStore{c: c, v: v0}, target - 0.3}
			}
			return &quickStore{c: c, v: v0}
		}

		for pass := 0; pass < 2; pass++ { // pass 1 replays from a warm cache
			a, b := mk(), mk()
			dT, dOK := direct.TimeToChargeTo(a, target, 0, maxWait)
			mT, mOK := memo.TimeToChargeTo(b, target, 0, maxWait)
			if dT != mT || dOK != mOK || a.Voltage() != b.Voltage() {
				t.Logf("TimeToChargeTo pass %d: direct (%v,%v,%v) memo (%v,%v,%v) C=%v v0=%v target=%v rated=%v",
					pass, dT, dOK, a.Voltage(), mT, mOK, b.Voltage(), c, v0, target, rated)
				return false
			}
			a, b = mk(), mk()
			// Ceiling 0 exercises the unbounded termOpen path.
			ceil := target
			if rawWait%2 == 0 {
				ceil = 0
			}
			dV := direct.AdvanceCharge(a, 0, maxWait, ceil)
			mV := memo.AdvanceCharge(b, 0, maxWait, ceil)
			if dV != mV || a.Voltage() != b.Voltage() {
				t.Logf("AdvanceCharge pass %d: direct %v memo %v C=%v v0=%v ceil=%v rated=%v",
					pass, dV, mV, c, v0, ceil, rated)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 1500,
		Rand:     rand.New(rand.NewSource(20260807)),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// ratedQuickStore adds a rated ceiling so the memoized termParked
// trajectory is exercised.
type ratedQuickStore struct {
	quickStore
	rated units.Voltage
}

func (s *ratedQuickStore) RatedVoltage() units.Voltage { return s.rated }

func (s *ratedQuickStore) SetVoltage(v units.Voltage) {
	if v > s.rated {
		v = s.rated
	}
	s.quickStore.SetVoltage(v)
}

// TestMemoHitRatePWM checks the headline workload: a device cycling
// through charge solves under a periodic PWM source revisits the same
// segment keys, so the hit rate must exceed 50%.
func TestMemoHitRatePWM(t *testing.T) {
	src := harvest.SolarPanel{PeakPower: 5 * units.MilliWatt, OpenCircuitVoltage: 3,
		Light: harvest.PWMTrace(0.42, 8)}
	sys := NewSystem(src)
	sys.Memo = NewSegmentCache(0)
	st := &quickStore{c: 100 * units.MicroFarad, v: 0}
	// A periodic lifecycle: charge to a target, brown out back below the
	// cold-start threshold, repeat. Each cycle reissues the same
	// (v0, target, source-level) cold-start solves — the multi-phase
	// trajectories the cache is scoped to (warm single-phase segments
	// deliberately bypass it; see StepSegment).
	for cycle := 0; cycle < 200; cycle++ {
		t0 := units.Seconds(cycle) * 8
		sys.TimeToChargeTo(st, 2.8, t0, 8)
		st.v = 0.6
	}
	stats := sys.Memo.Stats()
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("degenerate counters: %+v", stats)
	}
	if hr := stats.HitRate(); hr <= 0.5 {
		t.Fatalf("PWM hit rate %.3f, want > 0.5 (stats %+v)", hr, stats)
	}
}

// TestMemoBounded verifies the two-generation rotation caps retention:
// a key stream much larger than the bound never grows the cache past it.
func TestMemoBounded(t *testing.T) {
	sys := NewSystem(harvest.RegulatedSupply{Max: units.MilliWatt, V: 3})
	m := NewSegmentCache(64)
	sys.Memo = m
	st := &quickStore{c: 100 * units.MicroFarad}
	for i := 0; i < 10_000; i++ {
		// Distinct v0 per solve → distinct key every time.
		st.v = units.Voltage(0.0001 * float64(i))
		sys.TimeToChargeTo(st, 4.0, 0, 1e-4)
	}
	if n := m.Stats().Entries; n > 64 {
		t.Fatalf("cache grew to %d entries, bound is 64", n)
	}
	if m.Stats().Misses == 0 {
		t.Fatal("expected misses from the distinct-key stream")
	}
}

// TestMemoPromotion verifies a hot key survives rotations: hits in the
// old generation re-promote, so a working set smaller than the bound
// stays resident under interleaved churn.
func TestMemoPromotion(t *testing.T) {
	sys := NewSystem(harvest.RegulatedSupply{Max: units.MilliWatt, V: 3})
	m := NewSegmentCache(32)
	sys.Memo = m
	hot := &quickStore{c: 100 * units.MicroFarad}
	churn := &quickStore{c: 100 * units.MicroFarad}
	solveHot := func() {
		hot.v = 1.0
		sys.TimeToChargeTo(hot, 2.0, 0, 1e-6)
	}
	solveHot() // seed the hot entry
	before := m.Stats()
	if before.Misses != 1 {
		t.Fatalf("seed: %+v", before)
	}
	for i := 0; i < 500; i++ {
		churn.v = units.Voltage(0.001 * float64(i))
		sys.TimeToChargeTo(churn, 4.0, 0, 1e-6)
		solveHot()
	}
	after := m.Stats()
	// The hot key must have hit every time after seeding; misses grow
	// only from the churn keys.
	if hotMisses := after.Misses - before.Misses - 500; hotMisses != 0 {
		t.Fatalf("hot key missed %d times under churn: %+v", hotMisses, after)
	}
}

// TestMemoStatsReset checks counter bookkeeping round-trips.
func TestMemoStatsReset(t *testing.T) {
	var agg CacheStats
	agg.Add(CacheStats{Hits: 3, Misses: 2, Uncacheable: 1, Entries: 4})
	agg.Add(CacheStats{Hits: 1, Misses: 1, Entries: 2})
	if agg.Hits != 4 || agg.Misses != 3 || agg.Uncacheable != 1 || agg.Entries != 6 {
		t.Fatalf("Add: %+v", agg)
	}
	if hr := agg.HitRate(); math.Abs(hr-4.0/7.0) > 1e-15 {
		t.Fatalf("HitRate: %v", hr)
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Fatal("empty HitRate should be 0")
	}

	sys := NewSystem(harvest.RegulatedSupply{Max: units.MilliWatt, V: 3})
	m := NewSegmentCache(16)
	sys.Memo = m
	st := &quickStore{c: 100 * units.MicroFarad, v: 1}
	sys.TimeToChargeTo(st, 2.0, 0, 1e-6)
	m.Reset()
	if s := m.Stats(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Fatalf("Reset left %+v", s)
	}
}
