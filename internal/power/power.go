// Package power models Capybara's power distribution circuit (paper
// §5.1): the input booster with its cold-start phase and bypass-diode
// optimization, and the output booster that regulates the load voltage
// and extracts energy from high-ESR capacitors down to a cutoff.
//
// The package charges and discharges any Store — a single fixed bank or
// the active set of a reconfigurable reservoir.
package power

import (
	"fmt"
	"math"

	"capybara/internal/harvest"
	"capybara/internal/units"
)

// Store is the electrical view of an energy buffer: total capacitance,
// terminal voltage, and effective series resistance. *storage.Bank and
// the reservoir's active set both implement it.
type Store interface {
	Capacitance() units.Capacitance
	Voltage() units.Voltage
	SetVoltage(units.Voltage)
	ESR() units.Resistance
}

// Rated is optionally implemented by stores that know the maximum
// voltage they may be charged to (the lowest rating across their
// members). The charger treats it as a hard ceiling — the booster's
// overvoltage lockout parks a full store at its rating. Without the
// ceiling the charger would command voltages above the rating and rely
// on each member clamping itself, which silently discards energy and,
// for a multi-bank set with mixed ratings, leaves the members at
// different voltages even though they are electrically connected.
type Rated interface {
	RatedVoltage() units.Voltage
}

// ratedCeiling returns the store's rated voltage, or 0 when unknown.
func ratedCeiling(st Store) units.Voltage {
	if r, ok := st.(Rated); ok {
		return r.RatedVoltage()
	}
	return 0
}

// InputBooster models the boost converter between harvester and
// storage. Below ColdStart volts of stored voltage the converter runs
// in its inefficient cold-start phase (paper: cold start "substantially
// slows charging of large capacitors at low input power").
type InputBooster struct {
	// Efficiency is the conversion efficiency once started, in (0, 1].
	Efficiency float64
	// ColdStart is the storage voltage below which the booster has not
	// yet started and must trickle-charge.
	ColdStart units.Voltage
	// ColdStartEfficiency is the conversion efficiency during cold
	// start; an order of magnitude below Efficiency.
	ColdStartEfficiency float64
	// MinSourceVoltage is the minimum harvester voltage the booster
	// can work from at all.
	MinSourceVoltage units.Voltage
}

// BypassDiode models the paper's bypass optimization: while the storage
// voltage is below the cold-start threshold and also below the
// harvester voltage minus the diode drop, capacitors charge directly
// from the harvester, skipping the cold-start penalty.
type BypassDiode struct {
	Enabled bool
	Drop    units.Voltage
}

// OutputBooster models the regulated output stage. It produces Vout for
// the load while drawing the storage down to a cutoff voltage set by
// MinInput and the ESR droop under load.
type OutputBooster struct {
	// Vout is the regulated output voltage (e.g. 2.5 V for the gesture
	// sensor, 2.0 V for the BLE radio).
	Vout units.Voltage
	// Efficiency is the conversion efficiency in (0, 1].
	Efficiency float64
	// MinInput is the minimum boostable storage voltage (1.6 V on the
	// paper's prototype).
	MinInput units.Voltage
	// Quiescent is the power-system overhead drawn from storage while
	// the device operates (it is why sleeping between samples still
	// drains the big capacitor, §6.4).
	Quiescent units.Power
}

// Defaults match the scale of the paper's prototype.
func DefaultInputBooster() InputBooster {
	return InputBooster{
		Efficiency:          0.75,
		ColdStart:           1.6,
		ColdStartEfficiency: 0.02,
		MinSourceVoltage:    0.3,
	}
}

func DefaultBypass() BypassDiode { return BypassDiode{Enabled: true, Drop: 0.3} }

func DefaultOutputBooster() OutputBooster {
	return OutputBooster{
		Vout:       2.5,
		Efficiency: 0.8,
		MinInput:   1.6,
		Quiescent:  150 * units.MicroWatt,
	}
}

// System composes a harvester with the three distribution circuits.
type System struct {
	Source harvest.Source
	In     InputBooster
	Bypass BypassDiode
	Out    OutputBooster

	// Memo, when non-nil, memoizes charge-segment solves (see memo.go).
	// Hits are bit-identical to direct solves, so attaching or sharing a
	// cache never changes results — only speed. Leave nil for an
	// unmemoized system.
	Memo *SegmentCache

	// cutEsr/cutLoad/cutV memoize recent CutoffVoltage solves keyed by
	// the exact (esr, loadPower) pair: every drain recomputes the
	// brownout cutoff, and the simulator cycles through a handful of
	// fixed peripheral loads on a fixed active-set ESR. Identical inputs
	// give the identical root, so the memo changes no result bits. The
	// booster parameters it derives from are fixed after construction
	// (Config.Tune runs before any simulation step).
	cutEsr  [4]units.Resistance
	cutLoad [4]units.Power
	cutV    [4]units.Voltage
	cutN    int
}

// NewSystem wires a source to default boosters.
func NewSystem(src harvest.Source) *System {
	return &System{
		Source: src,
		In:     DefaultInputBooster(),
		Bypass: DefaultBypass(),
		Out:    DefaultOutputBooster(),
	}
}

// ChargePower returns the effective power flowing into a store at
// voltage v at time t, accounting for the charge path in effect:
// bypass diode, cold-start trickle, or started booster.
func (s *System) ChargePower(v units.Voltage, t units.Seconds) units.Power {
	raw := s.Source.PowerAt(t)
	if raw <= 0 {
		return 0
	}
	srcV := s.Source.VoltageAt(t)
	if srcV < s.In.MinSourceVoltage {
		return 0
	}
	if v >= s.In.ColdStart {
		return units.Power(float64(raw) * s.In.Efficiency)
	}
	// Below cold start: prefer the bypass path when the harvester
	// voltage can forward-bias the keeper diode.
	if s.Bypass.Enabled && srcV-s.Bypass.Drop > v {
		// Direct diode charging forfeits only the diode drop.
		frac := 1 - float64(s.Bypass.Drop)/float64(srcV)
		if frac < 0 {
			frac = 0
		}
		return units.Power(float64(raw) * frac)
	}
	return units.Power(float64(raw) * s.In.ColdStartEfficiency)
}

// bypassCeiling returns the highest voltage the bypass path can charge
// to at time t: one diode drop below the harvester voltage, and never
// above the cold-start threshold (past which the booster takes over).
func (s *System) bypassCeiling(t units.Seconds) units.Voltage {
	ceil := s.Source.VoltageAt(t) - s.Bypass.Drop
	if ceil > s.In.ColdStart {
		ceil = s.In.ColdStart
	}
	return ceil
}

// maxChargeStep bounds charge integration for opaque sources (no
// harvest.Stepped horizon) so that time-varying output is re-sampled
// often enough. Stepped sources are integrated in whole closed-form
// segments instead.
const maxChargeStep units.Seconds = 0.5

// segmentHorizon returns the span starting at t over which the source
// output is known constant, clamped to remain. Opaque sources fall
// back to the fixed re-sampling step, preserving the pre-event-solver
// behaviour.
func (s *System) segmentHorizon(t, remain units.Seconds) units.Seconds {
	h := harvest.NextChange(s.Source, t)
	if h <= 0 {
		h = maxChargeStep
	}
	if h > remain {
		h = remain
	}
	// Progress guarantee: a source may promise constancy for a sliver
	// shorter than one ULP of t (PWM traces near their edges); stepping
	// by it would leave the clock bit-identical and stall the charge
	// loop. Round up to the smallest representable advance.
	if m := units.MinAdvance(t); h < m {
		h = m
	}
	return h
}

// chargeSegment charges the store for at most dt starting at time t,
// under the contract that the source output is constant on [t, t+dt).
// It advances analytically through the bypass / cold-start / started
// phases (the charge power is constant within each phase, so each
// phase is one closed-form solve) and stops early when the store
// reaches target (0 means no target). It returns the time actually
// consumed (dt unless the target was hit) and whether the target was
// reached. The target voltage is snapped exactly so callers can
// compare against it without float-asymptote drift.
func (s *System) chargeSegment(st Store, target units.Voltage, t, dt units.Seconds) (units.Seconds, bool) {
	rated := ratedCeiling(st)
	elapsed := units.Seconds(0)
	for elapsed < dt {
		v := st.Voltage()
		if target > 0 && v >= target {
			st.SetVoltage(target)
			return elapsed, true
		}
		if rated > 0 && v >= rated {
			// Full store: the overvoltage lockout holds it at the rating,
			// so the rest of the segment is dead air.
			return dt, false
		}
		p := s.ChargePower(v, t)
		if p <= 0 {
			// Dead air: the source is constant for the whole segment, so
			// no charging can happen anywhere in it.
			return dt, false
		}
		remain := dt - elapsed
		// Stop the analytic solve at the next charge-path boundary so
		// the charge power is constant within it; never command a
		// voltage above the store's rating.
		limit := target
		if rated > 0 && (limit <= 0 || rated < limit) {
			limit = rated
		}
		if v < s.In.ColdStart {
			b := s.In.ColdStart
			if s.Bypass.Enabled {
				if c := s.bypassCeiling(t); c > v && c < b {
					b = c
				}
			}
			if limit <= 0 || b < limit {
				limit = b
			}
		}
		if limit > 0 {
			need := units.TimeToCharge(st.Capacitance(), v, limit, p)
			if need <= remain {
				st.SetVoltage(limit)
				elapsed += need
				if target > 0 && limit >= target {
					return elapsed, true
				}
				continue
			}
		}
		st.SetVoltage(units.ChargeVoltageAfter(st.Capacitance(), v, p, remain))
		elapsed = dt
	}
	return dt, false
}

// AdvanceCharge charges the store for dt starting at time t0, advancing
// through the bypass / cold-start / normal phases. It returns the
// voltage reached. Charging stops at ceiling (typically the bank's
// rated voltage or the configured Vtop); pass 0 for no ceiling.
func (s *System) AdvanceCharge(st Store, t0, dt units.Seconds, ceiling units.Voltage) units.Voltage {
	t := t0
	end := t0 + dt
	for t < end {
		if ceiling > 0 && st.Voltage() >= ceiling {
			return st.Voltage()
		}
		h := s.segmentHorizon(t, end-t)
		used, reached := s.StepSegment(st, ceiling, t, h)
		t += used
		if reached {
			return st.Voltage()
		}
	}
	if ceiling > 0 && st.Voltage() > ceiling {
		st.SetVoltage(ceiling)
	}
	return st.Voltage()
}

// TimeToChargeTo returns how long charging from time t0 takes to bring
// the store up to target, bounded by maxWait. If the target is not
// reached within maxWait, it returns maxWait and false. The store's
// voltage is left at the reached value.
//
// The solve is event-driven: each iteration jumps one whole segment —
// min(source-change horizon, path boundary, target hit, maxWait) —
// using the closed-form constant-power solution, so a constant source
// charging a large bank costs O(path boundaries) instead of
// O(charge time / step).
func (s *System) TimeToChargeTo(st Store, target units.Voltage, t0, maxWait units.Seconds) (units.Seconds, bool) {
	if st.Voltage() >= target {
		return 0, true
	}
	elapsed := units.Seconds(0)
	for elapsed < maxWait {
		t := t0 + elapsed
		h := s.segmentHorizon(t, maxWait-elapsed)
		used, reached := s.StepSegment(st, target, t, h)
		elapsed += used
		if reached {
			return elapsed, true
		}
	}
	return maxWait, false
}

// StoreDraw returns the power drawn from storage to run a load of
// loadPower at the regulated output, including converter loss and
// quiescent overhead.
func (s *System) StoreDraw(loadPower units.Power) units.Power {
	eff := s.Out.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	return units.Power(float64(loadPower)/eff) + s.Out.Quiescent
}

// CutoffVoltage returns the storage voltage at which the output booster
// browns out for a given load: the voltage where the ESR droop drags
// the effective input below MinInput. Solving
// V − (P/V)·ESR = MinInput gives V = (m + √(m² + 4·P·R)) / 2.
// High ESR or high power raises the cutoff — the Fig. 4 effect that
// strands energy in ultra-compact supercaps.
func (s *System) CutoffVoltage(esr units.Resistance, loadPower units.Power) units.Voltage {
	for i := 0; i < s.cutN; i++ {
		if s.cutEsr[i] == esr && s.cutLoad[i] == loadPower {
			return s.cutV[i]
		}
	}
	m := float64(s.Out.MinInput)
	pr := float64(s.StoreDraw(loadPower)) * float64(esr)
	v := units.Voltage((m + math.Sqrt(m*m+4*pr)) / 2)
	i := s.cutN
	if i == len(s.cutEsr) {
		i = 0 // full: evict the oldest slot
	} else {
		s.cutN++
	}
	s.cutEsr[i], s.cutLoad[i], s.cutV[i] = esr, loadPower, v
	return v
}

// CanSupply reports whether the store can currently power the load at
// all (its voltage is above the load's cutoff).
func (s *System) CanSupply(st Store, loadPower units.Power) bool {
	return st.Voltage() > s.CutoffVoltage(st.ESR(), loadPower)
}

// Discharge runs a load drawing loadPower for up to dt and returns the
// time sustained. If the store hits the load's cutoff voltage first,
// the sustained time is shorter than dt and ok is false (brownout).
func (s *System) Discharge(st Store, loadPower units.Power, dt units.Seconds) (units.Seconds, bool) {
	if dt <= 0 {
		return 0, true
	}
	draw := s.StoreDraw(loadPower)
	cut := s.CutoffVoltage(st.ESR(), loadPower)
	v := st.Voltage()
	if v <= cut {
		return 0, false
	}
	sustain := units.TimeToDischarge(st.Capacitance(), v, cut, draw)
	if sustain >= dt {
		st.SetVoltage(units.DischargeVoltageAfter(st.Capacitance(), v, draw, dt))
		return dt, true
	}
	st.SetVoltage(cut)
	return sustain, false
}

// OperatingTime returns how long the store could sustain loadPower from
// its present voltage without charging.
func (s *System) OperatingTime(st Store, loadPower units.Power) units.Seconds {
	draw := s.StoreDraw(loadPower)
	cut := s.CutoffVoltage(st.ESR(), loadPower)
	return units.TimeToDischarge(st.Capacitance(), st.Voltage(), cut, draw)
}

// ExtractableEnergy returns the energy the output booster can pull from
// the store for a load of loadPower: the band between the present
// voltage and the ESR-dependent cutoff, scaled by converter efficiency.
func (s *System) ExtractableEnergy(st Store, loadPower units.Power) units.Energy {
	cut := s.CutoffVoltage(st.ESR(), loadPower)
	band := units.BandEnergy(st.Capacitance(), st.Voltage(), cut)
	eff := s.Out.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	return units.Energy(float64(band) * eff)
}

func (s *System) String() string {
	return fmt.Sprintf("power system (in η=%.2f coldstart %v, bypass %v, out %v η=%.2f min %v)",
		s.In.Efficiency, s.In.ColdStart, s.Bypass.Enabled, s.Out.Vout, s.Out.Efficiency, s.Out.MinInput)
}
