package power

import (
	"testing"

	"capybara/internal/harvest"
	"capybara/internal/units"
)

// benchChargeCycles runs the periodic PWM lifecycle from
// TestMemoHitRatePWM: every cycle browns out below the cold-start
// threshold and reissues the same multi-phase cold-start solves, so
// the memo= sub-benchmark replays cached trajectories while memo=off
// walks the analytic solver (bypass ceiling → cold start → started
// booster, one source sample and closed-form solve per phase) each
// time. The delta between the two is the memo cache's headline number.
func benchChargeCycles(b *testing.B, memo bool) {
	src := harvest.SolarPanel{PeakPower: 5 * units.MilliWatt, OpenCircuitVoltage: 3,
		Light: harvest.PWMTrace(0.42, 8)}
	sys := NewSystem(src)
	if memo {
		sys.Memo = NewSegmentCache(0)
	}
	st := &quickStore{c: 100 * units.MicroFarad, v: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := units.Seconds(i) * 8
		sys.TimeToChargeTo(st, 2.8, t0, 8)
		st.v = 0.6
	}
	if memo {
		b.ReportMetric(sys.Memo.Stats().HitRate(), "hit-rate")
	}
}

func BenchmarkChargeSolvePWM(b *testing.B) {
	b.Run("memo", func(b *testing.B) { benchChargeCycles(b, true) })
	b.Run("direct", func(b *testing.B) { benchChargeCycles(b, false) })
}
