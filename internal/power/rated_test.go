package power

import (
	"math"
	"testing"

	"capybara/internal/harvest"
	"capybara/internal/storage"
	"capybara/internal/units"
)

// TestChargeStopsAtRatedVoltage pins a charger bug the chaos harness
// surfaced: the analytic solver bounded its solves only by the
// charge-path boundaries and the target, never by the store's voltage
// rating. Charging toward a target above the rating made the solver
// command voltages the store cannot hold: a single bank clamped
// silently and the solver still reported the target as reached.
func TestChargeStopsAtRatedVoltage(t *testing.T) {
	edlc := storage.MustBank("edlc", storage.GroupOf(storage.EDLC, 2)) // rated 3.6 V
	sys := NewSystem(harvest.RegulatedSupply{Max: 5 * units.MilliWatt, V: 3.0})

	target := units.Voltage(5.0) // above the 3.6 V rating
	elapsed, reached := sys.TimeToChargeTo(edlc, target, 0, 10_000)
	if reached {
		t.Fatalf("solver claims %v reached on a %v-rated bank (elapsed %v, v=%v)",
			target, edlc.RatedVoltage(), elapsed, edlc.Voltage())
	}
	if v := edlc.Voltage(); v > edlc.RatedVoltage()+1e-9 {
		t.Fatalf("bank charged above rating: %v > %v", v, edlc.RatedVoltage())
	}
	if v := edlc.Voltage(); math.Abs(float64(v-edlc.RatedVoltage())) > 1e-9 {
		t.Fatalf("bank should park at its rating, got %v (rated %v)", v, edlc.RatedVoltage())
	}
}
