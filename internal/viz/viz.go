// Package viz renders XY data as ASCII plots for the CLI tools, so the
// paper's figures can be eyeballed in a terminal without a plotting
// stack: voltage traces (Fig. 2), design-space curves (Figs. 3 and 4),
// and sensitivity sweeps (Fig. 10).
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot is an ASCII chart: one or more named series over shared axes.
type Plot struct {
	Title          string
	XLabel, YLabel string
	// Width and Height are the plotting area in characters (excluding
	// axes and labels).
	Width, Height int
	// LogX / LogY select logarithmic axes; non-positive values are
	// dropped on a log axis.
	LogX, LogY bool

	series []series
}

type series struct {
	name   string
	marker byte
	xs, ys []float64
}

// New returns a plot with a conventional terminal size.
func New(title string) *Plot {
	return &Plot{Title: title, Width: 64, Height: 16}
}

// Add appends a series. Series are drawn in order; later series
// overwrite earlier markers on collision.
func (p *Plot) Add(name string, marker byte, xs, ys []float64) {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	p.series = append(p.series, series{name: name, marker: marker, xs: xs[:n], ys: ys[:n]})
}

// Render draws the plot.
func (p *Plot) Render(w io.Writer) error {
	width, height := p.Width, p.Height
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}

	xmin, xmax, ymin, ymax, any := p.bounds()
	if !any {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", p.Title)
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range p.series {
		for i := range s.xs {
			x, okx := p.tx(s.xs[i])
			y, oky := p.ty(s.ys[i])
			if !okx || !oky {
				continue
			}
			cx := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
			cy := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = s.marker
			}
		}
	}

	if p.Title != "" {
		if _, err := fmt.Fprintln(w, p.Title); err != nil {
			return err
		}
	}
	topLabel := p.axisValue(ymax, p.LogY)
	botLabel := p.axisValue(ymin, p.LogY)
	labelWidth := len(topLabel)
	if len(botLabel) > labelWidth {
		labelWidth = len(botLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch i {
		case 0:
			label = pad(topLabel, labelWidth)
		case height - 1:
			label = pad(botLabel, labelWidth)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width)); err != nil {
		return err
	}
	xline := fmt.Sprintf("%s  %s%s%s",
		strings.Repeat(" ", labelWidth),
		p.axisValue(xmin, p.LogX),
		strings.Repeat(" ", max(1, width-len(p.axisValue(xmin, p.LogX))-len(p.axisValue(xmax, p.LogX)))),
		p.axisValue(xmax, p.LogX))
	if _, err := fmt.Fprintln(w, xline); err != nil {
		return err
	}
	if p.XLabel != "" || p.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%s  x: %s, y: %s\n", strings.Repeat(" ", labelWidth), p.XLabel, p.YLabel); err != nil {
			return err
		}
	}
	// Legend.
	if len(p.series) > 1 {
		parts := make([]string, 0, len(p.series))
		for _, s := range p.series {
			parts = append(parts, fmt.Sprintf("%c=%s", s.marker, s.name))
		}
		if _, err := fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", labelWidth), strings.Join(parts, "  ")); err != nil {
			return err
		}
	}
	return nil
}

// tx maps an x value onto the (possibly log) axis.
func (p *Plot) tx(v float64) (float64, bool) {
	if p.LogX {
		if v <= 0 {
			return 0, false
		}
		return math.Log10(v), true
	}
	return v, true
}

func (p *Plot) ty(v float64) (float64, bool) {
	if p.LogY {
		if v <= 0 {
			return 0, false
		}
		return math.Log10(v), true
	}
	return v, true
}

func (p *Plot) bounds() (xmin, xmax, ymin, ymax float64, any bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.xs {
			x, okx := p.tx(s.xs[i])
			y, oky := p.ty(s.ys[i])
			if !okx || !oky {
				continue
			}
			any = true
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	return xmin, xmax, ymin, ymax, any
}

// axisValue formats an axis endpoint, undoing the log transform for
// display.
func (p *Plot) axisValue(v float64, logAxis bool) string {
	if logAxis {
		v = math.Pow(10, v)
	}
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000 || math.Abs(v) < 0.01:
		return fmt.Sprintf("%.1e", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
