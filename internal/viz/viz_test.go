package viz

import (
	"bytes"
	"strings"
	"testing"
)

func render(t *testing.T, p *Plot) string {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRenderBasics(t *testing.T) {
	p := New("demo")
	p.XLabel, p.YLabel = "time", "volts"
	p.Add("v", '*', []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3})
	out := render(t, p)
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing markers")
	}
	if !strings.Contains(out, "x: time, y: volts") {
		t.Error("missing axis labels")
	}
	// A monotone series places a marker in the top row and bottom row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Errorf("top row missing marker: %q", lines[1])
	}
}

func TestRenderEmpty(t *testing.T) {
	out := render(t, New("empty"))
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot output: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	p := New("flat")
	p.Add("c", 'o', []float64{1, 2, 3}, []float64{5, 5, 5})
	out := render(t, p)
	if strings.Count(out, "o") == 0 {
		t.Fatal("flat series rendered no markers")
	}
}

func TestLogAxesDropNonPositive(t *testing.T) {
	p := New("log")
	p.LogX, p.LogY = true, true
	p.Add("s", '#', []float64{0, 10, 100, 1000}, []float64{-1, 1, 10, 100})
	out := render(t, p)
	// The two invalid points are dropped; the rest render.
	if got := strings.Count(out, "#"); got != 3 {
		t.Fatalf("marker count = %d, want 3", got)
	}
	// Log endpoints display in original units.
	if !strings.Contains(out, "1.0e+03") && !strings.Contains(out, "1000") {
		t.Errorf("x max label missing: %q", out)
	}
}

func TestMultiSeriesLegend(t *testing.T) {
	p := New("legend")
	p.Add("a", 'a', []float64{0, 1}, []float64{0, 1})
	p.Add("b", 'b', []float64{0, 1}, []float64{1, 0})
	out := render(t, p)
	if !strings.Contains(out, "a=a") || !strings.Contains(out, "b=b") {
		t.Fatalf("legend missing: %q", out)
	}
}

func TestLaterSeriesWins(t *testing.T) {
	p := New("overlap")
	p.Width, p.Height = 8, 4
	p.Add("first", '1', []float64{0, 1}, []float64{0, 1})
	p.Add("second", '2', []float64{0, 1}, []float64{0, 1})
	out := render(t, p)
	if strings.Contains(out, "1") && !strings.Contains(out, "2") {
		t.Fatal("second series did not overwrite")
	}
}

func TestMismatchedLengthsTruncate(t *testing.T) {
	p := New("mismatch")
	p.Add("s", '*', []float64{0, 1, 2}, []float64{5})
	out := render(t, p)
	if got := strings.Count(out, "*"); got != 1 {
		t.Fatalf("marker count = %d, want 1", got)
	}
}

func TestTinyDimensionsClamped(t *testing.T) {
	p := New("tiny")
	p.Width, p.Height = 1, 1
	p.Add("s", '*', []float64{0, 1}, []float64{0, 1})
	out := render(t, p)
	if out == "" {
		t.Fatal("tiny plot rendered nothing")
	}
}
