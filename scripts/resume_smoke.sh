#!/usr/bin/env bash
# fleet-resume-smoke: end-to-end crash/resume check of the capyfleet
# daemon with real processes and a real SIGKILL. Starts a daemon,
# submits a job, kill -9s the daemon after checkpoints appear, restarts
# it over the same store, waits for the resumed job, and diffs the
# served report against the single-process reference — byte-identical,
# with the resume visibly reloading checkpointed chunks.
set -euo pipefail

N=${N:-192}
SEED=${SEED:-7}
SCALE=${SCALE:-0.05}
CHUNK=${CHUNK:-4} # 48 chunks: plenty of kill points

TMP=$(mktemp -d)
STORE="$TMP/store"
cleanup() {
    [[ -n "${DAEMON_PID:-}" ]] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "fleet-resume-smoke: $1" >&2
    for log in daemon1.log daemon2.log wait.log; do
        [[ -f "$TMP/$log" ]] && { echo "--- $log ---" >&2; cat "$TMP/$log" >&2; }
    done
    exit 1
}

# wait_addr LOGFILE: echo the daemon's resolved listen address once its
# startup line appears in the log.
wait_addr() {
    local log=$1 addr=
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/.*serving HTTP on \([0-9.:]*\) .*/\1/p' "$log" 2>/dev/null | head -1)
        [[ -n "$addr" ]] && { echo "$addr"; return 0; }
        sleep 0.1
    done
    return 1
}

echo "fleet-resume-smoke: building capyfleet"
go build -o "$TMP/capyfleet" ./cmd/capyfleet

echo "fleet-resume-smoke: single-process reference (-n $N -seed $SEED -scale $SCALE -chunk $CHUNK)"
"$TMP/capyfleet" -n "$N" -seed "$SEED" -scale "$SCALE" -chunk "$CHUNK" -jobs 2 \
    -o "$TMP/single.csv" 2>/dev/null

echo "fleet-resume-smoke: daemon generation 1"
"$TMP/capyfleet" -serve-http 127.0.0.1:0 -store "$STORE" -jobs 1 2>"$TMP/daemon1.log" &
DAEMON_PID=$!
disown "$DAEMON_PID" # keep bash's "Killed" job notice out of the output
ADDR=$(wait_addr "$TMP/daemon1.log") || fail "daemon 1 never announced its address"

JOB=$("$TMP/capyfleet" -http "http://$ADDR" -submit \
    -n "$N" -seed "$SEED" -scale "$SCALE" -chunk "$CHUNK" 2>>"$TMP/daemon1.log") \
    || fail "submit failed"
echo "fleet-resume-smoke: submitted $JOB"

# Wait for at least two chunk checkpoints, then SIGKILL mid-run — the
# crash the architecture promises to survive.
COUNT=0
for _ in $(seq 1 200); do
    COUNT=$(find "$STORE/partials" -name '*.cp' 2>/dev/null | wc -l)
    [[ "$COUNT" -ge 2 ]] && break
    sleep 0.05
done
[[ "$COUNT" -ge 2 ]] || fail "no checkpoints appeared before the kill window closed"
echo "fleet-resume-smoke: $COUNT chunks checkpointed — kill -9"
kill -9 "$DAEMON_PID"
while kill -0 "$DAEMON_PID" 2>/dev/null; do sleep 0.05; done
DAEMON_PID=

echo "fleet-resume-smoke: daemon generation 2 (same store)"
"$TMP/capyfleet" -serve-http 127.0.0.1:0 -store "$STORE" -jobs 1 2>"$TMP/daemon2.log" &
DAEMON_PID=$!
disown "$DAEMON_PID"
ADDR=$(wait_addr "$TMP/daemon2.log") || fail "daemon 2 never announced its address"

"$TMP/capyfleet" -http "http://$ADDR" -wait "$JOB" -o "$TMP/resumed.csv" \
    2>"$TMP/wait.log" || fail "wait for resumed job failed"

diff "$TMP/single.csv" "$TMP/resumed.csv" \
    || fail "resumed report differs from single-process report"

# The wait summary proves the resume actually reloaded checkpoints:
# "job jNNNNNN done: 48 chunks (L loaded, C computed)" with L > 0.
LOADED=$(sed -n 's/.*done: [0-9]* chunks (\([0-9]*\) loaded.*/\1/p' "$TMP/wait.log" | head -1)
[[ -n "$LOADED" ]] || fail "wait summary line missing from client output"
[[ "$LOADED" -gt 0 ]] || fail "resumed job loaded 0 checkpoints — it started over"

kill "$DAEMON_PID" 2>/dev/null || true
while kill -0 "$DAEMON_PID" 2>/dev/null; do sleep 0.05; done
DAEMON_PID=

echo "fleet-resume-smoke: OK — report byte-identical after kill -9, $LOADED chunks resumed from checkpoints"
