#!/usr/bin/env bash
# fleet-shard-smoke: end-to-end check of the distributed fleet path
# with real processes. Launches a loopback coordinator and two worker
# processes, then diffs the sharded report against the single-process
# report for the same (-n, -seed, -scale) — they must be byte-identical.
set -euo pipefail

N=${N:-192}
SEED=${SEED:-7}
SCALE=${SCALE:-0.05}

TMP=$(mktemp -d)
cleanup() {
    # Kill anything still running (e.g. on failure) before removing TMP.
    [[ -n "${COORD_PID:-}" ]] && kill "$COORD_PID" 2>/dev/null || true
    [[ -n "${W1_PID:-}" ]] && kill "$W1_PID" 2>/dev/null || true
    [[ -n "${W2_PID:-}" ]] && kill "$W2_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "fleet-shard-smoke: building capyfleet"
go build -o "$TMP/capyfleet" ./cmd/capyfleet

echo "fleet-shard-smoke: single-process reference (-n $N -seed $SEED -scale $SCALE -jobs 2)"
"$TMP/capyfleet" -n "$N" -seed "$SEED" -scale "$SCALE" -jobs 2 -o "$TMP/single.csv" 2>/dev/null

# An ephemeral-range port; workers retry the dial, so the coordinator
# does not need to be listening before they start.
PORT=$((20000 + RANDOM % 20000))
ADDR="127.0.0.1:$PORT"

echo "fleet-shard-smoke: coordinator on $ADDR + 2 workers"
"$TMP/capyfleet" -serve "$ADDR" -n "$N" -seed "$SEED" -scale "$SCALE" \
    -o "$TMP/sharded.csv" 2>"$TMP/coord.log" &
COORD_PID=$!
"$TMP/capyfleet" -connect "$ADDR" -jobs 1 2>"$TMP/w1.log" &
W1_PID=$!
"$TMP/capyfleet" -connect "$ADDR" -jobs 1 2>"$TMP/w2.log" &
W2_PID=$!

fail() {
    echo "fleet-shard-smoke: $1" >&2
    echo "--- coordinator log ---" >&2; cat "$TMP/coord.log" >&2 || true
    echo "--- worker 1 log ---" >&2; cat "$TMP/w1.log" >&2 || true
    echo "--- worker 2 log ---" >&2; cat "$TMP/w2.log" >&2 || true
    exit 1
}

wait "$COORD_PID" || fail "coordinator exited non-zero"
COORD_PID=
wait "$W1_PID" || fail "worker 1 exited non-zero"
W1_PID=
wait "$W2_PID" || fail "worker 2 exited non-zero"
W2_PID=

diff "$TMP/single.csv" "$TMP/sharded.csv" || fail "sharded report differs from single-process report"

echo "fleet-shard-smoke: OK — sharded report byte-identical ($(wc -l <"$TMP/sharded.csv") lines)"
