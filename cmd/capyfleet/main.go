// Capyfleet simulates a fleet of independent Capybara devices —
// heterogeneous application/variant/environment cohorts, one seeded
// Poisson schedule per device — and prints fleet-level statistics.
//
// Usage:
//
//	capyfleet -n 10000 [-seed S] [-jobs N] [-scale F] [-json] [-o FILE]
//	          [-memo=false] [-cache N] [-recycle=false] [-batch N]
//	          [-vector=false] [-fuse=false] [-cohort-spin=false] [-phase-keys=false]
//	          [-bypass-after N] [-bypass-below F]
//	          [-cpuprofile F] [-memprofile F]
//
// Sharded (multi-process) mode splits one run across machines:
//
//	capyfleet -serve :9009 -n 1000000          # coordinator: leases chunks, folds the report
//	capyfleet -connect host:9009 [-jobs N]     # worker: runs leased chunks, streams partials
//
// Daemon (fleet-as-a-service) mode runs a persistent job server whose
// queue and chunk checkpoints survive a kill -9:
//
//	capyfleet -serve-http :9191 -store DIR [-max-jobs N]   # persistent daemon
//	capyfleet -http URL -submit -n 10000 [-seed S]         # queue a job, print its ID
//	capyfleet -http URL -wait ID [-o FILE]                 # block until done, fetch the report
//	capyfleet -http URL -status ID                         # one status snapshot
//	capyfleet -http URL -cancel ID                         # cancel a queued/running job
//
// -store also applies to the one-shot and -serve modes: completed
// chunks are checkpointed there and reloaded on a rerun, so an
// interrupted run resumes instead of starting over, and identical specs
// share work across runs.
//
// The report (CSV by default, -json for JSON) is a pure function of
// (-n, -seed, -scale, -chunk): it is byte-identical at any -jobs, with
// the charge-solve memo cache on or off — and in sharded or daemon mode
// at any worker count, topology, failure schedule, or crash/resume
// history. Throughput, lease, and cache-effectiveness diagnostics go to
// stderr — they depend on scheduling and wall clock, so they are
// deliberately not part of the report.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"time"

	"capybara/internal/fleet"
	"capybara/internal/fleetsvc"
	"capybara/internal/prof"
	"capybara/internal/shard"
)

// options is the parsed and validated command line.
type options struct {
	n         int
	seed      int64
	jobs      int
	scale     float64
	chunk     int
	asJSON    bool
	out       string
	noMemo    bool
	cacheSize int
	noRecycle bool
	batch     int
	noVector  bool
	noFuse    bool

	noCohortSpin bool
	noPhaseKeys  bool
	bypassAfter  uint64
	bypassBelow  float64

	serveAddr    string
	connectAddr  string
	leaseTimeout time.Duration
	leaseRetries int
	dialRetry    time.Duration

	serveHTTPAddr string
	storeDir      string
	maxJobs       int

	httpURL  string
	submit   bool
	waitID   string
	statusID string
	cancelID string

	cpuProfile string
	memProfile string
}

// clientActions counts how many of the -http client verbs were given.
func (o *options) clientActions() int {
	n := 0
	if o.submit {
		n++
	}
	for _, id := range []string{o.waitID, o.statusID, o.cancelID} {
		if id != "" {
			n++
		}
	}
	return n
}

// validate rejects bad flag combinations up front with a usage error,
// instead of panicking or silently misbehaving deep in the run.
func (o *options) validate() error {
	modes := 0
	for _, m := range []string{o.serveAddr, o.connectAddr, o.serveHTTPAddr, o.httpURL} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-serve, -connect, -serve-http, and -http are mutually exclusive")
	}
	if o.jobs < 1 {
		return fmt.Errorf("-jobs must be >= 1, got %d", o.jobs)
	}
	if o.cacheSize < 0 {
		return fmt.Errorf("-cache must be >= 0, got %d", o.cacheSize)
	}
	if o.chunk < 0 {
		return fmt.Errorf("-chunk must be >= 0, got %d", o.chunk)
	}
	if o.httpURL == "" && o.clientActions() > 0 {
		return fmt.Errorf("-submit, -wait, -status, and -cancel require -http URL")
	}
	if o.httpURL != "" {
		if o.clientActions() != 1 {
			return fmt.Errorf("-http requires exactly one of -submit, -wait, -status, -cancel")
		}
		if !o.submit {
			return nil // wait/status/cancel carry no job spec to validate
		}
	}
	if o.connectAddr != "" {
		// Worker mode: the job spec (n, seed, scale) arrives from the
		// coordinator; only local execution knobs apply.
		if o.storeDir != "" {
			return fmt.Errorf("-store does not apply to -connect (the coordinator owns checkpoints)")
		}
		if o.dialRetry < 0 {
			return fmt.Errorf("-dial-retry must be >= 0, got %v", o.dialRetry)
		}
		return nil
	}
	if o.serveHTTPAddr != "" {
		if o.storeDir == "" {
			return fmt.Errorf("-serve-http requires -store (the daemon's queue and checkpoints live there)")
		}
		if o.maxJobs < 1 {
			return fmt.Errorf("-max-jobs must be >= 1, got %d", o.maxJobs)
		}
		return nil // job specs arrive over the API, not the command line
	}
	if o.n < 1 {
		return fmt.Errorf("-n must be >= 1, got %d", o.n)
	}
	if !(o.scale > 0 && o.scale <= 1) {
		return fmt.Errorf("-scale must be in (0, 1], got %g", o.scale)
	}
	if o.serveAddr != "" {
		if o.leaseTimeout <= 0 {
			return fmt.Errorf("-lease-timeout must be positive, got %v", o.leaseTimeout)
		}
		if o.leaseRetries < 1 {
			return fmt.Errorf("-lease-retries must be >= 1, got %d", o.leaseRetries)
		}
	}
	return nil
}

func main() {
	var o options
	flag.IntVar(&o.n, "n", 1000, "number of devices")
	flag.Int64Var(&o.seed, "seed", 1, "fleet seed")
	flag.IntVar(&o.jobs, "jobs", runtime.GOMAXPROCS(0), "parallel workers (1 forces the serial path)")
	flag.Float64Var(&o.scale, "scale", 1.0, "event-count scale per device in (0, 1]")
	flag.BoolVar(&o.asJSON, "json", false, "emit JSON instead of CSV")
	flag.StringVar(&o.out, "o", "", "write the report to this file instead of stdout")
	memo := flag.Bool("memo", true, "enable per-worker charge-solve memoization")
	flag.IntVar(&o.cacheSize, "cache", 0, "memo cache entries per worker (0 = default)")
	flag.IntVar(&o.batch, "batch", 1024, "device-op batch replay width cap (0 = scalar path, < 0 = unlimited)")
	vector := flag.Bool("vector", true, "enable the batch path's lockstep cursor (vectorized stepping); results are identical either way")
	fuse := flag.Bool("fuse", true, "enable fused task-engine stepping for lockstep cohorts; results are identical either way")
	cohortSpin := flag.Bool("cohort-spin", true, "enable cohort-shared fixed-point spins (cached spin plans, span-applied iterations); results are identical either way")
	phaseKeys := flag.Bool("phase-keys", true, "enable phase-keyed tapes and op-cache entries for periodic sources (PWM, blackout, diurnal night); results are identical either way")
	flag.Uint64Var(&o.bypassAfter, "bypass-after", 0, "op-cache probation: calls before the bypass heuristic may trip (0 = default 32768)")
	flag.Float64Var(&o.bypassBelow, "bypass-below", 0, "op-cache probation: minimum replay rate to stay engaged (0 = default 0.6)")
	recycle := flag.Bool("recycle", true, "recycle per-worker scratch (recorders, shared memo cache); false builds every device fresh")
	flag.IntVar(&o.chunk, "chunk", 0, "devices per chunk — the checkpoint/lease granularity (0 = default)")
	flag.StringVar(&o.serveAddr, "serve", "", "run as shard coordinator listening on this address (host:port); workers join with -connect")
	flag.StringVar(&o.connectAddr, "connect", "", "run as shard worker connecting to a coordinator at this address")
	flag.DurationVar(&o.leaseTimeout, "lease-timeout", time.Minute, "coordinator: chunk lease deadline before re-leasing to another worker")
	flag.IntVar(&o.leaseRetries, "lease-retries", 3, "coordinator: lease attempts per chunk before the run fails hard")
	flag.DurationVar(&o.dialRetry, "dial-retry", 10*time.Second, "worker: keep retrying the initial connection this long")
	flag.StringVar(&o.serveHTTPAddr, "serve-http", "", "run as a persistent fleet daemon serving the job API on this address (requires -store)")
	flag.StringVar(&o.storeDir, "store", "", "chunk checkpoint store directory: completed chunks persist here and reruns resume from them")
	flag.IntVar(&o.maxJobs, "max-jobs", 2, "daemon: jobs running concurrently (queued jobs start as slots free)")
	flag.StringVar(&o.httpURL, "http", "", "client mode: daemon base URL (e.g. http://localhost:9191); combine with -submit/-wait/-status/-cancel")
	flag.BoolVar(&o.submit, "submit", false, "client: submit a job from -n/-seed/-scale/-chunk and print its ID")
	flag.StringVar(&o.waitID, "wait", "", "client: block until this job finishes, then fetch its report")
	flag.StringVar(&o.statusID, "status", "", "client: print this job's status as JSON")
	flag.StringVar(&o.cancelID, "cancel", "", "client: cancel this job")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()
	o.noMemo = !*memo
	o.noRecycle = !*recycle
	o.noVector = !*vector
	o.noFuse = !*fuse
	o.noCohortSpin = !*cohortSpin
	o.noPhaseKeys = !*phaseKeys

	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "capyfleet: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	stop, err := prof.StartCPU(o.cpuProfile)
	if err != nil {
		fail(err)
	}
	switch {
	case o.httpURL != "":
		err = runClient(&o)
	case o.serveHTTPAddr != "":
		err = runServeHTTP(&o)
	case o.connectAddr != "":
		err = runWorker(&o)
	case o.serveAddr != "":
		err = runCoordinator(&o)
	default:
		err = run(&o)
	}
	stop()
	if err == nil {
		err = prof.WriteHeap(o.memProfile)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "capyfleet:", err)
	os.Exit(1)
}

// configBatch maps the -batch flag onto fleet.Config.Batch: the flag
// reads naturally (0 = off, N = width cap, negative = unlimited) while
// the engine field uses < 0 = scalar, 0 = unlimited, >= 1 = cap.
func (o *options) configBatch() int {
	switch {
	case o.batch == 0:
		return -1 // scalar escape hatch
	case o.batch < 0:
		return 0 // unlimited replay width
	default:
		return o.batch
	}
}

func (o *options) fleetConfig() fleet.Config {
	return fleet.Config{
		N:            o.n,
		Seed:         o.seed,
		Jobs:         o.jobs,
		Scale:        o.scale,
		ChunkSize:    o.chunk,
		NoMemo:       o.noMemo,
		CacheSize:    o.cacheSize,
		NoRecycle:    o.noRecycle,
		Batch:        o.configBatch(),
		NoVector:     o.noVector,
		NoFuse:       o.noFuse,
		NoCohortSpin: o.noCohortSpin,
		NoPhaseKeys:  o.noPhaseKeys,
		BypassAfter:  o.bypassAfter,
		BypassBelow:  o.bypassBelow,
	}
}

// writeReport renders res to -o (or stdout) and its diagnostics to
// stderr.
func writeReport(o *options, res *fleet.Result) error {
	var w io.Writer = os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var err error
	if o.asJSON {
		err = res.WriteJSON(w)
	} else {
		err = res.WriteCSV(w)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(os.Stderr, res.Diagnostics())
	return nil
}

// run executes the whole fleet in this process. With -store, completed
// chunks are reloaded from and checkpointed to the store, so an
// interrupted run resumes where it left off (and an identical later
// spec reuses the work) with byte-identical output.
func run(o *options) error {
	if o.storeDir == "" {
		res, err := fleet.Run(context.Background(), o.fleetConfig())
		if err != nil {
			return err
		}
		return writeReport(o, res)
	}
	store, err := fleetsvc.Open(o.storeDir)
	if err != nil {
		return err
	}
	res, stats, err := fleetsvc.RunWithStore(context.Background(), store, o.fleetConfig(), nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "capyfleet: store %s: %d/%d chunks loaded, %d computed\n",
		o.storeDir, stats.Loaded, stats.Chunks, stats.Computed)
	return writeReport(o, res)
}

// loadCompleted reloads a spec's checkpointed chunks from the store.
// Corrupt entries are quarantined by Get and simply skipped — they land
// back on the to-compute side.
func loadCompleted(store *fleetsvc.Store, hash string) ([]*fleet.ChunkPartial, error) {
	indices, err := store.Completed(hash)
	if err != nil {
		return nil, err
	}
	var completed []*fleet.ChunkPartial
	for _, ci := range indices {
		cp, err := store.Get(hash, ci)
		if err != nil {
			continue // missing or quarantined: recompute it
		}
		completed = append(completed, cp)
	}
	return completed, nil
}

// runCoordinator listens for shard workers, leases them chunks, and
// folds the identical report the in-process path would produce. With
// -store, already-checkpointed chunks are never leased and every newly
// completed chunk is checkpointed before it folds.
func runCoordinator(o *options) error {
	opt := shard.Options{
		LeaseTimeout: o.leaseTimeout,
		MaxAttempts:  o.leaseRetries,
		Progress:     os.Stderr,
	}
	if o.storeDir != "" {
		store, err := fleetsvc.Open(o.storeDir)
		if err != nil {
			return err
		}
		job, err := fleet.NewJob(o.fleetConfig())
		if err != nil {
			return err
		}
		hash := job.SpecHash()
		completed, err := loadCompleted(store, hash)
		if err != nil {
			return err
		}
		opt.Completed = completed
		opt.OnChunk = func(cp *fleet.ChunkPartial) error {
			return store.Put(hash, cp.Chunk, cp)
		}
		fmt.Fprintf(os.Stderr, "capyfleet: store %s: %d/%d chunks already checkpointed\n",
			o.storeDir, len(completed), job.NumChunks())
	}
	ln, err := net.Listen("tcp", o.serveAddr)
	if err != nil {
		return err
	}
	// The resolved address matters when -serve used port 0.
	fmt.Fprintf(os.Stderr, "capyfleet: coordinating on %s (workers: capyfleet -connect %s)\n",
		ln.Addr(), ln.Addr())
	res, err := shard.Serve(context.Background(), ln, o.fleetConfig(), opt)
	if err != nil {
		return err
	}
	return writeReport(o, res)
}

// runWorker joins a coordinator and runs leased chunks until done.
func runWorker(o *options) error {
	fmt.Fprintf(os.Stderr, "capyfleet: worker connecting to %s (%d jobs)\n", o.connectAddr, o.jobs)
	err := shard.Work(context.Background(), o.connectAddr, o.jobs, shard.WorkerOptions{
		NoMemo:       o.noMemo,
		CacheSize:    o.cacheSize,
		NoRecycle:    o.noRecycle,
		Batch:        o.configBatch(),
		NoVector:     o.noVector,
		NoFuse:       o.noFuse,
		NoCohortSpin: o.noCohortSpin,
		NoPhaseKeys:  o.noPhaseKeys,
		BypassAfter:  o.bypassAfter,
		BypassBelow:  o.bypassBelow,
		DialRetry:    o.dialRetry,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "capyfleet: worker done")
	return nil
}
