// Capyfleet simulates a fleet of independent Capybara devices —
// heterogeneous application/variant/environment cohorts, one seeded
// Poisson schedule per device — and prints fleet-level statistics.
//
// Usage:
//
//	capyfleet -n 10000 [-seed S] [-jobs N] [-scale F] [-json] [-o FILE]
//	          [-memo=false] [-cache N] [-recycle=false]
//	          [-cpuprofile F] [-memprofile F]
//
// The report (CSV by default, -json for JSON) is a pure function of
// (-n, -seed, -scale): it is byte-identical at any -jobs and with the
// charge-solve memo cache on or off. Throughput and cache-effectiveness
// diagnostics go to stderr — they depend on scheduling and wall clock,
// so they are deliberately not part of the report.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"capybara/internal/fleet"
	"capybara/internal/prof"
)

func main() {
	n := flag.Int("n", 1000, "number of devices")
	seed := flag.Int64("seed", 1, "fleet seed")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel workers (1 forces the serial path)")
	scale := flag.Float64("scale", 1.0, "event-count scale per device in (0, 1]")
	asJSON := flag.Bool("json", false, "emit JSON instead of CSV")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	memo := flag.Bool("memo", true, "enable per-worker charge-solve memoization")
	cacheSize := flag.Int("cache", 0, "memo cache entries per worker (0 = default)")
	recycle := flag.Bool("recycle", true, "recycle per-worker scratch (recorders, shared memo cache); false builds every device fresh")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stop, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fail(err)
	}
	err = run(*n, *seed, *jobs, *scale, *asJSON, *out, !*memo, *cacheSize, !*recycle)
	stop()
	if err == nil {
		err = prof.WriteHeap(*memProfile)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "capyfleet:", err)
	os.Exit(1)
}

func run(n int, seed int64, jobs int, scale float64, asJSON bool, out string, noMemo bool, cacheSize int, noRecycle bool) error {
	res, err := fleet.Run(context.Background(), fleet.Config{
		N:         n,
		Seed:      seed,
		Jobs:      jobs,
		Scale:     scale,
		NoMemo:    noMemo,
		CacheSize: cacheSize,
		NoRecycle: noRecycle,
	})
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if asJSON {
		err = res.WriteJSON(w)
	} else {
		err = res.WriteCSV(w)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(os.Stderr, res.Diagnostics())
	return nil
}
